package cssv

import (
	"os"
	"strings"
	"testing"
)

// TestRunningExampleAPI drives the public API end to end on the paper's
// running example (Figs. 3/4): SkipLine verifies cleanly; main yields
// exactly the off-by-one message with a Fig. 8-style counter-example.
func TestRunningExampleAPI(t *testing.T) {
	src, err := os.ReadFile("testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze("skipline.c", string(src), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Procedures) != 2 {
		t.Fatalf("procedures = %d", len(rep.Procedures))
	}
	var sl, mn *Procedure
	for i := range rep.Procedures {
		switch rep.Procedures[i].Name {
		case "SkipLine":
			sl = &rep.Procedures[i]
		case "main":
			mn = &rep.Procedures[i]
		}
	}
	if sl == nil || mn == nil {
		t.Fatal("missing procedures")
	}
	if len(sl.Messages) != 0 {
		t.Errorf("SkipLine: %d false alarms, want 0", len(sl.Messages))
	}
	if len(mn.Messages) != 1 {
		t.Fatalf("main: %d messages, want 1", len(mn.Messages))
	}
	m := mn.Messages[0]
	if !strings.Contains(m.Text, "precondition of SkipLine") {
		t.Errorf("message: %s", m.Text)
	}
	if len(m.CounterExample) == 0 {
		t.Error("no counter-example (Fig. 8)")
	}
	if sl.LOC == 0 || sl.SLOC < sl.LOC || sl.IPVars == 0 || sl.IPSize == 0 {
		t.Errorf("statistics not populated: %+v", sl)
	}
	if !strings.Contains(sl.IntegerProgram, "integer program for SkipLine") {
		t.Error("IP text missing")
	}
}

// TestFig8CounterExample checks the counter-example contents: the violation
// occurs when the pointer sits at the last byte of the 1024-byte buffer
// (alloc == 1, not > NbLine == 1).
func TestFig8CounterExample(t *testing.T) {
	src, err := os.ReadFile("testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze("skipline.c", string(src), Config{Procedures: []string{"main"}})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Procedures[0].Messages[0]
	if m.CounterExample["lv(buf).aSize"] != "1024" {
		t.Errorf("counter-example: %v", m.CounterExample)
	}
	off, ok := m.CounterExample["lv(s).offset"]
	if !ok {
		t.Fatalf("no offset in counter-example: %v", m.CounterExample)
	}
	// alloc(s) = 1024 - offset must be <= 1 to violate alloc > 1.
	if off != "1023" && off != "1024" {
		t.Errorf("offset = %s, want 1023 or 1024", off)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Analyze("x.c", "void f() {}", Config{Domain: "octagon"}); err == nil {
		t.Error("bad domain accepted")
	}
	if _, err := Analyze("x.c", "void f() {}", Config{Pointer: "magic"}); err == nil {
		t.Error("bad pointer mode accepted")
	}
	if _, err := Analyze("x.c", "void f() {}", Config{Contracts: "psychic"}); err == nil {
		t.Error("bad contract mode accepted")
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	if _, err := Analyze("bad.c", "void f( {", Config{}); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestDeriveContractsAPI(t *testing.T) {
	src, err := os.ReadFile("testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	// Strip contracts so derivation works from scratch: use the body-only
	// variant.
	plain := `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`
	_ = src
	req, ens, err := DeriveContracts("skipline.c", plain, "SkipLine")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ens, "is_nullt(*PtrEndText)") {
		t.Errorf("derived ensures misses the terminator fact: %s", ens)
	}
	if !strings.Contains(ens, "pre(") {
		t.Errorf("derived ensures misses the entry-state relation: %s", ens)
	}
	if req == "" {
		t.Error("derived requires empty; AWPre should find the allocation demand")
	}
}

func TestVacuousAndAutoModes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	src, err := os.ReadFile("testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	manual, err := Analyze("s.c", string(src), Config{Procedures: []string{"SkipLine"}})
	if err != nil {
		t.Fatal(err)
	}
	vac, err := Analyze("s.c", string(src), Config{Procedures: []string{"SkipLine"}, Contracts: "vacuous"})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Analyze("s.c", string(src), Config{Procedures: []string{"SkipLine"}, Contracts: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	m, v, a := len(manual.Messages()), len(vac.Messages()), len(auto.Messages())
	if !(m <= a && a <= v) {
		t.Errorf("message counts manual=%d auto=%d vacuous=%d; want manual <= auto <= vacuous", m, a, v)
	}
	if v == 0 {
		t.Error("vacuous contracts should produce messages on SkipLine")
	}
	if auto.Procedures[0].DerivedEnsures == "" {
		t.Error("auto mode did not surface the derived contract")
	}
}
