// Tests for the adaptive cascade scheduler's determinism contract:
// scheduling moves cost, never verdicts, and the off mode is bit-for-bit
// the pre-scheduler analyzer.
package cssv

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

var scheduleGoldens = []string{
	"testdata/running/skipline.c",
	"testdata/airbus/airbus.c",
	"testdata/fixwrites/fixwrites.c",
}

// renderQuiet runs the file under cfg and renders the non-stats report,
// which contains no timing and must be deterministic byte-for-byte.
func renderQuiet(t *testing.T, path string, cfg Config) string {
	t.Helper()
	rep, err := AnalyzeFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, rep, RenderOptions{Quiet: true, Target: "paper32"})
	return buf.String()
}

// TestScheduleOffByteIdentical: the default and explicit "off" modes
// must render byte-identical reports — the legacy cascade path untouched.
func TestScheduleOffByteIdentical(t *testing.T) {
	for _, path := range scheduleGoldens {
		t.Run(path, func(t *testing.T) {
			legacy := renderQuiet(t, path, Config{Cascade: true})
			off := renderQuiet(t, path, Config{Cascade: true, Schedule: "off"})
			if legacy != off {
				t.Errorf("-schedule off report differs from the legacy cascade:\nlegacy:\n%s\noff:\n%s", legacy, off)
			}
		})
	}
}

// TestScheduleStaticMatchesOff: the scheduled path under the static plan
// follows the same tier order on the same residuals, so the rendered
// report must match the legacy cascade byte for byte.
func TestScheduleStaticMatchesOff(t *testing.T) {
	for _, path := range scheduleGoldens {
		t.Run(path, func(t *testing.T) {
			off := renderQuiet(t, path, Config{Cascade: true})
			static := renderQuiet(t, path, Config{Cascade: true, Schedule: "static"})
			if off != static {
				t.Errorf("static schedule changed the report:\noff:\n%s\nstatic:\n%s", off, static)
			}
		})
	}
}

// TestScheduleAdaptiveParallelDeterminism: adaptive scheduling must not
// introduce worker-count dependence — a sequential and an 8-way run
// produce deep-equal reports once cost measurements are stripped.
func TestScheduleAdaptiveParallelDeterminism(t *testing.T) {
	for _, path := range scheduleGoldens {
		for _, mode := range []string{"static", "adaptive"} {
			t.Run(fmt.Sprintf("%s/%s", path, mode), func(t *testing.T) {
				seq, err := AnalyzeFile(path, Config{Workers: 1, Cascade: true, Schedule: mode})
				if err != nil {
					t.Fatal(err)
				}
				par, err := AnalyzeFile(path, Config{Workers: 8, Cascade: true, Schedule: mode})
				if err != nil {
					t.Fatal(err)
				}
				stripTimings(seq)
				stripTimings(par)
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s %s: 1-worker and 8-worker reports differ", path, mode)
				}
			})
		}
	}
}

// TestScheduleAdaptiveDischargesNoLess: on the golden suites the
// adaptive mode (cold profile) must discharge at least as many checks in
// cheap tiers as the fixed cascade — the planner degenerates to the
// static order when it has no evidence, so nothing may be lost.
func TestScheduleAdaptiveDischargesNoLess(t *testing.T) {
	discharged := func(cfg Config, path string) (cheap, total int) {
		rep, err := AnalyzeFile(path, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Procedures {
			if p.Cascade == nil {
				continue
			}
			for _, c := range p.Cascade.Checks {
				if c.Violated {
					continue
				}
				total++
				if c.Tier == "interval" || c.Tier == "zone" || c.Tier == "octagon" {
					cheap++
				}
			}
		}
		return
	}
	for _, path := range scheduleGoldens {
		t.Run(path, func(t *testing.T) {
			offCheap, offTotal := discharged(Config{Cascade: true}, path)
			adCheap, adTotal := discharged(Config{Cascade: true, Schedule: "adaptive"}, path)
			if adTotal != offTotal {
				t.Errorf("adaptive proved %d checks, fixed cascade %d", adTotal, offTotal)
			}
			if adCheap < offCheap {
				t.Errorf("adaptive discharged %d checks in cheap tiers, fixed cascade %d", adCheap, offCheap)
			}
		})
	}
}

// TestScheduleProfilePersistence: an adaptive run with a profile
// directory must write the profile, and a second run steered by it must
// keep every verdict.
func TestScheduleProfilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := "testdata/running/skipline.c"
	cold, err := AnalyzeFile(path, Config{Cascade: true, Schedule: "adaptive", ScheduleProfile: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeFile(path, Config{Cascade: true, Schedule: "adaptive", ScheduleProfile: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ScheduleFromProfile == 0 {
		t.Error("second adaptive run consulted no profile-backed plans")
	}
	verdicts := func(r *Report) map[string]bool {
		m := map[string]bool{}
		for _, p := range r.Procedures {
			if p.Cascade == nil {
				continue
			}
			for _, c := range p.Cascade.Checks {
				m[p.Name+"/"+c.Check+"@"+c.Pos] = c.Violated
			}
		}
		return m
	}
	if !reflect.DeepEqual(verdicts(cold), verdicts(warm)) {
		t.Error("profile-steered run changed verdicts")
	}
}
