/* fixwrites error population, item 7: an unbounded strcpy into a fixed
   global — nothing relates strlen(name) to NAME_MAX. */

#define NAME_MAX 64

char progname[NAME_MAX];

void set_progname(char *name)
    requires (is_nullt(name))
    modifies (progname)
{
    strcpy(progname, name);
}
