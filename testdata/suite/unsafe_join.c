/* fixwrites error population, item 3: joining two lines into a fixed
   buffer with no relation between the input lengths and LINE_MAX — both
   the strcpy and the strcat can overflow. */

#define LINE_MAX 128

void join_lines(char *first, char *second)
    requires (is_nullt(first) && is_nullt(second))
{
    char joined[LINE_MAX];

    strcpy(joined, first);
    strcat(joined, second);
}
