/* The contract-repaired join: the caller must guarantee the combined
   length fits, and under that precondition both library calls are
   safe. */

#define LINE_MAX 128

void join_lines(char *first, char *second)
    requires (is_nullt(first) && is_nullt(second) &&
              strlen(first) + strlen(second) < LINE_MAX)
{
    char joined[LINE_MAX];

    strcpy(joined, first);
    strcat(joined, second);
}
