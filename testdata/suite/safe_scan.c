/* The safe variant of the scan: stopping at the null terminator keeps
   every read inside the string. */

char *skip_blanks(char *p)
    requires (is_nullt(p))
    ensures (is_nullt(return_value) && is_within_bounds(return_value))
{
    char c;

    c = *p;
    while (c == ' ') {
        p = p + 1;
        c = *p;
    }
    return p;
}
