/* The paper's SkipLine (Fig. 3) with the Fig. 4 contract and a caller
   that respects it: verified with no messages. */

#define SIZE 128

void SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) &&
              alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    int indice;
    char *PtrEndLoc;

    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}

void main() {
    char buf[SIZE];
    char *r;
    char *s;

    r = buf;
    SkipLine(1, &r);
    s = buf;
    SkipLine(2, &s);
}
