/* fixwrites error population, item 2: the scan assumes the line holds
   an '=' and runs past the terminator when it does not. */

int find_assign(char *line)
    requires (is_nullt(line))
    ensures (return_value >= 0)
{
    int i;

    i = 0;
    while (line[i] != '=') {
        i = i + 1;
    }
    return i;
}
