/* A strcpy whose contract carries exactly the bound the libc model
   needs: the destination allocation strictly exceeds the source
   length. */

void copy_name(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) > strlen(src))
    modifies (dst), (is_nullt(dst)), (strlen(dst))
    ensures (is_nullt(dst))
{
    strcpy(dst, src);
}
