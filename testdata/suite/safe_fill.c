/* A bounded fill loop: every write stays strictly below the buffer
   size, with the terminator placed at the last cell. */

#define SIZE 64

void fill(void)
{
    char buf[SIZE];
    int i;

    i = 0;
loop:
    if (i >= SIZE - 1) goto done;
    buf[i] = 'x';
    i = i + 1;
    goto loop;
done:
    buf[SIZE - 1] = '\0';
}
