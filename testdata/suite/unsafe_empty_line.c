/* fixwrites error population, item 1: on an empty input line
   strlen(line) == 0 and the newline-stripping write lands at
   line[-1]. */

void remove_newline(char *line)
    requires (is_nullt(line))
    modifies (is_nullt(line)), (strlen(line))
    ensures (is_nullt(line))
{
    int n;

    n = strlen(line);
    line[n - 1] = '\0';
}
