/* The off-by-one twin of safe_fill: the loop runs one step too far and
   the final write lands at buf[SIZE]. */

#define SIZE 64

void fill(void)
{
    char buf[SIZE];
    int i;

    i = 0;
loop:
    if (i > SIZE) goto done;
    buf[i] = 'x';
    i = i + 1;
    goto loop;
done:
    ;
}
