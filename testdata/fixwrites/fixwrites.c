/*
 * fixwrites — a line filter that post-processes the C code emitted from
 * WEB sources (synthetic stand-in for the web2c tool of the same name the
 * paper evaluates: eight procedures, ~460 source lines).
 *
 * The error population matches §5's description of what CSSV found there:
 * unsafe calls to library functions such as strcpy, unsafe assumptions
 * that an input line contains a specific character, and unsafe pointer
 * arithmetic — eight real errors in total, plus two false alarms in the
 * defensively-written procedures.
 */

#define LINE_MAX 512
#define NAME_MAX 64

char progname[NAME_MAX];
char errbuf[80];

/* ------------------------------------------------------------------ */
/* 1. Strip the trailing newline that fgets leaves in place.           */
/*    ERROR (paper: "unsafe pointer arithmetic"): on an empty input    */
/*    line, strlen(line) == 0 and the write lands at line[-1].         */

void remove_newline(char *line)
    requires (is_nullt(line))
    modifies (is_nullt(line)), (strlen(line))
    ensures (is_nullt(line))
{
    int n;

    n = strlen(line);
    line[n - 1] = '\0';
}

/* ------------------------------------------------------------------ */
/* 2. Find the continuation column after a split.                      */
/*    ERROR (paper: "unsafe assumptions that an input contains a       */
/*    specific character"): the scan for '=' runs past the terminator  */
/*    when the line has none.                                          */

int find_assign(char *line)
    requires (is_nullt(line))
    ensures (return_value >= 0)
{
    int i;

    i = 0;
    while (line[i] != '=') {
        i = i + 1;
    }
    return i;
}

/* ------------------------------------------------------------------ */
/* 3. Join the long-line continuation into a fixed buffer.             */
/*    ERRORS: two unsafe library calls — the strcpy can overflow       */
/*    'joined' (no relation between the two lengths and LINE_MAX) and  */
/*    so can the strcat.                                               */

void join_lines(char *first, char *second)
    requires (is_nullt(first) && is_nullt(second))
{
    char joined[LINE_MAX];

    strcpy(joined, first);
    strcat(joined, second);
}

/* ------------------------------------------------------------------ */
/* 4. Report a complaint, prefixed by the program name.                */
/*    ERROR: sprintf into the 80-byte errbuf can overflow when the     */
/*    name and message are long.                                       */

void whine(char *msg)
    requires (is_nullt(msg) && is_nullt(progname))
    modifies (errbuf)
{
    sprintf(errbuf, "%s: fatal: %s", progname, msg);
}

/* ------------------------------------------------------------------ */
/* 5. Break an over-long emitted line at the last blank before the     */
/*    limit. Defensive and safe, but proving the backward scan stays   */
/*    in bounds needs the fact that column 0 holds a blank on this     */
/*    path — a correctness property (FALSE ALARM source, like the      */
/*    paper's skip_balanced).                                          */

int break_line(char *line, int limit)
    requires (is_nullt(line) && limit >= 1 && strlen(line) >= limit &&
              line == base(line))
    modifies (is_nullt(line)), (strlen(line))
    ensures (return_value >= 0)
{
    int i;
    char c;

    i = limit;
    c = line[i];
    while (c != ' ') {
        i = i - 1;
        c = line[i];
    }
    line[i] = '\0';
    return i;
}

/* ------------------------------------------------------------------ */
/* 6. Skip the blanks that begin a continuation line. Safe: the scan   */
/*    stops at the terminator because ' ' != '\0'.                     */

char *skip_blanks(char *p)
    requires (is_nullt(p))
    ensures (is_nullt(return_value) && is_within_bounds(return_value))
{
    char c;

    c = *p;
    while (c == ' ') {
        p = p + 1;
        c = *p;
    }
    return p;
}

/* ------------------------------------------------------------------ */
/* 7. Copy the program name from argv[0] at startup.                   */
/*    ERROR: unsafe strcpy — nothing bounds the argument by NAME_MAX.  */

void set_progname(char *name)
    requires (is_nullt(name))
    modifies (progname)
{
    strcpy(progname, name);
}

/* ------------------------------------------------------------------ */
/* 8. The main loop: read, fix, and emit each line.                    */
/*    ERRORS: the fgets length leaves no room for the newline the      */
/*    splicing appends (off-by-one, like the paper's running example), */
/*    and remove_newline's precondition cannot be established for the  */
/*    empty line.                                                      */

void fix_file(void)
{
    char line[LINE_MAX];
    char *r;
    char *end;

    r = fgets(line, LINE_MAX + 1, 0);
    remove_newline(line);
    end = line + strlen(line);
    *end = '\n';
    end = end + 1;
    *end = '\0';
}
