/*
 * RTC_Si string-manipulation library.
 *
 * Synthetic stand-in for the proprietary EADS Airbus string library the
 * paper evaluates (Table 5): eleven procedures, ~400 source lines, written
 * in the style the paper describes — destructive updates through multi-level
 * pointers, pointer arithmetic over fixed-size buffers, and one function
 * (RTC_Si_SkipBalanced) whose safety depends on functional correctness of
 * its callers. RTC_Si_SkipLine is the paper's Fig. 3 verbatim.
 *
 * All procedures are memory-safe under their contracts; the messages CSSV
 * reports on this suite are false alarms (paper: six, concentrated in the
 * balanced-parentheses scanner and in stores of characters whose
 * non-zero-ness the analysis cannot infer).
 */

#define RTC_LINE_MAX 132

/* ------------------------------------------------------------------ */
/* 1. Insert NbLine newline characters at *PtrEndText (paper Fig. 3).  */

void RTC_Si_SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) &&
              alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    int indice;
    char *PtrEndLoc;

    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}

/* ------------------------------------------------------------------ */
/* 2. Fill the first Count bytes with the (non-null) pad character.    */

void RTC_Si_FillChar(char *Buffer, int Count, int Mode)
    requires (alloc(Buffer) > Count && Count >= 0 && Mode >= 0)
    modifies (Buffer)
    ensures (is_nullt(Buffer) && strlen(Buffer) == Count)
{
    int i;
    int pad;

    /* '.' for mode 0, then denser glyphs; never zero, but opaque to a
       linear analysis. */
    pad = '.' + Mode * Mode;
    Buffer[Count] = '\0';
    i = 0;
    while (i < Count) {
        Buffer[i] = pad;
        i = i + 1;
    }
}

/* ------------------------------------------------------------------ */
/* 3. Classic character-at-a-time string copy.                         */

void RTC_Si_CopyString(char *Dest, char *Source)
    requires (is_nullt(Source) && alloc(Dest) > strlen(Source))
    modifies (Dest)
    ensures (is_nullt(Dest) && strlen(Dest) == pre(strlen(Source)))
{
    char c;

    c = *Source;
    while (c != '\0') {
        *Dest = c;
        Dest = Dest + 1;
        Source = Source + 1;
        c = *Source;
    }
    *Dest = '\0';
}

/* ------------------------------------------------------------------ */
/* 4. Append one character at the text end and re-terminate.           */

void RTC_Si_AppendChar(char **PtrEnd, int Car)
    requires (is_nullt(*PtrEnd) && strlen(*PtrEnd) == 0 &&
              alloc(*PtrEnd) >= 2 && Car >= 1)
    modifies (*PtrEnd), (is_nullt(*PtrEnd)), (strlen(*PtrEnd))
    ensures (is_nullt(*PtrEnd) && *PtrEnd == pre(*PtrEnd) + 1)
{
    char *PtrLoc;

    PtrLoc = *PtrEnd;
    *PtrLoc = Car;
    PtrLoc = PtrLoc + 1;
    *PtrLoc = '\0';
    *PtrEnd = PtrLoc;
}

/* ------------------------------------------------------------------ */
/* 5. Write the separator line "#---...#" into a fresh buffer.         */
/*    The separator character is computed; the analysis cannot see     */
/*    that it is never the null character (paper: source of false      */
/*    alarms: "CSSV fails to infer that this character is non zero").  */

void RTC_Si_InsertSeparator(char *Buffer, int Width, int Level)
    requires (alloc(Buffer) > Width && Width >= 2)
    modifies (Buffer)
    ensures (is_nullt(Buffer) && strlen(Buffer) == Width)
{
    int i;
    int car;

    /* '-' for level 0, '=' for level 1, ... never zero, but the product
       makes the value opaque to linear analysis. */
    car = '-' + Level * Level;
    Buffer[Width] = '\0';
    Buffer[0] = '#';
    i = 1;
    while (i < Width - 1) {
        Buffer[i] = car;
        i = i + 1;
    }
    Buffer[i] = '#';
}

/* ------------------------------------------------------------------ */
/* 6. Pad a line with blanks up to Width and terminate it.             */

void RTC_Si_PadBuffer(char *Line, int Width)
    requires (is_nullt(Line) && alloc(Line) > Width &&
              Width >= 0 && strlen(Line) <= Width)
    modifies (Line)
    ensures (is_nullt(Line))
{
    int i;

    i = 0;
    while (Line[i] != '\0') {
        i = i + 1;
    }
    while (i < Width) {
        Line[i] = ' ';
        i = i + 1;
    }
    Line[i] = '\0';
}

/* ------------------------------------------------------------------ */
/* 7. Truncate a string at position Pos when it is longer.             */

void RTC_Si_TruncateAt(char *Text, int Pos)
    requires (is_nullt(Text) && Pos >= 0 && Pos <= strlen(Text))
    modifies (is_nullt(Text)), (strlen(Text))
    ensures (is_nullt(Text) && strlen(Text) <= Pos)
{
    Text[Pos] = '\0';
}

/* ------------------------------------------------------------------ */
/* 8. Count occurrences of a character in a string.                    */

int RTC_Si_CountChar(char *Text, int Car)
    requires (is_nullt(Text))
    ensures (return_value >= 0)
{
    int count;
    char c;

    count = 0;
    c = *Text;
    while (c != '\0') {
        if (c == Car) {
            count = count + 1;
        }
        Text = Text + 1;
        c = *Text;
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* 9. Skip a balanced parenthesis group. The callers establish that    */
/*    the argument starts a balanced group; safety depends on that     */
/*    functional property, which the contract language cannot state    */
/*    (paper: "in some cases it is hard to separate safety from        */
/*    correctness" — the messages here are false alarms).              */

char *RTC_Si_SkipBalanced(char *Text)
    requires (is_nullt(Text) && strlen(Text) >= 1)
    ensures (is_within_bounds(return_value))
{
    int depth;
    char c;

    c = *Text;
    if (c != '(') {
        return Text;
    }
    depth = 0;
    do {
        c = *Text;
        if (c == '(') {
            depth = depth + 1;
        } else {
            if (c == ')') {
                depth = depth - 1;
            }
        }
        Text = Text + 1;
    } while (depth > 0);
    return Text;
}

/* ------------------------------------------------------------------ */
/* 10. Copy at most Max-1 characters of a line, stopping at newline.   */

void RTC_Si_CopyLine(char *Dest, char *Source, int Max)
    requires (is_nullt(Source) && alloc(Dest) >= Max && Max >= 1)
    modifies (Dest)
    ensures (is_nullt(Dest))
{
    int i;
    char c;

    i = 0;
    while (i < Max - 1) {
        c = Source[i];
        if (c == '\0') {
            goto done;
        }
        if (c == '\n') {
            goto done;
        }
        Dest[i] = c;
        i = i + 1;
    }
done:
    Dest[i] = '\0';
}

/* ------------------------------------------------------------------ */
/* 11. Append a text at the running end pointer, advancing it.         */

void RTC_Si_WriteText(char **PtrEndText, char *Text)
    requires (is_within_bounds(*PtrEndText) && is_nullt(Text) &&
              alloc(*PtrEndText) > strlen(Text))
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) &&
             *PtrEndText == pre(*PtrEndText) + pre(strlen(Text)))
{
    char *end;
    char c;

    end = *PtrEndText;
    c = *Text;
    while (c != '\0') {
        *end = c;
        end = end + 1;
        Text = Text + 1;
        c = *Text;
    }
    *end = '\0';
    *PtrEndText = end;
}
