package cssv

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes each example program end to end and checks its
// headline output, so the documented entry points cannot rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full analyses")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{
			"copy_into: 0 message(s)",
			"greet: 1 message(s)",
		}},
		{"./examples/skipline", []string{
			"verified, no false alarms",
			"precondition of SkipLine may be violated",
		}},
		{"./examples/derive", []string{
			"is_nullt(*PtrEndText)",
			"requires (alloc(*PtrEndText)",
		}},
		{"./examples/audit", []string{
			"audit complete: 8 procedures",
		}},
		{"./examples/layout", []string{
			"paper32: stamp reports 1 message(s)",
			"sysv64: stamp reports 0 message(s), 4 check(s) certified, 0 failed",
			"sysv64: relabel (union overlay) reports 1 message(s)",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			ctxCmd := exec.Command("go", "run", c.dir)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = ctxCmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Minute):
				_ = ctxCmd.Process.Kill()
				t.Fatalf("%s timed out", c.dir)
			}
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, w := range c.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("%s output missing %q:\n%s", c.dir, w, out)
				}
			}
		})
	}
}
