#!/bin/sh
# Layout-regression gate: the paper32 target must keep producing
# byte-identical reports on the benchmark suites (the layout engine is
# new plumbing, not new behavior, under the packed model), and the
# sysv64 target must analyze the same suites cleanly. Emits the
# member-access precision counters for both targets to $COUNTER_OUT
# (default layout-counters.txt) so CI can archive the deltas.
#
# Usage: scripts/layout_regression.sh   (from the repo root)
set -eu

COUNTER_OUT="${COUNTER_OUT:-layout-counters.txt}"
CSSV="${CSSV:-/tmp/cssv-layout-gate}"

go build -o "$CSSV" ./cmd/cssv

fail=0
: > "$COUNTER_OUT"
for f in running/skipline airbus/airbus fixwrites/fixwrites; do
    name=$(basename "$f")
    golden="testdata/goldens/$name.paper32.txt"
    got="/tmp/$name.paper32.out"

    rc=0
    "$CSSV" -q "testdata/$f.c" > "$got" 2>&1 || rc=$?
    echo "exit=$rc" >> "$got"
    if ! cmp -s "$golden" "$got"; then
        echo "FAIL: paper32 report for $name differs from $golden:" >&2
        diff "$golden" "$got" >&2 || true
        fail=1
    else
        echo "ok: $name paper32 report is byte-identical"
    fi

    for target in paper32 sysv64; do
        rc=0
        out="$("$CSSV" -stats -q -target "$target" "testdata/$f.c" 2>&1)" || rc=$?
        # exit 1 = messages reported (expected); >1 = analysis failure.
        if [ "$rc" -gt 1 ]; then
            echo "FAIL: cssv -target $target exited $rc on $name" >&2
            echo "$out" >&2
            fail=1
            continue
        fi
        printf '%s %s ' "$name" "$target" >> "$COUNTER_OUT"
        echo "$out" | grep 'member-accesses' >> "$COUNTER_OUT"
    done
done

echo "member-access precision counters:"
cat "$COUNTER_OUT"

# The packed model must resolve member accesses on airbus (nonzero
# counter), or the counting plumbing has rotted.
if ! grep -q 'airbus paper32 .*resolved=[1-9]' "$COUNTER_OUT"; then
    echo "FAIL: airbus paper32 run resolved no member accesses" >&2
    fail=1
fi

exit $fail
