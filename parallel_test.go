// Tests for the parallel procedure-modular driver: reports must be
// bit-identical to a sequential run for every worker count, errors must
// surface exactly as in sequential mode, and the shared immutable inputs
// (the cached libc contract header) must survive runs unmodified.
package cssv

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cast"
	"repro/internal/libc"
)

// stripTimings zeroes every field whose value legitimately varies between
// runs (cost measurements), leaving violations, warnings, iterations and
// cascade provenance for the deep comparison.
func stripTimings(r *Report) {
	r.Stats = RunStats{}
	for i := range r.Procedures {
		p := &r.Procedures[i]
		p.CPU = 0
		p.Space = 0
		p.CacheStatus = ""
		if p.Cascade != nil {
			for j := range p.Cascade.Tiers {
				p.Cascade.Tiers[j].CPU = 0
			}
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	suites := []struct {
		path      string
		cascade   bool
		contracts string
	}{
		{"testdata/airbus/airbus.c", true, ""},
		{"testdata/fixwrites/fixwrites.c", true, ""},
		{"testdata/running/skipline.c", true, ""},
		{"testdata/running/skipline.c", false, ""},
	}
	for _, s := range suites {
		t.Run(fmt.Sprintf("%s/cascade=%v/contracts=%s", s.path, s.cascade, s.contracts), func(t *testing.T) {
			seq, err := AnalyzeFile(s.path, Config{Workers: 1, Cascade: s.cascade, Contracts: s.contracts})
			if err != nil {
				t.Fatal(err)
			}
			par, err := AnalyzeFile(s.path, Config{Workers: 8, Cascade: s.cascade, Contracts: s.contracts})
			if err != nil {
				t.Fatal(err)
			}
			if par.Stats.Workers == 1 {
				t.Errorf("parallel run used 1 worker")
			}
			stripTimings(seq)
			stripTimings(par)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("Workers=1 and Workers=8 reports differ\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestParallelDeterminismAutoContracts covers the contract-derivation path
// (§4) under concurrent workers: derive.Derive runs whole sub-pipelines
// against the same shared program. Split from TestParallelDeterminism
// because derivation dominates the cost (~2 orders of magnitude above a
// manual-contract run), letting CI target the cheap cases separately.
func TestParallelDeterminismAutoContracts(t *testing.T) {
	if testing.Short() {
		t.Skip("contract derivation is expensive; skipped under -short")
	}
	cfg := Config{Cascade: true, Contracts: "auto"}
	cfg.Workers = 1
	seq, err := AnalyzeFile("testdata/running/skipline.c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := AnalyzeFile("testdata/running/skipline.c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(seq)
	stripTimings(par)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("auto-contract reports differ between Workers=1 and Workers=8\nseq: %+v\npar: %+v", seq, par)
	}
}

const errPathSrc = `
void a(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
void b(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
void c(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
void d(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
void e(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
void f(char *s) requires (is_nullt(s)) { s[0] = 'x'; }
`

func TestParallelErrorPath(t *testing.T) {
	// A procedure that fails mid-pool must return the same wrapped
	// "<proc>: ..." error as sequential mode (here: a requested procedure
	// with no definition, which fails after the inlining phase).
	procs := []string{"a", "b", "nosuch", "c", "d", "e", "f"}
	want := "nosuch: procedure not found or has no body"
	for _, workers := range []int{1, 8} {
		_, err := Analyze("t.c", errPathSrc, Config{Workers: workers, Procedures: procs})
		if err == nil || err.Error() != want {
			t.Errorf("Workers=%d: err = %v, want %q", workers, err, want)
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	if _, err := Analyze("t.c", "void f(void) {}", Config{Workers: -1}); err == nil {
		t.Fatal("Workers=-1 accepted, want error")
	}
}

func TestLibcPreludeImmutable(t *testing.T) {
	pre, err := libc.Prelude()
	if err != nil {
		t.Fatal(err)
	}
	before := cast.Fprint(pre.File())
	// Analyze a program that leans on the shared contract models, and one
	// that redeclares a modeled function with its own body.
	if _, err := Analyze("t.c", `
void f(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) > strlen(src))
    modifies (dst)
{ strcpy(dst, src); }
`, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze("t.c", `
int strlen(char *s) requires (is_nullt(s)) { return 0; }
`, Config{Procedures: []string{"strlen"}}); err != nil {
		t.Fatal(err)
	}
	if after := cast.Fprint(pre.File()); after != before {
		t.Errorf("shared libc prelude AST was mutated by analysis runs")
	}
}
