package cssv

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestNoMutableSubstrateGlobals guards the per-run configuration design:
// the numeric substrates must not regrow mutable package-level analysis
// knobs like the old polyhedra.MaxRays or the process-global drop
// counter — such state leaks between concurrent AnalyzeSource runs and
// makes results depend on unrelated callers. Per-run state belongs on
// polyhedra.Config / zone.Config.
//
// The test walks every file (including tests) of the substrate packages
// and rejects package-scope var declarations of plain mutable values.
// Shared values built by a call (big.NewInt — immutable by convention)
// or a composite literal of a concurrency-safe type (sync.Pool) are
// allowed.
func TestNoMutableSubstrateGlobals(t *testing.T) {
	for _, dir := range []string{"internal/polyhedra", "internal/zone"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.VAR {
						continue
					}
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						for i, name := range vs.Names {
							if mutableGlobal(vs, i) {
								t.Errorf("%s: package-level mutable var %s; thread per-run state through Config instead",
									fset.Position(name.Pos()), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// mutableGlobal reports whether the i-th name of a package-scope var spec
// is plain mutable state: declared without an initializer (zero value of
// some basic or struct type) or initialized from a literal, identifier,
// or unary constant expression. Call expressions and composite literals
// are assumed to build shared immutable or concurrency-safe values; new
// exceptions should be rare and deliberate.
func mutableGlobal(vs *ast.ValueSpec, i int) bool {
	if i >= len(vs.Values) {
		return true
	}
	switch vs.Values[i].(type) {
	case *ast.BasicLit, *ast.Ident, *ast.UnaryExpr:
		return true
	}
	return false
}
