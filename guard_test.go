package cssv

import (
	"testing"

	"repro/internal/lint"
)

// TestLintSuite runs the cssv-lint analyzers (internal/lint) over the
// whole module as a regression test, so `go test ./...` alone — without
// the vet wiring — still enforces the invariant catalog: no mutable
// package-scope state in analysis packages (the guard that used to live
// here as hand-rolled AST walking), the layering DAG (certify never
// links the code it checks), determinism of report assembly, budget
// safe points in substrate fixpoints, and verdict-constructor
// discipline. CI additionally runs the same suite through
// `go vet -vettool` (see .github/workflows/ci.yml); this test is the
// belt to that suspender and keeps the suite honest on plain `go test`.
func TestLintSuite(t *testing.T) {
	loader := &lint.Loader{IncludeTests: true}
	pkgs, err := loader.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	suite := lint.Suite()
	for _, pkg := range pkgs {
		res, err := lint.Run(pkg, suite)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range res.Diags {
			t.Errorf("%s", d.String())
		}
	}
}
