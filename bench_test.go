// Benchmarks regenerating the paper's evaluation artifacts. Each bench maps
// to a table or figure of the PLDI 2003 paper (see DESIGN.md §3 for the
// index):
//
//	BenchmarkTable5/*          — Table 5 rows (per-procedure pipeline cost)
//	BenchmarkHeadline          — §1.3/§5 headline (suite totals)
//	BenchmarkC2IPScaling/*     — §3.4.2.4: IP size, this tool vs the
//	                             O(S*V^2) translation of [13]
//	BenchmarkDomainAblation/*  — §3.5 design choice: polyhedra vs zone vs
//	                             interval precision/cost
//	BenchmarkPPTAblation/*     — §3.3 design choice: Fig. 7 merging on/off
//	BenchmarkRunningExample/*  — Figs. 3/4/8 end-to-end
//	BenchmarkDerive            — §4 contract derivation (ASPost + AWPre)
//	BenchmarkPolyhedra/*       — the numeric substrate's primitive costs
package cssv

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/c2ip"
	"repro/internal/cast"
	"repro/internal/core"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/derive"
	"repro/internal/inline"
	"repro/internal/libc"
	"repro/internal/linear"
	"repro/internal/pointer"
	"repro/internal/polyhedra"
	"repro/internal/ppt"
)

func mustRead(b *testing.B, path string) string {
	b.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return string(src)
}

// BenchmarkTable5 regenerates the per-procedure pipeline measurements of
// Table 5 (manual contracts; the derivation columns are exercised by
// BenchmarkDerive and the cssv-table5 command).
func BenchmarkTable5(b *testing.B) {
	suites := []struct{ name, path string }{
		{"airbus", "testdata/airbus/airbus.c"},
		{"fixwrites", "testdata/fixwrites/fixwrites.c"},
	}
	for _, s := range suites {
		src := mustRead(b, s.path)
		// Enumerate procedures once.
		rep, err := Analyze(s.path, src, Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, proc := range rep.Procedures {
			proc := proc
			b.Run(s.name+"/"+proc.Name, func(b *testing.B) {
				msgs := 0
				for i := 0; i < b.N; i++ {
					r, err := Analyze(s.path, src, Config{Procedures: []string{proc.Name}})
					if err != nil {
						b.Fatal(err)
					}
					msgs = len(r.Procedures[0].Messages)
				}
				b.ReportMetric(float64(proc.IPVars), "IPvars")
				b.ReportMetric(float64(proc.IPSize), "IPstmts")
				b.ReportMetric(float64(msgs), "messages")
			})
		}
	}
}

// BenchmarkCascade is BenchmarkTable5 under Config{Cascade: true}: the
// tiered interval -> zone -> polyhedra discharge analyzing, at each tier,
// only the slice of the still-unproven checks. Sub-benchmark names match
// BenchmarkTable5 so the two are directly comparable with benchstat; the
// residual* metrics show how much of the IP still reaches the polyhedra
// tier (0 when the cheap tiers discharged everything).
func BenchmarkCascade(b *testing.B) {
	suites := []struct{ name, path string }{
		{"airbus", "testdata/airbus/airbus.c"},
		{"fixwrites", "testdata/fixwrites/fixwrites.c"},
	}
	for _, s := range suites {
		src := mustRead(b, s.path)
		rep, err := Analyze(s.path, src, Config{Cascade: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, proc := range rep.Procedures {
			proc := proc
			b.Run(s.name+"/"+proc.Name, func(b *testing.B) {
				var last *Procedure
				for i := 0; i < b.N; i++ {
					r, err := Analyze(s.path, src, Config{
						Cascade:    true,
						Procedures: []string{proc.Name},
					})
					if err != nil {
						b.Fatal(err)
					}
					last = &r.Procedures[0]
				}
				b.ReportMetric(float64(last.IPVars), "IPvars")
				b.ReportMetric(float64(last.IPSize), "IPstmts")
				b.ReportMetric(float64(len(last.Messages)), "messages")
				if cs := last.Cascade; cs != nil {
					b.ReportMetric(float64(cs.ResidualVars), "residualvars")
					b.ReportMetric(float64(cs.ResidualStmts), "residualstmts")
					cheap := 0
					for _, t := range cs.Tiers {
						if t.Domain != "polyhedra" {
							cheap += t.Discharged
						}
					}
					b.ReportMetric(float64(cheap), "cheapdischarged")
				}
			})
		}
	}
}

// benchSuiteParallel measures whole-suite wall clock under a given worker
// count. Sub-benchmark names (workers=1 vs workers=N) make the parallel
// speedup directly visible with benchstat; the reports are bit-identical
// across worker counts (TestParallelDeterminism).
func benchSuiteParallel(b *testing.B, cfg Config) {
	suites := []struct{ name, path string }{
		{"airbus", "testdata/airbus/airbus.c"},
		{"fixwrites", "testdata/fixwrites/fixwrites.c"},
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	} else {
		// Still exercise the pool itself on single-CPU machines.
		workerCounts = append(workerCounts, 8)
	}
	for _, s := range suites {
		src := mustRead(b, s.path)
		for _, w := range workerCounts {
			cfg := cfg
			cfg.Workers = w
			b.Run(fmt.Sprintf("%s/workers=%d", s.name, w), func(b *testing.B) {
				msgs := 0
				for i := 0; i < b.N; i++ {
					rep, err := Analyze(s.path, src, cfg)
					if err != nil {
						b.Fatal(err)
					}
					msgs = len(rep.Messages())
					b.ReportMetric(float64(rep.Stats.SequentialCPU)/float64(rep.Stats.Wall), "speedup")
				}
				b.ReportMetric(float64(msgs), "messages")
			})
		}
	}
}

// BenchmarkTable5Parallel is the whole-suite Table 5 workload under the
// parallel driver: one Analyze call per iteration fans the per-procedure
// pipelines out over the worker pool.
func BenchmarkTable5Parallel(b *testing.B) { benchSuiteParallel(b, Config{}) }

// BenchmarkCascadeParallel composes the PR 1 cascade (cheap per-procedure
// discharge) with the worker pool (cross-procedure parallelism).
func BenchmarkCascadeParallel(b *testing.B) { benchSuiteParallel(b, Config{Cascade: true}) }

// BenchmarkLibcPrelude quantifies the cached contract-header parse: "parse"
// is the per-run cost before the cache existed (lex + parse of the full
// header), "cached" is what every AnalyzeSource and Prepare call pays now.
func BenchmarkLibcPrelude(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cparse.ParsePrelude(libc.HeaderName, libc.Header); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := libc.Prelude(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// End-to-end: repeated single-procedure runs, the workload the header
	// cache and pointer-analysis memo were built for (contrast with a
	// cold-cache run of the same workload).
	src := mustRead(b, "testdata/running/skipline.c")
	b.Run("repeated-single-proc/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Analyze("skipline.c", src, Config{Procedures: []string{"SkipLine"}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("repeated-single-proc/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.FlushCaches()
			if _, err := Analyze("skipline.c", src, Config{Procedures: []string{"SkipLine"}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeadline regenerates the §1.3 headline totals: messages over the
// whole Airbus-style suite (all false alarms) and the fixwrites-style suite
// (8 errors + 2 false alarms).
func BenchmarkHeadline(b *testing.B) {
	for _, s := range []struct{ name, path string }{
		{"airbus", "testdata/airbus/airbus.c"},
		{"fixwrites", "testdata/fixwrites/fixwrites.c"},
	} {
		src := mustRead(b, s.path)
		b.Run(s.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				rep, err := Analyze(s.path, src, Config{})
				if err != nil {
					b.Fatal(err)
				}
				total = len(rep.Messages())
			}
			b.ReportMetric(float64(total), "messages")
		})
	}
}

// genScaling builds a procedure with V cross-aliased pointers over V
// buffers and S pointer-arithmetic statements: the workload for the
// §3.4.2.4 complexity comparison.
func genScaling(V, S int) string {
	var sb strings.Builder
	sb.WriteString("void scale(int c) {\n")
	for i := 0; i < V; i++ {
		fmt.Fprintf(&sb, "    char b%d[64];\n", i)
		fmt.Fprintf(&sb, "    char *p%d;\n", i)
	}
	// p0 reaches every buffer; every pi aliases p0.
	for i := 0; i < V; i++ {
		fmt.Fprintf(&sb, "    p0 = b%d;\n", i)
	}
	for i := 1; i < V; i++ {
		fmt.Fprintf(&sb, "    p%d = p0;\n", i)
	}
	for s := 0; s < S; s++ {
		fmt.Fprintf(&sb, "    if (c > %d) { p%d = p%d + 1; }\n", s, s%V, s%V)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BenchmarkC2IPScaling compares the generated IP size of this paper's
// translation (O(S*V)) against the earlier tool's O(S*V^2) translation
// ([13]), reproducing the §3.4.2.4 claim. The reported IPvars/IPstmts
// metrics are the measurement; run with -bench C2IPScaling and compare the
// naive/new series.
func BenchmarkC2IPScaling(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"new", false}, {"naive", true}} {
		for _, V := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/V=%d", mode.name, V), func(b *testing.B) {
				src := genScaling(V, 48)
				var vars, stmts int
				for i := 0; i < b.N; i++ {
					prog := mustPipeline(b, src, "scale")
					res, err := c2ip.Transform(prog.nprog, prog.fd, prog.pt,
						c2ip.Options{Naive: mode.naive})
					if err != nil {
						b.Fatal(err)
					}
					vars = res.Prog.NumVars()
					stmts = res.Prog.Size()
				}
				b.ReportMetric(float64(vars), "IPvars")
				b.ReportMetric(float64(stmts), "IPstmts")
			})
		}
	}
}

type pipelineOut struct {
	nprog *corec.Program
	fd    *cast.FuncDecl
	pt    *ppt.PPT
}

// mustPipeline runs parse/normalize/inline/pointer/PPT for one procedure.
func mustPipeline(b *testing.B, src, proc string) pipelineOut {
	b.Helper()
	file, err := cparse.ParseFile("bench.c", libc.Header+"\n"+src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := corec.Normalize(file)
	if err != nil {
		b.Fatal(err)
	}
	inlined, err := inline.File(prog, proc)
	if err != nil {
		b.Fatal(err)
	}
	nprog, err := corec.Renormalize(prog, inlined)
	if err != nil {
		b.Fatal(err)
	}
	fd := nprog.File.Lookup(proc)
	g := pointer.Analyze(nprog, pointer.Inclusion)
	pt := ppt.Build(nprog, fd, g, ppt.Options{})
	return pipelineOut{nprog: nprog, fd: fd, pt: pt}
}

// BenchmarkDomainAblation runs a representative Table 5 procedure under
// each numeric domain, reporting precision (messages; lower is better on
// this safe procedure — every message is a false alarm) against cost.
func BenchmarkDomainAblation(b *testing.B) {
	src := mustRead(b, "testdata/airbus/airbus.c")
	for _, domain := range []string{"polyhedra", "zone", "interval"} {
		b.Run(domain, func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				rep, err := Analyze("airbus.c", src, Config{
					Domain:     domain,
					Procedures: []string{"RTC_Si_SkipLine"},
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = len(rep.Procedures[0].Messages)
			}
			b.ReportMetric(float64(msgs), "falsealarms")
		})
	}
}

// BenchmarkPPTAblation quantifies the Fig. 7 strong-update merge: with
// merging disabled, updates through formals are weak and the running
// example's postcondition can no longer be verified (§1.3: "a naive
// implementation will perform weak updates which may lead to many false
// alarms").
func BenchmarkPPTAblation(b *testing.B) {
	// The running example is the paper's own illustration: with main
	// present, PtrEndText may point to either r or s, and only the Fig. 7
	// merge lets the analysis update *PtrEndText strongly.
	src := mustRead(b, "testdata/running/skipline.c")
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"merge", false}, {"nomerge", true}} {
		b.Run(mode.name, func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				rep, err := Analyze("skipline.c", src, Config{
					Procedures:        []string{"SkipLine"},
					DisablePPTMerging: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = len(rep.Procedures[0].Messages)
			}
			b.ReportMetric(float64(msgs), "falsealarms")
		})
	}
}

// BenchmarkRunningExample measures the Figs. 3/4/8 pipeline: verifying
// SkipLine and finding the off-by-one in main.
func BenchmarkRunningExample(b *testing.B) {
	src := mustRead(b, "testdata/running/skipline.c")
	for _, proc := range []string{"SkipLine", "main"} {
		b.Run(proc, func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				rep, err := Analyze("skipline.c", src, Config{Procedures: []string{proc}})
				if err != nil {
					b.Fatal(err)
				}
				msgs = len(rep.Procedures[0].Messages)
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// BenchmarkDerive measures the §4 derivation algorithms (ASPost + AWPre +
// write-back) on the running example.
func BenchmarkDerive(b *testing.B) {
	src := mustRead(b, "testdata/running/skipline.c")
	prog, err := core.Prepare("skipline.c", src, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := derive.Derive(prog, "SkipLine", derive.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolyhedra measures the substrate's primitive operations at the
// dimension counts Table 5 produces (tens of variables).
func BenchmarkPolyhedra(b *testing.B) {
	mk := func(dim int) (*polyhedra.Poly, *polyhedra.Poly) {
		var sysA, sysB linear.System
		for v := 0; v < dim; v++ {
			e := linear.VarExpr(v)
			sysA = append(sysA, linear.NewGe(e))                        // x >= 0
			f := linear.ConstExpr(int64(10 + v)).Sub(linear.VarExpr(v)) // x <= 10+v
			sysA = append(sysA, linear.NewGe(f))
			if v > 0 {
				g := linear.VarExpr(v).Sub(linear.VarExpr(v - 1))
				sysB = append(sysB, linear.NewGe(g)) // x_v >= x_{v-1}
			}
		}
		return polyhedra.FromSystem(sysA, dim), polyhedra.FromSystem(sysB, dim)
	}
	for _, dim := range []int{4, 6, 8} {
		p, q := mk(dim)
		b.Run(fmt.Sprintf("join/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Clone().Join(q)
			}
		})
		b.Run(fmt.Sprintf("meet+empty/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Clone().Meet(q).IsEmpty()
			}
		})
		b.Run(fmt.Sprintf("widen/dim=%d", dim), func(b *testing.B) {
			j := p.Clone().Join(q)
			for i := 0; i < b.N; i++ {
				p.Widen(j)
			}
		})
	}
}
