package cssv

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// TestCascadeDifferential: cascade mode must report the identical message
// set — positions, texts, counter-examples — as the plain polyhedra run on
// every suite, while sending a strictly smaller sub-program into the
// polyhedra tier.
func TestCascadeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is slow")
	}
	suites := []string{
		"testdata/airbus/airbus.c",
		"testdata/fixwrites/fixwrites.c",
		"testdata/running/skipline.c",
	}
	for _, path := range suites {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Analyze(path, string(src), Config{})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		casc, err := Analyze(path, string(src), Config{Cascade: true})
		if err != nil {
			t.Fatalf("%s cascade: %v", path, err)
		}
		if len(plain.Procedures) != len(casc.Procedures) {
			t.Fatalf("%s: %d vs %d procedures", path, len(plain.Procedures), len(casc.Procedures))
		}
		for i := range plain.Procedures {
			pp, cp := &plain.Procedures[i], &casc.Procedures[i]
			if pp.Name != cp.Name {
				t.Fatalf("%s: procedure order diverged: %s vs %s", path, pp.Name, cp.Name)
			}
			if len(pp.Messages) != len(cp.Messages) {
				t.Errorf("%s %s: %d vs %d messages", path, pp.Name, len(pp.Messages), len(cp.Messages))
				continue
			}
			for j := range pp.Messages {
				pm, cm := pp.Messages[j], cp.Messages[j]
				if pm.Pos != cm.Pos || pm.Text != cm.Text || pm.Unverifiable != cm.Unverifiable {
					t.Errorf("%s %s message %d differs:\n  plain:   %s %q\n  cascade: %s %q",
						path, pp.Name, j, pm.Pos, pm.Text, cm.Pos, cm.Text)
				}
			}

			// Cascade bookkeeping: stats present, residual strictly smaller.
			if cp.Cascade == nil {
				t.Errorf("%s %s: no cascade stats", path, cp.Name)
				continue
			}
			full := cp.IPVars * cp.IPSize
			residual := cp.Cascade.ResidualVars * cp.Cascade.ResidualStmts
			if full > 0 && residual >= full {
				t.Errorf("%s %s: residual %dx%d not smaller than full IP %dx%d",
					path, cp.Name, cp.Cascade.ResidualVars, cp.Cascade.ResidualStmts,
					cp.IPVars, cp.IPSize)
			}
			if len(cp.Cascade.Tiers) == 0 && len(cp.Cascade.Checks) > 0 {
				t.Errorf("%s %s: checks recorded but no tiers ran", path, cp.Name)
			}
			for _, c := range cp.Cascade.Checks {
				if c.Tier == "" {
					t.Errorf("%s %s: check %q has no deciding tier", path, cp.Name, c.Check)
				}
			}
			if pp.Cascade != nil {
				t.Errorf("%s %s: plain run carries cascade stats", path, pp.Name)
			}
		}
	}
}

// TestConvertProcNilIP: violations produced upstream of C2IP come with a
// nil integer program; report conversion must not dereference it.
func TestConvertProcNilIP(t *testing.T) {
	pr := &core.ProcReport{
		Name:       "broken",
		Violations: []analysis.Violation{{Msg: "format string is not constant"}},
	}
	p := convertProc(pr) // must not panic
	if len(p.Messages) != 1 {
		t.Fatalf("messages = %d, want 1", len(p.Messages))
	}
	if p.Messages[0].Text == "" {
		t.Error("empty message text")
	}
	if p.IntegerProgram != "" {
		t.Errorf("IntegerProgram = %q, want empty for nil IP", p.IntegerProgram)
	}
}

func TestWideningDelayValidation(t *testing.T) {
	_, err := Analyze("x.c", "void f(void) {}", Config{WideningDelay: -1})
	if err == nil {
		t.Fatal("WideningDelay -1 accepted")
	}
	const want = "WideningDelay must be >= 0"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Errorf("error %q does not mention %q", got, want)
	}
}
