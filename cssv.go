// Package cssv is a Go implementation of CSSV (C String Static Verifier),
// the sound static analyzer for C string manipulation errors of
//
//	Nurit Dor, Michael Rodeh, Mooly Sagiv:
//	"CSSV: Towards a Realistic Tool for Statically Detecting All Buffer
//	Overflows in C", PLDI 2003.
//
// CSSV analyzes each procedure separately against programmer-supplied (or
// automatically derived) contracts. The pipeline (paper Fig. 1):
//
//  1. contracts are inlined as assume/assert statements and the program is
//     normalized to CoreC;
//  2. a whole-program flow-insensitive pointer analysis yields procedural
//     points-to information, biased so formal parameters admit strong
//     updates (the Fig. 7 "parameterizable" merge);
//  3. the C2IP transformation produces a nondeterministic integer program
//     over constraint variables (offsets, allocation sizes, string lengths,
//     terminator flags);
//  4. a linear-relation analysis over convex polyhedra (Cousot–Halbwachs)
//     checks every assertion and reports counter-examples for the rest.
//
// Being conservative, CSSV reports every runtime string error, at the cost
// of occasional false alarms.
//
// Quick start:
//
//	rep, err := cssv.Analyze("prog.c", source, cssv.Config{})
//	for _, p := range rep.Procedures {
//	    for _, m := range p.Messages {
//	        fmt.Println(m.Text)
//	    }
//	}
package cssv

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/c2ip"
	"repro/internal/core"
	"repro/internal/ctypes"
	"repro/internal/derive"
	"repro/internal/linear"
	"repro/internal/ppt"
	"repro/internal/schedule"
)

// Config selects analysis variants. The zero value is the paper's
// configuration: polyhedra domain, inclusion-based pointer analysis,
// manual contracts, PPT merging on.
type Config struct {
	// Domain: "polyhedra" (default), "interval", or "zone".
	Domain string
	// Pointer: "inclusion" (default) or "unification".
	Pointer string
	// Target selects the object-layout data model: "paper32" (default) is
	// the paper's packed 32-bit model; "sysv64" applies the System V AMD64
	// ABI rules (8-byte pointers, alignment padding, bitfield storage
	// units) and enables the field-sensitive member-store transfer and
	// access-path location naming.
	Target string
	// Contracts: "manual" (default), "vacuous" (side effects only), or
	// "auto" (derive pre/postconditions first, paper §4).
	Contracts string
	// Procedures restricts the analysis; nil analyzes every defined
	// procedure.
	Procedures []string
	// DisablePPTMerging turns off the Fig. 7 strong-update merge
	// (for ablation: every update through a formal becomes weak).
	DisablePPTMerging bool
	// NaiveC2IP selects the O(S*V^2) translation of the authors' earlier
	// tool [13] (for the §3.4.2.4 complexity comparison).
	NaiveC2IP bool
	// StrictZeroStore uses the guarded null-store transfer instead of the
	// paper's Table 4 rule (see DESIGN.md).
	StrictZeroStore bool
	// NoLibc disables the built-in standard-library contract models.
	NoLibc bool
	// Workers bounds how many procedures are analyzed concurrently. CSSV
	// verifies each procedure separately against contracts, so the
	// per-procedure pipelines are independent and fan out over a bounded
	// worker pool; results are deterministic (input order, identical
	// messages) for every worker count. 0 uses all CPUs
	// (runtime.GOMAXPROCS); 1 forces the sequential driver, which is also
	// the only mode in which Procedure.Space is measured.
	Workers int
	// WideningDelay defers widening at loop heads (default 1).
	WideningDelay int
	// Cascade discharges checks in tiers: the integer program is reduced
	// (unreachable-node pruning, constant/copy propagation, per-assertion
	// backward slicing), the interval domain proves what it can, the zone
	// domain takes the residue, and the configured Domain (polyhedra by
	// default) analyzes only the slice of the checks the cheap tiers could
	// not prove. Reported messages are unchanged; per-tier statistics
	// appear in Procedure.Cascade.
	Cascade bool
	// Certify validates the analysis a posteriori. Every discharged check
	// yields an invariant certificate that an independent Fourier–Motzkin
	// checker (exact rational arithmetic, no polyhedra code) re-proves, and
	// every reported message is replayed through a deterministic directed
	// interpreter of the integer program and classified "witnessed" (a
	// concrete trace reaches the failing check) or "potential" (possible
	// false alarm). Results appear in Procedure.Certification.
	Certify bool
	// ProcTimeout bounds the wall-clock time of each procedure's pipeline
	// (0 = unlimited). On expiry the analysis degrades gracefully: the
	// procedure's remaining checks are reported as unresolved potential
	// errors (never silently "safe"), Procedure.Degraded records the
	// cause, and the run completes.
	ProcTimeout time.Duration
	// StepBudget bounds the fixpoint iterations per procedure
	// (0 = unlimited). Exhaustion degrades exactly like ProcTimeout but
	// is fully deterministic.
	StepBudget int
	// MaxRays overrides the polyhedra ray cap per run (0 = default,
	// negative = unlimited); drops at the cap are counted in
	// RunStats.PrecisionDrops.
	MaxRays int
	// Octagon inserts the octagon tier (±x±y difference constraints on a
	// doubled-variable DBM) between the zone tier and the final domain.
	// The tier lives in the cascade, so setting it implies Cascade.
	Octagon bool
	// NoArena disables the per-procedure slice arenas that recycle
	// numeric-substrate storage. On by default; the toggle exists for
	// debugging and ablation.
	NoArena bool
	// CacheDir enables the content-addressed on-disk result cache rooted at
	// this directory (created if missing). Results are keyed by structural
	// hashes of the procedure body, the run configuration, and the textual
	// environment (other declarations, libc prelude, the procedure's own
	// contract, raw source positions). An exact hit replays the stored
	// result; when only the environment changed, the stored invariant
	// certificates are re-proved by the independent Fourier–Motzkin checker
	// instead of re-running the fixpoint (the certificate-revalidation fast
	// path). Corrupt or tampered entries are detected, logged, counted in
	// RunStats.CacheBadEntries / CacheCertRejected, and analyzed around —
	// never trusted. Reports are byte-identical to an uncached run.
	CacheDir string
	// CacheVerify re-proves the certificates and re-checks the assert
	// accounting of every exact cache hit before trusting it (paranoid
	// mode; integrity digests are always verified regardless).
	CacheVerify bool
	// PtCacheSize bounds the process-wide pointer-analysis memo (0 = the
	// 128-entry default, negative = unbounded). Overflow evicts oldest
	// entries first; evictions appear in RunStats.PtCacheEvictions.
	PtCacheSize int
	// Schedule selects the cascade's tier scheduling: "off" (default, or
	// empty) runs the fixed interval→zone→…→final cascade through the
	// legacy code path with byte-identical reports; "static" routes every
	// check through the scheduler with the fixed plan (deterministic
	// exercise of the scheduled path); "adaptive" plans per-check tier
	// order and per-tier step budgets from static slice features and the
	// recorded cross-run profile. Scheduling redistributes cost only: the
	// final domain always runs last and unbudgeted, so no verdict can
	// change. A non-off mode implies Cascade.
	Schedule string
	// ScheduleProfile is the directory for the adaptive scheduler's
	// cross-run outcome profiles. Empty defaults to <CacheDir>/schedule
	// when CacheDir is set; with neither, outcomes stay in-memory and the
	// adaptive scheduler starts cold each run.
	ScheduleProfile string
}

// Message is one potential string error.
type Message struct {
	// Pos is the blamed source position ("file:line:col").
	Pos string
	// Text describes the violated requirement.
	Text string
	// CounterExample assigns constraint variables values under which the
	// requirement fails (paper Fig. 8); may be empty.
	CounterExample map[string]string
	// Unverifiable marks conditions outside linear arithmetic.
	Unverifiable bool
	// Unresolved marks checks the analysis gave up on (budget exhausted
	// or the procedure's pipeline panicked); they are conservatively
	// reported as potential errors.
	Unresolved bool
}

// Procedure is the per-procedure result (one row of the paper's Table 5).
type Procedure struct {
	Name string
	// LOC and SLOC: source lines before/after the source-to-source
	// transformations.
	LOC, SLOC int
	// IPVars and IPSize: constraint variables and statements of the
	// generated integer program.
	IPVars, IPSize int
	// CPU is the elapsed time of the procedure's pipeline. Space is the
	// process-wide heap-allocation delta around it, measured only under
	// Workers == 1 (0 otherwise: a global counter cannot attribute
	// allocations to one procedure while others run concurrently).
	CPU   time.Duration
	Space uint64
	// Messages are the reported potential errors; Warnings are
	// non-blocking notes (e.g. non-constant format strings).
	Messages []Message
	Warnings []string
	// DerivedRequires / DerivedEnsures carry the auto-derived contract
	// under Contracts: "auto".
	DerivedRequires string
	DerivedEnsures  string
	// IntegerProgram is the pretty-printed C2IP output.
	IntegerProgram string
	// Cascade holds the tier statistics and per-check provenance under
	// Config.Cascade (nil otherwise).
	Cascade *CascadeStats
	// Certification holds the per-check certification outcome under
	// Config.Certify (nil otherwise).
	Certification *CertificationStats
	// Degraded is non-nil when this procedure's analysis did not run to
	// completion (budget exhausted or panic isolated); its unresolved
	// checks appear in Messages.
	Degraded *Degradation
	// CacheStatus records, under Config.CacheDir, how the result cache
	// participated: "hit" (exact replay), "revalidated" (certificates
	// re-proved, no fixpoint), "stored" (fresh result written), "uncached"
	// (result not storable), or "" (caching disabled).
	CacheStatus string
}

// Degradation explains why a procedure's analysis fell short of a full
// run.
type Degradation struct {
	// Cause is "deadline", "step-budget", or "panic".
	Cause string
	// Detail is a human-readable description.
	Detail string
	// Stack is the goroutine stack for panics (empty otherwise).
	Stack string
	// Unresolved counts checks reported as unresolved potential errors.
	Unresolved int
}

// CertificationStats summarizes one procedure's a-posteriori validation.
type CertificationStats struct {
	// Checks in program order: every discharged check with its certificate
	// verdict, every reported message with its replay verdict.
	Checks []CheckCertification
	// Certified counts checks whose certificate the independent checker
	// re-proved; Failed counts rejected certificates (an analyzer or
	// exporter bug — never expected in a release build). Witnessed counts
	// messages replayed to a concrete failing trace (true errors);
	// Potential the rest (possible false alarms).
	Certified, Failed, Witnessed, Potential int
}

// CheckCertification is the certification outcome for one check.
type CheckCertification struct {
	// Pos is the blamed source position; Check describes the property.
	Pos   string
	Check string
	// Tier is the domain that decided the check ("unreachable" when CFG
	// pruning removed it).
	Tier string
	// Status is "certified", "certificate-failed", "witnessed", or
	// "potential".
	Status string
	// Detail explains the status (verification error, replay note).
	Detail string
	// TraceLen is the length of the witnessing trace (witnessed only).
	TraceLen int
}

// CascadeStats describes how the tiered cascade discharged a procedure's
// checks.
type CascadeStats struct {
	// Tiers ran cheapest first; each analyzed only the slice of the checks
	// the previous tiers could not prove.
	Tiers []CascadeTier
	// Checks gives per-assert provenance in program order.
	Checks []CheckOrigin
	// ResidualVars and ResidualStmts are the dimensions of the sliced
	// sub-program that reached the final (polyhedra) tier; both are 0 when
	// the cheap tiers discharged every check.
	ResidualVars, ResidualStmts int
	// ReducedProgram is the pretty-printed residual integer program.
	ReducedProgram string
	// Decisions lists the scheduler's plans, one per group of checks that
	// shared a plan (nil under Config.Schedule "off", and for procedures
	// replayed from the result cache, which stores verdicts, not
	// scheduling history).
	Decisions []ScheduleDecision
}

// ScheduleDecision is one plan the scheduler applied to a group of
// checks.
type ScheduleDecision struct {
	// Checks are the integer-program statement indices of the group.
	Checks []int
	// Order lists the tiers tried, in order; Budgets the per-tier step
	// budget (0 = unbudgeted). Source is "static" (fixed order) or
	// "profile" (steered by recorded outcomes).
	Order   []string
	Budgets []int
	Source  string
}

// CascadeTier is one tier of the cascade.
type CascadeTier struct {
	// Domain names the tier's abstract domain.
	Domain string
	// IPVars and IPSize measure the sliced sub-program this tier analyzed.
	IPVars, IPSize int
	// Asserts entered the tier; Discharged were proven by it.
	Asserts, Discharged int
	// CPU is the tier's fixpoint time.
	CPU time.Duration
}

// CheckOrigin records which tier decided one check.
type CheckOrigin struct {
	// Pos is the blamed source position.
	Pos string
	// Check describes the verified property.
	Check string
	// Tier is the domain that discharged the check ("unreachable" when
	// pruning removed it), or the final domain when Violated.
	Tier string
	// Violated marks checks reported as messages.
	Violated bool
	// IPVars and IPSize are the dimensions of the sub-program in which the
	// check was decided.
	IPVars, IPSize int
}

// Report is the result of one analysis run.
type Report struct {
	Procedures []Procedure
	// Stats aggregates whole-run cost and cache effectiveness.
	Stats RunStats
}

// RunStats describes one analysis run.
type RunStats struct {
	// Workers is the pool size actually used.
	Workers int
	// Wall is the run's elapsed time; SequentialCPU sums the per-procedure
	// pipeline times (what a Workers=1 run would need, modulo caches).
	Wall          time.Duration
	SequentialCPU time.Duration
	// PointerCacheHits / PointerCacheMisses count memoized whole-program
	// pointer analyses; LibcHeaderReused reports whether the parsed libc
	// contract header was already cached when the run started.
	PointerCacheHits, PointerCacheMisses int
	LibcHeaderReused                     bool
	// PrecisionDrops counts constraints the polyhedra substrate dropped at
	// its ray cap during this run (each is a sound over-approximation, but
	// nonzero means precision was lost).
	PrecisionDrops int
	// DegradedProcs counts procedures cut short by a budget or isolated
	// after a panic; UnresolvedChecks counts their checks conservatively
	// reported as potential errors.
	DegradedProcs    int
	UnresolvedChecks int
	// ArenaRecycledBytes sums the bytes the per-procedure slice arenas
	// served out of their free lists instead of the heap (0 under
	// Config.NoArena). Deterministic per input.
	ArenaRecycledBytes int64
	// SparseZoneSelections / DenseZoneSelections count the zone
	// substrate's representation decisions at closure boundaries.
	SparseZoneSelections, DenseZoneSelections int64
	// CacheHits / CacheRevalidated / CacheMisses count, under
	// Config.CacheDir, how each cacheable procedure was resolved: exact
	// replay, certificate revalidation (front end re-run, certificates
	// re-proved, no fixpoint), or full analysis. CacheStores counts entries
	// written. CacheBadEntries counts corrupt or undecodable entries
	// encountered (logged and analyzed around); CacheCertRejected counts
	// entries rejected because a stored certificate failed re-verification
	// or assert accounting.
	CacheHits, CacheRevalidated, CacheMisses int
	CacheStores                              int
	CacheBadEntries, CacheCertRejected       int
	// PtCacheEvictions counts pointer-analysis memo entries evicted because
	// the memo reached its configured bound.
	PtCacheEvictions int
	// FixpointIterations sums the fixpoint worklist iterations actually
	// executed this run; cached procedures contribute nothing, so a fully
	// warm run reports 0.
	FixpointIterations int
	// MemberResolved / MemberHavocked count memory-access sites translated
	// with precise offset/aSize constraints for every possible target region
	// versus sites where a channel was abandoned (unknown target, untracked
	// offset, or the legacy wide-store terminator havoc).
	MemberResolved, MemberHavocked int
	// ScheduleMode names the cascade scheduling mode of the run ("off",
	// "static", "adaptive"). ScheduleDecisions counts the plans the
	// scheduler applied across procedures; ScheduleFromProfile how many
	// were steered by the recorded profile rather than the static
	// fallback.
	ScheduleMode        string
	ScheduleDecisions   int
	ScheduleFromProfile int
	// TierDischarged counts discharged checks per cascade tier name
	// (plus "unreachable" for CFG-pruned checks); nil when the cascade
	// did not run.
	TierDischarged map[string]int
}

// Messages returns all messages across procedures.
func (r *Report) Messages() []Message {
	var out []Message
	for _, p := range r.Procedures {
		out = append(out, p.Messages...)
	}
	return out
}

// Analyze runs CSSV over C source text.
func Analyze(filename, source string, cfg Config) (*Report, error) {
	opts, err := cfg.driverOptions()
	if err != nil {
		return nil, err
	}
	rep, err := core.AnalyzeSource(filename, source, opts)
	if err != nil {
		return nil, err
	}
	out := &Report{Stats: RunStats(rep.Stats)}
	for i := range rep.Procs {
		out.Procedures = append(out.Procedures, convertProc(&rep.Procs[i]))
	}
	return out, nil
}

// AnalyzeFile runs CSSV over a C source file.
func AnalyzeFile(path string, cfg Config) (*Report, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Analyze(path, string(src), cfg)
}

// DeriveContracts runs the paper's §4 derivation (ASPost + AWPre) for one
// procedure and returns the derived clauses in contract-language syntax.
func DeriveContracts(filename, source, proc string) (requires, ensures string, err error) {
	prog, err := core.Prepare(filename, source, false)
	if err != nil {
		return "", "", err
	}
	res, err := derive.Derive(prog, proc, derive.Options{})
	if err != nil {
		return "", "", err
	}
	return res.RequiresText, res.EnsuresText, nil
}

func (cfg Config) driverOptions() (core.Options, error) {
	if cfg.WideningDelay < 0 {
		return core.Options{}, fmt.Errorf("cssv: WideningDelay must be >= 0, got %d", cfg.WideningDelay)
	}
	if cfg.Workers < 0 {
		return core.Options{}, fmt.Errorf("cssv: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.ProcTimeout < 0 {
		return core.Options{}, fmt.Errorf("cssv: ProcTimeout must be >= 0, got %v", cfg.ProcTimeout)
	}
	if cfg.StepBudget < 0 {
		return core.Options{}, fmt.Errorf("cssv: StepBudget must be >= 0, got %d", cfg.StepBudget)
	}
	schedMode, err := schedule.ParseMode(cfg.Schedule)
	if err != nil {
		return core.Options{}, fmt.Errorf("cssv: %v", err)
	}
	opts := core.Options{
		// The scheduler lives in the cascade, so a non-off mode implies it
		// (like Octagon).
		Cascade:         cfg.Cascade || cfg.Octagon || schedMode != schedule.Off,
		Schedule:        schedMode,
		ScheduleProfile: cfg.ScheduleProfile,
		Certify:         cfg.Certify,
		CacheDir:        cfg.CacheDir,
		CacheVerify:     cfg.CacheVerify,
		PtCacheSize:     cfg.PtCacheSize,
		Procs:           cfg.Procedures,
		NoLibc:          cfg.NoLibc,
		Workers:         cfg.Workers,
		WideningDelay:   cfg.WideningDelay,
		ProcDeadline:    cfg.ProcTimeout,
		StepBudget:      cfg.StepBudget,
		MaxRays:         cfg.MaxRays,
		Octagon:         cfg.Octagon,
		NoArena:         cfg.NoArena,
		PPT:             ppt.Options{DisableMerging: cfg.DisablePPTMerging},
		C2IP: c2ip.Options{
			Naive:           cfg.NaiveC2IP,
			StrictZeroStore: cfg.StrictZeroStore,
		},
	}
	switch cfg.Domain {
	case "", "polyhedra":
		opts.Domain = analysis.PolyDomain{}
	case "interval":
		opts.Domain = analysis.IntervalDomain{}
	case "zone":
		opts.Domain = analysis.ZoneDomain{}
	default:
		return opts, fmt.Errorf("cssv: unknown domain %q", cfg.Domain)
	}
	switch cfg.Pointer {
	case "", "inclusion":
	case "unification":
		opts.PointerMode = 1
	default:
		return opts, fmt.Errorf("cssv: unknown pointer mode %q", cfg.Pointer)
	}
	switch cfg.Contracts {
	case "", "manual":
		opts.Contracts = core.ManualContracts
	case "vacuous":
		opts.Contracts = core.VacuousContracts
	case "auto":
		opts.Contracts = core.AutoContracts
	default:
		return opts, fmt.Errorf("cssv: unknown contract mode %q", cfg.Contracts)
	}
	target, err := ctypes.ParseTarget(cfg.Target)
	if err != nil {
		return opts, fmt.Errorf("cssv: %v", err)
	}
	opts.Target = target
	return opts, nil
}

func convertProc(pr *core.ProcReport) Procedure {
	p := Procedure{
		Name:   pr.Name,
		LOC:    pr.LOC,
		SLOC:   pr.SLOC,
		IPVars: pr.IPVars,
		IPSize: pr.IPSize,
		CPU:    pr.CPU,
		Space:  pr.Space,

		CacheStatus: pr.CacheStatus,
	}
	// The IP can be nil when a pipeline stage upstream of C2IP produced the
	// violations; formatting must not dereference it.
	var space *linear.Space
	if pr.IP != nil {
		p.IntegerProgram = pr.IP.String()
		space = pr.IP.Space
	}
	for _, v := range pr.Violations {
		m := Message{
			Pos:          v.Pos.String(),
			Text:         analysis.FormatViolation(v, space),
			Unverifiable: v.Unverifiable,
			Unresolved:   v.Unresolved,
		}
		if len(v.CounterExample) > 0 {
			m.CounterExample = map[string]string{}
			var names []string
			for name := range v.CounterExample {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				m.CounterExample[name] = v.CounterExample[name].RatString()
			}
		}
		p.Messages = append(p.Messages, m)
	}
	for _, w := range pr.Warnings {
		p.Warnings = append(p.Warnings, fmt.Sprintf("%s: %s", w.Pos, w.Msg))
	}
	if pr.Derived != nil {
		p.DerivedRequires = pr.Derived.RequiresText
		p.DerivedEnsures = pr.Derived.EnsuresText
	}
	if pr.Cascade != nil {
		cs := &CascadeStats{
			ResidualVars:  pr.Cascade.ResidualVars,
			ResidualStmts: pr.Cascade.ResidualStmts,
		}
		if pr.Cascade.Residual != nil {
			cs.ReducedProgram = pr.Cascade.Residual.String()
		}
		for _, t := range pr.Cascade.Tiers {
			cs.Tiers = append(cs.Tiers, CascadeTier{
				Domain: t.Domain, IPVars: t.Vars, IPSize: t.Stmts,
				Asserts: t.Asserts, Discharged: t.Discharged, CPU: t.CPU,
			})
		}
		for _, c := range pr.Cascade.Checks {
			cs.Checks = append(cs.Checks, CheckOrigin{
				Pos: c.Pos.String(), Check: c.Msg, Tier: c.Tier,
				Violated: c.Violated, IPVars: c.Vars, IPSize: c.Stmts,
			})
		}
		for _, d := range pr.Cascade.Sched {
			cs.Decisions = append(cs.Decisions, ScheduleDecision{
				Checks: d.Checks, Order: d.Order, Budgets: d.Budgets,
				Source: d.Source,
			})
		}
		p.Cascade = cs
	}
	if pr.Degraded != nil {
		p.Degraded = &Degradation{
			Cause:      pr.Degraded.Cause,
			Detail:     pr.Degraded.Detail,
			Stack:      pr.Degraded.Stack,
			Unresolved: pr.Degraded.Unresolved,
		}
	}
	if pr.Certification != nil {
		st := &CertificationStats{
			Certified: pr.Certification.Certified,
			Failed:    pr.Certification.Failed,
			Witnessed: pr.Certification.Witnessed,
			Potential: pr.Certification.Potential,
		}
		for _, c := range pr.Certification.Checks {
			st.Checks = append(st.Checks, CheckCertification{
				Pos: c.Pos.String(), Check: c.Msg, Tier: c.Tier,
				Status: string(c.Status), Detail: c.Detail,
				TraceLen: c.TraceLen,
			})
		}
		p.Certification = st
	}
	return p
}
