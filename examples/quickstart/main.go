// Quickstart: analyze a small C program with CSSV and print every
// potential string error with its counter-example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// A classic unsafe pattern: the copy loop writes through dst without any
// relation between the source length and the destination capacity, and the
// greeting buffer is one byte too small for the longest input the contract
// admits.
const source = `
void copy_into(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) > strlen(src))
    modifies (dst)
    ensures (is_nullt(dst))
{
    char c;
    c = *src;
    while (c != '\0') {
        *dst = c;
        dst = dst + 1;
        src = src + 1;
        c = *src;
    }
    *dst = '\0';
}

void greet(char *name)
    requires (is_nullt(name) && strlen(name) <= 16)
{
    char buf[16];
    copy_into(buf, name);
}
`

func main() {
	rep, err := cssv.Analyze("greeting.c", source, cssv.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rep.Procedures {
		fmt.Printf("== %s: %d message(s) ==\n", p.Name, len(p.Messages))
		for _, m := range p.Messages {
			fmt.Println(m.Text)
		}
	}
	// copy_into verifies: the contract guarantees the copy fits.
	// greet is flagged: a 16-character name needs 17 bytes.
	fmt.Println("CSSV is sound: the missing byte in greet cannot escape it.")
}
