// Layout: field-sensitive struct analysis under an ABI-accurate object
// layout. The same source is analyzed twice: under the paper's packed
// 32-bit model (paper32) a store to a neighbouring struct member havocs
// everything known about the string field and produces a false alarm;
// under the field-sensitive sysv64 target the layout engine proves the
// store lands beyond the terminator, the fact survives, and every check
// is discharged with an independently verified certificate. A union
// overlay shows the converse: overlapping members must invalidate each
// other, and still do.
//
//	go run ./examples/layout
package main

import (
	"fmt"
	"log"

	"repro"
)

// stamp sets the integer member next to an in-struct string and then
// walks the string. The store to p->count is a 4-byte write at offset 8,
// strictly beyond any terminator the contract admits (strlen(p) < 8).
const structSource = `
struct pkt {
    char name[8];
    int count;
};

void stamp(struct pkt *p)
    requires (alloc(p) == 12 && is_nullt(p) && strlen(p) < 8)
    modifies (*p)
{
    char *s;
    p->count = 7;
    s = p->name;
    while (*s != '\0')
        s = s + 1;
}
`

// relabel does the same dance through a union: tag and v share offset 0,
// so the store to u->v really can erase the terminator. The alarm here is
// genuine and must survive field sensitivity.
const unionSource = `
union tagval {
    char tag[4];
    int v;
};

void relabel(union tagval *u)
    requires (alloc(u) == 4 && is_nullt(u) && strlen(u) < 4)
    modifies (*u)
{
    char *s;
    u->v = 257;
    s = u->tag;
    while (*s != '\0')
        s = s + 1;
}
`

func messages(rep *cssv.Report) int {
	n := 0
	for _, p := range rep.Procedures {
		n += len(p.Messages)
	}
	return n
}

func main() {
	// 1. The packed model: the word store through p->count is a "wide"
	// store into the pkt region, so the analysis forgets the terminator
	// and flags the loop read as a potential overflow.
	packed, err := cssv.Analyze("pkt.c", structSource, cssv.Config{Target: "paper32"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper32: stamp reports %d message(s)\n", messages(packed))
	for _, m := range packed.Messages() {
		fmt.Println(m.Text)
	}

	// 2. The field-sensitive model: the layout engine places count at
	// offset 8, past every admissible terminator, so the known string
	// facts survive the store and the loop verifies. Certification
	// re-proves each discharged check with the independent
	// Fourier-Motzkin checker.
	abi, err := cssv.Analyze("pkt.c", structSource, cssv.Config{Target: "sysv64", Certify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sysv64: stamp reports %d message(s)", messages(abi))
	if c := abi.Procedures[0].Certification; c != nil {
		fmt.Printf(", %d check(s) certified, %d failed", c.Certified, c.Failed)
	}
	fmt.Println()
	fmt.Printf("sysv64: member accesses resolved=%d havocked=%d\n",
		abi.Stats.MemberResolved, abi.Stats.MemberHavocked)

	// 3. The union overlay: v and tag overlap, so the store through u->v
	// must — and does — invalidate the terminator even under sysv64.
	overlay, err := cssv.Analyze("un.c", unionSource, cssv.Config{Target: "sysv64"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sysv64: relabel (union overlay) reports %d message(s)\n", messages(overlay))

	fmt.Println("layout sensitivity removes the false alarm and keeps the real one.")
}
