// Contract derivation (paper §4): run ASPost and AWPre on SkipLine with a
// vacuous contract and print the automatically derived clauses, matching
// the shape of the paper's equation (1): the buffer is null-terminated,
// the new string length is zero, and the pointer advanced by at least
// NbLine from its entry value.
//
//	go run ./examples/derive
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`

func main() {
	req, ens, err := cssv.DeriveContracts("skipline.c", source, "SkipLine")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("automatically derived contract for SkipLine:")
	if req == "" {
		req = "1 /* true */"
	}
	fmt.Printf("    requires (%s)\n", req)
	fmt.Printf("    ensures  (%s)\n\n", ens)

	fmt.Println("compare paper §4.1 equation (1):")
	fmt.Println("    N.is_nullt = true")
	fmt.Println("    N.len = rvPtrEndText.offset            (strlen == 0)")
	fmt.Println("    rvPtrEndText.offset >= <offset@pre> + NbLine")
	fmt.Println()
	fmt.Println("As the paper notes, the derived offset relation is an inequality —")
	fmt.Println("weaker than the manually provided equality — because the integer")
	fmt.Println("analysis joins the two loop behaviors.")
}
