// Audit scenario: point CSSV at a legacy line-processing tool (the
// fixwrites-style suite, a stand-in for the web2c component the paper
// evaluates) and triage the findings: real errors first, sorted by
// procedure, with counter-examples.
//
//	go run ./examples/audit [path/to/file.c]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	path := "testdata/fixwrites/fixwrites.c"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	rep, err := cssv.AnalyzeFile(path, cssv.Config{})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	clean := 0
	for _, p := range rep.Procedures {
		if len(p.Messages) == 0 {
			clean++
			continue
		}
		fmt.Printf("== %s — %d finding(s) ==\n", p.Name, len(p.Messages))
		for _, m := range p.Messages {
			fmt.Println(m.Text)
			total++
		}
		fmt.Println()
	}
	fmt.Printf("audit complete: %d procedures, %d verified clean, %d finding(s)\n",
		len(rep.Procedures), clean, total)
	fmt.Println("CSSV is conservative: procedures reported clean are free of")
	fmt.Println("string manipulation errors on every input.")
}
