// The paper's running example (Figs. 3, 4 and 8): SkipLine from EADS
// Airbus is verified without false alarms, while the toy main has an
// off-by-one error that CSSV pinpoints with a counter-example, reproducing
// the Fig. 8 report.
//
//	go run ./examples/skipline
package main

import (
	"fmt"
	"log"

	"repro"
)

const source = `
#define SIZE 1024

/* Paper Fig. 4: the contract of SkipLine. */
void SkipLine(int NbLine, char **PtrEndText)
    requires (is_within_bounds(*PtrEndText) &&
              alloc(*PtrEndText) > NbLine && NbLine >= 0)
    modifies (*PtrEndText), (is_nullt(*PtrEndText)), (strlen(*PtrEndText))
    ensures (is_nullt(*PtrEndText) && strlen(*PtrEndText) == 0 &&
             *PtrEndText == pre(*PtrEndText) + NbLine)
{
    /* Paper Fig. 3: the CoreC body. */
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}

/* Paper Fig. 3: the toy main with the off-by-one error. When fgets fills
   the buffer completely (SIZE-2 characters plus the terminator), there is
   no room for the extra newline of the second SkipLine call. */
void main() {
    char buf[SIZE];
    char *r;
    char *s;
    int n;
    r = buf;
    SkipLine(1, &r);
    fgets(r, SIZE - 1, 0);
    n = strlen(r);
    s = r + n;
    SkipLine(1, &s);
}
`

func main() {
	rep, err := cssv.Analyze("skipline.c", source, cssv.Config{})
	if err != nil {
		log.Fatal(err)
	}

	sl := findProc(rep, "SkipLine")
	fmt.Printf("SkipLine: %d message(s) — ", len(sl.Messages))
	if len(sl.Messages) == 0 {
		fmt.Println("verified, no false alarms (paper §2.3)")
	} else {
		fmt.Println("unexpected!")
	}
	fmt.Printf("  statistics: LOC=%d SLOC=%d IP vars=%d IP stmts=%d CPU=%s\n\n",
		sl.LOC, sl.SLOC, sl.IPVars, sl.IPSize, sl.CPU.Round(1e6))

	mn := findProc(rep, "main")
	fmt.Printf("main: %d message(s) — the off-by-one at the second SkipLine call\n", len(mn.Messages))
	for _, m := range mn.Messages {
		// The Fig. 8-style report: the violated requirement and the
		// constraint-variable assignment on which it fails.
		fmt.Println(m.Text)
	}
}

func findProc(rep *cssv.Report, name string) *cssv.Procedure {
	for i := range rep.Procedures {
		if rep.Procedures[i].Name == name {
			return &rep.Procedures[i]
		}
	}
	log.Fatalf("procedure %s missing", name)
	return nil
}
