// Command cssv-serve runs the C String Static Verifier as a long-lived
// daemon with a small HTTP batch API. One warm process (in-memory
// pointer memo, parsed libc header) and one on-disk analysis cache are
// shared across every request, so re-verifying a slowly changing code
// base pays the fixpoint cost only for procedures that actually changed.
//
// Daemon:
//
//	cssv-serve -addr 127.0.0.1:7996 -cache-dir /path/to/cache
//
// Client (for scripts and CI; retries the connection while the daemon
// starts, prints the report, and exits with the CLI's status code):
//
//	cssv-serve -submit file.c -addr 127.0.0.1:7996 [-cascade] [-certify] [-stats] [-q]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7996", "listen (or, with -submit, connect) address")
		cacheDir    = flag.String("cache-dir", "", "directory for the shared on-disk analysis cache (default: in-process warmth only)")
		cacheVerify = flag.Bool("cache-verify", false, "re-verify stored certificates before trusting exact cache hits")
		jobs        = flag.Int("j", 0, "procedures analyzed in parallel per request (0 = all CPUs)")
		maxBody     = flag.Int64("max-request-bytes", 0, "largest accepted request body in bytes (0 = 64 MiB default, negative = unbounded); larger bodies get 413")
		grace       = flag.Duration("shutdown-grace", 5*time.Minute, "on SIGINT/SIGTERM, how long in-flight requests may finish before being cut off")
		submit      = flag.String("submit", "", "client mode: analyze this C file via a running daemon instead of serving")
		wait        = flag.Duration("connect-timeout", 10*time.Second, "client mode: how long to retry connecting to the daemon")

		domain    = flag.String("domain", "", "client mode: numeric domain (default: daemon default, polyhedra)")
		pointer   = flag.String("pointer", "", "client mode: pointer analysis (default inclusion)")
		target    = flag.String("target", "", "client mode: object-layout data model (default paper32)")
		contracts = flag.String("contracts", "", "client mode: contract mode (default manual)")
		cascade   = flag.Bool("cascade", false, "client mode: discharge checks in tiers")
		certify   = flag.Bool("certify", false, "client mode: verify invariant certificates")
		octagon   = flag.Bool("octagon", false, "client mode: insert the octagon tier (implies -cascade)")
		schedMode = flag.String("schedule", "", "client mode: cascade tier scheduler (off, static, adaptive)")
		stats     = flag.Bool("stats", false, "client mode: print per-procedure statistics")
		quiet     = flag.Bool("q", false, "client mode: suppress warnings")
	)
	flag.Parse()

	if *submit != "" {
		os.Exit(clientMain(*addr, *submit, *wait, serve.RequestConfig{
			Domain:    *domain,
			Pointer:   *pointer,
			Target:    *target,
			Contracts: *contracts,
			Cascade:   *cascade,
			Certify:   *certify,
			Octagon:   *octagon,
			Schedule:  *schedMode,
			Stats:     *stats,
			Quiet:     *quiet,
		}))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cssv-serve [flags]   or   cssv-serve -submit file.c [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv := &serve.Server{
		CacheDir:        *cacheDir,
		CacheVerify:     *cacheVerify,
		Workers:         *jobs,
		MaxRequestBytes: *maxBody,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-serve:", err)
		os.Exit(2)
	}
	ctx, stop := serve.NotifyContext(context.Background())
	defer stop()
	fmt.Fprintf(os.Stderr, "cssv-serve: listening on %s (cache-dir=%q)\n", *addr, *cacheDir)
	err = serve.RunServer(ctx, ln, srv, *grace)
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "cssv-serve: shut down cleanly")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "cssv-serve: shutdown grace expired with requests in flight")
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "cssv-serve:", err)
		os.Exit(2)
	}
}

// clientMain submits one file to a running daemon and mirrors the cssv
// command's stdout and exit status. Connection errors are retried until
// the deadline so CI can start the daemon and the client back to back.
func clientMain(addr, path string, wait time.Duration, cfg serve.RequestConfig) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-serve:", err)
		return 2
	}
	body, err := json.Marshal(serve.Request{Filename: path, Source: string(src), Config: cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-serve:", err)
		return 2
	}
	url := "http://" + addr + "/v1/analyze"
	deadline := time.Now().Add(wait)
	var resp *http.Response
	for {
		resp, err = http.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "cssv-serve: daemon unreachable:", err)
			return 2
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "cssv-serve: daemon returned %s\n", resp.Status)
		return 2
	}
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Fprintln(os.Stderr, "cssv-serve:", err)
		return 2
	}
	if out.Error != "" {
		fmt.Fprintln(os.Stderr, "cssv:", out.Error)
		return out.ExitCode
	}
	os.Stdout.WriteString(out.Output)
	return out.ExitCode
}
