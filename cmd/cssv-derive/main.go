// Command cssv-derive runs the contract-derivation algorithms of paper §4
// (ASPost for postconditions, AWPre for preconditions) and prints the
// derived contract in the tool's contract language.
//
// Usage:
//
//	cssv-derive -proc name file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	proc := flag.String("proc", "", "procedure to derive a contract for (required)")
	flag.Parse()
	if flag.NArg() != 1 || *proc == "" {
		fmt.Fprintln(os.Stderr, "usage: cssv-derive -proc name file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-derive:", err)
		os.Exit(2)
	}
	req, ens, err := cssv.DeriveContracts(flag.Arg(0), string(src), *proc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-derive:", err)
		os.Exit(2)
	}
	if req == "" {
		req = "1"
	}
	if ens == "" {
		ens = "1"
	}
	fmt.Printf("/* derived contract for %s */\n", *proc)
	fmt.Printf("    requires (%s)\n", req)
	fmt.Printf("    ensures (%s)\n", ens)
}
