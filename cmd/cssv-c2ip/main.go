// Command cssv-c2ip prints the integer program that the C2IP
// transformation (paper §3.4) generates for each procedure of a C file,
// after contract inlining and CoreC normalization. Useful for inspecting
// what the numeric analysis actually sees.
//
// Usage:
//
//	cssv-c2ip [-proc name] [-naive] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	proc := flag.String("proc", "", "procedure to transform (default: all)")
	naive := flag.Bool("naive", false, "use the O(S*V^2) translation of [13]")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cssv-c2ip [-proc name] [-naive] file.c")
		os.Exit(2)
	}
	cfg := cssv.Config{NaiveC2IP: *naive}
	if *proc != "" {
		cfg.Procedures = strings.Split(*proc, ",")
	}
	rep, err := cssv.AnalyzeFile(flag.Arg(0), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-c2ip:", err)
		os.Exit(2)
	}
	for _, p := range rep.Procedures {
		fmt.Println(p.IntegerProgram)
	}
}
