// Command cssv-suite runs a corpus of C verification tasks with expected
// verdicts — an SV-COMP-style suite runner for the analyzer. Each task is
// a C source file with a sidecar expectation file:
//
//	testdata/suite/overflow.c
//	testdata/suite/overflow.expect
//
// The expectation file holds one `key: value` pair per line (with `#`
// comments):
//
//	verdict: unsafe      # safe | unsafe | unknown | error
//	messages: 2          # optional exact message count
//
// The runner's computed verdict is "error" when the analysis fails,
// "safe" when no messages are reported, "unknown" when every reported
// message is an unresolved (budget-exhausted) check, and "unsafe"
// otherwise. Every task runs with the tier cascade enabled, so the
// per-task report also shows which tier discharged each proven check.
//
// Usage:
//
//	cssv-suite [flags] dir-or-file [...]
//
// Exit status is 1 when any task's verdict (or message count) regressed
// against its expectation, 2 on runner errors (malformed corpus, missing
// expectation files), and 0 on a clean run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro"
)

type expectation struct {
	// Verdict is "safe", "unsafe", "unknown", or "error".
	Verdict string
	// Messages is the exact expected message count, -1 when the
	// expectation file does not pin one.
	Messages int
}

type taskResult struct {
	File             string         `json:"file"`
	Expected         string         `json:"expected"`
	Verdict          string         `json:"verdict"`
	Messages         int            `json:"messages"`
	Unresolved       int            `json:"unresolved"`
	ExpectedMessages *int           `json:"expected_messages,omitempty"`
	TimeMS           float64        `json:"time_ms"`
	Tiers            map[string]int `json:"tiers,omitempty"`
	Pass             bool           `json:"pass"`
	Detail           string         `json:"detail,omitempty"`
}

type suiteResult struct {
	Schedule    string       `json:"schedule"`
	Tasks       []taskResult `json:"tasks"`
	Total       int          `json:"total"`
	Passed      int          `json:"passed"`
	Regressions int          `json:"regressions"`
}

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit the machine-readable suite report on stdout instead of per-task lines")
		schedMode = flag.String("schedule", "off", "cascade tier scheduler: off, static, adaptive")
		schedProf = flag.String("schedule-profile", "", "directory for the on-disk scheduler profile (default: <cache-dir>/schedule when -cache-dir is set)")
		cacheDir  = flag.String("cache-dir", "", "directory for the on-disk analysis cache shared across tasks")
		jobs      = flag.Int("j", 0, "procedures analyzed in parallel per task (0 = all CPUs)")
		domain    = flag.String("domain", "polyhedra", "final numeric domain: polyhedra, zone, interval")
		pointer   = flag.String("pointer", "inclusion", "pointer analysis: inclusion, unification")
		target    = flag.String("target", "paper32", "object-layout data model: paper32, sysv64")
		contracts = flag.String("contracts", "manual", "contract mode: manual, vacuous, auto")
		octagon   = flag.Bool("octagon", false, "insert the octagon tier between zone and the final domain")
		timeout   = flag.Duration("proc-timeout", 0, "wall-clock budget per procedure (0 = unlimited)")
		steps     = flag.Int("step-budget", 0, "fixpoint iteration budget per procedure (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cssv-suite [flags] dir-or-file [...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	tasks, err := collectTasks(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-suite:", err)
		os.Exit(2)
	}
	if len(tasks) == 0 {
		fmt.Fprintln(os.Stderr, "cssv-suite: no .c tasks found")
		os.Exit(2)
	}

	cfg := cssv.Config{
		Domain:          *domain,
		Pointer:         *pointer,
		Target:          *target,
		Contracts:       *contracts,
		Cascade:         true,
		Octagon:         *octagon,
		Workers:         *jobs,
		ProcTimeout:     *timeout,
		StepBudget:      *steps,
		CacheDir:        *cacheDir,
		Schedule:        *schedMode,
		ScheduleProfile: *schedProf,
	}

	suite := suiteResult{Schedule: *schedMode}
	for _, cfile := range tasks {
		exp, err := parseExpect(expectPath(cfile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cssv-suite:", err)
			os.Exit(2)
		}
		res := runTask(cfile, exp, cfg)
		suite.Tasks = append(suite.Tasks, res)
		suite.Total++
		if res.Pass {
			suite.Passed++
		} else {
			suite.Regressions++
		}
		if !*jsonOut {
			printTask(res)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite); err != nil {
			fmt.Fprintln(os.Stderr, "cssv-suite:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("cssv-suite: %d/%d passed", suite.Passed, suite.Total)
		if suite.Regressions > 0 {
			fmt.Printf(", %d REGRESSED", suite.Regressions)
		}
		fmt.Println()
	}
	if suite.Regressions > 0 {
		os.Exit(1)
	}
}

// collectTasks expands each argument into its .c files: directories are
// walked recursively, plain files are taken as-is. The result is sorted
// so runs are deterministic regardless of argument or readdir order.
func collectTasks(args []string) ([]string, error) {
	var tasks []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if !strings.HasSuffix(arg, ".c") {
				return nil, fmt.Errorf("%s: not a .c file", arg)
			}
			tasks = append(tasks, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".c") {
				tasks = append(tasks, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(tasks)
	return tasks, nil
}

func expectPath(cfile string) string {
	return strings.TrimSuffix(cfile, ".c") + ".expect"
}

func parseExpect(path string) (expectation, error) {
	exp := expectation{Messages: -1}
	data, err := os.ReadFile(path)
	if err != nil {
		return exp, fmt.Errorf("%s: every suite task needs an expectation sidecar: %v", path, err)
	}
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return exp, fmt.Errorf("%s:%d: want `key: value`, got %q", path, ln+1, line)
		}
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		switch key {
		case "verdict":
			switch value {
			case "safe", "unsafe", "unknown", "error":
				exp.Verdict = value
			default:
				return exp, fmt.Errorf("%s:%d: verdict must be safe, unsafe, unknown, or error; got %q", path, ln+1, value)
			}
		case "messages":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return exp, fmt.Errorf("%s:%d: messages must be a non-negative integer, got %q", path, ln+1, value)
			}
			exp.Messages = n
		default:
			return exp, fmt.Errorf("%s:%d: unknown key %q", path, ln+1, key)
		}
	}
	if exp.Verdict == "" {
		return exp, fmt.Errorf("%s: missing required `verdict:` line", path)
	}
	return exp, nil
}

func runTask(cfile string, exp expectation, cfg cssv.Config) taskResult {
	res := taskResult{File: cfile, Expected: exp.Verdict}
	if exp.Messages >= 0 {
		n := exp.Messages
		res.ExpectedMessages = &n
	}
	rep, err := cssv.AnalyzeFile(cfile, cfg)
	if err != nil {
		res.Verdict = "error"
		res.Detail = err.Error()
		res.Pass = exp.Verdict == "error"
		return res
	}
	res.TimeMS = float64(rep.Stats.Wall.Microseconds()) / 1e3
	tiers := map[string]int{}
	for _, p := range rep.Procedures {
		res.Messages += len(p.Messages)
		for _, m := range p.Messages {
			if m.Unresolved {
				res.Unresolved++
			}
		}
		if p.Cascade != nil {
			for _, c := range p.Cascade.Checks {
				if !c.Violated {
					tiers[c.Tier]++
				}
			}
		}
	}
	if len(tiers) > 0 {
		res.Tiers = tiers
	}
	switch {
	case res.Messages == 0:
		res.Verdict = "safe"
	case res.Unresolved == res.Messages:
		res.Verdict = "unknown"
	default:
		res.Verdict = "unsafe"
	}
	res.Pass = res.Verdict == exp.Verdict &&
		(exp.Messages < 0 || res.Messages == exp.Messages)
	if !res.Pass && res.Verdict == exp.Verdict {
		res.Detail = fmt.Sprintf("message count %d, expected %d", res.Messages, exp.Messages)
	}
	return res
}

func printTask(r taskResult) {
	status := "ok  "
	if !r.Pass {
		status = "FAIL"
	}
	line := fmt.Sprintf("%s %s verdict=%s", status, r.File, r.Verdict)
	if r.Verdict != r.Expected {
		line += " expected=" + r.Expected
	}
	line += fmt.Sprintf(" msgs=%d", r.Messages)
	if r.Unresolved > 0 {
		line += fmt.Sprintf(" unresolved=%d", r.Unresolved)
	}
	line += fmt.Sprintf(" time=%.0fms tiers=%s", r.TimeMS, formatTiers(r.Tiers))
	if r.Detail != "" {
		line += " (" + r.Detail + ")"
	}
	fmt.Println(line)
}

// formatTiers renders per-tier discharge counts in sorted tier order.
func formatTiers(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	names := make([]string, 0, len(m))
	for t := range m {
		names = append(names, t)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, t := range names {
		parts[i] = fmt.Sprintf("%s:%d", t, m[t])
	}
	return strings.Join(parts, ",")
}
