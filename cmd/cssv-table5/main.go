// Command cssv-table5 regenerates the paper's Table 5 over the two
// benchmark suites (the Airbus-style string library and the
// fixwrites-style line filter), including the contract-derivation columns
// (false alarms under vacuous vs automatically derived vs manual
// contracts) and the §1.3/§5 headline summary.
//
// Usage:
//
//	cssv-table5 [-fast] [-summary] [-airbus path] [-fixwrites path]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ctypes"
	"repro/internal/table5"
)

func main() {
	fast := flag.Bool("fast", false, "skip the derivation columns (much faster)")
	summaryOnly := flag.Bool("summary", false, "print only the per-suite headline summary")
	airbus := flag.String("airbus", "testdata/airbus/airbus.c", "path to the Airbus-style suite")
	fixwrites := flag.String("fixwrites", "testdata/fixwrites/fixwrites.c", "path to the fixwrites-style suite")
	jobs := flag.Int("j", 0, "procedures analyzed in parallel (0 = all CPUs, 1 = sequential; the Space column is only measured at 1)")
	certify := flag.Bool("certify", false, "verify invariant certificates and replay messages to witnesses; adds the Cert/CFail/Wit/Pot columns")
	timeout := flag.Duration("proc-timeout", 0, "wall-clock budget per procedure (0 = unlimited); expired procedures report unresolved checks")
	steps := flag.Int("step-budget", 0, "fixpoint iteration budget per procedure (0 = unlimited)")
	octagon := flag.Bool("octagon", false, "insert the octagon tier between the zone tier and the final domain (implies the cascade)")
	target := flag.String("target", "paper32", "object-layout data model: paper32, sysv64")
	noArena := flag.Bool("no-arena", false, "disable the per-procedure slice arenas")
	stats := flag.Bool("stats", false, "print substrate statistics (arena recycling, zone representation selections) after the table")
	flag.Parse()

	var runStats core.RunStats
	opts := table5.Options{SkipDerivation: *fast, Stats: &runStats}
	opts.Driver.Workers = *jobs
	opts.Driver.Certify = *certify
	opts.Driver.Cascade = *certify || *octagon // certificates record the discharging tier
	opts.Driver.Octagon = *octagon
	opts.Driver.NoArena = *noArena
	opts.Driver.ProcDeadline = *timeout
	opts.Driver.StepBudget = *steps
	tgt, err := ctypes.ParseTarget(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cssv-table5: %v\n", err)
		os.Exit(2)
	}
	opts.Driver.Target = tgt
	var rows []table5.Row
	for _, s := range []struct{ name, path string }{
		{"airbus", *airbus},
		{"fixwrites", *fixwrites},
	} {
		r, err := table5.RunSuite(s.name, s.path, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cssv-table5: %s: %v\n", s.name, err)
			os.Exit(2)
		}
		rows = append(rows, r...)
	}

	if !*summaryOnly {
		fmt.Print(table5.Format(rows, !*fast, *certify))
		fmt.Println()
	}
	fmt.Print(table5.FormatSummary(table5.Summarize(rows)))
	if *stats {
		fmt.Printf("\nsubstrate: arena-recycled=%dB zone-repr sparse=%d dense=%d precision-drops=%d\n",
			runStats.ArenaRecycledBytes, runStats.SparseZoneSelections,
			runStats.DenseZoneSelections, runStats.PrecisionDrops)
		fmt.Printf("substrate: target=%s member-accesses resolved=%d havocked=%d\n",
			tgt, runStats.MemberResolved, runStats.MemberHavocked)
	}
	if !*fast {
		fmt.Println("\n(Paper §5: manual contracts reduce false alarms by 93% vs vacuous;")
		fmt.Println(" automatic derivation reduces messages by 25%.)")
	}
}
