// Command cssv is the C String Static Verifier: it statically reports
// every potential string-manipulation error in a C source file
// (buffer overflows, accesses beyond the null terminator, contract
// violations), following Dor, Rodeh & Sagiv, PLDI 2003.
//
// Usage:
//
//	cssv [flags] file.c
//
// Exit status is 1 when messages were reported, 2 on usage or analysis
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		procs     = flag.String("procs", "", "comma-separated procedures to analyze (default: all)")
		domain    = flag.String("domain", "polyhedra", "numeric domain: polyhedra, zone, interval")
		pointer   = flag.String("pointer", "inclusion", "pointer analysis: inclusion, unification")
		target    = flag.String("target", "paper32", "object-layout data model: paper32 (the paper's packed 32-bit model), sysv64 (System V AMD64 ABI, field-sensitive member analysis)")
		contracts = flag.String("contracts", "manual", "contract mode: manual, vacuous, auto")
		noMerge   = flag.Bool("no-ppt-merge", false, "disable the Fig. 7 strong-update merge")
		naive     = flag.Bool("naive-c2ip", false, "use the O(S*V^2) translation of [13]")
		stats     = flag.Bool("stats", false, "print per-procedure statistics (Table 5 columns)")
		dumpIP    = flag.Bool("dump-ip", false, "print the generated integer programs")
		cascade   = flag.Bool("cascade", false, "discharge checks in tiers (interval, zone, then the selected domain on the sliced residual)")
		certify   = flag.Bool("certify", false, "verify invariant certificates for discharged checks (independent Fourier-Motzkin checker) and replay reported messages to concrete witnesses")
		octagon   = flag.Bool("octagon", false, "insert the octagon tier (±x±y constraints) between the zone tier and the final domain (implies -cascade)")
		noArena   = flag.Bool("no-arena", false, "disable the per-procedure slice arenas that recycle numeric-substrate storage")
		dumpRed   = flag.Bool("dump-reduced-ip", false, "print the residual integer program the final cascade tier analyzed (implies -cascade)")
		jobs      = flag.Int("j", 0, "procedures analyzed in parallel (0 = all CPUs, 1 = sequential)")
		quiet     = flag.Bool("q", false, "suppress warnings")
		timeout   = flag.Duration("proc-timeout", 0, "wall-clock budget per procedure (0 = unlimited); on expiry remaining checks are reported unresolved")
		steps     = flag.Int("step-budget", 0, "fixpoint iteration budget per procedure (0 = unlimited); deterministic counterpart of -proc-timeout")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cssv [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := cssv.Config{
		Domain:            *domain,
		Pointer:           *pointer,
		Target:            *target,
		Contracts:         *contracts,
		DisablePPTMerging: *noMerge,
		NaiveC2IP:         *naive,
		Cascade:           *cascade || *dumpRed || *octagon,
		Certify:           *certify,
		Octagon:           *octagon,
		NoArena:           *noArena,
		Workers:           *jobs,
		ProcTimeout:       *timeout,
		StepBudget:        *steps,
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "cssv: -j must be >= 0")
		os.Exit(2)
	}
	if *procs != "" {
		cfg.Procedures = strings.Split(*procs, ",")
	}

	rep, err := cssv.AnalyzeFile(flag.Arg(0), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv:", err)
		os.Exit(2)
	}

	if *stats {
		s := rep.Stats
		speedup := 1.0
		if s.Wall > 0 {
			speedup = float64(s.SequentialCPU) / float64(s.Wall)
		}
		fmt.Printf("run: workers=%d wall=%s cpu=%s speedup=%.1fx ptcache=%d/%d libc-header-cached=%v precision-drops=%d degraded=%d unresolved=%d\n",
			s.Workers, s.Wall.Round(1e6), s.SequentialCPU.Round(1e6), speedup,
			s.PointerCacheHits, s.PointerCacheHits+s.PointerCacheMisses, s.LibcHeaderReused,
			s.PrecisionDrops, s.DegradedProcs, s.UnresolvedChecks)
		fmt.Printf("run: arena-recycled=%dB zone-repr sparse=%d dense=%d\n",
			s.ArenaRecycledBytes, s.SparseZoneSelections, s.DenseZoneSelections)
		fmt.Printf("run: target=%s member-accesses resolved=%d havocked=%d\n",
			*target, s.MemberResolved, s.MemberHavocked)
	}

	messages := 0
	certFailed := 0
	for _, p := range rep.Procedures {
		if *stats {
			fmt.Printf("%s: LOC=%d SLOC=%d IPVars=%d IPSize=%d CPU=%s space=%.1fMB msgs=%d\n",
				p.Name, p.LOC, p.SLOC, p.IPVars, p.IPSize,
				p.CPU.Round(1e6), float64(p.Space)/1e6, len(p.Messages))
		}
		if *dumpIP {
			fmt.Println(p.IntegerProgram)
		}
		if p.Cascade != nil {
			if *stats {
				for _, t := range p.Cascade.Tiers {
					fmt.Printf("%s: cascade %s: %dx%d IP, discharged %d/%d, cpu=%s\n",
						p.Name, t.Domain, t.IPVars, t.IPSize, t.Discharged, t.Asserts,
						t.CPU.Round(1e6))
				}
				fmt.Printf("%s: cascade residual: %d vars x %d stmts (full IP %d x %d)\n",
					p.Name, p.Cascade.ResidualVars, p.Cascade.ResidualStmts,
					p.IPVars, p.IPSize)
				for _, c := range p.Cascade.Checks {
					verdict := "proved by " + c.Tier
					if c.Violated {
						verdict = "violated in " + c.Tier
					}
					fmt.Printf("%s: check %s (%s): %s on %dx%d\n",
						p.Name, c.Check, c.Pos, verdict, c.IPVars, c.IPSize)
				}
			}
			if *dumpRed {
				fmt.Println(p.Cascade.ReducedProgram)
			}
		}
		if p.Certification != nil {
			c := p.Certification
			for _, ck := range c.Checks {
				line := fmt.Sprintf("%s: certify %s (%s): %s", p.Name, ck.Check, ck.Pos, ck.Status)
				if ck.Tier != "" {
					line += " [" + ck.Tier + "]"
				}
				if ck.Detail != "" && (ck.Status == "certificate-failed" || !*quiet) {
					line += ": " + ck.Detail
				}
				fmt.Println(line)
			}
			fmt.Printf("%s: certification: %d certified, %d failed, %d witnessed, %d potential\n",
				p.Name, c.Certified, c.Failed, c.Witnessed, c.Potential)
			certFailed += c.Failed
		}
		if p.Degraded != nil {
			fmt.Printf("%s: degraded (%s): %s\n", p.Name, p.Degraded.Cause, p.Degraded.Detail)
		}
		if !*quiet {
			for _, w := range p.Warnings {
				fmt.Printf("warning: %s\n", w)
			}
		}
		for _, m := range p.Messages {
			fmt.Println(m.Text)
			messages++
		}
		if p.DerivedRequires != "" || p.DerivedEnsures != "" {
			fmt.Printf("%s: derived requires (%s)\n", p.Name, orTrue(p.DerivedRequires))
			fmt.Printf("%s: derived ensures  (%s)\n", p.Name, orTrue(p.DerivedEnsures))
		}
	}
	if certFailed > 0 {
		// A rejected certificate means the analyzer (or the certificate
		// exporter) is wrong — more severe than any reported message.
		fmt.Printf("cssv: %d certificate(s) FAILED verification\n", certFailed)
		os.Exit(2)
	}
	if messages == 0 {
		fmt.Println("cssv: no string manipulation errors detected")
		return
	}
	fmt.Printf("cssv: %d message(s)\n", messages)
	os.Exit(1)
}

func orTrue(s string) string {
	if s == "" {
		return "true"
	}
	return s
}
