// Command cssv is the C String Static Verifier: it statically reports
// every potential string-manipulation error in a C source file
// (buffer overflows, accesses beyond the null terminator, contract
// violations), following Dor, Rodeh & Sagiv, PLDI 2003.
//
// Usage:
//
//	cssv [flags] file.c
//
// Exit status is 1 when messages were reported, 2 on usage or analysis
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		procs       = flag.String("procs", "", "comma-separated procedures to analyze (default: all)")
		domain      = flag.String("domain", "polyhedra", "numeric domain: polyhedra, zone, interval")
		pointer     = flag.String("pointer", "inclusion", "pointer analysis: inclusion, unification")
		target      = flag.String("target", "paper32", "object-layout data model: paper32 (the paper's packed 32-bit model), sysv64 (System V AMD64 ABI, field-sensitive member analysis)")
		contracts   = flag.String("contracts", "manual", "contract mode: manual, vacuous, auto")
		noMerge     = flag.Bool("no-ppt-merge", false, "disable the Fig. 7 strong-update merge")
		naive       = flag.Bool("naive-c2ip", false, "use the O(S*V^2) translation of [13]")
		stats       = flag.Bool("stats", false, "print per-procedure statistics (Table 5 columns)")
		dumpIP      = flag.Bool("dump-ip", false, "print the generated integer programs")
		cascade     = flag.Bool("cascade", false, "discharge checks in tiers (interval, zone, then the selected domain on the sliced residual)")
		certify     = flag.Bool("certify", false, "verify invariant certificates for discharged checks (independent Fourier-Motzkin checker) and replay reported messages to concrete witnesses")
		octagon     = flag.Bool("octagon", false, "insert the octagon tier (±x±y constraints) between the zone tier and the final domain (implies -cascade)")
		noArena     = flag.Bool("no-arena", false, "disable the per-procedure slice arenas that recycle numeric-substrate storage")
		dumpRed     = flag.Bool("dump-reduced-ip", false, "print the residual integer program the final cascade tier analyzed (implies -cascade)")
		jobs        = flag.Int("j", 0, "procedures analyzed in parallel (0 = all CPUs, 1 = sequential)")
		quiet       = flag.Bool("q", false, "suppress warnings")
		timeout     = flag.Duration("proc-timeout", 0, "wall-clock budget per procedure (0 = unlimited); on expiry remaining checks are reported unresolved")
		steps       = flag.Int("step-budget", 0, "fixpoint iteration budget per procedure (0 = unlimited); deterministic counterpart of -proc-timeout")
		cacheDir    = flag.String("cache-dir", "", "directory for the on-disk analysis cache (default: no cache); re-runs reuse stored per-procedure results when the procedure, contracts and configuration are unchanged")
		cacheVerify = flag.Bool("cache-verify", false, "re-verify stored certificates with the independent checker before trusting an exact cache hit (revalidation always verifies)")
		ptcacheSize = flag.Int("ptcache-size", 0, "in-memory pointer-analysis memo bound in entries (0 = default 128, negative = unbounded); oldest entries are evicted first")
		schedMode   = flag.String("schedule", "off", "cascade tier scheduler: off (fixed interval->zone->final cascade), static (scheduled path, fixed plan), adaptive (per-check tier order and step budgets from the recorded profile); static and adaptive imply -cascade")
		schedProf   = flag.String("schedule-profile", "", "directory for the on-disk scheduler profile (default: <cache-dir>/schedule when -cache-dir is set, otherwise in-memory only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cssv [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := cssv.Config{
		Domain:            *domain,
		Pointer:           *pointer,
		Target:            *target,
		Contracts:         *contracts,
		DisablePPTMerging: *noMerge,
		NaiveC2IP:         *naive,
		Cascade:           *cascade || *dumpRed || *octagon,
		Certify:           *certify,
		Octagon:           *octagon,
		NoArena:           *noArena,
		Workers:           *jobs,
		ProcTimeout:       *timeout,
		StepBudget:        *steps,
		CacheDir:          *cacheDir,
		CacheVerify:       *cacheVerify,
		PtCacheSize:       *ptcacheSize,
		Schedule:          *schedMode,
		ScheduleProfile:   *schedProf,
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "cssv: -j must be >= 0")
		os.Exit(2)
	}
	if *procs != "" {
		cfg.Procedures = strings.Split(*procs, ",")
	}

	rep, err := cssv.AnalyzeFile(flag.Arg(0), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv:", err)
		os.Exit(2)
	}

	messages, certFailed := cssv.Render(os.Stdout, rep, cssv.RenderOptions{
		Stats:         *stats,
		DumpIP:        *dumpIP,
		DumpReducedIP: *dumpRed,
		Quiet:         *quiet,
		Target:        *target,
	})
	if certFailed > 0 {
		os.Exit(2)
	}
	if messages > 0 {
		os.Exit(1)
	}
}
