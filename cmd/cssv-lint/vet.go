package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON unit description "go vet" hands its tool
// (cmd/go's vetConfig / x/tools unitchecker.Config); only the fields we
// consume are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes the single compilation unit described by cfgFile and
// exits with the protocol's status codes: diagnostics go to stderr,
// VetxOutput must exist afterwards (we keep no cross-package facts, so
// it is written empty), exit 1 reports findings.
func vetUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}

	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}

	// Fact-only runs exist to propagate analyzer facts from
	// dependencies; this suite keeps none, so they are a no-op.
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return // the compiler will report the syntax error
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Type information comes from the build system's export data: the
	// compiler importer reads the .a file recorded for each (resolved)
	// import path.
	compImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return // the compiler will report the type error
		}
		fatal(fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err))
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	res, err := lint.Run(pkg, lint.Suite())
	if err != nil {
		fatal(err)
	}
	writeVetx()
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
