// Command cssv-lint runs the repo's self-verification analyzers
// (internal/lint): the suite that mechanically enforces the soundness,
// determinism, and governance invariants the compiler cannot see.
//
// Two modes:
//
// Standalone, over the whole module (tests included):
//
//	cssv-lint [-tests=false] [module-dir]
//
// As a vet tool, driven by the build system one package at a time:
//
//	go vet -vettool=$(command -v cssv-lint) ./...
//
// The vet mode implements the -vettool protocol by hand (-V=full
// handshake, -flags, unit .cfg files with compiler export data) because
// this build environment vendors no golang.org/x/tools; see
// internal/lint for the framework.
//
// Exit status: 0 clean, 1 findings (or usage error), 2 internal error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage:
  cssv-lint [-tests=false] [module-dir]   # standalone, whole module
  go vet -vettool=$(command -v cssv-lint) ./...
`)
		os.Exit(1)
	}
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the go vet handshake)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (for the go vet handshake)")
	tests := flag.Bool("tests", true, "include _test.go files in standalone mode")
	quiet := flag.Bool("q", false, "suppress the summary line in standalone mode")
	flag.Parse()

	if *printFlags {
		// go vet asks which flags the tool supports before forwarding
		// any; we accept none of vet's standard analyzer flags.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetUnit(args[0])
		return
	}
	standalone(args, *tests, *quiet)
}

func standalone(args []string, tests, quiet bool) {
	dir := "."
	switch len(args) {
	case 0:
	case 1:
		dir = args[0]
	default:
		flag.Usage()
	}
	// Walk up to the module root so `cssv-lint` works from any subdir.
	root, err := findModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	l := &lint.Loader{IncludeTests: tests}
	pkgs, err := l.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	findings, suppressed := 0, 0
	for _, pkg := range pkgs {
		res, err := lint.Run(pkg, lint.Suite())
		if err != nil {
			fatal(err)
		}
		for _, d := range res.Diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
			findings++
		}
		suppressed += len(res.Suppressed)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "cssv-lint: %d finding(s), %d suppressed by lint:allow, %d package(s)\n",
			findings, suppressed, len(pkgs))
	}
	if findings > 0 {
		os.Exit(1)
	}
}

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cssv-lint: %v\n", err)
	os.Exit(2)
}

// versionFlag implements the -V=full protocol go vet uses to fold the
// tool's identity into its action cache key: print one line
// "<path> version devel comments-go-here buildID=<content-hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		fatal(fmt.Errorf("unsupported flag value: -V=%s (use -V=full)", s))
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
