// Command cssv-bench runs the numeric-kernel benchmark suite and emits
// machine-readable results, establishing the recorded perf trajectory of
// the analyzer (BENCH_numeric.json at the repository root).
//
// Usage:
//
//	cssv-bench [-suite numeric|cache|all] [-out BENCH_numeric.json] [-baseline old.json] [-force] [-quick] [-benchtime 500ms]
//
// The suite mirrors the hot benchmarks of the in-repo `go test -bench`
// harness — the polyhedra substrate primitives (BenchmarkPolyhedra/*), a
// zone-domain closure workload, and the whole-suite headline runs
// (BenchmarkHeadline) — but runs them through a self-contained timing loop
// so results serialize to JSON without parsing `go test` output.
//
// With -baseline, the previous results are embedded in the output and a
// geometric-mean speedup over the matching benchmarks is computed, so each
// PR can record before/after numbers on the same machine:
//
//	go run ./cmd/cssv-bench -out /tmp/before.json            # at the old commit
//	go run ./cmd/cssv-bench -baseline /tmp/before.json -out BENCH_numeric.json
//
// The cache suite (-suite cache) measures the on-disk analysis cache end
// to end: a cold run into an empty cache directory, a warm re-run over a
// populated one (exact hits, no fixpoint), and a revalidation-only run
// where the environment changed but every procedure body is intact. The
// recorded artifact is BENCH_cache.json; the headline workloads run too,
// so -baseline BENCH_sparse.json yields a comparable geomean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/polyhedra"
	"repro/internal/zone"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// MemberResolved / MemberHavocked record the analyzer's member-access
	// precision counters for the headline workloads (absent for the
	// numeric-kernel benchmarks), so the perf trajectory tracks precision
	// alongside timing.
	MemberResolved int `json:"member_resolved,omitempty"`
	MemberHavocked int `json:"member_havocked,omitempty"`
}

// File is the serialized benchmark report.
type File struct {
	// GeneratedUnix stamps the run; Go and CPUs describe the machine.
	GeneratedUnix int64    `json:"generated_unix"`
	Go            string   `json:"go"`
	CPUs          int      `json:"cpus"`
	Benchtime     string   `json:"benchtime"`
	Results       []Result `json:"results"`
	// Baseline carries the previous run (its own baseline stripped),
	// BaselineFile names the file it was read from, and SpeedupGeomean
	// the geometric-mean ns/op ratio baseline/current over the
	// benchmarks present in both.
	// CacheSpeedups records, for the cache suite, the cold-run ns/op
	// divided by the warm-run (and revalidation-run) ns/op per workload:
	// how much the on-disk cache saves end to end.
	CacheSpeedups map[string]float64 `json:"cache_speedups,omitempty"`

	Baseline       *File   `json:"baseline,omitempty"`
	BaselineFile   string  `json:"baseline_file,omitempty"`
	SpeedupGeomean float64 `json:"speedup_geomean_vs_baseline,omitempty"`
}

// measure runs fn in a timing loop until the run lasts at least target
// (always exactly once under quick mode), reporting per-op time and
// allocation figures.
func measure(name string, target time.Duration, quick bool, fn func()) Result {
	run := func(n int) (time.Duration, uint64, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
	}
	n := 1
	elapsed, mallocs, bytes := run(n)
	if !quick {
		for elapsed < target && n < 1<<24 {
			// Grow toward the target, the same way testing.B predicts.
			next := n * 2
			if elapsed > 0 {
				predicted := int(float64(n) * 1.2 * float64(target) / float64(elapsed))
				if predicted > next {
					next = predicted
				}
			}
			n = next
			elapsed, mallocs, bytes = run(n)
		}
	}
	return Result{
		Name:        name,
		Iters:       n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(mallocs) / float64(n),
		BytesPerOp:  float64(bytes) / float64(n),
	}
}

// polyPair builds the BenchmarkPolyhedra workload: a box polyhedron and a
// chain-ordering polyhedron over dim variables.
func polyPair(cfg *polyhedra.Config, dim int) (*polyhedra.Poly, *polyhedra.Poly) {
	var sysA, sysB linear.System
	for v := 0; v < dim; v++ {
		e := linear.VarExpr(v)
		sysA = append(sysA, linear.NewGe(e)) // x >= 0
		f := linear.ConstExpr(int64(10 + v)).Sub(linear.VarExpr(v))
		sysA = append(sysA, linear.NewGe(f)) // x <= 10+v
		if v > 0 {
			g := linear.VarExpr(v).Sub(linear.VarExpr(v - 1))
			sysB = append(sysB, linear.NewGe(g)) // x_v >= x_{v-1}
		}
	}
	return cfg.FromSystem(sysA, dim), cfg.FromSystem(sysB, dim)
}

// zoneChain builds a DBM workload: x_0 <= x_1 <= ... <= x_{n-1}, with
// x_0 >= 0 and x_{n-1} <= 100.
func zoneChain(n int) *zone.DBM {
	d := zone.Universe(n)
	for v := 1; v < n; v++ {
		e := linear.VarExpr(v).Sub(linear.VarExpr(v - 1))
		d = d.MeetConstraint(linear.NewGe(e))
	}
	d = d.MeetConstraint(linear.NewGe(linear.VarExpr(0)))
	last := linear.ConstExpr(100).Sub(linear.VarExpr(n - 1))
	d = d.MeetConstraint(linear.NewGe(last))
	return d
}

// zoneRandom builds an unclosed DBM over n variables whose difference
// constraints x_i - x_j <= c cover roughly density of the ordered
// variable pairs, chosen by a deterministic LCG so runs are
// reproducible. Bounds grow with i+j, which keeps the system satisfiable.
func zoneRandom(cfg *zone.Config, n int, density float64, seed uint64) *zone.DBM {
	d := cfg.Universe(n)
	rng := seed*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if float64(next()%1000) >= density*1000 {
				continue
			}
			// x_i - x_j <= 5 + i + j, i.e. 5+i+j - (x_i - x_j) >= 0.
			e := linear.ConstExpr(int64(5 + i + j)).
				Sub(linear.VarExpr(i)).Add(linear.VarExpr(j))
			d = d.MeetConstraint(linear.NewGe(e))
		}
	}
	d = d.MeetConstraint(linear.NewGe(linear.VarExpr(0))) // x_0 >= 0
	return d
}

func main() {
	var (
		suite    = flag.String("suite", "numeric", "benchmark suite: numeric (substrate + headline), cache (analysis-cache cold/warm/reval + headline), all")
		out      = flag.String("out", "", "output JSON path (default BENCH_<suite>.json)")
		baseline = flag.String("baseline", "", "previous results to embed for before/after comparison")
		force    = flag.Bool("force", false, "overwrite an existing output file")
		quick    = flag.Bool("quick", false, "single iteration per benchmark (CI smoke)")
		bt       = flag.Duration("benchtime", 500*time.Millisecond, "minimum measured time per benchmark")
	)
	flag.Parse()

	// The default output file is named for the suite that ran, so a
	// `-suite cache` run can never silently land in BENCH_numeric.json.
	// An explicit -out under `-suite all` is refused: the recorded
	// artifacts are per-suite, and a single file would mislabel whichever
	// suite its name claims — run each suite with its own -out instead.
	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	} else if *suite == "all" {
		fmt.Fprintln(os.Stderr, "cssv-bench: -suite all mixes recorded artifacts; drop -out (writes BENCH_all.json) or run each suite with its own -out")
		os.Exit(2)
	}

	// Recorded benchmark files are PR-reviewed artifacts: refuse to
	// clobber one silently.
	if _, err := os.Stat(*out); err == nil && !*force {
		fmt.Fprintf(os.Stderr, "cssv-bench: %s exists; pass -force to overwrite\n", *out)
		os.Exit(2)
	}

	rep := &File{
		GeneratedUnix: time.Now().Unix(),
		Go:            runtime.Version(),
		CPUs:          runtime.GOMAXPROCS(0),
		Benchtime:     bt.String(),
	}
	if *quick {
		rep.Benchtime = "1x"
	}

	add := func(name string, fn func()) {
		r := measure(name, *bt, *quick, fn)
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-40s %10d iters  %14.0f ns/op  %12.0f allocs/op\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp)
	}

	numeric := *suite == "numeric" || *suite == "all"
	if *suite != "numeric" && *suite != "cache" && *suite != "all" {
		fmt.Fprintf(os.Stderr, "cssv-bench: unknown suite %q\n", *suite)
		os.Exit(2)
	}

	if numeric {
		for _, dim := range []int{4, 6, 8} {
			// One arena per dimension, exactly as the driver configures the
			// substrate per procedure.
			p, q := polyPair(&polyhedra.Config{Arena: arena.New()}, dim)
			add(fmt.Sprintf("polyhedra/join/dim=%d", dim), func() { p.Clone().Join(q) })
			add(fmt.Sprintf("polyhedra/meet+empty/dim=%d", dim), func() { p.Clone().Meet(q).IsEmpty() })
			j := p.Clone().Join(q)
			add(fmt.Sprintf("polyhedra/widen/dim=%d", dim), func() { p.Widen(j) })
		}

		for _, n := range []int{8, 16} {
			d := zoneChain(n)
			e := zoneChain(n).Havoc(n / 2)
			add(fmt.Sprintf("zone/join+close/n=%d", n), func() { d.Clone().Join(e).IsEmpty() })
		}
	}

	// The sparse-DBM suite: closure from scratch, incremental update of a
	// closed matrix, and join, at three dimensions and two densities.
	// Each configuration runs under the automatic density policy with an
	// arena, exactly as the driver configures the substrate.
	if numeric {
		for _, dim := range []int{4, 8, 16} {
			for _, dens := range []float64{0.1, 0.5} {
				cfg := &zone.Config{Arena: arena.New()}
				pct := int(dens * 100)
				base := zoneRandom(cfg, dim, dens, uint64(dim))
				add(fmt.Sprintf("zone/close/dim=%d/density=%d", dim, pct),
					func() { base.Clone().IsEmpty() })
				closed := base.Clone()
				closed.IsEmpty() // force closure once
				// One fresh constraint on a closed matrix: the incremental
				// repair path, not a full re-closure.
				upd := linear.NewGe(linear.ConstExpr(3).
					Sub(linear.VarExpr(dim - 1)).Add(linear.VarExpr(0)))
				add(fmt.Sprintf("zone/incr/dim=%d/density=%d", dim, pct),
					func() { closed.Clone().MeetConstraint(upd).IsEmpty() })
				other := zoneRandom(cfg, dim, dens, uint64(dim)+77)
				other.IsEmpty()
				add(fmt.Sprintf("zone/join/dim=%d/density=%d", dim, pct),
					func() { closed.Clone().Join(other) })
			}
		}
	}

	for _, s := range []struct{ name, path string }{
		{"airbus", "testdata/airbus/airbus.c"},
		{"fixwrites", "testdata/fixwrites/fixwrites.c"},
	} {
		src, err := os.ReadFile(s.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cssv-bench: skipping headline/%s: %v\n", s.name, err)
			continue
		}
		text := string(src)
		path := s.path
		var stats cssv.RunStats
		add("headline/"+s.name, func() {
			hrep, err := cssv.Analyze(path, text, cssv.Config{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cssv-bench:", err)
				os.Exit(1)
			}
			stats = hrep.Stats
		})
		r := &rep.Results[len(rep.Results)-1]
		r.MemberResolved = stats.MemberResolved
		r.MemberHavocked = stats.MemberHavocked
	}

	if *suite == "cache" || *suite == "all" {
		for _, s := range []struct{ name, path string }{
			{"airbus", "testdata/airbus/airbus.c"},
			{"fixwrites", "testdata/fixwrites/fixwrites.c"},
		} {
			src, err := os.ReadFile(s.path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cssv-bench: skipping cache/%s: %v\n", s.name, err)
				continue
			}
			text := string(src)
			run := func(filename, dir, text string) cssv.RunStats {
				crep, err := cssv.Analyze(filename, text, cssv.Config{Cascade: true, CacheDir: dir})
				if err != nil {
					fmt.Fprintln(os.Stderr, "cssv-bench:", err)
					os.Exit(1)
				}
				return crep.Stats
			}
			// Cold: empty cache directory and flushed in-memory memos,
			// so every op pays the full pipeline plus the store writes.
			add("cache/"+s.name+"/cold", func() {
				core.FlushCaches()
				dir, err := os.MkdirTemp("", "cssv-bench-cache")
				if err != nil {
					fmt.Fprintln(os.Stderr, "cssv-bench:", err)
					os.Exit(1)
				}
				defer os.RemoveAll(dir)
				run(s.path, dir, text)
			})
			// Warm: one populated directory, every op is an exact hit.
			warmDir, err := os.MkdirTemp("", "cssv-bench-cache")
			if err != nil {
				fmt.Fprintln(os.Stderr, "cssv-bench:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(warmDir)
			run(s.path, warmDir, text)
			add("cache/"+s.name+"/warm", func() { run(s.path, warmDir, text) })
			// Revalidation-only: a unique trailing procedure shifts the
			// environment hash of every stored entry while leaving each
			// original body — and its source positions — intact, so each
			// op re-proves the stored certificates instead of iterating
			// the fixpoint. A fresh suffix per op keeps later ops from
			// upgrading to exact hits on entries stored by earlier ones.
			reval := 0
			add("cache/"+s.name+"/reval", func() {
				reval++
				extra := fmt.Sprintf("%s\nvoid cssv_bench_reval_%d(void) { int x; x = 0; }\n", text, reval)
				if st := run(s.path, warmDir, extra); st.CacheRevalidated == 0 {
					fmt.Fprintf(os.Stderr, "cssv-bench: cache/%s/reval: revalidation did not fire (stats %+v)\n", s.name, st)
					os.Exit(1)
				}
			})
			n := len(rep.Results)
			cold, warm, rv := rep.Results[n-3], rep.Results[n-2], rep.Results[n-1]
			if rep.CacheSpeedups == nil {
				rep.CacheSpeedups = map[string]float64{}
			}
			rep.CacheSpeedups[s.name+"/warm"] = cold.NsPerOp / warm.NsPerOp
			rep.CacheSpeedups[s.name+"/reval"] = cold.NsPerOp / rv.NsPerOp
			fmt.Printf("cache/%s: warm %.1fx, revalidation %.1fx faster than cold\n",
				s.name, cold.NsPerOp/warm.NsPerOp, cold.NsPerOp/rv.NsPerOp)
		}
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cssv-bench:", err)
			os.Exit(1)
		}
		var base File
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "cssv-bench: bad baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // keep one level of history
		rep.Baseline = &base
		rep.BaselineFile = *baseline
		rep.SpeedupGeomean = geomeanSpeedup(base.Results, rep.Results)
		if rep.SpeedupGeomean > 0 {
			fmt.Printf("geomean speedup vs baseline: %.2fx\n", rep.SpeedupGeomean)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssv-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cssv-bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// geomeanSpeedup computes the geometric mean of before/after ns-per-op
// ratios over benchmarks present in both result sets.
func geomeanSpeedup(before, after []Result) float64 {
	prev := map[string]float64{}
	for _, r := range before {
		prev[r.Name] = r.NsPerOp
	}
	sum, n := 0.0, 0
	for _, r := range after {
		if p, ok := prev[r.Name]; ok && p > 0 && r.NsPerOp > 0 {
			sum += math.Log(p / r.NsPerOp)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
