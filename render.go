package cssv

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderOptions selects what Render prints beyond the reported messages.
// The zero value renders messages, warnings, degradations, certification
// and derived contracts — exactly what `cssv file.c` shows.
type RenderOptions struct {
	// Stats prints the run summary lines and per-procedure cost
	// statistics (the Table 5 columns), cascade tier provenance, and
	// cache counters.
	Stats bool
	// DumpIP prints each procedure's generated integer program.
	DumpIP bool
	// DumpReducedIP prints the residual integer program the final
	// cascade tier analyzed.
	DumpReducedIP bool
	// Quiet suppresses warnings and non-failing certification detail.
	Quiet bool
	// Target is the object-layout data model name echoed in the stats
	// summary (informational only; the analysis already ran).
	Target string
}

// Render writes the human-readable report for rep to w — the exact output
// of the cssv command — and returns the number of reported messages and
// of failed certificates, from which callers derive the exit status
// (2 when certFailed > 0, 1 when messages > 0, 0 otherwise). It is the
// single formatting path shared by cmd/cssv and the cssv-serve daemon, so
// a batch server response is byte-identical to a one-shot CLI run.
func Render(w io.Writer, rep *Report, o RenderOptions) (messages, certFailed int) {
	if o.Stats {
		s := rep.Stats
		speedup := 1.0
		if s.Wall > 0 {
			speedup = float64(s.SequentialCPU) / float64(s.Wall)
		}
		fmt.Fprintf(w, "run: workers=%d wall=%s cpu=%s speedup=%.1fx ptcache=%d/%d libc-header-cached=%v precision-drops=%d degraded=%d unresolved=%d\n",
			s.Workers, s.Wall.Round(1e6), s.SequentialCPU.Round(1e6), speedup,
			s.PointerCacheHits, s.PointerCacheHits+s.PointerCacheMisses, s.LibcHeaderReused,
			s.PrecisionDrops, s.DegradedProcs, s.UnresolvedChecks)
		fmt.Fprintf(w, "run: arena-recycled=%dB zone-repr sparse=%d dense=%d\n",
			s.ArenaRecycledBytes, s.SparseZoneSelections, s.DenseZoneSelections)
		fmt.Fprintf(w, "run: target=%s member-accesses resolved=%d havocked=%d\n",
			o.Target, s.MemberResolved, s.MemberHavocked)
		fmt.Fprintf(w, "run: cache hits=%d revalidated=%d misses=%d stores=%d bad=%d cert-rejected=%d ptcache-evicted=%d fixpoint-iterations=%d\n",
			s.CacheHits, s.CacheRevalidated, s.CacheMisses, s.CacheStores,
			s.CacheBadEntries, s.CacheCertRejected, s.PtCacheEvictions,
			s.FixpointIterations)
		// Printed only under an active scheduler so that "off" reports stay
		// byte-identical to pre-scheduler releases.
		if s.ScheduleMode != "" && s.ScheduleMode != "off" {
			fmt.Fprintf(w, "run: schedule mode=%s decisions=%d from-profile=%d discharged=%s\n",
				s.ScheduleMode, s.ScheduleDecisions, s.ScheduleFromProfile,
				formatTierDischarged(s.TierDischarged))
		}
	}

	for _, p := range rep.Procedures {
		if o.Stats {
			line := fmt.Sprintf("%s: LOC=%d SLOC=%d IPVars=%d IPSize=%d CPU=%s space=%.1fMB msgs=%d",
				p.Name, p.LOC, p.SLOC, p.IPVars, p.IPSize,
				p.CPU.Round(1e6), float64(p.Space)/1e6, len(p.Messages))
			if p.CacheStatus != "" {
				line += " cache=" + p.CacheStatus
			}
			fmt.Fprintln(w, line)
		}
		if o.DumpIP {
			fmt.Fprintln(w, p.IntegerProgram)
		}
		if p.Cascade != nil {
			if o.Stats {
				for _, t := range p.Cascade.Tiers {
					fmt.Fprintf(w, "%s: cascade %s: %dx%d IP, discharged %d/%d, cpu=%s\n",
						p.Name, t.Domain, t.IPVars, t.IPSize, t.Discharged, t.Asserts,
						t.CPU.Round(1e6))
				}
				fmt.Fprintf(w, "%s: cascade residual: %d vars x %d stmts (full IP %d x %d)\n",
					p.Name, p.Cascade.ResidualVars, p.Cascade.ResidualStmts,
					p.IPVars, p.IPSize)
				for _, c := range p.Cascade.Checks {
					verdict := "proved by " + c.Tier
					if c.Violated {
						verdict = "violated in " + c.Tier
					}
					fmt.Fprintf(w, "%s: check %s (%s): %s on %dx%d\n",
						p.Name, c.Check, c.Pos, verdict, c.IPVars, c.IPSize)
				}
				for i, d := range p.Cascade.Decisions {
					fmt.Fprintf(w, "%s: schedule group %d (%s): checks=%v order=%v budgets=%v\n",
						p.Name, i, d.Source, d.Checks, d.Order, d.Budgets)
				}
			}
			if o.DumpReducedIP {
				fmt.Fprintln(w, p.Cascade.ReducedProgram)
			}
		}
		if p.Certification != nil {
			c := p.Certification
			for _, ck := range c.Checks {
				line := fmt.Sprintf("%s: certify %s (%s): %s", p.Name, ck.Check, ck.Pos, ck.Status)
				if ck.Tier != "" {
					line += " [" + ck.Tier + "]"
				}
				if ck.Detail != "" && (ck.Status == "certificate-failed" || !o.Quiet) {
					line += ": " + ck.Detail
				}
				fmt.Fprintln(w, line)
			}
			fmt.Fprintf(w, "%s: certification: %d certified, %d failed, %d witnessed, %d potential\n",
				p.Name, c.Certified, c.Failed, c.Witnessed, c.Potential)
			certFailed += c.Failed
		}
		if p.Degraded != nil {
			fmt.Fprintf(w, "%s: degraded (%s): %s\n", p.Name, p.Degraded.Cause, p.Degraded.Detail)
		}
		if !o.Quiet {
			for _, warn := range p.Warnings {
				fmt.Fprintf(w, "warning: %s\n", warn)
			}
		}
		for _, m := range p.Messages {
			fmt.Fprintln(w, m.Text)
			messages++
		}
		if p.DerivedRequires != "" || p.DerivedEnsures != "" {
			fmt.Fprintf(w, "%s: derived requires (%s)\n", p.Name, orTrue(p.DerivedRequires))
			fmt.Fprintf(w, "%s: derived ensures  (%s)\n", p.Name, orTrue(p.DerivedEnsures))
		}
	}
	if certFailed > 0 {
		// A rejected certificate means the analyzer (or the certificate
		// exporter) is wrong — more severe than any reported message.
		fmt.Fprintf(w, "cssv: %d certificate(s) FAILED verification\n", certFailed)
		return messages, certFailed
	}
	if messages == 0 {
		fmt.Fprintln(w, "cssv: no string manipulation errors detected")
		return 0, 0
	}
	fmt.Fprintf(w, "cssv: %d message(s)\n", messages)
	return messages, certFailed
}

func orTrue(s string) string {
	if s == "" {
		return "true"
	}
	return s
}

// formatTierDischarged renders the per-tier discharge counts in sorted
// tier order (map iteration alone would be nondeterministic output).
func formatTierDischarged(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	tiers := make([]string, 0, len(m))
	for t := range m {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	parts := make([]string, len(tiers))
	for i, t := range tiers {
		parts[i] = fmt.Sprintf("%s:%d", t, m[t])
	}
	return strings.Join(parts, ",")
}
