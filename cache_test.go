// Tests for the on-disk analysis cache at the public API level: a warm
// run must reproduce the cold run bit for bit (and both must match an
// uncached run), the certificate-revalidation fast path must fire when
// only another procedure's contract changes, and damaged or tampered
// entries must be detected and fall back to full analysis — never
// silently report "safe".
package cssv

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
)

// TestCacheWarmEqualsCold runs every golden twice against the same cache
// directory and once without a cache, for both sequential and parallel
// workers. All three reports must deep-equal after timings are stripped,
// the warm run must hit on every procedure, and — the headline soundness
// property — the warm run must execute zero fixpoint iterations.
func TestCacheWarmEqualsCold(t *testing.T) {
	paths := []string{
		"testdata/airbus/airbus.c",
		"testdata/fixwrites/fixwrites.c",
		"testdata/running/skipline.c",
	}
	for _, path := range paths {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", filepath.Base(path), workers), func(t *testing.T) {
				dir := t.TempDir()
				cfg := Config{Workers: workers, Cascade: true, CacheDir: dir}
				cold, err := AnalyzeFile(path, cfg)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := AnalyzeFile(path, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := AnalyzeFile(path, Config{Workers: workers, Cascade: true})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := warm.Stats.CacheHits, len(warm.Procedures); got != want {
					t.Errorf("warm run: CacheHits = %d, want %d (one per procedure)", got, want)
				}
				if warm.Stats.CacheMisses != 0 || warm.Stats.CacheRevalidated != 0 {
					t.Errorf("warm run: misses = %d, revalidated = %d, want 0/0",
						warm.Stats.CacheMisses, warm.Stats.CacheRevalidated)
				}
				if warm.Stats.FixpointIterations != 0 {
					t.Errorf("warm run executed %d fixpoint iterations, want 0",
						warm.Stats.FixpointIterations)
				}
				if cold.Stats.CacheStores != len(cold.Procedures) {
					t.Errorf("cold run: CacheStores = %d, want %d",
						cold.Stats.CacheStores, len(cold.Procedures))
				}
				for _, p := range warm.Procedures {
					if p.CacheStatus != "hit" {
						t.Errorf("warm run: procedure %s has CacheStatus %q, want \"hit\"",
							p.Name, p.CacheStatus)
					}
				}
				stripTimings(cold)
				stripTimings(warm)
				stripTimings(ref)
				if !reflect.DeepEqual(cold, warm) {
					t.Errorf("warm report differs from cold report")
				}
				if !reflect.DeepEqual(ref, cold) {
					t.Errorf("cached cold report differs from uncached report")
				}
			})
		}
	}
}

// revalSrcV1/V2 differ only in the numeric bound inside pad_tail's
// requires clause. zero_head sits above the edit, does not call pad_tail,
// and its body, positions, and generated integer program are identical in
// both versions — so a second run over V2 against a cache populated from
// V1 must revalidate zero_head from its stored certificates (no fixpoint)
// while pad_tail, whose inlined contract changed, falls back to full
// analysis.
const revalSrcV1 = `void zero_head(char *s)
    requires (is_within_bounds(s) && alloc(s) > 1)
    modifies (*s), (is_nullt(s)), (strlen(s))
    ensures (is_nullt(s) && strlen(s) == 0)
{
    *s = '\0';
}

void pad_tail(char *s)
    requires (is_nullt(s) && alloc(s) > strlen(s) + 2)
    modifies (is_nullt(s)), (strlen(s))
    ensures (is_nullt(s))
{
    int n;
    n = strlen(s);
    s[n] = 'x';
    s[n + 1] = '\0';
}
`

var revalSrcV2 = strings.Replace(revalSrcV1, "strlen(s) + 2", "strlen(s) + 3", 1)

func TestCacheRevalidationOnContractChange(t *testing.T) {
	if revalSrcV1 == revalSrcV2 {
		t.Fatal("fixture bug: V1 and V2 are identical")
	}
	dir := t.TempDir()
	cfg := Config{Workers: 1, Cascade: true, CacheDir: dir}
	cold, err := Analyze("reval.c", revalSrcV1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.FixpointIterations == 0 {
		t.Fatal("cold run reports zero fixpoint iterations; the cheapness comparison below is vacuous")
	}
	v2, err := Analyze("reval.c", revalSrcV2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Analyze("reval.c", revalSrcV2, Config{Workers: 1, Cascade: true})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Stats.CacheRevalidated < 1 {
		t.Errorf("CacheRevalidated = %d, want >= 1 (zero_head should revalidate)",
			v2.Stats.CacheRevalidated)
	}
	if v2.Stats.CacheMisses < 1 {
		t.Errorf("CacheMisses = %d, want >= 1 (pad_tail's contract changed)",
			v2.Stats.CacheMisses)
	}
	if v2.Stats.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 (the source text changed)", v2.Stats.CacheHits)
	}
	// The revalidation fast path skips the fixpoint for zero_head, so the
	// incremental run must be strictly cheaper than the cold run by the
	// engine's own iteration counter.
	if v2.Stats.FixpointIterations >= cold.Stats.FixpointIterations {
		t.Errorf("incremental run cost %d fixpoint iterations, cold run %d; revalidation saved nothing",
			v2.Stats.FixpointIterations, cold.Stats.FixpointIterations)
	}
	for _, p := range v2.Procedures {
		switch p.Name {
		case "zero_head":
			if p.CacheStatus != "revalidated" {
				t.Errorf("zero_head CacheStatus = %q, want \"revalidated\"", p.CacheStatus)
			}
		case "pad_tail":
			if p.CacheStatus != "stored" {
				t.Errorf("pad_tail CacheStatus = %q, want \"stored\" (full re-analysis, result re-cached)",
					p.CacheStatus)
			}
		}
	}
	stripTimings(v2)
	stripTimings(ref)
	if !reflect.DeepEqual(v2, ref) {
		t.Errorf("incremental report differs from a fresh uncached run of the modified source")
	}
}

// repFiles returns every report file in a cache directory.
func repFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.rep"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no cache entries in %s (err=%v)", dir, err)
	}
	return matches
}

// TestCacheCorruptedEntryFallsBack damages stored entries in the two ways
// a real filesystem does — truncation and bit rot — and checks the next
// run detects each, counts it, and re-analyzes from scratch.
func TestCacheCorruptedEntryFallsBack(t *testing.T) {
	const path = "testdata/airbus/airbus.c"
	ref, err := AnalyzeFile(path, Config{Workers: 1, Cascade: true})
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(ref)
	damage := []struct {
		name string
		hurt func(data []byte) []byte
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }},
		{"bitflip", func(data []byte) []byte {
			data[len(data)-2] ^= 0x40
			return data
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := AnalyzeFile(path, Config{Workers: 1, Cascade: true, CacheDir: dir}); err != nil {
				t.Fatal(err)
			}
			victim := repFiles(t, dir)[0]
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(victim, d.hurt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			warm, err := AnalyzeFile(path, Config{Workers: 1, Cascade: true, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Stats.CacheBadEntries < 1 {
				t.Errorf("CacheBadEntries = %d, want >= 1", warm.Stats.CacheBadEntries)
			}
			if warm.Stats.CacheHits != len(warm.Procedures)-1 {
				t.Errorf("CacheHits = %d, want %d (all but the damaged entry)",
					warm.Stats.CacheHits, len(warm.Procedures)-1)
			}
			stripTimings(warm)
			if !reflect.DeepEqual(ref, warm) {
				t.Errorf("report after cache corruption differs from the uncached reference")
			}
		})
	}
}

// resign rewrites a cache file around a modified payload with a freshly
// computed digest, simulating an attacker (or a buggy tool) that can write
// well-formed entries but cannot forge analysis results.
func resign(t *testing.T, path string, mutate func(e *cache.Entry)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 {
		t.Fatalf("%s: no header line", path)
	}
	var e cache.Entry
	if err := json.Unmarshal(data[nl+1:], &e); err != nil {
		t.Fatal(err)
	}
	mutate(&e)
	payload, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("cssv-cache %d %s\n", cache.FormatVersion, hex.EncodeToString(sum[:]))
	if err := os.WriteFile(path, append([]byte(header), payload...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheTamperedEntryRejected rewrites a stored entry with one
// violation deleted — a correctly signed entry that claims a check is
// safe without a certificate for it. Under -cache-verify the assert
// accounting must reject the entry and fall back to full analysis; the
// dropped violation must reappear in the report.
func TestCacheTamperedEntryRejected(t *testing.T) {
	const path = "testdata/airbus/airbus.c"
	dir := t.TempDir()
	cfg := Config{Workers: 1, Cascade: true, CacheDir: dir, CacheVerify: true}
	ref, err := AnalyzeFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for _, rep := range repFiles(t, dir) {
		var hasViolations bool
		resign(t, rep, func(e *cache.Entry) {
			if len(e.Report.Violations) > 0 {
				e.Report.Violations = e.Report.Violations[1:]
				hasViolations = true
			}
		})
		if hasViolations {
			tampered++
		}
	}
	if tampered == 0 {
		t.Fatal("fixture bug: no cached entry had a violation to drop")
	}
	warm, err := AnalyzeFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheCertRejected < tampered {
		t.Errorf("CacheCertRejected = %d, want >= %d (one per tampered entry)",
			warm.Stats.CacheCertRejected, tampered)
	}
	stripTimings(ref)
	stripTimings(warm)
	if !reflect.DeepEqual(ref, warm) {
		t.Errorf("report after tampering differs from the trusted reference — a dropped violation survived")
	}
}

// TestCacheTamperedCertificateRejected rewrites the certificate half of
// each entry with one payload byte flipped and a freshly signed header —
// the file-level digest passes, but the digest binding pinned in the
// report half must reject the pair, and the run must fall back to full
// analysis.
func TestCacheTamperedCertificateRejected(t *testing.T) {
	const path = "testdata/airbus/airbus.c"
	dir := t.TempDir()
	cfg := Config{Workers: 1, Cascade: true, CacheDir: dir, CacheVerify: true}
	ref, err := AnalyzeFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	certs, err := filepath.Glob(filepath.Join(dir, "*.cert"))
	if err != nil || len(certs) == 0 {
		t.Fatalf("no certificate files in %s (err=%v)", dir, err)
	}
	for _, cf := range certs {
		data, err := os.ReadFile(cf)
		if err != nil {
			t.Fatal(err)
		}
		nl := strings.IndexByte(string(data), '\n')
		if nl < 0 {
			t.Fatalf("%s: no header line", cf)
		}
		payload := append([]byte(nil), data[nl+1:]...)
		payload[len(payload)/2] ^= 0x01
		sum := sha256.Sum256(payload)
		header := fmt.Sprintf("cssv-cache %d %s\n", cache.FormatVersion, hex.EncodeToString(sum[:]))
		if err := os.WriteFile(cf, append([]byte(header), payload...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := AnalyzeFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheBadEntries+warm.Stats.CacheCertRejected < len(certs) {
		t.Errorf("bad=%d rejected=%d, want their sum >= %d (one per tampered certificate file)",
			warm.Stats.CacheBadEntries, warm.Stats.CacheCertRejected, len(certs))
	}
	if warm.Stats.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0: no tampered entry may be trusted", warm.Stats.CacheHits)
	}
	stripTimings(ref)
	stripTimings(warm)
	if !reflect.DeepEqual(ref, warm) {
		t.Errorf("report after certificate tampering differs from the trusted reference")
	}
}
