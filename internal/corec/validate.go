package corec

import (
	"fmt"

	"repro/internal/cast"
)

// Validate checks that a normalized function body consists solely of CoreC
// statement forms, returning the first violation.
func Validate(fd *cast.FuncDecl) error {
	if fd.Body == nil {
		return nil
	}
	declsDone := false
	for _, s := range fd.Body.Stmts {
		if _, ok := s.(*cast.DeclStmt); ok {
			if declsDone {
				return errf(s.Pos(), "declaration after first statement")
			}
			if ds := s.(*cast.DeclStmt); ds.Init != nil {
				return errf(s.Pos(), "declaration with initializer")
			}
			continue
		}
		declsDone = true
		if err := validateStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func validateStmt(s cast.Stmt) error {
	switch s := s.(type) {
	case *cast.ExprStmt:
		return validateExprStmt(s)
	case *cast.Goto:
		return nil
	case *cast.Labeled:
		if _, ok := s.Stmt.(*cast.Empty); !ok {
			return errf(s.Pos(), "label must be attached to an empty statement")
		}
		return nil
	case *cast.If:
		if _, ok := s.Then.(*cast.Goto); !ok {
			return errf(s.Pos(), "if body must be a goto")
		}
		if s.Else != nil {
			return errf(s.Pos(), "if must not have else")
		}
		return validateCond(s.Cond)
	case *cast.Return:
		if s.X != nil && !isAtom(s.X) {
			return errf(s.Pos(), "return operand must be an atom")
		}
		return nil
	case *cast.Verify:
		return nil
	case *cast.Empty:
		return nil
	}
	return errf(s.Pos(), "statement %T is not CoreC", s)
}

func validateCond(e cast.Expr) error {
	if b, ok := e.(*cast.Binary); ok && b.Op.IsComparison() {
		if !isAtom(b.X) || !isAtom(b.Y) {
			return errf(e.Pos(), "condition operands must be atoms")
		}
		return nil
	}
	if isAtom(e) {
		return nil
	}
	return errf(e.Pos(), "condition must be an atom or atom-relop-atom")
}

func validateExprStmt(s *cast.ExprStmt) error {
	switch x := s.X.(type) {
	case *cast.Assign:
		if x.Op != cast.PlainAssign {
			return errf(s.Pos(), "compound assignment in CoreC")
		}
		if err := validateLHS(x.LHS); err != nil {
			return err
		}
		if _, isStore := x.LHS.(*cast.Unary); isStore {
			return validateStoreRHS(x.RHS)
		}
		return validateRHS(x.RHS)
	case *cast.Call:
		return validateCall(x)
	}
	return errf(s.Pos(), "expression statement must be an assignment or call")
}

// validateStoreRHS allows simple expressions with no memory access or call
// on the right of a store (paper Fig. 3 writes *p = q + 1).
func validateStoreRHS(e cast.Expr) error {
	switch x := e.(type) {
	case *cast.Ident, *cast.IntLit:
		return nil
	case *cast.Unary:
		if x.Op != cast.Deref && x.Op != cast.Addr && isAtom(x.X) {
			return nil
		}
	case *cast.Binary:
		if !x.Op.IsLogical() && isAtom(x.X) && isAtom(x.Y) {
			return nil
		}
	case *cast.Cast:
		if isAtom(x.X) {
			return nil
		}
	}
	return errf(e.Pos(), "store RHS is not a pure simple expression: %s", cast.ExprString(e))
}

func validateLHS(e cast.Expr) error {
	switch x := e.(type) {
	case *cast.Ident:
		return nil
	case *cast.Unary:
		if x.Op == cast.Deref && isAtom(x.X) {
			return nil
		}
	}
	return errf(e.Pos(), "LHS must be a variable or *atom, got %s", cast.ExprString(e))
}

func validateRHS(e cast.Expr) error {
	switch x := e.(type) {
	case *cast.Ident, *cast.IntLit:
		return nil
	case *cast.Unary:
		switch x.Op {
		case cast.Deref:
			if isAtom(x.X) {
				return nil
			}
		case cast.Addr:
			if _, ok := x.X.(*cast.Ident); ok {
				return nil
			}
		default:
			if isAtom(x.X) {
				return nil
			}
		}
	case *cast.Binary:
		if !x.Op.IsLogical() && isAtom(x.X) && isAtom(x.Y) {
			return nil
		}
	case *cast.Cast:
		if isAtom(x.X) {
			return nil
		}
	case *cast.Call:
		return validateCall(x)
	}
	return errf(e.Pos(), "RHS is not a CoreC simple expression: %s", cast.ExprString(e))
}

func validateCall(c *cast.Call) error {
	if _, ok := c.Fun.(*cast.Ident); !ok {
		return errf(c.Pos(), "call target must be an identifier")
	}
	for _, a := range c.Args {
		if !isAtom(a) {
			return errf(a.Pos(), "call argument must be an atom: %s", cast.ExprString(a))
		}
	}
	return nil
}

// Stats summarizes a normalized function for reporting.
type Stats struct {
	Statements int
	Temps      int
	Labels     int
}

// StatsOf computes normalization statistics for a CoreC function.
func StatsOf(fd *cast.FuncDecl) Stats {
	var st Stats
	if fd.Body == nil {
		return st
	}
	for _, s := range fd.Body.Stmts {
		switch s := s.(type) {
		case *cast.DeclStmt:
			if len(s.Decl.Name) > 3 && s.Decl.Name[:3] == "__t" {
				st.Temps++
			}
			continue
		case *cast.Labeled:
			st.Labels++
		}
		st.Statements++
	}
	return st
}

var _ = fmt.Sprintf
