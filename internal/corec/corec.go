// Package corec lowers parsed C into CoreC, the simplified subset that CSSV
// is defined over (paper §2.1, [38]):
//
//	(i)   control flow is only if/goto (loops, break, continue are lowered);
//	(ii)  expressions are side-effect free and non-nested;
//	(iii) all assignments are statements;
//	(iv)  declarations have no initializations (and are hoisted to the top);
//	(v)   address-of formal parameters is eliminated via a local copy.
//
// After normalization, every function body is a flat statement list where
// each statement is one of the CoreC forms validated by Validate:
//
//	x = atom            x = unop atom        x = atom binop atom
//	x = *p              *p = atom            x = &v
//	x = (T)atom         x = f(atoms...)      f(atoms...)
//	if (cond) goto L    goto L               L: ;
//	return [atom]       __assert(e)          __assume(e)
//
// where atom is an identifier or integer literal and cond is "atom",
// "!atom", or "atom relop atom". Struct member accesses are lowered to
// byte-level pointer arithmetic (cast to char*, add the field offset, cast
// back), matching the paper's low-level memory model (§2.4). Array indexing
// a[i] is lowered to pointer arithmetic t = a + i; *t.
package corec

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// StringTable maps generated global buffer names to the string contents
// they hold (the null terminator is not included in the value but is
// counted in the buffer's declared size).
type StringTable map[string]string

// Program is a normalized translation unit.
type Program struct {
	File *cast.File
	// Strings lists the synthetic globals generated for string literals.
	Strings StringTable
	// Layout is the layout engine member lowering used; nil means the
	// paper's packed 32-bit model (Paper32).
	Layout *ctypes.Engine
	// AccessPaths maps the temporaries introduced while lowering member
	// accesses to the source access path they address (e.g. "__t2" ->
	// "s.count"), so downstream location naming can speak in field terms.
	AccessPaths map[string]string
}

// Normalize lowers every function definition in f to CoreC under the packed
// Paper32 model. The input AST is not modified; prototypes, contracts,
// globals and struct declarations are carried over.
func Normalize(f *cast.File) (*Program, error) {
	return NormalizeWith(f, nil)
}

// NormalizeWith is Normalize with an explicit layout engine: member offsets
// and sizeof are folded under the engine's target, and the engine rides on
// the returned Program for later pipeline phases.
func NormalizeWith(f *cast.File, layout *ctypes.Engine) (*Program, error) {
	n := &normalizer{strings: StringTable{}, layout: layout, paths: map[string]string{}}
	out := &cast.File{Name: f.Name}
	var stringDecls []cast.Decl
	for _, d := range f.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Body == nil {
			out.Decls = append(out.Decls, d)
			continue
		}
		nf, err := n.function(fd)
		if err != nil {
			return nil, err
		}
		out.Decls = append(out.Decls, nf)
	}
	for name, val := range n.strings {
		vd := &cast.VarDecl{
			Name:     name,
			DeclType: ctypes.Array{Elem: ctypes.Char, Len: len(val) + 1},
			Storage:  cast.SCStatic,
		}
		stringDecls = append(stringDecls, vd)
	}
	out.Decls = append(stringDecls, out.Decls...)
	return &Program{File: out, Strings: n.strings, Layout: layout, AccessPaths: n.paths}, nil
}

// Renormalize normalizes a file derived from a previously normalized
// program (e.g. after contract inlining) under the prior program's layout
// engine, carrying over the string-literal table: the __strN globals already
// present in the file keep the contents recorded by the first pass.
func Renormalize(prior *Program, file *cast.File) (*Program, error) {
	out, err := NormalizeWith(file, prior.Layout)
	if err != nil {
		return nil, err
	}
	for name, val := range prior.Strings {
		if _, clash := out.Strings[name]; !clash {
			out.Strings[name] = val
		}
	}
	for name, path := range prior.AccessPaths {
		if _, clash := out.AccessPaths[name]; !clash {
			out.AccessPaths[name] = path
		}
	}
	return out, nil
}

type normalizer struct {
	strings StringTable
	nstr    int
	layout  *ctypes.Engine
	// paths records temp -> source access path for member-address temps,
	// keyed by "func.temp" to stay unique across functions.
	paths map[string]string
}

type funcNorm struct {
	n        *normalizer
	fd       *cast.FuncDecl
	out      []cast.Stmt
	decls    []*cast.VarDecl
	ntmp     int
	nlbl     int
	rename   []map[string]string // scope stack for local renaming
	declared map[string]bool     // all names claimed in this function
	breakLbl string
	contLbl  string
}

func (n *normalizer) function(fd *cast.FuncDecl) (*cast.FuncDecl, error) {
	fn := &funcNorm{
		n:        n,
		fd:       fd,
		declared: map[string]bool{},
	}
	for _, p := range fd.Params {
		fn.declared[p.Name] = true
	}
	// Renormalization safety: skip fresh-name counters past any __tN / __LN
	// already present (e.g. when the contract inliner re-feeds a normalized
	// function).
	cast.WalkStmt(fd.Body, func(s cast.Stmt) bool {
		if l, ok := s.(*cast.Labeled); ok {
			var k int
			if _, err := fmt.Sscanf(l.Label, "__L%d", &k); err == nil && k >= fn.nlbl {
				fn.nlbl = k + 1
			}
		}
		if ds, ok := s.(*cast.DeclStmt); ok {
			var k int
			if _, err := fmt.Sscanf(ds.Decl.Name, "__t%d", &k); err == nil && k >= fn.ntmp {
				fn.ntmp = k + 1
			}
		}
		return true
	})
	fn.pushScope()

	// Rule (v): formals whose address is taken get a local copy.
	copies, err := fn.copyAddressedFormals()
	if err != nil {
		return nil, err
	}

	if err := fn.stmt(fd.Body); err != nil {
		return nil, err
	}

	nf := &cast.FuncDecl{
		Name:     fd.Name,
		Ret:      fd.Ret,
		Params:   fd.Params,
		Variadic: fd.Variadic,
		Contract: fd.Contract,
	}
	nf.P = fd.Pos()
	body := &cast.Block{}
	body.P = fd.Body.Pos()
	for _, vd := range fn.decls {
		ds := &cast.DeclStmt{Decl: vd}
		ds.P = vd.Pos()
		body.Stmts = append(body.Stmts, ds)
	}
	body.Stmts = append(body.Stmts, copies...)
	body.Stmts = append(body.Stmts, fn.out...)
	nf.Body = body
	return nf, nil
}

// ---------------------------------------------------------------------------
// Naming

func (fn *funcNorm) pushScope() {
	fn.rename = append(fn.rename, map[string]string{})
}

func (fn *funcNorm) popScope() {
	fn.rename = fn.rename[:len(fn.rename)-1]
}

func (fn *funcNorm) resolve(name string) string {
	for i := len(fn.rename) - 1; i >= 0; i-- {
		if r, ok := fn.rename[i][name]; ok {
			return r
		}
	}
	return name
}

// declareLocal hoists a local declaration, renaming on collision, and
// returns the unique name.
func (fn *funcNorm) declareLocal(name string, t ctypes.Type, pos clex.Pos) string {
	unique := name
	for i := 1; fn.declared[unique]; i++ {
		unique = fmt.Sprintf("%s__%d", name, i)
	}
	fn.declared[unique] = true
	fn.rename[len(fn.rename)-1][name] = unique
	vd := &cast.VarDecl{Name: unique, DeclType: t}
	vd.P = pos
	fn.decls = append(fn.decls, vd)
	return unique
}

func (fn *funcNorm) freshTemp(t ctypes.Type, pos clex.Pos) *cast.Ident {
	name := fmt.Sprintf("__t%d", fn.ntmp)
	fn.ntmp++
	fn.declared[name] = true
	vd := &cast.VarDecl{Name: name, DeclType: t}
	vd.P = pos
	fn.decls = append(fn.decls, vd)
	id := &cast.Ident{Name: name}
	id.P = pos
	id.SetType(t)
	return id
}

func (fn *funcNorm) freshLabel() string {
	l := fmt.Sprintf("__L%d", fn.nlbl)
	fn.nlbl++
	return l
}

// ---------------------------------------------------------------------------
// Emission helpers

func (fn *funcNorm) emit(s cast.Stmt) { fn.out = append(fn.out, s) }

func (fn *funcNorm) emitAssign(lhs, rhs cast.Expr, pos clex.Pos) {
	a := &cast.Assign{Op: cast.PlainAssign, LHS: lhs, RHS: rhs}
	a.P = pos
	a.SetType(ctypes.Decay(lhs.Type()))
	es := &cast.ExprStmt{X: a}
	es.P = pos
	fn.emit(es)
}

func (fn *funcNorm) emitGoto(label string, pos clex.Pos) {
	g := &cast.Goto{Label: label}
	g.P = pos
	fn.emit(g)
}

func (fn *funcNorm) emitLabel(label string, pos clex.Pos) {
	e := &cast.Empty{}
	e.P = pos
	l := &cast.Labeled{Label: label, Stmt: e}
	l.P = pos
	fn.emit(l)
}

func (fn *funcNorm) emitIfGoto(cond cast.Expr, label string, pos clex.Pos) {
	g := &cast.Goto{Label: label}
	g.P = pos
	s := &cast.If{Cond: cond, Then: g}
	s.P = pos
	fn.emit(s)
}

// ---------------------------------------------------------------------------
// Address-of formals (rule v)

func (fn *funcNorm) copyAddressedFormals() ([]cast.Stmt, error) {
	addressed := map[string]bool{}
	cast.WalkStmt(fn.fd.Body, func(s cast.Stmt) bool {
		cast.ExprsOf(s, func(e cast.Expr) {
			cast.WalkExpr(e, func(x cast.Expr) bool {
				if u, ok := x.(*cast.Unary); ok && u.Op == cast.Addr {
					if id, ok := u.X.(*cast.Ident); ok {
						for _, p := range fn.fd.Params {
							if p.Name == id.Name {
								addressed[id.Name] = true
							}
						}
					}
				}
				return true
			})
		})
		return true
	})
	var copies []cast.Stmt
	for _, p := range fn.fd.Params {
		if !addressed[p.Name] {
			continue
		}
		local := fn.declareLocal(p.Name+"__copy", p.Type, fn.fd.Pos())
		// All body references to the formal go through the copy.
		fn.rename[0][p.Name] = local
		lhs := &cast.Ident{Name: local}
		lhs.SetType(p.Type)
		lhs.P = fn.fd.Pos()
		rhs := &cast.Ident{Name: p.Name}
		rhs.SetType(p.Type)
		rhs.P = fn.fd.Pos()
		a := &cast.Assign{Op: cast.PlainAssign, LHS: lhs, RHS: rhs}
		a.SetType(p.Type)
		a.P = fn.fd.Pos()
		es := &cast.ExprStmt{X: a}
		es.P = fn.fd.Pos()
		copies = append(copies, es)
	}
	return copies, nil
}
