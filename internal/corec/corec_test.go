package corec

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func normalize(t *testing.T, src string) *Program {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return p
}

func validateAll(t *testing.T, p *Program) {
	t.Helper()
	for _, fd := range p.File.Funcs() {
		if err := Validate(fd); err != nil {
			t.Errorf("%s not CoreC: %v\n%s", fd.Name, err, cast.FuncString(fd))
		}
	}
}

func TestNormalizeLoops(t *testing.T) {
	src := `
void f(int n) {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        sum += i;
    }
    while (sum > 0) sum--;
    do { sum++; } while (sum < 10);
}
`
	p := normalize(t, src)
	validateAll(t, p)
	fd := p.File.Lookup("f")
	// No loop constructs may remain.
	cast.WalkStmt(fd.Body, func(s cast.Stmt) bool {
		switch s.(type) {
		case *cast.While, *cast.DoWhile, *cast.For, *cast.Break, *cast.Continue:
			t.Errorf("loop construct %T survived normalization", s)
		}
		return true
	})
}

func TestNormalizeNestedExpr(t *testing.T) {
	src := `
int g(int);
void f(int a, int b) {
    int x;
    x = g(a + b * 2) + g(a - 1);
}
`
	p := normalize(t, src)
	validateAll(t, p)
}

func TestNormalizeStringLiteral(t *testing.T) {
	src := `
void f(char *dst) {
    char *p;
    p = "hello";
}
`
	p := normalize(t, src)
	validateAll(t, p)
	if len(p.Strings) != 1 {
		t.Fatalf("strings = %v, want 1 entry", p.Strings)
	}
	for name, val := range p.Strings {
		if val != "hello" {
			t.Errorf("string value = %q", val)
		}
		if !strings.HasPrefix(name, "__str") {
			t.Errorf("string name = %q", name)
		}
	}
}

func TestNormalizeAddressedFormal(t *testing.T) {
	src := `
void g(int *p);
void f(int n) {
    g(&n);
    n = n + 1;
}
`
	p := normalize(t, src)
	validateAll(t, p)
	fd := p.File.Lookup("f")
	// The formal must not have its address taken; a copy must exist.
	text := cast.FuncString(fd)
	if !strings.Contains(text, "n__copy") {
		t.Errorf("no formal copy introduced:\n%s", text)
	}
	if strings.Contains(text, "&n;") {
		t.Errorf("address of formal survived:\n%s", text)
	}
}

func TestNormalizeMemberAccess(t *testing.T) {
	src := `
struct line { char text[80]; int len; };
void f(struct line *l) {
    l->len = 3;
    l->text[0] = 'x';
}
`
	p := normalize(t, src)
	validateAll(t, p)
}

func TestNormalizeTernaryLogical(t *testing.T) {
	src := `
void f(int a, int b) {
    int m;
    int c;
    m = a > b ? a : b;
    c = a > 0 && b > 0;
    c = a || b;
}
`
	p := normalize(t, src)
	validateAll(t, p)
}

func TestNormalizeIncDec(t *testing.T) {
	src := `
void f(char *p) {
    char c;
    int i;
    i = 0;
    c = *p++;
    ++i;
    i--;
}
`
	p := normalize(t, src)
	validateAll(t, p)
}

func TestNormalizeScopes(t *testing.T) {
	src := `
void f(int n) {
    int x;
    x = 1;
    {
        int x;
        x = 2;
        {
            int x;
            x = 3;
        }
    }
    x = 4;
}
`
	p := normalize(t, src)
	validateAll(t, p)
	fd := p.File.Lookup("f")
	names := map[string]bool{}
	for _, s := range fd.Body.Stmts {
		if ds, ok := s.(*cast.DeclStmt); ok {
			if names[ds.Decl.Name] {
				t.Errorf("duplicate hoisted declaration %q", ds.Decl.Name)
			}
			names[ds.Decl.Name] = true
		}
	}
	if len(names) != 3 {
		t.Errorf("got %d hoisted locals, want 3 (x renamed twice)", len(names))
	}
}

func TestNormalizeSkipLineStyle(t *testing.T) {
	// The paper's Fig. 3 SkipLine is already CoreC; normalization should
	// keep its structure (gotos, labels, simple assignments).
	src := `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`
	p := normalize(t, src)
	validateAll(t, p)
	fd := p.File.Lookup("SkipLine")
	st := StatsOf(fd)
	if st.Temps != 0 {
		t.Errorf("SkipLine needed %d temps, want 0\n%s", st.Temps, cast.FuncString(fd))
	}
}

func TestNormalizeCalls(t *testing.T) {
	src := `
int strlen_(char *s);
void f(char *a, char *b) {
    int n;
    n = strlen_(a) + strlen_(b);
    strlen_(a);
}
`
	p := normalize(t, src)
	validateAll(t, p)
}

func TestNormalizeFunctionPointer(t *testing.T) {
	src := `
int h(int);
void f(int x) {
    int (*fp)(int);
    int r;
    fp = &h;
    r = (*fp)(x);
    r = fp(x);
}
`
	p := normalize(t, src)
	validateAll(t, p)
}
