package corec

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// Error is a normalization error.
type Error struct {
	Pos clex.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos clex.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Statements

func (fn *funcNorm) stmt(s cast.Stmt) error {
	switch s := s.(type) {
	case *cast.Block:
		fn.pushScope()
		for _, t := range s.Stmts {
			if err := fn.stmt(t); err != nil {
				return err
			}
		}
		fn.popScope()
		return nil
	case *cast.Empty:
		return nil
	case *cast.DeclStmt:
		name := fn.declareLocal(s.Decl.Name, s.Decl.DeclType, s.Pos())
		if s.Init != nil {
			lhs := &cast.Ident{Name: name}
			lhs.P = s.Pos()
			lhs.SetType(s.Decl.DeclType)
			a := &cast.Assign{Op: cast.PlainAssign, LHS: lhs, RHS: s.Init}
			a.P = s.Pos()
			a.SetType(ctypes.Decay(s.Decl.DeclType))
			_, err := fn.lowerAssign(a)
			return err
		}
		return nil
	case *cast.ExprStmt:
		return fn.exprForEffect(s.X)
	case *cast.If:
		// "if (c) goto L" is already CoreC-shaped; branch directly.
		if g, ok := s.Then.(*cast.Goto); ok && s.Else == nil {
			return fn.condGoto(s.Cond, g.Label, true)
		}
		if s.Else == nil {
			end := fn.freshLabel()
			if err := fn.condGoto(s.Cond, end, false); err != nil {
				return err
			}
			if err := fn.stmt(s.Then); err != nil {
				return err
			}
			fn.emitLabel(end, s.Pos())
			return nil
		}
		elseL := fn.freshLabel()
		end := fn.freshLabel()
		if err := fn.condGoto(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := fn.stmt(s.Then); err != nil {
			return err
		}
		fn.emitGoto(end, s.Pos())
		fn.emitLabel(elseL, s.Pos())
		if err := fn.stmt(s.Else); err != nil {
			return err
		}
		fn.emitLabel(end, s.Pos())
		return nil
	case *cast.While:
		start := fn.freshLabel()
		end := fn.freshLabel()
		fn.emitLabel(start, s.Pos())
		if err := fn.condGoto(s.Cond, end, false); err != nil {
			return err
		}
		if err := fn.loopBody(s.Body, end, start); err != nil {
			return err
		}
		fn.emitGoto(start, s.Pos())
		fn.emitLabel(end, s.Pos())
		return nil
	case *cast.DoWhile:
		start := fn.freshLabel()
		check := fn.freshLabel()
		end := fn.freshLabel()
		fn.emitLabel(start, s.Pos())
		if err := fn.loopBody(s.Body, end, check); err != nil {
			return err
		}
		fn.emitLabel(check, s.Pos())
		if err := fn.condGoto(s.Cond, start, true); err != nil {
			return err
		}
		fn.emitLabel(end, s.Pos())
		return nil
	case *cast.For:
		fn.pushScope()
		defer fn.popScope()
		if s.Init != nil {
			if err := fn.stmt(s.Init); err != nil {
				return err
			}
		}
		start := fn.freshLabel()
		post := fn.freshLabel()
		end := fn.freshLabel()
		fn.emitLabel(start, s.Pos())
		if s.Cond != nil {
			if err := fn.condGoto(s.Cond, end, false); err != nil {
				return err
			}
		}
		if err := fn.loopBody(s.Body, end, post); err != nil {
			return err
		}
		fn.emitLabel(post, s.Pos())
		if s.Post != nil {
			if err := fn.exprForEffect(s.Post); err != nil {
				return err
			}
		}
		fn.emitGoto(start, s.Pos())
		fn.emitLabel(end, s.Pos())
		return nil
	case *cast.Break:
		if fn.breakLbl == "" {
			return errf(s.Pos(), "break outside loop")
		}
		fn.emitGoto(fn.breakLbl, s.Pos())
		return nil
	case *cast.Continue:
		if fn.contLbl == "" {
			return errf(s.Pos(), "continue outside loop")
		}
		fn.emitGoto(fn.contLbl, s.Pos())
		return nil
	case *cast.Goto:
		fn.emitGoto(s.Label, s.Pos())
		return nil
	case *cast.Labeled:
		fn.emitLabel(s.Label, s.Pos())
		return fn.stmt(s.Stmt)
	case *cast.Return:
		if s.X == nil {
			r := &cast.Return{}
			r.P = s.Pos()
			fn.emit(r)
			return nil
		}
		a, err := fn.atom(s.X)
		if err != nil {
			return err
		}
		r := &cast.Return{X: a}
		r.P = s.Pos()
		fn.emit(r)
		return nil
	case *cast.Verify:
		// Contract-expression statements are kept symbolic; only local
		// renaming applies.
		v := &cast.Verify{Kind: s.Kind, Cond: fn.renameExpr(s.Cond), Reason: s.Reason, Site: s.Site}
		v.P = s.Pos()
		fn.emit(v)
		return nil
	}
	return errf(s.Pos(), "cannot normalize %T", s)
}

func (fn *funcNorm) loopBody(body cast.Stmt, breakLbl, contLbl string) error {
	savedB, savedC := fn.breakLbl, fn.contLbl
	fn.breakLbl, fn.contLbl = breakLbl, contLbl
	err := fn.stmt(body)
	fn.breakLbl, fn.contLbl = savedB, savedC
	return err
}

// renameExpr applies local renaming without flattening (for contract text).
func (fn *funcNorm) renameExpr(e cast.Expr) cast.Expr {
	repl := map[string]cast.Expr{}
	for _, name := range cast.FreeIdents(e) {
		if r := fn.resolve(name); r != name {
			id := &cast.Ident{Name: r}
			repl[name] = id
		}
	}
	if len(repl) == 0 {
		return e
	}
	return cast.SubstituteIdents(e, repl)
}

// ---------------------------------------------------------------------------
// Conditions

var negRel = map[cast.BinaryOp]cast.BinaryOp{
	cast.Lt: cast.Ge, cast.Le: cast.Gt, cast.Gt: cast.Le, cast.Ge: cast.Lt,
	cast.Eq: cast.Ne, cast.Ne: cast.Eq,
}

// condGoto emits code that jumps to label when e's truth equals jumpIfTrue.
func (fn *funcNorm) condGoto(e cast.Expr, label string, jumpIfTrue bool) error {
	switch x := e.(type) {
	case *cast.Binary:
		switch {
		case x.Op == cast.LogAnd:
			if jumpIfTrue {
				skip := fn.freshLabel()
				if err := fn.condGoto(x.X, skip, false); err != nil {
					return err
				}
				if err := fn.condGoto(x.Y, label, true); err != nil {
					return err
				}
				fn.emitLabel(skip, e.Pos())
				return nil
			}
			if err := fn.condGoto(x.X, label, false); err != nil {
				return err
			}
			return fn.condGoto(x.Y, label, false)
		case x.Op == cast.LogOr:
			if jumpIfTrue {
				if err := fn.condGoto(x.X, label, true); err != nil {
					return err
				}
				return fn.condGoto(x.Y, label, true)
			}
			skip := fn.freshLabel()
			if err := fn.condGoto(x.X, skip, true); err != nil {
				return err
			}
			if err := fn.condGoto(x.Y, label, false); err != nil {
				return err
			}
			fn.emitLabel(skip, e.Pos())
			return nil
		case x.Op.IsComparison():
			a, err := fn.atom(x.X)
			if err != nil {
				return err
			}
			b, err := fn.atom(x.Y)
			if err != nil {
				return err
			}
			op := x.Op
			if !jumpIfTrue {
				op = negRel[op]
			}
			c := &cast.Binary{Op: op, X: a, Y: b}
			c.P = e.Pos()
			c.SetType(ctypes.Int)
			fn.emitIfGoto(c, label, e.Pos())
			return nil
		}
	case *cast.Unary:
		if x.Op == cast.LogNot {
			return fn.condGoto(x.X, label, !jumpIfTrue)
		}
	}
	// General case: compare the value against zero.
	a, err := fn.atom(e)
	if err != nil {
		return err
	}
	op := cast.Ne
	if !jumpIfTrue {
		op = cast.Eq
	}
	zero := &cast.IntLit{}
	zero.P = e.Pos()
	zero.SetType(ctypes.Int)
	c := &cast.Binary{Op: op, X: a, Y: zero}
	c.P = e.Pos()
	c.SetType(ctypes.Int)
	fn.emitIfGoto(c, label, e.Pos())
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

func isAtom(e cast.Expr) bool {
	switch e.(type) {
	case *cast.Ident, *cast.IntLit:
		return true
	}
	return false
}

// atom lowers e to an identifier or literal, emitting statements as needed.
func (fn *funcNorm) atom(e cast.Expr) (cast.Expr, error) {
	switch x := e.(type) {
	case *cast.IntLit:
		c := *x
		return &c, nil
	case *cast.Ident:
		c := *x
		c.Name = fn.resolve(x.Name)
		return &c, nil
	case *cast.SizeofType:
		lit := &cast.IntLit{Value: int64(fn.n.layout.SizeOf(x.Of))}
		lit.P = x.Pos()
		lit.SetType(ctypes.Int)
		return lit, nil
	case *cast.StringLit:
		return fn.stringGlobal(x), nil
	case *cast.Unary:
		if x.Op == cast.Neg {
			if lit, ok := x.X.(*cast.IntLit); ok {
				c := *lit
				c.Value = -c.Value
				c.P = x.Pos()
				return &c, nil
			}
		}
	case *cast.Assign:
		v, err := fn.lowerAssign(x)
		if err != nil {
			return nil, err
		}
		if isAtom(v) {
			return v, nil
		}
		t := fn.freshTemp(ctypes.Decay(v.Type()), e.Pos())
		fn.emitAssign(t, v, e.Pos())
		return t, nil
	case *cast.IncDec:
		return fn.lowerIncDec(x)
	}
	// Everything else: compute a simple RHS into a temp.
	rhs, err := fn.simpleRHS(e)
	if err != nil {
		return nil, err
	}
	if isAtom(rhs) {
		return rhs, nil
	}
	t := fn.freshTemp(ctypes.Decay(e.Type()), e.Pos())
	fn.emitAssign(t, rhs, e.Pos())
	return t, nil
}

// simpleRHS lowers e into a legal CoreC right-hand side (possibly an atom),
// emitting statements for subexpressions.
func (fn *funcNorm) simpleRHS(e cast.Expr) (cast.Expr, error) {
	switch x := e.(type) {
	case *cast.IntLit, *cast.Ident, *cast.StringLit, *cast.SizeofType:
		return fn.atom(e)
	case *cast.Unary:
		switch x.Op {
		case cast.Deref:
			p, err := fn.atom(x.X)
			if err != nil {
				return nil, err
			}
			u := &cast.Unary{Op: cast.Deref, X: p}
			u.P = x.Pos()
			u.SetType(x.Type())
			return u, nil
		case cast.Addr:
			return fn.addressOf(x.X)
		default:
			if lit, ok := x.X.(*cast.IntLit); ok && x.Op == cast.Neg {
				c := *lit
				c.Value = -c.Value
				return &c, nil
			}
			a, err := fn.atom(x.X)
			if err != nil {
				return nil, err
			}
			u := &cast.Unary{Op: x.Op, X: a}
			u.P = x.Pos()
			u.SetType(x.Type())
			return u, nil
		}
	case *cast.Binary:
		if x.Op.IsLogical() {
			return fn.lowerLogical(x)
		}
		a, err := fn.atom(x.X)
		if err != nil {
			return nil, err
		}
		b, err := fn.atom(x.Y)
		if err != nil {
			return nil, err
		}
		bin := &cast.Binary{Op: x.Op, X: a, Y: b}
		bin.P = x.Pos()
		bin.SetType(x.Type())
		return bin, nil
	case *cast.Assign:
		return fn.lowerAssign(x)
	case *cast.IncDec:
		return fn.lowerIncDec(x)
	case *cast.Call:
		return fn.lowerCall(x)
	case *cast.Index:
		return fn.loadOrDecay(x)
	case *cast.Member:
		return fn.loadOrDecay(x)
	case *cast.Cast:
		a, err := fn.atom(x.X)
		if err != nil {
			return nil, err
		}
		if ctypes.Decay(a.Type()).Equal(ctypes.Decay(x.To)) {
			return a, nil
		}
		c := &cast.Cast{To: x.To, X: a}
		c.P = x.Pos()
		c.SetType(x.To)
		return c, nil
	case *cast.Cond:
		t := fn.freshTemp(ctypes.Decay(x.Type()), x.Pos())
		elseL := fn.freshLabel()
		end := fn.freshLabel()
		if err := fn.condGoto(x.C, elseL, false); err != nil {
			return nil, err
		}
		v1, err := fn.atom(x.Then)
		if err != nil {
			return nil, err
		}
		fn.emitAssign(t, v1, x.Pos())
		fn.emitGoto(end, x.Pos())
		fn.emitLabel(elseL, x.Pos())
		v2, err := fn.atom(x.Else)
		if err != nil {
			return nil, err
		}
		fn.emitAssign(t, v2, x.Pos())
		fn.emitLabel(end, x.Pos())
		return t, nil
	}
	return nil, errf(e.Pos(), "cannot lower expression %T", e)
}

// loadOrDecay lowers an Index/Member rvalue: array-typed results decay to
// their base address (a[i] of type char[8] is a char* value, not a load);
// scalar results load through the computed address.
func (fn *funcNorm) loadOrDecay(x cast.Expr) (cast.Expr, error) {
	addr, err := fn.addressOf(x)
	if err != nil {
		return nil, err
	}
	if arr, isArr := x.Type().(ctypes.Array); isArr {
		// Decay: reinterpret the row/field address as a pointer to the
		// element type.
		want := ctypes.PointerTo(arr.Elem)
		if ctypes.Decay(addr.Type()).Equal(want) {
			return addr, nil
		}
		c := &cast.Cast{To: want, X: addr}
		c.P = x.Pos()
		c.SetType(want)
		return c, nil
	}
	u := &cast.Unary{Op: cast.Deref, X: addr}
	u.P = x.Pos()
	u.SetType(x.Type())
	return u, nil
}

// lowerLogical materializes a && / || into a 0/1 temp via control flow.
func (fn *funcNorm) lowerLogical(e *cast.Binary) (cast.Expr, error) {
	t := fn.freshTemp(ctypes.Int, e.Pos())
	falseL := fn.freshLabel()
	end := fn.freshLabel()
	if err := fn.condGoto(e, falseL, false); err != nil {
		return nil, err
	}
	one := &cast.IntLit{Value: 1}
	one.P = e.Pos()
	one.SetType(ctypes.Int)
	fn.emitAssign(t, one, e.Pos())
	fn.emitGoto(end, e.Pos())
	fn.emitLabel(falseL, e.Pos())
	zero := &cast.IntLit{}
	zero.P = e.Pos()
	zero.SetType(ctypes.Int)
	fn.emitAssign(t, zero, e.Pos())
	fn.emitLabel(end, e.Pos())
	return t, nil
}

// stringGlobal interns a string literal as a synthetic static buffer and
// returns a reference to it.
func (fn *funcNorm) stringGlobal(s *cast.StringLit) cast.Expr {
	name := fmt.Sprintf("__str%d", fn.n.nstr)
	fn.n.nstr++
	fn.n.strings[name] = s.Value
	id := &cast.Ident{Name: name}
	id.P = s.Pos()
	id.SetType(ctypes.Array{Elem: ctypes.Char, Len: len(s.Value) + 1})
	return id
}

// addressOf lowers &e, returning an atom or &v / arithmetic form whose value
// is the address of the lvalue e.
func (fn *funcNorm) addressOf(e cast.Expr) (cast.Expr, error) {
	switch x := e.(type) {
	case *cast.Ident:
		name := fn.resolve(x.Name)
		id := &cast.Ident{Name: name}
		id.P = x.Pos()
		id.SetType(x.Type())
		u := &cast.Unary{Op: cast.Addr, X: id}
		u.P = x.Pos()
		u.SetType(ctypes.PointerTo(x.Type()))
		t := fn.freshTemp(ctypes.PointerTo(x.Type()), x.Pos())
		fn.emitAssign(t, u, x.Pos())
		return t, nil
	case *cast.Unary:
		if x.Op == cast.Deref {
			return fn.atom(x.X)
		}
	case *cast.Index:
		base, err := fn.atom(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := fn.atom(x.I)
		if err != nil {
			return nil, err
		}
		elem := ctypes.Elem(ctypes.Decay(x.X.Type()))
		bin := &cast.Binary{Op: cast.Add, X: base, Y: idx}
		bin.P = x.Pos()
		bin.SetType(ctypes.PointerTo(elem))
		t := fn.freshTemp(ctypes.PointerTo(elem), x.Pos())
		fn.emitAssign(t, bin, x.Pos())
		return t, nil
	case *cast.Member:
		return fn.memberAddr(x)
	}
	return nil, errf(e.Pos(), "cannot take address of %T", e)
}

// memberAddr lowers &x.f / &p->f to byte-level pointer arithmetic:
// t1 = (char*)base; t2 = t1 + offset; t3 = (F*)t2. The member's byte offset
// comes from the program's layout engine, so the same source lowers
// differently under -target paper32 and -target sysv64. The final temp is
// recorded in AccessPaths so downstream phases can name the location by its
// source access path.
func (fn *funcNorm) memberAddr(m *cast.Member) (cast.Expr, error) {
	var base cast.Expr
	var err error
	var stTy ctypes.Type
	if m.Arrow {
		base, err = fn.atom(m.X)
		stTy = ctypes.Elem(ctypes.Decay(m.X.Type()))
	} else {
		base, err = fn.addressOf(m.X)
		stTy = m.X.Type()
	}
	if err != nil {
		return nil, err
	}
	st, ok := stTy.(*ctypes.Struct)
	if !ok {
		return nil, errf(m.Pos(), "member access on non-struct %v", stTy)
	}
	fl, ok := fn.n.layout.FieldOffset(st, m.Name)
	if !ok {
		return nil, errf(m.Pos(), "no field %q in %s", m.Name, st)
	}
	charPtr := ctypes.PointerTo(ctypes.Char)
	fldPtr := ctypes.PointerTo(fl.Type)

	cur := base
	if !ctypes.Decay(cur.Type()).Equal(charPtr) {
		t1 := fn.freshTemp(charPtr, m.Pos())
		c := &cast.Cast{To: charPtr, X: cur}
		c.P = m.Pos()
		c.SetType(charPtr)
		fn.emitAssign(t1, c, m.Pos())
		cur = t1
	}
	if fl.Offset != 0 {
		off := &cast.IntLit{Value: int64(fl.Offset)}
		off.P = m.Pos()
		off.SetType(ctypes.Int)
		t2 := fn.freshTemp(charPtr, m.Pos())
		bin := &cast.Binary{Op: cast.Add, X: cur, Y: off}
		bin.P = m.Pos()
		bin.SetType(charPtr)
		fn.emitAssign(t2, bin, m.Pos())
		cur = t2
	}
	if !fldPtr.Equal(charPtr) {
		t3 := fn.freshTemp(fldPtr, m.Pos())
		c := &cast.Cast{To: fldPtr, X: cur}
		c.P = m.Pos()
		c.SetType(fldPtr)
		fn.emitAssign(t3, c, m.Pos())
		cur = t3
	}
	if id, ok := cur.(*cast.Ident); ok && id != base {
		path := fn.exprPath(m)
		if fl.Bits > 0 {
			// Bitfields share a storage unit with their neighbors; the
			// marker tells C2IP to treat loads and stores through this
			// temp as value-opaque under a field-sensitive target.
			path += ":bits"
		}
		fn.n.paths[fn.fd.Name+"::"+id.Name] = path
	}
	return cur, nil
}

// exprPath renders the source access path of a member expression, e.g.
// "s.count" or "p->a[..].b", for location naming. Index expressions are
// elided to "[..]" — the path names the member, not one element.
func (fn *funcNorm) exprPath(e cast.Expr) string {
	switch x := e.(type) {
	case *cast.Ident:
		return fn.resolve(x.Name)
	case *cast.Member:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return fn.exprPath(x.X) + sep + x.Name
	case *cast.Index:
		return fn.exprPath(x.X) + "[..]"
	case *cast.Unary:
		if x.Op == cast.Deref {
			return "*" + fn.exprPath(x.X)
		}
	}
	return "?"
}

// storeRHS lowers e to an expression allowed on the right of a store:
// a simple RHS that itself performs no memory access or call.
func (fn *funcNorm) storeRHS(e cast.Expr) (cast.Expr, error) {
	r, err := fn.simpleRHS(e)
	if err != nil {
		return nil, err
	}
	switch x := r.(type) {
	case *cast.Unary:
		if x.Op != cast.Deref && x.Op != cast.Addr {
			return r, nil
		}
	case *cast.Binary, *cast.Cast:
		return r, nil
	default:
		return r, nil
	}
	// Memory read or address computation: bind to a temp.
	t := fn.freshTemp(ctypes.Decay(e.Type()), e.Pos())
	fn.emitAssign(t, r, e.Pos())
	return t, nil
}

// lowerCall lowers a call's callee and arguments to atoms and returns the
// simple Call expression (not yet bound to a temp).
func (fn *funcNorm) lowerCall(c *cast.Call) (cast.Expr, error) {
	var funExpr cast.Expr
	switch f := c.Fun.(type) {
	case *cast.Ident:
		if r := fn.resolve(f.Name); r != f.Name {
			// A local function pointer shadowing: resolve it.
			id := &cast.Ident{Name: r}
			id.P = f.Pos()
			id.SetType(f.Type())
			funExpr = id
		} else {
			cp := *f
			funExpr = &cp
		}
	default:
		a, err := fn.atom(c.Fun)
		if err != nil {
			return nil, err
		}
		funExpr = a
	}
	args := make([]cast.Expr, len(c.Args))
	for i, a := range c.Args {
		at, err := fn.atom(a)
		if err != nil {
			return nil, err
		}
		args[i] = at
	}
	nc := &cast.Call{Fun: funExpr, Args: args}
	nc.P = c.Pos()
	nc.SetType(c.Type())
	return nc, nil
}

// lowerIncDec expands ++/-- and returns the expression's value atom.
func (fn *funcNorm) lowerIncDec(x *cast.IncDec) (cast.Expr, error) {
	one := &cast.IntLit{Value: 1}
	one.P = x.Pos()
	one.SetType(ctypes.Int)
	op := cast.Add
	if x.Decr {
		op = cast.Sub
	}
	var old cast.Expr
	if !x.Prefix {
		// Save the old value.
		v, err := fn.atom(cast.CloneExpr(x.X))
		if err != nil {
			return nil, err
		}
		t := fn.freshTemp(ctypes.Decay(x.X.Type()), x.Pos())
		fn.emitAssign(t, v, x.Pos())
		old = t
	}
	bin := &cast.Binary{Op: op, X: cast.CloneExpr(x.X), Y: one}
	bin.P = x.Pos()
	bin.SetType(ctypes.Decay(x.X.Type()))
	asn := &cast.Assign{Op: cast.PlainAssign, LHS: x.X, RHS: bin}
	asn.P = x.Pos()
	asn.SetType(bin.Type())
	newVal, err := fn.lowerAssign(asn)
	if err != nil {
		return nil, err
	}
	if x.Prefix {
		return newVal, nil
	}
	return old, nil
}

// lowerAssign lowers an assignment (possibly compound) and returns the
// assigned value as an atom.
func (fn *funcNorm) lowerAssign(a *cast.Assign) (cast.Expr, error) {
	rhs := a.RHS
	if a.Op != cast.PlainAssign {
		load := cast.CloneExpr(a.LHS)
		bin := &cast.Binary{Op: a.Op, X: load, Y: a.RHS}
		bin.P = a.Pos()
		bin.SetType(ctypes.Decay(a.LHS.Type()))
		rhs = bin
	}
	switch lhs := a.LHS.(type) {
	case *cast.Ident:
		name := fn.resolve(lhs.Name)
		id := &cast.Ident{Name: name}
		id.P = lhs.Pos()
		id.SetType(lhs.Type())
		r, err := fn.simpleRHS(rhs)
		if err != nil {
			return nil, err
		}
		fn.emitAssign(id, r, a.Pos())
		if isAtom(r) {
			return r, nil
		}
		cp := *id
		return &cp, nil
	default:
		addr, err := fn.addressOf(a.LHS)
		if err != nil {
			return nil, err
		}
		// A store may carry a simple non-memory RHS (paper Fig. 3 line [6]
		// writes "*PtrEndText = PtrEndLoc + 1"); memory reads and calls
		// still go through a temp so each statement touches memory once.
		v, err := fn.storeRHS(rhs)
		if err != nil {
			return nil, err
		}
		deref := &cast.Unary{Op: cast.Deref, X: addr}
		deref.P = a.Pos()
		deref.SetType(ctypes.Elem(ctypes.Decay(addr.Type())))
		asn := &cast.Assign{Op: cast.PlainAssign, LHS: deref, RHS: v}
		asn.P = a.Pos()
		asn.SetType(v.Type())
		es := &cast.ExprStmt{X: asn}
		es.P = a.Pos()
		fn.emit(es)
		return v, nil
	}
}

// exprForEffect lowers an expression-statement.
func (fn *funcNorm) exprForEffect(e cast.Expr) error {
	switch x := e.(type) {
	case *cast.Assign:
		_, err := fn.lowerAssign(x)
		return err
	case *cast.IncDec:
		_, err := fn.lowerIncDec(x)
		return err
	case *cast.Call:
		c, err := fn.lowerCall(x)
		if err != nil {
			return err
		}
		call := c.(*cast.Call)
		if _, isVoid := call.Type().(ctypes.Void); isVoid {
			es := &cast.ExprStmt{X: call}
			es.P = x.Pos()
			fn.emit(es)
			return nil
		}
		// Non-void result discarded: still bind to a temp so the call is a
		// CoreC statement.
		t := fn.freshTemp(ctypes.Decay(call.Type()), x.Pos())
		fn.emitAssign(t, call, x.Pos())
		return nil
	default:
		// Pure expression statement: evaluate for errors (e.g. *p;) then
		// discard.
		_, err := fn.atom(e)
		return err
	}
}
