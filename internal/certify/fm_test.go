package certify

import (
	"testing"

	"repro/internal/linear"
)

// ge builds the constraint sum(terms) + k >= 0 where terms maps variable
// index to coefficient.
func ge(k int64, terms ...int64) linear.Constraint {
	return linear.NewGe(expr(k, terms...))
}

func eq(k int64, terms ...int64) linear.Constraint {
	return linear.NewEq(expr(k, terms...))
}

// expr builds sum(terms[i] * x_i) + k from positional coefficients.
func expr(k int64, terms ...int64) linear.Expr {
	e := linear.NewExpr()
	e.AddConst(k)
	for v, c := range terms {
		if c != 0 {
			e.AddTerm(v, c)
		}
	}
	return e
}

func TestUnsatBasics(t *testing.T) {
	cases := []struct {
		name  string
		sys   linear.System
		n     int
		unsat bool
	}{
		{"empty is sat", linear.System{}, 2, false},
		{"x >= 0 is sat", linear.System{ge(0, 1)}, 1, false},
		{"x >= 1 and -x >= 0", linear.System{ge(-1, 1), ge(0, -1)}, 1, true},
		{"x >= 0 and -x >= 0 (x = 0)", linear.System{ge(0, 1), ge(0, -1)}, 1, false},
		{"constant -1 >= 0", linear.System{ge(-1)}, 1, true},
		{"constant 0 >= 0", linear.System{ge(0)}, 1, false},
		{"x = 1 and x = 2", linear.System{eq(-1, 1), eq(-2, 1)}, 1, true},
		// x + y >= 3, -x >= -1, -y >= -1: needs the combination step.
		{"sum exceeds bounds", linear.System{ge(-3, 1, 1), ge(1, -1), ge(1, 0, -1)}, 2, true},
		// x + y >= 2 with x,y <= 1 is satisfiable at (1,1).
		{"sum meets bounds", linear.System{ge(-2, 1, 1), ge(1, -1), ge(1, 0, -1)}, 2, false},
		// Rational-only: 2x = 1 is rationally sat (x = 1/2) — Unsat is a
		// rational test, so it must answer "sat".
		{"2x = 1 rational point", linear.System{eq(-1, 2)}, 1, false},
		// Transitive chain: x >= y, y >= z, z >= x+1.
		{"strict cycle", linear.System{ge(0, 1, -1), ge(0, 0, 1, -1), ge(-1, -1, 0, 1)}, 3, true},
		{"lax cycle", linear.System{ge(0, 1, -1), ge(0, 0, 1, -1), ge(0, -1, 0, 1)}, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Unsat(tc.sys, tc.n); got != tc.unsat {
				t.Errorf("Unsat(%s) = %v, want %v", FormatSystem(tc.sys, nil), got, tc.unsat)
			}
		})
	}
}

func TestEntailsBasics(t *testing.T) {
	cases := []struct {
		name    string
		sys     linear.System
		c       linear.Constraint
		n       int
		entails bool
	}{
		{"x >= 1 entails x >= 0", linear.System{ge(-1, 1)}, ge(0, 1), 1, true},
		{"x >= 0 does not entail x >= 1", linear.System{ge(0, 1)}, ge(-1, 1), 1, false},
		{"x = 2 entails x >= 2", linear.System{eq(-2, 1)}, ge(-2, 1), 1, true},
		{"x = 2 entails 2x = 4", linear.System{eq(-2, 1)}, eq(-4, 2), 1, true},
		{"x >= 2 does not entail x = 2", linear.System{ge(-2, 1)}, eq(-2, 1), 1, false},
		{"unsat entails anything", linear.System{ge(-1)}, eq(-7, 1), 1, true},
		{"tautology always entailed", linear.System{}, ge(5), 1, true},
		// x >= y and y >= z entail x >= z.
		{"transitivity", linear.System{ge(0, 1, -1), ge(0, 0, 1, -1)}, ge(0, 1, 0, -1), 3, true},
		// x + y = 10 and x >= 6 entail y <= 4 (4 - y >= 0).
		{"linear combination", linear.System{eq(-10, 1, 1), ge(-6, 1)}, ge(4, 0, -1), 2, true},
		// Integer-only entailment must NOT hold rationally: 2x >= 1 entails
		// x >= 1 over the integers but not over the rationals (x = 1/2).
		// The checker is rational, so it must answer false.
		{"no integer tightening", linear.System{ge(-1, 2)}, ge(-1, 1), 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Entails(tc.sys, tc.c, tc.n); got != tc.entails {
				t.Errorf("Entails(%s |= ...) = %v, want %v",
					FormatSystem(tc.sys, nil), got, tc.entails)
			}
		})
	}
}

func TestEntailsSystemAndFirstUnentailed(t *testing.T) {
	sys := linear.System{ge(-1, 1), ge(0, 0, 1)} // x >= 1, y >= 0
	target := linear.System{ge(0, 1), ge(-1, 1, 1)}
	if !EntailsSystem(sys, target, 2) {
		t.Errorf("expected entailment of %s", FormatSystem(target, nil))
	}
	bad := linear.System{ge(0, 1), ge(-5, 0, 1)} // y >= 5 is not implied
	if EntailsSystem(sys, bad, 2) {
		t.Errorf("unexpected entailment of %s", FormatSystem(bad, nil))
	}
	c, notEntailed := FirstUnentailed(sys, bad, 2)
	if !notEntailed {
		t.Fatalf("FirstUnentailed found nothing")
	}
	if got := c.String(nil); got != bad[1].String(nil) {
		t.Errorf("FirstUnentailed = %s, want %s", got, bad[1].String(nil))
	}
}

func TestUnsatHighDimension(t *testing.T) {
	// A chain x0 >= x1 + 1 >= x2 + 2 >= ... with a closing constraint that
	// contradicts the accumulated slack; exercises repeated elimination.
	const n = 12
	var sys linear.System
	for i := 0; i+1 < n; i++ {
		e := linear.NewExpr()
		e.AddTerm(i, 1)
		e.AddTerm(i+1, -1)
		e.AddConst(-1) // x_i - x_{i+1} - 1 >= 0
		sys = append(sys, linear.NewGe(e))
	}
	closing := linear.NewExpr()
	closing.AddTerm(n-1, 1)
	closing.AddTerm(0, -1)
	// x_{n-1} - x_0 + (n-2) >= 0 contradicts the chain (which forces
	// x_0 - x_{n-1} >= n-1).
	closing.AddConst(int64(n - 2))
	sys = append(sys, linear.NewGe(closing))
	if !Unsat(sys, n) {
		t.Errorf("chain system should be unsat")
	}
	// Relaxing the closing constraint by 1 makes it satisfiable.
	sys[len(sys)-1].E.AddConst(1)
	if Unsat(sys, n) {
		t.Errorf("relaxed chain system should be sat")
	}
}
