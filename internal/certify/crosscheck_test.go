// Cross-checks of the Fourier–Motzkin engine against the Chernikova-based
// polyhedra package. The two implementations share no code (the layering
// analyzer in internal/lint enforces that certify never imports
// polyhedra), so agreement on random systems is strong evidence both are
// right — and any disagreement pinpoints a bug in one of the two decision
// procedures the analyzer's soundness rests on.
package certify_test

import (
	"math/rand"
	"testing"

	"repro/internal/certify"
	"repro/internal/linear"
	"repro/internal/polyhedra"
)

// randomSystem draws up to maxCons constraints over n variables with small
// coefficients; the same seed always yields the same corpus.
func randomSystem(rng *rand.Rand, n, maxCons int) linear.System {
	var sys linear.System
	for i, k := 0, rng.Intn(maxCons+1); i < k; i++ {
		e := linear.NewExpr()
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				e.AddTerm(v, int64(rng.Intn(7)-3))
			}
		}
		e.AddConst(int64(rng.Intn(21) - 10))
		if rng.Intn(4) == 0 {
			sys = append(sys, linear.NewEq(e))
		} else {
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

func randomConstraint(rng *rand.Rand, n int) linear.Constraint {
	s := randomSystem(rng, n, 1)
	if len(s) == 1 {
		return s[0]
	}
	return linear.NewGe(linear.ConstExpr(0))
}

func TestUnsatAgreesWithPolyhedra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(4)
		sys := randomSystem(rng, n, 6)
		fm := certify.Unsat(sys, n)
		ch := polyhedra.FromSystem(sys, n).IsEmpty()
		if fm != ch {
			t.Fatalf("case %d: Unsat=%v, polyhedra empty=%v for %s",
				i, fm, ch, certify.FormatSystem(sys, nil))
		}
	}
}

func TestEntailsAgreesWithPolyhedra(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(4)
		sys := randomSystem(rng, n, 5)
		c := randomConstraint(rng, n)
		fm := certify.Entails(sys, c, n)
		ch := polyhedra.FromSystem(sys, n).Entails(c)
		if fm != ch {
			t.Fatalf("case %d: Entails=%v, polyhedra=%v for %s |= %s",
				i, fm, ch, certify.FormatSystem(sys, nil), c.String(nil))
		}
	}
}

func TestEntailsSystemAgreesWithIncludes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		q := randomSystem(rng, n, 4)
		p := randomSystem(rng, n, 4)
		// q |= p  iff  points(q) ⊆ points(p)  iff  poly(p).Includes(poly(q)).
		fm := certify.EntailsSystem(q, p, n)
		ch := polyhedra.FromSystem(p, n).Includes(polyhedra.FromSystem(q, n))
		if fm != ch {
			t.Fatalf("case %d: EntailsSystem=%v, Includes=%v\n  q: %s\n  p: %s",
				i, fm, ch, certify.FormatSystem(q, nil), certify.FormatSystem(p, nil))
		}
	}
}

// decodeFuzzSystem deterministically maps a byte string to a small system
// plus a candidate constraint (3 variables, coefficients in [-3, 3]).
func decodeFuzzSystem(data []byte) (linear.System, linear.Constraint) {
	const n = 3
	next := func() (int64, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return int64(b%15) - 7, true
	}
	readCons := func() (linear.Constraint, bool) {
		e := linear.NewExpr()
		any := false
		for v := 0; v < n; v++ {
			k, ok := next()
			if !ok {
				break
			}
			any = true
			e.AddTerm(v, k%4)
		}
		k, ok := next()
		if ok {
			e.AddConst(k)
		}
		if !any && !ok {
			return linear.Constraint{}, false
		}
		rel, ok := next()
		if ok && rel%2 == 0 {
			return linear.NewEq(e), true
		}
		return linear.NewGe(e), true
	}
	var sys linear.System
	for len(sys) < 6 {
		c, ok := readCons()
		if !ok {
			break
		}
		sys = append(sys, c)
	}
	if len(sys) == 0 {
		return nil, linear.NewGe(linear.ConstExpr(0))
	}
	c := sys[len(sys)-1]
	return sys[:len(sys)-1], c
}

// FuzzEntails cross-checks the Fourier–Motzkin engine against the
// Chernikova-based polyhedra on arbitrary byte-derived systems. Run with
// `go test -fuzz=FuzzEntails ./internal/certify` to search beyond the seed
// corpus (testdata/fuzz/FuzzEntails).
func FuzzEntails(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{7, 7, 7, 0, 0, 14, 3, 9, 1, 12, 6})
	f.Add([]byte{0, 15, 30, 45, 60, 75, 90, 105, 120, 135})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return // keep eliminations small
		}
		const n = 3
		sys, c := decodeFuzzSystem(data)
		fmUnsat := certify.Unsat(sys, n)
		p := polyhedra.FromSystem(sys, n)
		if chUnsat := p.IsEmpty(); fmUnsat != chUnsat {
			t.Fatalf("Unsat=%v, polyhedra empty=%v for %s",
				fmUnsat, chUnsat, certify.FormatSystem(sys, nil))
		}
		fmEnt := certify.Entails(sys, c, n)
		if chEnt := p.Entails(c); fmEnt != chEnt {
			t.Fatalf("Entails=%v, polyhedra=%v for %s |= %s",
				fmEnt, chEnt, certify.FormatSystem(sys, nil), c.String(nil))
		}
	})
}
