// The int64 fast path of the Fourier–Motzkin engine: an exact twin of the
// big.Int implementation in fm.go operating on machine integers with
// checked arithmetic. Every operation that could wrap panics with the
// fmOverflow sentinel, which the boundary wrappers recover to fall back to
// the arbitrary-precision engine — the same promote-on-overflow discipline
// as the numeric substrate kernel (DESIGN.md §6), applied to the checker.
// Both engines implement the same decision procedure (same pivots, same
// subsumption, same maxRows cap), so which one answers is unobservable.
package certify

import (
	"math"

	"repro/internal/linear"
)

// fmOverflow is the panic sentinel raised by checked int64 arithmetic.
type fmOverflow struct{}

func iAdd(a, b int64) int64 {
	r := a + b
	if (b > 0 && r < a) || (b < 0 && r > a) {
		panic(fmOverflow{})
	}
	return r
}

func iMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		panic(fmOverflow{})
	}
	r := a * b
	if r/b != a {
		panic(fmOverflow{})
	}
	return r
}

func iAbs(a int64) int64 {
	if a == math.MinInt64 {
		panic(fmOverflow{})
	}
	if a < 0 {
		return -a
	}
	return a
}

// igcd returns gcd(a, b) for non-negative inputs (gcd(x, 0) = x).
func igcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// irow mirrors row over int64 coefficients; see fm.go for field semantics.
type irow struct {
	c      []int64
	k      int64
	strict bool
	nz     []int32
	key    string
}

func newIRow(n int) *irow {
	return &irow{c: make([]int64, n)}
}

// iRowFromExpr builds expr + 0 >= 0 in dimension n; it panics fmOverflow
// when a coefficient does not fit in int64 (the caller falls back).
func iRowFromExpr(e linear.Expr, n int, negate, strict bool) *irow {
	r := newIRow(n)
	for _, v := range e.Vars() {
		c := e.Coef(v)
		if !c.IsInt64() {
			panic(fmOverflow{})
		}
		cv := c.Int64()
		if negate {
			if cv == math.MinInt64 {
				panic(fmOverflow{})
			}
			cv = -cv
		}
		r.c[v] = cv
	}
	k := e.Eval(nil)
	if !k.IsInt64() {
		panic(fmOverflow{})
	}
	r.k = k.Int64()
	if negate {
		if r.k == math.MinInt64 {
			panic(fmOverflow{})
		}
		r.k = -r.k
	}
	r.strict = strict
	r.reduce()
	return r
}

func (r *irow) isConst() bool { return len(r.nz) == 0 }

func (r *irow) constFails() bool {
	if r.k < 0 {
		return true
	}
	return r.strict && r.k == 0
}

// reduce rebuilds nz and divides the row by the gcd of its entries.
func (r *irow) reduce() {
	r.nz = r.nz[:0]
	var g int64
	for i, c := range r.c {
		if c != 0 {
			r.nz = append(r.nz, int32(i))
			if g != 1 {
				g = igcd(g, iAbs(c))
			}
		}
	}
	if r.k != 0 && g != 1 && g != 0 {
		g = igcd(g, iAbs(r.k))
	}
	if g == 0 || g == 1 {
		return
	}
	for _, i := range r.nz {
		r.c[i] /= g
	}
	r.k /= g
}

// iElimVar mirrors elimVar: eliminate v from r using equality row e.
func iElimVar(r, e *irow, v int) *irow {
	m := r.c[v]
	if m == 0 {
		return r
	}
	a := e.c[v]
	ra := iAbs(a)
	t := iAbs(m)
	if (a > 0) == (m > 0) {
		t = -t
	}
	nr := newIRow(len(r.c))
	for _, i := range r.nz {
		nr.c[i] = iMul(ra, r.c[i])
	}
	for _, i := range e.nz {
		nr.c[i] = iAdd(nr.c[i], iMul(t, e.c[i]))
	}
	nr.k = iAdd(iMul(ra, r.k), iMul(t, e.k))
	nr.strict = r.strict
	nr.reduce()
	return nr
}

// dedupKey mirrors row.dedupKey with a zigzag-varint rendering.
func (r *irow) dedupKey() string {
	if r.key != "" {
		return r.key
	}
	buf := make([]byte, 0, 6*len(r.nz)+2)
	for _, i := range r.nz {
		buf = appendUvarint(buf, uint64(i))
		c := r.c[i]
		buf = appendUvarint(buf, uint64(c<<1)^uint64(c>>63)) // zigzag
	}
	if r.strict {
		buf = append(buf, '>')
	}
	r.key = string(buf)
	return r.key
}

// iSift mirrors sift: drop and decide constant rows, subsume by
// coefficient vector and strictness keeping the tightest constant.
func iSift(in []*irow) ([]*irow, bool) {
	seen := make(map[string]int, len(in))
	out := make([]*irow, 0, len(in))
	for _, r := range in {
		if r.isConst() {
			if r.constFails() {
				return nil, true
			}
			continue
		}
		key := r.dedupKey()
		if j, ok := seen[key]; ok {
			if out[j].k > r.k {
				out[j] = r // r is tighter (smaller constant)
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, r)
	}
	return out, false
}

// iUnsatRows mirrors unsatRows over int64 rows: same pivot heuristic, same
// maxRows cap, identical answers.
func iUnsatRows(rows []*irow, n int) bool {
	rows, unsat := iSift(rows)
	if unsat {
		return true
	}
	posCount := make([]int, n)
	negCount := make([]int, n)
	for {
		if len(rows) == 0 {
			return false
		}
		for v := range posCount {
			posCount[v], negCount[v] = 0, 0
		}
		for _, r := range rows {
			for _, v := range r.nz {
				if r.c[v] > 0 {
					posCount[v]++
				} else {
					negCount[v]++
				}
			}
		}
		best, bestCost := -1, 0
		for v := 0; v < n; v++ {
			if posCount[v] == 0 && negCount[v] == 0 {
				continue
			}
			cost := posCount[v] * negCount[v]
			if best == -1 || cost < bestCost {
				best, bestCost = v, cost
			}
		}
		if best == -1 {
			return false
		}
		v := best
		var pos, neg, rest []*irow
		for _, r := range rows {
			switch {
			case r.c[v] > 0:
				pos = append(pos, r)
			case r.c[v] < 0:
				neg = append(neg, r)
			default:
				rest = append(rest, r)
			}
		}
		if len(pos) == 0 || len(neg) == 0 {
			rows = rest
			continue
		}
		if len(rest)+len(pos)*len(neg) > maxRows {
			return false
		}
		out := rest
		for _, p := range pos {
			for _, q := range neg {
				a := iAbs(q.c[v]) // = -q.c[v] > 0
				b := p.c[v]       // > 0
				nr := newIRow(n)
				for _, i := range p.nz {
					nr.c[i] = iMul(a, p.c[i])
				}
				for _, i := range q.nz {
					nr.c[i] = iAdd(nr.c[i], iMul(b, q.c[i]))
				}
				nr.k = iAdd(iMul(a, p.k), iMul(b, q.k))
				nr.strict = p.strict || q.strict
				nr.reduce()
				out = append(out, nr)
			}
		}
		rows, unsat = iSift(out)
		if unsat {
			return true
		}
	}
}

type iEqSub struct {
	e *irow
	v int
}

// iprep mirrors the big-engine premise preparation.
type iprep struct {
	n     int
	rows  []*irow
	subs  []iEqSub
	unsat bool
	// minK is the subsumption index over rows: the tightest (smallest)
	// constant per non-strict coefficient key, built on first use. A
	// target row with the same coefficients and a constant >= the indexed
	// one is entailed outright — the common case for consecution
	// obligations, where the successor invariant repeats premise
	// constraints verbatim — skipping Fourier–Motzkin entirely.
	minK map[string]int64
}

// subsumes reports whether a non-strict target row is directly implied by
// a single premise row with identical coefficients: c·x + kp >= 0 entails
// c·x + kt >= 0 whenever kt >= kp. A false answer decides nothing.
func (p *iprep) subsumes(rt *irow) bool {
	if p.minK == nil {
		p.minK = make(map[string]int64, len(p.rows))
		for _, r := range p.rows {
			if r.strict {
				continue
			}
			k := r.dedupKey()
			if old, ok := p.minK[k]; !ok || r.k < old {
				p.minK[k] = r.k
			}
		}
	}
	kp, ok := p.minK[rt.dedupKey()]
	return ok && kp <= rt.k
}

// negated returns the row of the negated hyperplane (-c, -k), non-strict.
func (r *irow) negated() *irow {
	nr := newIRow(len(r.c))
	for _, i := range r.nz {
		nr.c[i] = iNeg(r.c[i])
	}
	nr.k = iNeg(r.k)
	nr.reduce()
	return nr
}

func iNeg(a int64) int64 {
	if a == math.MinInt64 {
		panic(fmOverflow{})
	}
	return -a
}

// iPrepSystem mirrors the big engine's equality elimination; it panics
// fmOverflow when the int64 range is exceeded.
func iPrepSystem(sys linear.System, n int) *iprep {
	p := &iprep{n: n}
	var eqs, ges []*irow
	for _, c := range sys {
		r := iRowFromExpr(c.E, n, false, false)
		if c.Rel == linear.Eq {
			eqs = append(eqs, r)
		} else {
			ges = append(ges, r)
		}
	}
	for len(eqs) > 0 {
		kept := eqs[:0]
		for _, e := range eqs {
			if e.isConst() {
				if e.k != 0 {
					p.unsat = true
					return p
				}
				continue
			}
			kept = append(kept, e)
		}
		eqs = kept
		if len(eqs) == 0 {
			break
		}
		bi, bv := -1, -1
		var bc int64
		for i, e := range eqs {
			for _, v := range e.nz {
				a := iAbs(e.c[v])
				if bi == -1 || a < bc {
					bi, bv = i, int(v)
					bc = a
				}
			}
			if bc == 1 {
				break
			}
		}
		e := eqs[bi]
		eqs = append(eqs[:bi], eqs[bi+1:]...)
		for i, r := range eqs {
			eqs[i] = iElimVar(r, e, bv)
		}
		for i, r := range ges {
			ges[i] = iElimVar(r, e, bv)
		}
		p.subs = append(p.subs, iEqSub{e, bv})
	}
	p.rows, p.unsat = iSift(ges)
	return p
}

// entails mirrors bprep.entails. The fmOverflow panic propagates to the
// caller (the prep wrapper), which demotes to the big engine.
func (p *iprep) entails(c linear.Constraint) bool {
	if c.IsTautology() {
		return true
	}
	if p.unsat {
		return true
	}
	check := func(neg *irow) bool {
		for _, s := range p.subs {
			neg = iElimVar(neg, s.e, s.v)
		}
		if neg.isConst() {
			if neg.constFails() {
				return true
			}
			return iUnsatRows(p.rows, p.n)
		}
		rows := make([]*irow, len(p.rows)+1)
		copy(rows, p.rows)
		rows[len(p.rows)] = neg
		return iUnsatRows(rows, p.n)
	}
	// Subsumption shortcut: substitute the target itself and look it up in
	// the premise index; a hit proves entailment without elimination. A
	// miss falls through to the exact check.
	rt := iRowFromExpr(c.E, p.n, false, false)
	for _, s := range p.subs {
		rt = iElimVar(rt, s.e, s.v)
	}
	switch c.Rel {
	case linear.Eq:
		if rt.isConst() {
			if rt.k == 0 {
				return true
			}
		} else if p.subsumes(rt) && p.subsumes(rt.negated()) {
			return true
		}
		return check(iRowFromExpr(c.E, p.n, true, true)) &&
			check(iRowFromExpr(c.E, p.n, false, true))
	default:
		if rt.isConst() {
			if !rt.constFails() {
				return true
			}
		} else if p.subsumes(rt) {
			return true
		}
		return check(iRowFromExpr(c.E, p.n, true, true))
	}
}
