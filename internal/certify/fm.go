// Package certify validates the results of the abstract-interpretation
// engine a posteriori. For every check the analysis discharges it exports a
// certificate — the per-program-point invariant systems of the run that
// closed the check — and re-proves the three obligations of an inductive
// invariant (initiation, consecution along every CFG edge, and the assert
// implication) with a small self-contained Fourier–Motzkin elimination
// engine over exact integer arithmetic. The checker never calls the
// Chernikova-based polyhedra package (or any abstract domain), so a bug in
// the fixpoint engine or in the polyhedra library cannot self-certify: the
// trusted base is this package, the IP program representation, and big.Int.
//
// For reported violations the package replays the analysis counter-example
// through the deterministic directed mode of the concrete IP interpreter
// and classifies each message "witnessed" (a concrete trace reaches the
// failing assert) or "potential" (possibly imprecision).
package certify

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/linear"
)

// row is one linear constraint sum(c_i * x_i) + k >= 0 (or > 0 when
// strict) over integer coefficients. All inputs are integral, and both
// Gaussian substitution and Fourier–Motzkin combination use cross-
// multiplied integer multipliers, so the engine never needs rational
// arithmetic; rows are kept gcd-reduced to bound coefficient growth.
// Scaling a constraint by a positive rational does not change its
// solution set, so the reduction is exact over the rationals.
type row struct {
	c      []big.Int
	k      big.Int
	strict bool
	// nz lists the indices of nonzero coefficients in increasing order;
	// real constraints touch a handful of the program's variables, so the
	// engine iterates nz instead of scanning full columns. reduce()
	// (re)builds it and every constructor ends with reduce().
	nz []int
	// key caches the canonical dedup key (see sift). Rows are immutable
	// after construction apart from this idempotent cache, which keeps
	// sharing a base row set across sequential unsatRows calls safe.
	key string
}

func newRow(n int) *row {
	return &row{c: make([]big.Int, n)}
}

var intOne = big.NewInt(1)

// rowFromExpr builds expr + 0 >= 0 in dimension n, dropping nothing:
// variables beyond n are a caller bug and panic via index.
func rowFromExpr(e linear.Expr, n int, negate, strict bool) *row {
	r := newRow(n)
	for _, v := range e.Vars() {
		r.c[v].Set(e.Coef(v))
		if negate {
			r.c[v].Neg(&r.c[v])
		}
	}
	r.k.Set(e.Eval(nil)) // constant term (Eval of zero point)
	if negate {
		r.k.Neg(&r.k)
	}
	r.strict = strict
	r.reduce()
	return r
}

// isConst reports whether the row has no variable terms.
func (r *row) isConst() bool { return len(r.nz) == 0 }

// constFails reports whether a constant row is violated (k < 0, or k == 0
// for a strict row).
func (r *row) constFails() bool {
	if r.k.Sign() < 0 {
		return true
	}
	return r.strict && r.k.Sign() == 0
}

// reduce rebuilds the nonzero index list and divides the row by the gcd
// of its entries (coefficients and constant), the canonical
// representative of its positive-scaling class.
func (r *row) reduce() {
	r.nz = r.nz[:0]
	var g, a big.Int
	acc := func(x *big.Int) {
		if x.Sign() == 0 || g.Cmp(intOne) == 0 {
			return
		}
		a.Abs(x)
		if g.Sign() == 0 {
			g.Set(&a)
		} else {
			g.GCD(nil, nil, &g, &a)
		}
	}
	for i := range r.c {
		if r.c[i].Sign() != 0 {
			r.nz = append(r.nz, i)
			acc(&r.c[i])
		}
	}
	acc(&r.k)
	if g.Sign() == 0 || g.Cmp(intOne) == 0 {
		return
	}
	for _, i := range r.nz {
		r.c[i].Quo(&r.c[i], &g)
	}
	if r.k.Sign() != 0 {
		r.k.Quo(&r.k, &g)
	}
}

// elimVar returns r with variable v eliminated using the equality row e
// (e·x + e.k == 0, e.c[v] != 0): the combination |a|·r − sign(a)·m·e with
// a = e.c[v] and m = r.c[v]. The multiplier of r is positive, so the
// relation and strictness are preserved, and the result is exactly the
// substitution of e's solution for v scaled by |a| — sound and complete
// over the rationals. r is never mutated; rows with m == 0 are returned
// unchanged.
func elimVar(r, e *row, v int) *row {
	m := &r.c[v]
	if m.Sign() == 0 {
		return r
	}
	a := &e.c[v]
	var ra, t, tmp big.Int
	ra.Abs(a)
	if a.Sign() > 0 {
		t.Neg(m)
	} else {
		t.Set(m)
	}
	nr := newRow(len(r.c))
	for _, i := range r.nz {
		nr.c[i].Mul(&ra, &r.c[i])
	}
	for _, i := range e.nz {
		tmp.Mul(&t, &e.c[i])
		nr.c[i].Add(&nr.c[i], &tmp)
	}
	nr.k.Mul(&ra, &r.k)
	tmp.Mul(&t, &e.k)
	nr.k.Add(&nr.k, &tmp)
	nr.strict = r.strict
	nr.reduce()
	return nr
}

// sift drops constant rows (deciding them eagerly) and deduplicates the
// rest by coefficient vector and strictness, keeping only the tightest
// bound per direction: for identical coefficients and relation,
// c·x + k2 >= 0 implies c·x + k1 >= 0 whenever k1 >= k2, so the weaker
// rows are redundant. Input rows are never mutated.
func sift(in []*row) ([]*row, bool) {
	seen := make(map[string]int, len(in))
	out := make([]*row, 0, len(in))
	for _, r := range in {
		if r.isConst() {
			if r.constFails() {
				return nil, true
			}
			continue
		}
		key := r.dedupKey()
		if j, ok := seen[key]; ok {
			switch out[j].k.Cmp(&r.k) {
			case 1:
				out[j] = r // r is tighter (smaller constant)
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, r)
	}
	return out, false
}

// dedupKey returns (and caches) the canonical key of the row's
// positive-scaling class: the gcd-reduced coefficients rendered in a
// compact binary form (sparse index, sign, raw words) plus the
// strictness marker. The constant is deliberately excluded — sift uses
// coefficient identity to subsume weaker bounds.
func (r *row) dedupKey() string {
	if r.key != "" {
		return r.key
	}
	buf := make([]byte, 0, 16*len(r.nz)+2)
	var w big.Int
	for _, i := range r.nz {
		buf = appendUvarint(buf, uint64(i))
		c := &r.c[i]
		if c.Sign() < 0 {
			buf = append(buf, '-')
		} else {
			buf = append(buf, '+')
		}
		w.Abs(c)
		mag := w.Bytes()
		buf = appendUvarint(buf, uint64(len(mag)))
		buf = append(buf, mag...)
	}
	if r.strict {
		buf = append(buf, '>')
	}
	r.key = string(buf)
	return r.key
}

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// maxRows bounds the working set so a pathological elimination cannot run
// away; hitting it makes the checker answer "not proven" (sound for a
// verifier: a true obligation is reported unverified, never the reverse).
const maxRows = 250000

// unsatRows decides, by Fourier–Motzkin elimination, whether the
// conjunction of inequality rows has no rational solution. It is exact:
// true is returned iff the system is infeasible over the rationals (and
// therefore over the integers). The only incompleteness is the maxRows
// cap, which returns false ("could not prove unsat"). Input rows are
// never mutated, so callers may share a base set across calls.
func unsatRows(rows []*row, n int) bool {
	rows, unsat := sift(rows)
	if unsat {
		return true
	}
	posCount := make([]int, n)
	negCount := make([]int, n)
	var a, tmp big.Int
	for {
		if len(rows) == 0 {
			return false // feasible (all constraints discharged)
		}
		// Pick the variable minimizing |pos|*|neg| products; count column
		// signs by iterating each row's nonzero list once.
		for v := range posCount {
			posCount[v], negCount[v] = 0, 0
		}
		for _, r := range rows {
			for _, v := range r.nz {
				if r.c[v].Sign() > 0 {
					posCount[v]++
				} else {
					negCount[v]++
				}
			}
		}
		best, bestCost := -1, 0
		for v := 0; v < n; v++ {
			if posCount[v] == 0 && negCount[v] == 0 {
				continue
			}
			cost := posCount[v] * negCount[v]
			if best == -1 || cost < bestCost {
				best, bestCost = v, cost
			}
		}
		if best == -1 {
			// No variable left: rows are constant (handled by sift) — the
			// system is feasible.
			return false
		}
		v := best
		var pos, neg, rest []*row
		for _, r := range rows {
			switch r.c[v].Sign() {
			case 1:
				pos = append(pos, r)
			case -1:
				neg = append(neg, r)
			default:
				rest = append(rest, r)
			}
		}
		if len(pos) == 0 || len(neg) == 0 {
			// v is unbounded on one side: every row mentioning it is
			// satisfiable independently; drop them.
			rows = rest
			continue
		}
		if len(rest)+len(pos)*len(neg) > maxRows {
			return false // give up: report unproven
		}
		out := rest
		for _, p := range pos {
			for _, q := range neg {
				// p: c_v > 0 gives a lower bound, q: c_v < 0 an upper bound.
				// Combine with positive integer multipliers to cancel v:
				//   (-q.c[v]) * p  +  (p.c[v]) * q
				a.Neg(&q.c[v]) // > 0
				b := &p.c[v]   // > 0
				nr := newRow(n)
				for _, i := range p.nz {
					nr.c[i].Mul(&a, &p.c[i])
				}
				for _, i := range q.nz {
					tmp.Mul(b, &q.c[i])
					nr.c[i].Add(&nr.c[i], &tmp)
				}
				nr.k.Mul(&a, &p.k)
				tmp.Mul(b, &q.k)
				nr.k.Add(&nr.k, &tmp)
				nr.strict = p.strict || q.strict
				nr.reduce()
				out = append(out, nr)
			}
		}
		rows, unsat = sift(out)
		if unsat {
			return true
		}
	}
}

// eqSub records one Gaussian substitution step: equality row e was used to
// eliminate variable v from every other row. Rows added later (negated
// target constraints) must replay the steps in order.
type eqSub struct {
	e *row
	v int
}

// prep is a premise system prepared for repeated entailment checks: every
// equality has been eliminated by exact Gaussian substitution (each step
// removes one variable, so the inequality count never grows), and the
// remaining inequality rows are sifted. Preparing once and sharing the
// reduced base across all target constraints is what makes batched
// certificate checking cheap — the per-target work is one substituted row
// plus a Fourier–Motzkin run over an equality-free system.
type bprep struct {
	n     int
	rows  []*row
	subs  []eqSub
	unsat bool // the premise itself was decided infeasible during prep
}

// bPrepSystem converts sys to integer rows and eliminates its equalities.
// Substitution is exact over the rationals: S ∧ {a·v + rest = 0} is
// satisfiable iff S[v := −rest/a] is, so feasibility and entailment
// answers are unchanged.
func bPrepSystem(sys linear.System, n int) *bprep {
	p := &bprep{n: n}
	var eqs, ges []*row
	for _, c := range sys {
		r := rowFromExpr(c.E, n, false, false)
		if c.Rel == linear.Eq {
			eqs = append(eqs, r)
		} else {
			ges = append(ges, r)
		}
	}
	var a big.Int
	for len(eqs) > 0 {
		// Decide constant equalities eagerly and drop trivial ones.
		kept := eqs[:0]
		for _, e := range eqs {
			if e.isConst() {
				if e.k.Sign() != 0 {
					p.unsat = true
					return p
				}
				continue
			}
			kept = append(kept, e)
		}
		eqs = kept
		if len(eqs) == 0 {
			break
		}
		// Pick the (equality, variable) pivot with the smallest |coefficient|
		// to bound growth; a ±1 pivot substitutes without scaling.
		bi, bv := -1, -1
		var bc *big.Int
		for i, e := range eqs {
			for _, v := range e.nz {
				a.Abs(&e.c[v])
				if bc == nil || a.Cmp(bc) < 0 {
					bi, bv = i, v
					bc = new(big.Int).Set(&a)
				}
			}
			if bc != nil && bc.Cmp(intOne) == 0 {
				break
			}
		}
		e := eqs[bi]
		eqs = append(eqs[:bi], eqs[bi+1:]...)
		for i, r := range eqs {
			eqs[i] = elimVar(r, e, bv)
		}
		for i, r := range ges {
			ges[i] = elimVar(r, e, bv)
		}
		p.subs = append(p.subs, eqSub{e, bv})
	}
	p.rows, p.unsat = sift(ges)
	return p
}

// entails reports whether the prepared premise entails c over the
// rationals (see Entails for the soundness argument).
func (p *bprep) entails(c linear.Constraint) bool {
	if c.IsTautology() {
		return true
	}
	if p.unsat {
		return true
	}
	check := func(neg *row) bool {
		for _, s := range p.subs {
			neg = elimVar(neg, s.e, s.v)
		}
		if neg.isConst() {
			if neg.constFails() {
				return true
			}
			// The negation holds identically under the substitutions: the
			// conjunction is unsat only if the premise itself is.
			return unsatRows(p.rows, p.n)
		}
		rows := make([]*row, len(p.rows)+1)
		copy(rows, p.rows)
		rows[len(p.rows)] = neg
		return unsatRows(rows, p.n)
	}
	switch c.Rel {
	case linear.Eq:
		// sys |= e == 0  iff  sys ∧ e > 0 unsat  and  sys ∧ -e > 0 unsat.
		return check(rowFromExpr(c.E, p.n, true, true)) &&
			check(rowFromExpr(c.E, p.n, false, true))
	default:
		// sys |= e >= 0  iff  sys ∧ -e > 0 unsat.
		return check(rowFromExpr(c.E, p.n, true, true))
	}
}

// prep is a premise prepared for repeated entailment checks. It starts on
// the int64 engine and demotes itself to the arbitrary-precision engine
// the first time checked arithmetic overflows (keeping the original
// system around for the rebuild); answers are identical on both.
type prep struct {
	sys  linear.System
	n    int
	fast *iprep
	slow *bprep
}

func prepSystem(sys linear.System, n int) *prep {
	p := &prep{sys: sys, n: n}
	p.fast = tryIPrep(sys, n)
	return p
}

func (p *prep) entails(c linear.Constraint) bool {
	if p.fast != nil {
		if r, ok := tryIEntails(p.fast, c); ok {
			return r
		}
		p.fast = nil
	}
	if p.slow == nil {
		p.slow = bPrepSystem(p.sys, p.n)
	}
	return p.slow.entails(c)
}

// tryIPrep runs the int64 premise preparation, reporting nil when it
// overflowed machine range.
func tryIPrep(sys linear.System, n int) (p *iprep) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fmOverflow); !ok {
				panic(r)
			}
			p = nil
		}
	}()
	return iPrepSystem(sys, n)
}

// tryIEntails runs one entailment on the int64 engine; ok is false when
// the check overflowed and must be redone on the big engine.
func tryIEntails(p *iprep, c linear.Constraint) (res, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok2 := r.(fmOverflow); !ok2 {
				panic(r)
			}
			res, ok = false, false
		}
	}()
	return p.entails(c), true
}

// tryIUnsat decides Unsat on the int64 engine; ok is false on overflow.
func tryIUnsat(sys linear.System, n int) (res, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok2 := r.(fmOverflow); !ok2 {
				panic(r)
			}
			res, ok = false, false
		}
	}()
	p := iPrepSystem(sys, n)
	if p.unsat {
		return true, true
	}
	return iUnsatRows(p.rows, p.n), true
}

// Unsat reports whether the conjunction of constraints has no rational
// solution (which implies it has no integer solution either).
func Unsat(sys linear.System, n int) bool {
	if r, ok := tryIUnsat(sys, n); ok {
		return r
	}
	p := bPrepSystem(sys, n)
	if p.unsat {
		return true
	}
	return unsatRows(p.rows, p.n)
}

// Sat reports whether the conjunction has a rational solution. It is the
// exact complement of Unsat except at the maxRows cap, where both report
// the unproven direction.
func Sat(sys linear.System, n int) bool { return !Unsat(sys, n) }

// Entails reports whether every rational point satisfying sys satisfies c:
// sys ∧ ¬c is infeasible, with the negation taken over the rationals
// (e >= 0 negates to the strict -e > 0, e == 0 to either strict side).
// Entailment over the rationals implies entailment over the integers, so a
// "true" answer is sound for the integer IP semantics.
func Entails(sys linear.System, c linear.Constraint, n int) bool {
	return prepSystem(sys, n).entails(c)
}

// EntailsSystem reports whether sys entails every constraint of target.
// The premise is prepared once and shared across the targets.
func EntailsSystem(sys, target linear.System, n int) bool {
	p := prepSystem(sys, n)
	for _, c := range target {
		if !p.entails(c) {
			return false
		}
	}
	return true
}

// FirstUnentailed returns the first constraint of target that sys does not
// entail, for error reporting; ok is false when every constraint is
// entailed.
func FirstUnentailed(sys, target linear.System, n int) (linear.Constraint, bool) {
	p := prepSystem(sys, n)
	for _, c := range target {
		if !p.entails(c) {
			return c, true
		}
	}
	return linear.Constraint{}, false
}

// maxVar returns the largest variable index mentioned by the system.
func maxVar(sys linear.System) int {
	m := -1
	for _, c := range sys {
		for _, v := range c.E.Vars() {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// FormatSystem renders a system with positional variable names, a debugging
// helper for verification failures.
func FormatSystem(sys linear.System, names []string) string {
	sp := linear.NewSpace()
	for _, n := range names {
		sp.Var(n)
	}
	need := maxVar(sys)
	for sp.Dim() <= need {
		sp.Var(fmt.Sprintf("v%d", sp.Dim()))
	}
	return sys.String(sp)
}

// sortedNames returns the keys of m in sorted order (tiny helper shared by
// the replay code).
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
