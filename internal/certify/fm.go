// Package certify validates the results of the abstract-interpretation
// engine a posteriori. For every check the analysis discharges it exports a
// certificate — the per-program-point invariant systems of the run that
// closed the check — and re-proves the three obligations of an inductive
// invariant (initiation, consecution along every CFG edge, and the assert
// implication) with a small self-contained Fourier–Motzkin elimination
// engine over exact rational arithmetic. The checker never calls the
// Chernikova-based polyhedra package (or any abstract domain), so a bug in
// the fixpoint engine or in the polyhedra library cannot self-certify: the
// trusted base is this package, the IP program representation, and big.Rat.
//
// For reported violations the package replays the analysis counter-example
// through the deterministic directed mode of the concrete IP interpreter
// and classifies each message "witnessed" (a concrete trace reaches the
// failing assert) or "potential" (possibly imprecision).
package certify

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/linear"
)

// row is one linear inequality sum(c_i * x_i) + k >= 0 (or > 0 when
// strict) over rational coefficients. Equalities are split into opposite
// inequalities before solving.
type row struct {
	c      []*big.Rat
	k      *big.Rat
	strict bool
}

func newRow(n int) *row {
	r := &row{c: make([]*big.Rat, n), k: new(big.Rat)}
	for i := range r.c {
		r.c[i] = new(big.Rat)
	}
	return r
}

// rowFromExpr builds expr + 0 >= 0 in dimension n, dropping nothing:
// variables beyond n are a caller bug and panic via index.
func rowFromExpr(e linear.Expr, n int, negate, strict bool) *row {
	r := newRow(n)
	for _, v := range e.Vars() {
		r.c[v].SetInt(e.Coef(v))
		if negate {
			r.c[v].Neg(r.c[v])
		}
	}
	k := new(big.Int).Set(e.Eval(nil)) // constant term (Eval of zero point)
	r.k.SetInt(k)
	if negate {
		r.k.Neg(r.k)
	}
	r.strict = strict
	return r
}

// rowsFromSystem converts a conjunction of constraints to inequality rows.
func rowsFromSystem(sys linear.System, n int) []*row {
	var rows []*row
	for _, c := range sys {
		switch c.Rel {
		case linear.Eq:
			rows = append(rows, rowFromExpr(c.E, n, false, false))
			rows = append(rows, rowFromExpr(c.E, n, true, false))
		default:
			rows = append(rows, rowFromExpr(c.E, n, false, false))
		}
	}
	return rows
}

// isConst reports whether the row has no variable terms.
func (r *row) isConst() bool {
	for _, c := range r.c {
		if c.Sign() != 0 {
			return false
		}
	}
	return true
}

// constFails reports whether a constant row is violated (k < 0, or k == 0
// for a strict row).
func (r *row) constFails() bool {
	if r.k.Sign() < 0 {
		return true
	}
	return r.strict && r.k.Sign() == 0
}

// normalize scales the row so its first nonzero coefficient (or, for
// constant rows, the constant) has absolute value 1; used for dedup.
func (r *row) normalize() {
	var lead *big.Rat
	for _, c := range r.c {
		if c.Sign() != 0 {
			lead = c
			break
		}
	}
	if lead == nil {
		if r.k.Sign() == 0 {
			return
		}
		lead = r.k
	}
	inv := new(big.Rat).Abs(lead)
	inv.Inv(inv)
	for _, c := range r.c {
		c.Mul(c, inv)
	}
	r.k.Mul(r.k, inv)
}

func (r *row) key() string {
	r.normalize()
	s := ""
	for _, c := range r.c {
		s += c.RatString() + ","
	}
	s += r.k.RatString()
	if r.strict {
		s += ">"
	}
	return s
}

// maxRows bounds the working set so a pathological elimination cannot run
// away; hitting it makes the checker answer "not proven" (sound for a
// verifier: a true obligation is reported unverified, never the reverse).
const maxRows = 250000

// unsatRows decides, by Fourier–Motzkin elimination, whether the
// conjunction of rows has no rational solution. It is exact: true is
// returned iff the system is infeasible over the rationals (and therefore
// over the integers). The only incompleteness is the maxRows cap, which
// returns false ("could not prove unsat").
func unsatRows(rows []*row, n int) bool {
	// Dedup and eagerly decide constant rows.
	sift := func(in []*row) ([]*row, bool) {
		seen := map[string]bool{}
		var out []*row
		for _, r := range in {
			if r.isConst() {
				if r.constFails() {
					return nil, true
				}
				continue
			}
			k := r.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, r)
		}
		return out, false
	}
	rows, unsat := sift(rows)
	if unsat {
		return true
	}
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	for {
		if len(rows) == 0 {
			return false // feasible (all constraints discharged)
		}
		// Pick the remaining variable minimizing |pos|*|neg| products.
		best, bestCost := -1, 0
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			pos, neg, used := 0, 0, false
			for _, r := range rows {
				switch r.c[v].Sign() {
				case 1:
					pos++
					used = true
				case -1:
					neg++
					used = true
				}
			}
			if !used {
				remaining[v] = false
				continue
			}
			cost := pos * neg
			if best == -1 || cost < bestCost {
				best, bestCost = v, cost
			}
		}
		if best == -1 {
			// No variable left: rows are constant (handled by sift) — the
			// system is feasible.
			return false
		}
		v := best
		remaining[v] = false
		var pos, neg, rest []*row
		for _, r := range rows {
			switch r.c[v].Sign() {
			case 1:
				pos = append(pos, r)
			case -1:
				neg = append(neg, r)
			default:
				rest = append(rest, r)
			}
		}
		if len(pos) == 0 || len(neg) == 0 {
			// v is unbounded on one side: every row mentioning it is
			// satisfiable independently; drop them.
			rows = rest
			continue
		}
		if len(rest)+len(pos)*len(neg) > maxRows {
			return false // give up: report unproven
		}
		out := rest
		for _, p := range pos {
			for _, q := range neg {
				// p: c_v > 0 gives a lower bound, q: c_v < 0 an upper bound.
				// Combine with positive multipliers to cancel v:
				//   (-q.c[v]) * p  +  (p.c[v]) * q
				a := new(big.Rat).Neg(q.c[v]) // > 0
				b := new(big.Rat).Set(p.c[v]) // > 0
				nr := newRow(n)
				for i := 0; i < n; i++ {
					nr.c[i].Add(
						new(big.Rat).Mul(a, p.c[i]),
						new(big.Rat).Mul(b, q.c[i]),
					)
				}
				nr.k.Add(new(big.Rat).Mul(a, p.k), new(big.Rat).Mul(b, q.k))
				nr.strict = p.strict || q.strict
				out = append(out, nr)
			}
		}
		rows, unsat = sift(out)
		if unsat {
			return true
		}
	}
}

// Unsat reports whether the conjunction of constraints has no rational
// solution (which implies it has no integer solution either).
func Unsat(sys linear.System, n int) bool {
	return unsatRows(rowsFromSystem(sys, n), n)
}

// Sat reports whether the conjunction has a rational solution. It is the
// exact complement of Unsat except at the maxRows cap, where both report
// the unproven direction.
func Sat(sys linear.System, n int) bool { return !Unsat(sys, n) }

// Entails reports whether every rational point satisfying sys satisfies c:
// sys ∧ ¬c is infeasible, with the negation taken over the rationals
// (e >= 0 negates to the strict -e > 0, e == 0 to either strict side).
// Entailment over the rationals implies entailment over the integers, so a
// "true" answer is sound for the integer IP semantics.
func Entails(sys linear.System, c linear.Constraint, n int) bool {
	if c.IsTautology() {
		return true
	}
	base := rowsFromSystem(sys, n)
	check := func(neg *row) bool {
		rows := make([]*row, len(base), len(base)+1)
		for i, r := range base {
			nr := newRow(n)
			for j := range r.c {
				nr.c[j].Set(r.c[j])
			}
			nr.k.Set(r.k)
			nr.strict = r.strict
			rows[i] = nr
		}
		rows = append(rows, neg)
		return unsatRows(rows, n)
	}
	switch c.Rel {
	case linear.Eq:
		// sys |= e == 0  iff  sys ∧ e > 0 unsat  and  sys ∧ -e > 0 unsat.
		return check(rowFromExpr(c.E, n, true, true)) &&
			check(rowFromExpr(c.E, n, false, true))
	default:
		// sys |= e >= 0  iff  sys ∧ -e > 0 unsat.
		return check(rowFromExpr(c.E, n, true, true))
	}
}

// EntailsSystem reports whether sys entails every constraint of target.
func EntailsSystem(sys, target linear.System, n int) bool {
	for _, c := range target {
		if !Entails(sys, c, n) {
			return false
		}
	}
	return true
}

// FirstUnentailed returns the first constraint of target that sys does not
// entail, for error reporting; ok is false when every constraint is
// entailed.
func FirstUnentailed(sys, target linear.System, n int) (linear.Constraint, bool) {
	for _, c := range target {
		if !Entails(sys, c, n) {
			return c, true
		}
	}
	return linear.Constraint{}, false
}

// maxVar returns the largest variable index mentioned by the system.
func maxVar(sys linear.System) int {
	m := -1
	for _, c := range sys {
		for _, v := range c.E.Vars() {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// FormatSystem renders a system with positional variable names, a debugging
// helper for verification failures.
func FormatSystem(sys linear.System, names []string) string {
	sp := linear.NewSpace()
	for _, n := range names {
		sp.Var(n)
	}
	need := maxVar(sys)
	for sp.Dim() <= need {
		sp.Var(fmt.Sprintf("v%d", sp.Dim()))
	}
	return sys.String(sp)
}

// sortedNames returns the keys of m in sorted order (tiny helper shared by
// the replay code).
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
