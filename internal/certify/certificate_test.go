package certify

import (
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
)

// loopProgram builds
//
//	0: x := 0
//	1: L:
//	2: assert(x >= 0 && 10 - x >= 0)
//	3: x := x + 1
//	4: if (10 - x >= 0) goto L
//
// with a hand-written inductive invariant certificate for the assert.
func loopProgram(t *testing.T) *Certificate {
	t.Helper()
	p := ip.New("loop")
	x := p.Space.Var("x")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&ip.Label{Name: "L"})
	p.Emit(&ip.Assert{
		C:   ip.Conj(ge(0, 1), ge(10, -1)),
		Msg: "x within [0,10]",
	})
	inc := linear.VarExpr(x)
	inc.AddConst(1)
	p.Emit(&ip.Assign{V: x, E: inc})
	p.Emit(&ip.IfGoto{C: ip.Single(ge(10, -1)), Target: "L"})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}

	bounds := linear.System{ge(0, 1), ge(10, -1)}   // 0 <= x <= 10
	shifted := linear.System{ge(-1, 1), ge(11, -1)} // 1 <= x <= 11
	return &Certificate{
		Check:     Check{OrigIndex: 2, Msg: "x within [0,10]", Tier: "test"},
		Prog:      p,
		AssertIdx: 2,
		Inv: []linear.System{
			{},          // entry
			bounds,      // at L
			bounds,      // at assert
			bounds,      // after assert
			shifted,     // after x := x + 1
			{ge(-1, 1)}, // exit: x >= 1
		},
		VarNames: []string{"x"},
	}
}

func TestCertificateVerifies(t *testing.T) {
	cert := loopProgram(t)
	if err := cert.Verify(); err != nil {
		t.Fatalf("hand-built certificate rejected: %v", err)
	}
}

// TestCorruptedCertificatesRejected seeds one bug per obligation and checks
// the verifier catches each: a verifier that cannot reject a wrong
// certificate certifies nothing.
func TestCorruptedCertificatesRejected(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(c *Certificate)
		wantErr string
	}{
		{
			// The entry invariant claims x >= 5 before anything ran.
			"initiation",
			func(c *Certificate) { c.Inv[0] = linear.System{ge(-5, 1)} },
			"initiation",
		},
		{
			// The loop-head invariant claims x >= 1, but the edge from
			// x := 0 establishes only x = 0.
			"consecution",
			func(c *Certificate) {
				c.Inv[1] = linear.System{ge(-1, 1), ge(10, -1)}
			},
			"consecution",
		},
		{
			// Dropping the upper bound at the assert breaks the implication:
			// x = 11 satisfies the weakened invariant and violates the check.
			"implication",
			func(c *Certificate) { c.Inv[2] = linear.System{ge(0, 1)} },
			"implication",
		},
		{
			// The invariant of the back edge's source forgets the increment.
			"back edge",
			func(c *Certificate) {
				c.Inv[4] = linear.System{ge(0, 1), ge(9, -1)} // x <= 9 is wrong
			},
			"consecution",
		},
		{
			"invariant count",
			func(c *Certificate) { c.Inv = c.Inv[:3] },
			"points",
		},
		{
			"assert index",
			func(c *Certificate) { c.AssertIdx = 0 },
			"not an assert",
		},
		{
			// Claiming a reachable assert is unreachable must be refuted by
			// the independent graph search.
			"false unreachability",
			func(c *Certificate) { c.Unreachable = true },
			"reachable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cert := loopProgram(t)
			tc.corrupt(cert)
			err := cert.Verify()
			if err == nil {
				t.Fatalf("corrupted certificate (%s) verified", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestUnreachableCertificate(t *testing.T) {
	p := ip.New("dead")
	x := p.Space.Var("x")
	p.Emit(&ip.Goto{Target: "end"})
	p.Emit(&ip.Assert{C: ip.Single(ge(-1, 1)), Msg: "dead check"})
	p.Emit(&ip.Label{Name: "end"})
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	cert := &Certificate{
		Check:       Check{OrigIndex: 1, Msg: "dead check", Tier: "unreachable"},
		Prog:        p,
		AssertIdx:   1,
		Unreachable: true,
	}
	if err := cert.Verify(); err != nil {
		t.Fatalf("unreachable certificate rejected: %v", err)
	}
}

func TestInvariantAt(t *testing.T) {
	cert := loopProgram(t)
	if _, ok := cert.InvariantAt(2); !ok {
		t.Errorf("InvariantAt(2) not found on identity-mapped certificate")
	}
	cert.OrigStmt = []int{10, 11, 12, 13, 14}
	sys, ok := cert.InvariantAt(12)
	if !ok || len(sys) != 2 {
		t.Errorf("InvariantAt(12) = %v, %v; want the assert invariant", sys, ok)
	}
	if _, ok := cert.InvariantAt(3); ok {
		t.Errorf("InvariantAt(3) found despite not being in the carrier")
	}
}

func TestVerifyAllCounts(t *testing.T) {
	good := loopProgram(t)
	bad := loopProgram(t)
	bad.Inv[2] = linear.System{ge(0, 1)}
	results := VerifyAll([]*Certificate{good, bad})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != StatusCertified {
		t.Errorf("good certificate: %s (%s)", results[0].Status, results[0].Detail)
	}
	if results[1].Status != StatusFailed || results[1].Detail == "" {
		t.Errorf("bad certificate: %s (%s)", results[1].Status, results[1].Detail)
	}
	var o Outcome
	for _, r := range results {
		o.Add(r)
	}
	if o.Certified != 1 || o.Failed != 1 {
		t.Errorf("outcome counters: %+v", o)
	}
}
