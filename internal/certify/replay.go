package certify

import (
	"math/big"
	"sort"

	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
)

// Status classifies one check after certification.
type Status string

// Check statuses.
const (
	// StatusCertified: the discharge was re-proved by the independent
	// Fourier–Motzkin checker.
	StatusCertified Status = "certified"
	// StatusFailed: the certificate did not verify — either the analysis
	// result is wrong or the invariant export is broken; treat as a bug.
	StatusFailed Status = "certificate-failed"
	// StatusWitnessed: a reported violation was replayed to a concrete
	// trace whose first violated assert is this check — a true error.
	StatusWitnessed Status = "witnessed"
	// StatusPotential: a reported violation with no concrete replay found —
	// a possible false alarm (or a witness beyond the search budget).
	StatusPotential Status = "potential"
)

// CheckResult is the certification outcome for one check.
type CheckResult struct {
	// Index is the assert's statement index in the original IP.
	Index int
	Pos   clex.Pos
	Msg   string
	// Tier is the domain that decided the check.
	Tier   string
	Status Status
	// Detail carries the verification error (StatusFailed), a note on the
	// replay ("concrete trace, N steps" / "search truncated"), or "".
	Detail string
	// TraceLen is the length of the replayed trace (witnessed only).
	TraceLen int
}

// Outcome aggregates a procedure's certification.
type Outcome struct {
	// Checks in original-program order (discharged and violated).
	Checks []CheckResult
	// Certified/Failed count discharged checks; Witnessed/Potential count
	// violations.
	Certified, Failed, Witnessed, Potential int
}

// Add appends a result and updates the counters.
func (o *Outcome) Add(r CheckResult) {
	o.Checks = append(o.Checks, r)
	switch r.Status {
	case StatusCertified:
		o.Certified++
	case StatusFailed:
		o.Failed++
	case StatusWitnessed:
		o.Witnessed++
	case StatusPotential:
		o.Potential++
	}
}

// VerifyAll verifies every certificate and returns one result per check.
// Certificates sharing their carrier program and invariant map by pointer
// (as one tier run exports them) have the shared obligations — initiation
// and consecution — established once for the group; the per-assert
// implication always runs per certificate. The outcome is identical to
// calling Verify on each certificate, because the shared obligations are
// a pure function of the pointer-identical (Prog, Inv) pair.
func VerifyAll(certs []*Certificate) []CheckResult {
	type gkey struct {
		prog *ip.Program
		inv0 *linear.System
		n    int
	}
	shared := make(map[gkey]error)
	out := make([]CheckResult, 0, len(certs))
	for _, cert := range certs {
		r := CheckResult{
			Index: cert.Check.OrigIndex,
			Pos:   cert.Check.Pos,
			Msg:   cert.Check.Msg,
			Tier:  cert.Check.Tier,
		}
		var err error
		if cert.Unreachable || len(cert.Inv) == 0 {
			err = cert.Verify()
		} else {
			k := gkey{cert.Prog, &cert.Inv[0], len(cert.Inv)}
			serr, ok := shared[k]
			if !ok {
				serr = cert.verifyShared()
				shared[k] = serr
			}
			if serr != nil {
				err = serr
			} else {
				err = cert.verifyAssert()
			}
		}
		if err != nil {
			r.Status = StatusFailed
			r.Detail = err.Error()
		} else {
			r.Status = StatusCertified
		}
		out = append(out, r)
	}
	return out
}

// ReplayRequest describes one reported violation to replay.
type ReplayRequest struct {
	// Index is the assert's statement index in the program replayed
	// against (the original IP: slices over-approximate executions, so a
	// trace found there might not be real).
	Index int
	Pos   clex.Pos
	Msg   string
	Tier  string
	// Unverifiable marks conditions outside linear arithmetic; they are
	// always classified potential (reaching one concretely proves nothing
	// about the unexpressible condition).
	Unverifiable bool
	// Hints are preferred values per variable name, typically the integral
	// coordinates of the analysis counter-example (lex-min corner).
	Hints map[string]*big.Rat
}

// Replay classifies one violation by deterministic directed execution of
// the original program: witnessed when a concrete trace whose first
// violated assert is the target exists within the search budget, potential
// otherwise.
func Replay(p *ip.Program, req ReplayRequest, opts ip.DirectedOptions) CheckResult {
	r := CheckResult{Index: req.Index, Pos: req.Pos, Msg: req.Msg, Tier: req.Tier}
	if req.Unverifiable {
		r.Status = StatusPotential
		r.Detail = "condition not expressible in linear arithmetic"
		return r
	}
	hints := map[int]*big.Int{}
	for _, name := range sortedNames(req.Hints) {
		v, ok := p.Space.Lookup(name)
		if !ok {
			continue
		}
		rat := req.Hints[name]
		if rat == nil || !rat.IsInt() {
			continue // only integral coordinates are concrete candidates
		}
		hints[v] = new(big.Int).Set(rat.Num())
	}
	opts.Values = seedValues(opts.Values, hints)
	dr := p.ExecDirected(req.Index, hints, opts)
	if dr.Found {
		r.Status = StatusWitnessed
		r.TraceLen = len(dr.Trace)
		r.Detail = "concrete trace replays the violation"
		return r
	}
	r.Status = StatusPotential
	if dr.Truncated {
		r.Detail = "directed search truncated before exhausting the space"
	} else {
		// The candidate value list is finite, so exhausting the choice tree
		// does not prove absence — only that no witness was found.
		r.Detail = "directed search found no witness over its candidate values"
	}
	return r
}

// seedValues extends the directed interpreter's global candidate pool with
// the hint magnitudes and their neighbors, so variables *derived* from the
// hinted ones (a length an offset must equal, a size one past it) can reach
// the counter-example region. values == nil means the interpreter default.
func seedValues(values []int64, hints map[int]*big.Int) []int64 {
	if len(hints) == 0 {
		return values
	}
	if values == nil {
		values = []int64{0, 1, -1, 2} // ip.DirectedOptions default
	}
	out := append([]int64(nil), values...)
	seen := map[int64]bool{}
	for _, v := range out {
		seen[v] = true
	}
	vars := make([]int, 0, len(hints))
	for v := range hints {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		h := hints[v]
		if !h.IsInt64() {
			continue
		}
		for _, d := range []int64{0, -1, 1} {
			val := h.Int64() + d
			if !seen[val] {
				seen[val] = true
				out = append(out, val)
			}
		}
	}
	return out
}
