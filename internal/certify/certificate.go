package certify

import (
	"fmt"
	"math/big"

	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
)

// Check identifies one discharged assert in the original integer program.
type Check struct {
	// OrigIndex is the assert's statement index in the original IP.
	OrigIndex int
	Pos       clex.Pos
	Msg       string
	// Tier names the abstract domain that discharged the check
	// ("unreachable" when CFG pruning removed it).
	Tier string
}

// Certificate is a self-contained proof that one discharged check holds:
// the per-program-point invariant systems of the analysis run that closed
// the check, over the carrier program that run analyzed (the tier's sliced
// sub-program under the cascade, the full program otherwise). Verify
// re-establishes that the invariant is inductive and implies the assert
// using only Fourier–Motzkin elimination — no abstract domain is consulted.
type Certificate struct {
	Check Check

	// Prog is the carrier program the invariant lives on.
	Prog *ip.Program
	// AssertIdx is the index of the certified assert in Prog.
	AssertIdx int
	// Inv[i] is the invariant holding at the entry of Prog.Stmts[i];
	// Inv[len(Prog.Stmts)] is the exit invariant. An unsatisfiable system
	// (e.g. -1 >= 0) marks a point the analysis proved unreachable.
	Inv []linear.System

	// OrigStmt maps carrier statement indices to original-program indices
	// (reduce.StmtMap/SliceMap composed); nil means the carrier is the
	// original program. It is reporting metadata: verification runs on the
	// carrier, and the reduction passes that produced it are part of the
	// documented trust argument (DESIGN.md).
	OrigStmt []int
	// VarNames are the carrier's variable names (original names preserved
	// by the slicer), for rendering invariants in reports.
	VarNames []string

	// Unreachable marks a check discharged because CFG pruning removed it;
	// Prog is the original program, Inv is nil, and Verify recomputes graph
	// reachability instead of checking invariant obligations.
	Unreachable bool
}

// InvariantAt returns the certified invariant mapped back to an original
// program point: the strongest Inv[i] whose carrier statement maps to
// origIdx (false when the point was cut from the carrier).
func (cert *Certificate) InvariantAt(origIdx int) (linear.System, bool) {
	if cert.Inv == nil {
		return nil, false
	}
	if cert.OrigStmt == nil {
		if origIdx < 0 || origIdx >= len(cert.Inv) {
			return nil, false
		}
		return cert.Inv[origIdx], true
	}
	for i, o := range cert.OrigStmt {
		if o == origIdx && i < len(cert.Inv) {
			return cert.Inv[i], true
		}
	}
	return nil, false
}

// Verify checks the certificate with the independent Fourier–Motzkin
// engine: initiation (the entry invariant is trivially true), consecution
// (every CFG edge's exact rational post-state is included in the successor
// invariant), and implication (the invariant at the assert excludes every
// integer state violating the condition). A nil error means the check is
// certified.
func (cert *Certificate) Verify() error {
	if err := cert.verifyShared(); err != nil {
		return err
	}
	return cert.verifyAssert()
}

// verifyShared establishes the obligations that do not depend on which
// assert is certified: carrier resolution, invariant shape, initiation,
// and consecution along every CFG edge. Certificates exported by one tier
// run share their carrier program and invariant map by pointer, so
// VerifyAll discharges this part once per shared group — the result is
// identical because the obligations are a pure function of (Prog, Inv).
func (cert *Certificate) verifyShared() error {
	if cert.Prog == nil {
		return fmt.Errorf("certify: certificate has no program")
	}
	if err := cert.Prog.Resolve(); err != nil {
		return fmt.Errorf("certify: carrier program: %w", err)
	}
	if cert.Unreachable {
		return nil // the whole claim is per-assert graph reachability
	}
	p := cert.Prog
	n := p.Size()
	nv := p.NumVars()
	if len(cert.Inv) != n+1 {
		return fmt.Errorf("certify: invariant map has %d points, program has %d", len(cert.Inv), n+1)
	}

	// Initiation: the entry invariant must hold of every initial state,
	// i.e. be entailed by the empty premise.
	if c, bad := FirstUnentailed(nil, cert.Inv[0], nv); bad {
		return fmt.Errorf("certify: initiation: entry invariant %q is not trivial",
			constraintString(c, cert.VarNames))
	}

	// Consecution: for every statement and every outgoing CFG edge, the
	// exact rational strongest post of the invariant through the statement
	// and the edge condition must entail the successor invariant.
	succ := p.CFG()
	for i := range p.Stmts {
		for _, e := range succ[i] {
			if err := cert.checkEdge(i, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyAssert establishes the per-assert obligations on top of a
// verified shared part: the certified statement is a verifiable assert
// and the invariant at it excludes every violating integer state.
func (cert *Certificate) verifyAssert() error {
	if cert.Unreachable {
		return cert.verifyUnreachable()
	}
	p := cert.Prog
	n := p.Size()
	nv := p.NumVars()
	if cert.AssertIdx < 0 || cert.AssertIdx >= n {
		return fmt.Errorf("certify: assert index %d out of range", cert.AssertIdx)
	}
	a, ok := p.Stmts[cert.AssertIdx].(*ip.Assert)
	if !ok {
		return fmt.Errorf("certify: statement %d is not an assert", cert.AssertIdx)
	}
	if a.Unverifiable {
		return fmt.Errorf("certify: unverifiable assert cannot be certified")
	}

	// Implication: no integer point of the invariant at the assert violates
	// the condition. The integer negation (ip.DNF.Negate) is exact over
	// integer states; rational infeasibility of each negated disjunct is
	// therefore sound.
	inv := cert.Inv[cert.AssertIdx]
	for _, nd := range a.C.Negate() {
		sys := append(inv.Clone(), nd...)
		if !Unsat(sys, nv) {
			return fmt.Errorf("certify: implication: invariant at %d does not exclude violation of %q",
				cert.AssertIdx, a.Msg)
		}
	}
	return nil
}

// verifyUnreachable re-derives, by plain graph search, that the assert is
// not CFG-reachable from the entry — the same (over-approximate) notion the
// pruning pass uses, recomputed independently.
func (cert *Certificate) verifyUnreachable() error {
	p := cert.Prog
	n := p.Size()
	if cert.AssertIdx < 0 || cert.AssertIdx >= n {
		return fmt.Errorf("certify: assert index %d out of range", cert.AssertIdx)
	}
	if _, ok := p.Stmts[cert.AssertIdx].(*ip.Assert); !ok {
		return fmt.Errorf("certify: statement %d is not an assert", cert.AssertIdx)
	}
	succ := p.CFG()
	reach := make([]bool, n+1)
	stack := []int{0}
	if n > 0 {
		reach[0] = true
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i >= n {
			continue
		}
		for _, e := range succ[i] {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	if reach[cert.AssertIdx] {
		return fmt.Errorf("certify: assert %d is CFG-reachable, unreachability claim refuted", cert.AssertIdx)
	}
	return nil
}

// checkEdge discharges the consecution obligation of one CFG edge. The
// statement transfer and the edge condition are decomposed into disjuncts
// (matching the engine's per-disjunct join); each (transfer-disjunct,
// edge-disjunct) pair yields one premise whose exact rational post must
// entail the successor invariant. Since every sound abstract transfer
// over-approximates this exact post, a correct fixpoint always passes.
func (cert *Certificate) checkEdge(i int, e ip.Edge) error {
	p := cert.Prog
	nv := p.NumVars()
	pre := cert.Inv[i]
	post := cert.Inv[e.To]

	// The assigned/havocked variable, if any, is modeled with a primed
	// variable at index nv; the successor invariant is rewritten over it.
	primed := -1 // variable replaced by index nv in the target
	var extra linear.System
	transferDisjuncts := ip.DNF{nil} // one trivially-true disjunct

	switch s := p.Stmts[i].(type) {
	case *ip.Assign:
		primed = s.V
		// x' = e  (over the unprimed pre-state).
		d := linear.NewExpr()
		d = d.Add(s.E)
		d.AddTerm(nv, -1) // e - x' == 0
		extra = linear.System{linear.NewEq(d)}
	case *ip.Havoc:
		primed = s.V
	case *ip.Assume:
		transferDisjuncts = normDNF(s.C)
	case *ip.Assert:
		// Downstream of an assert the instrumented semantics guarantees the
		// condition (execution halts at the first error), so the condition
		// joins the premise. Unverifiable asserts contribute nothing.
		if !s.Unverifiable {
			transferDisjuncts = normDNF(s.C)
		}
	}

	// Edge conditions only occur on IfGoto edges, whose transfer is the
	// identity, so they always constrain the unprimed state.
	edgeDisjuncts := normDNF(e.Cond)

	dim := nv
	target := post
	if primed >= 0 {
		dim = nv + 1
		target = renameVar(post, primed, nv)
	}

	for _, td := range transferDisjuncts {
		for _, ed := range edgeDisjuncts {
			premise := make(linear.System, 0, len(pre)+len(extra)+len(td)+len(ed))
			premise = append(premise, pre...)
			premise = append(premise, extra...)
			premise = append(premise, td...)
			premise = append(premise, ed...)
			if c, bad := FirstUnentailed(premise, target, dim); bad {
				return fmt.Errorf("certify: consecution: edge %d->%d does not preserve %q",
					i, e.To, constraintString(c, cert.VarNames))
			}
		}
	}
	return nil
}

// normDNF normalizes a condition for obligation enumeration: nil (true)
// becomes a single empty disjunct; false stays empty (no obligation — the
// edge is infeasible).
func normDNF(d ip.DNF) ip.DNF {
	if d.IsTrue() {
		return ip.DNF{nil}
	}
	if d.IsFalse() {
		return ip.DNF{}
	}
	return d
}

// renameVar rewrites every occurrence of variable v as variable w.
func renameVar(sys linear.System, v, w int) linear.System {
	out := make(linear.System, len(sys))
	for i, c := range sys {
		e := c.E.Clone()
		k := e.Coef(v)
		if k.Sign() != 0 {
			e.SetCoef(w, k)
			e.SetCoef(v, new(big.Int))
		}
		out[i] = linear.Constraint{E: e, Rel: c.Rel}
	}
	return out
}

func constraintString(c linear.Constraint, names []string) string {
	sp := linear.NewSpace()
	for _, n := range names {
		sp.Var(n)
	}
	// The primed next-state variable, if present, prints as <name>'.
	for sp.Dim() <= maxVar(linear.System{c}) {
		sp.Var(fmt.Sprintf("v%d'", sp.Dim()))
	}
	return c.String(sp)
}
