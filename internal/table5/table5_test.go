package table5

import (
	"strings"
	"testing"
)

// TestHeadlineFixwrites reproduces §1.3: "In the application fixwrites ...
// CSSV uncovered 8 errors with 2 false alarms."
func TestHeadlineFixwrites(t *testing.T) {
	if testing.Short() {
		t.Skip("suite analysis is slow")
	}
	rows, err := RunSuite("fixwrites", "../../testdata/fixwrites/fixwrites.c",
		Options{SkipDerivation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("fixwrites has %d procedures, want 8", len(rows))
	}
	errs, falses := 0, 0
	for _, r := range rows {
		errs += r.Errors
		falses += r.FalseAlarms
	}
	if errs != 8 {
		t.Errorf("errors = %d, want 8 (paper §1.3)", errs)
	}
	if falses != 2 {
		t.Errorf("false alarms = %d, want 2 (paper §1.3)", falses)
	}
}

// TestHeadlineAirbus reproduces §1.3's shape on the Airbus-style suite:
// every procedure is safe, so every message is a false alarm; the count is
// small (paper: 6; this reproduction: 4) and concentrated in the
// balanced-parentheses scanner and the opaque-character stores.
func TestHeadlineAirbus(t *testing.T) {
	if testing.Short() {
		t.Skip("suite analysis is slow")
	}
	rows, err := RunSuite("airbus", "../../testdata/airbus/airbus.c",
		Options{SkipDerivation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("airbus has %d procedures, want 11", len(rows))
	}
	total := 0
	flagged := map[string]int{}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Errorf("%s: %d errors on a safe suite", r.Function, r.Errors)
		}
		total += r.FalseAlarms
		if r.FalseAlarms > 0 {
			flagged[r.Function] = r.FalseAlarms
		}
	}
	if total == 0 || total > 8 {
		t.Errorf("false alarms = %d, want a small nonzero count (paper: 6, this repro: 4)", total)
	}
	if _, ok := flagged["RTC_Si_SkipBalanced"]; !ok {
		t.Errorf("the skip_balanced-style scanner should account for a false alarm; got %v", flagged)
	}
	// SkipLine itself is verified cleanly (paper §2.3).
	for _, r := range rows {
		if r.Function == "RTC_Si_SkipLine" && r.FalseAlarms != 0 {
			t.Errorf("SkipLine has %d false alarms, want 0", r.FalseAlarms)
		}
	}
}

func TestFormatAndSummary(t *testing.T) {
	rows := []Row{
		{Suite: "s", Function: "f", LOC: 10, SLOC: 20, Contract: "S",
			IPVars: 5, IPSize: 9, Msgs: 2, Errors: 1, FalseAlarms: 1,
			VacuousMsgs: 10, AutoMsgs: 5},
		{Suite: "s", Function: "g", Msgs: 0, VacuousMsgs: 10, AutoMsgs: 10},
	}
	table := Format(rows, true)
	for _, want := range []string{"Suite", "f", "g", "DerCPU"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	sums := Summarize(rows)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s := sums[0]
	if s.Procedures != 2 || s.Errors != 1 || s.FalseAlarms != 1 {
		t.Errorf("summary = %+v", s)
	}
	// manual reduction = 1 - 1/20 = 95%; auto = 1 - 15/20 = 25%.
	if s.ManualReduction < 0.94 || s.ManualReduction > 0.96 {
		t.Errorf("manual reduction = %f", s.ManualReduction)
	}
	if s.AutoReduction < 0.24 || s.AutoReduction > 0.26 {
		t.Errorf("auto reduction = %f", s.AutoReduction)
	}
	if !strings.Contains(FormatSummary(sums), "95%") {
		t.Errorf("summary text:\n%s", FormatSummary(sums))
	}
}

func TestExpectedManifest(t *testing.T) {
	// Every benchmark function has a ground-truth record; totals match the
	// paper's headline.
	airbus := []string{
		"RTC_Si_SkipLine", "RTC_Si_FillChar", "RTC_Si_CopyString",
		"RTC_Si_AppendChar", "RTC_Si_InsertSeparator", "RTC_Si_PadBuffer",
		"RTC_Si_TruncateAt", "RTC_Si_CountChar", "RTC_Si_SkipBalanced",
		"RTC_Si_CopyLine", "RTC_Si_WriteText",
	}
	fixwrites := []string{
		"remove_newline", "find_assign", "join_lines", "whine",
		"break_line", "skip_blanks", "set_progname", "fix_file",
	}
	errTotal := 0
	for _, fn := range append(airbus, fixwrites...) {
		e, ok := Expected(fn)
		if !ok {
			t.Errorf("no expectation for %s", fn)
			continue
		}
		errTotal += e.Errors
	}
	for _, fn := range airbus {
		if e, _ := Expected(fn); e.Errors != 0 {
			t.Errorf("airbus %s marked with errors", fn)
		}
	}
	if errTotal != 8 {
		t.Errorf("total expected errors = %d, want 8", errTotal)
	}
}
