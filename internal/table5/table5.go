// Package table5 is the evaluation harness that regenerates the paper's
// Table 5: per-procedure statistics (LOC, SLOC, contract class, IP size,
// CPU, space), message classification (errors vs false alarms against the
// suites' ground truth), and the contract-derivation comparison (false
// alarms under vacuous vs automatically derived vs manual contracts).
package table5

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Expect is the ground truth for one benchmark procedure.
type Expect struct {
	// Errors is the number of real errors among this procedure's reported
	// messages (inputs exist on which they occur).
	Errors int
	// Contract classifies the manual contract difficulty as in the paper:
	// S = simple specification (string/is_within_bounds),
	// B = buffer boundaries, I = other integer relations.
	Contract string
}

// Ground truth for the two suites (see testdata/*/: every Airbus procedure
// is safe; fixwrites contains eight real errors).
var expectations = map[string]Expect{
	// EADS Airbus-style string library.
	"RTC_Si_SkipLine":        {Errors: 0, Contract: "S,B,I"},
	"RTC_Si_FillChar":        {Errors: 0, Contract: "B,I"},
	"RTC_Si_CopyString":      {Errors: 0, Contract: "S,B"},
	"RTC_Si_AppendChar":      {Errors: 0, Contract: "S,B"},
	"RTC_Si_InsertSeparator": {Errors: 0, Contract: "B,I"},
	"RTC_Si_PadBuffer":       {Errors: 0, Contract: "S,B,I"},
	"RTC_Si_TruncateAt":      {Errors: 0, Contract: "S,I"},
	"RTC_Si_CountChar":       {Errors: 0, Contract: "S"},
	"RTC_Si_SkipBalanced":    {Errors: 0, Contract: "S"},
	"RTC_Si_CopyLine":        {Errors: 0, Contract: "S,B,I"},
	"RTC_Si_WriteText":       {Errors: 0, Contract: "S,B"},

	// fixwrites (web2c)-style line filter.
	"remove_newline": {Errors: 1, Contract: "S"},
	"find_assign":    {Errors: 1, Contract: "S"},
	"join_lines":     {Errors: 2, Contract: "S"},
	"whine":          {Errors: 1, Contract: "S"},
	"break_line":     {Errors: 0, Contract: "S,I"},
	"skip_blanks":    {Errors: 0, Contract: "S"},
	"set_progname":   {Errors: 1, Contract: "S"},
	"fix_file":       {Errors: 2, Contract: "S"},
}

// Expected returns the ground-truth record for a procedure.
func Expected(proc string) (Expect, bool) {
	e, ok := expectations[proc]
	return e, ok
}

// Row is one line of the regenerated Table 5.
type Row struct {
	Suite    string
	Function string
	LOC      int
	SLOC     int
	Contract string
	IPVars   int
	IPSize   int
	CPU      time.Duration
	Space    uint64
	// Message classification under manual contracts.
	Msgs        int
	Errors      int
	FalseAlarms int
	// Deriving columns.
	DeriveCPU   time.Duration
	DeriveSpace uint64
	VacuousMsgs int
	AutoMsgs    int
	// Certification columns (under Driver.Certify): Certified counts
	// discharged checks whose invariant certificate the independent
	// Fourier–Motzkin checker re-proved; CertFailed counts rejected
	// certificates; Witnessed counts messages replayed to a concrete
	// failing trace; Potential the remaining messages.
	Certified  int
	CertFailed int
	Witnessed  int
	Potential  int
}

// Options tunes the harness run.
type Options struct {
	Driver core.Options
	// SkipDerivation omits the vacuous/auto columns (faster).
	SkipDerivation bool
	// Procs restricts to specific functions.
	Procs []string
	// Stats, when non-nil, accumulates substrate statistics (arena
	// recycling, zone representation selections, precision drops) across
	// every analysis run the suite performs, including the per-procedure
	// vacuous/auto derivation re-runs.
	Stats *core.RunStats
}

// accumulate folds one run's substrate counters into the caller's
// accumulator.
func (o Options) accumulate(s core.RunStats) {
	if o.Stats == nil {
		return
	}
	o.Stats.ArenaRecycledBytes += s.ArenaRecycledBytes
	o.Stats.SparseZoneSelections += s.SparseZoneSelections
	o.Stats.DenseZoneSelections += s.DenseZoneSelections
	o.Stats.PrecisionDrops += s.PrecisionDrops
	o.Stats.DegradedProcs += s.DegradedProcs
	o.Stats.UnresolvedChecks += s.UnresolvedChecks
	o.Stats.MemberResolved += s.MemberResolved
	o.Stats.MemberHavocked += s.MemberHavocked
}

// RunSuite analyzes every procedure of a benchmark source file.
func RunSuite(suite, path string, opts Options) ([]Row, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return RunSuiteSource(suite, filepath.Base(path), string(src), opts)
}

// RunSuiteSource is RunSuite over in-memory source text.
func RunSuiteSource(suite, filename, src string, opts Options) ([]Row, error) {
	dopts := opts.Driver
	dopts.Procs = opts.Procs
	dopts.Contracts = core.ManualContracts
	rep, err := core.AnalyzeSource(filename, src, dopts)
	if err != nil {
		return nil, err
	}
	opts.accumulate(rep.Stats)

	var rows []Row
	for i := range rep.Procs {
		pr := &rep.Procs[i]
		exp, _ := Expected(pr.Name)
		row := Row{
			Suite:    suite,
			Function: pr.Name,
			LOC:      pr.LOC,
			SLOC:     pr.SLOC,
			Contract: exp.Contract,
			IPVars:   pr.IPVars,
			IPSize:   pr.IPSize,
			CPU:      pr.CPU,
			Space:    pr.Space,
			Msgs:     pr.Messages(),
		}
		// Classification: the tool is sound, so every real error is among
		// the messages; the remainder are false alarms.
		row.Errors = exp.Errors
		if row.Msgs < row.Errors {
			row.Errors = row.Msgs
		}
		row.FalseAlarms = row.Msgs - row.Errors

		if pr.Certification != nil {
			row.Certified = pr.Certification.Certified
			row.CertFailed = pr.Certification.Failed
			row.Witnessed = pr.Certification.Witnessed
			row.Potential = pr.Certification.Potential
		}

		if !opts.SkipDerivation {
			vac := dopts
			vac.Procs = []string{pr.Name}
			vac.Contracts = core.VacuousContracts
			if vrep, err := core.AnalyzeSource(filename, src, vac); err == nil {
				row.VacuousMsgs = vrep.TotalMessages()
				opts.accumulate(vrep.Stats)
			}
			auto := dopts
			auto.Procs = []string{pr.Name}
			auto.Contracts = core.AutoContracts
			start := time.Now()
			if arep, err := core.AnalyzeSource(filename, src, auto); err == nil {
				row.AutoMsgs = arep.TotalMessages()
				opts.accumulate(arep.Stats)
				if d := arep.Procs[0].Derived; d != nil {
					row.DeriveSpace = d.Space
				}
			}
			row.DeriveCPU = time.Since(start)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Format renders rows as the paper's Table 5. withCertify adds the
// certification columns (certified/failed certificates, witnessed/potential
// messages); pass it when the rows were produced under Driver.Certify.
func Format(rows []Row, withDerive bool, withCertify ...bool) string {
	certify := len(withCertify) > 0 && withCertify[0]
	var sb strings.Builder
	if withDerive {
		fmt.Fprintf(&sb, "%-10s %-22s %5s %5s %-6s | %6s %7s %9s %9s | %4s %4s %5s",
			"Suite", "Function", "LOC", "SLOC", "Contr",
			"IPVars", "IPSize", "CPU", "Space",
			"Msg", "Err", "False")
		if certify {
			fmt.Fprintf(&sb, " | %4s %4s %4s %4s", "Cert", "CFail", "Wit", "Pot")
		}
		fmt.Fprintf(&sb, " | %9s %4s %4s\n", "DerCPU", "Vac", "Auto")
	} else {
		fmt.Fprintf(&sb, "%-10s %-22s %5s %5s %-6s | %6s %7s %9s %9s | %4s %4s %5s",
			"Suite", "Function", "LOC", "SLOC", "Contr",
			"IPVars", "IPSize", "CPU", "Space",
			"Msg", "Err", "False")
		if certify {
			fmt.Fprintf(&sb, " | %4s %4s %4s %4s", "Cert", "CFail", "Wit", "Pot")
		}
		sb.WriteString("\n")
	}
	width := 118
	if certify {
		width += 23
	}
	sb.WriteString(strings.Repeat("-", width) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-22s %5d %5d %-6s | %6d %7d %9s %8.1fM | %4d %4d %5d",
			r.Suite, r.Function, r.LOC, r.SLOC, r.Contract,
			r.IPVars, r.IPSize, fmtDur(r.CPU), float64(r.Space)/1e6,
			r.Msgs, r.Errors, r.FalseAlarms)
		if certify {
			fmt.Fprintf(&sb, " | %4d %5d %4d %4d", r.Certified, r.CertFailed, r.Witnessed, r.Potential)
		}
		if withDerive {
			fmt.Fprintf(&sb, " | %9s %4d %4d", fmtDur(r.DeriveCPU), r.VacuousMsgs, r.AutoMsgs)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// Summary aggregates the headline numbers of paper §1.3 / §5.
type Summary struct {
	Suite           string
	Procedures      int
	Errors          int
	FalseAlarms     int
	VacuousMsgs     int
	AutoMsgs        int
	ManualReduction float64 // 1 - false/vacuous
	AutoReduction   float64 // 1 - auto/vacuous
	TotalCPU        time.Duration
	TotalIPVars     int
	TotalIPSize     int
}

// Summarize computes the per-suite headline.
func Summarize(rows []Row) []Summary {
	bySuite := map[string]*Summary{}
	var order []string
	for _, r := range rows {
		s, ok := bySuite[r.Suite]
		if !ok {
			s = &Summary{Suite: r.Suite}
			bySuite[r.Suite] = s
			order = append(order, r.Suite)
		}
		s.Procedures++
		s.Errors += r.Errors
		s.FalseAlarms += r.FalseAlarms
		s.VacuousMsgs += r.VacuousMsgs
		s.AutoMsgs += r.AutoMsgs
		s.TotalCPU += r.CPU
		s.TotalIPVars += r.IPVars
		s.TotalIPSize += r.IPSize
	}
	sort.Strings(order)
	var out []Summary
	for _, k := range order {
		s := bySuite[k]
		if s.VacuousMsgs > 0 {
			manualMsgs := s.FalseAlarms
			s.ManualReduction = 1 - float64(manualMsgs)/float64(s.VacuousMsgs)
			s.AutoReduction = 1 - float64(s.AutoMsgs)/float64(s.VacuousMsgs)
		}
		out = append(out, *s)
	}
	return out
}

// FormatSummary renders the headline comparison.
func FormatSummary(sums []Summary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %5s %6s %6s | %8s %8s | %8s %8s\n",
		"Suite", "Procs", "Errors", "False", "VacMsgs", "AutoMsgs", "ManualRed", "AutoRed")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, s := range sums {
		fmt.Fprintf(&sb, "%-10s %5d %6d %6d | %8d %8d | %7.0f%% %7.0f%%\n",
			s.Suite, s.Procedures, s.Errors, s.FalseAlarms,
			s.VacuousMsgs, s.AutoMsgs,
			100*s.ManualReduction, 100*s.AutoReduction)
	}
	return sb.String()
}
