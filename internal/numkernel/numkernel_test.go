package numkernel

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// TestCheckedOpsAgainstBig: the checked helpers agree with big.Int exactly —
// ok == true iff the exact result fits, and then the values match.
func TestCheckedOpsAgainstBig(t *testing.T) {
	interesting := []int64{
		0, 1, -1, 2, -2, 63, -63,
		math.MaxInt32, math.MinInt32,
		math.MaxInt64, math.MinInt64,
		math.MaxInt64 - 1, math.MinInt64 + 1,
		1 << 31, 1 << 32, 1 << 62, -(1 << 62),
	}
	rng := rand.New(rand.NewSource(7))
	vals := append([]int64(nil), interesting...)
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	lo := big.NewInt(math.MinInt64)
	hi := big.NewInt(math.MaxInt64)
	fits := func(x *big.Int) bool { return x.Cmp(lo) >= 0 && x.Cmp(hi) <= 0 }
	for _, a := range vals {
		for _, b := range vals {
			ba, bb := big.NewInt(a), big.NewInt(b)
			checks := []struct {
				name  string
				got   int64
				ok    bool
				exact *big.Int
			}{
				{"add", 0, false, new(big.Int).Add(ba, bb)},
				{"sub", 0, false, new(big.Int).Sub(ba, bb)},
				{"mul", 0, false, new(big.Int).Mul(ba, bb)},
			}
			checks[0].got, checks[0].ok = AddOK(a, b)
			checks[1].got, checks[1].ok = SubOK(a, b)
			checks[2].got, checks[2].ok = MulOK(a, b)
			for _, c := range checks {
				if c.ok != fits(c.exact) {
					t.Fatalf("%s(%d, %d): ok=%v, want %v", c.name, a, b, c.ok, fits(c.exact))
				}
				if c.ok && big.NewInt(c.got).Cmp(c.exact) != 0 {
					t.Fatalf("%s(%d, %d) = %d, want %s", c.name, a, b, c.got, c.exact)
				}
			}
		}
	}
}

func TestNegAbs(t *testing.T) {
	if _, ok := NegOK(math.MinInt64); ok {
		t.Error("NegOK(MinInt64) must overflow")
	}
	if v, ok := NegOK(math.MaxInt64); !ok || v != math.MinInt64+1 {
		t.Errorf("NegOK(MaxInt64) = %d, %v", v, ok)
	}
	if got := AbsU64(math.MinInt64); got != 1<<63 {
		t.Errorf("AbsU64(MinInt64) = %d, want 2^63", got)
	}
	if got := AbsU64(-5); got != 5 {
		t.Errorf("AbsU64(-5) = %d", got)
	}
}

func TestGcd64(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 7, 7}, {7, 0, 7}, {12, 18, 6},
		{1 << 63, 2, 2}, {1 << 63, 1 << 63, 1 << 63}, {17, 13, 1},
	}
	for _, c := range cases {
		if got := Gcd64(c.a, c.b); got != c.want {
			t.Errorf("Gcd64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestKeyEncodingCanonical: the compact and wide encodings agree on every
// int64-representable value and never collide across distinct values.
func TestKeyEncodingCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seen := map[string]string{}
	record := func(key []byte, val string) {
		if prev, ok := seen[string(key)]; ok && prev != val {
			t.Fatalf("key collision: %q vs %q", prev, val)
		}
		seen[string(key)] = val
	}
	for i := 0; i < 500; i++ {
		x := rng.Int63() - rng.Int63()
		a := AppendKeyInt64(nil, x)
		b := AppendKeyBig(nil, big.NewInt(x))
		if string(a) != string(b) {
			t.Fatalf("tier-dependent encoding for %d", x)
		}
		record(a, big.NewInt(x).String())
		// Wide values must also be uniquely encoded.
		w := new(big.Int).Lsh(big.NewInt(x), uint(64+rng.Intn(3)))
		record(AppendKeyBig(nil, w), w.String())
	}
}
