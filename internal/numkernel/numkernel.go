// Package numkernel provides the overflow-checked machine-word arithmetic
// underlying the hybrid int64/big.Int numeric kernel of the polyhedra and
// zone substrates. Every helper either returns an exact int64 result with
// ok == true, or reports ok == false so the caller can promote the
// computation to the exact (big.Int) tier. Promotion never loses
// information: the checked helpers are exact whenever they succeed, so a
// computation that mixes tiers is bit-identical to one performed entirely
// in arbitrary precision.
//
// The package also hosts the canonical value-based byte encodings both
// substrates use to key dedup tables and memo caches: the encodings depend
// only on the numeric value, never on the tier holding it.
//
// The certificate checker (internal/certify) must not import this package:
// its trust argument requires exact big.Rat arithmetic with no fast-path
// code shared with the analysis it validates (enforced by
// certify.TestNoPolyhedraImport).
package numkernel

import (
	"math"
	"math/big"
	"math/bits"
)

// AddOK returns a+b and whether the sum fits in an int64.
func AddOK(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff the operands share a sign that the sum does not.
	return s, (a^s)&(b^s) >= 0
}

// SubOK returns a-b and whether the difference fits in an int64.
func SubOK(a, b int64) (int64, bool) {
	d := a - b
	return d, (a^b)&(a^d) >= 0
}

// MulOK returns a*b and whether the product fits in an int64.
func MulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(AbsU64(a), AbsU64(b))
	if hi != 0 {
		return 0, false
	}
	if neg {
		if lo > 1<<63 {
			return 0, false
		}
		if lo == 1<<63 {
			return math.MinInt64, true
		}
		return -int64(lo), true
	}
	if lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}

// NegOK returns -a and whether the negation fits in an int64 (it does not
// for math.MinInt64).
func NegOK(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	return -a, true
}

// AbsU64 returns |x| as a uint64; unlike an int64 absolute value it is
// total (|math.MinInt64| = 1<<63 is representable).
func AbsU64(x int64) uint64 {
	if x < 0 {
		return uint64(-x) // wraps to 1<<63 for MinInt64, which is correct
	}
	return uint64(x)
}

// Gcd64 returns gcd(a, b) with Gcd64(0, x) == x.
func Gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Canonical value encodings. An int64-representable value always uses the
// compact form, whether it lives on the machine tier or in a big.Int, so
// equal values encode equally regardless of tier. The leading tag bytes
// keep the compact and wide forms from colliding.
const (
	keyTagInt64 = 0x02
	keyTagBig   = 0x03
	keyTermBig  = 0xfe
)

// AppendKeyInt64 appends the canonical encoding of x to key.
func AppendKeyInt64(key []byte, x int64) []byte {
	u := uint64(x)
	return append(key, keyTagInt64,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// AppendKeyBig appends the canonical encoding of x to key. Values that fit
// an int64 take the same compact form AppendKeyInt64 produces.
func AppendKeyBig(key []byte, x *big.Int) []byte {
	if x.IsInt64() {
		return AppendKeyInt64(key, x.Int64())
	}
	key = append(key, keyTagBig, byte(x.Sign()+1))
	for _, w := range x.Bits() {
		key = append(key,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return append(key, keyTermBig)
}
