// Package serve implements the cssv-serve batch API: a long-running
// daemon that keeps one warm process (in-memory pointer memo, parsed libc
// header) and one on-disk analysis cache across many analysis requests,
// so repeated verification of a slowly changing code base pays the
// fixpoint cost only for procedures that actually changed.
//
// The HTTP surface is deliberately small:
//
//	POST /v1/analyze  {filename, source, config}  -> {output, exit_code, ...}
//	POST /v1/batch    {requests: [...]}           -> {results: [...]}
//	GET  /v1/stats                                -> aggregate counters
//	GET  /healthz                                 -> 200 "ok"
//
// The response output is produced by the same Render path as the cssv
// command, so a daemon answer is byte-identical to a one-shot CLI run of
// the same file with the same flags. The daemon — not the client — owns
// the cache directory and worker count: requests cannot redirect the
// cache or change the process's parallelism.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro"
)

// RequestConfig is the client-settable subset of cssv.Config plus the
// rendering switches. Cache placement, verification policy, and worker
// count are absent on purpose: they belong to the server.
type RequestConfig struct {
	Procs     []string `json:"procs,omitempty"`
	Domain    string   `json:"domain,omitempty"`
	Pointer   string   `json:"pointer,omitempty"`
	Target    string   `json:"target,omitempty"`
	Contracts string   `json:"contracts,omitempty"`
	Cascade   bool     `json:"cascade,omitempty"`
	Certify   bool     `json:"certify,omitempty"`
	Octagon   bool     `json:"octagon,omitempty"`
	// Schedule selects the cascade tier scheduler ("off", "static",
	// "adaptive"); the profile directory stays server-owned (it lives
	// under the server's cache directory).
	Schedule string `json:"schedule,omitempty"`

	Stats         bool `json:"stats,omitempty"`
	DumpIP        bool `json:"dump_ip,omitempty"`
	DumpReducedIP bool `json:"dump_reduced_ip,omitempty"`
	Quiet         bool `json:"quiet,omitempty"`
}

// Request is one analysis job: a named C source text plus configuration.
type Request struct {
	Filename string        `json:"filename"`
	Source   string        `json:"source"`
	Config   RequestConfig `json:"config"`
}

// Response mirrors what a CLI invocation would have produced: the full
// rendered report and the exit status the cssv command would have used
// (0 clean, 1 messages reported, 2 analysis failure or failed
// certificate). Error is set — and the other fields zero — only when the
// analysis itself could not run.
type Response struct {
	Output     string `json:"output"`
	ExitCode   int    `json:"exit_code"`
	Messages   int    `json:"messages"`
	CertFailed int    `json:"cert_failed"`
	Error      string `json:"error,omitempty"`
}

// BatchRequest runs several jobs in one round trip; results are returned
// in request order.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse carries one Response per request, in order.
type BatchResponse struct {
	Results []Response `json:"results"`
}

// Stats aggregates the cache-relevant run counters across every request
// the daemon has served, plus the request count itself.
type Stats struct {
	Requests           int `json:"requests"`
	Failures           int `json:"failures"`
	CacheHits          int `json:"cache_hits"`
	CacheRevalidated   int `json:"cache_revalidated"`
	CacheMisses        int `json:"cache_misses"`
	CacheStores        int `json:"cache_stores"`
	CacheBadEntries    int `json:"cache_bad_entries"`
	CacheCertRejected  int `json:"cache_cert_rejected"`
	FixpointIterations int `json:"fixpoint_iterations"`
}

// Server handles the batch API. The zero value serves with no on-disk
// cache and default parallelism.
type Server struct {
	// CacheDir is the analysis cache shared by every request (empty =
	// no cache — the process is still warm across requests).
	CacheDir string
	// CacheVerify re-verifies stored certificates on exact hits.
	CacheVerify bool
	// Workers is the per-request parallelism (0 = all CPUs).
	Workers int
	// MaxRequestBytes bounds each request body; larger bodies are
	// rejected with 413 Request Entity Too Large before the decoder
	// buffers them (0 = the 64 MiB default, negative = unbounded).
	MaxRequestBytes int64

	mu    sync.Mutex
	stats Stats
}

// DefaultMaxRequestBytes is the request-body bound applied when
// Server.MaxRequestBytes is zero: generous for source files, small
// enough that a misbehaving client cannot exhaust daemon memory.
const DefaultMaxRequestBytes = 64 << 20

func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	limit := s.MaxRequestBytes
	if limit == 0 {
		limit = DefaultMaxRequestBytes
	}
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
}

// decodeError maps a body-decode failure to its HTTP status: 413 when
// the body tripped the MaxBytesReader bound, 400 otherwise.
func decodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.limitBody(w, r)
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			decodeError(w, err)
			return
		}
		writeJSON(w, s.analyze(req))
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.limitBody(w, r)
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			decodeError(w, err)
			return
		}
		resp := BatchResponse{Results: make([]Response, len(req.Requests))}
		for i, one := range req.Requests {
			resp.Results[i] = s.analyze(one)
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		snap := s.stats
		s.mu.Unlock()
		writeJSON(w, snap)
	})
	return mux
}

// Snapshot returns the aggregate counters served at /v1/stats.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) analyze(req Request) Response {
	c := req.Config
	target := c.Target
	if target == "" {
		target = "paper32"
	}
	cfg := cssv.Config{
		Procedures:  c.Procs,
		Domain:      c.Domain,
		Pointer:     c.Pointer,
		Target:      target,
		Contracts:   c.Contracts,
		Cascade:     c.Cascade || c.Octagon || c.DumpReducedIP,
		Certify:     c.Certify,
		Octagon:     c.Octagon,
		Schedule:    c.Schedule,
		Workers:     s.Workers,
		CacheDir:    s.CacheDir,
		CacheVerify: s.CacheVerify,
	}
	rep, err := cssv.Analyze(req.Filename, req.Source, cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	if err != nil {
		s.stats.Failures++
		return Response{Error: err.Error(), ExitCode: 2}
	}
	s.stats.CacheHits += rep.Stats.CacheHits
	s.stats.CacheRevalidated += rep.Stats.CacheRevalidated
	s.stats.CacheMisses += rep.Stats.CacheMisses
	s.stats.CacheStores += rep.Stats.CacheStores
	s.stats.CacheBadEntries += rep.Stats.CacheBadEntries
	s.stats.CacheCertRejected += rep.Stats.CacheCertRejected
	s.stats.FixpointIterations += rep.Stats.FixpointIterations
	var buf bytes.Buffer
	messages, certFailed := cssv.Render(&buf, rep, cssv.RenderOptions{
		Stats:         c.Stats,
		DumpIP:        c.DumpIP,
		DumpReducedIP: c.DumpReducedIP,
		Quiet:         c.Quiet,
		Target:        target,
	})
	code := 0
	switch {
	case certFailed > 0:
		code = 2
	case messages > 0:
		code = 1
	}
	return Response{
		Output:     buf.String(),
		ExitCode:   code,
		Messages:   messages,
		CertFailed: certFailed,
	}
}

// RunServer serves s on ln until ctx is cancelled (typically by SIGINT
// or SIGTERM), then drains: in-flight requests run to completion —
// bounded by grace — before the listener closes and RunServer returns.
// A nil error means a clean drain; context.DeadlineExceeded means the
// grace period expired with requests still in flight (they were then
// cut off).
func RunServer(ctx context.Context, ln net.Listener, s *Server, grace time.Duration) error {
	srv := &http.Server{
		Handler: s.Handler(),
		// Slow-loris guard: a client gets one minute to deliver its
		// request. Responses are unbounded deliberately — a polyhedra
		// run on a large batch can legitimately take many minutes, and
		// cutting it off would waste the whole analysis.
		ReadTimeout: time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// Listener failed before shutdown was requested.
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if grace > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, grace)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed by now
	return err
}

// NotifyContext returns a context cancelled on SIGINT or SIGTERM — the
// signal wiring used by cmd/cssv-serve, exposed here so tests exercise
// the same code path.
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
