package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func post(t *testing.T, ts *httptest.Server, path string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestServeWarmProcess(t *testing.T) {
	src, err := os.ReadFile("../../testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{CacheDir: t.TempDir(), Workers: 1}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: resp=%v err=%v", resp, err)
	}

	req := Request{
		Filename: "skipline.c",
		Source:   string(src),
		Config:   RequestConfig{Cascade: true, Quiet: true},
	}
	var cold, warm Response
	post(t, ts, "/v1/analyze", req, &cold)
	if cold.Error != "" || cold.ExitCode != 1 || cold.Messages != 1 {
		t.Fatalf("cold response: %+v", cold)
	}
	if !strings.Contains(cold.Output, "precondition of SkipLine may be violated") {
		t.Errorf("cold output missing the expected message:\n%s", cold.Output)
	}
	post(t, ts, "/v1/analyze", req, &warm)
	if warm.Output != cold.Output || warm.ExitCode != cold.ExitCode {
		t.Errorf("warm response differs from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	var stats Stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests != 2 || stats.CacheHits == 0 || stats.CacheStores == 0 {
		t.Errorf("stats after warm run: %+v", stats)
	}
}

func TestServeBatchAndErrors(t *testing.T) {
	src, err := os.ReadFile("../../testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Workers: 1}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := BatchRequest{Requests: []Request{
		{Filename: "skipline.c", Source: string(src), Config: RequestConfig{Cascade: true, Quiet: true}},
		{Filename: "broken.c", Source: "void f( {", Config: RequestConfig{}},
	}}
	var resp BatchResponse
	post(t, ts, "/v1/batch", batch, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Messages != 1 {
		t.Errorf("batch result 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[1].ExitCode != 2 {
		t.Errorf("batch result 1 should be a parse failure: %+v", resp.Results[1])
	}

	if r, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader("{not json")); err != nil || r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: resp=%v err=%v", r, err)
	}
	if r, err := http.Get(ts.URL + "/v1/analyze"); err != nil || r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: resp=%v err=%v", r, err)
	}

	// Rejected HTTP requests never reach the analyzer: only the two
	// batch jobs count, one of which failed to parse.
	if got := srv.Snapshot(); got.Requests != 2 || got.Failures != 1 {
		t.Errorf("snapshot: %+v", got)
	}
}
