package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func post(t *testing.T, ts *httptest.Server, path string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestServeWarmProcess(t *testing.T) {
	src, err := os.ReadFile("../../testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{CacheDir: t.TempDir(), Workers: 1}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: resp=%v err=%v", resp, err)
	}

	req := Request{
		Filename: "skipline.c",
		Source:   string(src),
		Config:   RequestConfig{Cascade: true, Quiet: true},
	}
	var cold, warm Response
	post(t, ts, "/v1/analyze", req, &cold)
	if cold.Error != "" || cold.ExitCode != 1 || cold.Messages != 1 {
		t.Fatalf("cold response: %+v", cold)
	}
	if !strings.Contains(cold.Output, "precondition of SkipLine may be violated") {
		t.Errorf("cold output missing the expected message:\n%s", cold.Output)
	}
	post(t, ts, "/v1/analyze", req, &warm)
	if warm.Output != cold.Output || warm.ExitCode != cold.ExitCode {
		t.Errorf("warm response differs from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	var stats Stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests != 2 || stats.CacheHits == 0 || stats.CacheStores == 0 {
		t.Errorf("stats after warm run: %+v", stats)
	}
}

func TestServeBatchAndErrors(t *testing.T) {
	src, err := os.ReadFile("../../testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Workers: 1}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := BatchRequest{Requests: []Request{
		{Filename: "skipline.c", Source: string(src), Config: RequestConfig{Cascade: true, Quiet: true}},
		{Filename: "broken.c", Source: "void f( {", Config: RequestConfig{}},
	}}
	var resp BatchResponse
	post(t, ts, "/v1/batch", batch, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Messages != 1 {
		t.Errorf("batch result 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[1].ExitCode != 2 {
		t.Errorf("batch result 1 should be a parse failure: %+v", resp.Results[1])
	}

	if r, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader("{not json")); err != nil || r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: resp=%v err=%v", r, err)
	}
	if r, err := http.Get(ts.URL + "/v1/analyze"); err != nil || r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: resp=%v err=%v", r, err)
	}

	// Rejected HTTP requests never reach the analyzer: only the two
	// batch jobs count, one of which failed to parse.
	if got := srv.Snapshot(); got.Requests != 2 || got.Failures != 1 {
		t.Errorf("snapshot: %+v", got)
	}
}

func TestServeBodyLimit(t *testing.T) {
	srv := &Server{Workers: 1, MaxRequestBytes: 1024}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big, err := json.Marshal(Request{Filename: "big.c", Source: strings.Repeat("x", 4096)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A request inside the bound still works.
	var out Response
	post(t, ts, "/v1/analyze", Request{Filename: "ok.c", Source: "void f(void) { }"}, &out)
	if out.Error != "" || out.ExitCode != 0 {
		t.Fatalf("small request after rejection: %+v", out)
	}
	// The rejected body never reached the analyzer.
	if got := srv.Snapshot(); got.Requests != 1 {
		t.Errorf("requests = %d, want 1", got.Requests)
	}
}

func TestRunServerGracefulShutdown(t *testing.T) {
	src, err := os.ReadFile("../../testdata/running/skipline.c")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Workers: 1}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- RunServer(ctx, ln, srv, 30*time.Second) }()

	// Launch a real analysis, then request shutdown while it is in
	// flight: the drain must let it finish and deliver the full answer.
	body, err := json.Marshal(Request{
		Filename: "skipline.c",
		Source:   string(src),
		Config:   RequestConfig{Cascade: true, Quiet: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String() + "/v1/analyze"
	type result struct {
		resp Response
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out Response
		err = json.NewDecoder(resp.Body).Decode(&out)
		inflight <- result{resp: out, err: err}
	}()

	// Wait until the request is being served before cancelling, so the
	// shutdown genuinely races an in-flight analysis.
	for srv.Snapshot().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request cut off by shutdown: %v", r.err)
	}
	if r.resp.Error != "" || r.resp.Messages != 1 {
		t.Errorf("in-flight response: %+v", r.resp)
	}
	if err := <-done; err != nil {
		t.Errorf("RunServer: %v", err)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
