package analysis

import (
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
)

// buildLoop constructs the canonical counting loop
//
//	x := 0
//	head: if (x >= n) goto end
//	assert(x <= 9)            // holds only when n <= 10 is assumed
//	x := x + 1
//	goto head
//	end: assert(x >= 0)
func buildLoop(assumeN bool) *ip.Program {
	p := ip.New("loop")
	x := p.Space.Var("x")
	n := p.Space.Var("n")
	ge := func(e linear.Expr) linear.Constraint { return linear.NewGe(e) }

	if assumeN {
		// n <= 10
		e := linear.ConstExpr(10)
		e = e.Sub(linear.VarExpr(n))
		p.Emit(&ip.Assume{C: ip.Single(ge(e))})
	}
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&ip.Label{Name: "head"})
	// if (x >= n) goto end
	cond := linear.VarExpr(x).Sub(linear.VarExpr(n))
	p.Emit(&ip.IfGoto{C: ip.Single(ge(cond)), Target: "end"})
	// assert(x <= 9)
	nine := linear.ConstExpr(9)
	nine = nine.Sub(linear.VarExpr(x))
	p.Emit(&ip.Assert{C: ip.Single(ge(nine)), Msg: "x <= 9"})
	// x := x + 1
	inc := linear.VarExpr(x)
	inc.AddConst(1)
	p.Emit(&ip.Assign{V: x, E: inc})
	p.Emit(&ip.Goto{Target: "head"})
	p.Emit(&ip.Label{Name: "end"})
	// assert(x >= 0): the loop counter never goes negative.
	p.Emit(&ip.Assert{C: ip.Single(ge(linear.VarExpr(x))), Msg: "x >= 0"})
	return p
}

func TestEngineLoopInvariant(t *testing.T) {
	res, err := Analyze(buildLoop(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("unexpected violation: %s", v.Msg)
	}
}

func TestEngineDetectsUnboundedLoop(t *testing.T) {
	// Without n <= 10 the in-loop assert x <= 9 must fail, and the exit
	// assert x >= 0 must still hold (widening keeps the lower bound).
	res, err := Analyze(buildLoop(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		for _, v := range res.Violations {
			t.Logf("violation: %s", v.Msg)
		}
		t.Fatalf("want exactly 1 violation, got %d", len(res.Violations))
	}
	if res.Violations[0].Msg != "x <= 9" {
		t.Errorf("wrong assert flagged: %s", res.Violations[0].Msg)
	}
	if res.Violations[0].CounterExample == nil {
		t.Error("no counter-example produced")
	}
}

func TestEngineHavocAndAssume(t *testing.T) {
	p := ip.New("t")
	x := p.Space.Var("x")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(5)})
	p.Emit(&ip.Havoc{V: x})
	// assert(x == 5) must now fail.
	e := linear.VarExpr(x)
	e.AddConst(-5)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewEq(e)), Msg: "x == 5"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("havoc not applied: %d violations", len(res.Violations))
	}
}

func TestEngineNondeterministicBranch(t *testing.T) {
	// if (unknown) x := 1 else x := 2; assert(1 <= x <= 2).
	p := ip.New("t")
	x := p.Space.Var("x")
	p.Emit(&ip.IfGoto{Target: "other"})
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(1)})
	p.Emit(&ip.Goto{Target: "join"})
	p.Emit(&ip.Label{Name: "other"})
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(2)})
	p.Emit(&ip.Label{Name: "join"})
	lo := linear.VarExpr(x)
	lo.AddConst(-1)
	hi := linear.ConstExpr(2)
	hi = hi.Sub(linear.VarExpr(x))
	p.Emit(&ip.Assert{C: ip.Conj(linear.NewGe(lo), linear.NewGe(hi)), Msg: "1<=x<=2"})
	exact := linear.VarExpr(x)
	exact.AddConst(-1)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewEq(exact)), Msg: "x==1"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Msg != "x==1" {
		t.Errorf("violations: %+v", res.Violations)
	}
}

func TestEngineUnverifiableAssert(t *testing.T) {
	p := ip.New("t")
	p.Emit(&ip.Assert{C: ip.False(), Msg: "opaque", Unverifiable: true})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || !res.Violations[0].Unverifiable {
		t.Errorf("unverifiable assert mishandled: %+v", res.Violations)
	}
}

func TestEngineUnreachableAssertSilent(t *testing.T) {
	p := ip.New("t")
	x := p.Space.Var("x")
	p.Emit(&ip.Assume{C: ip.False()})
	e := linear.VarExpr(x)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(e)), Msg: "dead"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("assert in unreachable code reported: %+v", res.Violations)
	}
}

func TestEngineDomains(t *testing.T) {
	// The relational loop invariant holds only under polyhedra/zone: after
	// y := x (copy), assert x - y == 0 across a havocked context.
	mk := func() *ip.Program {
		p := ip.New("t")
		x := p.Space.Var("x")
		y := p.Space.Var("y")
		p.Emit(&ip.Havoc{V: x})
		p.Emit(&ip.Assign{V: y, E: linear.VarExpr(x)})
		diff := linear.VarExpr(x).Sub(linear.VarExpr(y))
		p.Emit(&ip.Assert{C: ip.Single(linear.NewEq(diff)), Msg: "x == y"})
		return p
	}
	for _, tc := range []struct {
		dom  Domain
		want int
	}{
		{PolyDomain{}, 0},
		{ZoneDomain{}, 0},
		{IntervalDomain{}, 1}, // non-relational: cannot prove x == y
	} {
		res, err := Analyze(mk(), Options{Domain: tc.dom})
		if err != nil {
			t.Fatalf("%s: %v", tc.dom.Name(), err)
		}
		if len(res.Violations) != tc.want {
			t.Errorf("%s: %d violations, want %d", tc.dom.Name(), len(res.Violations), tc.want)
		}
	}
}

func TestFormatViolationRendering(t *testing.T) {
	p := buildLoop(false)
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violation to format")
	}
	out := FormatViolation(res.Violations[0], p.Space)
	if !strings.Contains(out, "may be violated") || !strings.Contains(out, "x =") {
		t.Errorf("report:\n%s", out)
	}
}
