package analysis

import (
	"math/big"
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
)

// TestCounterExampleIntegralSnapping: the bad region 0 <= x <= 10 has the
// integral lex-min corner x = 0, so the counter-example must be integral.
func TestCounterExampleIntegralSnapping(t *testing.T) {
	p := ip.New("t")
	x := p.Space.Var("x")
	lo := linear.NewGe(linear.VarExpr(x)) // x >= 0
	hi := linear.ConstExpr(10)
	hi = hi.Sub(linear.VarExpr(x)) // 10 - x >= 0
	p.Emit(&ip.Assume{C: ip.Conj(lo, linear.NewGe(hi))})
	// assert(x >= 1): violated by x = 0 only.
	one := linear.VarExpr(x)
	one.AddConst(-1)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(one)), Msg: "x >= 1"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(res.Violations))
	}
	v := res.Violations[0]
	if !v.CounterExampleIntegral {
		t.Errorf("integral witness x = 0 not marked integral: %v", v.CounterExample)
	}
	got := v.CounterExample["x"]
	if got == nil || got.Cmp(new(big.Rat)) != 0 {
		t.Errorf("counter-example x = %v, want 0", got)
	}
}

// TestCounterExampleRationalOnly: assume(2x - 2y = 1) admits no integer
// point at all, so the bad region of the (violated) assert contains only
// rational witnesses and the violation must be marked non-integral.
func TestCounterExampleRationalOnly(t *testing.T) {
	p := ip.New("t")
	x := p.Space.Var("x")
	y := p.Space.Var("y")
	diff := linear.NewExpr()
	diff.AddTerm(x, 2)
	diff.AddTerm(y, -2)
	diff.AddConst(-1) // 2x - 2y - 1 = 0
	bounds := func(v int) []linear.Constraint {
		hi := linear.ConstExpr(3)
		hi = hi.Sub(linear.VarExpr(v))
		return []linear.Constraint{
			linear.NewGe(linear.VarExpr(v)), // v >= 0
			linear.NewGe(hi),                // v <= 3
		}
	}
	conj := append([]linear.Constraint{linear.NewEq(diff)}, bounds(x)...)
	conj = append(conj, bounds(y)...)
	p.Emit(&ip.Assume{C: ip.DNF{conj}})
	// assert(2x - 2y >= 2): always violated (the region has 2x - 2y = 1),
	// and its integer negation 2x - 2y <= 1 keeps the fractional region.
	c := linear.NewExpr()
	c.AddTerm(x, 2)
	c.AddTerm(y, -2)
	c.AddConst(-2)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(c)), Msg: "2x - 2y >= 2"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(res.Violations))
	}
	v := res.Violations[0]
	if v.CounterExampleIntegral {
		t.Errorf("rational-only witness marked integral: %v", v.CounterExample)
	}
	fractional := false
	for _, val := range v.CounterExample {
		if !val.IsInt() {
			fractional = true
		}
	}
	if !fractional {
		t.Errorf("expected a fractional coordinate in %v", v.CounterExample)
	}
}

// TestCounterExampleSnapsInsideRegion: the fractional lex-min corner of
// 1/2 <= x <= 5/2 (from 2x >= 1, 5 - 2x >= 0) must snap to the integral
// point x = 1 inside the region, not report 1/2.
func TestCounterExampleSnapsInsideRegion(t *testing.T) {
	p := ip.New("t")
	x := p.Space.Var("x")
	lo := linear.NewExpr()
	lo.AddTerm(x, 2)
	lo.AddConst(-1) // 2x - 1 >= 0
	hi := linear.NewExpr()
	hi.AddTerm(x, -2)
	hi.AddConst(5) // 5 - 2x >= 0
	p.Emit(&ip.Assume{C: ip.Conj(linear.NewGe(lo), linear.NewGe(hi))})
	// assert(x >= 100): everything in the region violates it.
	big100 := linear.VarExpr(x)
	big100.AddConst(-100)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(big100)), Msg: "x >= 100"})
	res, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(res.Violations))
	}
	v := res.Violations[0]
	if !v.CounterExampleIntegral {
		t.Fatalf("region contains integers but witness is non-integral: %v", v.CounterExample)
	}
	got := v.CounterExample["x"]
	if got == nil || !got.IsInt() {
		t.Fatalf("counter-example x = %v is not integral", got)
	}
	if got.Num().Int64() < 1 || got.Num().Int64() > 2 {
		t.Errorf("snapped witness x = %v outside [1, 2]", got)
	}
}

// TestCertifyResultPlainRun: certificates from a plain Analyze run over the
// canonical loop verify, and cover exactly the discharged checks.
func TestCertifyResultPlainRun(t *testing.T) {
	opts := Options{Certify: true}
	res, err := Analyze(buildLoop(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
	certs := CertifyResult(res, opts)
	if len(certs) != 2 {
		t.Fatalf("want certificates for both asserts, got %d", len(certs))
	}
	for _, cert := range certs {
		if err := cert.Verify(); err != nil {
			t.Errorf("certificate for %q rejected: %v", cert.Check.Msg, err)
		}
	}
}

// TestCertifyResultSkipsViolated: the violated check gets no certificate.
func TestCertifyResultSkipsViolated(t *testing.T) {
	opts := Options{Certify: true}
	res, err := Analyze(buildLoop(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(res.Violations))
	}
	certs := CertifyResult(res, opts)
	if len(certs) != 1 {
		t.Fatalf("want 1 certificate, got %d", len(certs))
	}
	if certs[0].Check.Msg != "x >= 0" {
		t.Errorf("certified wrong check: %q", certs[0].Check.Msg)
	}
	if err := certs[0].Verify(); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

// TestCascadeCertificates: every check the cascade discharges (across all
// tiers) carries a certificate that verifies, with correct original-index
// mapping.
func TestCascadeCertificates(t *testing.T) {
	for _, dom := range []Domain{PolyDomain{}, ZoneDomain{}, IntervalDomain{}} {
		res, err := AnalyzeCascade(buildLoop(true), Options{Domain: dom, Certify: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("[%s] unexpected violations: %v", dom.Name(), res.Violations)
		}
		if len(res.Certificates) != 2 {
			t.Fatalf("[%s] want 2 certificates, got %d", dom.Name(), len(res.Certificates))
		}
		orig := buildLoop(true)
		for _, cert := range res.Certificates {
			if err := cert.Verify(); err != nil {
				t.Errorf("[%s] certificate for %q rejected: %v", dom.Name(), cert.Check.Msg, err)
			}
			// The mapped-back index must point at an assert with the same
			// message in the original program.
			a, ok := orig.Stmts[cert.Check.OrigIndex].(*ip.Assert)
			if !ok || a.Msg != cert.Check.Msg {
				t.Errorf("[%s] OrigIndex %d does not name assert %q",
					dom.Name(), cert.Check.OrigIndex, cert.Check.Msg)
			}
		}
	}
}

// TestCascadeUnreachableCertificate: a CFG-unreachable assert gets an
// unreachability certificate that verifies on the original program.
func TestCascadeUnreachableCertificate(t *testing.T) {
	p := ip.New("dead")
	x := p.Space.Var("x")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&ip.Goto{Target: "end"})
	bad := linear.VarExpr(x)
	bad.AddConst(-100)
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(bad)), Msg: "dead check"})
	p.Emit(&ip.Label{Name: "end"})
	res, err := AnalyzeCascade(p, Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unreachable assert reported: %v", res.Violations)
	}
	if len(res.Certificates) != 1 {
		t.Fatalf("want 1 certificate, got %d", len(res.Certificates))
	}
	cert := res.Certificates[0]
	if !cert.Unreachable || cert.Check.Tier != "unreachable" {
		t.Errorf("certificate not marked unreachable: %+v", cert.Check)
	}
	if err := cert.Verify(); err != nil {
		t.Errorf("unreachability certificate rejected: %v", err)
	}
}
