package analysis

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/zone"
)

// buildSumProgram needs the relational bound x + y <= 10 to prove its
// assert: with neither variable individually bounded, intervals learn
// nothing, zones cannot represent the sum, and only the octagon (or the
// polyhedra) tier discharges the check.
func buildSumProgram() *ip.Program {
	p := ip.New("oct")
	x := p.Space.Var("x")
	y := p.Space.Var("y")
	sum := linear.ConstExpr(10)
	sum.AddTerm(x, -1)
	sum.AddTerm(y, -1) // 10 - x - y >= 0
	p.Emit(&ip.Assume{C: ip.Single(linear.NewGe(sum))})
	slack := linear.ConstExpr(12)
	slack.AddTerm(x, -1)
	slack.AddTerm(y, -1) // 12 - x - y >= 0
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(slack)), Msg: "x + y <= 12"})
	return p
}

// TestCascadeOctagonTier: with the octagon tier enabled, the symmetric
// check is discharged before the polyhedra build, its provenance names
// the octagon, and its certificate survives the independent
// Fourier–Motzkin verifier. Without the tier, the same check falls
// through to the final domain.
func TestCascadeOctagonTier(t *testing.T) {
	res, err := AnalyzeCascade(buildSumProgram(), Options{
		Octagon:    true,
		ZoneConfig: &zone.Config{},
		Certify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
	if len(res.Checks) != 1 || res.Checks[0].Tier != "octagon" {
		t.Fatalf("check provenance = %+v, want tier octagon", res.Checks)
	}
	if len(res.Certificates) != 1 {
		t.Fatalf("want 1 certificate, got %d", len(res.Certificates))
	}
	cert := res.Certificates[0]
	if cert.Check.Tier != "octagon" {
		t.Errorf("certificate tier = %q, want octagon", cert.Check.Tier)
	}
	if err := cert.Verify(); err != nil {
		t.Errorf("octagon certificate rejected by the FM verifier: %v", err)
	}
	// The tier list must show octagon between zone and polyhedra.
	var order []string
	for _, ts := range res.Tiers {
		order = append(order, ts.Domain)
	}
	if len(order) != 3 || order[0] != "interval" || order[1] != "zone" || order[2] != "octagon" {
		t.Errorf("tier order = %v, want interval, zone, octagon (polyhedra skipped: nothing residual)", order)
	}

	// Control: without the octagon tier only the final domain proves it.
	res2, err := AnalyzeCascade(buildSumProgram(), Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Violations) != 0 {
		t.Fatalf("control run violations: %v", res2.Violations)
	}
	if len(res2.Checks) != 1 || res2.Checks[0].Tier != "polyhedra" {
		t.Fatalf("control provenance = %+v, want tier polyhedra", res2.Checks)
	}
}

// TestCascadeOctagonSparseConfigs: the octagon tier discharges the same
// checks under every matrix representation policy and with the arena on.
func TestCascadeOctagonSparseConfigs(t *testing.T) {
	for _, cfg := range []*zone.Config{
		{Sparse: zone.SparseForce},
		{Sparse: zone.SparseOff},
		{PureBig: true},
	} {
		res, err := AnalyzeCascade(buildSumProgram(), Options{
			Octagon:    true,
			ZoneConfig: cfg,
			Certify:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 || len(res.Checks) != 1 || res.Checks[0].Tier != "octagon" {
			t.Fatalf("cfg %+v: violations=%v checks=%+v", cfg, res.Violations, res.Checks)
		}
		if err := res.Certificates[0].Verify(); err != nil {
			t.Errorf("cfg %+v: certificate rejected: %v", cfg, err)
		}
	}
}
