package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/reduce"
	"repro/internal/schedule"
)

var staticTiers = []string{"interval", "zone", "polyhedra"}

// TestScheduledStaticMatchesLegacy: with the static plan every check goes
// through the same tiers in the same order on the same residuals, so the
// scheduled path must reproduce the legacy cascade's violations and
// provenance exactly. Adaptive planning over an empty profile degenerates
// to the static plan and must match too.
func TestScheduledStaticMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		p := genIP(rng)
		legacy, err := AnalyzeCascade(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: legacy: %v", trial, err)
		}
		for _, mode := range []schedule.Mode{schedule.Static, schedule.Adaptive} {
			planner := schedule.NewPlanner(mode, staticTiers, nil)
			sched, err := AnalyzeCascade(p, Options{Planner: planner})
			if err != nil {
				t.Fatalf("trial %d: %v: %v", trial, mode, err)
			}
			if !reflect.DeepEqual(sched.Violations, legacy.Violations) {
				t.Errorf("trial %d: %v violations differ\nlegacy: %+v\nsched:  %+v",
					trial, mode, legacy.Violations, sched.Violations)
			}
			if !reflect.DeepEqual(sched.Checks, legacy.Checks) {
				t.Errorf("trial %d: %v provenance differs\nlegacy: %+v\nsched:  %+v",
					trial, mode, legacy.Checks, sched.Checks)
			}
			if len(p.Asserts()) > 0 && len(sched.Sched) == 0 {
				t.Errorf("trial %d: %v recorded no scheduling decisions", trial, mode)
			}
		}
	}
}

// TestScheduledTrainedProfileKeepsVerdicts: a profile recorded from one
// adaptive run must not change any verdict when it steers the next run —
// scheduling moves cost, never truth.
func TestScheduledTrainedProfileKeepsVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		p := genIP(rng)
		legacy, err := AnalyzeCascade(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rec := schedule.NewRecorder()
		warm := schedule.NewPlanner(schedule.Adaptive, staticTiers, nil)
		if _, err := AnalyzeCascade(p, Options{Planner: warm, Recorder: rec}); err != nil {
			t.Fatalf("trial %d: warmup: %v", trial, err)
		}
		// Replay the recording a few times so tiers cross the minAttempts
		// threshold and the planner actually changes the plan.
		prof := schedule.NewProfile()
		for i := 0; i < 8; i++ {
			prof.Merge(rec.Profile())
		}
		trained := schedule.NewPlanner(schedule.Adaptive, staticTiers, prof)
		got, err := AnalyzeCascade(p, Options{Planner: trained})
		if err != nil {
			t.Fatalf("trial %d: trained: %v", trial, err)
		}
		verdicts := func(r *CascadeResult) map[int]bool {
			m := map[int]bool{}
			for _, c := range r.Checks {
				m[c.Index] = c.Violated
			}
			return m
		}
		if !reflect.DeepEqual(verdicts(got), verdicts(legacy)) {
			t.Errorf("trial %d: trained profile changed verdicts\nlegacy: %+v\ntrained: %+v",
				trial, legacy.Checks, got.Checks)
		}
	}
}

// TestEngineTierBudget: a tripped TierToken yields the distinguished
// tier-budget cause, not the procedure-budget causes.
func TestEngineTierBudget(t *testing.T) {
	p := buildLoop(false)
	res, err := Analyze(p, Options{TierToken: budget.New(time.Time{}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != TierBudgetExhausted {
		t.Fatalf("Exhausted = %q, want %q", res.Exhausted, TierBudgetExhausted)
	}
	for _, v := range res.Violations {
		if !v.Unresolved {
			t.Errorf("tier-exhausted violation not unresolved: %+v", v)
		}
	}
	// The procedure token stays authoritative: when both trip, the
	// procedure cause wins (it is checked first).
	res, err = Analyze(p, Options{
		Token:     budget.New(time.Time{}, 1),
		TierToken: budget.New(time.Time{}, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != budget.CauseSteps {
		t.Fatalf("Exhausted = %q, want %q", res.Exhausted, budget.CauseSteps)
	}
}

// TestScheduledTierBudgetFallsThrough: a tier that overruns its scheduled
// step budget is skipped for its group — the check falls through to the
// next tier and is still decided, never reported unresolved.
func TestScheduledTierBudgetFallsThrough(t *testing.T) {
	// A loop whose body is long enough that the interval fixpoint needs
	// well over 64 worklist steps (the minimum tier budget) on the
	// check's slice.
	p := ip.New("wide-loop")
	x := p.Space.Var("x")
	n := p.Space.Var("n")
	p.Emit(&ip.Havoc{V: n})
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&ip.Label{Name: "head"})
	cond := linear.VarExpr(x).Sub(linear.VarExpr(n))
	p.Emit(&ip.IfGoto{C: ip.Single(linear.NewGe(cond)), Target: "end"})
	for i := 0; i < 80; i++ {
		inc := linear.VarExpr(x)
		inc.AddConst(1)
		p.Emit(&ip.Assign{V: x, E: inc})
	}
	p.Emit(&ip.Goto{Target: "head"})
	p.Emit(&ip.Label{Name: "end"})
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(linear.VarExpr(x))), Msg: "write through p"})

	// Recompute the check's features exactly as the scheduled path does,
	// and record a profile that hands the interval tier the minimum
	// budget (64 steps): cheap mean cost, many successes.
	pruned, _, err := reduce.PruneUnreachable(p)
	if err != nil {
		t.Fatal(err)
	}
	propagated, err := reduce.Propagate(pruned)
	if err != nil {
		t.Fatal(err)
	}
	asserts := pruned.Asserts()
	if len(asserts) != 1 {
		t.Fatalf("%d asserts, want 1", len(asserts))
	}
	sliced, _, err := reduce.Slice(propagated, []int{asserts[0]})
	if err != nil {
		t.Fatal(err)
	}
	f := schedule.Features{
		Kind:  schedule.ClassifyKind("write through p"),
		Vars:  sliced.NumVars(),
		Stmts: sliced.Size(),
		Loops: backEdgeCount(sliced),
	}
	if sliced.Size() < 70 {
		t.Fatalf("slice kept only %d stmts; too small to overrun the minimum tier budget", sliced.Size())
	}
	prof := schedule.NewProfile()
	prof.Record(f, "interval", 10, 10, 100) // mean cost 10 -> budget max(64, 40) = 64

	planner := schedule.NewPlanner(schedule.Adaptive, staticTiers, prof)
	res, err := AnalyzeCascade(p, Options{Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != "" {
		t.Fatalf("cascade exhausted (%q); tier budgets must never exhaust the run", res.Exhausted)
	}
	var sawInterval bool
	for _, ts := range res.Tiers {
		if ts.Domain == "interval" {
			sawInterval = true
			if ts.Discharged != 0 {
				t.Errorf("budgeted interval tier discharged %d; expected the budget to cut it short", ts.Discharged)
			}
		}
	}
	if !sawInterval {
		t.Error("interval tier never attempted; expected a budgeted attempt")
	}
	if len(res.Checks) != 1 {
		t.Fatalf("%d provenance records, want 1", len(res.Checks))
	}
	c := res.Checks[0]
	if c.Tier == "unresolved" || c.Tier == "interval" {
		t.Errorf("check decided by %q; want a fall-through to a later tier", c.Tier)
	}
	if c.Violated {
		t.Errorf("x >= 0 reported violated: %+v", c)
	}
}
