// Package analysis runs sound forward abstract interpretation over the
// integer programs produced by C2IP (paper §3.5): a worklist fixpoint with
// widening at loop heads and optional narrowing, followed by assert
// checking with counter-example generation (Fig. 8).
//
// The engine is parametric in the numeric abstract domain; the polyhedra
// domain of Cousot–Halbwachs is the default (as in the paper), with
// interval and zone domains available for the precision/cost ablation.
package analysis

import (
	"math/big"

	"repro/internal/linear"
	"repro/internal/polyhedra"
)

// State is an abstract element over n integer variables.
type State interface {
	// Clone returns an independent copy.
	Clone() State
	// Join returns the least upper bound (or an over-approximation).
	Join(State) State
	// Widen extrapolates from the receiver (previous iterate) to the
	// argument (next iterate).
	Widen(State) State
	// WidenSimple is a coarser widening with guaranteed finite chains; the
	// engine escalates to it when Widen refuses to stabilize.
	WidenSimple(State) State
	// MeetSystem intersects with a conjunction of constraints.
	MeetSystem(linear.System) State
	// Assign over-approximates v := e.
	Assign(v int, e linear.Expr) State
	// Havoc over-approximates v := unknown.
	Havoc(v int) State
	// Includes reports whether the argument is contained in the receiver.
	Includes(State) bool
	// IsEmpty reports unreachability.
	IsEmpty() bool
	// Entails reports whether every concrete state satisfies c.
	Entails(c linear.Constraint) bool
	// System returns a constraint representation (used for reporting and
	// contract derivation).
	System() linear.System
	// Sample returns a point inside the state, or nil when empty. Only the
	// polyhedra domain produces exact vertices; weaker domains may return
	// any contained point.
	Sample() []*big.Rat
	// Bounds returns the tightest [lo, hi] interval of variable v implied
	// by the state; nil pointers denote unboundedness. Bounds is canonical
	// — it depends only on the concretization, not on the representation —
	// which the counter-example construction relies on.
	Bounds(v int) (lo, hi *big.Rat)
	// String renders the state with variable names.
	String(sp *linear.Space) string
}

// Domain is a factory for abstract states.
type Domain interface {
	Name() string
	Universe(n int) State
	Bottom(n int) State
}

// stateKeyer is implemented by states that can produce a canonical
// value-based key of their current representation (see polyhedra.Poly.Key
// and zone.DBM.Key). Equal keys imply identical representations — hence the
// same concretization — so the engine may replay a cached Includes answer
// without losing bit-identical results. The second result is false when no
// key is available cheaply; the engine then skips the cache.
type stateKeyer interface {
	StateKey() (string, bool)
}

func stateKeyOf(s State) string {
	if k, ok := s.(stateKeyer); ok {
		if key, avail := k.StateKey(); avail {
			return key
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Polyhedra adapter

// PolyDomain is the convex-polyhedra domain (the paper's choice). Config,
// when non-nil, carries the run's ray cap, budget token and drop counter;
// the zero value is the default-configured domain.
type PolyDomain struct {
	Config *polyhedra.Config
}

// Name implements Domain.
func (PolyDomain) Name() string { return "polyhedra" }

// Universe implements Domain.
func (d PolyDomain) Universe(n int) State { return polyState{d.Config.Universe(n)} }

// Bottom implements Domain.
func (d PolyDomain) Bottom(n int) State { return polyState{d.Config.Bottom(n)} }

type polyState struct{ p *polyhedra.Poly }

func (s polyState) Clone() State { return polyState{s.p.Clone()} }
func (s polyState) Join(o State) State {
	return polyState{s.p.Join(o.(polyState).p)}
}
func (s polyState) Widen(o State) State {
	return polyState{s.p.Widen(o.(polyState).p)}
}
func (s polyState) WidenSimple(o State) State {
	return polyState{s.p.WidenSimple(o.(polyState).p)}
}
func (s polyState) MeetSystem(sys linear.System) State {
	return polyState{s.p.MeetSystem(sys)}
}
func (s polyState) Assign(v int, e linear.Expr) State {
	return polyState{s.p.Assign(v, e)}
}
func (s polyState) Havoc(v int) State { return polyState{s.p.Havoc(v)} }
func (s polyState) Includes(o State) bool {
	return s.p.Includes(o.(polyState).p)
}
func (s polyState) IsEmpty() bool                    { return s.p.IsEmpty() }
func (s polyState) Entails(c linear.Constraint) bool { return s.p.Entails(c) }
func (s polyState) System() linear.System            { return s.p.System() }
func (s polyState) Sample() []*big.Rat               { return s.p.SamplePoint() }
func (s polyState) Bounds(v int) (lo, hi *big.Rat)   { return s.p.Bounds(v) }
func (s polyState) String(sp *linear.Space) string   { return s.p.String(sp) }

// StateKey implements stateKeyer.
func (s polyState) StateKey() (string, bool) { return s.p.Key() }

// Poly exposes the underlying polyhedron (used by derivation).
func (s polyState) Poly() *polyhedra.Poly { return s.p }
