package analysis

import (
	"math/rand"
	"testing"
)

// TestCascadeSoundVsInterpreter: the tiered analysis must keep the engine's
// soundness guarantee — any assert a concrete execution violates is
// reported. Reductions only over-approximate, so this exercises the whole
// prune/propagate/slice stack against the interpreter oracle.
func TestCascadeSoundVsInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	violatedTotal := 0
	for trial := 0; trial < 60; trial++ {
		p := genIP(rng)
		concrete := map[int]bool{}
		for run := 0; run < 40; run++ {
			violated, _ := p.Exec(rng, 500)
			for _, idx := range violated {
				concrete[idx] = true
			}
		}
		if len(concrete) > 0 {
			violatedTotal++
		}
		res, err := AnalyzeCascade(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		reported := map[int]bool{}
		for _, v := range res.Violations {
			reported[v.Index] = true
		}
		for idx := range concrete {
			if !reported[idx] {
				t.Errorf("trial %d: UNSOUND: concrete violation at %d not reported by cascade\n%s",
					trial, idx, p.String())
			}
		}
	}
	if violatedTotal == 0 {
		t.Error("no generated program violated anything; test checks nothing")
	}
	t.Logf("%d/60 programs had concrete violations; cascade reported all of them", violatedTotal)
}

// TestCascadeProvenance: every assert of the input program gets exactly one
// provenance record, in program order, and the violated records line up
// with the reported violations.
func TestCascadeProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opts := Options{}
	opts.fill()
	allowed := map[string]bool{"unreachable": true, opts.Domain.Name(): true}
	for _, d := range []Domain{IntervalDomain{}, ZoneDomain{}} {
		allowed[d.Name()] = true
	}
	for trial := 0; trial < 40; trial++ {
		p := genIP(rng)
		res, err := AnalyzeCascade(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		asserts := p.Asserts()
		if len(res.Checks) != len(asserts) {
			t.Fatalf("trial %d: %d provenance records for %d asserts",
				trial, len(res.Checks), len(asserts))
		}
		violatedProv := map[int]bool{}
		for i, c := range res.Checks {
			if c.Index != asserts[i] {
				t.Errorf("trial %d: check %d records index %d, want %d (program order)",
					trial, i, c.Index, asserts[i])
			}
			if !allowed[c.Tier] {
				t.Errorf("trial %d: check %d decided by unknown tier %q", trial, i, c.Tier)
			}
			if c.Violated {
				violatedProv[c.Index] = true
			}
		}
		reported := map[int]bool{}
		for _, v := range res.Violations {
			reported[v.Index] = true
		}
		for idx := range reported {
			if !violatedProv[idx] {
				t.Errorf("trial %d: violation at %d has no violated provenance", trial, idx)
			}
		}
		for idx := range violatedProv {
			if !reported[idx] {
				t.Errorf("trial %d: provenance marks %d violated but no message reports it",
					trial, idx)
			}
		}
		// Residual checks can only shrink from tier to tier.
		prev := -1
		for ti, ts := range res.Tiers {
			if prev >= 0 && ts.Asserts > prev {
				t.Errorf("trial %d: tier %d enters with %d checks after a tier left %d",
					trial, ti, ts.Asserts, prev)
			}
			prev = ts.Asserts - ts.Discharged
			if ts.Vars > p.NumVars() || ts.Stmts > p.Size() {
				t.Errorf("trial %d: tier %d analyzed %dx%d, larger than the input %dx%d",
					trial, ti, ts.Vars, ts.Stmts, p.NumVars(), p.Size())
			}
		}
	}
}
