package analysis

import (
	"repro/internal/certify"
	"repro/internal/ip"
	"repro/internal/linear"
)

// invariantSystems exports the engine's per-point abstract states as plain
// constraint systems — the payload of a certificate. Empty states export
// an unsatisfiable system (-1 >= 0), marking proven-unreachable points.
func invariantSystems(states []State) []linear.System {
	out := make([]linear.System, len(states))
	for i, st := range states {
		out[i] = st.System()
	}
	return out
}

// CertifyResult builds a certificate for every check a plain Analyze run
// discharged (reachable, verifiable asserts with no reported violation,
// restricted to opts.CheckOnly when set). The carrier program is the
// analyzed program itself, so the certificates carry no mapping and the
// reduction passes are not in the trust chain.
func CertifyResult(res *Result, opts Options) []*certify.Certificate {
	opts.fill()
	violated := map[int]bool{}
	for _, v := range res.Violations {
		violated[v.Index] = true
	}
	inv := invariantSystems(res.States)
	names := res.Prog.Space.Names()
	var certs []*certify.Certificate
	for _, idx := range res.Prog.Asserts() {
		if opts.CheckOnly != nil && !opts.CheckOnly[idx] {
			continue
		}
		if violated[idx] {
			continue
		}
		a := res.Prog.Stmts[idx].(*ip.Assert)
		if a.Unverifiable {
			continue // always reported, never discharged; defensive
		}
		certs = append(certs, &certify.Certificate{
			Check: certify.Check{
				OrigIndex: idx, Pos: a.Pos, Msg: a.Msg,
				Tier: opts.Domain.Name(),
			},
			Prog:      res.Prog,
			AssertIdx: idx,
			Inv:       inv,
			VarNames:  names,
		})
	}
	return certs
}
