package analysis

import (
	"time"

	"repro/internal/certify"
	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/reduce"
	"repro/internal/schedule"
)

// TierStat reports one tier of the cascade.
type TierStat struct {
	// Domain is the tier's abstract domain name.
	Domain string
	// Vars and Stmts measure the sliced sub-program the tier analyzed.
	Vars, Stmts int
	// Asserts is the number of residual checks entering the tier;
	// Discharged how many the tier proved.
	Asserts, Discharged int
	// Iterations and CPU are the tier's fixpoint cost.
	Iterations int
	CPU        time.Duration
}

// CheckProvenance records, for one assert, which tier decided it and on
// how small a sub-program.
type CheckProvenance struct {
	// Index is the statement index in the analyzed (original) program.
	Index int
	Pos   clex.Pos
	Msg   string
	// Tier is the domain that discharged the check, or the final domain
	// when Violated.
	Tier string
	// Violated marks checks the final tier could not prove (reported as
	// messages).
	Violated bool
	// Vars and Stmts are the dimensions of the sliced sub-program in which
	// the check was decided.
	Vars, Stmts int
}

// CascadeResult is the outcome of a tiered analysis.
type CascadeResult struct {
	// Violations is the final message set, with indices relative to the
	// original program. StateSystem and counter-examples are computed in
	// the residual slice; counter-example variables keep their original
	// names.
	Violations []Violation
	// Iterations sums the worklist steps of every tier.
	Iterations int
	// Tiers describes each tier that ran, cheapest first.
	Tiers []TierStat
	// Checks records per-assert provenance in program order.
	Checks []CheckProvenance
	// Residual is the sliced sub-program the final tier analyzed (nil when
	// the cheap tiers discharged everything); ResidualVars/ResidualStmts
	// are its dimensions.
	Residual      *ip.Program
	ResidualVars  int
	ResidualStmts int
	// Certificates carries, under Options.Certify, one certificate per
	// discharged check: the discharging tier's per-point invariant systems
	// over its sliced sub-program, with statement indices mapped back to
	// the original program, ready for the independent Fourier–Motzkin
	// verifier (certify.Certificate.Verify). Checks removed by CFG pruning
	// get an unreachability certificate over the original program.
	Certificates []*certify.Certificate
	// Exhausted names the budget that ran out mid-cascade, or is empty.
	// Checks still residual at that point are reported as unresolved
	// violations (provenance tier "unresolved"); checks already
	// discharged by completed cheaper tiers keep their verdicts — those
	// tiers ran to a sound fixpoint.
	Exhausted string
	// Sched records the plans the scheduler applied, one per group of
	// checks sharing a plan (nil when the fixed cascade ran).
	Sched []schedule.Decision
}

// AnalyzeCascade runs the tiered check discharge of the reduction design:
// the IP is pruned of unreachable nodes, then analyzed by the interval
// domain first, the zone domain second, the octagon domain third (when
// Options.Octagon is set), and the configured final domain (polyhedra by
// default) last. Each tier sees only the backward slice of
// the asserts every cheaper tier failed to prove, with constant/copy
// propagation additionally applied in the cheap tiers. Soundness: every
// tier is sound and every reduction over-approximates, so a check
// discharged early truly holds; precision: the final domain remains the
// authority on the residual checks, which it analyzes without propagation
// so that messages and counter-examples match a plain Analyze run.
func AnalyzeCascade(p *ip.Program, opts Options) (*CascadeResult, error) {
	opts.fill()
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	pruned, pm, err := reduce.PruneUnreachable(p)
	if err != nil {
		return nil, err
	}
	propagated, err := reduce.Propagate(pruned)
	if err != nil {
		return nil, err
	}

	final := opts.Domain
	cheap := []Domain{IntervalDomain{}, ZoneDomain{Config: opts.ZoneConfig}}
	if opts.Octagon {
		cheap = append(cheap, OctagonDomain{Config: opts.ZoneConfig})
	}
	var tiers []Domain
	for _, d := range cheap {
		if d.Name() != final.Name() {
			tiers = append(tiers, d)
		}
	}
	tiers = append(tiers, final)

	if opts.Planner != nil && opts.Planner.Mode() != schedule.Off {
		return analyzeScheduled(p, opts, pruned, pm, propagated, tiers)
	}

	out := &CascadeResult{}
	decided := map[int]CheckProvenance{} // keyed by pruned-program index
	residual := pruned.Asserts()
	// markUnresolved conservatively reports every still-residual check as
	// a potential error once the budget is exhausted.
	markUnresolved := func(cause string) {
		out.Exhausted = cause
		for _, a := range residual {
			ast := pruned.Stmts[a].(*ip.Assert)
			decided[a] = CheckProvenance{
				Index: pm[a], Pos: ast.Pos, Msg: ast.Msg,
				Tier: "unresolved", Violated: true,
			}
			out.Violations = append(out.Violations, Violation{
				Index: pm[a], Msg: ast.Msg, Pos: ast.Pos, Unresolved: true,
			})
		}
		residual = nil
	}
	for ti, dom := range tiers {
		isFinal := ti == len(tiers)-1
		if len(residual) == 0 {
			break
		}
		if opts.Token.Exhausted() {
			markUnresolved(opts.Token.Cause())
			break
		}
		base := propagated
		if isFinal {
			base = pruned
		}
		sliced, sm, err := reduce.Slice(base, residual)
		if err != nil {
			return nil, err
		}
		checkOnly := map[int]bool{}
		for _, a := range residual {
			checkOnly[sm.StmtOf[a]] = true
		}
		start := time.Now()
		res, err := Analyze(sliced, Options{
			Domain:          dom,
			WideningDelay:   opts.WideningDelay,
			NarrowingPasses: opts.NarrowingPasses,
			CheckOnly:       checkOnly,
			Token:           opts.Token,
		})
		if err != nil {
			return nil, err
		}
		if res.Exhausted != "" {
			// The aborted tier's partial work (including its iteration
			// count, which depends on where the deadline landed) is
			// discarded; everything still residual becomes unresolved.
			markUnresolved(res.Exhausted)
			break
		}
		tierCPU := time.Since(start)
		out.Iterations += res.Iterations

		violated := map[int]bool{}
		for _, v := range res.Violations {
			violated[v.Index] = true
		}
		// Certificate payload, shared by every check this tier discharged:
		// the tier's per-point invariants over its sliced sub-program, with
		// statement indices mapped back to the original program.
		var certInv []linear.System
		var certOrig []int
		var certNames []string
		if opts.Certify {
			certInv = invariantSystems(res.States)
			certOrig = make([]int, len(sm.Stmt))
			for i, mid := range sm.Stmt {
				certOrig[i] = pm[mid]
			}
			certNames = sliced.Space.Names()
		}
		var next []int
		for _, a := range residual {
			if violated[sm.StmtOf[a]] {
				next = append(next, a)
				continue
			}
			ast := pruned.Stmts[a].(*ip.Assert)
			decided[a] = CheckProvenance{
				Index: pm[a], Pos: ast.Pos, Msg: ast.Msg,
				Tier: dom.Name(), Vars: sliced.NumVars(), Stmts: sliced.Size(),
			}
			if opts.Certify {
				out.Certificates = append(out.Certificates, &certify.Certificate{
					Check: certify.Check{
						OrigIndex: pm[a], Pos: ast.Pos, Msg: ast.Msg,
						Tier: dom.Name(),
					},
					Prog:      sliced,
					AssertIdx: sm.StmtOf[a],
					Inv:       certInv,
					OrigStmt:  certOrig,
					VarNames:  certNames,
				})
			}
		}
		out.Tiers = append(out.Tiers, TierStat{
			Domain:     dom.Name(),
			Vars:       sliced.NumVars(),
			Stmts:      sliced.Size(),
			Asserts:    len(residual),
			Discharged: len(residual) - len(next),
			Iterations: res.Iterations,
			CPU:        tierCPU,
		})
		if isFinal {
			out.Residual = sliced
			out.ResidualVars = sliced.NumVars()
			out.ResidualStmts = sliced.Size()
			for _, v := range res.Violations {
				prunedIdx := sm.Stmt[v.Index]
				ast := pruned.Stmts[prunedIdx].(*ip.Assert)
				decided[prunedIdx] = CheckProvenance{
					Index: pm[prunedIdx], Pos: ast.Pos, Msg: ast.Msg,
					Tier: dom.Name(), Violated: true,
					Vars: sliced.NumVars(), Stmts: sliced.Size(),
				}
				v.Index = pm[prunedIdx]
				out.Violations = append(out.Violations, v)
			}
		}
		residual = next
	}

	assembleChecks(p, pm, decided, opts.Certify, out)
	return out, nil
}

// assembleChecks records per-assert provenance in program order;
// unreachable asserts (pruned away) are recorded as discharged by the
// pruning pass. Shared by the legacy cascade and the scheduled path.
func assembleChecks(p *ip.Program, pm reduce.StmtMap, decided map[int]CheckProvenance, certifyOn bool, out *CascadeResult) {
	for _, idx := range p.Asserts() {
		found := false
		for pi, orig := range pm {
			if orig == idx {
				if prov, ok := decided[pi]; ok {
					out.Checks = append(out.Checks, prov)
				}
				found = true
				break
			}
		}
		if !found {
			ast := p.Stmts[idx].(*ip.Assert)
			out.Checks = append(out.Checks, CheckProvenance{
				Index: idx, Pos: ast.Pos, Msg: ast.Msg, Tier: "unreachable",
			})
			if certifyOn {
				// Pruning discharged the check as CFG-unreachable; the
				// verifier re-derives reachability on the original program.
				out.Certificates = append(out.Certificates, &certify.Certificate{
					Check: certify.Check{
						OrigIndex: idx, Pos: ast.Pos, Msg: ast.Msg,
						Tier: "unreachable",
					},
					Prog:        p,
					AssertIdx:   idx,
					Unreachable: true,
				})
			}
		}
	}
}
