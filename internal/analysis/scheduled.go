package analysis

import (
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/certify"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/reduce"
	"repro/internal/schedule"
)

// analyzeScheduled is the scheduler-driven variant of the tiered check
// discharge, entered from AnalyzeCascade when Options.Planner is active.
// It differs from the fixed cascade in shape, not in authority:
//
//   - every residual check gets its own backward slice first, from which
//     static Features (kind, slice dimensions, loop count) are computed;
//   - the Planner maps features to a Plan — a tier order plus per-tier
//     step budgets — and checks sharing a plan are grouped so each tier
//     still runs once per group, not once per check;
//   - a tier whose step budget runs out is skipped for its group (the
//     checks fall through to the next tier in the plan; the group's final
//     tier is always last and never budgeted), so scheduling moves cost
//     around but can never turn a provable check into a report;
//   - outcomes are recorded per (feature bucket, tier) into
//     Options.Recorder for the cross-run profile.
//
// Everything downstream — discharge bookkeeping, certificates, unresolved
// degradation on procedure-budget exhaustion, provenance assembly — is
// the legacy cascade's logic applied per group. Violations are sorted by
// original statement index at the end, so the report order matches the
// fixed cascade's program-order reporting.
func analyzeScheduled(p *ip.Program, opts Options, pruned *ip.Program, pm reduce.StmtMap, propagated *ip.Program, tiers []Domain) (*CascadeResult, error) {
	domOf := make(map[string]Domain, len(tiers))
	for _, d := range tiers {
		domOf[d.Name()] = d
	}
	finalName := tiers[len(tiers)-1].Name()

	out := &CascadeResult{}
	decided := map[int]CheckProvenance{} // keyed by pruned-program index

	// Plan each check from its individual slice, then group checks that
	// share a plan. Group order follows the first member's assert index,
	// so the whole schedule is a pure function of the program + profile.
	type group struct {
		plan   schedule.Plan
		checks []int // pruned-program assert indices, ascending
	}
	feats := map[int]schedule.Features{}
	groups := map[string]*group{}
	var groupOrder []string
	for _, a := range pruned.Asserts() {
		sliced, _, err := reduce.Slice(propagated, []int{a})
		if err != nil {
			return nil, err
		}
		ast := pruned.Stmts[a].(*ip.Assert)
		f := schedule.Features{
			Kind:  schedule.ClassifyKind(ast.Msg),
			Vars:  sliced.NumVars(),
			Stmts: sliced.Size(),
			Loops: backEdgeCount(sliced),
		}
		feats[a] = f
		plan := opts.Planner.Plan(f)
		key := plan.Key()
		g := groups[key]
		if g == nil {
			g = &group{plan: plan}
			groups[key] = g
			groupOrder = append(groupOrder, key)
		}
		g.checks = append(g.checks, a)
	}

	// markUnresolved conservatively reports the given still-residual
	// checks once the procedure budget is exhausted (same degradation as
	// the fixed cascade: completed tiers keep their verdicts).
	markUnresolved := func(cause string, checks []int) {
		out.Exhausted = cause
		for _, a := range checks {
			ast := pruned.Stmts[a].(*ip.Assert)
			decided[a] = CheckProvenance{
				Index: pm[a], Pos: ast.Pos, Msg: ast.Msg,
				Tier: "unresolved", Violated: true,
			}
			out.Violations = append(out.Violations, Violation{
				Index: pm[a], Msg: ast.Msg, Pos: ast.Pos, Unresolved: true,
			})
		}
	}

	var cause string // procedure-budget exhaustion, latched across groups
	for _, key := range groupOrder {
		g := groups[key]
		out.Sched = append(out.Sched, schedule.Decision{
			Checks:  origIndices(g.checks, pm),
			Order:   g.plan.Order,
			Budgets: g.plan.Budgets,
			Source:  g.plan.Source,
		})
		residual := g.checks
		if cause != "" {
			markUnresolved(cause, residual)
			continue
		}
		for ti, tierName := range g.plan.Order {
			if len(residual) == 0 {
				break
			}
			if opts.Token.Exhausted() {
				cause = opts.Token.Cause()
				break
			}
			dom := domOf[tierName]
			isFinal := tierName == finalName
			base := propagated
			if isFinal {
				base = pruned
			}
			sliced, sm, err := reduce.Slice(base, residual)
			if err != nil {
				return nil, err
			}
			checkOnly := map[int]bool{}
			for _, a := range residual {
				checkOnly[sm.StmtOf[a]] = true
			}
			var tierTok *budget.Token
			if !isFinal && g.plan.Budgets[ti] > 0 {
				tierTok = budget.New(time.Time{}, g.plan.Budgets[ti])
			}
			start := time.Now()
			res, err := Analyze(sliced, Options{
				Domain:          dom,
				WideningDelay:   opts.WideningDelay,
				NarrowingPasses: opts.NarrowingPasses,
				CheckOnly:       checkOnly,
				Token:           opts.Token,
				TierToken:       tierTok,
			})
			if err != nil {
				return nil, err
			}
			if res.Exhausted == TierBudgetExhausted {
				// The tier overran its scheduled step budget: skip it for
				// this group, the checks fall through to the next tier.
				// Unlike a deadline, the cut point is a deterministic step
				// count, so the spent iterations still count toward the
				// stats and the profile (as attempts with no discharge).
				out.Iterations += res.Iterations
				cutCPU := time.Since(start)
				out.Tiers = append(out.Tiers, TierStat{
					Domain: tierName,
					Vars:   sliced.NumVars(), Stmts: sliced.Size(),
					Asserts:    len(residual),
					Iterations: res.Iterations,
					CPU:        cutCPU,
				})
				recordOutcomes(opts.Recorder, feats, residual, tierName, nil, res.Iterations)
				continue
			}
			if res.Exhausted != "" {
				// Procedure budget: same degradation as the fixed cascade —
				// the aborted tier's partial work is discarded, everything
				// still residual becomes unresolved.
				cause = res.Exhausted
				break
			}
			tierCPU := time.Since(start)
			out.Iterations += res.Iterations

			violated := map[int]bool{}
			for _, v := range res.Violations {
				violated[v.Index] = true
			}
			var certInv []linear.System
			var certOrig []int
			var certNames []string
			if opts.Certify {
				certInv = invariantSystems(res.States)
				certOrig = make([]int, len(sm.Stmt))
				for i, mid := range sm.Stmt {
					certOrig[i] = pm[mid]
				}
				certNames = sliced.Space.Names()
			}
			discharged := map[int]bool{}
			var next []int
			for _, a := range residual {
				if violated[sm.StmtOf[a]] {
					next = append(next, a)
					continue
				}
				discharged[a] = true
				ast := pruned.Stmts[a].(*ip.Assert)
				decided[a] = CheckProvenance{
					Index: pm[a], Pos: ast.Pos, Msg: ast.Msg,
					Tier: dom.Name(), Vars: sliced.NumVars(), Stmts: sliced.Size(),
				}
				if opts.Certify {
					out.Certificates = append(out.Certificates, &certify.Certificate{
						Check: certify.Check{
							OrigIndex: pm[a], Pos: ast.Pos, Msg: ast.Msg,
							Tier: dom.Name(),
						},
						Prog:      sliced,
						AssertIdx: sm.StmtOf[a],
						Inv:       certInv,
						OrigStmt:  certOrig,
						VarNames:  certNames,
					})
				}
			}
			out.Tiers = append(out.Tiers, TierStat{
				Domain:     dom.Name(),
				Vars:       sliced.NumVars(),
				Stmts:      sliced.Size(),
				Asserts:    len(residual),
				Discharged: len(residual) - len(next),
				Iterations: res.Iterations,
				CPU:        tierCPU,
			})
			recordOutcomes(opts.Recorder, feats, residual, tierName, discharged, res.Iterations)
			if isFinal {
				// Track the largest final-tier slice for -dump-reduced-ip;
				// with scheduling, each group reaches the final tier in its
				// own slice.
				if out.Residual == nil || sliced.Size() > out.ResidualStmts {
					out.Residual = sliced
					out.ResidualVars = sliced.NumVars()
					out.ResidualStmts = sliced.Size()
				}
				for _, v := range res.Violations {
					prunedIdx := sm.Stmt[v.Index]
					ast := pruned.Stmts[prunedIdx].(*ip.Assert)
					decided[prunedIdx] = CheckProvenance{
						Index: pm[prunedIdx], Pos: ast.Pos, Msg: ast.Msg,
						Tier: dom.Name(), Violated: true,
						Vars: sliced.NumVars(), Stmts: sliced.Size(),
					}
					v.Index = pm[prunedIdx]
					out.Violations = append(out.Violations, v)
				}
			}
			residual = next
		}
		if cause != "" {
			markUnresolved(cause, residual)
		}
	}

	// Groups report out of program order; restore it. Each assert yields
	// at most one violation, so sorting by original index is total.
	sort.SliceStable(out.Violations, func(i, j int) bool {
		return out.Violations[i].Index < out.Violations[j].Index
	})
	assembleChecks(p, pm, decided, opts.Certify, out)
	return out, nil
}

// recordOutcomes attributes one tier run over a group to the per-check
// feature buckets: one attempt per entering check, a discharge where the
// tier proved it, and an even share of the run's worklist steps. The
// split is deterministic, so merged profiles are identical across worker
// counts.
func recordOutcomes(r *schedule.Recorder, feats map[int]schedule.Features, entering []int, tier string, discharged map[int]bool, iterations int) {
	if r == nil || len(entering) == 0 {
		return
	}
	share := iterations / len(entering)
	for _, a := range entering {
		d := 0
		if discharged[a] {
			d = 1
		}
		r.Record(feats[a], tier, 1, d, share)
	}
}

// backEdgeCount counts backward control-flow edges — the loops the
// fixpoint will have to widen through — in a (sliced) program.
func backEdgeCount(p *ip.Program) int {
	if err := p.Resolve(); err != nil {
		return 0
	}
	n := 0
	for i, edges := range p.CFG() {
		for _, e := range edges {
			if e.To <= i {
				n++
			}
		}
	}
	return n
}

// origIndices maps pruned-program assert indices to original-program
// indices for the Decision record.
func origIndices(checks []int, pm reduce.StmtMap) []int {
	out := make([]int, len(checks))
	for i, a := range checks {
		out[i] = pm[a]
	}
	return out
}
