package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
)

// genIP builds a random small integer program: straight-line blocks,
// a bounded loop, assumes, havocs, and asserts over three variables.
func genIP(rng *rand.Rand) *ip.Program {
	p := ip.New("gen")
	vars := []int{p.Space.Var("x"), p.Space.Var("y"), p.Space.Var("z")}
	randExpr := func() linear.Expr {
		e := linear.ConstExpr(rng.Int63n(7) - 3)
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				e.AddTerm(v, rng.Int63n(5)-2)
			}
		}
		return e
	}
	randCons := func() linear.Constraint {
		if rng.Intn(4) == 0 {
			return linear.NewEq(randExpr())
		}
		return linear.NewGe(randExpr())
	}
	nlabels := 0
	label := func() string {
		nlabels++
		return fmt.Sprintf("L%d", nlabels)
	}

	n := 4 + rng.Intn(6)
	var pending []string // labels to place later (forward jumps)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			p.Emit(&ip.Assign{V: vars[rng.Intn(3)], E: randExpr()})
		case 1:
			p.Emit(&ip.Havoc{V: vars[rng.Intn(3)]})
		case 2:
			p.Emit(&ip.Assume{C: ip.Single(randCons())})
		case 3:
			p.Emit(&ip.Assert{C: ip.Single(randCons()), Msg: fmt.Sprintf("a%d", i)})
		case 4:
			l := label()
			p.Emit(&ip.IfGoto{C: ip.Single(randCons()), Target: l})
			pending = append(pending, l)
		case 5:
			l := label()
			p.Emit(&ip.IfGoto{Target: l}) // nondeterministic
			pending = append(pending, l)
		}
	}
	// A bounded counting loop at the end exercises widening.
	x := vars[0]
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&ip.Label{Name: "loop"})
	bound := linear.ConstExpr(int64(3 + rng.Intn(5)))
	bound = bound.Sub(linear.VarExpr(x))
	p.Emit(&ip.IfGoto{C: ip.Single(linear.NewGe(linear.VarExpr(x).Sub(linear.ConstExpr(3)))), Target: "out"})
	_ = bound
	inc := linear.VarExpr(x)
	inc.AddConst(1)
	p.Emit(&ip.Assign{V: x, E: inc})
	p.Emit(&ip.Goto{Target: "loop"})
	p.Emit(&ip.Label{Name: "out"})
	p.Emit(&ip.Assert{C: ip.Single(linear.NewGe(linear.VarExpr(x))), Msg: "exit"})
	for _, l := range pending {
		p.Emit(&ip.Label{Name: l})
	}
	return p
}

// TestEngineSoundVsInterpreter: any assert a concrete execution of the IP
// violates must be reported by the abstract analysis, for every domain.
func TestEngineSoundVsInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	domains := []Domain{PolyDomain{}, ZoneDomain{}, IntervalDomain{}}
	violatedTotal := 0
	for trial := 0; trial < 60; trial++ {
		p := genIP(rng)
		// Concrete runs.
		concrete := map[int]bool{}
		for run := 0; run < 40; run++ {
			violated, _ := p.Exec(rng, 500)
			for _, idx := range violated {
				concrete[idx] = true
			}
		}
		if len(concrete) > 0 {
			violatedTotal++
		}
		for _, dom := range domains {
			res, err := Analyze(p, Options{Domain: dom})
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, dom.Name(), err)
			}
			reported := map[int]bool{}
			for _, v := range res.Violations {
				reported[v.Index] = true
			}
			for idx := range concrete {
				if !reported[idx] {
					t.Errorf("trial %d (%s): UNSOUND: concrete violation at %d not reported\n%s",
						trial, dom.Name(), idx, p.String())
				}
			}
		}
	}
	if violatedTotal == 0 {
		t.Error("no generated program violated anything; test checks nothing")
	}
	t.Logf("%d/60 programs had concrete violations; all were reported by all domains", violatedTotal)
}
