package analysis

import (
	"repro/internal/clex"
)

// This file holds the approved verdict constructors: the only way code
// outside this package may build Violation values (enforced by the
// soundverdict analyzer in internal/lint). Keeping construction behind
// these helpers means no caller can fabricate a check outcome that
// skipped the engine — in particular, the degraded paths (panic
// isolation, budget exhaustion) must produce violations that are
// explicitly Unresolved, never silently safe.

// NewViolation builds an ordinary potential-violation message at pos.
// Reporting a violation is always sound (the analysis over-approximates),
// so this constructor is unrestricted; index is the statement index of
// the failed check, or 0 when the message is not tied to an assert
// (side-effect clause violations).
func NewViolation(index int, msg string, pos clex.Pos) Violation {
	return Violation{Index: index, Msg: msg, Pos: pos}
}

// NewUnresolvedViolation builds the conservative verdict for a check
// the analysis could not decide: a degraded or panicked procedure
// reports its checks through here so they are counted as potential
// errors. Index -1 stands in for "every check of the procedure".
func NewUnresolvedViolation(index int, msg string, pos clex.Pos) Violation {
	return Violation{Index: index, Msg: msg, Pos: pos, Unresolved: true}
}
