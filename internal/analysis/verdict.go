package analysis

import (
	"math/big"

	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
)

// This file holds the approved verdict constructors: the only way code
// outside this package may build Violation values (enforced by the
// soundverdict analyzer in internal/lint). Keeping construction behind
// these helpers means no caller can fabricate a check outcome that
// skipped the engine — in particular, the degraded paths (panic
// isolation, budget exhaustion) must produce violations that are
// explicitly Unresolved, never silently safe.

// NewViolation builds an ordinary potential-violation message at pos.
// Reporting a violation is always sound (the analysis over-approximates),
// so this constructor is unrestricted; index is the statement index of
// the failed check, or 0 when the message is not tied to an assert
// (side-effect clause violations).
func NewViolation(index int, msg string, pos clex.Pos) Violation {
	return Violation{Index: index, Msg: msg, Pos: pos}
}

// NewUnresolvedViolation builds the conservative verdict for a check
// the analysis could not decide: a degraded or panicked procedure
// reports its checks through here so they are counted as potential
// errors. Index -1 stands in for "every check of the procedure".
func NewUnresolvedViolation(index int, msg string, pos clex.Pos) Violation {
	return Violation{Index: index, Msg: msg, Pos: pos, Unresolved: true}
}

// NewCachedViolation rehydrates a violation from a validated analysis-cache
// entry. The caller (the driver's cache layer) must have established that
// the entry is a faithful record of a verdict this engine produced: the
// entry's integrity digests verified, and — on the revalidation path — the
// freshly generated integer program matched the stored one and every stored
// certificate re-proved under the independent checker. Replaying a
// violation is sound per se (the analysis over-approximates, so an extra
// message is never a missed error); silently *dropping* one is what the
// driver's assert accounting rules out.
func NewCachedViolation(index int, msg string, pos clex.Pos,
	unverifiable, unresolved, integral bool,
	ce map[string]*big.Rat, state linear.System) Violation {
	return Violation{
		Index: index, Msg: msg, Pos: pos,
		Unverifiable:           unverifiable,
		Unresolved:             unresolved,
		CounterExample:         ce,
		CounterExampleIntegral: integral,
		StateSystem:            state,
	}
}

// NewCachedCheckProvenance rehydrates one cascade check-provenance record
// from a validated cache entry, under the same caller obligations as
// NewCachedViolation.
func NewCachedCheckProvenance(index int, pos clex.Pos, msg, tier string,
	violated bool, vars, stmts int) CheckProvenance {
	return CheckProvenance{
		Index: index, Pos: pos, Msg: msg, Tier: tier,
		Violated: violated, Vars: vars, Stmts: stmts,
	}
}

// NewCachedCascade rehydrates a cascade result from a validated cache
// entry, under the same caller obligations as NewCachedViolation. Exhausted
// runs are never cached, so the rehydrated result is never exhausted and
// carries no certificates (they live in the cache's certificate file and
// are decoded on demand).
func NewCachedCascade(viols []Violation, iterations int, tiers []TierStat,
	checks []CheckProvenance, residual *ip.Program, rvars, rstmts int) *CascadeResult {
	return &CascadeResult{
		Violations: viols, Iterations: iterations,
		Tiers: tiers, Checks: checks,
		Residual: residual, ResidualVars: rvars, ResidualStmts: rstmts,
	}
}
