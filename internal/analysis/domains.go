package analysis

import (
	"math/big"

	"repro/internal/interval"
	"repro/internal/linear"
	"repro/internal/octagon"
	"repro/internal/polyhedra"
	"repro/internal/zone"
)

// IntervalDomain is the non-relational interval domain (the cheap end of
// the §3.5 ablation).
type IntervalDomain struct{}

// Name implements Domain.
func (IntervalDomain) Name() string { return "interval" }

// Universe implements Domain.
func (IntervalDomain) Universe(n int) State { return boxState{interval.Universe(n)} }

// Bottom implements Domain.
func (IntervalDomain) Bottom(n int) State { return boxState{interval.Bottom(n)} }

type boxState struct{ b *interval.Box }

func (s boxState) Clone() State              { return boxState{s.b.Clone()} }
func (s boxState) Join(o State) State        { return boxState{s.b.Join(o.(boxState).b)} }
func (s boxState) Widen(o State) State       { return boxState{s.b.Widen(o.(boxState).b)} }
func (s boxState) WidenSimple(o State) State { return boxState{s.b.Widen(o.(boxState).b)} }
func (s boxState) MeetSystem(sys linear.System) State {
	cur := s.b
	for _, c := range sys {
		cur = cur.MeetConstraint(c)
	}
	return boxState{cur}
}
func (s boxState) Assign(v int, e linear.Expr) State { return boxState{s.b.Assign(v, e)} }
func (s boxState) Havoc(v int) State                 { return boxState{s.b.Havoc(v)} }
func (s boxState) Includes(o State) bool             { return s.b.Includes(o.(boxState).b) }
func (s boxState) IsEmpty() bool                     { return s.b.IsEmpty() }
func (s boxState) Entails(c linear.Constraint) bool  { return s.b.Entails(c) }
func (s boxState) System() linear.System             { return s.b.System() }
func (s boxState) Sample() []*big.Rat                { return s.b.Sample() }
func (s boxState) Bounds(v int) (lo, hi *big.Rat)    { return s.b.Bounds(v) }
func (s boxState) String(sp *linear.Space) string    { return s.b.String(sp) }

// ZoneDomain is the difference-bound-matrix domain (the middle of the
// ablation). Config, when non-nil, carries the run's budget token; the
// zero value is the default-configured domain.
type ZoneDomain struct {
	Config *zone.Config
}

// Name implements Domain.
func (ZoneDomain) Name() string { return "zone" }

// Universe implements Domain.
func (d ZoneDomain) Universe(n int) State { return zoneState{d.Config.Universe(n)} }

// Bottom implements Domain.
func (d ZoneDomain) Bottom(n int) State { return zoneState{d.Config.Bottom(n)} }

// WithSubstrate returns d reconfigured with the given per-run substrate
// configs: a PolyDomain (or nil, the default) becomes PolyDomain{pc}, a
// ZoneDomain becomes ZoneDomain{zc}, an OctagonDomain becomes
// OctagonDomain{zc} (octagons are configured by the zone Config of the
// raw matrix they build on); any other domain — intervals, custom test
// domains — is returned unchanged.
func WithSubstrate(d Domain, pc *polyhedra.Config, zc *zone.Config) Domain {
	switch d.(type) {
	case nil:
		return PolyDomain{Config: pc}
	case PolyDomain:
		return PolyDomain{Config: pc}
	case ZoneDomain:
		return ZoneDomain{Config: zc}
	case OctagonDomain:
		return OctagonDomain{Config: zc}
	}
	return d
}

type zoneState struct{ d *zone.DBM }

func (s zoneState) Clone() State              { return zoneState{s.d.Clone()} }
func (s zoneState) Join(o State) State        { return zoneState{s.d.Join(o.(zoneState).d)} }
func (s zoneState) Widen(o State) State       { return zoneState{s.d.Widen(o.(zoneState).d)} }
func (s zoneState) WidenSimple(o State) State { return zoneState{s.d.Widen(o.(zoneState).d)} }
func (s zoneState) MeetSystem(sys linear.System) State {
	cur := s.d
	for _, c := range sys {
		cur = cur.MeetConstraint(c)
	}
	return zoneState{cur}
}
func (s zoneState) Assign(v int, e linear.Expr) State { return zoneState{s.d.Assign(v, e)} }
func (s zoneState) Havoc(v int) State                 { return zoneState{s.d.Havoc(v)} }
func (s zoneState) Includes(o State) bool             { return s.d.Includes(o.(zoneState).d) }
func (s zoneState) IsEmpty() bool                     { return s.d.IsEmpty() }
func (s zoneState) Entails(c linear.Constraint) bool  { return s.d.Entails(c) }
func (s zoneState) System() linear.System             { return s.d.System() }
func (s zoneState) Sample() []*big.Rat                { return s.d.Sample() }
func (s zoneState) Bounds(v int) (lo, hi *big.Rat)    { return s.d.Bounds(v) }
func (s zoneState) String(sp *linear.Space) string    { return s.d.String(sp) }

// StateKey implements stateKeyer.
func (s zoneState) StateKey() (string, bool) { return s.d.Key() }

// OctagonDomain is the octagon domain of Miné (±x ± y <= c), slotted
// between zones and polyhedra in the ablation cascade. It is configured
// by a *zone.Config: the octagon is a doubled-variable raw DBM, so the
// zone substrate's budget token, kernel tier, representation policy and
// arena govern it directly.
type OctagonDomain struct {
	Config *zone.Config
}

// Name implements Domain.
func (OctagonDomain) Name() string { return "octagon" }

// Universe implements Domain.
func (d OctagonDomain) Universe(n int) State { return octState{octagon.Universe(d.Config, n)} }

// Bottom implements Domain.
func (d OctagonDomain) Bottom(n int) State { return octState{octagon.Bottom(d.Config, n)} }

type octState struct{ o *octagon.Oct }

func (s octState) Clone() State              { return octState{s.o.Clone()} }
func (s octState) Join(o State) State        { return octState{s.o.Join(o.(octState).o)} }
func (s octState) Widen(o State) State       { return octState{s.o.Widen(o.(octState).o)} }
func (s octState) WidenSimple(o State) State { return octState{s.o.Widen(o.(octState).o)} }
func (s octState) MeetSystem(sys linear.System) State {
	return octState{s.o.MeetSystem(sys)}
}
func (s octState) Assign(v int, e linear.Expr) State { return octState{s.o.Assign(v, e)} }
func (s octState) Havoc(v int) State                 { return octState{s.o.Havoc(v)} }
func (s octState) Includes(o State) bool             { return s.o.Includes(o.(octState).o) }
func (s octState) IsEmpty() bool                     { return s.o.IsEmpty() }
func (s octState) Entails(c linear.Constraint) bool  { return s.o.Entails(c) }
func (s octState) System() linear.System             { return s.o.System() }
func (s octState) Sample() []*big.Rat                { return s.o.Sample() }
func (s octState) Bounds(v int) (lo, hi *big.Rat)    { return s.o.Bounds(v) }
func (s octState) String(sp *linear.Space) string    { return s.o.String(sp) }

// StateKey implements stateKeyer.
func (s octState) StateKey() (string, bool) { return s.o.Key() }
