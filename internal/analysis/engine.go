package analysis

import (
	"fmt"
	"math/big"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/budget"
	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/schedule"
	"repro/internal/zone"
)

// TierBudgetExhausted is the Result.Exhausted value of an analysis cut
// short by Options.TierToken (the scheduler's per-tier step budget), as
// opposed to the procedure budget. The cascade treats it as "skip this
// tier" — the checks fall through to the next tier — never as an
// unresolved verdict.
const TierBudgetExhausted = "tier-budget"

// debugIterEvery reads CSSV_DEBUG_ITER once per process. The trace is a
// human debugging aid: it must go to stderr, never stdout, because
// stdout carries the machine-readable report stream (CLI reports and
// daemon responses are byte-compared against goldens).
var debugIterEvery = sync.OnceValue(func() int {
	return osGetenvInt("CSSV_DEBUG_ITER")
})

// Options tunes the fixpoint iteration.
type Options struct {
	// Domain selects the numeric domain (default PolyDomain).
	Domain Domain
	// WideningDelay is the number of joins at a loop head before widening
	// kicks in.
	WideningDelay int
	// NarrowingPasses is the number of decreasing passes after
	// stabilization.
	NarrowingPasses int
	// CheckOnly, when non-nil, restricts assert checking to the given
	// statement indices; all asserts still refine the state downstream.
	// The cascade uses it to keep already-discharged asserts as transfer
	// functions without re-reporting them.
	CheckOnly map[int]bool
	// Certify makes AnalyzeCascade export a certificate (per-point
	// invariant systems over the discharging tier's sliced sub-program) for
	// every check it discharges, in CascadeResult.Certificates. For plain
	// Analyze runs use CertifyResult instead.
	Certify bool
	// Token, when non-nil, bounds the analysis: each worklist iteration
	// consumes one budget step, and the deadline is polled alongside.
	// On exhaustion the analysis degrades soundly — every check it was
	// asked about is reported as an unresolved Violation (a potential
	// error, never silently "safe") and Result.Exhausted names the cause.
	Token *budget.Token
	// TierToken, when non-nil, is the scheduler's per-tier step budget,
	// polled alongside Token. Its exhaustion is reported as
	// Result.Exhausted == TierBudgetExhausted: the cascade then skips
	// the tier for the affected checks instead of reporting them
	// unresolved, so a tier budget can only cost time, never verdicts.
	TierToken *budget.Token
	// Planner, when non-nil with a mode other than schedule.Off, routes
	// AnalyzeCascade through the scheduled path: per-check feature
	// extraction, plan groups, per-tier ordering and budgets.
	Planner *schedule.Planner
	// Recorder, when non-nil, receives the scheduled cascade's
	// per-(bucket, tier) outcomes for the cross-run profile. It is not
	// safe for concurrent use; the driver gives each procedure its own.
	Recorder *schedule.Recorder
	// ZoneConfig configures the zone tier AnalyzeCascade constructs
	// internally (the final domain arrives pre-configured via Domain).
	ZoneConfig *zone.Config
	// Octagon inserts the octagon tier between the zone tier and the
	// final domain in AnalyzeCascade. The tier shares ZoneConfig (its
	// matrix is the zone substrate's raw DBM).
	Octagon bool
}

func (o *Options) fill() {
	if o.Domain == nil {
		o.Domain = PolyDomain{}
	}
	if o.WideningDelay == 0 {
		o.WideningDelay = 1
	}
	if o.NarrowingPasses == 0 {
		o.NarrowingPasses = 2
	}
}

// Violation is a potential assert failure.
type Violation struct {
	Index int // statement index of the assert
	Msg   string
	Pos   clex.Pos
	// Unverifiable marks assertions C2IP could not express.
	Unverifiable bool
	// Unresolved marks checks the analysis gave up on because its
	// resource budget was exhausted (or the procedure's analysis
	// panicked). Unresolved checks are conservatively reported as
	// potential errors; they carry no state system or counter-example.
	Unresolved bool
	// CounterExample assigns values to constraint variables under which
	// the assertion fails (paper Fig. 8); nil when unavailable.
	CounterExample map[string]*big.Rat
	// CounterExampleIntegral reports that the counter-example is a genuine
	// integral point of the bad region (each coordinate snapped to an
	// integer and re-checked by pinning). When false, only rational points
	// were found: program variables are integers, so the violation is at
	// best "potential" from this witness and replay hints are unusable.
	CounterExampleIntegral bool
	// StateSystem is the invariant the analysis derived just before the
	// assert, for the Fig. 8(a)-style report.
	StateSystem linear.System
}

// Result of analyzing one integer program.
type Result struct {
	Prog *ip.Program
	// Violations in program order.
	Violations []Violation
	// Iterations counts worklist steps (for the statistics tables).
	Iterations int
	// exit state (used by ASPost).
	ExitState State
	// in-states per statement (used by derivation and tests).
	States []State
	// Exhausted names the budget that ran out ("deadline" or
	// "step-budget"), or is empty for a completed analysis. An exhausted
	// result carries no invariants: the iterate states are pre-fixpoint
	// and unsound as invariants, so States is nil, ExitState is the
	// universe, and every requested check appears as an unresolved
	// Violation.
	Exhausted string
}

// cfgEdge is a control-flow edge with the condition assumed along it.
type cfgEdge struct {
	to   int
	cond ip.DNF // nil = true
}

// Analyze runs the forward analysis.
func Analyze(p *ip.Program, opts Options) (*Result, error) {
	opts.fill()
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	n := len(p.Stmts)
	nvars := p.NumVars()

	ipSucc := p.CFG() // node n = exit
	succ := make([][]cfgEdge, n+1)
	for i, edges := range ipSucc {
		for _, e := range edges {
			succ[i] = append(succ[i], cfgEdge{to: e.To, cond: e.Cond})
		}
	}

	// Loop heads: targets of backward edges.
	isHead := make([]bool, n+1)
	for i, edges := range succ {
		for _, e := range edges {
			if e.to <= i {
				isHead[e.to] = true
			}
		}
	}

	dom := opts.Domain
	in := make([]State, n+1)
	for i := range in {
		in[i] = dom.Bottom(nvars)
	}
	in[0] = dom.Universe(nvars)

	visits := make([]int, n+1)
	work := &intHeap{0}
	inWork := make([]bool, n+1)
	inWork[0] = true
	iterations := 0

	transfer := func(i int, st State) State {
		switch s := p.Stmts[i].(type) {
		case *ip.Assign:
			return st.Assign(s.V, s.E)
		case *ip.Havoc:
			return st.Havoc(s.V)
		case *ip.Assume:
			return applyDNF(st, s.C, dom, nvars)
		case *ip.Assert:
			// Downstream of an assert the property is assumed to hold
			// (the error, if any, has been reported). When the property
			// contradicts the state outright, keep the state: cutting the
			// path would mask every later error behind a failed check.
			if s.Unverifiable {
				return st
			}
			refined := applyDNF(st, s.C, dom, nvars)
			if refined.IsEmpty() && !st.IsEmpty() {
				return st
			}
			return refined
		}
		return st
	}

	const maxIterations = 2_000_000
	const wideningEscalation = 12
	debugEvery := debugIterEvery()
	memo := includesMemo{}
	for work.Len() > 0 {
		iterations++
		if debugEvery > 0 && iterations%debugEvery == 0 {
			fmt.Fprintf(os.Stderr, "[engine] iter %d\n", iterations)
		}
		if iterations > maxIterations {
			return nil, fmt.Errorf("analysis: fixpoint iteration budget exceeded")
		}
		if !opts.Token.Step(1) {
			return exhaustedResult(p, opts, dom, nvars, iterations), nil
		}
		if !opts.TierToken.Step(1) {
			return tierExhaustedResult(p, opts, dom, nvars, iterations), nil
		}
		i := work.pop()
		inWork[i] = false
		if i >= n {
			continue
		}
		out := transfer(i, in[i])
		for _, e := range succ[i] {
			s := out
			if e.cond != nil {
				s = applyDNF(out, e.cond, dom, nvars)
			}
			if s.IsEmpty() {
				continue
			}
			joined := in[e.to].Join(s)
			if isHead[e.to] {
				visits[e.to]++
				switch {
				case visits[e.to] > opts.WideningDelay+wideningEscalation:
					// The refined widening did not stabilize: escalate to
					// the simple widening, whose chains are finite.
					joined = in[e.to].WidenSimple(joined)
				case visits[e.to] > opts.WideningDelay:
					joined = in[e.to].Widen(joined)
				}
			}
			if memo.includes(in[e.to], joined) {
				continue
			}
			in[e.to] = joined
			if !inWork[e.to] {
				work.push(e.to)
				inWork[e.to] = true
			}
		}
	}

	// Narrowing: decreasing passes without widening.
	preds := make([][]cfgEdge, n+1)
	for i, edges := range succ {
		for _, e := range edges {
			preds[e.to] = append(preds[e.to], cfgEdge{to: i, cond: e.cond})
		}
	}
	for pass := 0; pass < opts.NarrowingPasses; pass++ {
		for j := 1; j <= n; j++ {
			if opts.Token.Exhausted() {
				// Partially narrowed states are sound but which nodes got
				// the refinement depends on timing; discard everything so
				// an exhausted run always reports the same (unresolved)
				// outcome.
				return exhaustedResult(p, opts, dom, nvars, iterations), nil
			}
			if opts.TierToken.Exhausted() {
				return tierExhaustedResult(p, opts, dom, nvars, iterations), nil
			}
			acc := dom.Bottom(nvars)
			for _, pe := range preds[j] {
				s := transfer(pe.to, in[pe.to])
				if pe.cond != nil {
					s = applyDNF(s, pe.cond, dom, nvars)
				}
				acc = acc.Join(s)
			}
			// Keep only refinements (soundness: the narrowed value must
			// stay above the true fixpoint; intersecting a post-fixpoint
			// with a recomputed value is safe).
			if memo.includes(in[j], acc) {
				in[j] = acc
			}
		}
	}

	res := &Result{Prog: p, Iterations: iterations, States: in}
	// Assert checking.
	for _, idx := range p.Asserts() {
		if opts.CheckOnly != nil && !opts.CheckOnly[idx] {
			continue
		}
		a := p.Stmts[idx].(*ip.Assert)
		st := in[idx]
		if st.IsEmpty() {
			continue // unreachable
		}
		if a.Unverifiable {
			res.Violations = append(res.Violations, Violation{
				Index: idx, Msg: a.Msg, Pos: a.Pos, Unverifiable: true,
				StateSystem: st.System(),
			})
			continue
		}
		if v, bad := checkAssert(st, a, p.Space, dom, nvars); bad {
			v.Index = idx
			res.Violations = append(res.Violations, v)
		}
	}
	res.ExitState = in[n]
	if opts.Token.Exhausted() {
		// The deadline may have passed mid-check: some verdicts above were
		// computed on budget-degraded substrate states. Normalize to the
		// canonical exhausted outcome so reports stay deterministic.
		return exhaustedResult(p, opts, dom, nvars, iterations), nil
	}
	if opts.TierToken.Exhausted() {
		return tierExhaustedResult(p, opts, dom, nvars, iterations), nil
	}
	return res, nil
}

// tierExhaustedResult is the canonical outcome of a run cut short by the
// scheduler's per-tier step budget: shaped exactly like exhaustedResult
// (no invariants, universe exit, unresolved per-check Violations) but
// with the distinguished cause, so the cascade can tell "skip this tier"
// apart from "the procedure budget is gone". Tier budgets are pure step
// counts, so the cut point — and therefore the whole result — is
// deterministic across worker counts.
func tierExhaustedResult(p *ip.Program, opts Options, dom Domain, nvars, iterations int) *Result {
	res := exhaustedResult(p, opts, dom, nvars, iterations)
	res.Exhausted = TierBudgetExhausted
	return res
}

// exhaustedResult is the canonical outcome of a budget-exhausted analysis:
// no invariants (the iterates are pre-fixpoint, hence unsound as
// invariants), a universe exit state, and one unresolved Violation per
// requested check. It depends only on the program and the options, never
// on how far the aborted iteration got, so exhausted runs are
// deterministic across worker counts.
func exhaustedResult(p *ip.Program, opts Options, dom Domain, nvars, iterations int) *Result {
	res := &Result{
		Prog:       p,
		Iterations: iterations,
		ExitState:  dom.Universe(nvars),
		Exhausted:  opts.Token.Cause(),
	}
	if res.Exhausted == "" {
		res.Exhausted = budget.CauseDeadline
	}
	for _, idx := range p.Asserts() {
		if opts.CheckOnly != nil && !opts.CheckOnly[idx] {
			continue
		}
		a := p.Stmts[idx].(*ip.Assert)
		res.Violations = append(res.Violations, Violation{
			Index: idx, Msg: a.Msg, Pos: a.Pos, Unresolved: true,
		})
	}
	return res
}

func osGetenvInt(k string) int {
	v, _ := strconv.Atoi(os.Getenv(k))
	return v
}

// includesMemo caches Includes answers across fixpoint iterations: the
// worklist re-tests the same (invariant, candidate) pairs every time a node
// is revisited without its inputs changing. Entries are keyed by the
// canonical representation keys of both operands (length-prefixed to keep
// the concatenation unambiguous); equal keys mean identical representations
// and therefore the same answer, so the cache cannot change results. States
// without a cheap key bypass the cache.
type includesMemo map[string]bool

func (m includesMemo) includes(a, b State) bool {
	ak := stateKeyOf(a)
	if ak == "" {
		return a.Includes(b)
	}
	bk := stateKeyOf(b)
	if bk == "" {
		return a.Includes(b)
	}
	key := strconv.Itoa(len(ak)) + ":" + ak + bk
	if v, ok := m[key]; ok {
		return v
	}
	v := a.Includes(b)
	m[key] = v
	return v
}

// applyDNF over-approximates assume(d): the join of the per-disjunct meets.
func applyDNF(st State, d ip.DNF, dom Domain, nvars int) State {
	if d.IsTrue() {
		return st
	}
	if d.IsFalse() {
		return dom.Bottom(nvars)
	}
	acc := dom.Bottom(nvars)
	for _, conj := range d {
		acc = acc.Join(st.MeetSystem(linear.System(conj)))
	}
	return acc
}

// checkAssert verifies state |= cond by testing state /\ not(cond) for
// emptiness per disjunct, producing a counter-example from the first
// nonempty intersection.
func checkAssert(st State, a *ip.Assert, sp *linear.Space, dom Domain, nvars int) (Violation, bool) {
	neg := a.C.Negate()
	for _, conj := range neg {
		bad := st.MeetSystem(linear.System(conj))
		if bad.IsEmpty() {
			continue
		}
		v := Violation{
			Msg:         a.Msg,
			Pos:         a.Pos,
			StateSystem: st.System(),
		}
		// Restrict the report to the variables the assertion mentions, and
		// pick the lexicographically smallest corner of the bad region over
		// them (ordered by variable name). The choice is canonical: it
		// depends only on the region's projection onto the mentioned
		// variables, so a run over a sliced sub-program reports the same
		// counter-example as a run over the full program.
		mentioned := map[int]bool{}
		for _, cj := range a.C {
			for _, c := range cj {
				for _, vr := range c.E.Vars() {
					mentioned[vr] = true
				}
			}
		}
		if ce, integral := lexMinCorner(bad, mentioned, sp); len(ce) > 0 {
			v.CounterExample = ce
			v.CounterExampleIntegral = integral
		}
		return v, true
	}
	return Violation{}, false
}

// lexMinCorner fixes the mentioned variables, in name order, each to the
// smallest value the region (so far) allows — the lexicographically least
// attainable corner. A coordinate unbounded below has no minimum; it gets
// the canonical negative representative min(-1, hi), which both witnesses
// the unboundedness (the paper's §2.3 scenario hinges on the
// counter-example showing a *negative* NbLine) and depends only on the
// region's projection, so sliced and full runs agree.
//
// Program variables are integers, so a fractional bound is snapped to the
// nearest integers inside the region (two tried, toward the interior)
// before falling back to the rational value; the choice stays canonical
// because it depends only on Bounds. The second result reports whether
// every coordinate is an integer pinned inside the region — when false,
// only rational points were exhibited and the violation cannot be
// concretely replayed from this witness.
func lexMinCorner(region State, mentioned map[int]bool, sp *linear.Space) (map[string]*big.Rat, bool) {
	var order []int
	for vr := range mentioned {
		order = append(order, vr)
	}
	sort.Slice(order, func(i, j int) bool { return sp.Name(order[i]) < sp.Name(order[j]) })
	out := map[string]*big.Rat{}
	integral := true
	for _, vr := range order {
		lo, hi := region.Bounds(vr)
		val := big.NewRat(-1, 1)
		fromLo := false
		switch {
		case lo != nil:
			val = lo
			fromLo = true
		case hi != nil && hi.Cmp(val) < 0:
			val = hi
		}
		// pin intersects the region with vr = x (den*vr - num == 0).
		pin := func(x *big.Rat) State {
			e := linear.NewExpr()
			e.SetCoef(vr, x.Denom())
			e.Const.Neg(x.Num())
			return region.MeetSystem(linear.System{linear.NewEq(e)})
		}
		chosen, pinned := val, pin(val)
		if !val.IsInt() {
			first := ratFloor(val)
			if fromLo {
				first = ratCeil(val)
			}
			for k := int64(0); k < 2; k++ {
				c := new(big.Int).Set(first)
				if fromLo {
					c.Add(c, big.NewInt(k))
				} else {
					c.Sub(c, big.NewInt(k))
				}
				cand := new(big.Rat).SetInt(c)
				if fromLo && hi != nil && cand.Cmp(hi) > 0 {
					break
				}
				if ps := pin(cand); !ps.IsEmpty() {
					chosen, pinned = cand, ps
					break
				}
			}
		}
		out[sp.Name(vr)] = chosen
		if !chosen.IsInt() || pinned.IsEmpty() {
			integral = false
		}
		if pinned.IsEmpty() {
			// The value is not attained in this domain's representation;
			// keep the reported value (it is within the region's closure)
			// but stop pinning through an empty state.
			continue
		}
		region = pinned
	}
	return out, integral
}

// ratCeil returns the smallest integer >= x.
func ratCeil(x *big.Rat) *big.Int {
	q := new(big.Int).Sub(x.Denom(), big.NewInt(1))
	q.Add(q, x.Num())
	return q.Div(q, x.Denom())
}

// ratFloor returns the largest integer <= x.
func ratFloor(x *big.Rat) *big.Int {
	return new(big.Int).Div(x.Num(), x.Denom())
}

// FormatViolation renders a Fig. 8-style report.
func FormatViolation(v Violation, sp *linear.Space) string {
	if v.Unresolved && v.Index < 0 {
		// Driver-synthesized diagnostic (e.g. a panic isolated to one
		// procedure): Msg is the whole message and there is no position.
		return "error: " + v.Msg
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: error: %s may be violated", v.Pos, v.Msg)
	if v.Unresolved {
		sb.WriteString(" (unresolved: analysis budget exhausted)")
		return sb.String()
	}
	if v.Unverifiable {
		sb.WriteString(" (not expressible in linear arithmetic)")
	}
	if len(v.CounterExample) > 0 {
		sb.WriteString("\n  the requirement may be violated when:\n")
		var names []string
		for name := range v.CounterExample {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "    %s = %s\n", name, v.CounterExample[name].RatString())
		}
	}
	return sb.String()
}

// intHeap is a tiny min-heap of node indices (processing lower indices
// first approximates reverse post-order on normalized programs).
type intHeap []int

func (h intHeap) Len() int { return len(h) }

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	old := *h
	v := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < len(*h) && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return v
}
