package ip

import (
	"math/big"
	"sort"

	"repro/internal/linear"
)

// DirectedOptions tunes the deterministic directed interpreter.
type DirectedOptions struct {
	// MaxDepth bounds the statements executed along one path (default 800).
	MaxDepth int
	// Budget bounds the statements executed across the whole search
	// (default 200000); the search is reported Truncated when it runs out.
	Budget int
	// Values are the candidate values tried, in order, for havocs and for
	// variables read before being written (after any per-variable hint).
	// Default: 0, 1, -1, 2.
	Values []int64
}

func (o *DirectedOptions) fill() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 800
	}
	if o.Budget <= 0 {
		o.Budget = 200000
	}
	if o.Values == nil {
		o.Values = []int64{0, 1, -1, 2}
	}
}

// DirectedResult is the outcome of a directed search.
type DirectedResult struct {
	// Found reports that a concrete execution was found whose first
	// violated assert is the target.
	Found bool
	// Trace is the statement-index sequence of the found execution.
	Trace []int
	// Truncated reports that the search space was not exhausted (budget or
	// depth limit hit), so Found == false is inconclusive.
	Truncated bool
	// Steps counts the statements executed across all explored paths.
	Steps int
}

// ExecDirected searches deterministically for a concrete execution whose
// first violated assert is the target statement. Unlike Exec, which
// resolves nondeterminism randomly, ExecDirected explores the choice tree
// — initial values and havocs range over a small candidate list (hints
// first), nondeterministic branches try both edges — by depth-first search
// under a global step budget. The result is a genuine witness: every
// assume held, every earlier assert passed, and the target's condition
// evaluated false on integer values.
//
// hints maps variable indices to preferred values (typically the analysis
// counter-example); they are tried first at every choice point for that
// variable. The search is fully deterministic: identical inputs explore
// identical trees.
func (p *Program) ExecDirected(target int, hints map[int]*big.Int, opts DirectedOptions) DirectedResult {
	opts.fill()
	res := DirectedResult{}
	if err := p.Resolve(); err != nil {
		return res
	}
	if target < 0 || target >= len(p.Stmts) {
		return res
	}
	if _, ok := p.Stmts[target].(*Assert); !ok {
		return res
	}

	env := make([]*big.Int, p.NumVars())
	var trace []int

	// candidates lists the values tried for v, in order: the hint, values
	// solved from the constraints the binding must satisfy, the generic
	// pool.
	candidates := func(v int, solved []*big.Int) []*big.Int {
		var out []*big.Int
		seen := map[string]bool{}
		add := func(x *big.Int) {
			if x == nil || seen[x.String()] {
				return
			}
			seen[x.String()] = true
			out = append(out, x)
		}
		add(hints[v])
		for _, x := range solved {
			add(x)
		}
		for _, k := range opts.Values {
			add(big.NewInt(k))
		}
		return out
	}

	// solveFor derives candidate values for v from the constraints of d in
	// which v is the only unbound variable: the exact solution of an
	// equality, and the boundary of an inequality together with its
	// just-violating neighbor (boundaries are where asserts tip over).
	// Without this, assume(x = 4) deadends unless 4 happens to be in the
	// generic pool.
	solveFor := func(d DNF, v int, env []*big.Int) []*big.Int {
		var out []*big.Int
		for _, conj := range d {
			for _, c := range conj {
				k := c.E.Coef(v)
				if k.Sign() == 0 {
					continue
				}
				single := true
				for _, u := range c.E.Vars() {
					if u != v && env[u] == nil {
						single = false
						break
					}
				}
				if !single {
					continue
				}
				// c.E = k*x + rest; env[v] == nil, so Eval yields rest.
				a := new(big.Int).Neg(c.E.Eval(env)) // solve k*x = a
				if c.Rel == linear.Eq {
					q, r := new(big.Int).QuoRem(a, k, new(big.Int))
					if r.Sign() == 0 {
						out = append(out, q)
					}
					continue
				}
				// k*x >= a: tightest x is ceil(a/k) for k > 0 and
				// floor(a/k) for k < 0 (big.Int.Div floors for a positive
				// divisor).
				var b *big.Int
				if k.Sign() > 0 {
					num := new(big.Int).Add(a, k)
					num.Sub(num, big.NewInt(1))
					b = num.Div(num, k)
					out = append(out, b, new(big.Int).Sub(b, big.NewInt(1)))
				} else {
					num := new(big.Int).Neg(a)
					b = num.Div(num, new(big.Int).Neg(k))
					out = append(out, b, new(big.Int).Add(b, big.NewInt(1)))
				}
			}
		}
		return out
	}

	// stmtSolved derives candidate values for binding v before executing
	// the statement, from every constraint set the statement evaluates.
	stmtSolved := func(s Stmt, v int, env []*big.Int) []*big.Int {
		switch s := s.(type) {
		case *Assume:
			return solveFor(s.C, v, env)
		case *Assert:
			return solveFor(s.C, v, env)
		case *IfGoto:
			out := solveFor(s.C, v, env)
			return append(out, solveFor(s.FallthroughCond(), v, env)...)
		}
		return nil
	}

	// undefinedVar returns the first variable of e (in index order) that
	// has no value yet, or -1.
	undefinedVar := func(e interface{ Vars() []int }) int {
		vs := e.Vars()
		sort.Ints(vs)
		for _, v := range vs {
			if env[v] == nil {
				return v
			}
		}
		return -1
	}
	undefinedInDNF := func(d DNF) int {
		best := -1
		for _, conj := range d {
			for _, c := range conj {
				if v := undefinedVar(c.E); v >= 0 && (best < 0 || v < best) {
					best = v
				}
			}
		}
		return best
	}

	type status int
	const (
		deadend status = iota
		found
		exhausted // budget ran out: abort the whole search
	)

	var run func(pc, depth int) status
	// withValue binds env[v] = val for the recursive continuation.
	withValue := func(v int, val *big.Int, cont func() status) status {
		old := env[v]
		env[v] = val
		st := cont()
		env[v] = old
		return st
	}
	// choose tries every candidate value for v before re-running pc.
	choose := func(v, pc, depth int) status {
		for _, val := range candidates(v, stmtSolved(p.Stmts[pc], v, env)) {
			st := withValue(v, val, func() status { return run(pc, depth) })
			if st != deadend {
				return st
			}
		}
		return deadend
	}

	// needsVar returns the first variable the statement reads that has no
	// value yet, or -1.
	needsVar := func(s Stmt) int {
		switch s := s.(type) {
		case *Assign:
			return undefinedVar(s.E)
		case *Assume:
			return undefinedInDNF(s.C)
		case *Assert:
			if s.Unverifiable {
				return -1
			}
			return undefinedInDNF(s.C)
		case *IfGoto:
			if v := undefinedInDNF(s.C); v >= 0 {
				return v
			}
			return undefinedInDNF(s.FallthroughCond())
		}
		return -1
	}

	run = func(pc, depth int) status {
		if pc >= len(p.Stmts) {
			return deadend // normal exit: no violation on this path
		}
		if depth >= opts.MaxDepth {
			res.Truncated = true
			return deadend
		}
		if res.Steps >= opts.Budget {
			res.Truncated = true
			return exhausted
		}
		// Bind every undefined variable the statement reads before
		// executing it (initial values are lazy choice points).
		if v := needsVar(p.Stmts[pc]); v >= 0 {
			return choose(v, pc, depth)
		}
		res.Steps++
		trace = append(trace, pc)
		defer func() { trace = trace[:len(trace)-1] }()

		next := func() status { return run(pc+1, depth+1) }

		switch s := p.Stmts[pc].(type) {
		case *Assign:
			return withValue(s.V, s.E.Eval(env), next)
		case *Havoc:
			// Havocked variables are typically constrained by the assume
			// that follows (x := unknown; assume(...)): solve it for s.V so
			// the candidates include the values that matter.
			var solved []*big.Int
			if pc+1 < len(p.Stmts) {
				if a, ok := p.Stmts[pc+1].(*Assume); ok {
					old := env[s.V]
					env[s.V] = nil
					solved = solveFor(a.C, s.V, env)
					env[s.V] = old
				}
			}
			for _, val := range candidates(s.V, solved) {
				if st := withValue(s.V, val, next); st != deadend {
					return st
				}
			}
			return deadend
		case *Assume:
			if !evalDNF(s.C, env) {
				return deadend // blocked
			}
			return next()
		case *Assert:
			violated := s.Unverifiable || !evalDNF(s.C, env)
			if violated {
				if pc == target && !s.Unverifiable {
					res.Found = true
					res.Trace = append([]int(nil), trace...)
					return found
				}
				return deadend // first error is a different assert: halt
			}
			return next()
		case *Goto:
			return run(p.TargetOf(s.Target), depth+1)
		case *IfGoto:
			if s.C == nil {
				// Nondeterministic branch: taken edge first, then the
				// fall-through.
				if st := run(p.TargetOf(s.Target), depth+1); st != deadend {
					return st
				}
				return next()
			}
			if evalDNF(s.C, env) {
				return run(p.TargetOf(s.Target), depth+1)
			}
			if !evalDNF(s.FallthroughCond(), env) {
				return deadend // infeasible fall-through: blocked
			}
			return next()
		default: // *Label
			return next()
		}
	}

	run(0, 0)
	if res.Found {
		res.Truncated = false
	}
	return res
}
