package ip

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/linear"
)

func c(coefs ...int64) linear.Constraint {
	e := linear.ConstExpr(coefs[0])
	for i := 1; i+1 < len(coefs); i += 2 {
		e.AddTerm(int(coefs[i+1]), coefs[i])
	}
	return linear.NewGe(e)
}

func TestDNFBasics(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Error("True misclassified")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Error("False misclassified")
	}
	d := Single(c(0, 1, 0)) // x0 >= 0
	if d.IsTrue() || d.IsFalse() {
		t.Error("single constraint misclassified")
	}
}

func TestDNFAndOr(t *testing.T) {
	a := Single(c(0, 1, 0))
	b := Single(c(0, 1, 1))
	and := a.And(b)
	if len(and) != 1 || len(and[0]) != 2 {
		t.Errorf("and shape: %v", and)
	}
	or := a.Or(b)
	if len(or) != 2 {
		t.Errorf("or shape: %v", or)
	}
	// Distribution: (a || b) && (a || b) has 4 disjuncts.
	dd := or.And(or)
	if len(dd) != 4 {
		t.Errorf("distributed and: %d disjuncts", len(dd))
	}
	if True().And(a).String(nil) != a.String(nil) {
		t.Error("True.And(a) != a")
	}
	if !False().And(a).IsFalse() {
		t.Error("False.And(a) should be false")
	}
	if False().Or(a).String(nil) != a.String(nil) {
		t.Error("False.Or(a) != a")
	}
}

func TestDNFNegate(t *testing.T) {
	// not(x >= 0) == -x - 1 >= 0 (x <= -1).
	d := Single(c(0, 1, 0))
	n := d.Negate()
	if len(n) != 1 || len(n[0]) != 1 {
		t.Fatalf("negation shape: %v", n.String(nil))
	}
	if got := n.String(nil); !strings.Contains(got, "-v0 >= 1") {
		t.Errorf("negation = %s", got)
	}
	// Double negation of a conjunction keeps its integer points.
	if True().Negate().IsFalse() == false {
		t.Error("not(true) != false")
	}
	if False().Negate().IsTrue() == false {
		t.Error("not(false) != true")
	}
}

// TestDNFNegateInvolution (property): negating twice preserves pointwise
// truth on random small assignments.
func TestDNFNegateInvolution(t *testing.T) {
	eval := func(d DNF, x, y int64) bool {
		if d.IsTrue() {
			return true
		}
		for _, conj := range d {
			all := true
			for _, cc := range conj {
				v := cc.E.Coef(0).Int64()*x + cc.E.Coef(1).Int64()*y + cc.E.Const.Int64()
				if cc.Rel == linear.Eq && v != 0 {
					all = false
				}
				if cc.Rel == linear.Ge && v < 0 {
					all = false
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	f := func(a1, b1, c1, a2, b2, c2 int8, x, y int8) bool {
		mk := func(a, b, cc int8) linear.Constraint {
			e := linear.ConstExpr(int64(cc))
			e.AddTerm(0, int64(a))
			e.AddTerm(1, int64(b))
			return linear.NewGe(e)
		}
		d := Single(mk(a1, b1, c1)).Or(Single(mk(a2, b2, c2)))
		want := eval(d, int64(x), int64(y))
		got := !eval(d.Negate(), int64(x), int64(y))
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestProgramResolve(t *testing.T) {
	p := New("t")
	v := p.Space.Var("x")
	p.Emit(&Label{Name: "start"})
	p.Emit(&Assign{V: v, E: linear.ConstExpr(1)})
	p.Emit(&IfGoto{C: Single(c(0, 1, 0)), Target: "start"})
	p.Emit(&Goto{Target: "end"})
	p.Emit(&Label{Name: "end"})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if p.TargetOf("start") != 0 || p.TargetOf("end") != 4 {
		t.Errorf("targets: start=%d end=%d", p.TargetOf("start"), p.TargetOf("end"))
	}
	if p.Size() != 5 || p.NumVars() != 1 {
		t.Errorf("size=%d vars=%d", p.Size(), p.NumVars())
	}
}

func TestProgramResolveErrors(t *testing.T) {
	p := New("t")
	p.Emit(&Goto{Target: "nowhere"})
	if err := p.Resolve(); err == nil {
		t.Error("undefined label not reported")
	}
	q := New("t")
	q.Emit(&Label{Name: "dup"})
	q.Emit(&Label{Name: "dup"})
	if err := q.Resolve(); err == nil {
		t.Error("duplicate label not reported")
	}
}

func TestFallthroughCond(t *testing.T) {
	cond := Single(c(0, 1, 0))
	s := &IfGoto{C: cond, Target: "x"}
	if got := s.FallthroughCond().String(nil); !strings.Contains(got, "-v0 >= 1") {
		t.Errorf("default fallthrough = %s", got)
	}
	s2 := &IfGoto{C: cond, FalseC: Single(c(5)), Target: "x"}
	if got := s2.FallthroughCond().String(nil); strings.Contains(got, "v0") {
		t.Errorf("explicit FalseC ignored: %s", got)
	}
	s3 := &IfGoto{Target: "x"} // nondeterministic
	if !s3.FallthroughCond().IsTrue() {
		t.Error("nondet fallthrough should be true")
	}
}

func TestProgramString(t *testing.T) {
	p := New("demo")
	v := p.Space.Var("l.offset")
	p.Emit(&Assign{V: v, E: linear.ConstExpr(0)})
	p.Emit(&Havoc{V: v})
	p.Emit(&Assume{C: Single(c(0, 1, 0))})
	p.Emit(&Assert{C: Single(c(0, 1, 0)), Msg: "check"})
	out := p.String()
	for _, want := range []string{"l.offset := 0", "l.offset := unknown", "assume(", "assert(", "// check"} {
		if !strings.Contains(out, want) {
			t.Errorf("program text missing %q:\n%s", want, out)
		}
	}
}

func TestAsserts(t *testing.T) {
	p := New("t")
	p.Emit(&Assume{C: True()})
	p.Emit(&Assert{C: True(), Msg: "a"})
	p.Emit(&Assert{C: False(), Msg: "b"})
	idx := p.Asserts()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Errorf("asserts = %v", idx)
	}
}
