// Package ip defines the nondeterministic integer programs produced by the
// C2IP transformation (paper §3.4): straight-line code over integer
// constraint variables with assignments (possibly to "unknown"), assume and
// assert statements whose conditions are in disjunctive normal form, and
// conditional/unconditional gotos (including the nondeterministic
// "if (unknown)").
package ip

import (
	"fmt"
	"strings"

	"repro/internal/clex"
	"repro/internal/linear"
)

// DNF is a disjunction of conjunctions of linear constraints. A nil or
// one-empty-conjunct DNF is true; an empty (zero-disjunct) non-nil DNF is
// false.
type DNF [][]linear.Constraint

// True returns the trivially true condition.
func True() DNF { return DNF{nil} }

// False returns the unsatisfiable condition.
func False() DNF { return DNF{} }

// Single wraps one constraint as a DNF.
func Single(c linear.Constraint) DNF { return DNF{{c}} }

// Conj wraps one conjunction as a DNF.
func Conj(cs ...linear.Constraint) DNF { return DNF{cs} }

// IsTrue reports whether d is syntactically true.
func (d DNF) IsTrue() bool {
	if d == nil {
		return true
	}
	for _, conj := range d {
		if len(conj) == 0 {
			return true
		}
		allTaut := true
		for _, c := range conj {
			if !c.IsTautology() {
				allTaut = false
				break
			}
		}
		if allTaut {
			return true
		}
	}
	return false
}

// IsFalse reports whether d is syntactically false.
func (d DNF) IsFalse() bool { return d != nil && len(d) == 0 }

// And returns the conjunction of two DNFs (distributing).
func (d DNF) And(e DNF) DNF {
	if d.IsTrue() {
		return e
	}
	if e.IsTrue() {
		return d
	}
	if d.IsFalse() || e.IsFalse() {
		return False()
	}
	var out DNF
	for _, c1 := range d {
		for _, c2 := range e {
			conj := make([]linear.Constraint, 0, len(c1)+len(c2))
			conj = append(conj, c1...)
			conj = append(conj, c2...)
			out = append(out, conj)
		}
	}
	return out
}

// Or returns the disjunction of two DNFs.
func (d DNF) Or(e DNF) DNF {
	if d.IsTrue() || e.IsTrue() {
		return True()
	}
	if d == nil {
		return e
	}
	if e == nil {
		return d
	}
	out := make(DNF, 0, len(d)+len(e))
	out = append(out, d...)
	out = append(out, e...)
	return out
}

// Negate returns the integer negation of d in DNF (exact over integers:
// strict inequalities become >= with the constant shifted).
func (d DNF) Negate() DNF {
	if d.IsTrue() {
		return False()
	}
	if d.IsFalse() {
		return True()
	}
	// not(OR_i AND_j c_ij) = AND_i OR_j not(c_ij); distribute to DNF.
	result := True()
	for _, conj := range d {
		var disj DNF = False()
		for _, c := range conj {
			for _, nc := range c.Negate() {
				disj = disj.Or(Single(nc))
			}
		}
		result = result.And(disj)
	}
	return result
}

// String renders d with variable names from sp.
func (d DNF) String(sp *linear.Space) string {
	if d.IsTrue() {
		return "true"
	}
	if d.IsFalse() {
		return "false"
	}
	var parts []string
	for _, conj := range d {
		var cs []string
		for _, c := range conj {
			cs = append(cs, c.String(sp))
		}
		s := strings.Join(cs, " && ")
		if len(d) > 1 && len(conj) > 1 {
			s = "(" + s + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " || ")
}

// Clone deep-copies d.
func (d DNF) Clone() DNF {
	if d == nil {
		return nil
	}
	out := make(DNF, len(d))
	for i, conj := range d {
		out[i] = make([]linear.Constraint, len(conj))
		for j, c := range conj {
			out[i][j] = c.Clone()
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is an IP statement.
type Stmt interface {
	ipStmt()
	String(sp *linear.Space) string
}

// Assign is v := E.
type Assign struct {
	V int
	E linear.Expr
}

// Havoc is v := unknown.
type Havoc struct {
	V int
}

// Assume blocks execution unless C holds.
type Assume struct {
	C DNF
}

// Assert reports an error when C may not hold.
type Assert struct {
	C DNF
	// Msg describes the checked property ("dereference within bounds",
	// "precondition of g", ...).
	Msg string
	// Pos is the source location blamed in reports.
	Pos clex.Pos
	// Unverifiable marks assertions whose contract expression could not be
	// translated to linear arithmetic; they always fail conservatively.
	Unverifiable bool
}

// IfGoto branches to Target when C holds; a nil C is the nondeterministic
// "if (unknown)". FalseC, when non-nil, is the condition assumed on the
// fall-through edge (defaults to the negation of C); C2IP sets it when
// interpreting program conditions enriches the two edges asymmetrically
// (paper §3.4.2.2).
type IfGoto struct {
	C      DNF // nil = nondeterministic
	FalseC DNF // nil = Negate(C)
	Target string
}

// FallthroughCond returns the condition assumed when the branch is not
// taken.
func (s *IfGoto) FallthroughCond() DNF {
	if s.C == nil {
		return True()
	}
	if s.FalseC != nil {
		return s.FalseC
	}
	return s.C.Negate()
}

// Goto jumps unconditionally.
type Goto struct {
	Target string
}

// Label marks a jump target.
type Label struct {
	Name string
}

func (*Assign) ipStmt() {}
func (*Havoc) ipStmt()  {}
func (*Assume) ipStmt() {}
func (*Assert) ipStmt() {}
func (*IfGoto) ipStmt() {}
func (*Goto) ipStmt()   {}
func (*Label) ipStmt()  {}

// String implementations.
func (s *Assign) String(sp *linear.Space) string {
	return fmt.Sprintf("%s := %s;", sp.Name(s.V), s.E.String(sp))
}
func (s *Havoc) String(sp *linear.Space) string {
	return fmt.Sprintf("%s := unknown;", sp.Name(s.V))
}
func (s *Assume) String(sp *linear.Space) string {
	return fmt.Sprintf("assume(%s);", s.C.String(sp))
}
func (s *Assert) String(sp *linear.Space) string {
	return fmt.Sprintf("assert(%s); // %s", s.C.String(sp), s.Msg)
}
func (s *IfGoto) String(sp *linear.Space) string {
	if s.C == nil {
		return fmt.Sprintf("if (unknown) goto %s;", s.Target)
	}
	return fmt.Sprintf("if (%s) goto %s;", s.C.String(sp), s.Target)
}
func (s *Goto) String(sp *linear.Space) string  { return fmt.Sprintf("goto %s;", s.Target) }
func (s *Label) String(sp *linear.Space) string { return s.Name + ":" }

// ---------------------------------------------------------------------------
// Programs

// Program is a complete integer program for one procedure.
type Program struct {
	Name  string
	Space *linear.Space
	Stmts []Stmt
	// PreludeEnd is the index of the first statement after C2IP's entry
	// prelude (region-size and instrumentation assumptions). Contract
	// derivation reports conditions relative to this point.
	PreludeEnd int
	// labels maps label names to statement indices (built by Resolve).
	labels map[string]int
}

// New returns an empty program.
func New(name string) *Program {
	return &Program{Name: name, Space: linear.NewSpace()}
}

// Emit appends a statement.
func (p *Program) Emit(s Stmt) { p.Stmts = append(p.Stmts, s) }

// Resolve indexes labels; it must be called before TargetOf.
func (p *Program) Resolve() error {
	p.labels = map[string]int{}
	for i, s := range p.Stmts {
		if l, ok := s.(*Label); ok {
			if _, dup := p.labels[l.Name]; dup {
				return fmt.Errorf("ip: duplicate label %q", l.Name)
			}
			p.labels[l.Name] = i
		}
	}
	for _, s := range p.Stmts {
		switch s := s.(type) {
		case *Goto:
			if _, ok := p.labels[s.Target]; !ok {
				return fmt.Errorf("ip: undefined label %q", s.Target)
			}
		case *IfGoto:
			if _, ok := p.labels[s.Target]; !ok {
				return fmt.Errorf("ip: undefined label %q", s.Target)
			}
		}
	}
	return nil
}

// TargetOf returns the statement index of a label.
func (p *Program) TargetOf(label string) int { return p.labels[label] }

// Edge is a control-flow edge to statement To, guarded by the condition
// assumed along it (nil = true).
type Edge struct {
	To   int
	Cond DNF
}

// CFG returns the successor edges of every statement; node len(Stmts) is
// the exit. Resolve must have been called.
func (p *Program) CFG() [][]Edge {
	n := len(p.Stmts)
	succ := make([][]Edge, n+1)
	for i, s := range p.Stmts {
		next := i + 1
		switch s := s.(type) {
		case *Goto:
			succ[i] = []Edge{{To: p.TargetOf(s.Target)}}
		case *IfGoto:
			succ[i] = []Edge{
				{To: p.TargetOf(s.Target), Cond: s.C},
				{To: next, Cond: s.FallthroughCond()},
			}
		default:
			succ[i] = []Edge{{To: next}}
		}
	}
	return succ
}

// NumVars returns the number of constraint variables.
func (p *Program) NumVars() int { return p.Space.Dim() }

// Size returns the number of statements (the paper's "IP size").
func (p *Program) Size() int { return len(p.Stmts) }

// Asserts returns the indices of all assert statements.
func (p *Program) Asserts() []int {
	var out []int
	for i, s := range p.Stmts {
		if _, ok := s.(*Assert); ok {
			out = append(out, i)
		}
	}
	return out
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// integer program for %s (%d vars, %d stmts)\n",
		p.Name, p.NumVars(), p.Size())
	for _, s := range p.Stmts {
		if _, isLabel := s.(*Label); !isLabel {
			sb.WriteString("    ")
		}
		sb.WriteString(s.String(p.Space))
		sb.WriteString("\n")
	}
	return sb.String()
}
