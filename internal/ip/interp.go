package ip

import (
	"math/big"
	"math/rand"
)

// DefaultMaxSteps is the step budget Exec uses when maxSteps <= 0. It is
// generous relative to the benchmark programs (tens to hundreds of
// statements with small loop bounds): a random walk that has not violated
// an assert within 4096 steps is overwhelmingly likely looping soundly.
const DefaultMaxSteps = 4096

// Exec runs the integer program concretely, resolving every nondeterminism
// (havocs, if(unknown)) with rng, and returns the index of the first
// violated assert statement, if any. Execution blocks at a failed assume
// and — like the paper's instrumented semantics — halts at the first
// error.
//
// The run aborts after maxSteps statements (DefaultMaxSteps when
// maxSteps <= 0); truncated reports that the budget was exhausted before
// the program terminated or blocked, so "no violation" cannot be concluded
// from an empty result.
//
// Exec is the testing oracle for the abstract engine: an assert a concrete
// run violates first must be flagged by the (sound) analysis.
func (p *Program) Exec(rng *rand.Rand, maxSteps int) (violated []int, truncated bool) {
	if err := p.Resolve(); err != nil {
		return nil, false
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	env := make([]*big.Int, p.NumVars())
	for i := range env {
		env[i] = big.NewInt(rng.Int63n(9) - 4)
	}
	pc := 0
	for steps := 0; pc < len(p.Stmts); steps++ {
		if steps >= maxSteps {
			return violated, true
		}
		switch s := p.Stmts[pc].(type) {
		case *Assign:
			env[s.V] = s.E.Eval(env)
		case *Havoc:
			env[s.V] = big.NewInt(rng.Int63n(17) - 8)
		case *Assume:
			if !evalDNF(s.C, env) {
				return violated, false // blocked execution
			}
		case *Assert:
			if s.Unverifiable || !evalDNF(s.C, env) {
				return append(violated, pc), false
			}
		case *Goto:
			pc = p.TargetOf(s.Target)
			continue
		case *IfGoto:
			take := false
			if s.C == nil {
				take = rng.Intn(2) == 0
			} else {
				take = evalDNF(s.C, env)
			}
			if take {
				pc = p.TargetOf(s.Target)
				continue
			}
			// The fall-through condition must hold for the path to be
			// feasible; with an explicit FalseC the two edges may overlap
			// or leave gaps, so treat an infeasible fall-through as a
			// blocked execution.
			if !evalDNF(s.FallthroughCond(), env) {
				return violated, false
			}
		case *Label:
			// no-op
		}
		pc++
	}
	return violated, false
}

func evalDNF(d DNF, env []*big.Int) bool {
	if d.IsTrue() {
		return true
	}
	for _, conj := range d {
		all := true
		for _, c := range conj {
			if !c.Holds(env) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
