package ip

import (
	"math/big"
	"math/rand"
)

// Exec runs the integer program concretely, resolving every nondeterminism
// (havocs, if(unknown)) with rng, and returns the index of the first
// violated assert statement, if any. Execution blocks at a failed assume
// and — like the paper's instrumented semantics — halts at the first
// error; it aborts after maxSteps.
//
// Exec is the testing oracle for the abstract engine: an assert a concrete
// run violates first must be flagged by the (sound) analysis.
func (p *Program) Exec(rng *rand.Rand, maxSteps int) (violated []int) {
	if err := p.Resolve(); err != nil {
		return nil
	}
	env := make([]*big.Int, p.NumVars())
	for i := range env {
		env[i] = big.NewInt(rng.Int63n(9) - 4)
	}
	pc := 0
	for steps := 0; pc < len(p.Stmts) && steps < maxSteps; steps++ {
		switch s := p.Stmts[pc].(type) {
		case *Assign:
			env[s.V] = s.E.Eval(env)
		case *Havoc:
			env[s.V] = big.NewInt(rng.Int63n(17) - 8)
		case *Assume:
			if !evalDNF(s.C, env) {
				return violated // blocked execution
			}
		case *Assert:
			if s.Unverifiable || !evalDNF(s.C, env) {
				return append(violated, pc)
			}
		case *Goto:
			pc = p.TargetOf(s.Target)
			continue
		case *IfGoto:
			take := false
			if s.C == nil {
				take = rng.Intn(2) == 0
			} else {
				take = evalDNF(s.C, env)
			}
			if take {
				pc = p.TargetOf(s.Target)
				continue
			}
			// The fall-through condition must hold for the path to be
			// feasible; with an explicit FalseC the two edges may overlap
			// or leave gaps, so treat an infeasible fall-through as a
			// blocked execution.
			if !evalDNF(s.FallthroughCond(), env) {
				return violated
			}
		case *Label:
			// no-op
		}
		pc++
	}
	return violated
}

func evalDNF(d DNF, env []*big.Int) bool {
	if d.IsTrue() {
		return true
	}
	for _, conj := range d {
		all := true
		for _, c := range conj {
			if !c.Holds(env) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
