package ip

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/linear"
)

// geC builds sum(terms[i]*x_i) + k >= 0 from positional coefficients.
func geC(k int64, terms ...int64) linear.Constraint {
	e := linear.ConstExpr(k)
	for v, c := range terms {
		if c != 0 {
			e.AddTerm(v, c)
		}
	}
	return linear.NewGe(e)
}

func eqC(k int64, terms ...int64) linear.Constraint {
	c := geC(k, terms...)
	return linear.NewEq(c.E)
}

func TestExecDirectedFindsWitness(t *testing.T) {
	// x := unknown; assume(x >= 0); assert(x >= 1): x = 0 violates.
	p := New("w")
	x := p.Space.Var("x")
	p.Emit(&Havoc{V: x})
	p.Emit(&Assume{C: Single(geC(0, 1))})
	p.Emit(&Assert{C: Single(geC(-1, 1)), Msg: "x >= 1"})
	res := p.ExecDirected(2, nil, DirectedOptions{})
	if !res.Found {
		t.Fatalf("witness not found: %+v", res)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(res.Trace, want) {
		t.Errorf("trace = %v, want %v", res.Trace, want)
	}
}

func TestExecDirectedNoWitness(t *testing.T) {
	// assume(x >= 1); assert(x >= 0) always holds: exhaustive search over
	// the finite candidate list finds nothing and is not truncated.
	p := New("safe")
	p.Space.Var("x")
	p.Emit(&Assume{C: Single(geC(-1, 1))})
	p.Emit(&Assert{C: Single(geC(0, 1)), Msg: "x >= 0"})
	res := p.ExecDirected(1, nil, DirectedOptions{})
	if res.Found {
		t.Fatalf("found impossible witness: trace %v", res.Trace)
	}
	if res.Truncated {
		t.Errorf("tiny search reported truncated")
	}
}

// TestExecDirectedSolvesConstants checks constraint-directed value
// selection: assume(x = 4) requires the solver to propose 4, which is not
// in the generic candidate pool.
func TestExecDirectedSolvesConstants(t *testing.T) {
	p := New("const")
	p.Space.Var("x")
	y := p.Space.Var("y")
	p.Emit(&Assume{C: Conj(eqC(-4, 1))})                     // x = 4
	p.Emit(&Havoc{V: y})                                     // y := unknown
	p.Emit(&Assume{C: Conj(eqC(0, 1, -1))})                  // y = x
	p.Emit(&Assert{C: Single(geC(-5, 0, 1)), Msg: "y >= 5"}) // fails: y = 4
	res := p.ExecDirected(3, nil, DirectedOptions{})
	if !res.Found {
		t.Fatalf("constraint-solved witness not found: %+v", res)
	}
}

// TestExecDirectedBoundary checks that inequality boundaries (and their
// just-violating neighbors) are proposed: the only failing value of
// assert(x <= 99) under assume(x <= 100) is far outside the generic pool.
func TestExecDirectedBoundary(t *testing.T) {
	p := New("bound")
	p.Space.Var("x")
	p.Emit(&Assume{C: Conj(geC(0, 1), geC(100, -1))}) // 0 <= x <= 100
	p.Emit(&Assert{C: Single(geC(99, -1)), Msg: "x <= 99"})
	res := p.ExecDirected(1, nil, DirectedOptions{})
	if !res.Found {
		t.Fatalf("boundary witness (x = 100) not found: %+v", res)
	}
}

func TestExecDirectedHints(t *testing.T) {
	// Without a hint the witness x = 77 is unreachable; with one it is
	// found immediately.
	p := New("hint")
	x := p.Space.Var("x")
	p.Emit(&Havoc{V: x})
	neq := DNF{
		{geC(-78, 1)}, // x >= 78
		{geC(76, -1)}, // x <= 76
	}
	p.Emit(&Assert{C: neq, Msg: "x != 77"})
	if res := p.ExecDirected(1, nil, DirectedOptions{}); res.Found {
		t.Fatalf("witness found without hint: %v", res.Trace)
	}
	hints := map[int]*big.Int{x: big.NewInt(77)}
	if res := p.ExecDirected(1, hints, DirectedOptions{}); !res.Found {
		t.Fatalf("hinted witness not found")
	}
}

func TestExecDirectedFirstErrorSemantics(t *testing.T) {
	// Both asserts fail on x = 0, but the first one halts the path: the
	// second is not witnessable.
	p := New("first")
	x := p.Space.Var("x")
	p.Emit(&Havoc{V: x})
	p.Emit(&Assume{C: Single(eqC(0, 1))})                 // x = 0
	p.Emit(&Assert{C: Single(geC(-1, 1)), Msg: "x >= 1"}) // fails first
	p.Emit(&Assert{C: Single(geC(-2, 1)), Msg: "x >= 2"}) // shadowed
	if res := p.ExecDirected(3, nil, DirectedOptions{}); res.Found {
		t.Errorf("shadowed assert witnessed: %v", res.Trace)
	}
	if res := p.ExecDirected(2, nil, DirectedOptions{}); !res.Found {
		t.Errorf("first assert not witnessed")
	}
}

func TestExecDirectedBranches(t *testing.T) {
	// The violation hides behind the non-taken edge of a nondeterministic
	// branch.
	p := New("branch")
	x := p.Space.Var("x")
	p.Emit(&Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&IfGoto{Target: "skip"}) // if (unknown)
	p.Emit(&Assign{V: x, E: linear.ConstExpr(5)})
	p.Emit(&Label{Name: "skip"})
	p.Emit(&Assert{C: Single(geC(-1, 1)), Msg: "x >= 1"}) // fails when skipped
	res := p.ExecDirected(4, nil, DirectedOptions{})
	if !res.Found {
		t.Fatalf("branch witness not found")
	}
}

func TestExecDirectedUnverifiableNeverTarget(t *testing.T) {
	p := New("unv")
	p.Space.Var("x")
	p.Emit(&Assert{Unverifiable: true, Msg: "opaque"})
	if res := p.ExecDirected(0, nil, DirectedOptions{}); res.Found {
		t.Errorf("unverifiable assert must not be witnessable")
	}
}

func TestExecDirectedDeterministic(t *testing.T) {
	p := New("det")
	x := p.Space.Var("x")
	y := p.Space.Var("y")
	p.Emit(&Havoc{V: x})
	p.Emit(&Havoc{V: y})
	p.Emit(&Assume{C: Single(geC(0, 1, 1))})
	p.Emit(&Assert{C: Single(geC(0, 1, -1)), Msg: "x >= y"})
	first := p.ExecDirected(3, nil, DirectedOptions{})
	for i := 0; i < 5; i++ {
		again := p.ExecDirected(3, nil, DirectedOptions{})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs: %+v vs %+v", i, first, again)
		}
	}
}

func TestExecDirectedBudgetTruncates(t *testing.T) {
	// An infinite loop ahead of the target exhausts any finite budget.
	p := New("loop")
	x := p.Space.Var("x")
	p.Emit(&Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&Label{Name: "L"})
	p.Emit(&Goto{Target: "L"})
	p.Emit(&Assert{C: Single(geC(-1, 1)), Msg: "dead"})
	res := p.ExecDirected(3, nil, DirectedOptions{Budget: 100})
	if res.Found {
		t.Fatalf("witness found through an infinite loop")
	}
	if !res.Truncated {
		t.Errorf("budget exhaustion not reported as truncated")
	}
}

func TestExecTruncatedFlag(t *testing.T) {
	p := New("loop")
	x := p.Space.Var("x")
	p.Emit(&Assign{V: x, E: linear.ConstExpr(0)})
	p.Emit(&Label{Name: "L"})
	p.Emit(&Goto{Target: "L"})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	violated, truncated := p.Exec(rng, 50)
	if len(violated) != 0 {
		t.Errorf("violations in a loop with no asserts: %v", violated)
	}
	if !truncated {
		t.Errorf("infinite loop not reported truncated")
	}

	q := New("straight")
	y := q.Space.Var("y")
	q.Emit(&Assign{V: y, E: linear.ConstExpr(1)})
	q.Emit(&Assert{C: Single(geC(0, 1)), Msg: "y >= 0"})
	if err := q.Resolve(); err != nil {
		t.Fatal(err)
	}
	violated, truncated = q.Exec(rng, 0) // 0 = DefaultMaxSteps
	if truncated {
		t.Errorf("straight-line program reported truncated")
	}
	if len(violated) != 0 {
		t.Errorf("unexpected violations: %v", violated)
	}
}
