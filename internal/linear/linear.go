// Package linear provides exact linear expressions and constraints over a
// finite set of integer variables, the lingua franca between the C2IP
// transformer, the numeric abstract domains, and the contract derivation
// algorithms.
//
// Variables are identified by dense indices into a Space, which maps them
// to the constraint-variable names of paper §3.4.1 (l.val, l.offset,
// l.aSize, l.is_nullt, l.len, ...). All coefficients are exact big.Int
// values: the analysis never rounds.
package linear

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Space assigns dense indices to named variables.
type Space struct {
	names []string
	index map[string]int
}

// NewSpace returns an empty variable space.
func NewSpace() *Space {
	return &Space{index: map[string]int{}}
}

// Var returns the index for name, allocating one if needed.
func (s *Space) Var(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.names)
	s.names = append(s.names, name)
	s.index[name] = i
	return i
}

// Lookup returns the index for name and whether it exists.
func (s *Space) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Name returns the name of variable i.
func (s *Space) Name(i int) string {
	if i < 0 || i >= len(s.names) {
		return fmt.Sprintf("v%d", i)
	}
	return s.names[i]
}

// Names returns all variable names in index order.
func (s *Space) Names() []string { return append([]string(nil), s.names...) }

// Dim returns the number of variables.
func (s *Space) Dim() int { return len(s.names) }

// ---------------------------------------------------------------------------
// Expressions

// Expr is a linear expression sum(coef_i * x_i) + Const with exact integer
// coefficients. The zero value is the constant 0.
type Expr struct {
	coef  map[int]*big.Int
	Const *big.Int
}

// NewExpr returns the zero expression.
func NewExpr() Expr {
	return Expr{coef: map[int]*big.Int{}, Const: new(big.Int)}
}

// ConstExpr returns the constant expression c.
func ConstExpr(c int64) Expr {
	e := NewExpr()
	e.Const.SetInt64(c)
	return e
}

// VarExpr returns the expression 1*x_v.
func VarExpr(v int) Expr {
	e := NewExpr()
	e.coef[v] = big.NewInt(1)
	return e
}

// Clone returns a deep copy.
func (e Expr) Clone() Expr {
	c := NewExpr()
	c.Const.Set(e.constOrZero())
	for v, k := range e.coef {
		c.coef[v] = new(big.Int).Set(k)
	}
	return c
}

func (e Expr) constOrZero() *big.Int {
	if e.Const == nil {
		return new(big.Int)
	}
	return e.Const
}

// Coef returns the coefficient of variable v (zero if absent).
func (e Expr) Coef(v int) *big.Int {
	if k, ok := e.coef[v]; ok {
		return k
	}
	return new(big.Int)
}

// SetCoef sets the coefficient of v.
func (e *Expr) SetCoef(v int, k *big.Int) {
	if e.coef == nil {
		e.coef = map[int]*big.Int{}
	}
	if k.Sign() == 0 {
		delete(e.coef, v)
		return
	}
	e.coef[v] = new(big.Int).Set(k)
}

// AddTerm adds k*x_v to e in place.
func (e *Expr) AddTerm(v int, k int64) {
	if e.coef == nil {
		e.coef = map[int]*big.Int{}
	}
	c, ok := e.coef[v]
	if !ok {
		c = new(big.Int)
		e.coef[v] = c
	}
	c.Add(c, big.NewInt(k))
	if c.Sign() == 0 {
		delete(e.coef, v)
	}
}

// AddConst adds k to the constant term in place.
func (e *Expr) AddConst(k int64) {
	if e.Const == nil {
		e.Const = new(big.Int)
	}
	e.Const.Add(e.Const, big.NewInt(k))
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	r := e.Clone()
	r.Const.Add(r.Const, f.constOrZero())
	for v, k := range f.coef {
		c, ok := r.coef[v]
		if !ok {
			c = new(big.Int)
			r.coef[v] = c
		}
		c.Add(c, k)
		if c.Sign() == 0 {
			delete(r.coef, v)
		}
	}
	return r
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Scale(-1)) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	r := e.Clone()
	bk := big.NewInt(k)
	r.Const.Mul(r.Const, bk)
	for v := range r.coef {
		r.coef[v].Mul(r.coef[v], bk)
		if r.coef[v].Sign() == 0 {
			delete(r.coef, v)
		}
	}
	return r
}

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.coef) == 0 }

// Vars returns the variables with nonzero coefficients, sorted.
func (e Expr) Vars() []int {
	var vs []int
	for v := range e.coef {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Subst returns e with variable v replaced by the expression r.
func (e Expr) Subst(v int, r Expr) Expr {
	k, ok := e.coef[v]
	if !ok {
		return e.Clone()
	}
	out := e.Clone()
	delete(out.coef, v)
	scaled := r.Clone()
	scaled.Const.Mul(scaled.Const, k)
	for u := range scaled.coef {
		scaled.coef[u].Mul(scaled.coef[u], k)
	}
	return out.Add(scaled)
}

// Eval evaluates e at the given integer point (indexed by variable).
func (e Expr) Eval(point []*big.Int) *big.Int {
	r := new(big.Int).Set(e.constOrZero())
	for v, k := range e.coef {
		if v < len(point) && point[v] != nil {
			t := new(big.Int).Mul(k, point[v])
			r.Add(r, t)
		}
	}
	return r
}

// String renders e using names from sp (or v<i> when sp is nil).
func (e Expr) String(sp *Space) string {
	var parts []string
	for _, v := range e.Vars() {
		k := e.coef[v]
		name := fmt.Sprintf("v%d", v)
		if sp != nil {
			name = sp.Name(v)
		}
		switch {
		case k.Cmp(big.NewInt(1)) == 0:
			parts = append(parts, name)
		case k.Cmp(big.NewInt(-1)) == 0:
			parts = append(parts, "-"+name)
		default:
			parts = append(parts, k.String()+"*"+name)
		}
	}
	c := e.constOrZero()
	if c.Sign() != 0 || len(parts) == 0 {
		parts = append(parts, c.String())
	}
	s := strings.Join(parts, " + ")
	return strings.ReplaceAll(s, "+ -", "- ")
}

// ---------------------------------------------------------------------------
// Constraints

// Rel is a constraint relation.
type Rel int

// Constraint relations: the expression is {==, >=} 0. Strict inequalities
// are normalized away at construction because all variables are integers
// (e > 0 becomes e - 1 >= 0).
const (
	Eq Rel = iota
	Ge
)

func (r Rel) String() string {
	if r == Eq {
		return "="
	}
	return ">="
}

// Constraint asserts E Rel 0.
type Constraint struct {
	E   Expr
	Rel Rel
}

// NewGe returns the constraint e >= 0.
func NewGe(e Expr) Constraint { return Constraint{E: e, Rel: Ge} }

// NewGt returns e > 0 as the integer constraint e - 1 >= 0.
func NewGt(e Expr) Constraint {
	r := e.Clone()
	r.AddConst(-1)
	return Constraint{E: r, Rel: Ge}
}

// NewEq returns the constraint e == 0.
func NewEq(e Expr) Constraint { return Constraint{E: e, Rel: Eq} }

// Clone returns a deep copy.
func (c Constraint) Clone() Constraint {
	return Constraint{E: c.E.Clone(), Rel: c.Rel}
}

// Negate returns the integer negation of c as a disjunction of constraints:
// not(e == 0) is {e >= 1} or {-e >= 1}; not(e >= 0) is {-e >= 1}.
func (c Constraint) Negate() []Constraint {
	switch c.Rel {
	case Eq:
		pos := c.E.Clone()
		pos.AddConst(-1)
		neg := c.E.Scale(-1)
		neg.AddConst(-1)
		return []Constraint{{E: pos, Rel: Ge}, {E: neg, Rel: Ge}}
	default:
		neg := c.E.Scale(-1)
		neg.AddConst(-1)
		return []Constraint{{E: neg, Rel: Ge}}
	}
}

// Holds reports whether the constraint is satisfied at the integer point.
func (c Constraint) Holds(point []*big.Int) bool {
	v := c.E.Eval(point)
	if c.Rel == Eq {
		return v.Sign() == 0
	}
	return v.Sign() >= 0
}

// IsTautology reports whether c holds for all assignments (constant and
// satisfied).
func (c Constraint) IsTautology() bool {
	if !c.E.IsConst() {
		return false
	}
	if c.Rel == Eq {
		return c.E.constOrZero().Sign() == 0
	}
	return c.E.constOrZero().Sign() >= 0
}

// IsContradiction reports whether c fails for all assignments.
func (c Constraint) IsContradiction() bool {
	if !c.E.IsConst() {
		return false
	}
	if c.Rel == Eq {
		return c.E.constOrZero().Sign() != 0
	}
	return c.E.constOrZero().Sign() < 0
}

// String renders the constraint in "e >= 0" normal form but moving the
// constant to the right-hand side for readability: "x - y >= 3".
func (c Constraint) String(sp *Space) string {
	lhs := c.E.Clone()
	k := new(big.Int).Neg(lhs.constOrZero())
	lhs.Const.SetInt64(0)
	return fmt.Sprintf("%s %s %s", lhs.String(sp), c.Rel, k)
}

// System is a conjunction of constraints.
type System []Constraint

// String renders the system.
func (s System) String(sp *Space) string {
	var parts []string
	for _, c := range s {
		parts = append(parts, c.String(sp))
	}
	return strings.Join(parts, " && ")
}

// Clone deep-copies the system.
func (s System) Clone() System {
	out := make(System, len(s))
	for i, c := range s {
		out[i] = c.Clone()
	}
	return out
}
