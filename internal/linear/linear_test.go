package linear

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestSpace(t *testing.T) {
	sp := NewSpace()
	x := sp.Var("x")
	y := sp.Var("y")
	if x == y {
		t.Fatal("distinct names share an index")
	}
	if sp.Var("x") != x {
		t.Error("Var not idempotent")
	}
	if sp.Dim() != 2 {
		t.Errorf("dim = %d", sp.Dim())
	}
	if sp.Name(x) != "x" || sp.Name(y) != "y" {
		t.Error("names wrong")
	}
	if _, ok := sp.Lookup("z"); ok {
		t.Error("phantom lookup")
	}
	if got := sp.Names(); len(got) != 2 || got[0] != "x" {
		t.Errorf("Names = %v", got)
	}
}

func TestExprArithmetic(t *testing.T) {
	// e = 2x - 3y + 5
	e := ConstExpr(5)
	e.AddTerm(0, 2)
	e.AddTerm(1, -3)
	f := VarExpr(0).Scale(2) // 2x
	sum := e.Add(f)          // 4x - 3y + 5
	if sum.Coef(0).Int64() != 4 || sum.Coef(1).Int64() != -3 || sum.Const.Int64() != 5 {
		t.Errorf("sum = %s", sum.String(nil))
	}
	diff := e.Sub(e)
	if !diff.IsConst() || diff.Const.Sign() != 0 {
		t.Errorf("e - e = %s", diff.String(nil))
	}
	// Cancelled coefficients disappear from Vars.
	g := VarExpr(3).Add(VarExpr(3).Scale(-1))
	if len(g.Vars()) != 0 {
		t.Errorf("cancelled term kept: %v", g.Vars())
	}
}

func TestExprSubst(t *testing.T) {
	// e = x + 2y; substitute y := x + 1 -> 3x + 2.
	e := VarExpr(0).Add(VarExpr(1).Scale(2))
	r := VarExpr(0)
	r.AddConst(1)
	out := e.Subst(1, r)
	if out.Coef(0).Int64() != 3 || out.Const.Int64() != 2 || len(out.Vars()) != 1 {
		t.Errorf("subst = %s", out.String(nil))
	}
	// Substituting an absent variable is a no-op.
	same := e.Subst(7, r)
	if same.String(nil) != e.String(nil) {
		t.Error("no-op subst changed expression")
	}
}

func TestExprEval(t *testing.T) {
	e := ConstExpr(1)
	e.AddTerm(0, 2)
	e.AddTerm(1, -1)
	pt := []*big.Int{big.NewInt(3), big.NewInt(4)}
	if got := e.Eval(pt); got.Int64() != 3 { // 2*3 - 4 + 1
		t.Errorf("eval = %v", got)
	}
}

func TestConstraints(t *testing.T) {
	e := VarExpr(0) // x >= 0
	ge := NewGe(e)
	pt0 := []*big.Int{big.NewInt(0)}
	ptm := []*big.Int{big.NewInt(-1)}
	if !ge.Holds(pt0) || ge.Holds(ptm) {
		t.Error("x >= 0 misevaluated")
	}
	gt := NewGt(VarExpr(0)) // x > 0 == x - 1 >= 0
	if gt.Holds(pt0) {
		t.Error("x > 0 holds at 0")
	}
	eq := NewEq(VarExpr(0))
	if !eq.Holds(pt0) || eq.Holds(ptm) {
		t.Error("x == 0 misevaluated")
	}
}

func TestTautologyContradiction(t *testing.T) {
	if !NewGe(ConstExpr(0)).IsTautology() || !NewGe(ConstExpr(3)).IsTautology() {
		t.Error("constant >= 0 not a tautology")
	}
	if !NewGe(ConstExpr(-1)).IsContradiction() {
		t.Error("-1 >= 0 not a contradiction")
	}
	if NewGe(VarExpr(0)).IsTautology() || NewGe(VarExpr(0)).IsContradiction() {
		t.Error("variable constraint misclassified")
	}
	if !NewEq(ConstExpr(0)).IsTautology() || !NewEq(ConstExpr(2)).IsContradiction() {
		t.Error("equality constants misclassified")
	}
}

// TestNegatePointwise (property): for integer points, Negate flips Holds.
func TestNegatePointwise(t *testing.T) {
	f := func(a, b, cc, x, y int8) bool {
		e := ConstExpr(int64(cc))
		e.AddTerm(0, int64(a))
		e.AddTerm(1, int64(b))
		for _, cons := range []Constraint{NewGe(e), NewEq(e.Clone())} {
			pt := []*big.Int{big.NewInt(int64(x)), big.NewInt(int64(y))}
			holds := cons.Holds(pt)
			negHolds := false
			for _, nc := range cons.Negate() {
				if nc.Holds(pt) {
					negHolds = true
				}
			}
			if holds == negHolds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	sp := NewSpace()
	sp.Var("len")
	sp.Var("off")
	e := VarExpr(0).Sub(VarExpr(1))
	e.AddConst(-3)
	c := NewGe(e)
	if got := c.String(sp); got != "len - off >= 3" {
		t.Errorf("rendered %q", got)
	}
	sys := System{c, NewEq(VarExpr(0))}
	if got := sys.String(sp); got != "len - off >= 3 && len = 0" {
		t.Errorf("system rendered %q", got)
	}
}

func TestSystemClone(t *testing.T) {
	sys := System{NewGe(VarExpr(0))}
	cl := sys.Clone()
	cl[0].E.AddConst(5)
	if sys[0].E.Const.Sign() != 0 {
		t.Error("clone aliases the original")
	}
}
