package interval

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

func ge(c int64, terms ...int64) linear.Constraint {
	e := linear.ConstExpr(c)
	for i := 0; i+1 < len(terms); i += 2 {
		e.AddTerm(int(terms[i+1]), terms[i])
	}
	return linear.NewGe(e)
}

func TestMeetBounds(t *testing.T) {
	b := Universe(2)
	b = b.MeetConstraint(ge(0, 1, 0))  // x >= 0
	b = b.MeetConstraint(ge(5, -1, 0)) // x <= 5
	iv := b.Var(0)
	if iv.Lo.Int64() != 0 || iv.Hi.Int64() != 5 {
		t.Errorf("x in %s, want [0,5]", iv)
	}
	if !b.Entails(ge(0, 1, 0)) || b.Entails(ge(-1, 1, 0)) {
		t.Error("entailment wrong")
	}
}

func TestMeetEmpty(t *testing.T) {
	b := Universe(1)
	b = b.MeetConstraint(ge(-3, 1, 0)) // x >= 3
	b = b.MeetConstraint(ge(1, -1, 0)) // x <= 1
	if !b.IsEmpty() {
		t.Errorf("x>=3 && x<=1 should be empty: %s", b.String(nil))
	}
}

func TestMeetPropagatesThroughSums(t *testing.T) {
	// x >= 0, y >= 0, x + y <= 4 gives x <= 4.
	b := Universe(2)
	b = b.MeetConstraint(ge(0, 1, 0))
	b = b.MeetConstraint(ge(0, 1, 1))
	b = b.MeetConstraint(ge(4, -1, 0, -1, 1))
	if iv := b.Var(0); iv.Hi == nil || iv.Hi.Int64() != 4 {
		t.Errorf("x = %s, want upper bound 4", iv)
	}
}

func TestJoinWiden(t *testing.T) {
	a := Universe(1).MeetConstraint(ge(0, 1, 0)).MeetConstraint(ge(0, -1, 0))  // x == 0
	b := Universe(1).MeetConstraint(ge(-1, 1, 0)).MeetConstraint(ge(1, -1, 0)) // x == 1
	j := a.Join(b)
	if iv := j.Var(0); iv.Lo.Int64() != 0 || iv.Hi.Int64() != 1 {
		t.Errorf("join = %s", iv)
	}
	w := a.Widen(j)
	if iv := w.Var(0); iv.Lo == nil || iv.Lo.Int64() != 0 || iv.Hi != nil {
		t.Errorf("widen = %s, want [0, +inf]", iv)
	}
	if !w.Includes(a) || !w.Includes(b) || !w.Includes(j) {
		t.Error("widening not extensive")
	}
}

func TestAssignHavoc(t *testing.T) {
	b := Universe(2).MeetConstraint(ge(-2, 1, 0)).MeetConstraint(ge(2, -1, 0)) // x == 2
	e := linear.VarExpr(0).Scale(3)
	e.AddConst(1)
	b2 := b.Assign(1, e) // y := 3x + 1 = 7
	if iv := b2.Var(1); iv.Lo.Int64() != 7 || iv.Hi.Int64() != 7 {
		t.Errorf("y = %s", iv)
	}
	h := b2.Havoc(1)
	if iv := h.Var(1); !(iv.Lo == nil && iv.Hi == nil) {
		t.Errorf("havoc left %s", iv)
	}
}

// TestSoundVsPoints: randomized bound propagation never cuts off integer
// points satisfying the constraints.
func TestSoundVsPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		b := Universe(2)
		var sys []linear.Constraint
		for k := 0; k < 1+rng.Intn(3); k++ {
			c := ge(rng.Int63n(9)-4, rng.Int63n(5)-2, 0, rng.Int63n(5)-2, 1)
			sys = append(sys, c)
			b = b.MeetConstraint(c)
		}
		for x := int64(-4); x <= 4; x++ {
			for y := int64(-4); y <= 4; y++ {
				pt := []*big.Int{big.NewInt(x), big.NewInt(y)}
				all := true
				for _, c := range sys {
					if !c.Holds(pt) {
						all = false
					}
				}
				if !all {
					continue
				}
				if b.IsEmpty() {
					t.Fatalf("trial %d: point (%d,%d) exists but box is empty", trial, x, y)
				}
				ivx, ivy := b.Var(0), b.Var(1)
				if (ivx.Lo != nil && ivx.Lo.Int64() > x) || (ivx.Hi != nil && ivx.Hi.Int64() < x) ||
					(ivy.Lo != nil && ivy.Lo.Int64() > y) || (ivy.Hi != nil && ivy.Hi.Int64() < y) {
					t.Fatalf("trial %d: point (%d,%d) cut off by %s, %s", trial, x, y, ivx, ivy)
				}
			}
		}
	}
}

func TestSampleAndSystem(t *testing.T) {
	b := Universe(2).MeetConstraint(ge(-3, 1, 0)).MeetConstraint(ge(9, -1, 0))
	pt := b.Sample()
	if pt == nil || pt[0].Cmp(big.NewRat(3, 1)) < 0 {
		t.Errorf("sample = %v", pt)
	}
	sys := b.System()
	if len(sys) != 2 {
		t.Errorf("system = %s", linear.System(sys).String(nil))
	}
	if Bottom(2).Sample() != nil {
		t.Error("bottom sampled")
	}
}
