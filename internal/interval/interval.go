// Package interval implements the classic interval abstract domain as a
// cheap alternative to convex polyhedra. The paper (§3.5) notes that "in
// theory, any sound integer analysis can be used" but chooses linear
// relation analysis because the tracked properties are relational; the
// domain-ablation benchmark quantifies exactly how much precision interval
// analysis loses on the Table 5 suites.
package interval

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/linear"
)

// Itv is a (possibly unbounded) integer interval. Nil bounds denote
// infinities.
type Itv struct {
	Lo, Hi *big.Int // nil = -inf / +inf
}

func (i Itv) isTop() bool { return i.Lo == nil && i.Hi == nil }

func (i Itv) isEmpty() bool {
	return i.Lo != nil && i.Hi != nil && i.Lo.Cmp(i.Hi) > 0
}

func (i Itv) String() string {
	lo, hi := "-inf", "+inf"
	if i.Lo != nil {
		lo = i.Lo.String()
	}
	if i.Hi != nil {
		hi = i.Hi.String()
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Box is a product of intervals over n variables. A nil vars slice with
// empty=true is the bottom element.
type Box struct {
	vars  []Itv
	empty bool
}

// Universe returns the unconstrained box.
func Universe(n int) *Box { return &Box{vars: make([]Itv, n)} }

// Bottom returns the empty box.
func Bottom(n int) *Box { return &Box{vars: make([]Itv, n), empty: true} }

// Clone returns a deep copy.
func (b *Box) Clone() *Box {
	c := &Box{vars: make([]Itv, len(b.vars)), empty: b.empty}
	copy(c.vars, b.vars)
	return c
}

// IsEmpty reports whether the box is empty.
func (b *Box) IsEmpty() bool { return b.empty }

// Var returns the interval of variable v.
func (b *Box) Var(v int) Itv { return b.vars[v] }

func maxB(a, b *big.Int) *big.Int {
	if a == nil || b == nil {
		return nil
	}
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

func minB(a, b *big.Int) *big.Int {
	if a == nil || b == nil {
		return nil
	}
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Join returns the smallest box containing both.
func (b *Box) Join(o *Box) *Box {
	if b.empty {
		return o.Clone()
	}
	if o.empty {
		return b.Clone()
	}
	out := Universe(len(b.vars))
	for i := range b.vars {
		var lo, hi *big.Int
		if b.vars[i].Lo != nil && o.vars[i].Lo != nil {
			lo = minB(b.vars[i].Lo, o.vars[i].Lo)
		}
		if b.vars[i].Hi != nil && o.vars[i].Hi != nil {
			hi = maxB(b.vars[i].Hi, o.vars[i].Hi)
		}
		out.vars[i] = Itv{Lo: lo, Hi: hi}
	}
	return out
}

// Widen drops unstable bounds.
func (b *Box) Widen(o *Box) *Box {
	if b.empty {
		return o.Clone()
	}
	if o.empty {
		return b.Clone()
	}
	out := Universe(len(b.vars))
	for i := range b.vars {
		lo := b.vars[i].Lo
		if lo != nil && (o.vars[i].Lo == nil || o.vars[i].Lo.Cmp(lo) < 0) {
			lo = nil
		}
		hi := b.vars[i].Hi
		if hi != nil && (o.vars[i].Hi == nil || o.vars[i].Hi.Cmp(hi) > 0) {
			hi = nil
		}
		out.vars[i] = Itv{Lo: lo, Hi: hi}
	}
	return out
}

// Includes reports whether o is contained in b.
func (b *Box) Includes(o *Box) bool {
	if o.empty {
		return true
	}
	if b.empty {
		return false
	}
	for i := range b.vars {
		if b.vars[i].Lo != nil && (o.vars[i].Lo == nil || o.vars[i].Lo.Cmp(b.vars[i].Lo) < 0) {
			return false
		}
		if b.vars[i].Hi != nil && (o.vars[i].Hi == nil || o.vars[i].Hi.Cmp(b.vars[i].Hi) > 0) {
			return false
		}
	}
	return true
}

// evalRange returns interval bounds of a linear expression over the box.
func (b *Box) evalRange(e linear.Expr) Itv {
	lo := new(big.Int).Set(e.Const)
	hi := new(big.Int).Set(e.Const)
	loOK, hiOK := true, true
	for _, v := range e.Vars() {
		k := e.Coef(v)
		iv := b.vars[v]
		var tLo, tHi *big.Int
		if k.Sign() > 0 {
			if iv.Lo != nil {
				tLo = new(big.Int).Mul(k, iv.Lo)
			}
			if iv.Hi != nil {
				tHi = new(big.Int).Mul(k, iv.Hi)
			}
		} else {
			if iv.Hi != nil {
				tLo = new(big.Int).Mul(k, iv.Hi)
			}
			if iv.Lo != nil {
				tHi = new(big.Int).Mul(k, iv.Lo)
			}
		}
		if tLo == nil {
			loOK = false
		} else if loOK {
			lo.Add(lo, tLo)
		}
		if tHi == nil {
			hiOK = false
		} else if hiOK {
			hi.Add(hi, tHi)
		}
	}
	out := Itv{}
	if loOK {
		out.Lo = lo
	}
	if hiOK {
		out.Hi = hi
	}
	return out
}

// MeetConstraint refines the box with e >= 0 or e == 0 by bound
// propagation on each variable.
func (b *Box) MeetConstraint(c linear.Constraint) *Box {
	if b.empty {
		return b.Clone()
	}
	out := b.Clone()
	apply := func(cc linear.Constraint) {
		// cc: sum k_i x_i + d >= 0. For each variable x_j:
		// k_j x_j >= -(d + sum_{i!=j} k_i x_i); bound using ranges of the
		// rest.
		for _, j := range cc.E.Vars() {
			kj := cc.E.Coef(j)
			rest := cc.E.Clone()
			rest.SetCoef(j, new(big.Int))
			r := out.evalRange(rest)
			// k_j x_j >= -rest. Upper bound of -rest needs Hi of rest.
			if r.Hi == nil {
				continue
			}
			bound := new(big.Int).Neg(r.Hi) // k_j x_j >= bound
			iv := out.vars[j]
			if kj.Sign() > 0 {
				// x_j >= ceil(bound / k_j)
				q := ceilDiv(bound, kj)
				if iv.Lo == nil || q.Cmp(iv.Lo) > 0 {
					iv.Lo = q
				}
			} else {
				// x_j <= floor(bound / k_j) with k_j < 0
				q := floorDiv(bound, kj)
				if iv.Hi == nil || q.Cmp(iv.Hi) < 0 {
					iv.Hi = q
				}
			}
			out.vars[j] = iv
			if iv.isEmpty() {
				out.empty = true
				return
			}
		}
		// Constant check.
		if len(cc.E.Vars()) == 0 && cc.E.Const.Sign() < 0 {
			out.empty = true
		}
	}
	apply(c)
	if c.Rel == linear.Eq && !out.empty {
		apply(linear.Constraint{E: c.E.Scale(-1), Rel: linear.Ge})
	}
	return out
}

// Assign sets v to the range of e.
func (b *Box) Assign(v int, e linear.Expr) *Box {
	if b.empty {
		return b.Clone()
	}
	out := b.Clone()
	out.vars[v] = out.evalRange(e)
	return out
}

// Havoc forgets v.
func (b *Box) Havoc(v int) *Box {
	if b.empty {
		return b.Clone()
	}
	out := b.Clone()
	out.vars[v] = Itv{}
	return out
}

// Entails reports whether every point of the box satisfies c.
func (b *Box) Entails(c linear.Constraint) bool {
	if b.empty {
		return true
	}
	r := b.evalRange(c.E)
	if c.Rel == linear.Eq {
		return r.Lo != nil && r.Hi != nil && r.Lo.Sign() == 0 && r.Hi.Sign() == 0
	}
	return r.Lo != nil && r.Lo.Sign() >= 0
}

// System renders the box as bound constraints.
func (b *Box) System() linear.System {
	var sys linear.System
	if b.empty {
		return linear.System{linear.NewGe(linear.ConstExpr(-1))}
	}
	for v, iv := range b.vars {
		if iv.Lo != nil {
			e := linear.VarExpr(v)
			e.Const.Neg(iv.Lo)
			sys = append(sys, linear.NewGe(e))
		}
		if iv.Hi != nil {
			e := linear.VarExpr(v).Scale(-1)
			e.Const.Set(iv.Hi)
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// Bounds returns the tightest [lo, hi] interval of variable v; nil
// pointers denote unboundedness.
func (b *Box) Bounds(v int) (lo, hi *big.Rat) {
	if b.empty || v < 0 || v >= len(b.vars) {
		return nil, nil
	}
	iv := b.vars[v]
	if iv.Lo != nil {
		lo = new(big.Rat).SetInt(iv.Lo)
	}
	if iv.Hi != nil {
		hi = new(big.Rat).SetInt(iv.Hi)
	}
	return lo, hi
}

// Sample returns a contained point (preferring bounds, else zero).
func (b *Box) Sample() []*big.Rat {
	if b.empty {
		return nil
	}
	pt := make([]*big.Rat, len(b.vars))
	for v, iv := range b.vars {
		switch {
		case iv.Lo != nil:
			pt[v] = new(big.Rat).SetInt(iv.Lo)
		case iv.Hi != nil:
			pt[v] = new(big.Rat).SetInt(iv.Hi)
		default:
			pt[v] = new(big.Rat)
		}
	}
	return pt
}

// String renders nontrivial intervals.
func (b *Box) String(sp *linear.Space) string {
	if b.empty {
		return "false"
	}
	var parts []string
	for v, iv := range b.vars {
		if iv.isTop() {
			continue
		}
		name := fmt.Sprintf("v%d", v)
		if sp != nil {
			name = sp.Name(v)
		}
		parts = append(parts, fmt.Sprintf("%s in %s", name, iv))
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " && ")
}

func ceilDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	// Want ceil(a/b): Quo truncates toward zero.
	if r.Sign() != 0 && (a.Sign() > 0) == (b.Sign() > 0) {
		q.Add(q, big.NewInt(1))
	}
	return q
}

func floorDiv(a, b *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(a, b, new(big.Int))
	if r.Sign() != 0 && (a.Sign() > 0) != (b.Sign() > 0) {
		q.Sub(q, big.NewInt(1))
	}
	return q
}
