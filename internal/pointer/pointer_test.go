package pointer

import (
	"testing"

	"repro/internal/corec"
	"repro/internal/cparse"
)

func analyze(t *testing.T, src string, mode Mode) *Result {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return Analyze(p, mode)
}

// pointsToNames returns the names of the nodes that the variable qualified
// may point to.
func pointsToNames(r *Result, qualified string) map[string]bool {
	id, ok := r.Lookup(qualified)
	if !ok {
		return nil
	}
	out := map[string]bool{}
	for _, t := range r.PointsTo(id) {
		out[r.Node(t).Name] = true
	}
	return out
}

func TestBasicAddressOf(t *testing.T) {
	src := `
void f() {
    int x;
    int *p;
    int **pp;
    p = &x;
    pp = &p;
}
`
	r := analyze(t, src, Inclusion)
	if pt := pointsToNames(r, "f::p"); !pt["f::x"] {
		t.Errorf("p points to %v, want f::x", pt)
	}
	if pt := pointsToNames(r, "f::pp"); !pt["f::p"] {
		t.Errorf("pp points to %v, want f::p", pt)
	}
}

func TestLoadStore(t *testing.T) {
	src := `
void f() {
    int a;
    int b;
    int *p;
    int *q;
    int **pp;
    p = &a;
    pp = &p;
    *pp = &b;     // now p may point to b too
    q = *pp;      // q gets what p holds
}
`
	r := analyze(t, src, Inclusion)
	pt := pointsToNames(r, "f::p")
	if !pt["f::a"] || !pt["f::b"] {
		t.Errorf("p points to %v, want {a, b}", pt)
	}
	qt := pointsToNames(r, "f::q")
	if !qt["f::a"] || !qt["f::b"] {
		t.Errorf("q points to %v, want {a, b}", qt)
	}
}

func TestArrayDecayAndArith(t *testing.T) {
	src := `
void f() {
    char buf[16];
    char *p;
    char *q;
    p = buf;
    q = p + 1;
}
`
	r := analyze(t, src, Inclusion)
	if pt := pointsToNames(r, "f::p"); !pt["f::buf"] {
		t.Errorf("p points to %v, want buf", pt)
	}
	if pt := pointsToNames(r, "f::q"); !pt["f::buf"] {
		t.Errorf("q (p+1) points to %v, want buf (same base)", pt)
	}
}

func TestMalloc(t *testing.T) {
	src := `
void *malloc(int n);
void f() {
    char *p;
    char *q;
    p = (char*)malloc(10);
    q = (char*)malloc(20);
}
`
	r := analyze(t, src, Inclusion)
	pp := pointsToNames(r, "f::p")
	qq := pointsToNames(r, "f::q")
	if len(pp) == 0 || len(qq) == 0 {
		t.Fatalf("malloc results have empty points-to: p=%v q=%v", pp, qq)
	}
	for n := range pp {
		if qq[n] {
			t.Errorf("distinct malloc sites share node %s", n)
		}
	}
	// Heap nodes must be summaries.
	id, _ := r.Lookup("f::p")
	for _, tgt := range r.PointsTo(id) {
		if !r.Node(tgt).Summary {
			t.Errorf("heap node %s not marked summary", r.Node(tgt).Name)
		}
	}
}

func TestInterprocedural(t *testing.T) {
	src := `
void callee(int *q);
int g;
void callee(int *q) {
    *q = 1;
}
void caller() {
    int x;
    callee(&x);
    callee(&g);
}
`
	r := analyze(t, src, Inclusion)
	pt := pointsToNames(r, "callee::q")
	if !pt["caller::x"] || !pt["g"] {
		t.Errorf("callee::q points to %v, want {caller::x, g}", pt)
	}
}

func TestSkipLineFig6(t *testing.T) {
	// Paper Fig. 6(a): whole-program points-to for the running example.
	src := `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
void main() {
    char buf[1024];
    char *r;
    char *s;
    r = buf;
    SkipLine(1, &r);
    s = r;
    SkipLine(1, &s);
}
`
	r := analyze(t, src, Inclusion)
	// PtrEndText may point to r's and s's cells.
	pt := pointsToNames(r, "SkipLine::PtrEndText")
	if !pt["main::r"] || !pt["main::s"] {
		t.Errorf("PtrEndText points to %v, want {main::r, main::s}", pt)
	}
	// r and s point to buf.
	if pt := pointsToNames(r, "main::r"); !pt["main::buf"] {
		t.Errorf("r points to %v, want buf", pt)
	}
	// PtrEndLoc points to buf (loaded through PtrEndText).
	if pt := pointsToNames(r, "SkipLine::PtrEndLoc"); !pt["main::buf"] {
		t.Errorf("PtrEndLoc points to %v, want buf", pt)
	}
	// No summary nodes in this example (paper: "There are no summary
	// abstract locations in this example").
	for _, n := range r.Nodes {
		if n.Summary {
			t.Errorf("unexpected summary node %s", n.Name)
		}
	}
}

func TestFunctionPointerResolution(t *testing.T) {
	src := `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
void f(int sel) {
    int (*op)(int);
    int r;
    if (sel) {
        op = &inc;
    } else {
        op = &dec;
    }
    r = op(5);
}
`
	r := analyze(t, src, Inclusion)
	pt := pointsToNames(r, "f::op")
	if !pt["inc"] || !pt["dec"] {
		t.Errorf("op points to %v, want {inc, dec}", pt)
	}
	// Both callees' formals must receive the actual flow; the return flows
	// back into r (scalar, so just check formal wiring exists).
	if _, ok := r.Lookup("inc::x"); !ok {
		t.Error("inc::x missing")
	}
}

func TestRecursiveSummary(t *testing.T) {
	src := `
void rec(int n) {
    int local;
    int *p;
    p = &local;
    if (n > 0) rec(n - 1);
}
`
	r := analyze(t, src, Inclusion)
	id, ok := r.Lookup("rec::local")
	if !ok {
		t.Fatal("rec::local missing")
	}
	if !r.Node(id).Summary {
		t.Error("local of recursive function must be a summary location")
	}
}

func TestLibraryReturnAliasing(t *testing.T) {
	src := `
char *strchr(char *s, int c)
    requires (is_nullt(s))
    ensures (return_value == 0 || is_within_bounds(return_value));
void f(char *txt) {
    char *p;
    p = strchr(txt, 'x');
}
`
	r := analyze(t, src, Inclusion)
	// p should alias whatever txt points to; with txt a formal pointing
	// nowhere concrete, at minimum the copy edge must exist, which we can
	// observe by giving txt a target.
	src2 := `
char *strchr(char *s, int c);
void f() {
    char buf[8];
    char *txt;
    char *p;
    txt = buf;
    p = strchr(txt, 'x');
}
`
	r = analyze(t, src2, Inclusion)
	if pt := pointsToNames(r, "f::p"); !pt["f::buf"] {
		t.Errorf("strchr result points to %v, want buf", pt)
	}
}

func TestUnificationCoarser(t *testing.T) {
	src := `
void f() {
    int a;
    int b;
    int *p;
    int *q;
    int *r;
    p = &a;
    q = &b;
    r = p;
    r = q;
}
`
	inc := analyze(t, src, Inclusion)
	uni := analyze(t, src, Unification)
	// Inclusion: p points only to a.
	if pt := pointsToNames(inc, "f::p"); pt["f::b"] {
		t.Errorf("inclusion mode polluted p: %v", pt)
	}
	// Unification: r = p and r = q merge; p may appear to reach b.
	pt := pointsToNames(uni, "f::p")
	if !pt["f::a"] {
		t.Errorf("unification lost direct edge: %v", pt)
	}
	// Soundness in both modes: r reaches both.
	for name, r := range map[string]*Result{"inclusion": inc, "unification": uni} {
		pt := pointsToNames(r, "f::r")
		if !pt["f::a"] || !pt["f::b"] {
			t.Errorf("%s: r points to %v, want {a, b}", name, pt)
		}
	}
}
