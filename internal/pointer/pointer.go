// Package pointer implements the whole-program flow-insensitive points-to
// analysis that CSSV consumes (paper §3.3.2). The paper used GOLF [8,9],
// which was never released; this package provides two sound substitutes
// behind one interface:
//
//   - Inclusion (Andersen-style with directional assignment edges): at
//     least as precise as GOLF's one-level flow, the default.
//   - Unification (Steensgaard): the cheap mode, used by the ablation
//     benchmarks to quantify how much directionality buys.
//
// The result is the global abstract points-to state Gstate of §3.3.2:
// abstract locations for every variable, allocation site, string literal
// and function; loc mapping variables to their stack/global locations;
// pt mapping locations to the locations they may point to; and sm marking
// summary locations (which may represent several concrete base addresses).
package pointer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/ctypes"
)

// Mode selects the analysis algorithm.
type Mode int

// Analysis modes.
const (
	Inclusion   Mode = iota // Andersen-style, directional (default)
	Unification             // Steensgaard-style, bidirectional
)

// NodeID identifies an abstract location.
type NodeID int

// NodeKind classifies abstract locations.
type NodeKind int

// Node kinds.
const (
	VarNode    NodeKind = iota // global or stack location of a variable
	HeapNode                   // allocation site
	StringNode                 // string literal buffer
	FuncNode                   // a function (for function pointers)
)

// Node is an abstract location.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Name: "f::x" for locals/formals, "x" for globals, "alloc@f:12" for
	// heap, "__str0" for strings, function name for FuncNode.
	Name string
	// Summary marks locations that may represent more than one concrete
	// base address in a single concrete state (sm = infinity).
	Summary bool
	// Scalar marks locations holding a single scalar cell (a variable of
	// int or pointer type), eligible for strong value updates.
	Scalar bool
	// Size is the declared byte size of the region (0 if unknown/dynamic).
	Size int
	// FuncName is set for FuncNode.
	FuncName string
	// AllocIn/AllocIdx identify the allocation site of a HeapNode: the
	// enclosing function and the statement index within its normalized
	// body. PPT construction uses them to refine summary-ness (a non-loop
	// site executes once per invocation).
	AllocIn  string
	AllocIdx int
}

// Result is the global points-to state.
type Result struct {
	Nodes []*Node
	// pt[i] is the set of node IDs that location i may point to.
	pt []map[NodeID]bool
	// locs maps qualified variable names to their location node.
	locs map[string]NodeID
}

// Lookup returns the location node of the qualified variable name.
func (r *Result) Lookup(qualified string) (NodeID, bool) {
	id, ok := r.locs[qualified]
	return id, ok
}

// LocOf returns the location of variable name as seen from function fn
// (fn-local first, then global).
func (r *Result) LocOf(fn, name string) (NodeID, bool) {
	if id, ok := r.locs[fn+"::"+name]; ok {
		return id, true
	}
	id, ok := r.locs[name]
	return id, ok
}

// PointsTo returns the sorted points-to set of n.
func (r *Result) PointsTo(n NodeID) []NodeID {
	var out []NodeID
	for t := range r.pt[n] {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Node returns the node with the given ID.
func (r *Result) Node(id NodeID) *Node { return r.Nodes[id] }

// String renders the points-to graph for debugging and golden tests.
func (r *Result) String() string {
	var sb strings.Builder
	for _, n := range r.Nodes {
		targets := r.PointsTo(n.ID)
		if len(targets) == 0 {
			continue
		}
		var names []string
		for _, t := range targets {
			names = append(names, r.Nodes[t].Name)
		}
		sum := ""
		if n.Summary {
			sum = " (summary)"
		}
		fmt.Fprintf(&sb, "%s%s -> {%s}\n", n.Name, sum, strings.Join(names, ", "))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Constraint generation

type constraintKind int

const (
	addrOf     constraintKind = iota // dst ⊇ {src}        (dst = &v)
	copyC                            // dst ⊇ src          (dst = src)
	loadC                            // dst ⊇ *src         (dst = *p)
	storeC                           // *dst ⊇ src         (*p = src)
	storeAddrC                       // *dst ⊇ {src}       (*p = &v / arr)
)

type constraint struct {
	kind     constraintKind
	dst, src NodeID
}

type builder struct {
	res          *Result
	constraints  []constraint
	mode         Mode
	layout       *ctypes.Engine
	nheap        int
	pendingCalls []pendingCall
	callEdges    [][2]string
	funcs        map[string]*cast.FuncDecl
	stmtIdx      int
}

// AllocFuncs are the allocation routines recognized per paper Table 4.
var AllocFuncs = map[string]bool{"malloc": true, "alloca": true, "calloc": true}

// Analyze runs the whole-program analysis over a normalized program.
func Analyze(prog *corec.Program, mode Mode) *Result {
	b := &builder{
		res:    &Result{locs: map[string]NodeID{}},
		mode:   mode,
		layout: prog.Layout,
		funcs:  map[string]*cast.FuncDecl{},
	}
	file := prog.File
	for _, fd := range file.Funcs() {
		b.funcs[fd.Name] = fd
	}
	// String-literal buffers are emitted by the normalizer as static
	// globals; mark their nodes with their sizes.
	_ = prog.Strings

	// Create location nodes for globals, string buffers, and functions.
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *cast.VarDecl:
			b.newVarNode(d.Name, d.DeclType)
		case *cast.FuncDecl:
			if _, ok := b.res.locs[d.Name]; !ok {
				n := b.newNode(FuncNode, d.Name)
				n.FuncName = d.Name
				b.res.locs[d.Name] = n.ID
			}
		}
	}
	// Locals and formals.
	for _, fd := range file.Funcs() {
		for _, p := range fd.Params {
			b.newVarNode(fd.Name+"::"+p.Name, p.Type)
		}
		for _, s := range fd.Body.Stmts {
			if ds, ok := s.(*cast.DeclStmt); ok {
				b.newVarNode(fd.Name+"::"+ds.Decl.Name, ds.Decl.DeclType)
			}
		}
		// Return cell, used to wire x = f(...) across calls.
		b.newVarNode(fd.Name+"::"+cast.ReturnValueName+"$", fd.Ret)
	}

	// Generate constraints from every statement of every function.
	for _, fd := range file.Funcs() {
		b.function(file, fd)
	}

	b.solve()
	b.markRecursiveSummaries()
	return b.res
}

func (b *builder) newNode(kind NodeKind, name string) *Node {
	n := &Node{ID: NodeID(len(b.res.Nodes)), Kind: kind, Name: name}
	b.res.Nodes = append(b.res.Nodes, n)
	b.res.pt = append(b.res.pt, map[NodeID]bool{})
	return n
}

func (b *builder) newVarNode(qualified string, t ctypes.Type) *Node {
	if id, ok := b.res.locs[qualified]; ok {
		return b.res.Nodes[id]
	}
	n := b.newNode(VarNode, qualified)
	n.Scalar = ctypes.IsScalar(t)
	n.Size = b.layout.SizeOf(t)
	b.res.locs[qualified] = n.ID
	return n
}

func (b *builder) add(kind constraintKind, dst, src NodeID) {
	b.constraints = append(b.constraints, constraint{kind, dst, src})
	if b.mode == Unification && kind == copyC {
		// Steensgaard treats assignments symmetrically.
		b.constraints = append(b.constraints, constraint{copyC, src, dst})
	}
}

// lvNode resolves the location node of variable name inside fn.
func (b *builder) lvNode(fn, name string) (NodeID, bool) {
	return b.res.LocOf(fn, name)
}

func (b *builder) function(file *cast.File, fd *cast.FuncDecl) {
	fn := fd.Name
	for i, s := range fd.Body.Stmts {
		b.stmtIdx = i
		switch s := s.(type) {
		case *cast.ExprStmt:
			switch x := s.X.(type) {
			case *cast.Assign:
				b.assign(file, fn, x, s.Pos())
			case *cast.Call:
				b.call(file, fn, "", x, s.Pos())
			}
		case *cast.Return:
			if id, ok := s.X.(*cast.Ident); ok {
				ret, _ := b.lvNode(fn, cast.ReturnValueName+"$")
				if src, ok2 := b.lvNode(fn, id.Name); ok2 {
					b.add(copyC, ret, src)
				}
			}
		}
	}
}

// assign generates constraints for a CoreC assignment.
func (b *builder) assign(file *cast.File, fn string, a *cast.Assign, pos interface{ String() string }) {
	// Store: *p = atom
	if u, ok := a.LHS.(*cast.Unary); ok && u.Op == cast.Deref {
		p, ok := u.X.(*cast.Ident)
		if !ok {
			return
		}
		pn, ok := b.lvNode(fn, p.Name)
		if !ok {
			return
		}
		// The stored value: &v stores v's address; otherwise any identifier
		// operand of the (pure, simple) RHS may carry a pointer into the
		// cell.
		if ru, ok := a.RHS.(*cast.Unary); ok && ru.Op == cast.Addr {
			if v, ok := ru.X.(*cast.Ident); ok {
				if src, ok := b.lvNode(fn, v.Name); ok {
					b.constraints = append(b.constraints, constraint{kind: storeAddrC, dst: pn, src: src})
				}
			}
			return
		}
		for _, id := range rhsIdents(a.RHS) {
			if src, ok := b.lvNode(fn, id.Name); ok {
				if b.isRegionValued(file, fn, id) {
					// *p = arr stores arr's address.
					b.constraints = append(b.constraints, constraint{kind: storeAddrC, dst: pn, src: src})
				} else {
					b.add(storeC, pn, src)
				}
			}
		}
		return
	}
	lhs, ok := a.LHS.(*cast.Ident)
	if !ok {
		return
	}
	dst, ok := b.lvNode(fn, lhs.Name)
	if !ok {
		return
	}
	switch r := a.RHS.(type) {
	case *cast.Ident:
		if src, ok := b.lvNode(fn, r.Name); ok {
			// Array- or function-typed identifiers decay: x = arr means x
			// points to arr's region.
			if b.isRegionValued(file, fn, r) {
				b.add(addrOf, dst, src)
			} else {
				b.add(copyC, dst, src)
			}
		}
	case *cast.Unary:
		switch r.Op {
		case cast.Deref:
			if p, ok := r.X.(*cast.Ident); ok {
				if pn, ok := b.lvNode(fn, p.Name); ok {
					b.add(loadC, dst, pn)
				}
			}
		case cast.Addr:
			if v, ok := r.X.(*cast.Ident); ok {
				if vn, ok := b.lvNode(fn, v.Name); ok {
					b.add(addrOf, dst, vn)
				}
			}
		}
	case *cast.Binary:
		// Pointer arithmetic keeps the base: propagate from any pointer
		// operand (field-insensitive).
		for _, op := range []cast.Expr{r.X, r.Y} {
			if id, ok := op.(*cast.Ident); ok {
				if src, ok := b.lvNode(fn, id.Name); ok {
					if b.isRegionValued(file, fn, id) {
						b.add(addrOf, dst, src)
					} else {
						b.add(copyC, dst, src)
					}
				}
			}
		}
	case *cast.Cast:
		if id, ok := r.X.(*cast.Ident); ok {
			if src, ok := b.lvNode(fn, id.Name); ok {
				if b.isRegionValued(file, fn, id) {
					b.add(addrOf, dst, src)
				} else {
					b.add(copyC, dst, src)
				}
			}
		}
	case *cast.Call:
		b.call(file, fn, lhs.Name, r, a.Pos())
	}
}

// isRegionValued reports whether an identifier denotes a region whose
// address is the value (arrays and functions, which decay to pointers).
func (b *builder) isRegionValued(file *cast.File, fn string, id *cast.Ident) bool {
	t := id.Type()
	if t == nil {
		return false
	}
	return ctypes.IsArray(t) || ctypes.IsFunc(t)
}

// call wires parameter and return-value flow. dstName is the variable
// receiving the return value ("" when discarded).
func (b *builder) call(file *cast.File, fn, dstName string, c *cast.Call, pos interface{ String() string }) {
	name := c.FuncName()
	if AllocFuncs[name] {
		// x = malloc(n): a fresh summary heap node. PPT construction may
		// refine summary-ness for non-loop sites in the analyzed procedure.
		h := b.newNode(HeapNode, fmt.Sprintf("alloc#%d@%s", b.nheap, fn))
		b.nheap++
		h.Summary = true
		h.AllocIn = fn
		h.AllocIdx = b.stmtIdx
		if dstName != "" {
			if dst, ok := b.lvNode(fn, dstName); ok {
				b.add(addrOf, dst, h.ID)
			}
		}
		return
	}

	// Candidate callees: the named function, or for calls through pointers
	// every function the pointer may reference (resolved during solving via
	// an indirect-call constraint; here we approximate by wiring through
	// the pointer's points-to set post-hoc — see solveCalls).
	b.pendingCalls = append(b.pendingCalls, pendingCall{fn: fn, dst: dstName, call: c})
	_ = name
}

type pendingCall struct {
	fn   string
	dst  string
	call *cast.Call
}

// rhsIdents collects the identifier operands of a CoreC simple RHS.
func rhsIdents(e cast.Expr) []*cast.Ident {
	switch x := e.(type) {
	case *cast.Ident:
		return []*cast.Ident{x}
	case *cast.Unary:
		if id, ok := x.X.(*cast.Ident); ok {
			return []*cast.Ident{id}
		}
	case *cast.Binary:
		var out []*cast.Ident
		if id, ok := x.X.(*cast.Ident); ok {
			out = append(out, id)
		}
		if id, ok := x.Y.(*cast.Ident); ok {
			out = append(out, id)
		}
		return out
	case *cast.Cast:
		if id, ok := x.X.(*cast.Ident); ok {
			return []*cast.Ident{id}
		}
	}
	return nil
}
