package pointer

import (
	"fmt"

	"repro/internal/cast"
)

// libReturnsArg maps library functions (modeled by contract, no body) whose
// return value aliases one of their pointer arguments to that argument's
// index. This is the only pointer-level knowledge CSSV needs about libc
// (paper §1.2: contracts usually omit pointer information; the analysis
// collects it).
var libReturnsArg = map[string]int{
	"strcpy": 0, "strncpy": 0, "strcat": 0, "strncat": 0,
	"memcpy": 0, "memmove": 0, "memset": 0,
	"strchr": 0, "strrchr": 0, "strstr": 0, "strpbrk": 0,
	"fgets": 0, "gets": 0,
}

// solve computes the least fixed point of the constraint system, resolving
// direct and function-pointer calls as points-to facts grow.
func (b *builder) solve() {
	resolved := map[string]bool{} // call-site id -> done per callee

	for {
		changed := false

		// Propagate basic constraints.
		for _, c := range b.constraints {
			switch c.kind {
			case addrOf:
				if !b.res.pt[c.dst][c.src] {
					b.res.pt[c.dst][c.src] = true
					changed = true
				}
			case copyC:
				if b.union(c.dst, c.src) {
					changed = true
				}
			case loadC:
				for t := range b.res.pt[c.src] {
					if b.union(c.dst, t) {
						changed = true
					}
				}
			case storeC:
				for t := range b.res.pt[c.dst] {
					if b.union(t, c.src) {
						changed = true
					}
				}
			case storeAddrC:
				for t := range b.res.pt[c.dst] {
					if !b.res.pt[t][c.src] {
						b.res.pt[t][c.src] = true
						changed = true
					}
				}
			}
		}

		// Resolve calls against the current solution.
		for i := range b.pendingCalls {
			pc := &b.pendingCalls[i]
			for _, callee := range b.callees(pc) {
				key := callKey(i, callee)
				if resolved[key] {
					continue
				}
				resolved[key] = true
				changed = true
				b.wireCall(pc, callee)
			}
		}

		if !changed {
			return
		}
	}
}

func callKey(site int, callee string) string {
	return fmt.Sprintf("%s@%d", callee, site)
}

// union merges pt[src] into pt[dst]; reports change.
func (b *builder) union(dst, src NodeID) bool {
	if dst == src {
		return false
	}
	changed := false
	for t := range b.res.pt[src] {
		if !b.res.pt[dst][t] {
			b.res.pt[dst][t] = true
			changed = true
		}
	}
	return changed
}

// callees returns the function names a call site may invoke under the
// current points-to solution.
func (b *builder) callees(pc *pendingCall) []string {
	name := pc.call.FuncName()
	if name == "" {
		return nil
	}
	// Through a variable (function pointer): all functions in its set.
	if id, ok := b.res.locs[pc.fn+"::"+name]; ok && b.res.Nodes[id].Kind == VarNode {
		var out []string
		for t := range b.res.pt[id] {
			if b.res.Nodes[t].Kind == FuncNode {
				out = append(out, b.res.Nodes[t].FuncName)
			}
		}
		return out
	}
	return []string{name}
}

// wireCall adds parameter/return flow for one resolved callee.
func (b *builder) wireCall(pc *pendingCall, callee string) {
	// Known library model: return aliases an argument.
	if argIdx, ok := libReturnsArg[callee]; ok {
		if pc.dst != "" && argIdx < len(pc.call.Args) {
			if arg, ok := pc.call.Args[argIdx].(*cast.Ident); ok {
				if dst, ok2 := b.lvNode(pc.fn, pc.dst); ok2 {
					if src, ok3 := b.lvNode(pc.fn, arg.Name); ok3 {
						b.add(copyC, dst, src)
					}
				}
			}
		}
		return
	}

	fd := b.funcDecl(callee)
	if fd == nil {
		return
	}
	// Formals receive actuals.
	for i, p := range fd.Params {
		if i >= len(pc.call.Args) {
			break
		}
		arg, ok := pc.call.Args[i].(*cast.Ident)
		if !ok {
			continue
		}
		formal, ok := b.res.locs[callee+"::"+p.Name]
		if !ok {
			// Prototype-only function with a contract: conservatively no
			// pointer flow (the contract inliner models its effects).
			continue
		}
		if src, ok := b.lvNode(pc.fn, arg.Name); ok {
			if b.isRegionValued(nil, pc.fn, arg) {
				b.add(addrOf, formal, src)
			} else {
				b.add(copyC, formal, src)
			}
		}
	}
	// Return flow.
	if pc.dst != "" {
		if ret, ok := b.res.locs[callee+"::"+cast.ReturnValueName+"$"]; ok {
			if dst, ok2 := b.lvNode(pc.fn, pc.dst); ok2 {
				b.add(copyC, dst, ret)
			}
		}
	}
	// Record the edge for recursion detection.
	b.callEdges = append(b.callEdges, [2]string{pc.fn, callee})
}

func (b *builder) funcDecl(name string) *cast.FuncDecl {
	if fd, ok := b.funcs[name]; ok {
		return fd
	}
	return nil
}

// markRecursiveSummaries marks address-taken locals of functions involved
// in recursion as summary locations: several frames may be live at once, so
// an abstract location whose address can escape the frame represents
// several concrete base addresses (paper Def. 3.2). Locals whose address
// never escapes denote the current frame's single cell and stay strong.
func (b *builder) markRecursiveSummaries() {
	addressTaken := map[NodeID]bool{}
	for _, c := range b.constraints {
		if c.kind == addrOf || c.kind == storeAddrC {
			addressTaken[c.src] = true
		}
	}
	adj := map[string][]string{}
	for _, e := range b.callEdges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	recursive := map[string]bool{}
	for fn := range b.funcs {
		// DFS from fn's callees; if fn is reachable, it is recursive.
		seen := map[string]bool{}
		stack := append([]string(nil), adj[fn]...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == fn {
				recursive[fn] = true
				break
			}
			if seen[cur] {
				continue
			}
			seen[cur] = true
			stack = append(stack, adj[cur]...)
		}
	}
	for qual, id := range b.res.locs {
		if !addressTaken[id] {
			continue
		}
		for fn := range recursive {
			if len(qual) > len(fn) && qual[:len(fn)] == fn && qual[len(fn):len(fn)+2] == "::" {
				b.res.Nodes[id].Summary = true
			}
		}
	}
}
