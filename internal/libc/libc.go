// Package libc provides contract models for the C standard library
// functions that string-manipulating programs use. The paper treats library
// functions as contract-only procedures ("when a procedure code is omitted
// as in the case of library functions, CSSV assumes its contract is correct
// and cannot verify it", §1.2); this header is the Go reproduction of that
// contract set, written in the tool's own contract language and parsed like
// any user code.
package libc

// Header is prepended to analyzed sources unless the driver is told
// otherwise. Functions already declared by the user win (the parser keeps
// the contract-bearing declaration).
const Header = `
/* CSSV contract models for the C standard library. */

void *malloc(int n)
    requires (n >= 0);
void *alloca(int n)
    requires (n >= 0);
void free(void *p);
void exit(int code);
void abort(void);

int strlen(char *s)
    requires (is_nullt(s))
    ensures (return_value == strlen(s) && return_value >= 0);

char *strcpy(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) > strlen(src))
    modifies (dst)
    ensures (is_nullt(dst) && strlen(dst) == pre(strlen(src)));

char *strncpy(char *dst, char *src, int n)
    requires (is_nullt(src) && alloc(dst) >= n && n >= 0)
    modifies (dst);

char *strcat(char *dst, char *src)
    requires (is_nullt(dst) && is_nullt(src) &&
              alloc(dst) > strlen(dst) + strlen(src))
    modifies (dst)
    ensures (is_nullt(dst) &&
             strlen(dst) == pre(strlen(dst)) + pre(strlen(src)));

char *strncat(char *dst, char *src, int n)
    requires (is_nullt(dst) && is_nullt(src) && n >= 0 &&
              alloc(dst) > strlen(dst) + n)
    modifies (dst)
    ensures (is_nullt(dst));

int snprintf(char *s, int n, char *format, ...)
    requires (alloc(s) >= n && n >= 1)
    modifies (s)
    ensures (is_nullt(s) && strlen(s) < n);

char *strchr(char *s, int c)
    requires (is_nullt(s))
    ensures (return_value == 0 ||
             (is_nullt(return_value) && offset(return_value) >= offset(s) &&
              is_within_bounds(return_value)));

char *strrchr(char *s, int c)
    requires (is_nullt(s))
    ensures (return_value == 0 ||
             (is_nullt(return_value) && offset(return_value) >= offset(s) &&
              is_within_bounds(return_value)));

int strcmp(char *a, char *b)
    requires (is_nullt(a) && is_nullt(b));

int strncmp(char *a, char *b, int n)
    requires (is_nullt(a) && is_nullt(b) && n >= 0);

char *fgets(char *s, int n, int stream)
    requires (alloc(s) >= n && n >= 1)
    modifies (s)
    ensures (is_nullt(s) && strlen(s) < n);

/* gets cannot be given a sound finite precondition: any call is an error. */
char *gets(char *s)
    requires (0)
    modifies (s)
    ensures (is_nullt(s));

void *memset(void *s, int c, int n)
    requires (n >= 0);

void *memcpy(void *dst, void *src, int n)
    requires (n >= 0);

int atoi(char *s)
    requires (is_nullt(s));

int getchar(void);
int putchar(int c);
int puts(char *s)
    requires (is_nullt(s));
int fputs(char *s, int stream)
    requires (is_nullt(s));
int fputc(int c, int stream);
int fgetc(int stream);

int printf(char *format, ...);
int fprintf(int stream, char *format, ...);
int sprintf(char *s, char *format, ...);

int isspace(int c);
int isdigit(int c);
int isalpha(int c);
int toupper(int c);
int tolower(int c);
`

// Functions lists the names modeled by Header (used by tests and by the
// driver to avoid analyzing them as user code).
var Functions = map[string]bool{
	"malloc": true, "alloca": true, "free": true, "exit": true, "abort": true,
	"strlen": true, "strcpy": true, "strncpy": true, "strcat": true,
	"strchr": true, "strrchr": true, "strcmp": true, "strncmp": true,
	"fgets": true, "gets": true, "memset": true, "memcpy": true,
	"atoi": true, "getchar": true, "putchar": true, "puts": true,
	"fputs": true, "fputc": true, "fgetc": true,
	"printf": true, "fprintf": true, "sprintf": true, "snprintf": true,
	"strncat": true,
	"isspace": true, "isdigit": true, "isalpha": true,
	"toupper": true, "tolower": true,
}
