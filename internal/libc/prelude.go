package libc

import (
	"sync"
	"sync/atomic"

	"repro/internal/cparse"
)

// HeaderName is the file name under which the contract header is parsed, so
// positions inside contract clauses blame the models rather than user code.
const HeaderName = "<libc contracts>"

var (
	preludeOnce   sync.Once
	prelude       *cparse.Prelude //lint:allow globalmut written once under preludeOnce, immutable after
	preludeErr    error           //lint:allow globalmut written once under preludeOnce, immutable after
	preludeParsed atomic.Bool     //lint:allow globalmut atomic cache-hit flag, set once under preludeOnce
)

// Prelude returns the contract header parsed as a cparse.Prelude, lexing
// and parsing it at most once per process. The returned value is shared and
// immutable: the driver hands it to every parse, and downstream phases
// clone AST nodes before rewriting them (see Prelude's contract in cparse).
func Prelude() (*cparse.Prelude, error) {
	preludeOnce.Do(func() {
		prelude, preludeErr = cparse.ParsePrelude(HeaderName, Header)
		preludeParsed.Store(true)
	})
	return prelude, preludeErr
}

// PreludeCached reports whether the header has already been parsed, i.e.
// whether the next Prelude call is a cache hit. Drivers use it to report
// cache effectiveness.
func PreludeCached() bool { return preludeParsed.Load() }
