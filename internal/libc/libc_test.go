package libc

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

// TestHeaderParses: the contract header is valid input for the tool's own
// parser and every listed function is declared.
func TestHeaderParses(t *testing.T) {
	f, err := cparse.ParseFile("libc.h", Header)
	if err != nil {
		t.Fatalf("libc header does not parse: %v", err)
	}
	declared := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok {
			declared[fd.Name] = true
		}
	}
	for name := range Functions {
		if !declared[name] {
			t.Errorf("%s listed in Functions but not declared in Header", name)
		}
	}
}

// TestKeyContracts: spot-check the load-bearing contracts.
func TestKeyContracts(t *testing.T) {
	f, err := cparse.ParseFile("libc.h", Header)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]struct {
		requires bool
		ensures  bool
	}{
		"strcpy": {true, true},
		"strcat": {true, true},
		"strlen": {true, true},
		"fgets":  {true, true},
		"gets":   {true, true}, // requires (0): every call is an error
		"printf": {false, false},
	}
	for name, want := range checks {
		fd := f.Lookup(name)
		if fd == nil {
			t.Errorf("%s missing", name)
			continue
		}
		hasReq := fd.Contract != nil && fd.Contract.Requires != nil
		hasEns := fd.Contract != nil && fd.Contract.Ensures != nil
		if hasReq != want.requires || hasEns != want.ensures {
			t.Errorf("%s: requires=%v ensures=%v, want %v/%v",
				name, hasReq, hasEns, want.requires, want.ensures)
		}
	}
	// gets' precondition is the unsatisfiable constant.
	gets := f.Lookup("gets")
	if lit, ok := gets.Contract.Requires.(*cast.IntLit); !ok || lit.Value != 0 {
		t.Errorf("gets precondition should be the constant 0, got %s",
			cast.ExprString(gets.Contract.Requires))
	}
}
