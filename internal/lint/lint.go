// Package lint implements cssv-lint: a suite of static analyzers that
// mechanically enforce the analyzer's own soundness, determinism, and
// governance invariants — the properties the Go compiler cannot see but
// the trust argument of DESIGN.md depends on.
//
// The suite generalizes what used to be two ad-hoc AST-walking tests
// (the substrate global-mutability guard and the certify import guard)
// into first-class analyzers that cover the whole tree:
//
//	globalmut    — no package-scope mutable state in analysis packages;
//	               per-run state flows through Config (PR 5's invariant).
//	layering     — the import DAG is declared data and enforced: the
//	               certificate checker never links the engine it checks,
//	               budget imports nothing above it, substrates never
//	               import the driver.
//	determinism  — packages that assemble, hash, or emit reports must not
//	               iterate maps into ordered output without sorting, and
//	               must not consult time.Now/math/rand outside timing
//	               stats (the Workers=1 vs Workers=8 deep-equal contract).
//	budgetpoll   — unbounded fixpoint/closure loops in substrate packages
//	               must contain a budget.Token safe point so new hot
//	               loops cannot become unkillable.
//	soundverdict — verdict values (analysis.Violation and friends) may
//	               only be built by the engine or its approved
//	               constructors, so no code path can fabricate a "safe"
//	               verdict for a degraded procedure.
//	layoutconst  — layout facts (sizes, offsets, alignment) come from
//	               the ctypes layout engine; hardcoded packed-model
//	               constants or Type.Size() calls elsewhere would
//	               silently ignore the selected -target data model.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is self-contained: the
// build environment vendors no third-party modules, so the suite runs on
// the standard library alone. Should x/tools become available, each
// Analyzer converts to an *analysis.Analyzer mechanically.
//
// Deliberate exceptions are annotated in source as
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line immediately above it. The reason is
// mandatory; the suite counts suppressions so reviews can audit them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the module all rule data is keyed by. The loader
// cross-checks it against go.mod so a module rename fails loudly here
// rather than silently disabling every path-scoped rule.
const ModulePath = "repro"

// An Analyzer describes one invariant and how to check it.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run checks one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax, including any _test.go files the
	// driver merged in. Analyzers that exclude tests use IsTestFile.
	Files []*ast.File
	// Path is the package import path ("repro/internal/zone"). External
	// test packages carry their real path ("repro/internal/zone_test").
	Path string
	// Pkg and TypesInfo carry type information. TypesInfo is always
	// non-nil with populated maps, but under the lenient fixture loader
	// entries may be missing for ill-typed expressions; analyzers fall
	// back to syntax when a lookup misses.
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:     p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		position: pos,
	})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
	// AllowReason is set on suppressed diagnostics: the reason text of
	// the //lint:allow directive that silenced the finding.
	AllowReason string

	position token.Pos
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Rule)
}

// Suite returns the six analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Globalmut,
		Layering,
		Determinism,
		Budgetpoll,
		Soundverdict,
		Layoutconst,
	}
}

// A Result partitions one package's findings into active diagnostics and
// ones suppressed by //lint:allow directives.
type Result struct {
	Path string
	// Diags are unsuppressed findings, sorted by position.
	Diags []Diagnostic
	// Suppressed are findings silenced by a lint:allow directive, kept so
	// drivers can count and audit them.
	Suppressed []Diagnostic
}

// Run executes the analyzers over one type-checked package and applies
// the //lint:allow directives found in its files. Malformed directives
// (missing rule or reason) are themselves reported under the pseudo-rule
// "lintdirective".
func Run(pkg *Package, analyzers []*Analyzer) (Result, error) {
	res := Result{Path: pkg.Path}
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	res.Diags = append(res.Diags, malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		var diags []Diagnostic
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return res, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
		for _, d := range diags {
			if reason, ok := allows.match(d); ok {
				d.AllowReason = reason
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diags = append(res.Diags, d)
			}
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Rule < ds[j].Rule
	})
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
}

// allowIndex maps file:line to the directives that cover that line.
type allowIndex map[string]map[int][]allowDirective

// match reports whether a directive for d's rule covers d's line (the
// directive may sit on the flagged line or the line immediately above).
func (ai allowIndex) match(d Diagnostic) (reason string, ok bool) {
	lines := ai[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.rule == d.Rule {
				return dir.reason, true
			}
		}
	}
	return "", false
}

const allowPrefix = "//lint:allow"

// collectAllows scans every comment of the files for lint:allow
// directives. Malformed directives are returned as diagnostics.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Rule: "lintdirective",
						Pos:  pos,
						Message: "malformed lint:allow directive: want " +
							"//lint:allow <rule> <reason>",
						position: c.Pos(),
					})
					continue
				}
				m := idx[pos.Filename]
				if m == nil {
					m = map[int][]allowDirective{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], allowDirective{
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return idx, malformed
}

// importTable maps each file-local import name to its import path,
// resolving aliases. Unnamed imports use the path's base segment, which
// matches the package name for every package in this module and the
// standard library subset we use.
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		t[name] = path
	}
	return t
}

// hasPrefixPath reports whether path is pkg or lies under the pkg/ tree.
func hasPrefixPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// inModuleScope reports whether the package is part of the analyzed
// module's library surface: the root package or anything under
// internal/. Command mains under cmd/ are excluded — they hold flag
// plumbing, not analysis state. External test packages ("..._test")
// count with their base package.
func inModuleScope(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == ModulePath || hasPrefixPath(path, ModulePath+"/internal")
}
