package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// layoutHome is the package that owns object-layout facts. Since the
// layout engine made size, alignment, and field offsets target-dependent
// (paper32 vs sysv64), any other package that spells a layout fact out —
// the packed-model constants or the natural-size Size method — computes
// with one target's numbers no matter which target the run selected.
var layoutHome = ModulePath + "/internal/ctypes"

// layoutConsts are the packed 32-bit model's named sizes. They remain
// exported for the engine's own paper32 computation and for tests, but
// analysis code must ask the engine.
var layoutConsts = map[string]bool{
	"CharSize":    true,
	"IntSize":     true,
	"PointerSize": true,
}

// Layoutconst keeps object layout single-sourced: outside
// repro/internal/ctypes (and outside test files, which pin golden
// numbers), code must obtain sizes, alignments, and offsets from the
// layout engine (Engine.SizeOf/AlignOf/LayoutOf/FieldOffset) rather
// than from the packed-model constants or the Type.Size method. A
// hardcoded layout fact is invisible to -target and silently reverts
// that code path to the paper's packed 32-bit model.
var Layoutconst = &Analyzer{
	Name: "layoutconst",
	Doc:  "layout facts (sizes, offsets, alignment) come from the ctypes layout engine, not hardcoded constants",
	Run:  runLayoutconst,
}

func runLayoutconst(pass *Pass) error {
	if !inModuleScope(pass.Path) || strings.TrimSuffix(pass.Path, "_test") == layoutHome {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Resolve the file-local name of the ctypes package, if imported.
		ctypesName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == layoutHome {
				ctypesName = "ctypes"
				if imp.Name != nil {
					ctypesName = imp.Name.Name
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := x.X.(*ast.Ident); ok && ctypesName != "" &&
					pkg.Name == ctypesName && layoutConsts[x.Sel.Name] {
					pass.Report(x.Pos(),
						"packed-model constant %s.%s outside the layout engine: sizes are target-dependent, ask Engine.SizeOf", ctypesName, x.Sel.Name)
					return false
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Size" || len(x.Args) != 0 {
					return true
				}
				if layoutSizeReceiver(pass, ctypesName, sel.X) {
					pass.Report(x.Pos(),
						"Type.Size() outside the layout engine computes the packed natural size: ask Engine.SizeOf so -target sysv64 sees ABI sizes")
				}
			}
			return true
		})
	}
	return nil
}

// layoutSizeReceiver reports whether the receiver of a .Size() call is a
// ctypes type. Type information decides when available (the whole-module
// run always has it); under the lenient fixture loader, where ctypes
// resolves to a placeholder, a receiver expression syntactically rooted
// at the ctypes import (ctypes.Char.Size()) is recognized as a fallback.
func layoutSizeReceiver(pass *Pass, ctypesName string, recv ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[recv]; ok && tv.Type != nil {
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == layoutHome
		}
		if !isInvalidType(t) {
			return false
		}
	}
	if ctypesName == "" {
		return false
	}
	id, ok := leftmostIdent(recv)
	return ok && id.Name == ctypesName
}

func isInvalidType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Invalid
}

// leftmostIdent walks selector/call/index chains to the root identifier
// of an expression (ctypes.Decay(t).Size() roots at ctypes).
func leftmostIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
