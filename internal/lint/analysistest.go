package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is a self-contained stand-in for
// golang.org/x/tools/go/analysis/analysistest (not vendored in this
// build environment): fixture packages live under
// testdata/src/<import-path>/, offending lines carry
//
//	// want "regexp"
//
// comments, and RunFixture checks that the analyzer's diagnostics and
// the want expectations match one-to-one.

// A FixtureResult reports one fixture run, exposing the suppressed
// findings so tests can assert //lint:allow behavior.
type FixtureResult struct {
	Result
	// Errors are expectation mismatches: diagnostics with no want, and
	// wants with no diagnostic.
	Errors []string
}

// RunFixture loads testdata/src/<path> (rooted at dir) leniently, runs
// the single analyzer over it, and matches diagnostics against the
// fixture's want comments.
func RunFixture(dir string, a *Analyzer, path string) (*FixtureResult, error) {
	l := &Loader{Lenient: true, IncludeTests: true}
	pkg, err := l.LoadDir(filepath.Join(dir, "src", filepath.FromSlash(path)), path)
	if err != nil {
		return nil, err
	}
	res, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}
	fr := &FixtureResult{Result: res}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		text string
		used bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, text := range parseWants(c.Text) {
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v",
							pkg.Fset.Position(c.Pos()), text, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}

	for _, d := range fr.Diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			fr.Errors = append(fr.Errors, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.used {
			fr.Errors = append(fr.Errors,
				fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text))
		}
	}
	sort.Strings(fr.Errors)
	return fr, nil
}

// parseWants extracts the quoted regexps of a `// want "..." "..."`
// comment.
func parseWants(comment string) []string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			break
		}
		prefix, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		s, err := strconv.Unquote(prefix)
		if err != nil {
			break
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	return out
}
