// Fixture for the budgetpoll analyzer: unbounded fixpoint-shaped loops
// in substrate packages must contain a budget.Token safe point.
package polyhedra

type token struct{}

func (token) Step(n int) bool { return true }
func (token) Exhausted() bool { return false }

func fixpointBad(work []int) {
	changed := true
	for changed { // want `unbounded loop drives nested iteration without a budget safe point`
		changed = false
		for range work {
			changed = true
		}
	}
}

func infiniteBad(work []int) {
	for { // want `unbounded loop drives nested iteration without a budget safe point`
		for range work {
		}
	}
}

func fixpointGood(work []int, tok token) {
	changed := true
	for changed {
		if tok.Exhausted() {
			return
		}
		changed = false
		for range work {
		}
	}
}

func worklistGood(work []int, tok token) {
	for len(work) > 0 {
		if !tok.Step(1) {
			return
		}
		for range work {
		}
		work = work[:len(work)-1]
	}
}

func siftDown(h []int) int {
	// Unbounded shape but no nested iteration: terminates on its own
	// structure (heap walks, slice growth) and is exempt.
	i := 0
	for i < len(h) {
		i = 2*i + 1
	}
	return i
}

func counted(n int) int {
	// Counted loops are bounded by construction, however deeply nested.
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s++
		}
	}
	return s
}

func allowedLoop(work []int) {
	//lint:allow budgetpoll termination: len(work) strictly decreases each iteration
	for len(work) > 0 {
		for range work {
		}
		work = work[:len(work)-1]
	}
}

func closureCountsAsWork(work []int) {
	// Iteration hidden in a closure still counts as the loop's nested
	// work: transfer functions and callbacks run inside the fixpoint.
	for len(work) > 0 { // want `unbounded loop drives nested iteration without a budget safe point`
		f := func() {
			for range work {
			}
		}
		f()
		work = work[:len(work)-1]
	}
}
