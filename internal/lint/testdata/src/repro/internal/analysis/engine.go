// Fixture for the soundverdict analyzer, negative case: the engine
// package itself builds verdict values freely.
package analysis

type Violation struct {
	Index      int
	Msg        string
	Unresolved bool
}

func exhausted(idx int, msg string) Violation {
	return Violation{Index: idx, Msg: msg, Unresolved: true}
}

var _ = exhausted
