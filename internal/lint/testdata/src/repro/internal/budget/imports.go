// Fixture for the layering analyzer: budget is the bottom of the DAG.
package budget

import (
	"sync/atomic"
	"time"

	_ "repro/internal/clex" // want `must not import repro/internal/clex`
)

var _ atomic.Int64
var _ time.Time
