// Fixture for the layering analyzer: the certificate checker must not
// link the engine it checks.
package certify

import (
	_ "repro/internal/clex"      // allowed: shared position type
	_ "repro/internal/interval"  // want `must not import repro/internal/interval`
	_ "repro/internal/linear"    // allowed: the constraint IR is shared vocabulary
	_ "repro/internal/polyhedra" // want `must not import repro/internal/polyhedra`
	_ "repro/internal/zone"      // want `must not import repro/internal/zone`
)
