// Test files are exempt from layering: differential tests deliberately
// cross layers to cross-check the independent checker against the
// engine.
package certify

import (
	_ "repro/internal/analysis"
	_ "repro/internal/polyhedra"
)
