// Test files are covered too: shared test state breaks t.Parallel the
// same way shared analysis state breaks concurrent runs.
package globalmutfix

var testState []string // want `package-level mutable var testState`

var _ = testState
