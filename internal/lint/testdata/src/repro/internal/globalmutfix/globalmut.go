// Fixture for the globalmut analyzer: package-scope mutable state in
// analysis packages.
package globalmutfix

import (
	"errors"
	"math/big"
	"sync"
)

var counter int // want `package-level mutable var counter`

var cache *big.Int // want `package-level mutable var cache`

var limit = 128 // want `package-level mutable var limit`

var alias = counter // want `package-level mutable var alias`

var negated = -1 // want `package-level mutable var negated`

var shared = &config{n: 1} // address of composite literal: allowed

type config struct{ n int }

var a, b = twoVals() // want `package-level mutable var b`

var _ = counter // blank compile-time assertion: allowed

var errSentinel = errors.New("x") // built by a call: allowed

var keywords = map[string]bool{"if": true} // composite literal: allowed

var bigOne = big.NewInt(1) // immutable by convention: allowed

var initOnce sync.Once // sync zero value: allowed

var mu sync.Mutex // sync zero value: allowed

var pool = sync.Pool{New: func() any { return new(big.Int) }}

var allowed = 3 //lint:allow globalmut fixture exercises the allow directive

func twoVals() (int, int) { return 1, 2 }

func use() (int, *big.Int, int, int, int, int) {
	initOnce.Do(func() {})
	mu.Lock()
	mu.Unlock()
	_ = errSentinel
	_ = keywords
	_ = bigOne
	_ = pool
	return counter, cache, limit, alias, negated, allowed
}

var _ = a
var _ = b
