// Fixture for the layoutconst analyzer: layout facts come from the
// ctypes layout engine, never from the packed-model constants or the
// natural-size Size method.
package layoutfix

import "repro/internal/ctypes"

func pointerBytes() int {
	return ctypes.PointerSize // want `packed-model constant ctypes.PointerSize`
}

func wordBytes() int {
	n := ctypes.IntSize // want `packed-model constant ctypes.IntSize`
	return n
}

func charWidth() int {
	return ctypes.Char.Size() // want `Type.Size\(\) outside the layout engine`
}

func decayedWidth(t ctypes.Type) int {
	return ctypes.Decay(t).Size() // want `Type.Size\(\) outside the layout engine`
}

func allowedGolden() int {
	//lint:allow layoutconst golden table pins the paper32 packed model by definition
	return ctypes.CharSize
}

// engineSize is the approved route: the engine owns the target model.
func engineSize(e *ctypes.Engine, t ctypes.Type) int {
	return e.SizeOf(t)
}

// program is an unrelated Size method; its calls must not be flagged.
type program struct{}

func (program) Size() int { return 0 }

func unrelatedSize(p program) int {
	return p.Size()
}
