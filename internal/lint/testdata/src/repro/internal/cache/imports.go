// Fixture for the layering analyzer: the analysis cache persists claims
// the independent checker re-proves, so it may link the checker and the
// shared IRs but never the engine or a numeric substrate.
package cache

import (
	_ "repro/internal/analysis"  // want `must not import repro/internal/analysis`
	_ "repro/internal/certify"   // allowed: certificates are the cached currency
	_ "repro/internal/clex"      // allowed: shared position type
	_ "repro/internal/ip"        // allowed: the integer-program IR is shared vocabulary
	_ "repro/internal/linear"    // allowed: the constraint IR is shared vocabulary
	_ "repro/internal/octagon"   // want `must not import repro/internal/octagon`
	_ "repro/internal/polyhedra" // want `must not import repro/internal/polyhedra`
	_ "repro/internal/zone"      // want `must not import repro/internal/zone`
)
