// Fixture for the determinism analyzer: map order and wall-clock time
// must not reach report content.
package core

import (
	"fmt"
	"os"
	"sort"
	"time"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration appends to keys, which is never sorted`
	}
	return keys
}

func okSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badEmit(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want `emitting output while ranging over a map`
	}
}

func okSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func okAllowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow determinism caller sorts; order-insensitive set semantics
		keys = append(keys, k)
	}
	return keys
}

type runStats struct {
	Wall time.Duration
	CPU  time.Duration
}

func okTimingIdiom(s *runStats) {
	start := time.Now()
	defer func() { s.Wall = time.Since(start) }()
	t0 := time.Now()
	s.CPU = time.Since(t0)
}

func okTimingIdent() time.Duration {
	start := time.Now()
	tierCPU := time.Since(start)
	return tierCPU
}

func badClock() int64 {
	return time.Now().Unix() // want `time.Now outside the timing-stats idiom`
}

func badSince(epoch time.Time) bool {
	delay := time.Since(epoch) // want `time.Since outside the timing-stats idiom`
	return delay > 0
}

func badStdoutTrace(iter int) {
	fmt.Printf("[engine] iter %d\n", iter) // want `fmt.Printf writes to process stdout from the report path`
}

func badStdoutLine() {
	fmt.Println("debug") // want `fmt.Println writes to process stdout from the report path`
}

func okStderrTrace(iter int) {
	fmt.Fprintf(os.Stderr, "[engine] iter %d\n", iter)
}
