package core

import "math/rand" // want `math/rand on the report path`

func roll(r *rand.Rand) int { return r.Intn(6) }
