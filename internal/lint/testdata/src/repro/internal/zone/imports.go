// Fixture for the layering analyzer: substrates never import the
// engine or driver layers — and a denied path must not swallow a
// sibling whose name merely shares a prefix (core vs corec).
package zone

import (
	_ "repro/internal/budget" // allowed: substrates poll the budget token
	_ "repro/internal/core"   // want `must not import repro/internal/core`
	_ "repro/internal/corec"  // allowed: sibling name prefix is not a match
)
