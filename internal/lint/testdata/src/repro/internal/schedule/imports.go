// Fixture for the layering analyzer: the scheduler is a leaf — pure
// cost policy that must not link any analysis layer.
package schedule

import (
	"sort"

	_ "repro/internal/analysis" // want `must not import repro/internal/analysis`
)

var _ = sort.Strings
