// Fixture for the layering analyzer, octagon side of the substrate
// rule: the octagon tier must not reach up into the engine that
// schedules it. The allowed imports are the negative half of the pair —
// octagon legitimately builds on the zone raw surface and the arena.
package octagon

import (
	_ "repro/internal/analysis" // want `must not import repro/internal/analysis`
	_ "repro/internal/arena"    // allowed: the arena is a leaf below every substrate
	_ "repro/internal/zone"     // allowed: octagons run on the zone DBM surface
)
