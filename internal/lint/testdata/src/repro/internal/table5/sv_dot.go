package table5

import . "repro/internal/analysis" // want `dot-import of repro/internal/analysis`
