// Fixture for the soundverdict analyzer: verdict values are built only
// by the engine or its approved constructors.
package table5

import "repro/internal/analysis"

func fabricated() analysis.Violation {
	return analysis.Violation{Msg: "fabricated"} // want `composite literal of analysis.Violation`
}

func fabricatedSlice() []analysis.Violation {
	return []analysis.Violation{{Msg: "x"}} // want `composite literal of analysis.Violation`
}

func fabricatedPtr() *analysis.CheckProvenance {
	return &analysis.CheckProvenance{} // want `composite literal of analysis.CheckProvenance`
}

func fabricatedResult() *analysis.Result {
	return &analysis.Result{} // want `composite literal of analysis.Result`
}

func constructed() []analysis.Violation {
	// Containers of constructor-built values are fine: it is the literal
	// construction that is restricted.
	return []analysis.Violation{analysis.NewViolation(0, "m", nil)}
}

func empty() []analysis.Violation {
	var vs []analysis.Violation
	return vs
}

func allowedLiteral() analysis.Violation {
	//lint:allow soundverdict golden-file decoder rebuilds verdicts verbatim
	return analysis.Violation{Msg: "decoded"}
}
