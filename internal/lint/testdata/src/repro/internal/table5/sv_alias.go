package table5

import eng "repro/internal/analysis"

func aliased() eng.Result {
	return eng.Result{} // want `composite literal of eng.Result`
}

func aliasedMap() map[int]eng.CheckProvenance {
	return map[int]eng.CheckProvenance{0: {}} // want `composite literal of eng.CheckProvenance`
}
