package lint

import (
	"go/ast"
	"go/token"
)

// Globalmut generalizes the old substrate guard test to every analysis
// package: package-scope mutable variables leak state between concurrent
// AnalyzeSource runs and make results depend on unrelated callers, which
// is exactly the class of bug PR 5 eliminated (polyhedra.MaxRays, the
// process-wide drop counter). Per-run knobs belong on a Config threaded
// through the call chain.
//
// Allowed forms, matching the conventions the tree already uses:
//
//   - blank vars (compile-time assertions like `var _ = f`);
//   - zero-value vars of sync primitives (sync.Once, sync.Mutex, ...):
//     synchronization is not analysis state;
//   - vars initialized by a call, composite literal, or qualified
//     selector: shared values built once at init time and immutable by
//     convention (big.NewInt, keyword maps, sync.Pool literals).
//
// What remains — zero-value vars of ordinary types and vars initialized
// from plain literals, identifiers, or unary expressions — is mutable
// package state and gets flagged. Deliberate exceptions (e.g. a cache
// guarded by a sync.Once) carry a //lint:allow globalmut directive.
// Test files are included: shared test state breaks t.Parallel the same
// way.
var Globalmut = &Analyzer{
	Name: "globalmut",
	Doc:  "forbid package-scope mutable variables in analysis packages",
	Run:  runGlobalmut,
}

func runGlobalmut(pass *Pass) error {
	if !inModuleScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if mutableGlobal(vs, i) {
						pass.Report(name.Pos(),
							"package-level mutable var %s: thread per-run state through Config, or annotate a deliberate exception with //lint:allow globalmut <reason>",
							name.Name)
					}
				}
			}
		}
	}
	return nil
}

// mutableGlobal reports whether the i-th name of a package-scope var
// spec is plain mutable state.
func mutableGlobal(vs *ast.ValueSpec, i int) bool {
	if i >= len(vs.Values) {
		// No initializer: the zero value of an ordinary type is mutable
		// state waiting to be written. Sync primitives are the sanctioned
		// exception — their zero value is the locking/lazy-init pattern.
		return !isSyncZero(vs.Type)
	}
	switch v := vs.Values[i].(type) {
	case *ast.BasicLit, *ast.Ident:
		return true
	case *ast.UnaryExpr:
		// Unary constants (-1) are mutable scalars; the address of a
		// composite literal (&Analyzer{...}) builds shared init-time
		// state like the literal itself and stays allowed.
		_, composite := v.X.(*ast.CompositeLit)
		return !composite
	}
	return false
}

// isSyncZero reports whether t names a sync package primitive whose
// zero value is deliberately usable shared state.
func isSyncZero(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	switch sel.Sel.Name {
	case "Once", "Mutex", "RWMutex", "Pool", "Map", "WaitGroup":
		return true
	}
	return false
}
