package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fixture runs one analyzer over its testdata package and checks the
// want expectations plus the number of //lint:allow suppressions.
func fixture(t *testing.T, a *Analyzer, path string, wantSuppressed int) {
	t.Helper()
	fr, err := RunFixture("testdata", a, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fr.Errors {
		t.Error(e)
	}
	if len(fr.Suppressed) != wantSuppressed {
		t.Errorf("suppressed findings = %d, want %d: %v",
			len(fr.Suppressed), wantSuppressed, fr.Suppressed)
	}
	for _, d := range fr.Suppressed {
		if d.AllowReason == "" {
			t.Errorf("suppressed finding without a recorded reason: %s", d)
		}
	}
}

func TestGlobalmutFixture(t *testing.T) {
	fixture(t, Globalmut, "repro/internal/globalmutfix", 1)
}

func TestLayeringFixtures(t *testing.T) {
	t.Run("certify", func(t *testing.T) { fixture(t, Layering, "repro/internal/certify", 0) })
	t.Run("budget", func(t *testing.T) { fixture(t, Layering, "repro/internal/budget", 0) })
	t.Run("substrate", func(t *testing.T) { fixture(t, Layering, "repro/internal/zone", 0) })
	t.Run("octagon", func(t *testing.T) { fixture(t, Layering, "repro/internal/octagon", 0) })
	t.Run("cache", func(t *testing.T) { fixture(t, Layering, "repro/internal/cache", 0) })
	t.Run("schedule", func(t *testing.T) { fixture(t, Layering, "repro/internal/schedule", 0) })
}

func TestDeterminismFixture(t *testing.T) {
	fixture(t, Determinism, "repro/internal/core", 1)
}

func TestBudgetpollFixture(t *testing.T) {
	fixture(t, Budgetpoll, "repro/internal/polyhedra", 1)
}

func TestLayoutconstFixture(t *testing.T) {
	fixture(t, Layoutconst, "repro/internal/layoutfix", 1)
}

func TestSoundverdictFixtures(t *testing.T) {
	t.Run("outside-engine", func(t *testing.T) { fixture(t, Soundverdict, "repro/internal/table5", 1) })
	t.Run("engine-itself", func(t *testing.T) { fixture(t, Soundverdict, "repro/internal/analysis", 0) })
}

// TestCollectAllows pins the directive grammar: rule plus mandatory
// reason, matching on the flagged line or the line above.
func TestCollectAllows(t *testing.T) {
	src := `package p

//lint:allow globalmut covered by a run-scoped reset in Analyze
var x int

var y int //lint:allow globalmut same-line directive

//lint:allow globalmut
var broken int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := collectAllows(fset, []*ast.File{f})

	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed lint:allow") {
		t.Fatalf("malformed = %v, want one malformed-directive diagnostic", malformed)
	}

	diagAt := func(line int) Diagnostic {
		return Diagnostic{Rule: "globalmut", Pos: token.Position{Filename: "p.go", Line: line}}
	}
	if reason, ok := allows.match(diagAt(4)); !ok || !strings.Contains(reason, "run-scoped reset") {
		t.Errorf("line-above directive: ok=%v reason=%q", ok, reason)
	}
	if reason, ok := allows.match(diagAt(6)); !ok || reason != "same-line directive" {
		t.Errorf("same-line directive: ok=%v reason=%q", ok, reason)
	}
	if _, ok := allows.match(Diagnostic{Rule: "layering", Pos: token.Position{Filename: "p.go", Line: 4}}); ok {
		t.Error("directive for a different rule must not match")
	}
	if _, ok := allows.match(diagAt(9)); ok {
		t.Error("malformed directive (no reason) must not suppress")
	}
}

// TestSuite pins the analyzer set and name uniqueness (names are the
// lint:allow vocabulary).
func TestSuite(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("incomplete analyzer %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"globalmut", "layering", "determinism", "budgetpoll", "soundverdict", "layoutconst"} {
		if !seen[want] {
			t.Errorf("suite is missing %s", want)
		}
	}
}
