package lint

import (
	"strings"
)

// A LayerRule bans a set of import-path prefixes from one package (and
// its external test package is exempt: tests may cross layers to
// cross-check, as certify's polyhedra differential tests do).
type LayerRule struct {
	// Pkg is the import path the rule constrains.
	Pkg string
	// Deny lists import-path prefixes Pkg must not import.
	Deny []string
	// Why is the soundness rationale, echoed in diagnostics.
	Why string
}

// LayerRules is the module's import DAG as declared data — the full
// generalization of the old single hand-written certify import guard.
// DESIGN.md §8 documents each rule's rationale.
var LayerRules = []LayerRule{
	{
		Pkg: ModulePath + "/internal/certify",
		Deny: []string{
			ModulePath + "/internal/polyhedra",
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/zone",
			ModulePath + "/internal/octagon",
			ModulePath + "/internal/interval",
			ModulePath + "/internal/numkernel",
			ModulePath + "/internal/arena",
		},
		Why: "the certificate checker must share no code with the engine it checks, or agreement stops being evidence",
	},
	{
		Pkg:  ModulePath + "/internal/budget",
		Deny: []string{ModulePath + "/"},
		Why:  "budget sits at the bottom of the DAG so every layer can poll it; importing anything above it would cycle the governance story",
	},
	{
		Pkg: ModulePath + "/internal/polyhedra",
		Deny: []string{
			ModulePath + "/internal/core",
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/table5",
			ModulePath + "/internal/c2ip",
		},
		Why: "numeric substrates stay below the engine and driver layers; per-run state reaches them only through Config",
	},
	{
		Pkg: ModulePath + "/internal/zone",
		Deny: []string{
			ModulePath + "/internal/core",
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/table5",
			ModulePath + "/internal/c2ip",
		},
		Why: "numeric substrates stay below the engine and driver layers; per-run state reaches them only through Config",
	},
	{
		Pkg: ModulePath + "/internal/octagon",
		Deny: []string{
			ModulePath + "/internal/core",
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/table5",
			ModulePath + "/internal/c2ip",
		},
		Why: "numeric substrates stay below the engine and driver layers; per-run state reaches them only through Config",
	},
	{
		Pkg: ModulePath + "/internal/interval",
		Deny: []string{
			ModulePath + "/internal/core",
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/table5",
			ModulePath + "/internal/c2ip",
		},
		Why: "numeric substrates stay below the engine and driver layers; per-run state reaches them only through Config",
	},
	{
		Pkg:  ModulePath + "/internal/numkernel",
		Deny: []string{ModulePath + "/"},
		Why:  "the hybrid arithmetic kernel is a leaf: it must stay substitutable for pure big.Int arithmetic in differential fuzzing",
	},
	{
		Pkg:  ModulePath + "/internal/arena",
		Deny: []string{ModulePath + "/"},
		Why:  "the arena is a leaf below every substrate: recycled memory must carry no knowledge of what it stores, and a nil arena must remain a complete no-op",
	},
	{
		Pkg: ModulePath + "/internal/cache",
		Deny: []string{
			ModulePath + "/internal/analysis",
			ModulePath + "/internal/polyhedra",
			ModulePath + "/internal/zone",
			ModulePath + "/internal/octagon",
			ModulePath + "/internal/interval",
			ModulePath + "/internal/numkernel",
			ModulePath + "/internal/core",
		},
		Why: "the cache stores claims the independent checker can re-prove; linking the engine (or any substrate it runs on) would let cached verdicts depend on the code whose results they replace",
	},
	{
		Pkg:  ModulePath + "/internal/schedule",
		Deny: []string{ModulePath + "/"},
		Why:  "the scheduler is a leaf that maps static features to tier orders and budgets — pure cost policy; linking any analysis layer would let scheduling read the state whose verdicts it must never influence",
	},
	{
		Pkg: ModulePath + "/internal/lint",
		Deny: []string{
			ModulePath + "/internal/",
			ModulePath + "/cmd/",
		},
		Why: "the enforcement layer must not link the code it polices, for the same reason the certificate checker is independent",
	},
}

// Layering enforces LayerRules on non-test files. Test files are exempt
// by design: differential tests deliberately import across layers (the
// certify tests cross-check the Fourier–Motzkin checker against
// polyhedra — that is their entire point).
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the declared import DAG (checker independence, budget at the bottom, substrates below the driver)",
	Run:  runLayering,
}

func runLayering(pass *Pass) error {
	var rules []LayerRule
	for _, r := range LayerRules {
		if pass.Path == r.Pkg {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, r := range rules {
				for _, deny := range r.Deny {
					// A trailing slash denies a whole subtree; otherwise
					// deny the package and its subtree, but never a mere
					// sibling name prefix (core vs corec).
					banned := strings.HasSuffix(deny, "/") && strings.HasPrefix(path, deny) ||
						hasPrefixPath(path, strings.TrimSuffix(deny, "/"))
					if banned {
						pass.Report(imp.Pos(),
							"%s must not import %s: %s", pass.Path, path, r.Why)
					}
				}
			}
		}
	}
	return nil
}
