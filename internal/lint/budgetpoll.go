package lint

import (
	"go/ast"
)

// budgetpollScope lists the packages whose fixpoint and closure loops
// must stay killable: the engine and the numeric substrates, where PR
// 5's per-procedure budgets do their work.
var budgetpollScope = []string{
	ModulePath + "/internal/analysis",
	ModulePath + "/internal/polyhedra",
	ModulePath + "/internal/zone",
	ModulePath + "/internal/octagon",
	ModulePath + "/internal/interval",
	ModulePath + "/internal/numkernel",
}

// Budgetpoll enforces PR 5's termination guarantee structurally: an
// unbounded loop (`for { ... }` or `for cond { ... }` — no init, no
// post, no range clause) that itself drives nested iteration is a
// fixpoint/worklist/closure loop, and its body must contain a
// budget.Token safe point (a .Step(...) or .Exhausted() call) so the
// driver can always terminate it. Counted loops and range loops are
// bounded by construction; tiny unbounded loops without nested work
// (heap sift-down, slice growth) terminate on their own structure and
// are exempt.
//
// The check is syntactic on the method names Step/Exhausted: budget
// polling that is hidden behind a helper should either poll in the loop
// or carry a //lint:allow budgetpoll directive naming the helper.
var Budgetpoll = &Analyzer{
	Name: "budgetpoll",
	Doc:  "unbounded fixpoint/closure loops in substrate packages must poll the budget token",
	Run:  runBudgetpoll,
}

func runBudgetpoll(pass *Pass) error {
	inScope := false
	for _, p := range budgetpollScope {
		if pass.Path == p {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if fs.Init != nil || fs.Post != nil {
				return true // counted loop: bounded by construction
			}
			if !containsLoop(fs.Body) {
				return true // no nested work: structural termination
			}
			if containsSafePoint(fs.Body) {
				return true
			}
			pass.Report(fs.Pos(),
				"unbounded loop drives nested iteration without a budget safe point: poll token.Step or token.Exhausted so the run stays killable (PR 5 invariant)")
			return true
		})
	}
	return nil
}

// containsLoop reports whether body contains any for/range statement,
// including inside function literals: a closure defined in a fixpoint
// body typically runs there (transfer functions, callbacks), so its
// iteration counts as the loop's work.
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// containsSafePoint reports whether body calls a Step or Exhausted
// method — the budget.Token polling surface.
func containsSafePoint(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Step" || sel.Sel.Name == "Exhausted" {
				found = true
			}
		}
		return !found
	})
	return found
}
