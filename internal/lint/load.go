package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit presented to the analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds the type-checker's complaints under the lenient
	// loader (fixtures reference deliberately-faked imports).
	TypeErrors []error
}

// A Loader parses and type-checks packages using only the standard
// library: module packages are type-checked from source in dependency
// order, standard-library imports go through the compiler's source
// importer, and (in lenient mode) anything unresolvable becomes an
// empty placeholder package so syntax-level analyzers still run.
//
// This replaces golang.org/x/tools/go/packages, which the build
// environment does not vendor. Under `go vet -vettool` the loader is
// not used at all: the build system supplies export data per unit (see
// cmd/cssv-lint).
type Loader struct {
	// Lenient tolerates type errors and fakes unresolvable imports.
	// Fixture loading uses it; whole-module loading must not.
	Lenient bool
	// IncludeTests merges in-package _test.go files and adds external
	// test packages as their own units.
	IncludeTests bool

	fset      *token.FileSet
	std       types.Importer
	pkgs      map[string]*types.Package
	goVersion string
}

func newLoaderState(l *Loader) {
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil)
	l.pkgs = map[string]*types.Package{}
}

// unit is one compilation unit discovered on disk.
type unit struct {
	path  string // import path ("repro/internal/zone", "repro/internal/zone_test")
	files []*ast.File
	deps  []string // module-internal imports
}

// LoadModule discovers, parses, and type-checks every package of the
// module rooted at dir (skipping testdata, vendor, and hidden
// directories) and returns them sorted by import path.
func (l *Loader) LoadModule(dir string) ([]*Package, error) {
	newLoaderState(l)
	modPath, goVersion, err := readGoMod(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	if modPath != ModulePath {
		return nil, fmt.Errorf("module path is %q but lint rules are keyed by %q: update lint.ModulePath and the rule tables together", modPath, ModulePath)
	}
	l.goVersion = goVersion

	var dirs []string
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	units := map[string]*unit{}
	for _, d := range dirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		us, err := l.parseDir(d, path)
		if err != nil {
			return nil, err
		}
		for _, u := range us {
			units[u.path] = u
		}
	}

	order, err := topoOrder(units)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, u := range order {
		pkg, err := l.check(u, units)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks a single directory as the package with
// the given import path. Fixture tests use it with a lenient Loader.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	newLoaderState(l)
	us, err := l.parseDir(dir, path)
	if err != nil {
		return nil, err
	}
	u, ok := us[path]
	if !ok {
		return nil, fmt.Errorf("%s: no non-test package found", dir)
	}
	return l.check(u, us)
}

// parseDir parses a directory into up to two units: the package itself
// (with in-package test files merged when IncludeTests is set) and its
// external test package.
func (l *Loader) parseDir(dir, path string) (map[string]*unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var prim, xtest []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		isTest := strings.HasSuffix(e.Name(), "_test.go")
		if isTest && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			prim = append(prim, f)
		}
	}
	units := map[string]*unit{}
	if len(prim) > 0 {
		units[path] = &unit{path: path, files: prim, deps: moduleDeps(prim, path)}
	}
	if len(xtest) > 0 {
		xpath := path + "_test"
		deps := moduleDeps(xtest, xpath)
		if len(prim) > 0 {
			deps = append(deps, path)
		}
		units[xpath] = &unit{path: xpath, files: xtest, deps: deps}
	}
	return units, nil
}

func moduleDeps(files []*ast.File, self string) []string {
	seen := map[string]bool{}
	var deps []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != self && hasPrefixPath(p, ModulePath) && !seen[p] {
				seen[p] = true
				deps = append(deps, p)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// topoOrder sorts units so every unit follows its module dependencies.
func topoOrder(units map[string]*unit) ([]*unit, error) {
	var order []*unit
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(u *unit, chain []string) error
	visit = func(u *unit, chain []string) error {
		switch state[u.path] {
		case 1:
			return fmt.Errorf("import cycle: %s", strings.Join(append(chain, u.path), " -> "))
		case 2:
			return nil
		}
		state[u.path] = 1
		for _, dep := range u.deps {
			if du, ok := units[dep]; ok {
				if err := visit(du, append(chain, u.path)); err != nil {
					return err
				}
			}
		}
		state[u.path] = 2
		order = append(order, u)
		return nil
	}
	var paths []string
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(units[p], nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one unit and records its package for importers of
// later units.
func (l *Loader) check(u *unit, units map[string]*unit) (*Package, error) {
	var terrs []error
	conf := types.Config{
		Importer:  &loaderImporter{l: l},
		GoVersion: l.goVersion,
		Error:     func(err error) { terrs = append(terrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(u.path, l.fset, u.files, info)
	if err != nil && !l.Lenient {
		return nil, fmt.Errorf("type-checking %s: %v (total %d errors)", u.path, terrs[0], len(terrs))
	}
	// The primary package (not an external test unit) becomes importable
	// by the units that follow in topological order.
	if !strings.HasSuffix(u.path, "_test") {
		l.pkgs[u.path] = tpkg
	}
	return &Package{
		Path:       u.path,
		Fset:       l.fset,
		Files:      u.files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// loaderImporter resolves imports during type-checking: module packages
// from the loader's cache, the rest from the GOROOT source importer,
// with empty placeholders for anything unresolvable in lenient mode.
type loaderImporter struct {
	l    *Loader
	fake map[string]*types.Package
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := li.l.pkgs[path]; ok {
		return pkg, nil
	}
	if !hasPrefixPath(path, ModulePath) {
		pkg, err := li.l.std.Import(path)
		if err == nil {
			return pkg, nil
		}
		if !li.l.Lenient {
			return nil, err
		}
	} else if !li.l.Lenient {
		return nil, fmt.Errorf("module package %s not loaded (dependency order bug?)", path)
	}
	if li.fake == nil {
		li.fake = map[string]*types.Package{}
	}
	if pkg, ok := li.fake[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	li.fake[path] = pkg
	return pkg, nil
}

// readGoMod extracts the module path and Go version from a go.mod.
func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("%s: no module line", path)
	}
	return modPath, goVersion, nil
}
