package lint

import (
	"go/ast"
	"strings"
)

// verdictHome is the package that owns verdict values: the engine
// itself builds them freely, everyone else goes through its
// constructors.
var verdictHome = ModulePath + "/internal/analysis"

// verdictTypes are the types whose composite literals are restricted.
// Fabricating any of them outside the engine risks a check result that
// skipped the soundness machinery: a Violation without Unresolved on a
// degraded path, a Result with invented States, a CheckProvenance that
// marks an unproven check discharged.
var verdictTypes = map[string]bool{
	"Violation":       true,
	"CheckProvenance": true,
	"Result":          true,
	"CascadeResult":   true,
}

// Soundverdict enforces the "never silently safe" rule at the type
// level: outside repro/internal/analysis (and outside test files, which
// build expectation values), verdict values may only be obtained from
// the engine or its approved constructors (analysis.NewViolation,
// analysis.NewUnresolvedViolation) — composite literals of the verdict
// types are flagged, as are dot-imports of the engine package that
// would launder them.
var Soundverdict = &Analyzer{
	Name: "soundverdict",
	Doc:  "verdict values are built only by the engine or its approved constructors",
	Run:  runSoundverdict,
}

func runSoundverdict(pass *Pass) error {
	if !inModuleScope(pass.Path) || strings.TrimSuffix(pass.Path, "_test") == verdictHome {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Resolve the file-local name of the engine package, if imported.
		engineName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != verdictHome {
				continue
			}
			if imp.Name != nil && imp.Name.Name == "." {
				pass.Report(imp.Pos(),
					"dot-import of %s: verdict types must stay qualified so constructor discipline is checkable", verdictHome)
				continue
			}
			engineName = "analysis"
			if imp.Name != nil {
				engineName = imp.Name.Name
			}
		}
		if engineName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if name, ok := verdictLit(engineName, cl); ok {
				pass.Report(cl.Pos(),
					"composite literal of %s.%s outside the engine: use the approved constructors (analysis.NewViolation, analysis.NewUnresolvedViolation) so degraded procedures can never be fabricated safe", engineName, name)
				return false // don't re-flag implicit element literals
			}
			return true
		})
	}
	return nil
}

// verdictLit reports whether cl constructs a restricted verdict type,
// directly (analysis.Violation{...}) or through the implicit element
// literals of a slice/array/map literal ([]analysis.Violation{{...}}).
// A container holding only constructor calls is fine — it is the
// literal construction of the value that is restricted.
func verdictLit(engineName string, cl *ast.CompositeLit) (string, bool) {
	if name, ok := verdictTypeName(engineName, cl.Type); ok {
		return name, true
	}
	var elem ast.Expr
	switch t := cl.Type.(type) {
	case *ast.ArrayType:
		elem = t.Elt
	case *ast.MapType:
		elem = t.Value
	}
	if elem == nil {
		return "", false
	}
	name, ok := verdictTypeName(engineName, elem)
	if !ok {
		return "", false
	}
	for _, e := range cl.Elts {
		if kv, isKV := e.(*ast.KeyValueExpr); isKV {
			e = kv.Value
		}
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return name, true
		}
	}
	return "", false
}

func verdictTypeName(engineName string, t ast.Expr) (string, bool) {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != engineName || !verdictTypes[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}
