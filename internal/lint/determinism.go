package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// determinismScope lists the packages whose output feeds report
// assembly, hashing, or user-visible emission — the surface covered by
// the Workers=1 vs Workers=8 deep-equal determinism tests. New packages
// on that path must be added here (DESIGN.md §8).
var determinismScope = []string{
	ModulePath,
	ModulePath + "/internal/core",
	ModulePath + "/internal/analysis",
	ModulePath + "/internal/table5",
	ModulePath + "/internal/derive",
	ModulePath + "/internal/schedule",
}

// Determinism guards the bit-identical-reports contract. In scope
// packages (non-test files) it flags:
//
//   - iteration over a map that appends to a slice never subsequently
//     sorted in the same function, or that emits output directly from
//     the loop body: map order is randomized per run, so both launder
//     nondeterminism into report content;
//   - calls to time.Now/time.Since/time.Until whose result does not flow
//     into the sanctioned timing-stats idiom (an anchor variable later
//     passed to time.Since, or an assignee whose name contains
//     CPU/Wall/Time/Duration/Elapsed — the fields the determinism tests
//     strip before comparing);
//   - any import of math/rand: randomness never belongs on the report
//     path (the directed interpreter takes a caller-seeded source and
//     lives outside this scope);
//   - calls to fmt.Print/Printf/Println: the implicit-stdout variants
//     interleave debug text into report output (reports flow through the
//     caller's writer; debug traces belong on os.Stderr).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "keep map order, wall-clock time, and randomness out of report content",
	Run:  runDeterminism,
}

// timingName matches identifiers and fields that carry timing
// statistics: the only sanctioned sink for wall-clock values.
var timingName = regexp.MustCompile(`(?i)cpu|wall|time|duration|elapsed|deadline`)

func runDeterminism(pass *Pass) error {
	inScope := false
	for _, p := range determinismScope {
		if pass.Path == p {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		imports := importTable(f)
		for _, imp := range f.Imports {
			if imp.Path.Value == `"math/rand"` || imp.Path.Value == `"math/rand/v2"` {
				pass.Report(imp.Pos(),
					"math/rand on the report path: results must be bit-identical across runs and worker counts")
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
			checkClockCalls(pass, imports, fd.Body)
			checkStdoutPrints(pass, imports, fd.Body)
		}
	}
	return nil
}

// checkMapRanges flags map iterations whose ordering can reach output.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		// Direct emission from the loop body is always order-dependent.
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && emitName(sel.Sel.Name) {
				pass.Report(call.Pos(),
					"emitting output while ranging over a map: iteration order is randomized; collect and sort first")
			}
			return true
		})
		// Appends that accumulate the iteration into a slice are fine
		// only when the slice is sorted later in the same function.
		for _, target := range appendTargets(rs.Body) {
			if !sortedAfter(pass, body, rs, target) {
				pass.Report(target.Pos(),
					"map iteration appends to %s, which is never sorted in this function: order is randomized per run; sort it (or annotate //lint:allow determinism <reason>)",
					target.Name)
			}
		}
		return true
	})
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func emitName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
		"Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// appendTargets returns the distinct identifiers x for statements of the
// form x = append(x, ...) inside the loop body.
func appendTargets(body ast.Node) []*ast.Ident {
	seen := map[string]bool{}
	var out []*ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return true
		}
		if !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id)
		}
		return true
	})
	return out
}

// sortedAfter reports whether, somewhere after the range statement in
// the same function body, target is passed to a sort.* or slices.*
// call.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(target)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if id.Name == target.Name &&
					(obj == nil || pass.TypesInfo.ObjectOf(id) == obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkClockCalls flags wall-clock reads outside the timing-stats idiom.
func checkClockCalls(pass *Pass, imports map[string]string, body *ast.BlockStmt) {
	// anchors collects `x := time.Now()` identifiers; a later
	// time.Since(x) legitimizes them.
	type clockUse struct {
		call   *ast.CallExpr
		sel    string // Now, Since, Until
		anchor string // assigned identifier, "" if none
		field  string // assigned selector field, "" if none
	}
	var uses []clockUse
	sinceArgs := map[string]bool{}

	record := func(as *ast.AssignStmt) {
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, sel := timeCall(imports, as.Rhs[0])
		if call == nil {
			return
		}
		u := clockUse{call: call, sel: sel}
		switch lhs := as.Lhs[0].(type) {
		case *ast.Ident:
			u.anchor = lhs.Name
		case *ast.SelectorExpr:
			u.field = lhs.Sel.Name
		}
		uses = append(uses, u)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			record(n)
		case *ast.CallExpr:
			if _, sel := timeCall(imports, n); sel == "Since" {
				if len(n.Args) == 1 {
					if id, ok := n.Args[0].(*ast.Ident); ok {
						sinceArgs[id.Name] = true
					}
				}
			}
		}
		return true
	})

	flagged := map[*ast.CallExpr]bool{}
	for _, u := range uses {
		ok := false
		switch u.sel {
		case "Now":
			// An anchor consumed by time.Since is the timing idiom.
			ok = u.anchor != "" && (sinceArgs[u.anchor] || timingName.MatchString(u.anchor))
		case "Since", "Until":
			name := u.field
			if name == "" {
				name = u.anchor
			}
			ok = timingName.MatchString(name)
		}
		if ok {
			flagged[u.call] = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, sel := timeCall(imports, n)
		if call == nil || flagged[call] {
			return true
		}
		// Nested Since inside an allowed assignment was already marked;
		// anything else reaching here escaped the idiom.
		for _, u := range uses {
			if u.call == call {
				pass.Report(call.Pos(),
					"time.%s outside the timing-stats idiom: wall-clock values must only feed stats fields the determinism tests strip (assign to a *CPU/*Wall/*Duration name, or anchor a time.Since)", sel)
				return true
			}
		}
		pass.Report(call.Pos(),
			"time.%s outside the timing-stats idiom: wall-clock values must not influence report content", sel)
		return true
	})
}

// checkStdoutPrints flags the implicit-stdout fmt variants: analysis and
// report code must write through the caller's writer (or os.Stderr for
// debug traces), never the process's stdout, which carries the report.
func checkStdoutPrints(pass *Pass, imports map[string]string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || imports[pkg.Name] != "fmt" {
			return true
		}
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			pass.Report(call.Pos(),
				"fmt.%s writes to process stdout from the report path: use the caller's writer, or fmt.Fprintf(os.Stderr, ...) for debug traces", sel.Sel.Name)
		}
		return true
	})
}

// timeCall reports whether n is a call to time.Now/Since/Until via the
// file's real import of the time package.
func timeCall(imports map[string]string, n ast.Node) (*ast.CallExpr, string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || imports[pkg.Name] != "time" {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Now", "Since", "Until":
		return call, sel.Sel.Name
	}
	return nil, ""
}
