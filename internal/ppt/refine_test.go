package ppt

import (
	"strings"
	"testing"
)

// TestHeapSummaryRefinement: an allocation site outside every loop denotes
// one region per invocation and is non-summary within the procedure's PPT;
// a site inside a loop stays a summary.
func TestHeapSummaryRefinement(t *testing.T) {
	src := `
void *malloc(int n);
void once(void) {
    char *p;
    p = (char*)malloc(8);
    *p = '\0';
}
void many(int k) {
    char *p;
    int i;
    i = 0;
    while (i < k) {
        p = (char*)malloc(8);
        *p = '\0';
        i = i + 1;
    }
}
`
	pOnce, _ := buildFor(t, src, "once", Options{})
	lv, _ := pOnce.Lv("p")
	for _, r := range pOnce.Pt(lv) {
		if pOnce.Loc(r).Summary {
			t.Errorf("straight-line alloc site is summary: %s", pOnce.Loc(r).Name)
		}
	}
	pMany, _ := buildFor(t, src, "many", Options{})
	lv2, _ := pMany.Lv("p")
	foundSummary := false
	for _, r := range pMany.Pt(lv2) {
		if pMany.Loc(r).Summary {
			foundSummary = true
		}
	}
	if !foundSummary {
		t.Error("loop alloc site lost its summary marking")
	}
}

// TestExactBaseMarks: merged and invented targets carry ExactBase.
func TestExactBaseMarks(t *testing.T) {
	p, _ := buildFor(t, skipLineMain, "SkipLine", Options{})
	lv, _ := p.Lv("PtrEndText")
	rvs := p.Pt(lv)
	if len(rvs) != 1 || !p.Loc(rvs[0]).ExactBase {
		t.Errorf("merged rv(PtrEndText) not ExactBase: %+v", p.Loc(rvs[0]))
	}

	solo := `
void lib(char **pp) {
    char *p;
    p = *pp;
}
`
	pl, _ := buildFor(t, solo, "lib", Options{})
	lv2, _ := pl.Lv("pp")
	rv2 := pl.Pt(lv2)
	if len(rv2) != 1 || !pl.Loc(rv2[0]).ExactBase || !pl.Loc(rv2[0]).Invented {
		t.Errorf("invented cell not ExactBase: %+v", pl.Loc(rv2[0]))
	}
	// The invented cell of a char** formal holds a 4-byte pointer.
	if pl.Loc(rv2[0]).Size != 4 || !pl.Loc(rv2[0]).Scalar {
		t.Errorf("invented cell shape: %+v", pl.Loc(rv2[0]))
	}
}

// TestPPTString: the Fig. 6(b)-style rendering is stable enough for golden
// checks.
func TestPPTString(t *testing.T) {
	p, _ := buildFor(t, skipLineMain, "SkipLine", Options{})
	out := p.String()
	for _, want := range []string{
		"lv(PtrEndText) -> {rv(PtrEndText)}",
		"rv(PtrEndText) -> {lv(main::buf)}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PPT rendering missing %q:\n%s", want, out)
		}
	}
}
