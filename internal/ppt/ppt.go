// Package ppt computes procedural points-to information (paper §3.3): the
// projection of the whole-program flow-insensitive points-to state onto a
// single procedure P, biased so that the location a formal parameter points
// to is represented by a single non-summary abstract location rv(f)
// whenever that is sound (the parameterizable check of Fig. 7). This is
// what lets C2IP perform strong updates on properties of *f in well-behaved
// programs, the paper's key device for avoiding false alarms.
package ppt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/ctypes"
	"repro/internal/pointer"
)

// LocID identifies an abstract location within a PPT.
type LocID int

// Loc is an abstract location of the procedural points-to state.
type Loc struct {
	ID      LocID
	Name    string
	Summary bool
	// Scalar marks single-cell locations (a variable of int/pointer type or
	// a merged rv(f) cell), on which strong updates of stored-value
	// properties are sound.
	Scalar bool
	// Size is the declared byte size of the region; 0 when unknown.
	Size int
	// StringVal holds the contents for string-literal buffers ("" + ok).
	StringVal string
	IsString  bool
	// Invented marks fresh locations created for formals whose targets are
	// unknown (procedure analyzed without callers, like the paper's N).
	Invented bool
	// ExactBase marks locations that are by construction the exact target
	// of a formal's pointer chain (merged rv(f) nodes and invented cells):
	// a pointer to such a location points at its base (Fig. 6(b)).
	ExactBase bool
}

// PPT is the procedural abstract points-to state of procedure Proc
// (paper Def. 3.2).
type PPT struct {
	Proc string
	Locs []*Loc
	// locOf maps visible variable names (unqualified) to their stack
	// location.
	locOf map[string]LocID
	pt    [][]LocID
	// MergedFormals lists formals whose R-value set was merged into a
	// single rv(f) node by the Fig. 7 algorithm.
	MergedFormals []string
}

// Lv returns the stack/global location of variable name, if visible.
func (p *PPT) Lv(name string) (LocID, bool) {
	id, ok := p.locOf[name]
	return id, ok
}

// Pt returns the points-to set of location l.
func (p *PPT) Pt(l LocID) []LocID { return p.pt[l] }

// Rv returns the locations the value stored in variable name may point to.
func (p *PPT) Rv(name string) []LocID {
	lv, ok := p.Lv(name)
	if !ok {
		return nil
	}
	return p.pt[lv]
}

// Loc returns the location record.
func (p *PPT) Loc(l LocID) *Loc { return p.Locs[l] }

// String renders the PPT for golden tests (Fig. 6(b) style).
func (p *PPT) String() string {
	var sb strings.Builder
	for _, l := range p.Locs {
		targets := p.pt[l.ID]
		if len(targets) == 0 {
			continue
		}
		var names []string
		for _, t := range targets {
			names = append(names, p.Locs[t].Name)
		}
		sort.Strings(names)
		sum := ""
		if l.Summary {
			sum = " (summary)"
		}
		fmt.Fprintf(&sb, "%s%s -> {%s}\n", l.Name, sum, strings.Join(names, ", "))
	}
	return sb.String()
}

// Options tunes PPT construction for ablation studies.
type Options struct {
	// DisableMerging skips the Fig. 7 parameterizable merge, forcing weak
	// updates through formals (the naive client of whole-program
	// flow-insensitive information that §1.3 warns about).
	DisableMerging bool
}

// Build computes the PPT for function fd of the normalized program, using
// the global points-to result g.
func Build(prog *corec.Program, fd *cast.FuncDecl, g *pointer.Result, opts Options) *PPT {
	b := &pptBuilder{
		prog: prog,
		fd:   fd,
		g:    g,
		ppt:  &PPT{Proc: fd.Name, locOf: map[string]LocID{}},
		gid:  map[pointer.NodeID]LocID{},
	}
	b.build(opts)
	return b.ppt
}

type pptBuilder struct {
	prog *corec.Program
	fd   *cast.FuncDecl
	g    *pointer.Result
	ppt  *PPT
	gid  map[pointer.NodeID]LocID // global node -> local loc
}

// visibleVars returns the names and types of P's visible variables:
// formals, locals, and globals.
func (b *pptBuilder) visibleVars() []cast.Param {
	var out []cast.Param
	for _, p := range b.fd.Params {
		out = append(out, p)
	}
	if b.fd.Body != nil {
		for _, s := range b.fd.Body.Stmts {
			if ds, ok := s.(*cast.DeclStmt); ok {
				out = append(out, cast.Param{Name: ds.Decl.Name, Type: ds.Decl.DeclType})
			}
		}
	}
	for _, d := range b.prog.File.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			out = append(out, cast.Param{Name: vd.Name, Type: vd.DeclType})
		}
	}
	return out
}

func (b *pptBuilder) build(opts Options) {
	vars := b.visibleVars()

	// Import reachable global nodes.
	var roots []pointer.NodeID
	varNode := map[string]pointer.NodeID{}
	for _, v := range vars {
		if id, ok := b.g.LocOf(b.fd.Name, v.Name); ok {
			roots = append(roots, id)
			varNode[v.Name] = id
		}
	}
	reach := map[pointer.NodeID]bool{}
	var stack []pointer.NodeID
	stack = append(stack, roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[n] {
			continue
		}
		reach[n] = true
		stack = append(stack, b.g.PointsTo(n)...)
	}

	// Create local locations for reachable nodes, in deterministic order.
	var order []pointer.NodeID
	for n := range reach {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, n := range order {
		b.importNode(n)
	}
	// Wire variables.
	for _, v := range vars {
		if n, ok := varNode[v.Name]; ok {
			b.ppt.locOf[v.Name] = b.gid[n]
		}
	}
	// Project pt edges.
	for _, n := range order {
		src := b.gid[n]
		for _, t := range b.g.PointsTo(n) {
			if dst, ok := b.gid[t]; ok {
				b.ppt.pt[src] = append(b.ppt.pt[src], dst)
			}
		}
	}

	// Invent fresh targets for pointer-typed formals with unknown callers
	// (paper Fig. 6(b): the location N).
	invented := false
	for _, p := range b.fd.Params {
		if b.inventChain(p.Name, p.Type) {
			invented = true
		}
	}
	// The global analysis never saw the invented locations, so the body's
	// own pointer flow must be closed over them locally.
	if invented {
		b.localClosure()
	}

	if !opts.DisableMerging {
		// Fig. 7: merge each formal's R-value set when sound.
		for _, p := range b.fd.Params {
			if !ctypes.IsPointer(p.Type) {
				continue
			}
			b.tryMerge(p)
		}
	}
}

func (b *pptBuilder) importNode(n pointer.NodeID) LocID {
	if id, ok := b.gid[n]; ok {
		return id
	}
	gn := b.g.Node(n)
	name := gn.Name
	// Strip the qualifier of P's own variables for readability.
	prefix := b.fd.Name + "::"
	if strings.HasPrefix(name, prefix) {
		name = "lv(" + b.displayName(name[len(prefix):]) + ")"
	} else if gn.Kind == pointer.VarNode {
		name = "lv(" + name + ")"
	}
	l := &Loc{
		ID:      LocID(len(b.ppt.Locs)),
		Name:    name,
		Summary: gn.Summary,
		Scalar:  gn.Scalar,
		Size:    gn.Size,
	}
	// Refinement: a heap region allocated in P at a site outside every loop
	// represents one concrete region per invocation, so within P's PPT it
	// is not a summary location.
	if gn.Kind == pointer.HeapNode && gn.AllocIn == b.fd.Name && !b.inLoop(gn.AllocIdx) {
		l.Summary = false
	}
	if gn.Kind == pointer.StringNode || strings.HasPrefix(gn.Name, "__str") {
		if val, ok := b.prog.Strings[gn.Name]; ok {
			l.StringVal = val
			l.IsString = true
		}
	}
	b.ppt.Locs = append(b.ppt.Locs, l)
	b.ppt.pt = append(b.ppt.pt, nil)
	b.gid[n] = l.ID
	return l.ID
}

// displayName renders a local's name for location naming. Under a
// field-sensitive target, member-address temporaries are named by the
// source access path they resolve ("p->count#7" for __t7); the temp number
// keeps distinct accesses to the same member distinct constraint variables.
// Under Paper32 the legacy temp names are kept so reports stay byte-stable.
func (b *pptBuilder) displayName(local string) string {
	if b.prog.Layout.FieldSensitive() {
		if path, ok := b.prog.AccessPaths[b.fd.Name+"::"+local]; ok {
			path = strings.TrimSuffix(path, ":bits")
			return path + "#" + strings.TrimPrefix(local, "__t")
		}
	}
	return local
}

// inLoop reports whether statement index idx of the normalized body lies
// inside a loop (between a label and a backward goto targeting it).
func (b *pptBuilder) inLoop(idx int) bool {
	labelAt := map[string]int{}
	for i, s := range b.fd.Body.Stmts {
		if l, ok := s.(*cast.Labeled); ok {
			labelAt[l.Label] = i
		}
	}
	for i, s := range b.fd.Body.Stmts {
		if g, ok := s.(*cast.Goto); ok {
			if j, ok := labelAt[g.Label]; ok && j <= i && j <= idx && idx <= i {
				return true
			}
		}
	}
	return false
}

// newLoc appends a synthetic location.
func (b *pptBuilder) newLoc(name string, scalar bool, size int, invented bool) *Loc {
	l := &Loc{
		ID:       LocID(len(b.ppt.Locs)),
		Name:     name,
		Scalar:   scalar,
		Size:     size,
		Invented: invented,
	}
	b.ppt.Locs = append(b.ppt.Locs, l)
	b.ppt.pt = append(b.ppt.pt, nil)
	return l
}

// inventChain gives a pointer-typed formal fresh targets when the global
// analysis found none (the procedure is analyzed without its callers).
// A formal of type T** yields lv(f) -> rv(f) -> rv2(f); invention stops at
// a non-pointer pointee. It reports whether any location was invented.
func (b *pptBuilder) inventChain(name string, t ctypes.Type) bool {
	lv, ok := b.ppt.locOf[name]
	if !ok {
		return false
	}
	depth := 1
	cur := lv
	curT := t
	made := false
	for ctypes.IsPointer(curT) {
		if len(b.ppt.pt[cur]) > 0 {
			return made // has real targets; nothing to invent
		}
		elem := ctypes.Elem(curT)
		label := fmt.Sprintf("rv(%s)", name)
		if depth > 1 {
			label = fmt.Sprintf("rv%d(%s)", depth, name)
		}
		// An invented target is a single cell when the pointee is itself a
		// pointer (the rv(f) of a char** formal); char/int pointees denote
		// buffers of unknown extent.
		// A cell's size is its pointee's size (a char** formal's rv(f)
		// holds one 4-byte char* slot).
		size := 0
		if ctypes.IsPointer(elem) {
			size = b.prog.Layout.SizeOf(elem)
		}
		nl := b.newLoc(label, ctypes.IsPointer(elem), size, true)
		nl.ExactBase = true
		b.ppt.pt[cur] = []LocID{nl.ID}
		cur = nl.ID
		curT = elem
		depth++
		made = true
	}
	return made
}

// localClosure re-closes the procedure body's pointer flow over the PPT's
// own locations so invented targets propagate into locals.
func (b *pptBuilder) localClosure() {
	addAll := func(dst LocID, srcs []LocID) bool {
		changed := false
		have := map[LocID]bool{}
		for _, t := range b.ppt.pt[dst] {
			have[t] = true
		}
		for _, s := range srcs {
			if !have[s] {
				have[s] = true
				b.ppt.pt[dst] = append(b.ppt.pt[dst], s)
				changed = true
			}
		}
		return changed
	}
	lvOf := func(e cast.Expr) (LocID, bool) {
		id, ok := e.(*cast.Ident)
		if !ok {
			return 0, false
		}
		l, ok := b.ppt.locOf[id.Name]
		return l, ok
	}
	for changed := true; changed; {
		changed = false
		for _, s := range b.fd.Body.Stmts {
			es, ok := s.(*cast.ExprStmt)
			if !ok {
				continue
			}
			a, ok := es.X.(*cast.Assign)
			if !ok {
				continue
			}
			// Store: *p = y.
			if u, ok := a.LHS.(*cast.Unary); ok && u.Op == cast.Deref {
				pl, ok := lvOf(u.X)
				if !ok {
					continue
				}
				for _, id := range storeSources(a.RHS) {
					if sl, ok := b.ppt.locOf[id.Name]; ok {
						srcs := b.ppt.pt[sl]
						if isRegion(id) {
							srcs = []LocID{sl}
						}
						for _, t := range b.ppt.pt[pl] {
							if addAll(t, srcs) {
								changed = true
							}
						}
					}
				}
				continue
			}
			dst, ok := lvOf(a.LHS)
			if !ok {
				continue
			}
			switch r := a.RHS.(type) {
			case *cast.Ident:
				if sl, ok := b.ppt.locOf[r.Name]; ok {
					if isRegion(r) {
						changed = addAll(dst, []LocID{sl}) || changed
					} else {
						changed = addAll(dst, b.ppt.pt[sl]) || changed
					}
				}
			case *cast.Unary:
				switch r.Op {
				case cast.Deref:
					if pl, ok := lvOf(r.X); ok {
						for _, t := range b.ppt.pt[pl] {
							changed = addAll(dst, b.ppt.pt[t]) || changed
						}
					}
				case cast.Addr:
					if vl, ok := lvOf(r.X); ok {
						changed = addAll(dst, []LocID{vl}) || changed
					}
				}
			case *cast.Binary:
				for _, op := range []cast.Expr{r.X, r.Y} {
					if id, ok := op.(*cast.Ident); ok {
						if sl, ok := b.ppt.locOf[id.Name]; ok {
							if isRegion(id) {
								changed = addAll(dst, []LocID{sl}) || changed
							} else {
								changed = addAll(dst, b.ppt.pt[sl]) || changed
							}
						}
					}
				}
			case *cast.Cast:
				if id, ok := r.X.(*cast.Ident); ok {
					if sl, ok := b.ppt.locOf[id.Name]; ok {
						if isRegion(id) {
							changed = addAll(dst, []LocID{sl}) || changed
						} else {
							changed = addAll(dst, b.ppt.pt[sl]) || changed
						}
					}
				}
			}
		}
	}
}

func isRegion(id *cast.Ident) bool {
	t := id.Type()
	return t != nil && (ctypes.IsArray(t) || ctypes.IsFunc(t))
}

func storeSources(e cast.Expr) []*cast.Ident {
	switch x := e.(type) {
	case *cast.Ident:
		return []*cast.Ident{x}
	case *cast.Unary:
		if x.Op == cast.Addr {
			return nil // handled as address store; invented flows rare here
		}
		if id, ok := x.X.(*cast.Ident); ok {
			return []*cast.Ident{id}
		}
	case *cast.Binary:
		var out []*cast.Ident
		if id, ok := x.X.(*cast.Ident); ok {
			out = append(out, id)
		}
		if id, ok := x.Y.(*cast.Ident); ok {
			out = append(out, id)
		}
		return out
	case *cast.Cast:
		if id, ok := x.X.(*cast.Ident); ok {
			return []*cast.Ident{id}
		}
	}
	return nil
}

// tryMerge implements the parameterizable check of Fig. 7 and performs the
// merge when it succeeds.
func (b *pptBuilder) tryMerge(p cast.Param) {
	lf, ok := b.ppt.locOf[p.Name]
	if !ok {
		return
	}
	if b.ppt.Locs[lf].Summary {
		return
	}
	targets := b.ppt.pt[lf]
	if len(targets) <= 1 {
		// Nothing to merge; a single non-summary target already permits
		// strong updates. Record it as effectively merged for reporting.
		if len(targets) == 1 && !b.ppt.Locs[targets[0]].Summary {
			b.ppt.MergedFormals = append(b.ppt.MergedFormals, p.Name)
		}
		return
	}
	for _, t := range targets {
		if b.ppt.Locs[t].Summary {
			return
		}
	}
	// For every choice of kept edge i, every other target must become
	// unreachable from the visible variables.
	if !b.parameterizable(lf, targets) {
		return
	}

	// Merge: a fresh non-summary rv(f) replaces all targets.
	elem := ctypes.Elem(p.Type)
	size := 0
	sizesAgree := true
	for _, t := range targets {
		if b.ppt.Locs[t].Size == 0 {
			sizesAgree = false
		} else if size == 0 {
			size = b.ppt.Locs[t].Size
		} else if size != b.ppt.Locs[t].Size {
			sizesAgree = false
		}
	}
	if !sizesAgree {
		size = 0
	}
	merged := b.newLoc(fmt.Sprintf("rv(%s)", p.Name), elem != nil && ctypes.IsScalar(elem), size, false)
	merged.ExactBase = true
	// pt(rv(f)) = union of pt(li).
	seen := map[LocID]bool{}
	for _, t := range targets {
		for _, u := range b.ppt.pt[t] {
			if !seen[u] {
				seen[u] = true
				b.ppt.pt[merged.ID] = append(b.ppt.pt[merged.ID], u)
			}
		}
	}
	// Redirect every edge into a target to the merged node.
	inTargets := map[LocID]bool{}
	for _, t := range targets {
		inTargets[t] = true
	}
	for i := range b.ppt.pt {
		if LocID(i) == merged.ID {
			continue
		}
		var out []LocID
		added := false
		for _, t := range b.ppt.pt[i] {
			if inTargets[t] {
				if !added {
					out = append(out, merged.ID)
					added = true
				}
				continue
			}
			out = append(out, t)
		}
		b.ppt.pt[i] = out
	}
	b.ppt.MergedFormals = append(b.ppt.MergedFormals, p.Name)
}

// parameterizable checks, for each i, that removing the edges lf->lj (j!=i)
// leaves every lj (j!=i) unreachable from the visible variables (Fig. 7).
func (b *pptBuilder) parameterizable(lf LocID, targets []LocID) bool {
	for i := range targets {
		removed := map[LocID]bool{}
		for j, t := range targets {
			if j != i {
				removed[t] = true
			}
		}
		// Reachability from all visible roots, not following removed
		// direct edges from lf.
		reach := map[LocID]bool{}
		var stack []LocID
		for _, root := range b.ppt.locOf {
			stack = append(stack, root)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[n] {
				continue
			}
			reach[n] = true
			for _, t := range b.ppt.pt[n] {
				if n == lf && removed[t] {
					continue
				}
				stack = append(stack, t)
			}
		}
		for j, t := range targets {
			if j != i && reach[t] {
				return false
			}
		}
	}
	return true
}
