package ppt

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/pointer"
)

const skipLineMain = `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
void main() {
    char buf[1024];
    char *r;
    char *s;
    r = buf;
    SkipLine(1, &r);
    s = r;
    SkipLine(1, &s);
}
`

func buildFor(t *testing.T, src, fn string, opts Options) (*PPT, *corec.Program) {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	g := pointer.Analyze(prog, pointer.Inclusion)
	fd := prog.File.Lookup(fn)
	if fd == nil {
		t.Fatalf("function %s not found", fn)
	}
	return Build(prog, fd, g, opts), prog
}

// TestFig6PPT reproduces the paper's Fig. 6(b): after merging, PtrEndText
// points to the single non-summary rv(PtrEndText), which points to the
// buffer.
func TestFig6PPT(t *testing.T) {
	p, _ := buildFor(t, skipLineMain, "SkipLine", Options{})
	lv, ok := p.Lv("PtrEndText")
	if !ok {
		t.Fatal("PtrEndText location missing")
	}
	rvs := p.Pt(lv)
	if len(rvs) != 1 {
		t.Fatalf("PtrEndText R-value set = %d locations, want 1 (merged); PPT:\n%s", len(rvs), p)
	}
	rv := p.Loc(rvs[0])
	if rv.Summary {
		t.Error("merged rv(PtrEndText) must be non-summary")
	}
	if !strings.Contains(rv.Name, "rv(PtrEndText)") {
		t.Errorf("merged node name = %q, want rv(PtrEndText)", rv.Name)
	}
	// rv(PtrEndText) points to the buffer.
	if len(p.Pt(rv.ID)) != 1 {
		t.Fatalf("rv(PtrEndText) targets = %v", p.Pt(rv.ID))
	}
	buf := p.Loc(p.Pt(rv.ID)[0])
	if buf.Size != 1024 {
		t.Errorf("buffer size = %d, want 1024", buf.Size)
	}
	// The local PtrEndLoc must be aliased to the same buffer.
	loc, _ := p.Lv("PtrEndLoc")
	if len(p.Pt(loc)) != 1 || p.Pt(loc)[0] != buf.ID {
		t.Errorf("PtrEndLoc should point to the merged buffer, got %v", p.Pt(loc))
	}
	found := false
	for _, m := range p.MergedFormals {
		if m == "PtrEndText" {
			found = true
		}
	}
	if !found {
		t.Error("PtrEndText not recorded as merged")
	}
}

func TestParameterizableDisabled(t *testing.T) {
	p, _ := buildFor(t, skipLineMain, "SkipLine", Options{DisableMerging: true})
	lv, _ := p.Lv("PtrEndText")
	if len(p.Pt(lv)) != 2 {
		t.Errorf("without merging PtrEndText should keep 2 targets, got %d", len(p.Pt(lv)))
	}
}

// TestParameterizableRejectsVisibleTarget: a formal pointing at a global is
// not parameterizable, because the global is reachable on its own.
func TestParameterizableRejectsVisibleTarget(t *testing.T) {
	src := `
char gbuf[10];
char other[10];
void f(char *p) {
    *p = 'x';
}
void main() {
    f(gbuf);
    f(other);
}
`
	p, _ := buildFor(t, src, "f", Options{})
	lv, _ := p.Lv("p")
	if len(p.Pt(lv)) != 2 {
		t.Errorf("merge must be rejected when targets are globals; got %d targets", len(p.Pt(lv)))
	}
	for _, m := range p.MergedFormals {
		if m == "p" {
			t.Error("p wrongly recorded as merged")
		}
	}
}

// TestParameterizableRejectsSharedTargets: two formals that may point to
// the same location must not be merged.
func TestParameterizableRejectsSharedTargets(t *testing.T) {
	src := `
void g(char *p, char *q) {
    *p = 'x';
    *q = 'y';
}
void main() {
    char a[4];
    char b[4];
    g(a, b);
    g(b, a);
}
`
	p, _ := buildFor(t, src, "g", Options{})
	lvp, _ := p.Lv("p")
	if len(p.Pt(lvp)) == 1 {
		t.Errorf("merge must be rejected when q can reach the same targets; PPT:\n%s", p)
	}
}

// TestInventedChain: analyzing a library procedure with no callers invents
// fresh non-summary locations for the formals (Fig. 6(b)'s N).
func TestInventedChain(t *testing.T) {
	src := `
void lib(int n, char **pp) {
    char *p;
    p = *pp;
    *p = 'x';
}
`
	p, _ := buildFor(t, src, "lib", Options{})
	lv, _ := p.Lv("pp")
	rvs := p.Pt(lv)
	if len(rvs) != 1 {
		t.Fatalf("pp should have one invented target, got %v\n%s", rvs, p)
	}
	cell := p.Loc(rvs[0])
	if !cell.Invented || cell.Summary {
		t.Errorf("invented cell wrong: %+v", cell)
	}
	bufs := p.Pt(cell.ID)
	if len(bufs) != 1 {
		t.Fatalf("invented cell should point to an invented buffer, got %v", bufs)
	}
	if !p.Loc(bufs[0]).Invented {
		t.Error("buffer should be invented")
	}
	// The local p aliases the invented buffer after the load.
	// (Pointer analysis ran on the whole program, so lv(p) has the edge.)
	lp, _ := p.Lv("p")
	if len(p.Pt(lp)) != 1 || p.Pt(lp)[0] != bufs[0] {
		t.Errorf("lv(p) should alias the invented buffer, got %v\n%s", p.Pt(lp), p)
	}
}

// TestStringLocs: string-literal buffers carry their contents.
func TestStringLocs(t *testing.T) {
	src := `
void f() {
    char *p;
    p = "abc";
}
`
	p, prog := buildFor(t, src, "f", Options{})
	_ = prog
	lv, _ := p.Lv("p")
	rvs := p.Pt(lv)
	if len(rvs) != 1 {
		t.Fatalf("p targets = %v", rvs)
	}
	l := p.Loc(rvs[0])
	if !l.IsString || l.StringVal != "abc" {
		t.Errorf("string loc = %+v, want contents abc", l)
	}
	if l.Size != 4 {
		t.Errorf("string buffer size = %d, want 4", l.Size)
	}
}

var _ = cast.ExprString
