package derive

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctypes"
	"repro/internal/inline"
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/polyhedra"
	"repro/internal/ppt"
)

// paths names abstract locations by access expressions over formals and
// globals (§4.2: "each abstract location corresponds to a set of L-value
// expressions"; we keep the shortest one).
type paths struct {
	// cell[l] is an lvalue expression whose cell is l (x, *x, **x).
	cell map[ppt.LocID]cast.Expr
	// into[l] is a pointer expression whose value points into region l
	// (x when x points to l, *x one level down).
	into map[ppt.LocID]cast.Expr
}

// buildPaths explores access chains of depth <= 2 from the given roots.
func buildPaths(pt *ppt.PPT, roots []cast.Param) *paths {
	p := &paths{cell: map[ppt.LocID]cast.Expr{}, into: map[ppt.LocID]cast.Expr{}}
	for _, r := range roots {
		lv, ok := pt.Lv(r.Name)
		if !ok {
			continue
		}
		id := &cast.Ident{Name: r.Name}
		id.SetType(r.Type)
		if _, done := p.cell[lv]; !done {
			p.cell[lv] = id
		}
		curExpr := cast.Expr(id)
		curCells := []ppt.LocID{lv}
		curType := r.Type
		for depth := 0; depth < 2; depth++ {
			dt := ctypes.Decay(curType)
			if !ctypes.IsPointer(dt) {
				break
			}
			elem := ctypes.Elem(dt)
			var next []ppt.LocID
			for _, c := range curCells {
				for _, t := range pt.Pt(c) {
					if _, done := p.into[t]; !done {
						p.into[t] = curExpr
					}
					next = append(next, t)
				}
			}
			deref := &cast.Unary{Op: cast.Deref, X: curExpr}
			deref.SetType(elem)
			for _, n := range next {
				if _, done := p.cell[n]; !done {
					p.cell[n] = deref
				}
			}
			curExpr = deref
			curCells = next
			curType = elem
		}
	}
	return p
}

// writeback converts IP-level constraint systems to contract text.
type writeback struct {
	pt    *ppt.PPT
	fd    *cast.FuncDecl
	snaps inline.Snapshots
	paths *paths
	// locByName finds locations from IP variable names.
	locByName map[string]ppt.LocID
}

func newWriteback(pt *ppt.PPT, fd *cast.FuncDecl, snaps inline.Snapshots, globals []cast.Param) *writeback {
	roots := append([]cast.Param(nil), fd.Params...)
	roots = append(roots, globals...)
	// The designated return_value variable is part of the contract
	// vocabulary (paper §2.2).
	if _, isVoid := fd.Ret.(ctypes.Void); !isVoid {
		roots = append(roots, cast.Param{Name: cast.ReturnValueName, Type: fd.Ret})
	}
	wb := &writeback{
		pt:        pt,
		fd:        fd,
		snaps:     snaps,
		paths:     buildPaths(pt, roots),
		locByName: map[string]ppt.LocID{},
	}
	for _, l := range pt.Locs {
		wb.locByName[l.Name] = l.ID
	}
	return wb
}

// splitVar decomposes an IP variable name "loc.prop".
func (wb *writeback) splitVar(name string) (ppt.LocID, string, bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return 0, "", false
	}
	loc, ok := wb.locByName[name[:i]]
	if !ok {
		return 0, "", false
	}
	return loc, name[i+1:], false || true && ok
}

// snapExprOf resolves the snapshot expression recorded for a location that
// is the cell of a __preN temporary ("lv(__pre0)" -> pre-arg expression).
func (wb *writeback) snapExprOf(locName string) (cast.Expr, bool) {
	if !strings.HasPrefix(locName, "lv(__pre") {
		return nil, false
	}
	name := strings.TrimSuffix(strings.TrimPrefix(locName, "lv("), ")")
	e, ok := wb.snaps[name]
	return e, ok
}

// terms is a symbolic linear combination over rendered atom strings.
type terms struct {
	coef  map[string]*big.Int
	konst *big.Int
}

func newTerms() *terms {
	return &terms{coef: map[string]*big.Int{}, konst: new(big.Int)}
}

func (t *terms) add(atom string, k *big.Int) {
	c, ok := t.coef[atom]
	if !ok {
		c = new(big.Int)
		t.coef[atom] = c
	}
	c.Add(c, k)
	if c.Sign() == 0 {
		delete(t.coef, atom)
	}
}

// atomsFor maps one IP variable to its symbolic combination, or ok=false.
// isPost permits pre() atoms (ensures clauses only).
func (wb *writeback) atomsFor(name string, isPost bool) ([]struct {
	atom string
	coef int64
}, bool) {
	type at = struct {
		atom string
		coef int64
	}
	loc, prop, ok := wb.splitVar(name)
	if !ok {
		return nil, false
	}
	locName := wb.pt.Loc(loc).Name

	// Snapshot cells render through pre(...).
	if snapE, isSnap := wb.snapExprOf(locName); isSnap {
		if !isPost {
			return nil, false
		}
		es := cast.ExprString(snapE)
		switch prop {
		case "val":
			if hasAttrs(snapE) {
				// Property snapshot: the int temp equals the recorded
				// attribute expression at entry.
				return []at{{atom: "pre(" + es + ")", coef: 1}}, true
			}
			return []at{{atom: "pre(" + es + ")", coef: 1}}, true
		case "offset":
			return []at{{atom: "offset(pre(" + es + "))", coef: 1}}, true
		}
		return nil, false
	}

	switch prop {
	case "val":
		e, ok := wb.paths.cell[loc]
		if !ok {
			return nil, false
		}
		t := ctypes.Decay(typeOf(e))
		if ctypes.IsPointer(t) {
			// Raw address values have no contract syntax.
			return nil, false
		}
		return []at{{atom: cast.ExprString(e), coef: 1}}, true
	case "offset":
		e, ok := wb.paths.cell[loc]
		if !ok {
			return nil, false
		}
		if !ctypes.IsPointer(ctypes.Decay(typeOf(e))) {
			return nil, false
		}
		return []at{{atom: "offset(" + cast.ExprString(e) + ")", coef: 1}}, true
	case "aSize":
		e, ok := wb.paths.into[loc]
		if !ok {
			return nil, false
		}
		es := cast.ExprString(e)
		return []at{{atom: "alloc(" + es + ")", coef: 1}, {atom: "offset(" + es + ")", coef: 1}}, true
	case "len":
		e, ok := wb.paths.into[loc]
		if !ok {
			return nil, false
		}
		es := cast.ExprString(e)
		return []at{{atom: "strlen(" + es + ")", coef: 1}, {atom: "offset(" + es + ")", coef: 1}}, true
	case "is_nullt":
		e, ok := wb.paths.into[loc]
		if !ok {
			return nil, false
		}
		return []at{{atom: "is_nullt(" + cast.ExprString(e) + ")", coef: 1}}, true
	}
	return nil, false
}

func typeOf(e cast.Expr) ctypes.Type {
	if t := e.Type(); t != nil {
		return t
	}
	return ctypes.Int
}

func hasAttrs(e cast.Expr) bool {
	found := false
	cast.WalkExpr(e, func(x cast.Expr) bool {
		if c, ok := x.(*cast.Call); ok {
			switch c.FuncName() {
			case "strlen", "alloc", "offset", "is_nullt", "is_within_bounds":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// expressible reports whether an IP variable can appear in a write-back
// clause.
func (wb *writeback) expressible(name string, isPost bool) bool {
	_, ok := wb.atomsFor(name, isPost)
	return ok
}

// render converts the constraint system into contract text, dropping
// constraints already implied by the prelude state (memory-model
// tautologies) and conjoining the rest with &&.
func (wb *writeback) render(sys linear.System, prog *ip.Program, prelude *polyhedra.Poly, isPost bool) string {
	var clauses []string
	for _, c := range sys {
		if c.IsTautology() {
			continue
		}
		if prelude != nil && prelude.Entails(c) {
			continue
		}
		txt, atoms, ok := wb.renderConstraint(c, prog, isPost)
		if !ok {
			continue
		}
		if isPost && allPreAtoms(atoms) {
			// A conjunct over entry-state snapshots only says nothing
			// about the exit state; it belongs (if anywhere) in requires.
			continue
		}
		clauses = append(clauses, txt)
	}
	sort.Strings(clauses)
	return strings.Join(clauses, " && ")
}

// allPreAtoms reports whether every atom is an entry-state snapshot.
func allPreAtoms(atoms []string) bool {
	if len(atoms) == 0 {
		return true
	}
	for _, a := range atoms {
		if !strings.HasPrefix(a, "pre(") && !strings.HasPrefix(a, "offset(pre(") {
			return false
		}
	}
	return true
}

// renderConstraint renders one constraint as contract text, returning the
// atoms used.
func (wb *writeback) renderConstraint(c linear.Constraint, prog *ip.Program, isPost bool) (string, []string, bool) {
	t := newTerms()
	t.konst.Set(c.E.Const)
	for _, v := range c.E.Vars() {
		atoms, ok := wb.atomsFor(prog.Space.Name(v), isPost)
		if !ok {
			return "", nil, false
		}
		k := c.E.Coef(v)
		for _, a := range atoms {
			t.add(a.atom, new(big.Int).Mul(k, big.NewInt(a.coef)))
		}
	}
	// Move negative terms and the constant to the right.
	var lhs, rhs []string
	var atoms []string
	for a := range t.coef {
		atoms = append(atoms, a)
	}
	sort.Strings(atoms)
	for _, a := range atoms {
		k := t.coef[a]
		side := &lhs
		kk := new(big.Int).Set(k)
		if k.Sign() < 0 {
			side = &rhs
			kk.Neg(kk)
		}
		if kk.Cmp(big.NewInt(1)) == 0 {
			*side = append(*side, a)
		} else {
			*side = append(*side, kk.String()+" * "+a)
		}
	}
	kon := new(big.Int).Neg(t.konst)
	if kon.Sign() > 0 || len(rhs) == 0 {
		rhs = append(rhs, kon.String())
	} else if kon.Sign() < 0 {
		lhs = append(lhs, new(big.Int).Neg(kon).String())
	}
	if len(t.coef) == 0 {
		return "", nil, false // all atoms cancelled: nothing worth stating
	}
	if len(lhs) == 0 {
		lhs = append(lhs, "0")
	}
	op := ">="
	if c.Rel == linear.Eq {
		op = "=="
	}
	return fmt.Sprintf("%s %s %s", strings.Join(lhs, " + "), op, strings.Join(rhs, " + ")), atoms, true
}

// parse re-parses a rendered clause against the procedure's formals.
func (wb *writeback) parse(text string, fd *cast.FuncDecl, isPost bool) (cast.Expr, error) {
	vars := map[string]ctypes.Type{}
	for _, p := range fd.Params {
		vars[p.Name] = p.Type
	}
	return cparse.ParseExpr(text, vars)
}
