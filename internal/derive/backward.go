package derive

import (
	"repro/internal/ip"
	"repro/internal/linear"
	"repro/internal/polyhedra"
)

// backward runs AWPre (paper §4.1): a backward analysis over the same
// abstract domain as the forward one, where assignments are handled by
// substitution. The result at the prelude boundary approximates the weakest
// liberal precondition of "no assert fails and the postcondition holds".
//
// Approximation notes (all sound for derivation — CSSV's soundness never
// depends on a derived precondition, §1.2):
//
//   - assume(C) is treated like assert(C) (meet), which yields a condition
//     stronger than C => Q;
//   - v := unknown drops the constraints mentioning v (weaker than the
//     universal quantification, as the paper's AWPre also loses information
//     at joins and widenings);
//   - branch joins use the convex hull.
func backward(p *ip.Program, opts Options) *polyhedra.Poly {
	if err := p.Resolve(); err != nil {
		return nil
	}
	n := len(p.Stmts)
	nvars := p.NumVars()

	// succ edges (same shape as the forward engine).
	type edge struct {
		to   int
		cond ip.DNF
	}
	succ := make([][]edge, n+1)
	for i, s := range p.Stmts {
		next := i + 1
		switch s := s.(type) {
		case *ip.Goto:
			succ[i] = []edge{{to: p.TargetOf(s.Target)}}
		case *ip.IfGoto:
			succ[i] = []edge{
				{to: p.TargetOf(s.Target), cond: s.C},
				{to: next, cond: s.FallthroughCond()},
			}
		default:
			succ[i] = []edge{{to: next}}
		}
	}

	// Q[i]: condition required at entry of statement i.
	q := make([]*polyhedra.Poly, n+1)
	q[n] = polyhedra.Universe(nvars)
	for i := range q[:n] {
		q[i] = nil // "not yet computed" (top of the backward lattice)
	}

	meetDNF := func(st *polyhedra.Poly, d ip.DNF) *polyhedra.Poly {
		if d.IsTrue() {
			return st
		}
		if d.IsFalse() {
			return polyhedra.Bottom(nvars)
		}
		acc := polyhedra.Bottom(nvars)
		for _, conj := range d {
			acc = acc.Join(st.MeetSystem(linear.System(conj)))
		}
		return acc
	}

	// transfer computes pre of statement i from the posts of its successors.
	transfer := func(i int) *polyhedra.Poly {
		// Combine successor requirements.
		var post *polyhedra.Poly
		for _, e := range succ[i] {
			qs := q[e.to]
			if qs == nil {
				qs = polyhedra.Universe(nvars)
			}
			contrib := qs
			if e.cond != nil {
				contrib = meetDNF(qs, e.cond)
			}
			if post == nil {
				post = contrib
			} else {
				post = post.Join(contrib)
			}
		}
		if post == nil {
			post = polyhedra.Universe(nvars)
		}
		switch s := p.Stmts[i].(type) {
		case *ip.Assign:
			return post.Substitute(s.V, s.E)
		case *ip.Havoc:
			return post.Forget(s.V)
		case *ip.Assume:
			return meetDNF(post, s.C)
		case *ip.Assert:
			if s.Unverifiable {
				return post
			}
			return meetDNF(post, s.C)
		}
		return post
	}

	// Bounded descending iteration (Gauss–Seidel in reverse order).
	// Starting from true everywhere, each pass strengthens q toward the
	// weakest liberal precondition; stopping after a fixed number of
	// passes yields a sound-for-derivation approximation that keeps the
	// loop-free constraints exact while loop bodies contribute only their
	// first unrollings (the paper's AWPre similarly loses information at
	// joins and widenings, §4.1). Termination is by construction.
	const passes = 3
	for i := range q {
		q[i] = polyhedra.Universe(nvars)
	}
	for pass := 0; pass < passes; pass++ {
		for i := n - 1; i >= 0; i-- {
			q[i] = transfer(i)
		}
	}

	at := p.PreludeEnd
	if at >= len(q) || q[at] == nil {
		return polyhedra.Universe(nvars)
	}
	return q[at]
}
