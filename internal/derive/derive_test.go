package derive

import (
	"strings"
	"testing"

	"repro/internal/corec"
	"repro/internal/cparse"
)

const skipLineSrc = `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`

// TestASPostSkipLine reproduces paper §4.1 equation (1): with a true
// precondition, ASPost discovers that the target buffer is null-terminated,
// that the new length equals the new offset (strlen == 0), and a relation
// between the new and old offsets involving NbLine.
func TestASPostSkipLine(t *testing.T) {
	f, err := cparse.ParseFile("skipline.c", skipLineSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Derive(prog, "SkipLine", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("derived modifies: %d entries", len(res.Modifies))
	t.Logf("derived requires: %s", res.RequiresText)
	t.Logf("derived ensures:  %s", res.EnsuresText)

	if !strings.Contains(res.EnsuresText, "is_nullt(*PtrEndText)") {
		t.Errorf("ensures should state the buffer is null-terminated, got: %s", res.EnsuresText)
	}
	if !strings.Contains(res.EnsuresText, "strlen(*PtrEndText)") {
		t.Errorf("ensures should constrain strlen, got: %s", res.EnsuresText)
	}
	// Equation (1)'s offset relation mentions the pre-state offset.
	if !strings.Contains(res.EnsuresText, "pre(") {
		t.Errorf("ensures should relate to the entry state via pre(), got: %s", res.EnsuresText)
	}
}
