package derive

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/cparse"
)

func deriveFor(t *testing.T, src, proc string) *Result {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	res, err := Derive(prog, proc, Options{})
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	return res
}

// TestDeriveTerminator: terminating a buffer yields is_nullt and an exact
// strlen in the derived postcondition.
func TestDeriveTerminator(t *testing.T) {
	res := deriveFor(t, `
void term(char *p) {
    *p = '\0';
}
`, "term")
	if !strings.Contains(res.EnsuresText, "is_nullt(p)") {
		t.Errorf("ensures = %q", res.EnsuresText)
	}
	if !strings.Contains(res.EnsuresText, "0 == strlen(p)") &&
		!strings.Contains(res.EnsuresText, "strlen(p) == 0") {
		t.Errorf("exact length missing: %q", res.EnsuresText)
	}
	// AWPre: the write demands at least one byte.
	if !strings.Contains(res.RequiresText, "alloc(p)") {
		t.Errorf("requires = %q", res.RequiresText)
	}
}

// TestDeriveCounterRelation: straight-line arithmetic relations write back
// exactly.
func TestDeriveCounterRelation(t *testing.T) {
	res := deriveFor(t, `
int bump(int x) {
    int y;
    y = x + 3;
    return y;
}
`, "bump")
	// return_value == x + 3 (modulo rendering: "return_value == x + 3" or a
	// rearrangement).
	ok := strings.Contains(res.EnsuresText, "return_value == x + 3") ||
		strings.Contains(res.EnsuresText, "return_value == 3 + x")
	if !ok {
		t.Errorf("ensures = %q", res.EnsuresText)
	}
}

// TestDeriveModifiesSynthesis: the side-effect analysis finds the paper's
// Fig. 4 clause from the bare body.
func TestDeriveModifiesSynthesis(t *testing.T) {
	res := deriveFor(t, skipLineSrc, "SkipLine")
	var entries []string
	for _, m := range res.Modifies {
		entries = append(entries, cast.ExprString(m))
	}
	joined := strings.Join(entries, ", ")
	for _, want := range []string{"*PtrEndText", "strlen(*PtrEndText)", "is_nullt(*PtrEndText)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("synthesized modifies %q misses %q", joined, want)
		}
	}
}

// TestDeriveRoundTrips: derived clauses parse in contract position — the
// tool can consume its own output.
func TestDeriveRoundTrips(t *testing.T) {
	res := deriveFor(t, skipLineSrc, "SkipLine")
	if res.Ensures == nil {
		t.Fatalf("derived ensures did not parse: %q", res.EnsuresText)
	}
	if res.RequiresText != "" && res.Requires == nil {
		t.Fatalf("derived requires did not parse: %q", res.RequiresText)
	}
}

// TestDeriveIgnoresLocals: local state is eliminated from postconditions
// (§4.1: "Local variables are eliminated").
func TestDeriveIgnoresLocals(t *testing.T) {
	res := deriveFor(t, `
int mix(int a) {
    int tmp;
    tmp = a * a;
    return a;
}
`, "mix")
	if strings.Contains(res.EnsuresText, "tmp") {
		t.Errorf("local leaked into the contract: %q", res.EnsuresText)
	}
}

// TestDeriveOnErrorProcedure: derivation still runs over procedures with
// errors (the derived contract reflects the post-assert states).
func TestDeriveOnErrorProcedure(t *testing.T) {
	res := deriveFor(t, `
void risky(char *line) {
    int n;
    n = 0;
    line[n - 1] = '\0';
}
`, "risky")
	// Should not crash; some postcondition (possibly weak) emerges.
	_ = res
}
