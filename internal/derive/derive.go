// Package derive implements the contract-derivation algorithms of paper §4:
//
//	ASPost  — a forward integer analysis computing an approximation of the
//	          strongest postcondition: the linear inequalities that hold at
//	          the procedure exit, with local state eliminated.
//	AWPre   — a backward integer analysis computing an approximation of the
//	          weakest liberal precondition from the (possibly strengthened)
//	          postcondition.
//
// Both analyses run over the same integer program C2IP produces for the
// procedure with a vacuous contract (true pre/post plus side-effect
// information); the write-back step (§4.2) converts the resulting IP
// inequalities into C contract expressions over the formal parameters and
// globals, using the procedural points-to information to name abstract
// locations by access paths.
package derive

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/c2ip"
	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/ctypes"
	"repro/internal/inline"
	"repro/internal/ip"
	"repro/internal/pointer"
	"repro/internal/polyhedra"
	"repro/internal/ppt"
	"sort"
)

// Options configures derivation.
type Options struct {
	PointerMode     pointer.Mode
	WideningDelay   int
	NarrowingPasses int
	// KeepManualModifies uses the procedure's declared modifies clause; when
	// false (or absent) a side-effect analysis synthesizes one (§4 step 1,
	// following [34]).
	KeepManualModifies bool
}

// Result is a derived contract.
type Result struct {
	Proc string
	// RequiresText / EnsuresText are the derived clauses rendered in the
	// contract language ("" when nothing was derived).
	RequiresText string
	EnsuresText  string
	// Requires / Ensures are the same clauses parsed back into AST form,
	// ready to strengthen the procedure's contract.
	Requires cast.Expr
	Ensures  cast.Expr
	// Modifies is the (possibly synthesized) side-effect clause used.
	Modifies []cast.Expr
	CPU      time.Duration
	Space    uint64
}

// Derive runs ASPost then AWPre for the procedure and returns the derived
// contract. prog must be the normalized program containing proc's
// definition; the procedure's own pre/postcondition is ignored (treated as
// vacuous), per §4 step 2.
func Derive(prog *corec.Program, proc string, opts Options) (*Result, error) {
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	fd := prog.File.Lookup(proc)
	if fd == nil || fd.Body == nil {
		return nil, fmt.Errorf("derive: no definition for %s", proc)
	}

	// Step 1: side-effect information.
	modifies := synthesizeModifies(prog, fd, opts)

	// Step 2+3: vacuous contract + designated variables, forward analysis.
	vac, snaps, pt2, ipProg, err := buildIP(prog, proc, modifies, opts)
	if err != nil {
		return nil, err
	}
	_ = vac
	ares, err := analysis.Analyze(ipProg, analysis.Options{
		WideningDelay:   opts.WideningDelay,
		NarrowingPasses: opts.NarrowingPasses,
	})
	if err != nil {
		return nil, err
	}

	var globals []cast.Param
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			globals = append(globals, cast.Param{Name: vd.Name, Type: vd.DeclType})
		}
	}
	wb := newWriteback(pt2, fd, snaps, globals)

	res := &Result{Proc: proc, Modifies: modifies}

	// The prelude state captures C2IP's own assumptions; conditions implied
	// by it are tautologies of the memory model, not derived facts.
	prelude := preludePoly(ares, ipProg.PreludeEnd)

	// ASPost: exit-state inequalities over expressible variables.
	if exit, ok := ares.ExitState.(interface{ Poly() *polyhedra.Poly }); ok {
		post := exit.Poly().SystemOver(func(v int) bool {
			return wb.expressible(ipProg.Space.Name(v), true)
		})
		res.EnsuresText = wb.render(post, ipProg, prelude, true)
	}

	// Step 4: AWPre — backward analysis from the strengthened postcondition.
	pre := backward(ipProg, opts)
	if pre != nil {
		preSys := pre.SystemOver(func(v int) bool {
			return wb.expressible(ipProg.Space.Name(v), false)
		})
		res.RequiresText = wb.render(preSys, ipProg, prelude, false)
	}

	// Step 5: write-back to parsed contract expressions.
	if res.EnsuresText != "" {
		if e, err := wb.parse(res.EnsuresText, fd, true); err == nil {
			res.Ensures = e
		}
	}
	if res.RequiresText != "" {
		if e, err := wb.parse(res.RequiresText, fd, false); err == nil {
			res.Requires = e
		}
	}

	res.CPU = time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	res.Space = msAfter.TotalAlloc - msBefore.TotalAlloc
	return res, nil
}

// buildIP assembles the derivation pipeline: vacuous contract, designated
// snapshot variables for every modified property, inline, renormalize,
// pointer analysis, PPT, C2IP.
func buildIP(prog *corec.Program, proc string, modifies []cast.Expr, opts Options) (*cast.File, inline.Snapshots, *ppt.PPT, *ip.Program, error) {
	vacFile := withVacuousContract(prog.File, proc, modifies)
	vacProg := &corec.Program{File: vacFile, Strings: prog.Strings}

	// Designated variables: snapshot every modified property at entry.
	var extra []cast.Expr
	for _, m := range modifies {
		extra = append(extra, snapshotExprFor(m)...)
	}

	inlined, snaps, err := inline.FileEx(vacProg, proc, extra)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	nprog, err := corec.Renormalize(vacProg, inlined)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fd := nprog.File.Lookup(proc)
	if fd == nil {
		return nil, nil, nil, nil, fmt.Errorf("derive: inlined %s missing", proc)
	}
	g := pointer.Analyze(nprog, opts.PointerMode)
	pt := ppt.Build(nprog, fd, g, ppt.Options{})
	res, err := c2ip.Transform(nprog, fd, pt, c2ip.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return inlined, snaps, pt, res.Prog, nil
}

// snapshotExprFor expands a modifies entry into the entry-time expressions
// worth recording: the entry itself for attribute entries, the value and
// the associated string properties for lvalue entries.
func snapshotExprFor(m cast.Expr) []cast.Expr {
	switch e := m.(type) {
	case *cast.Call:
		return []cast.Expr{cast.CloneExpr(m)}
	case *cast.Ident, *cast.Unary:
		out := []cast.Expr{cast.CloneExpr(m)}
		// For pointer-valued entries also record the entry string length
		// (the paper's running example records *PtrEndText.offset et al.).
		if t := e.Type(); t != nil && ctypes.IsPointer(ctypes.Decay(t)) {
			if ctypes.IsChar(ctypes.Elem(ctypes.Decay(t))) {
				out = append(out, attrCall("strlen", cast.CloneExpr(m)))
			}
		}
		return out
	}
	return nil
}

func attrCall(name string, arg cast.Expr) cast.Expr {
	fn := &cast.Ident{Name: name}
	c := &cast.Call{Fun: fn, Args: []cast.Expr{arg}}
	c.SetType(ctypes.Int)
	return c
}

// withVacuousContract returns a copy of file where proc's contract is
// {requires true; modifies M; ensures true}.
func withVacuousContract(file *cast.File, proc string, modifies []cast.Expr) *cast.File {
	out := &cast.File{Name: file.Name}
	for _, d := range file.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Name != proc {
			out.Decls = append(out.Decls, d)
			continue
		}
		nf := *fd
		nf.Contract = &cast.Contract{Modifies: modifies}
		out.Decls = append(out.Decls, &nf)
	}
	return out
}

// preludePoly reconstructs the abstract state right after C2IP's prelude.
func preludePoly(res *analysis.Result, preludeEnd int) *polyhedra.Poly {
	if preludeEnd < len(res.States) {
		if ps, ok := res.States[preludeEnd].(interface{ Poly() *polyhedra.Poly }); ok {
			return ps.Poly()
		}
	}
	return polyhedra.Universe(res.Prog.NumVars())
}

// ---------------------------------------------------------------------------
// Side-effect synthesis

// synthesizeModifies computes a modifies clause. With KeepManualModifies
// and a declared clause, that clause is used; otherwise the body's stores
// and calls are scanned and mapped to access paths over the formals and
// globals (a simple mod analysis in the spirit of [34]).
func synthesizeModifies(prog *corec.Program, fd *cast.FuncDecl, opts Options) []cast.Expr {
	if opts.KeepManualModifies && fd.Contract != nil && len(fd.Contract.Modifies) > 0 {
		return fd.Contract.Modifies
	}

	g := pointer.Analyze(prog, opts.PointerMode)
	pt := ppt.Build(prog, fd, g, ppt.Options{})

	roots := append([]cast.Param(nil), fd.Params...)
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			roots = append(roots, cast.Param{Name: vd.Name, Type: vd.DeclType})
		}
	}
	paths := buildPaths(pt, roots)

	// Collect written locations.
	written := map[ppt.LocID]bool{}
	charWritten := map[ppt.LocID]bool{}
	for _, s := range fd.Body.Stmts {
		es, ok := s.(*cast.ExprStmt)
		if !ok {
			continue
		}
		switch e := es.X.(type) {
		case *cast.Assign:
			if u, ok := e.LHS.(*cast.Unary); ok && u.Op == cast.Deref {
				if id, ok := u.X.(*cast.Ident); ok {
					for _, r := range pt.Rv(id.Name) {
						written[r] = true
						if elemIsChar(id.Type()) {
							charWritten[r] = true
						}
					}
				}
			}
			if c, ok := e.RHS.(*cast.Call); ok {
				markCallEffects(pt, c, written, charWritten)
			}
		case *cast.Call:
			markCallEffects(pt, e, written, charWritten)
		}
	}

	var out []cast.Expr
	seen := map[string]bool{}
	add := func(e cast.Expr) {
		key := cast.ExprString(e)
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	for loc := range written {
		if charWritten[loc] {
			// Buffer contents: name the region through a pointer into it.
			if e, ok := paths.into[loc]; ok {
				if id, isIdent := e.(*cast.Ident); isIdent && elemIsChar(id.Type()) {
					add(cast.CloneExpr(e)) // bare char* convention
				} else {
					add(attrCall("strlen", cast.CloneExpr(e)))
					add(attrCall("is_nullt", cast.CloneExpr(e)))
				}
			}
			continue
		}
		// Cell contents: name the cell as an lvalue.
		if e, ok := paths.cell[loc]; ok {
			if _, isIdent := e.(*cast.Ident); isIdent {
				continue // a visible variable itself is never a side effect via pointers
			}
			add(cast.CloneExpr(e))
		}
	}
	sortExprs(out)
	return out
}

// markCallEffects marks the regions reachable from a call's pointer
// arguments as potentially written.
func markCallEffects(pt *ppt.PPT, c *cast.Call, written, charWritten map[ppt.LocID]bool) {
	for _, a := range c.Args {
		if id, ok := a.(*cast.Ident); ok {
			for _, r := range pt.Rv(id.Name) {
				written[r] = true
				if elemIsChar(id.Type()) {
					charWritten[r] = true
				}
			}
		}
	}
}

// sortExprs orders modifies entries deterministically.
func sortExprs(es []cast.Expr) {
	sortFn := func(i, j int) bool {
		return cast.ExprString(es[i]) < cast.ExprString(es[j])
	}
	sort.Slice(es, sortFn)
}

func elemIsChar(t ctypes.Type) bool {
	e := ctypes.Elem(ctypes.Decay(t))
	return e != nil && ctypes.IsChar(e)
}
