package inline

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/cparse"
)

func inlineFor(t *testing.T, src, target string) (*cast.FuncDecl, Snapshots) {
	t.Helper()
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	out, snaps, err := FileEx(prog, target, nil)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	return out.Lookup(target), snaps
}

// TestInlineTable2Entry: at entry, pre(e) snapshots are taken and the
// precondition is assumed.
func TestInlineTable2Entry(t *testing.T) {
	fd, snaps := inlineFor(t, `
int f(int x)
    requires (x >= 1)
    ensures (return_value == pre(x) + 1)
{
    return x + 1;
}
`, "f")
	text := cast.FuncString(fd)
	if !strings.Contains(text, "__pre0 = x") {
		t.Errorf("snapshot assignment missing:\n%s", text)
	}
	if !strings.Contains(text, "__assume(x >= 1)") {
		t.Errorf("precondition assume missing:\n%s", text)
	}
	if e, ok := snaps["__pre0"]; !ok || cast.ExprString(e) != "x" {
		t.Errorf("snapshot map = %v", snaps)
	}
}

// TestInlineTable2Exit: returns route through return_value and a single
// exit point asserting the postcondition with pre() replaced by the
// snapshot.
func TestInlineTable2Exit(t *testing.T) {
	fd, _ := inlineFor(t, `
int f(int x)
    ensures (return_value == pre(x) + 1)
{
    if (x > 0) return x + 1;
    return 1 - x + x;
}
`, "f")
	text := cast.FuncString(fd)
	if !strings.Contains(text, ExitLabel+":") {
		t.Errorf("exit label missing:\n%s", text)
	}
	if !strings.Contains(text, "__assert(return_value == __pre0 + 1)") {
		t.Errorf("postcondition assert missing or pre() unsubstituted:\n%s", text)
	}
	if strings.Count(text, "goto "+ExitLabel) < 2 {
		t.Errorf("returns not rerouted to the exit:\n%s", text)
	}
	body := text[strings.Index(text, "{"):]
	if strings.Contains(body, "pre(x)") {
		t.Errorf("a pre() survived substitution in the body:\n%s", text)
	}
}

// TestInlineTable2Call: calls are bracketed by assert(pre[g]) and
// assume(post[g]) with actuals substituted for formals and return_value
// bound to the destination.
func TestInlineTable2Call(t *testing.T) {
	fd, _ := inlineFor(t, `
int g(int a)
    requires (a >= 0)
    ensures (return_value == a + 1);
void f(int y) {
    int r;
    r = g(y + 1);
}
`, "f")
	text := cast.FuncString(fd)
	if !strings.Contains(text, "__assert(__t0 >= 0)") {
		t.Errorf("callee precondition assert (on the actual) missing:\n%s", text)
	}
	if !strings.Contains(text, "r = g(__t0)") {
		t.Errorf("original call missing:\n%s", text)
	}
	if !strings.Contains(text, "__assume(r == __t0 + 1)") {
		t.Errorf("postcondition assume with return_value bound missing:\n%s", text)
	}
}

// TestInlineCallDiscardedResult: a discarded non-void result is bound to a
// normalization temp, so the postcondition's return_value conjuncts stay
// available through that temp.
func TestInlineCallDiscardedResult(t *testing.T) {
	fd, _ := inlineFor(t, `
int g(int a)
    ensures (return_value >= 0 && a <= 100);
void f(int y) {
    g(y);
}
`, "f")
	text := cast.FuncString(fd)
	if strings.Contains(text, "return_value") {
		t.Errorf("raw return_value leaked into the caller:\n%s", text)
	}
	if !strings.Contains(text, "__assume(__t0 >= 0 && y <= 100)") {
		t.Errorf("postcondition assume missing or unexpected shape:\n%s", text)
	}
}

// TestInlinePropertySnapshot: pre() over attribute expressions becomes an
// int temp pinned by an assume.
func TestInlinePropertySnapshot(t *testing.T) {
	fd, snaps := inlineFor(t, `
void f(char *s)
    requires (is_nullt(s))
    modifies (s)
    ensures (strlen(s) == pre(strlen(s)));
void f(char *s) {
    *s = 'x';
}
`, "f")
	_ = snaps
	text := cast.FuncString(fd)
	if !strings.Contains(text, "__assume(__pre0 == strlen(s))") {
		t.Errorf("property snapshot assume missing:\n%s", text)
	}
	if !strings.Contains(text, "__assert(strlen(s) == __pre0)") {
		t.Errorf("postcondition should reference the snapshot:\n%s", text)
	}
}

// TestInlineNoContractCallPassesThrough: calls to contract-less functions
// stay untouched.
func TestInlineNoContractCallPassesThrough(t *testing.T) {
	fd, _ := inlineFor(t, `
void helper(int z) { z = z + 1; }
void f(int y) {
    helper(y);
}
`, "f")
	text := cast.FuncString(fd)
	if strings.Contains(text, "__assert") || strings.Contains(text, "__assume") {
		t.Errorf("vacuous call got verification statements:\n%s", text)
	}
	if !strings.Contains(text, "helper(y)") {
		t.Errorf("call lost:\n%s", text)
	}
}

// TestInlineRenormalizes: the inlined output re-normalizes to valid CoreC.
func TestInlineRenormalizes(t *testing.T) {
	src := `
int g(int a)
    requires (a >= 0)
    ensures (return_value >= a);
int f(int y)
    requires (y >= 1)
    ensures (return_value >= 0)
{
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < y; i++) {
        acc = acc + g(i);
    }
    return acc;
}
`
	f, err := cparse.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := File(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	nprog, err := corec.Normalize(out)
	if err != nil {
		t.Fatalf("renormalize: %v", err)
	}
	if err := corec.Validate(nprog.File.Lookup("f")); err != nil {
		t.Errorf("inlined f is not CoreC: %v", err)
	}
}
