// Package inline implements the first CSSV phase (paper §3.2, Table 2):
// exposing the behavior of procedures by inlining contracts.
//
// For the analyzed procedure P it emits, as ordinary CoreC statements:
//
//	entry of P      __pre_k = e;            for every pre(e) in post[P]
//	                __assume(pre[P]);
//	return e        return_value = e; goto __cssv_exit;
//	exit of P       __cssv_exit: __assert(post[P]); return return_value;
//	call x = g(a..) __pre_k = e[a/f];       for every pre(e) in post[g]
//	                __assert(pre[g][a/f]);
//	                x = g(a..);             (kept for pointer effects + mod[g])
//	                __assume(post[g][a/f, x/return_value, __pre_k/pre(e)]);
//
// The result differs from P exactly on executions that violate a contract,
// which is what makes separate (modular) verification sound.
package inline

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/corec"
	"repro/internal/ctypes"
)

// ReturnVar is the local that carries P's return value to the exit assert.
const ReturnVar = cast.ReturnValueName

// ExitLabel is the unique procedure exit point.
const ExitLabel = "__cssv_exit"

// Snapshots maps snapshot temporaries (__preN) back to the entry-time
// expressions they record, so the contract-derivation write-back (§4.2) can
// rebuild pre(e) terms.
type Snapshots map[string]cast.Expr

// File returns a copy of prog.File in which the definition of target has
// been replaced by inline(target); all other definitions are untouched (they
// still provide calling contexts for the whole-program pointer analysis).
// The returned file is then re-normalized by the caller.
func File(prog *corec.Program, target string) (*cast.File, error) {
	f, _, err := FileEx(prog, target, nil)
	return f, err
}

// FileEx is File plus derivation support: extraSnaps lists additional
// entry-time expressions to snapshot (the designated variables of §4.1,
// recording every property the procedure may modify), and the returned
// Snapshots maps every snapshot temp of the target — contract pre() ones
// and extra ones — to its expression.
func FileEx(prog *corec.Program, target string, extraSnaps []cast.Expr) (*cast.File, Snapshots, error) {
	out := &cast.File{Name: prog.File.Name}
	snaps := Snapshots{}
	for _, d := range prog.File.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Body == nil || fd.Name != target {
			out.Decls = append(out.Decls, d)
			continue
		}
		inlined, sm, err := function(prog.File, fd, extraSnaps)
		if err != nil {
			return nil, nil, err
		}
		snaps = sm
		out.Decls = append(out.Decls, inlined)
	}
	return out, snaps, nil
}

type inliner struct {
	file *cast.File
	fd   *cast.FuncDecl
	out  []cast.Stmt
	// decls accumulates snapshot temporaries.
	decls []cast.Stmt
	npre  int
	// snapInfo records __preN -> snapshotted expression for the target.
	snapInfo Snapshots
}

// function builds inline(fd).
func function(file *cast.File, fd *cast.FuncDecl, extraSnaps []cast.Expr) (*cast.FuncDecl, Snapshots, error) {
	in := &inliner{file: file, fd: fd, snapInfo: Snapshots{}}

	nf := &cast.FuncDecl{
		Name:     fd.Name,
		Ret:      fd.Ret,
		Params:   fd.Params,
		Variadic: fd.Variadic,
		Contract: fd.Contract,
	}
	nf.P = fd.Pos()

	// Entry: snapshots for pre(e) in post[P], then assume the precondition.
	post := contractEnsures(fd)
	postSub := map[string]cast.Expr{}
	if post != nil {
		snaps, err := in.snapshots(post, nil, fd.Pos(), true)
		if err != nil {
			return nil, nil, err
		}
		postSub = snaps
	}
	// Designated variables for derivation (§4.1): record the entry value of
	// every property the procedure may modify.
	for _, e := range extraSnaps {
		if err := in.snapshotOne(e, fd.Pos(), true); err != nil {
			return nil, nil, err
		}
	}
	if pre := contractRequires(fd); pre != nil {
		in.emitVerify(cast.Assume, cast.CloneExpr(pre), "precondition of "+fd.Name, fd.Pos(), fd.Pos())
	}

	// Declare the return-value carrier for non-void functions.
	if _, isVoid := fd.Ret.(ctypes.Void); !isVoid {
		in.declare(ReturnVar, fd.Ret, fd.Pos())
	}

	// Body.
	for _, s := range fd.Body.Stmts {
		if err := in.stmt(s); err != nil {
			return nil, nil, err
		}
	}

	// Exit: the postcondition assert, then the actual return.
	in.emitLabel(ExitLabel, fd.Pos())
	if post != nil {
		cond := substPre(cast.CloneExpr(post), postSub)
		in.emitVerify(cast.Assert, cond, "postcondition of "+fd.Name, fd.Pos(), fd.Pos())
	}
	if _, isVoid := fd.Ret.(ctypes.Void); !isVoid {
		rv := &cast.Ident{Name: ReturnVar}
		rv.SetType(fd.Ret)
		rv.P = fd.Pos()
		ret := &cast.Return{X: rv}
		ret.P = fd.Pos()
		in.out = append(in.out, ret)
	} else {
		ret := &cast.Return{}
		ret.P = fd.Pos()
		in.out = append(in.out, ret)
	}

	body := &cast.Block{}
	body.P = fd.Body.Pos()
	body.Stmts = append(body.Stmts, in.decls...)
	body.Stmts = append(body.Stmts, in.out...)
	nf.Body = body
	return nf, in.snapInfo, nil
}

func contractRequires(fd *cast.FuncDecl) cast.Expr {
	if fd.Contract == nil {
		return nil
	}
	return fd.Contract.Requires
}

func contractEnsures(fd *cast.FuncDecl) cast.Expr {
	if fd.Contract == nil {
		return nil
	}
	return fd.Contract.Ensures
}

func (in *inliner) declare(name string, t ctypes.Type, pos clex.Pos) {
	vd := &cast.VarDecl{Name: name, DeclType: t}
	vd.P = pos
	ds := &cast.DeclStmt{Decl: vd}
	ds.P = pos
	in.decls = append(in.decls, ds)
}

func (in *inliner) emitVerify(kind cast.VerifyKind, cond cast.Expr, reason string, pos, site clex.Pos) {
	v := &cast.Verify{Kind: kind, Cond: cond, Reason: reason, Site: site}
	v.P = pos
	in.out = append(in.out, v)
}

func (in *inliner) emitLabel(name string, pos clex.Pos) {
	e := &cast.Empty{}
	e.P = pos
	l := &cast.Labeled{Label: name, Stmt: e}
	l.P = pos
	in.out = append(in.out, l)
}

// snapshots scans expr for pre(e) occurrences, emits snapshot code for each
// (applying the actual-for-formal substitution sub first), and returns a map
// from the textual form of the pre() argument to the snapshot variable.
// record marks entry-level snapshots of the target (exposed in Snapshots).
func (in *inliner) snapshots(expr cast.Expr, sub map[string]cast.Expr, pos clex.Pos, record bool) (map[string]cast.Expr, error) {
	snaps := map[string]cast.Expr{}
	var err error
	cast.WalkExpr(expr, func(e cast.Expr) bool {
		c, ok := e.(*cast.Call)
		if !ok || c.FuncName() != "pre" || len(c.Args) != 1 {
			return true
		}
		arg := c.Args[0]
		actual := arg
		if sub != nil {
			actual = cast.SubstituteIdents(arg, sub)
		}
		// Key by the substituted form: substPre later runs over the
		// substituted postcondition, where pre()'s argument reads in terms
		// of the actuals.
		key := cast.ExprString(actual)
		if _, done := snaps[key]; done {
			return false
		}
		name := in.emitSnapshot(actual, pos)
		if record {
			in.snapInfo[name] = cast.CloneExpr(actual)
		}
		snapID := &cast.Ident{Name: name}
		snapID.P = pos
		snapID.SetType(ctypes.Decay(actual.Type()))
		snaps[key] = snapID
		return false
	})
	return snaps, err
}

// emitSnapshot emits the code recording the entry value of expr and returns
// the snapshot variable name. Property expressions (containing attributes)
// become int temps pinned by an assume; plain C expressions become real
// assignments.
func (in *inliner) emitSnapshot(actual cast.Expr, pos clex.Pos) string {
	name := fmt.Sprintf("__pre%d", in.npre)
	in.npre++
	if hasAttributes(actual) {
		in.declare(name, ctypes.Int, pos)
		id := &cast.Ident{Name: name}
		id.SetType(ctypes.Int)
		id.P = pos
		eqE := &cast.Binary{Op: cast.Eq, X: id, Y: cast.CloneExpr(actual)}
		eqE.SetType(ctypes.Int)
		eqE.P = pos
		in.emitVerify(cast.Assume, eqE, "snapshot "+cast.ExprString(actual), pos, pos)
		return name
	}
	t := ctypes.Decay(actual.Type())
	if t == nil {
		t = ctypes.Int
	}
	in.declare(name, t, pos)
	id := &cast.Ident{Name: name}
	id.SetType(t)
	id.P = pos
	asn := &cast.Assign{Op: cast.PlainAssign, LHS: id, RHS: cast.CloneExpr(actual)}
	asn.SetType(t)
	asn.P = pos
	es := &cast.ExprStmt{X: asn}
	es.P = pos
	in.out = append(in.out, es)
	return name
}

// snapshotOne records one extra derivation snapshot.
func (in *inliner) snapshotOne(e cast.Expr, pos clex.Pos, record bool) error {
	name := in.emitSnapshot(e, pos)
	if record {
		in.snapInfo[name] = cast.CloneExpr(e)
	}
	return nil
}

// hasAttributes reports whether e contains contract attribute calls.
func hasAttributes(e cast.Expr) bool {
	found := false
	cast.WalkExpr(e, func(x cast.Expr) bool {
		if c, ok := x.(*cast.Call); ok {
			switch c.FuncName() {
			case "strlen", "alloc", "offset", "is_nullt", "base", "is_within_bounds":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// substPre replaces pre(e) occurrences with their snapshot variables.
func substPre(e cast.Expr, snaps map[string]cast.Expr) cast.Expr {
	switch x := e.(type) {
	case *cast.Call:
		if x.FuncName() == "pre" && len(x.Args) == 1 {
			if s, ok := snaps[cast.ExprString(x.Args[0])]; ok {
				return cast.CloneExpr(s)
			}
			return e
		}
		for i, a := range x.Args {
			x.Args[i] = substPre(a, snaps)
		}
	case *cast.Unary:
		x.X = substPre(x.X, snaps)
	case *cast.Binary:
		x.X = substPre(x.X, snaps)
		x.Y = substPre(x.Y, snaps)
	case *cast.Cast:
		x.X = substPre(x.X, snaps)
	case *cast.Cond:
		x.C = substPre(x.C, snaps)
		x.Then = substPre(x.Then, snaps)
		x.Else = substPre(x.Else, snaps)
	case *cast.Index:
		x.X = substPre(x.X, snaps)
		x.I = substPre(x.I, snaps)
	}
	return e
}

// stmt processes one CoreC statement of the target body.
func (in *inliner) stmt(s cast.Stmt) error {
	switch s := s.(type) {
	case *cast.DeclStmt:
		in.decls = append(in.decls, s)
		return nil
	case *cast.Return:
		if s.X != nil {
			rv := &cast.Ident{Name: ReturnVar}
			rv.SetType(in.fd.Ret)
			rv.P = s.Pos()
			asn := &cast.Assign{Op: cast.PlainAssign, LHS: rv, RHS: s.X}
			asn.SetType(in.fd.Ret)
			asn.P = s.Pos()
			es := &cast.ExprStmt{X: asn}
			es.P = s.Pos()
			in.out = append(in.out, es)
		}
		g := &cast.Goto{Label: ExitLabel}
		g.P = s.Pos()
		in.out = append(in.out, g)
		return nil
	case *cast.ExprStmt:
		switch x := s.X.(type) {
		case *cast.Call:
			return in.call(s, "", x)
		case *cast.Assign:
			if c, ok := x.RHS.(*cast.Call); ok {
				lhs, _ := x.LHS.(*cast.Ident)
				name := ""
				if lhs != nil {
					name = lhs.Name
				}
				return in.call(s, name, c)
			}
		}
	}
	in.out = append(in.out, s)
	return nil
}

// call wraps a call site with the callee's contract (Table 2, third row).
func (in *inliner) call(orig cast.Stmt, dst string, c *cast.Call) error {
	callee := in.file.Lookup(c.FuncName())
	if callee == nil || callee.Contract == nil {
		// No contract: keep the raw call; C2IP applies the conservative
		// default effect.
		in.out = append(in.out, orig)
		return nil
	}
	ct := callee.Contract
	// formal -> actual substitution.
	sub := map[string]cast.Expr{}
	for i, p := range callee.Params {
		if i < len(c.Args) {
			sub[p.Name] = c.Args[i]
		}
	}

	// Snapshots for pre(e) in post[g], taken before the call.
	var snaps map[string]cast.Expr
	if ct.Ensures != nil {
		var err error
		snaps, err = in.snapshots(ct.Ensures, sub, orig.Pos(), false)
		if err != nil {
			return err
		}
	}
	// assert(pre[g](a...)).
	if ct.Requires != nil {
		cond := cast.SubstituteIdents(ct.Requires, sub)
		in.emitVerify(cast.Assert, cond,
			fmt.Sprintf("precondition of %s", callee.Name), orig.Pos(), orig.Pos())
	}
	// The original call (pointer effects and mod[g] are handled by C2IP).
	in.out = append(in.out, orig)
	// assume(post[g](a...)), with return_value bound to the destination.
	if ct.Ensures != nil {
		postSub := map[string]cast.Expr{}
		for k, v := range sub {
			postSub[k] = v
		}
		if dst != "" {
			id := &cast.Ident{Name: dst}
			id.P = orig.Pos()
			id.SetType(c.Type())
			postSub[cast.ReturnValueName] = id
		}
		cond := cast.SubstituteIdents(ct.Ensures, postSub)
		cond = substPre(cond, snaps)
		if dst == "" && mentionsReturnValue(ct.Ensures) {
			cond = dropReturnValueConjuncts(cond)
		}
		if cond != nil {
			in.emitVerify(cast.Assume, cond,
				fmt.Sprintf("postcondition of %s", callee.Name), orig.Pos(), orig.Pos())
		}
	}
	return nil
}

func mentionsReturnValue(e cast.Expr) bool {
	for _, n := range cast.FreeIdents(e) {
		if n == cast.ReturnValueName {
			return true
		}
	}
	return false
}

// dropReturnValueConjuncts removes top-level conjuncts that mention
// return_value when the call result is discarded (sound weakening).
func dropReturnValueConjuncts(e cast.Expr) cast.Expr {
	if b, ok := e.(*cast.Binary); ok && b.Op == cast.LogAnd {
		l := dropReturnValueConjuncts(b.X)
		r := dropReturnValueConjuncts(b.Y)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		default:
			b.X, b.Y = l, r
			return b
		}
	}
	if mentionsReturnValue(e) {
		return nil
	}
	return e
}
