// Package schedule implements the adaptive portfolio scheduler of the
// tiered check-discharge cascade: given static features of one check's
// backward slice (check kind, slice size, loop count, variable count) it
// picks the order in which the abstract-domain tiers attempt the check
// and a per-tier fixpoint step budget, and it records the outcomes to an
// on-disk profile so the choices improve across runs.
//
// The package is a leaf: it knows nothing about domains, integer
// programs, or the engine. Callers (internal/analysis) translate their
// checks into Features, receive a Plan naming tiers by their domain
// names, and report what happened through a Recorder. This keeps the
// soundness argument trivial to audit: scheduling can reorder tiers,
// skip tiers, and bound tiers, but every verdict is still produced by a
// sound domain on a sound reduction — the scheduler only ever moves cost,
// never truth (DESIGN.md §12).
package schedule

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Mode selects how the cascade orders its tiers.
type Mode int

const (
	// Off runs the fixed cheapest-to-most-precise cascade through the
	// legacy code path: reports are byte-identical to pre-scheduler
	// releases.
	Off Mode = iota
	// Static routes every check through the planner but with the fixed
	// default plan: same tier order, no per-tier budgets. It exists to
	// exercise the scheduled code path deterministically.
	Static
	// Adaptive consults the profile: tiers that historically discharge
	// checks with this feature signature run first under step budgets
	// sized from past cost; tiers that historically never succeed are
	// skipped. The final tier always runs unbudgeted, so precision is
	// never lost relative to the static cascade.
	Adaptive
)

// String names the mode as accepted by the -schedule flag.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Adaptive:
		return "adaptive"
	}
	return "off"
}

// ParseMode parses a -schedule flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "static":
		return Static, nil
	case "adaptive":
		return Adaptive, nil
	}
	return Off, fmt.Errorf("schedule: unknown mode %q (want off, static, or adaptive)", s)
}

// Features are the static signals the planner sees for one check. They
// are computed from the check's individual backward slice, before any
// tier runs, so plans depend only on program content — never on timing
// or worker interleaving.
type Features struct {
	// Kind classifies the checked property (see ClassifyKind).
	Kind string
	// Vars and Stmts are the dimensions of the check's backward slice.
	Vars, Stmts int
	// Loops counts the backward control-flow edges in the slice — a
	// proxy for how much widening the fixpoint will need.
	Loops int
}

// ClassifyKind buckets an assert message into a small closed set of
// check kinds. The message text is stable analyzer output (it names the
// violated requirement), so keying on prefixes is deterministic.
func ClassifyKind(msg string) string {
	switch {
	case strings.HasPrefix(msg, "precondition"):
		return "pre"
	case strings.HasPrefix(msg, "postcondition"):
		return "post"
	case strings.HasPrefix(msg, "read through"):
		return "read"
	case strings.HasPrefix(msg, "write through"):
		return "write"
	case strings.Contains(msg, "overflow"):
		return "overflow"
	}
	return "other"
}

// bucket maps the features to the profile key: the kind, the slice size
// in powers of two, and the loop count capped at 3. Coarse on purpose —
// fine buckets would never accumulate enough outcomes to matter.
func (f Features) bucket() string {
	return f.Kind + "/s" + strconv.Itoa(log2Bucket(f.Stmts)) +
		"/v" + strconv.Itoa(log2Bucket(f.Vars)) +
		"/l" + strconv.Itoa(min(f.Loops, 3))
}

func log2Bucket(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// A Plan is the scheduler's decision for one check: the tiers to try, in
// order, and a fixpoint step budget per tier (0 = unbudgeted). The final
// tier of the cascade is always last and always unbudgeted; earlier
// tiers whose budget runs out are skipped for the remaining checks of
// their group — the check falls through to the next tier, it is never
// reported unresolved because of a tier budget.
type Plan struct {
	// Order lists tier (domain) names, cheapest-attempt first.
	Order []string
	// Budgets holds one step budget per Order entry (0 = unlimited).
	Budgets []int
	// Source records how the plan was chosen: "static" (fixed order) or
	// "profile" (adaptive order derived from recorded outcomes).
	Source string
}

// Key is a canonical string form of the plan, used to group checks that
// share a schedule into one cascade run per tier.
func (p Plan) Key() string {
	var sb strings.Builder
	for i, t := range p.Order {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t)
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(p.Budgets[i]))
	}
	return sb.String()
}

// minAttempts is how many recorded attempts a (bucket, tier) pair needs
// before the planner trusts its discharge rate; below it the tier keeps
// its static position and runs unbudgeted (exploration).
const minAttempts = 4

// budgetHeadroom scales the historical mean cost of a successful
// discharge into the tier's step budget: generous enough that ordinary
// variance never cuts a would-be discharge short, small enough that a
// hopeless tier stops early.
const budgetHeadroom = 4

// A Planner maps features to plans. It is immutable after construction
// and safe for concurrent use from every analysis worker.
type Planner struct {
	mode Mode
	// static is the fixed tier order, cheapest first, final tier last.
	static []string
	prof   *Profile
}

// NewPlanner builds a planner over the cascade's static tier order
// (cheapest first; the last entry is the final, authoritative domain).
// prof may be nil: adaptive planning then degenerates to the static
// order until a profile accumulates.
func NewPlanner(mode Mode, static []string, prof *Profile) *Planner {
	p := &Planner{mode: mode, static: append([]string(nil), static...), prof: prof}
	if p.prof == nil {
		p.prof = NewProfile()
	}
	return p
}

// Mode returns the planner's scheduling mode.
func (p *Planner) Mode() Mode { return p.mode }

// Plan decides the tier order and budgets for one check.
func (p *Planner) Plan(f Features) Plan {
	static := Plan{
		Order:   append([]string(nil), p.static...),
		Budgets: make([]int, len(p.static)),
		Source:  "static",
	}
	if p.mode != Adaptive || len(p.static) < 2 {
		return static
	}
	stats := p.prof.Buckets[f.bucket()]
	if stats == nil {
		return static
	}

	final := p.static[len(p.static)-1]
	type ranked struct {
		name   string
		pos    int   // static position, the tie-break and no-data rank
		cost   int64 // mean iterations per discharge (scaled), -1 = no data
		budget int
	}
	var cheap []ranked
	for i, name := range p.static[:len(p.static)-1] {
		r := ranked{name: name, pos: i, cost: -1}
		if o := stats[name]; o != nil && o.Attempts >= minAttempts {
			if o.Discharges == 0 {
				// The tier has never discharged a check that looks like
				// this one: skip it. The final tier keeps full authority,
				// so skipping costs nothing but the tier's wasted fixpoint.
				continue
			}
			r.cost = o.Iterations / o.Discharges
			b := r.cost * budgetHeadroom
			if b < 64 {
				b = 64
			}
			r.budget = int(b)
		}
		cheap = append(cheap, r)
	}
	// Proven-cheap tiers first (by mean cost per discharge), unproven
	// tiers after them in static order. Ties resolve by static position,
	// so the plan is a pure function of (features, profile).
	sort.SliceStable(cheap, func(i, j int) bool {
		a, b := cheap[i], cheap[j]
		if (a.cost >= 0) != (b.cost >= 0) {
			return a.cost >= 0
		}
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		return a.pos < b.pos
	})
	plan := Plan{Source: "profile"}
	for _, r := range cheap {
		plan.Order = append(plan.Order, r.name)
		plan.Budgets = append(plan.Budgets, r.budget)
	}
	plan.Order = append(plan.Order, final)
	plan.Budgets = append(plan.Budgets, 0)
	return plan
}

// TierOutcome accumulates what happened when one tier ran on checks of
// one feature bucket.
type TierOutcome struct {
	// Attempts counts checks that entered the tier; Discharges how many
	// it proved; Iterations the fixpoint worklist steps it spent on
	// runs that entered at least one of the bucket's checks.
	Attempts   int64 `json:"attempts"`
	Discharges int64 `json:"discharges"`
	Iterations int64 `json:"iterations"`
}

// Profile is the accumulated outcome store: bucket -> tier -> outcome.
// A Profile is mutated only through Record and Merge; the Planner reads
// it immutably.
type Profile struct {
	Buckets map[string]map[string]*TierOutcome `json:"buckets"`
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{Buckets: map[string]map[string]*TierOutcome{}}
}

// Record adds one tier run over n checks of the given features, of which
// discharged were proved, at a cost of iterations worklist steps.
func (p *Profile) Record(f Features, tier string, n, discharged int, iterations int) {
	b := f.bucket()
	tiers := p.Buckets[b]
	if tiers == nil {
		tiers = map[string]*TierOutcome{}
		p.Buckets[b] = tiers
	}
	o := tiers[tier]
	if o == nil {
		o = &TierOutcome{}
		tiers[tier] = o
	}
	o.Attempts += int64(n)
	o.Discharges += int64(discharged)
	o.Iterations += int64(iterations)
}

// Merge adds every outcome of other into p. Counts are commutative, so
// merging per-procedure recordings in input order yields the same
// profile for every worker count.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	for b, tiers := range other.Buckets {
		for tier, o := range tiers {
			dst := p.Buckets[b]
			if dst == nil {
				dst = map[string]*TierOutcome{}
				p.Buckets[b] = dst
			}
			d := dst[tier]
			if d == nil {
				d = &TierOutcome{}
				dst[tier] = d
			}
			d.Attempts += o.Attempts
			d.Discharges += o.Discharges
			d.Iterations += o.Iterations
		}
	}
}

// A Recorder collects one procedure's scheduling outcomes. It is used by
// a single analysis goroutine and merged into the run profile by the
// driver in input order, keeping the saved profile deterministic.
type Recorder struct {
	prof *Profile
}

// NewRecorder returns an empty per-procedure recorder.
func NewRecorder() *Recorder { return &Recorder{prof: NewProfile()} }

// Record forwards to the underlying profile.
func (r *Recorder) Record(f Features, tier string, n, discharged, iterations int) {
	if r == nil {
		return
	}
	r.prof.Record(f, tier, n, discharged, iterations)
}

// Profile returns the recorded outcomes.
func (r *Recorder) Profile() *Profile {
	if r == nil {
		return nil
	}
	return r.prof
}

// A Decision is one plan the scheduler applied to a group of checks,
// kept for the -stats report and the suite runner's JSON output.
type Decision struct {
	// Checks are the statement indices (original program) of the checks
	// that shared this plan.
	Checks []int
	// Order and Budgets echo the applied Plan; Source its origin.
	Order   []string
	Budgets []int
	Source  string
}
