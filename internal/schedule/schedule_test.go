package schedule

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var tiers = []string{"interval", "zone", "polyhedra"}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": Off, "off": Off, "static": Static, "adaptive": Adaptive} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) succeeded")
	}
}

func TestStaticPlan(t *testing.T) {
	p := NewPlanner(Static, tiers, nil)
	plan := p.Plan(Features{Kind: "pre", Vars: 4, Stmts: 10})
	if !reflect.DeepEqual(plan.Order, tiers) {
		t.Errorf("static order = %v", plan.Order)
	}
	for _, b := range plan.Budgets {
		if b != 0 {
			t.Errorf("static budgets = %v, want all 0", plan.Budgets)
		}
	}
	if plan.Source != "static" {
		t.Errorf("source = %q", plan.Source)
	}
}

func TestAdaptiveNoDataFallsBackToStatic(t *testing.T) {
	p := NewPlanner(Adaptive, tiers, nil)
	plan := p.Plan(Features{Kind: "pre", Vars: 4, Stmts: 10})
	if !reflect.DeepEqual(plan.Order, tiers) || plan.Source != "static" {
		t.Errorf("no-data adaptive plan = %+v", plan)
	}
}

func TestAdaptiveSkipsHopelessTierAndReordersByCost(t *testing.T) {
	f := Features{Kind: "pre", Vars: 4, Stmts: 10}
	prof := NewProfile()
	// interval: many attempts, no discharges -> skipped.
	prof.Record(f, "interval", 10, 0, 500)
	// zone: cheap and effective -> first, budgeted.
	prof.Record(f, "zone", 10, 9, 90)
	p := NewPlanner(Adaptive, tiers, prof)
	plan := p.Plan(f)
	if !reflect.DeepEqual(plan.Order, []string{"zone", "polyhedra"}) {
		t.Fatalf("order = %v", plan.Order)
	}
	if plan.Budgets[0] == 0 {
		t.Error("effective tier got no budget")
	}
	if plan.Budgets[len(plan.Budgets)-1] != 0 {
		t.Error("final tier must be unbudgeted")
	}
	if plan.Source != "profile" {
		t.Errorf("source = %q", plan.Source)
	}
	// A different bucket is unaffected.
	other := p.Plan(Features{Kind: "post", Vars: 64, Stmts: 300})
	if !reflect.DeepEqual(other.Order, tiers) {
		t.Errorf("other-bucket order = %v", other.Order)
	}
}

func TestAdaptiveFinalTierAlwaysLast(t *testing.T) {
	f := Features{Kind: "read", Vars: 2, Stmts: 5}
	prof := NewProfile()
	prof.Record(f, "interval", 8, 1, 800)
	prof.Record(f, "zone", 8, 8, 16)
	p := NewPlanner(Adaptive, tiers, prof)
	plan := p.Plan(f)
	if plan.Order[len(plan.Order)-1] != "polyhedra" {
		t.Fatalf("final tier not last: %v", plan.Order)
	}
	if plan.Order[0] != "zone" {
		t.Errorf("cheapest effective tier not first: %v", plan.Order)
	}
}

func TestPlanKeyGroupsEqualPlans(t *testing.T) {
	p := NewPlanner(Static, tiers, nil)
	a := p.Plan(Features{Kind: "pre", Stmts: 10, Vars: 3})
	b := p.Plan(Features{Kind: "post", Stmts: 500, Vars: 40})
	if a.Key() != b.Key() {
		t.Errorf("static plans differ: %q vs %q", a.Key(), b.Key())
	}
	if !strings.Contains(a.Key(), "interval:0") {
		t.Errorf("key = %q", a.Key())
	}
}

func TestProfileRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := ProfilePath(dir, "0123456789abcdef0123456789abcdef")
	f := Features{Kind: "pre", Vars: 4, Stmts: 10}

	prof := NewProfile()
	prof.Record(f, "zone", 3, 2, 30)
	if err := SaveProfile(path, prof); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, prof) {
		t.Errorf("round trip: got %+v want %+v", back, prof)
	}

	more := NewProfile()
	more.Record(f, "zone", 1, 1, 5)
	back.Merge(more)
	o := back.Buckets[f.bucket()]["zone"]
	if o.Attempts != 4 || o.Discharges != 3 || o.Iterations != 35 {
		t.Errorf("merged outcome = %+v", o)
	}
}

func TestProfileMissingFileIsEmpty(t *testing.T) {
	p, err := LoadProfile(filepath.Join(t.TempDir(), "nope.prof"))
	if err != nil || len(p.Buckets) != 0 {
		t.Errorf("missing file: %+v, %v", p, err)
	}
}

func TestProfileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := ProfilePath(dir, "deadbeefdeadbeef")
	prof := NewProfile()
	prof.Record(Features{Kind: "pre"}, "zone", 1, 1, 1)
	if err := SaveProfile(path, prof); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	p, err := LoadProfile(path)
	if err == nil {
		t.Error("corruption not detected")
	}
	if len(p.Buckets) != 0 {
		t.Error("corrupt profile not discarded")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	prof := NewProfile()
	for _, k := range []string{"pre", "post", "read", "write", "other"} {
		prof.Record(Features{Kind: k, Stmts: 8}, "zone", 2, 1, 10)
		prof.Record(Features{Kind: k, Stmts: 8}, "interval", 2, 0, 12)
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.prof"), filepath.Join(dir, "b.prof")
	if err := SaveProfile(p1, prof); err != nil {
		t.Fatal(err)
	}
	if err := SaveProfile(p2, prof); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(p1)
	b, _ := os.ReadFile(p2)
	if string(a) != string(b) {
		t.Error("profile serialization is not deterministic")
	}
}

func TestClassifyKind(t *testing.T) {
	cases := map[string]string{
		"precondition of SkipLine":      "pre",
		"postcondition of f":            "post",
		"read through *Text":            "read",
		"write through *p":              "write",
		"buffer overflow in memcpy":     "overflow",
		"something else entirely wrong": "other",
	}
	for msg, want := range cases {
		if got := ClassifyKind(msg); got != want {
			t.Errorf("ClassifyKind(%q) = %q, want %q", msg, got, want)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Features{}, "zone", 1, 1, 1) // must not panic
	if r.Profile() != nil {
		t.Error("nil recorder has a profile")
	}
}
