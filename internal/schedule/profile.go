package schedule

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ProfileVersion retires old profile files wholesale when the bucket or
// outcome encoding changes.
const ProfileVersion = 1

// profileMagic leads every profile file, followed by the version and the
// hex sha256 of the body — the same self-verifying shape as the analysis
// cache entries, so a torn write or a bit flip is detected and the
// profile falls back to empty instead of steering plans from garbage.
const profileMagic = "cssv-schedule"

// ProfilePath returns the profile file for a profile directory and a
// configuration fingerprint. Profiles are content-addressed by the
// run-relevant configuration (like cache entries): outcomes recorded
// under one tier set or widening policy never steer a run under another.
func ProfilePath(dir, confHash string) string {
	short := confHash
	if len(short) > 16 {
		short = short[:16]
	}
	return filepath.Join(dir, "schedule-"+short+".prof")
}

// encodeProfile renders the profile body deterministically: buckets and
// tiers in sorted order, one JSON object per line.
func encodeProfile(p *Profile) []byte {
	var sb strings.Builder
	buckets := make([]string, 0, len(p.Buckets))
	for b := range p.Buckets {
		buckets = append(buckets, b)
	}
	sort.Strings(buckets)
	for _, b := range buckets {
		tiers := make([]string, 0, len(p.Buckets[b]))
		for t := range p.Buckets[b] {
			tiers = append(tiers, t)
		}
		sort.Strings(tiers)
		for _, t := range tiers {
			o := p.Buckets[b][t]
			line, _ := json.Marshal(struct {
				Bucket string `json:"bucket"`
				Tier   string `json:"tier"`
				TierOutcome
			}{b, t, *o})
			sb.Write(line)
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

// LoadProfile reads and verifies a profile file. A missing file yields
// an empty profile and no error; a corrupt, truncated, or
// version-mismatched file yields an empty profile and a descriptive
// error so the caller can log it — the run proceeds either way.
func LoadProfile(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewProfile(), nil
		}
		return NewProfile(), err
	}
	nl := strings.IndexByte(string(raw), '\n')
	if nl < 0 {
		return NewProfile(), fmt.Errorf("schedule: %s: missing header", path)
	}
	header, body := string(raw[:nl]), raw[nl+1:]
	var magic, sum string
	var version int
	if _, err := fmt.Sscanf(header, "%s %d %s", &magic, &version, &sum); err != nil || magic != profileMagic {
		return NewProfile(), fmt.Errorf("schedule: %s: malformed header %q", path, header)
	}
	if version != ProfileVersion {
		return NewProfile(), fmt.Errorf("schedule: %s: version %d, want %d", path, version, ProfileVersion)
	}
	got := sha256.Sum256(body)
	if hex.EncodeToString(got[:]) != sum {
		return NewProfile(), fmt.Errorf("schedule: %s: body digest mismatch", path)
	}
	p := NewProfile()
	for lineno, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Bucket string `json:"bucket"`
			Tier   string `json:"tier"`
			TierOutcome
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return NewProfile(), fmt.Errorf("schedule: %s:%d: %v", path, lineno+2, err)
		}
		tiers := p.Buckets[rec.Bucket]
		if tiers == nil {
			tiers = map[string]*TierOutcome{}
			p.Buckets[rec.Bucket] = tiers
		}
		o := rec.TierOutcome
		tiers[rec.Tier] = &o
	}
	return p, nil
}

// SaveProfile writes the profile atomically (temp file + rename in the
// same directory), creating the directory if needed. Concurrent writers
// are safe — the rename is atomic and each writer saves a fully merged
// profile — though the last writer's counts win.
func SaveProfile(path string, p *Profile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	body := encodeProfile(p)
	sum := sha256.Sum256(body)
	data := []byte(fmt.Sprintf("%s %d %s\n", profileMagic, ProfileVersion, hex.EncodeToString(sum[:])))
	data = append(data, body...)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".schedule-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
