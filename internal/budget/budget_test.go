package budget

import (
	"testing"
	"time"
)

func TestNilTokenIsUnlimited(t *testing.T) {
	var tok *Token
	if !tok.Step(1 << 30) {
		t.Error("nil token refused a step")
	}
	if tok.Exhausted() {
		t.Error("nil token reports exhausted")
	}
	if c := tok.Cause(); c != "" {
		t.Errorf("nil token cause = %q, want empty", c)
	}
	if New(time.Time{}, 0) != nil {
		t.Error("New with no limits should return nil")
	}
}

func TestStepBudget(t *testing.T) {
	tok := New(time.Time{}, 3)
	for i := 0; i < 3; i++ {
		if !tok.Step(1) {
			t.Fatalf("step %d refused before limit", i)
		}
	}
	if tok.Step(1) {
		t.Fatal("step allowed past limit")
	}
	if !tok.Exhausted() {
		t.Error("token not exhausted after tripping")
	}
	if c := tok.Cause(); c != CauseSteps {
		t.Errorf("cause = %q, want %q", c, CauseSteps)
	}
	// Latched: stays tripped.
	if tok.Step(1) {
		t.Error("tripped token accepted another step")
	}
}

func TestDeadline(t *testing.T) {
	tok := New(time.Now().Add(-time.Second), 0)
	if !tok.Exhausted() {
		t.Fatal("past deadline not detected")
	}
	if c := tok.Cause(); c != CauseDeadline {
		t.Errorf("cause = %q, want %q", c, CauseDeadline)
	}
	if tok.Step(1) {
		t.Error("step allowed past deadline")
	}
}

func TestCauseLatchesFirstTrip(t *testing.T) {
	// Trip on steps with a deadline that then passes: cause stays steps.
	tok := New(time.Now().Add(time.Hour), 1)
	tok.Step(1)
	if tok.Step(1) {
		t.Fatal("expected step trip")
	}
	if c := tok.Cause(); c != CauseSteps {
		t.Errorf("cause = %q, want %q", c, CauseSteps)
	}
}
