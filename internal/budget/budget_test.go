package budget

import (
	"testing"
	"time"
)

func TestNilTokenIsUnlimited(t *testing.T) {
	var tok *Token
	if !tok.Step(1 << 30) {
		t.Error("nil token refused a step")
	}
	if tok.Exhausted() {
		t.Error("nil token reports exhausted")
	}
	if c := tok.Cause(); c != "" {
		t.Errorf("nil token cause = %q, want empty", c)
	}
	if New(time.Time{}, 0) != nil {
		t.Error("New with no limits should return nil")
	}
}

func TestStepBudget(t *testing.T) {
	tok := New(time.Time{}, 3)
	for i := 0; i < 3; i++ {
		if !tok.Step(1) {
			t.Fatalf("step %d refused before limit", i)
		}
	}
	if tok.Step(1) {
		t.Fatal("step allowed past limit")
	}
	if !tok.Exhausted() {
		t.Error("token not exhausted after tripping")
	}
	if c := tok.Cause(); c != CauseSteps {
		t.Errorf("cause = %q, want %q", c, CauseSteps)
	}
	// Latched: stays tripped.
	if tok.Step(1) {
		t.Error("tripped token accepted another step")
	}
}

func TestDeadline(t *testing.T) {
	tok := New(time.Now().Add(-time.Second), 0)
	if !tok.Exhausted() {
		t.Fatal("past deadline not detected")
	}
	if c := tok.Cause(); c != CauseDeadline {
		t.Errorf("cause = %q, want %q", c, CauseDeadline)
	}
	if tok.Step(1) {
		t.Error("step allowed past deadline")
	}
}

func TestCauseLatchesFirstTrip(t *testing.T) {
	// Trip on steps with a deadline that then passes: cause stays steps.
	tok := New(time.Now().Add(time.Hour), 1)
	tok.Step(1)
	if tok.Step(1) {
		t.Fatal("expected step trip")
	}
	if c := tok.Cause(); c != CauseSteps {
		t.Errorf("cause = %q, want %q", c, CauseSteps)
	}
}

// TestFirstCauseLatchRace races the two exhaustion paths against each
// other: one goroutine burns the step budget via Step while another
// polls an already-passed deadline via Exhausted. Whichever CAS wins,
// the trip cause must latch exactly once — both goroutines (and the
// parent) must observe the same single cause, and it must never flip
// afterwards. Runs meaningfully under -race (CI's race job includes
// this package).
func TestFirstCauseLatchRace(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		// Deadline already in the past and a 1-step limit: both causes
		// are simultaneously eligible, so the latch decides the winner.
		tok := New(time.Now().Add(-time.Hour), 1)

		start := make(chan struct{})
		causes := make(chan string, 2)

		go func() { // step-exhaustion path
			<-start
			for tok.Step(1) {
			}
			causes <- tok.Cause()
		}()
		go func() { // deadline path
			<-start
			for !tok.Exhausted() {
			}
			causes <- tok.Cause()
		}()
		close(start)

		a, b := <-causes, <-causes
		if a == "" || b == "" {
			t.Fatalf("iter %d: goroutine observed tripped token with empty cause (%q, %q)", iter, a, b)
		}
		if a != b {
			t.Fatalf("iter %d: goroutines observed different causes: %q vs %q", iter, a, b)
		}
		if c := tok.Cause(); c != a {
			t.Fatalf("iter %d: cause flipped after latch: first %q, now %q", iter, a, c)
		}
		if c := tok.Cause(); c != CauseDeadline && c != CauseSteps {
			t.Fatalf("iter %d: unexpected cause %q", iter, c)
		}
		// Latched: further polling from either path must not re-decide.
		tok.Step(1)
		tok.Exhausted()
		if c := tok.Cause(); c != a {
			t.Fatalf("iter %d: cause changed after post-latch polling: first %q, now %q", iter, a, c)
		}
	}
}
