// Package budget provides a cooperative cancellation token combining a
// wall-clock deadline with a fixpoint step budget.
//
// A Token is threaded from the core driver through the analysis engine,
// cascade tiers and the numeric substrates (polyhedra, zone). Consumers
// poll it at safe points; on exhaustion they degrade soundly — give up
// precision, never verdicts. A nil *Token is valid and means "unlimited":
// every method has a nil-receiver fast path so default runs pay nothing.
package budget

import (
	"sync/atomic"
	"time"
)

// Exhaustion causes reported by Cause.
const (
	CauseDeadline = "deadline"
	CauseSteps    = "step-budget"
)

// Token is a cooperative cancellation token. It is safe for concurrent
// use; the step counter is shared across every consumer holding the
// token (engine iterations are the only consumers that call Step, so
// step accounting stays deterministic across worker counts).
type Token struct {
	deadline time.Time // zero = no deadline
	limit    int64     // 0 = no step limit
	used     atomic.Int64
	// trip latches the first observed exhaustion cause so that Cause
	// stays stable even if e.g. the deadline also passes later.
	trip atomic.Int32 // 0 = live, 1 = deadline, 2 = steps
}

// New returns a token enforcing the given deadline (zero time = none)
// and step limit (<= 0 = none). When neither is set it returns nil,
// the unlimited token.
func New(deadline time.Time, steps int) *Token {
	if deadline.IsZero() && steps <= 0 {
		return nil
	}
	t := &Token{deadline: deadline}
	if steps > 0 {
		t.limit = int64(steps)
	}
	return t
}

// Step consumes n budget steps and reports whether work may continue.
// Once it returns false it keeps returning false.
func (t *Token) Step(n int) bool {
	if t == nil {
		return true
	}
	if t.trip.Load() != 0 {
		return false
	}
	if t.limit > 0 && t.used.Add(int64(n)) > t.limit {
		t.trip.CompareAndSwap(0, 2)
		return false
	}
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		t.trip.CompareAndSwap(0, 1)
		return false
	}
	return true
}

// Exhausted polls the token without consuming steps. Substrate
// operations (Chernikova conversion, DBM closure) use this so that
// only engine iterations spend the deterministic step budget.
func (t *Token) Exhausted() bool {
	if t == nil {
		return false
	}
	if t.trip.Load() != 0 {
		return true
	}
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		t.trip.CompareAndSwap(0, 1)
		return true
	}
	return false
}

// Cause returns why the token tripped: CauseDeadline, CauseSteps, or
// "" while the token is live (or nil).
func (t *Token) Cause() string {
	if t == nil {
		return ""
	}
	switch t.trip.Load() {
	case 1:
		return CauseDeadline
	case 2:
		return CauseSteps
	}
	return ""
}
