package cast

import (
	"fmt"
	"strings"

	"repro/internal/ctypes"
)

// Fprint renders a File back to C-like source text. The output parses back
// to an equivalent AST and is used for SLOC accounting of normalized code.
func Fprint(f *File) string {
	var p printer
	for _, d := range f.Decls {
		p.decl(d)
		p.nl()
	}
	return p.b.String()
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.b.String()
}

// StmtString renders a statement.
func StmtString(s Stmt) string {
	var p printer
	p.stmt(s)
	return strings.TrimRight(p.b.String(), "\n")
}

// FuncString renders a single function definition.
func FuncString(f *FuncDecl) string {
	var p printer
	p.decl(f)
	return p.b.String()
}

// CountLines reports the number of non-blank lines in rendered source,
// the paper's SLOC measure for normalized programs.
func CountLines(src string) int {
	n := 0
	for _, ln := range strings.Split(src, "\n") {
		if strings.TrimSpace(ln) != "" {
			n++
		}
	}
	return n
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) nl() { p.b.WriteString("\n") }

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.b, format, args...)
}

// declString renders "T name" handling C's inside-out declarator syntax for
// pointers, arrays and function pointers.
func declString(t ctypes.Type, name string) string {
	switch t := t.(type) {
	case ctypes.Pointer:
		if f, ok := t.Elem.(*ctypes.Func); ok {
			var ps []string
			for _, q := range f.Params {
				ps = append(ps, declString(q, ""))
			}
			if f.Variadic {
				ps = append(ps, "...")
			}
			return fmt.Sprintf("%s (*%s)(%s)", declString(f.Ret, ""), name, strings.Join(ps, ", "))
		}
		return declString(t.Elem, "*"+name)
	case ctypes.Array:
		return declString(t.Elem, fmt.Sprintf("%s[%d]", name, t.Len))
	default:
		s := t.String()
		if name == "" {
			return s
		}
		return s + " " + name
	}
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *VarDecl:
		p.ws()
		switch d.Storage {
		case SCExtern:
			p.printf("extern ")
		case SCStatic:
			p.printf("static ")
		}
		p.printf("%s;", declString(d.DeclType, d.Name))
		p.nl()
	case *StructDecl:
		p.ws()
		kind := "struct"
		if d.Type.Union {
			kind = "union"
		}
		p.printf("%s %s {", kind, d.Type.Tag)
		p.nl()
		p.indent++
		for _, f := range d.Type.Fields {
			p.ws()
			p.printf("%s;", declString(f.Type, f.Name))
			p.nl()
		}
		p.indent--
		p.ws()
		p.printf("};")
		p.nl()
	case *TypedefDecl:
		p.ws()
		p.printf("typedef %s;", declString(d.Of, d.Name))
		p.nl()
	case *FuncDecl:
		p.funcDecl(d)
	}
}

func (p *printer) funcDecl(d *FuncDecl) {
	p.ws()
	var ps []string
	for _, prm := range d.Params {
		ps = append(ps, declString(prm.Type, prm.Name))
	}
	if d.Variadic {
		ps = append(ps, "...")
	}
	if len(ps) == 0 {
		ps = []string{"void"}
	}
	p.printf("%s(%s)", declString(d.Ret, d.Name), strings.Join(ps, ", "))
	if c := d.Contract; c != nil {
		p.nl()
		p.indent++
		if c.Requires != nil {
			p.ws()
			p.printf("requires (%s)", ExprString(c.Requires))
			p.nl()
		}
		if len(c.Modifies) > 0 {
			var ms []string
			for _, m := range c.Modifies {
				ms = append(ms, ExprString(m))
			}
			p.ws()
			p.printf("modifies (%s)", strings.Join(ms, "), ("))
			p.nl()
		}
		if c.Ensures != nil {
			p.ws()
			p.printf("ensures (%s)", ExprString(c.Ensures))
			p.nl()
		}
		p.indent--
		p.ws()
	} else {
		p.b.WriteString(" ")
	}
	if d.Body == nil {
		p.printf(";")
		p.nl()
		return
	}
	p.blockBody(d.Body)
}

func (p *printer) blockBody(b *Block) {
	p.printf("{")
	p.nl()
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.printf("}")
	p.nl()
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *ExprStmt:
		p.ws()
		p.expr(s.X, 0)
		p.printf(";")
		p.nl()
	case *Block:
		p.ws()
		p.blockBody(s)
	case *If:
		p.ws()
		p.printf("if (")
		p.expr(s.Cond, 0)
		p.printf(") ")
		p.inlineStmt(s.Then)
		if s.Else != nil {
			p.ws()
			p.printf("else ")
			p.inlineStmt(s.Else)
		}
	case *While:
		p.ws()
		p.printf("while (")
		p.expr(s.Cond, 0)
		p.printf(") ")
		p.inlineStmt(s.Body)
	case *DoWhile:
		p.ws()
		p.printf("do ")
		p.inlineStmt(s.Body)
		p.ws()
		p.printf("while (")
		p.expr(s.Cond, 0)
		p.printf(");")
		p.nl()
	case *For:
		p.ws()
		p.printf("for (")
		if s.Init != nil {
			switch init := s.Init.(type) {
			case *ExprStmt:
				p.expr(init.X, 0)
			case *DeclStmt:
				p.printf("%s", declString(init.Decl.DeclType, init.Decl.Name))
				if init.Init != nil {
					p.printf(" = ")
					p.expr(init.Init, 0)
				}
			}
		}
		p.printf("; ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.printf("; ")
		if s.Post != nil {
			p.expr(s.Post, 0)
		}
		p.printf(") ")
		p.inlineStmt(s.Body)
	case *Return:
		p.ws()
		if s.X != nil {
			p.printf("return ")
			p.expr(s.X, 0)
			p.printf(";")
		} else {
			p.printf("return;")
		}
		p.nl()
	case *Break:
		p.ws()
		p.printf("break;")
		p.nl()
	case *Continue:
		p.ws()
		p.printf("continue;")
		p.nl()
	case *Goto:
		p.ws()
		p.printf("goto %s;", s.Label)
		p.nl()
	case *Labeled:
		p.printf("%s:", s.Label)
		p.nl()
		p.stmt(s.Stmt)
	case *Empty:
		p.ws()
		p.printf(";")
		p.nl()
	case *DeclStmt:
		p.ws()
		p.printf("%s", declString(s.Decl.DeclType, s.Decl.Name))
		if s.Init != nil {
			p.printf(" = ")
			p.expr(s.Init, 0)
		}
		p.printf(";")
		p.nl()
	case *Verify:
		p.ws()
		p.printf("%s(", s.Kind)
		p.expr(s.Cond, 0)
		p.printf(");")
		if s.Reason != "" {
			p.printf(" /* %s */", s.Reason)
		}
		p.nl()
	default:
		p.ws()
		p.printf("/* ? %T */", s)
		p.nl()
	}
}

// inlineStmt prints the body of an if/while without double indentation for
// blocks.
func (p *printer) inlineStmt(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.blockBody(b)
		return
	}
	p.nl()
	p.indent++
	p.stmt(s)
	p.indent--
}

// Operator precedence levels for the printer (higher binds tighter).
func binPrec(op BinaryOp) int {
	switch op {
	case Mul, Div, Rem:
		return 10
	case Add, Sub:
		return 9
	case Shl, Shr:
		return 8
	case Lt, Le, Gt, Ge:
		return 7
	case Eq, Ne:
		return 6
	case BitAnd:
		return 5
	case BitXor:
		return 4
	case BitOr:
		return 3
	case LogAnd:
		return 2
	case LogOr:
		return 1
	}
	return 0
}

func (p *printer) expr(e Expr, prec int) {
	switch e := e.(type) {
	case *Ident:
		p.printf("%s", e.Name)
	case *IntLit:
		if e.IsChar {
			p.printf("%s", charLit(byte(e.Value)))
		} else {
			p.printf("%d", e.Value)
		}
	case *StringLit:
		p.printf("%q", e.Value)
	case *Unary:
		if prec > 11 {
			p.printf("(")
		}
		p.printf("%s", e.Op)
		p.expr(e.X, 12)
		if prec > 11 {
			p.printf(")")
		}
	case *Binary:
		bp := binPrec(e.Op)
		if prec > bp {
			p.printf("(")
		}
		p.expr(e.X, bp)
		p.printf(" %s ", e.Op)
		p.expr(e.Y, bp+1)
		if prec > bp {
			p.printf(")")
		}
	case *Assign:
		if prec > 0 {
			p.printf("(")
		}
		p.expr(e.LHS, 1)
		if e.Op == PlainAssign {
			p.printf(" = ")
		} else {
			p.printf(" %s= ", e.Op)
		}
		p.expr(e.RHS, 0)
		if prec > 0 {
			p.printf(")")
		}
	case *IncDec:
		op := "++"
		if e.Decr {
			op = "--"
		}
		if e.Prefix {
			p.printf("%s", op)
			p.expr(e.X, 12)
		} else {
			p.expr(e.X, 12)
			p.printf("%s", op)
		}
	case *Call:
		p.expr(e.Fun, 12)
		p.printf("(")
		for i, a := range e.Args {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(a, 0)
		}
		p.printf(")")
	case *Index:
		p.expr(e.X, 12)
		p.printf("[")
		p.expr(e.I, 0)
		p.printf("]")
	case *Member:
		p.expr(e.X, 12)
		if e.Arrow {
			p.printf("->%s", e.Name)
		} else {
			p.printf(".%s", e.Name)
		}
	case *Cast:
		if prec > 11 {
			p.printf("(")
		}
		p.printf("(%s)", declString(e.To, ""))
		p.expr(e.X, 12)
		if prec > 11 {
			p.printf(")")
		}
	case *SizeofType:
		p.printf("sizeof(%s)", declString(e.Of, ""))
	case *Cond:
		if prec > 0 {
			p.printf("(")
		}
		p.expr(e.C, 1)
		p.printf(" ? ")
		p.expr(e.Then, 1)
		p.printf(" : ")
		p.expr(e.Else, 1)
		if prec > 0 {
			p.printf(")")
		}
	default:
		p.printf("/* ? %T */", e)
	}
}

func charLit(b byte) string {
	switch b {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\r':
		return `'\r'`
	case 0:
		return `'\0'`
	case '\\':
		return `'\\'`
	case '\'':
		return `'\''`
	}
	if b >= 32 && b < 127 {
		return fmt.Sprintf("'%c'", b)
	}
	return fmt.Sprintf(`'\x%02x'`, b)
}
