// Package cast defines the abstract syntax tree for the C subset analyzed
// by CSSV, including the contract clauses of paper §2.2 and the
// assert/assume verification statements emitted by the contract inliner
// (§3.2, Table 2).
//
// Contract-language attributes (Table 1) appear in the AST as ordinary
// calls to the reserved names alloc, offset, base, strlen, is_nullt,
// is_within_bounds and pre; package contract gives them meaning.
package cast

import (
	"repro/internal/clex"
	"repro/internal/ctypes"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() clex.Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a C expression. Every expression carries the type computed by the
// parser's checker (nil only for expressions in unchecked contract text).
type Expr interface {
	Node
	Type() ctypes.Type
	exprNode()
}

type exprBase struct {
	P clex.Pos
	T ctypes.Type
}

func (e *exprBase) Pos() clex.Pos         { return e.P }
func (e *exprBase) Type() ctypes.Type     { return e.T }
func (e *exprBase) SetType(t ctypes.Type) { e.T = t }
func (*exprBase) exprNode()               {}

// Ident is a variable or function reference.
type Ident struct {
	exprBase
	Name string
}

// IntLit is an integer constant. Character constants are represented as
// IntLit with IsChar set so the printer can round-trip them.
type IntLit struct {
	exprBase
	Value  int64
	IsChar bool
}

// StringLit is a string literal; it denotes a fresh static buffer of
// len(Value)+1 bytes holding a null-terminated string.
type StringLit struct {
	exprBase
	Value string
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Deref  UnaryOp = iota // *x
	Addr                  // &x
	Neg                   // -x
	LogNot                // !x
	BitNot                // ~x
)

var unaryNames = [...]string{Deref: "*", Addr: "&", Neg: "-", LogNot: "!", BitNot: "~"}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Rem
	Shl
	Shr
	BitAnd
	BitOr
	BitXor
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	LogAnd
	LogOr
)

var binaryNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%", Shl: "<<", Shr: ">>",
	BitAnd: "&", BitOr: "|", BitXor: "^", Lt: "<", Le: "<=", Gt: ">",
	Ge: ">=", Eq: "==", Ne: "!=", LogAnd: "&&", LogOr: "||",
}

func (op BinaryOp) String() string { return binaryNames[op] }

// IsComparison reports whether op yields a boolean (0/1) result.
func (op BinaryOp) IsComparison() bool { return op >= Lt && op <= Ne }

// IsLogical reports whether op is && or ||.
func (op BinaryOp) IsLogical() bool { return op == LogAnd || op == LogOr }

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinaryOp
	X, Y Expr
}

// Assign is an assignment expression. Op is Add/Sub/... for compound
// assignments and -1 for plain "=".
type Assign struct {
	exprBase
	Op  BinaryOp // -1 for plain =
	LHS Expr
	RHS Expr
}

// PlainAssign is the Op value of a non-compound assignment.
const PlainAssign BinaryOp = -1

// IncDec is ++x, --x, x++ or x--.
type IncDec struct {
	exprBase
	X      Expr
	Decr   bool
	Prefix bool
}

// Call is a function call. Fun is an Ident for direct calls or an arbitrary
// expression for calls through function pointers.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// FuncName returns the callee name for a direct call, or "".
func (c *Call) FuncName() string {
	switch f := c.Fun.(type) {
	case *Ident:
		return f.Name
	case *Unary:
		if f.Op == Deref {
			if id, ok := f.X.(*Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// Index is x[i].
type Index struct {
	exprBase
	X, I Expr
}

// Member is x.Name or x->Name.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// Cast is (T)x.
type Cast struct {
	exprBase
	To ctypes.Type
	X  Expr
}

// SizeofType is sizeof(T); sizeof(expr) is folded to IntLit by the parser.
type SizeofType struct {
	exprBase
	Of ctypes.Type
}

// Cond is the ternary c ? t : f.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a C statement.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ P clex.Pos }

func (s *stmtBase) Pos() clex.Pos { return s.P }
func (*stmtBase) stmtNode()       {}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If is an if/else statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop. Init/Cond/Post may be nil.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return is a return statement; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Break is a break statement.
type Break struct{ stmtBase }

// Continue is a continue statement.
type Continue struct{ stmtBase }

// Goto is a goto statement.
type Goto struct {
	stmtBase
	Label string
}

// Labeled is "Label: Stmt".
type Labeled struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// Empty is ";".
type Empty struct{ stmtBase }

// DeclStmt is a local declaration. CoreC forbids initializers; the
// normalizer splits them into separate assignments.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
	Init Expr // nil after CoreC normalization
}

// VerifyKind distinguishes assert from assume.
type VerifyKind int

// Verification statement kinds (paper §3.2).
const (
	Assert VerifyKind = iota // execution is erroneous if Cond is false
	Assume                   // execution is blocked if Cond is false
)

func (k VerifyKind) String() string {
	if k == Assert {
		return "__assert"
	}
	return "__assume"
}

// Verify is an __assert(e) or __assume(e) statement. Reason records why the
// inliner emitted it (e.g. "precondition of g") for message reporting.
type Verify struct {
	stmtBase
	Kind   VerifyKind
	Cond   Expr
	Reason string
	// Site is the source position blamed in reports (the call site for
	// inlined precondition asserts); falls back to Pos() when unset.
	Site clex.Pos
}

// Where returns the position to blame in diagnostics.
func (v *Verify) Where() clex.Pos {
	if v.Site.IsValid() {
		return v.Site
	}
	return v.P
}

// ---------------------------------------------------------------------------
// Declarations

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

type declBase struct{ P clex.Pos }

func (d *declBase) Pos() clex.Pos { return d.P }
func (*declBase) declNode()       {}

// StorageClass captures extern/static.
type StorageClass int

// Storage classes.
const (
	SCNone StorageClass = iota
	SCExtern
	SCStatic
)

// VarDecl declares a variable (global or local).
type VarDecl struct {
	declBase
	Name     string
	DeclType ctypes.Type
	Storage  StorageClass
}

// Param is a function parameter.
type Param struct {
	Name string
	Type ctypes.Type
}

// Contract is the requires/modifies/ensures triple of paper §2.2.
// Requires/Ensures are nil for "true"; Modifies lists L-value expressions
// and attribute references that the function may change.
type Contract struct {
	Requires Expr
	Modifies []Expr
	Ensures  Expr
}

// IsVacuous reports whether the contract constrains nothing beyond
// side effects.
func (c *Contract) IsVacuous() bool {
	return c == nil || (c.Requires == nil && c.Ensures == nil)
}

// FuncDecl declares (Body == nil) or defines a function.
type FuncDecl struct {
	declBase
	Name     string
	Ret      ctypes.Type
	Params   []Param
	Variadic bool
	Body     *Block // nil for prototypes
	Contract *Contract
}

// FuncType returns the ctypes representation of the declared signature.
func (f *FuncDecl) FuncType() *ctypes.Func {
	ps := make([]ctypes.Type, len(f.Params))
	for i, p := range f.Params {
		ps[i] = p.Type
	}
	return &ctypes.Func{Ret: f.Ret, Params: ps, Variadic: f.Variadic}
}

// StructDecl declares a struct or union type.
type StructDecl struct {
	declBase
	Type *ctypes.Struct
}

// TypedefDecl records a typedef (resolved at parse time; kept for printing).
type TypedefDecl struct {
	declBase
	Name string
	Of   ctypes.Type
}

// ReturnValueName is the designated contract variable for a function's
// return value (paper §2.2).
const ReturnValueName = "return_value"

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Funcs returns the function definitions in the file.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// Lookup returns the declaration of the function named name (preferring a
// definition over a prototype), or nil.
func (f *File) Lookup(name string) *FuncDecl {
	var proto *FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == name {
			if fd.Body != nil {
				return fd
			}
			proto = fd
		}
	}
	return proto
}
