package cast

import (
	"strings"
	"testing"

	"repro/internal/ctypes"
)

func ident(name string, t ctypes.Type) *Ident {
	id := &Ident{Name: name}
	id.SetType(t)
	return id
}

func TestExprPrinting(t *testing.T) {
	x := ident("x", ctypes.Int)
	y := ident("y", ctypes.Int)
	cases := []struct {
		e    Expr
		want string
	}{
		{&Binary{Op: Add, X: x, Y: y}, "x + y"},
		{&Binary{Op: Mul, X: &Binary{Op: Add, X: x, Y: y}, Y: y}, "(x + y) * y"},
		{&Binary{Op: Add, X: x, Y: &Binary{Op: Mul, X: y, Y: y}}, "x + y * y"},
		{&Unary{Op: Deref, X: x}, "*x"},
		{&Unary{Op: Addr, X: x}, "&x"},
		{&Unary{Op: LogNot, X: x}, "!x"},
		{&Index{X: x, I: y}, "x[y]"},
		{&Member{X: x, Name: "f"}, "x.f"},
		{&Member{X: x, Name: "f", Arrow: true}, "x->f"},
		{&Cond{C: x, Then: y, Else: x}, "x ? y : x"},
		{&Assign{Op: PlainAssign, LHS: x, RHS: y}, "x = y"},
		{&Assign{Op: Add, LHS: x, RHS: y}, "x += y"},
		{&IncDec{X: x, Prefix: true}, "++x"},
		{&IncDec{X: x, Decr: true}, "x--"},
		{&Cast{To: ctypes.PointerTo(ctypes.Char), X: x}, "(char *)x"},
		{&SizeofType{Of: ctypes.Int}, "sizeof(int)"},
		{&StringLit{Value: "hi"}, `"hi"`},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestCharLiteralPrinting(t *testing.T) {
	for val, want := range map[int64]string{
		'\n': `'\n'`, 0: `'\0'`, 'a': "'a'", '\t': `'\t'`, 7: `'\x07'`,
	} {
		lit := &IntLit{Value: val, IsChar: true}
		lit.SetType(ctypes.Int)
		if got := ExprString(lit); got != want {
			t.Errorf("char %d printed %q, want %q", val, got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := &Binary{Op: Add, X: ident("a", ctypes.Int), Y: ident("b", ctypes.Int)}
	c := CloneExpr(e).(*Binary)
	c.X.(*Ident).Name = "z"
	if e.X.(*Ident).Name != "a" {
		t.Error("clone shares identifiers")
	}
}

func TestSubstituteIdents(t *testing.T) {
	// alloc(p) + n with p -> *q, n -> 3
	p := ident("p", ctypes.PointerTo(ctypes.Char))
	attr := &Call{Fun: ident("alloc", nil), Args: []Expr{p}}
	attr.SetType(ctypes.Int)
	sum := &Binary{Op: Add, X: attr, Y: ident("n", ctypes.Int)}
	q := ident("q", ctypes.PointerTo(ctypes.PointerTo(ctypes.Char)))
	deref := &Unary{Op: Deref, X: q}
	deref.SetType(ctypes.PointerTo(ctypes.Char))
	lit := &IntLit{Value: 3}
	lit.SetType(ctypes.Int)
	out := SubstituteIdents(sum, map[string]Expr{"p": deref, "n": lit})
	if got := ExprString(out); got != "alloc(*q) + 3" {
		t.Errorf("substituted to %q", got)
	}
	// The original is untouched.
	if got := ExprString(sum); got != "alloc(p) + n" {
		t.Errorf("original mutated: %q", got)
	}
	// Direct-call callee names are not substituted.
	out2 := SubstituteIdents(sum, map[string]Expr{"alloc": lit})
	if got := ExprString(out2); got != "alloc(p) + n" {
		t.Errorf("callee name substituted: %q", got)
	}
}

func TestFreeIdents(t *testing.T) {
	p := ident("p", ctypes.PointerTo(ctypes.Char))
	n := ident("n", ctypes.Int)
	attr := &Call{Fun: ident("strlen", nil), Args: []Expr{p}}
	attr.SetType(ctypes.Int)
	e := &Binary{Op: Lt, X: attr, Y: &Binary{Op: Add, X: n, Y: p}}
	got := FreeIdents(e)
	if len(got) != 2 || got[0] != "p" || got[1] != "n" {
		t.Errorf("FreeIdents = %v", got)
	}
}

func TestCountLines(t *testing.T) {
	if CountLines("a\n\n  \nb\nc\n") != 3 {
		t.Error("blank lines counted")
	}
}

func TestFuncLookupPrefersDefinition(t *testing.T) {
	proto := &FuncDecl{Name: "f", Ret: ctypes.Void{}}
	def := &FuncDecl{Name: "f", Ret: ctypes.Void{}, Body: &Block{}}
	file := &File{Decls: []Decl{proto, def}}
	if file.Lookup("f") != def {
		t.Error("prototype preferred over definition")
	}
	if file.Lookup("g") != nil {
		t.Error("phantom lookup")
	}
	if len(file.Funcs()) != 1 {
		t.Error("Funcs should list definitions only")
	}
}

func TestContractVacuous(t *testing.T) {
	var nilC *Contract
	if !nilC.IsVacuous() {
		t.Error("nil contract not vacuous")
	}
	if !(&Contract{Modifies: []Expr{ident("x", ctypes.Int)}}).IsVacuous() {
		t.Error("modifies-only contract should be vacuous")
	}
	if (&Contract{Requires: ident("x", ctypes.Int)}).IsVacuous() {
		t.Error("requires-bearing contract vacuous")
	}
}

func TestVerifyWhere(t *testing.T) {
	v := &Verify{Kind: Assert}
	v.P.Line = 3
	if v.Where().Line != 3 {
		t.Error("fallback position")
	}
	v.Site.Line = 9
	if v.Where().Line != 9 {
		t.Error("site position ignored")
	}
	if Assert.String() != "__assert" || Assume.String() != "__assume" {
		t.Error("verify kind names")
	}
}

func TestStmtString(t *testing.T) {
	x := ident("x", ctypes.Int)
	g := &Goto{Label: "L"}
	if got := StmtString(g); got != "goto L;" {
		t.Errorf("goto printed %q", got)
	}
	v := &Verify{Kind: Assume, Cond: x, Reason: "why"}
	if got := StmtString(v); !strings.Contains(got, "__assume(x)") || !strings.Contains(got, "why") {
		t.Errorf("verify printed %q", got)
	}
}
