package cast

// WalkExpr calls fn on e and all its subexpressions, pre-order. fn returning
// false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *Unary:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.X, fn)
		WalkExpr(e.Y, fn)
	case *Assign:
		WalkExpr(e.LHS, fn)
		WalkExpr(e.RHS, fn)
	case *IncDec:
		WalkExpr(e.X, fn)
	case *Call:
		WalkExpr(e.Fun, fn)
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *Index:
		WalkExpr(e.X, fn)
		WalkExpr(e.I, fn)
	case *Member:
		WalkExpr(e.X, fn)
	case *Cast:
		WalkExpr(e.X, fn)
	case *Cond:
		WalkExpr(e.C, fn)
		WalkExpr(e.Then, fn)
		WalkExpr(e.Else, fn)
	}
}

// WalkStmt calls fn on s and all nested statements, pre-order. fn returning
// false prunes the subtree.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch s := s.(type) {
	case *Block:
		for _, t := range s.Stmts {
			WalkStmt(t, fn)
		}
	case *If:
		WalkStmt(s.Then, fn)
		WalkStmt(s.Else, fn)
	case *While:
		WalkStmt(s.Body, fn)
	case *DoWhile:
		WalkStmt(s.Body, fn)
	case *For:
		WalkStmt(s.Init, fn)
		WalkStmt(s.Body, fn)
	case *Labeled:
		WalkStmt(s.Stmt, fn)
	}
}

// ExprsOf calls fn on every top-level expression appearing directly in s
// (not recursing into nested statements).
func ExprsOf(s Stmt, fn func(Expr)) {
	switch s := s.(type) {
	case *ExprStmt:
		fn(s.X)
	case *If:
		fn(s.Cond)
	case *While:
		fn(s.Cond)
	case *DoWhile:
		fn(s.Cond)
	case *For:
		if s.Cond != nil {
			fn(s.Cond)
		}
		if s.Post != nil {
			fn(s.Post)
		}
	case *Return:
		if s.X != nil {
			fn(s.X)
		}
	case *DeclStmt:
		if s.Init != nil {
			fn(s.Init)
		}
	case *Verify:
		fn(s.Cond)
	}
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Ident:
		c := *e
		return &c
	case *IntLit:
		c := *e
		return &c
	case *StringLit:
		c := *e
		return &c
	case *Unary:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *Binary:
		c := *e
		c.X = CloneExpr(e.X)
		c.Y = CloneExpr(e.Y)
		return &c
	case *Assign:
		c := *e
		c.LHS = CloneExpr(e.LHS)
		c.RHS = CloneExpr(e.RHS)
		return &c
	case *IncDec:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *Call:
		c := *e
		c.Fun = CloneExpr(e.Fun)
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	case *Index:
		c := *e
		c.X = CloneExpr(e.X)
		c.I = CloneExpr(e.I)
		return &c
	case *Member:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *Cast:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *SizeofType:
		c := *e
		return &c
	case *Cond:
		c := *e
		c.C = CloneExpr(e.C)
		c.Then = CloneExpr(e.Then)
		c.Else = CloneExpr(e.Else)
		return &c
	}
	return e
}

// SubstituteIdents returns a copy of e in which every free Ident whose name
// appears in repl is replaced by a clone of the mapped expression. It is the
// workhorse of contract inlining (formal -> actual substitution).
func SubstituteIdents(e Expr, repl map[string]Expr) Expr {
	if e == nil {
		return nil
	}
	if id, ok := e.(*Ident); ok {
		if r, ok := repl[id.Name]; ok {
			return CloneExpr(r)
		}
		c := *id
		return &c
	}
	c := CloneExpr(e)
	rewriteChildren(c, repl)
	return c
}

func rewriteChildren(e Expr, repl map[string]Expr) {
	sub := func(x Expr) Expr { return SubstituteIdents(x, repl) }
	switch e := e.(type) {
	case *Unary:
		e.X = sub(e.X)
	case *Binary:
		e.X = sub(e.X)
		e.Y = sub(e.Y)
	case *Assign:
		e.LHS = sub(e.LHS)
		e.RHS = sub(e.RHS)
	case *IncDec:
		e.X = sub(e.X)
	case *Call:
		// Do not substitute the callee name of a direct call: attribute
		// names (alloc, strlen, ...) are not variables.
		if _, direct := e.Fun.(*Ident); !direct {
			e.Fun = sub(e.Fun)
		}
		for i, a := range e.Args {
			e.Args[i] = sub(a)
		}
	case *Index:
		e.X = sub(e.X)
		e.I = sub(e.I)
	case *Member:
		e.X = sub(e.X)
	case *Cast:
		e.X = sub(e.X)
	case *Cond:
		e.C = sub(e.C)
		e.Then = sub(e.Then)
		e.Else = sub(e.Else)
	}
}

// FreeIdents returns the distinct identifier names appearing in e, in
// first-occurrence order, excluding direct-call callee names.
func FreeIdents(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	var visit func(Expr)
	visit = func(x Expr) {
		switch x := x.(type) {
		case nil:
		case *Ident:
			if !seen[x.Name] {
				seen[x.Name] = true
				names = append(names, x.Name)
			}
		case *Unary:
			visit(x.X)
		case *Binary:
			visit(x.X)
			visit(x.Y)
		case *Assign:
			visit(x.LHS)
			visit(x.RHS)
		case *IncDec:
			visit(x.X)
		case *Call:
			if _, direct := x.Fun.(*Ident); !direct {
				visit(x.Fun)
			}
			for _, a := range x.Args {
				visit(a)
			}
		case *Index:
			visit(x.X)
			visit(x.I)
		case *Member:
			visit(x.X)
		case *Cast:
			visit(x.X)
		case *Cond:
			visit(x.C)
			visit(x.Then)
			visit(x.Else)
		}
	}
	visit(e)
	return names
}
