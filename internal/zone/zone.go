// Package zone implements the zone (difference-bound matrix) abstract
// domain: conjunctions of constraints of the forms x - y <= c, x <= c and
// -x <= c. It sits between intervals and polyhedra in the precision/cost
// spectrum and exists for the paper's "any sound integer analysis can be
// used" ablation (§3.5).
//
// Like the polyhedra substrate, the DBM is two-tiered: bounds live in a
// machine-word (int64) tier, with math.MaxInt64 as the +infinity sentinel,
// and the whole matrix promotes to the exact big.Int tier when an
// operation would overflow — or produce the sentinel value — so results
// are bit-identical to pure arbitrary-precision arithmetic. Closures
// computed on the exact tier demote back when every bound fits a machine
// word again.
//
// The machine tier additionally has two interchangeable representations:
// the dense matrix and an adjacency-style sparse form holding only the
// finite cells, selected by density at closure boundaries (sparse.go).
// Closure itself is incremental whenever possible: a closed matrix that
// was tightened at a handful of cells is repaired in O(n²) per edge
// instead of re-running the O(n³) Floyd–Warshall loop, and an
// already-closed matrix is never re-closed. The PureBig reference kernel
// opts out of every one of these optimizations, so the differential
// fuzzers check them all against the plain dense full-closure semantics.
package zone

import (
	"math"
	"math/big"
	"strings"

	"repro/internal/budget"
	"repro/internal/linear"
	"repro/internal/numkernel"
)

// noBound is the machine-tier +infinity sentinel. A genuine bound equal to
// math.MaxInt64 forces promotion to the exact tier, keeping the sentinel
// unambiguous; conveniently, the sentinel is the maximum, so pointwise
// min/max and comparisons treat it as +infinity with no special casing.
const noBound = math.MaxInt64

// maxDirty caps the number of tightened edges the incremental closure
// will repair one by one; past it a full closure is cheaper.
const maxDirty = 8

// sparseMinDim is the smallest matrix size (n+1) the automatic policy
// considers for the sparse representation; below it the dense matrix
// fits in a cache line or two and adjacency bookkeeping cannot win.
const sparseMinDim = 5

// DBM is a difference-bound matrix over n variables plus the designated
// zero variable (index 0): the matrix bounds x_i - x_j <= m[i][j], with x_0
// identically 0. Exactly one representation is active: the machine-tier
// dense matrix mw (noBound = +inf), the machine-tier sparse matrix sp
// (absence = +inf), or the exact matrix mx (nil entry = +inf). cfg carries
// per-run knobs (budget token, kernel tier, representation policy, arena);
// nil means defaults.
type DBM struct {
	n     int // number of program variables
	mw    [][]int64
	sp    *sparseMat
	mx    [][]*big.Int
	empty bool
	// closed marks the matrix as shortest-path closed (canonical), so
	// repeated close() calls cost nothing. Never set under PureBig: the
	// reference kernel recomputes the full closure every time.
	closed bool
	// dirty, when non-nil, lists the cells tightened since the matrix
	// was last closed, oldest first; close() then repairs incrementally
	// instead of re-running Floyd–Warshall. nil with closed unset means
	// the delta is unknown and only a full closure restores canonicity.
	dirty [][2]int32
	cfg   *Config
}

// Universe returns the unconstrained zone with default configuration.
func Universe(n int) *DBM {
	return (*Config)(nil).Universe(n)
}

// Bottom returns the empty zone with default configuration.
func Bottom(n int) *DBM {
	return (*Config)(nil).Bottom(n)
}

// cfgOr returns the receiver's Config, falling back to o's when unset.
func (d *DBM) cfgOr(o *DBM) *Config {
	if d.cfg != nil {
		return d.cfg
	}
	return o.cfg
}

// wcell returns the machine-tier cell (i, j); only valid when mx == nil.
func (d *DBM) wcell(i, j int) int64 {
	if d.sp != nil {
		return d.sp.cell(i, j)
	}
	return d.mw[i][j]
}

// promote moves d onto the exact tier (no-op if already there). Dense
// rows are returned to the arena: the exact matrix copies their values.
func (d *DBM) promote() {
	if d.mx != nil {
		return
	}
	size := d.n + 1
	mx := make([][]*big.Int, size)
	for i := range mx {
		mx[i] = make([]*big.Int, size)
	}
	if d.sp != nil {
		d.sp.each(func(i, j int, v int64) {
			mx[i][j] = big.NewInt(v)
		})
		d.sp = nil
	} else {
		ar := d.cfg.ar()
		for i, r := range d.mw {
			for j, x := range r {
				if x != noBound {
					mx[i][j] = big.NewInt(x)
				}
			}
			ar.PutInt64s(r)
		}
		d.mw = nil
	}
	d.mx = mx
}

// demote moves d back to the machine tier when every bound fits (a bound
// exactly equal to the sentinel value must stay exact).
func (d *DBM) demote() {
	if d.mx == nil || d.cfg.pure() {
		return
	}
	for _, r := range d.mx {
		for _, x := range r {
			if x != nil && (!x.IsInt64() || x.Int64() == noBound) {
				return
			}
		}
	}
	ar := d.cfg.ar()
	mw := make([][]int64, len(d.mx))
	for i, r := range d.mx {
		wr := ar.Int64s(len(r))
		for j, x := range r {
			if x == nil {
				wr[j] = noBound
			} else {
				wr[j] = x.Int64()
			}
		}
		mw[i] = wr
	}
	d.mw = mw
	d.mx = nil
}

// densify converts the sparse representation to the dense matrix.
func (d *DBM) densify() {
	if d.sp == nil {
		return
	}
	size := d.sp.n
	ar := d.cfg.ar()
	mw := make([][]int64, size)
	for i := 0; i < size; i++ {
		r := ar.Int64s(size)
		for j := range r {
			r[j] = noBound
		}
		mw[i] = r
	}
	d.sp.each(func(i, j int, v int64) {
		mw[i][j] = v
	})
	d.mw, d.sp = mw, nil
}

// sparsify converts the dense matrix to the sparse representation,
// recycling the dense rows through the arena.
func (d *DBM) sparsify() {
	if d.mw == nil {
		return
	}
	size := len(d.mw)
	sp := newSparseMat(size)
	for i, r := range d.mw {
		cnt := 0
		for _, x := range r {
			if x != noBound {
				cnt++
			}
		}
		row := &sp.rows[i]
		row.cols = make([]int32, 0, cnt)
		row.vals = make([]int64, 0, cnt)
		for j, x := range r {
			if x != noBound {
				row.cols = append(row.cols, int32(j))
				row.vals = append(row.vals, x)
			}
		}
	}
	ar := d.cfg.ar()
	for _, r := range d.mw {
		ar.PutInt64s(r)
	}
	d.mw, d.sp = nil, sp
}

// chooseRep picks the machine-tier representation after a closure
// completes. Decisions are content-only (finite-cell density with
// hysteresis), so they are deterministic; each automatic decision is
// counted in the Config's selection stats.
func (d *DBM) chooseRep() {
	if d.mx != nil || d.cfg.pure() {
		return
	}
	size := d.n + 1
	switch d.cfg.sparseMode() {
	case SparseOff:
		d.densify()
		return
	case SparseForce:
		d.sparsify()
		return
	}
	if d.sp != nil {
		// Hysteresis: densify only once half the matrix is finite, so
		// borderline matrices do not flap between representations.
		if size < sparseMinDim || 2*d.sp.count() > size*size {
			d.densify()
			d.cfg.noteSel(false)
		} else {
			d.cfg.noteSel(true)
		}
		return
	}
	finite := 0
	for _, r := range d.mw {
		for _, x := range r {
			if x != noBound {
				finite++
			}
		}
	}
	if size >= sparseMinDim && 4*finite < size*size {
		d.sparsify()
		d.cfg.noteSel(true)
	} else {
		d.cfg.noteSel(false)
	}
}

// Clone returns a deep copy.
func (d *DBM) Clone() *DBM {
	c := &DBM{n: d.n, empty: d.empty, closed: d.closed, cfg: d.cfg}
	if d.dirty != nil {
		c.dirty = append(make([][2]int32, 0, len(d.dirty)), d.dirty...)
	}
	switch {
	case d.sp != nil:
		c.sp = d.sp.clone()
	case d.mw != nil:
		ar := d.cfg.ar()
		c.mw = make([][]int64, len(d.mw))
		for i, r := range d.mw {
			nr := ar.Int64s(len(r))
			copy(nr, r)
			c.mw[i] = nr
		}
	default:
		c.mx = make([][]*big.Int, len(d.mx))
		for i, r := range d.mx {
			br := make([]*big.Int, len(r))
			for j, x := range r {
				if x != nil {
					br[j] = new(big.Int).Set(x)
				}
			}
			c.mx[i] = br
		}
	}
	return c
}

// IsEmpty reports whether the zone has no points.
func (d *DBM) IsEmpty() bool {
	if d.empty {
		return true
	}
	d.close()
	return d.empty
}

// noteTighten records that cell (i, j) was tightened, invalidating the
// closed flag and growing the incremental-repair worklist. The PureBig
// reference never has closed set and never carries a dirty list, so it
// always takes the full-closure path.
func (d *DBM) noteTighten(i, j int) {
	if d.closed {
		d.closed = false
		d.dirty = append(d.dirty[:0], [2]int32{int32(i), int32(j)})
		return
	}
	if d.dirty == nil {
		return
	}
	if len(d.dirty) >= maxDirty {
		d.dirty = nil
		return
	}
	d.dirty = append(d.dirty, [2]int32{int32(i), int32(j)})
}

// close computes the shortest-path closure (canonical form) and detects
// negative cycles (emptiness). An already-closed matrix returns
// immediately; a closed matrix tightened at a few recorded cells is
// repaired incrementally (O(n²) per edge) instead of re-running the full
// O(n³) Floyd–Warshall loop — sequential single-edge repairs compose to
// the exact canonical closure (DESIGN.md §9).
func (d *DBM) close() {
	if d.empty || d.closed {
		return
	}
	tok := d.cfg.token()
	if tok.Exhausted() {
		// Budget exhausted: skip the closure. The matrix keeps valid
		// (possibly loose) bounds, so every later query sees a sound
		// over-approximation of the canonical form; a negative cycle may
		// go undetected, which errs toward "maybe non-empty" — also
		// sound. A pending dirty list is kept, so a later close can
		// still repair incrementally.
		return
	}
	if d.dirty != nil && d.mx == nil {
		if d.repairAll(tok) {
			return
		}
		// A repair overflowed the machine tier. The tightenings already
		// written are valid path bounds, so the full closure below
		// converges to the same canonical matrix.
	}
	d.dirty = nil
	d.closeFull()
}

// repairAll incrementally restores closure after the recorded dirty
// tightenings. It reports false when a machine-tier overflow forces the
// caller onto the full-closure path. On success the matrix is canonical
// — or empty, or (when the budget runs out mid-repair) a valid unclosed
// matrix with the unrepaired edges still queued.
func (d *DBM) repairAll(tok *budget.Token) bool {
	for k := range d.dirty {
		if k > 0 && tok.Exhausted() {
			d.dirty = d.dirty[k:]
			return true
		}
		a, b := int(d.dirty[k][0]), int(d.dirty[k][1])
		var ok bool
		if d.sp != nil {
			ok = d.repairSparse(a, b)
		} else {
			ok = d.repairDense(a, b)
		}
		if !ok {
			return false
		}
		if d.empty {
			d.dirty = nil
			return true
		}
	}
	d.dirty = nil
	d.closed = true
	d.chooseRep()
	return true
}

// repairDense restores closure after the single tightening at (a, b):
// with the prior matrix closed, the new canonical form is
// m[i][j] = min(m[i][j], d(i,a) + m[a][b] + d(b,j)), where d(x,x) = 0.
// A path may use the new edge at most once unless it closes a negative
// cycle, which is detected up front (m[a][b] + m[b][a] < 0 ⇒ empty).
func (d *DBM) repairDense(a, b int) bool {
	m := d.mw
	c := m[a][b]
	if c == noBound {
		// The tightened cell was since forgotten (Havoc after a skipped
		// closure); nothing to propagate.
		return true
	}
	ba := int64(0)
	if a != b {
		ba = m[b][a]
	}
	if ba != noBound {
		s, ok := numkernel.AddOK(c, ba)
		if !ok {
			return false
		}
		if s < 0 {
			d.empty = true
			return true
		}
	}
	size := len(m)
	ar := d.cfg.ar()
	// Snapshot column a and row b: the repair loop writes into arbitrary
	// cells, including these.
	colA := ar.Int64s(size)
	rowB := ar.Int64s(size)
	for i := 0; i < size; i++ {
		colA[i] = m[i][a]
	}
	copy(rowB, m[b])
	colA[a] = 0
	rowB[b] = 0
	ok := true
	for i := 0; i < size && ok; i++ {
		ia := colA[i]
		if ia == noBound {
			continue
		}
		via, vok := numkernel.AddOK(ia, c)
		if !vok {
			ok = false
			break
		}
		ri := m[i]
		for j := 0; j < size; j++ {
			bj := rowB[j]
			if bj == noBound {
				continue
			}
			s, sok := numkernel.AddOK(via, bj)
			if !sok || s == noBound {
				ok = false
				break
			}
			if s < ri[j] {
				ri[j] = s
			}
		}
	}
	ar.PutInt64s(colA)
	ar.PutInt64s(rowB)
	return ok
}

// repairSparse is repairDense on the adjacency representation: only the
// finite column of a and the finite row of b participate, so the repair
// cost is the product of the two degrees, not n².
func (d *DBM) repairSparse(a, b int) bool {
	sp := d.sp
	c := sp.cell(a, b)
	if c == noBound {
		return true
	}
	ba := int64(0)
	if a != b {
		ba = sp.cell(b, a)
	}
	if ba != noBound {
		s, ok := numkernel.AddOK(c, ba)
		if !ok {
			return false
		}
		if s < 0 {
			d.empty = true
			return true
		}
	}
	type ent struct {
		idx int
		v   int64
	}
	// Snapshot the sources (finite column a, plus the implicit d(a,a)=0)
	// and sinks (finite row b, plus d(b,b)=0) before mutating.
	srcs := make([]ent, 0, len(sp.rows)/4+1)
	for i := 0; i < sp.n; i++ {
		if i == a {
			srcs = append(srcs, ent{a, 0})
			continue
		}
		if v := sp.cell(i, a); v != noBound {
			srcs = append(srcs, ent{i, v})
		}
	}
	rb := sp.rows[b]
	snks := make([]ent, 0, len(rb.cols)+1)
	seenB := false
	for k, col := range rb.cols {
		if int(col) == b {
			snks = append(snks, ent{b, 0})
			seenB = true
			continue
		}
		snks = append(snks, ent{int(col), rb.vals[k]})
	}
	if !seenB {
		snks = append(snks, ent{b, 0})
	}
	for _, s := range srcs {
		via, ok := numkernel.AddOK(s.v, c)
		if !ok {
			return false
		}
		for _, t := range snks {
			sum, ok := numkernel.AddOK(via, t.v)
			if !ok || sum == noBound {
				return false
			}
			sp.tighten(s.idx, t.idx, sum)
		}
	}
	return true
}

// closeFull runs the complete Floyd–Warshall closure on whichever tier
// holds the matrix, promoting on overflow and demoting afterwards.
func (d *DBM) closeFull() {
	if d.sp != nil {
		d.densify()
	}
	if d.mw != nil {
		if d.closeFast() {
			for i := range d.mw {
				if d.mw[i][i] < 0 {
					d.empty = true
					return
				}
			}
			d.closed = true
			d.chooseRep()
			return
		}
		// An intermediate sum overflowed the machine tier. The partial
		// tightenings already written are valid path bounds, so re-running
		// the closure on the exact tier converges to the same canonical
		// shortest-path matrix.
		d.promote()
	}
	size := len(d.mx)
	for k := 0; k < size; k++ {
		for i := 0; i < size; i++ {
			if d.mx[i][k] == nil {
				continue
			}
			for j := 0; j < size; j++ {
				if d.mx[k][j] == nil {
					continue
				}
				sum := new(big.Int).Add(d.mx[i][k], d.mx[k][j])
				if d.mx[i][j] == nil || sum.Cmp(d.mx[i][j]) < 0 {
					d.mx[i][j] = sum
				}
			}
		}
	}
	for i := 0; i < size; i++ {
		if d.mx[i][i] != nil && d.mx[i][i].Sign() < 0 {
			d.empty = true
			return
		}
	}
	d.demote()
	if !d.cfg.pure() {
		d.closed = true
		d.chooseRep()
	}
}

// closeFast is the machine-tier Floyd–Warshall loop; it reports false when
// a sum overflows (or collides with the sentinel) and the caller must
// promote.
func (d *DBM) closeFast() bool {
	size := len(d.mw)
	for k := 0; k < size; k++ {
		krow := d.mw[k]
		for i := 0; i < size; i++ {
			ik := d.mw[i][k]
			if ik == noBound {
				continue
			}
			irow := d.mw[i]
			for j := 0; j < size; j++ {
				kj := krow[j]
				if kj == noBound {
					continue
				}
				sum, ok := numkernel.AddOK(ik, kj)
				if !ok || sum == noBound {
					return false
				}
				// The sentinel is the maximum int64, so this also replaces
				// +infinity entries.
				if sum < irow[j] {
					irow[j] = sum
				}
			}
		}
	}
	return true
}

// setBound tightens x_i - x_j <= c (indices are 1-based for variables,
// 0 for the zero var).
func (d *DBM) setBound(i, j int, c *big.Int) {
	if d.mx == nil {
		if c.IsInt64() {
			if cv := c.Int64(); cv != noBound {
				if d.sp != nil {
					if d.sp.tighten(i, j, cv) {
						d.noteTighten(i, j)
					}
				} else if cv < d.mw[i][j] {
					d.mw[i][j] = cv
					d.noteTighten(i, j)
				}
				return
			}
		} else if c.Sign() > 0 {
			// Looser than any machine bound: only tightens if the cell is
			// +infinity, and then it cannot be stored exactly.
			if d.wcell(i, j) != noBound {
				return
			}
		}
		d.promote()
	}
	if d.mx[i][j] == nil || c.Cmp(d.mx[i][j]) < 0 {
		d.mx[i][j] = new(big.Int).Set(c)
		d.noteTighten(i, j)
	}
}

// cellBig returns the exact value of a cell, or nil for +infinity. The
// result must be treated as read-only; machine-tier reads allocate.
func (d *DBM) cellBig(i, j int) *big.Int {
	if d.mx == nil {
		x := d.wcell(i, j)
		if x == noBound {
			return nil
		}
		return big.NewInt(x)
	}
	return d.mx[i][j]
}

// cellLE reports whether the cell is a finite bound <= c.
func (d *DBM) cellLE(i, j int, c *big.Int) bool {
	if d.mx == nil {
		x := d.wcell(i, j)
		if x == noBound {
			return false
		}
		if c.IsInt64() {
			return x <= c.Int64()
		}
		return c.Sign() > 0 // |c| > MaxInt64, so x <= c iff c is positive
	}
	return d.mx[i][j] != nil && d.mx[i][j].Cmp(c) <= 0
}

// MeetConstraint refines with a linear constraint when it has zone shape
// (at most two unit-coefficient variables); other constraints are soundly
// ignored.
func (d *DBM) MeetConstraint(c linear.Constraint) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	apply := func(e linear.Expr) {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			if e.Const.Sign() < 0 {
				out.empty = true
			}
		case 1:
			v := vars[0]
			k := e.Coef(v)
			// k*x + c >= 0
			if k.Cmp(bigOne) == 0 {
				// x >= -c: 0 - x <= c
				out.setBound(0, v+1, e.Const)
			} else if k.Cmp(bigMinusOne) == 0 {
				// x <= c
				out.setBound(v+1, 0, e.Const)
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			switch {
			case ka.Cmp(bigOne) == 0 && kb.Cmp(bigMinusOne) == 0:
				// x_a - x_b + c >= 0: x_b - x_a <= c
				out.setBound(b+1, a+1, e.Const)
			case ka.Cmp(bigMinusOne) == 0 && kb.Cmp(bigOne) == 0:
				out.setBound(a+1, b+1, e.Const)
			}
		}
	}
	apply(c.E)
	if c.Rel == linear.Eq {
		apply(c.E.Scale(-1))
	}
	out.close()
	return out
}

var (
	bigOne      = big.NewInt(1)
	bigMinusOne = big.NewInt(-1)
)

// Join returns the pointwise maximum of closed forms.
func (d *DBM) Join(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	d.close()
	o.close()
	cfg := d.cfgOr(o)
	if d.sp != nil && o.sp != nil {
		// The sparse max only visits cells finite on both sides — joins
		// never grow the support. Pointwise max of closed forms is
		// closed.
		out := &DBM{n: d.n, cfg: cfg, sp: d.sp.joinMax(o.sp), closed: true}
		out.chooseRep()
		return out
	}
	if d.mx == nil && o.mx == nil {
		d.densify()
		o.densify()
		out := cfg.newDense(d.n)
		for i := range out.mw {
			dr, or, outr := d.mw[i], o.mw[i], out.mw[i]
			for j := range outr {
				// max treats the sentinel (maximum value) as +infinity.
				if dr[j] >= or[j] {
					outr[j] = dr[j]
				} else {
					outr[j] = or[j]
				}
			}
		}
		out.closed = true
		out.chooseRep()
		return out
	}
	d.promote()
	o.promote()
	out := cfg.newExact(d.n)
	for i := range out.mx {
		for j := range out.mx[i] {
			if d.mx[i][j] != nil && o.mx[i][j] != nil {
				if d.mx[i][j].Cmp(o.mx[i][j]) >= 0 {
					out.mx[i][j] = new(big.Int).Set(d.mx[i][j])
				} else {
					out.mx[i][j] = new(big.Int).Set(o.mx[i][j])
				}
			}
		}
	}
	out.demote()
	if !cfg.pure() {
		out.closed = true
		out.chooseRep()
	}
	return out
}

// Widen drops bounds not stable between d (previous) and o (next). The
// result is deliberately left unclosed: closing a widening result can
// defeat termination.
func (d *DBM) Widen(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	o.close()
	cfg := d.cfgOr(o)
	if d.sp != nil && o.sp != nil {
		return &DBM{n: d.n, cfg: cfg, sp: d.sp.widen(o.sp)}
	}
	if d.mx == nil && o.mx == nil {
		d.densify()
		o.densify()
		out := cfg.newDense(d.n)
		for i := range out.mw {
			dr, or, outr := d.mw[i], o.mw[i], out.mw[i]
			for j := range outr {
				// o <= d with d finite implies o is finite too (the
				// sentinel is the maximum value).
				if dr[j] != noBound && or[j] <= dr[j] {
					outr[j] = dr[j]
				}
			}
		}
		return out
	}
	d.promote()
	o.promote()
	out := cfg.newExact(d.n)
	for i := range out.mx {
		for j := range out.mx[i] {
			if d.mx[i][j] != nil && o.mx[i][j] != nil && o.mx[i][j].Cmp(d.mx[i][j]) <= 0 {
				out.mx[i][j] = new(big.Int).Set(d.mx[i][j])
			}
		}
	}
	out.demote()
	return out
}

// Includes reports whether o is contained in d.
func (d *DBM) Includes(o *DBM) bool {
	if o.IsEmpty() {
		return true
	}
	if d.IsEmpty() {
		return false
	}
	d.close()
	o.close()
	if d.sp != nil && o.sp != nil {
		return d.sp.includes(o.sp)
	}
	if d.mx == nil && o.mx == nil {
		d.densify()
		o.densify()
		for i := range d.mw {
			dr, or := d.mw[i], o.mw[i]
			for j := range dr {
				// o's bound must be at least as tight; a sentinel in o
				// compares greater than any finite bound of d.
				if dr[j] != noBound && or[j] > dr[j] {
					return false
				}
			}
		}
		return true
	}
	d.promote()
	o.promote()
	for i := range d.mx {
		for j := range d.mx[i] {
			if d.mx[i][j] == nil {
				continue
			}
			if o.mx[i][j] == nil || o.mx[i][j].Cmp(d.mx[i][j]) > 0 {
				return false
			}
		}
	}
	return true
}

// dropNode forgets every bound involving matrix node i. Dropping edges
// of a closed matrix leaves it closed: the remaining direct bounds still
// dominate every remaining path.
func (d *DBM) dropNode(i int) {
	switch {
	case d.sp != nil:
		d.sp.dropNode(i)
	case d.mw != nil:
		for j := range d.mw {
			d.mw[i][j] = noBound
			d.mw[j][i] = noBound
		}
	default:
		for j := range d.mx {
			d.mx[i][j] = nil
			d.mx[j][i] = nil
		}
	}
}

// Havoc forgets variable v.
func (d *DBM) Havoc(v int) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	out.close()
	if out.empty {
		return out
	}
	out.dropNode(v + 1)
	return out
}

// shiftNodeW translates matrix node i by c on the machine tier (row +c,
// column -c, diagonal untouched), verifying first that no cell overflows
// so a failed attempt leaves the matrix untouched for the exact replay.
func (d *DBM) shiftNodeW(i int, c int64) bool {
	if d.sp != nil {
		return d.sp.shiftNode(i, c)
	}
	m := d.mw
	for j := range m {
		if j == i {
			continue
		}
		if x := m[i][j]; x != noBound {
			if s, o := numkernel.AddOK(x, c); !o || s == noBound {
				return false
			}
		}
		if x := m[j][i]; x != noBound {
			if s, o := numkernel.SubOK(x, c); !o || s == noBound {
				return false
			}
		}
	}
	for j := range m {
		if j == i {
			continue
		}
		if m[i][j] != noBound {
			m[i][j] += c
		}
		if m[j][i] != noBound {
			m[j][i] -= c
		}
	}
	return true
}

// shiftNodeX is the exact-tier node translation.
func (d *DBM) shiftNodeX(i int, c *big.Int) {
	for j := range d.mx {
		if j == i {
			continue
		}
		if d.mx[i][j] != nil {
			d.mx[i][j] = new(big.Int).Add(d.mx[i][j], c)
		}
		if d.mx[j][i] != nil {
			d.mx[j][i] = new(big.Int).Sub(d.mx[j][i], c)
		}
	}
}

// Assign over-approximates v := e. Exact for v := w + c and v := c; other
// right-hand sides degrade to havoc plus interval bounds when derivable.
func (d *DBM) Assign(v int, e linear.Expr) *DBM {
	if d.IsEmpty() {
		return d.cfg.Bottom(d.n)
	}
	vars := e.Vars()
	// v := v + c: shift bounds (an exact translation, closure-preserving).
	if len(vars) == 1 && vars[0] == v && e.Coef(v).Cmp(bigOne) == 0 {
		out := d.Clone()
		out.close()
		i := v + 1
		if out.mx == nil && e.Const.IsInt64() {
			if out.shiftNodeW(i, e.Const.Int64()) {
				return out
			}
		}
		out.promote()
		out.shiftNodeX(i, e.Const)
		out.demote()
		return out
	}
	// General: forget v, then constrain when the shape allows. The new
	// bounds land on a closed matrix, so close() repairs incrementally.
	out := d.Havoc(v)
	if len(vars) == 0 {
		// v := c
		out.setBound(v+1, 0, e.Const)
		out.setBound(0, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	if len(vars) == 1 && vars[0] != v && e.Coef(vars[0]).Cmp(bigOne) == 0 {
		// v := w + c: v - w <= c and w - v <= -c.
		w := vars[0]
		out.setBound(v+1, w+1, e.Const)
		out.setBound(w+1, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	return out
}

// Entails reports whether every point satisfies c (only zone-shaped
// constraints can be entailed).
func (d *DBM) Entails(c linear.Constraint) bool {
	if d.IsEmpty() {
		return true
	}
	if c.IsTautology() {
		return true
	}
	d.close()
	check := func(e linear.Expr) bool {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			return e.Const.Sign() >= 0
		case 1:
			v := vars[0]
			k := e.Coef(v)
			if k.Cmp(bigOne) == 0 {
				// need x >= -c, i.e. 0 - x <= c entailed
				return d.cellLE(0, v+1, e.Const)
			}
			if k.Cmp(bigMinusOne) == 0 {
				return d.cellLE(v+1, 0, e.Const)
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			if ka.Cmp(bigOne) == 0 && kb.Cmp(bigMinusOne) == 0 {
				return d.cellLE(b+1, a+1, e.Const)
			}
			if ka.Cmp(bigMinusOne) == 0 && kb.Cmp(bigOne) == 0 {
				return d.cellLE(a+1, b+1, e.Const)
			}
		}
		return false
	}
	if c.Rel == linear.Eq {
		return check(c.E) && check(c.E.Scale(-1))
	}
	return check(c.E)
}

// Key returns a canonical byte-string encoding of d's current matrix and
// whether one is available. Encodings are value-based and independent of
// both the tier and the machine representation (a sparse matrix encodes
// exactly like its dense form, cell by cell), so equal keys imply
// identical bound matrices and a memoized answer keyed by them is exact.
func (d *DBM) Key() (string, bool) {
	if d.empty {
		return "empty", true
	}
	key := numkernel.AppendKeyInt64(nil, int64(d.n))
	if d.sp != nil {
		for i := range d.sp.rows {
			row := &d.sp.rows[i]
			k := 0
			for j := 0; j < d.sp.n; j++ {
				if k < len(row.cols) && int(row.cols[k]) == j {
					key = numkernel.AppendKeyInt64(key, row.vals[k])
					k++
				} else {
					key = append(key, 0x01)
				}
			}
		}
		return string(key), true
	}
	if d.mw != nil {
		for _, r := range d.mw {
			for _, x := range r {
				if x == noBound {
					key = append(key, 0x01)
				} else {
					key = numkernel.AppendKeyInt64(key, x)
				}
			}
		}
		return string(key), true
	}
	for _, r := range d.mx {
		for _, x := range r {
			if x == nil {
				key = append(key, 0x01)
			} else {
				key = numkernel.AppendKeyBig(key, x)
			}
		}
	}
	return string(key), true
}

// System renders the closed zone as linear constraints.
func (d *DBM) System() linear.System {
	var sys linear.System
	if d.IsEmpty() {
		return linear.System{linear.NewGe(linear.ConstExpr(-1))}
	}
	d.close()
	n := d.n + 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := d.cellBig(i, j)
			if i == j || c == nil {
				continue
			}
			// x_i - x_j <= c  ==>  c - x_i + x_j >= 0
			e := linear.NewExpr()
			e.Const.Set(c)
			if i > 0 {
				e.AddTerm(i-1, -1)
			}
			if j > 0 {
				e.AddTerm(j-1, 1)
			}
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// Bounds returns the tightest [lo, hi] interval of variable v; nil
// pointers denote unboundedness.
func (d *DBM) Bounds(v int) (lo, hi *big.Rat) {
	if d.IsEmpty() || v < 0 || v >= d.n {
		return nil, nil
	}
	d.close()
	if c := d.cellBig(0, v+1); c != nil { // 0 - x <= c: x >= -c
		lo = new(big.Rat).SetInt(new(big.Int).Neg(c))
	}
	if c := d.cellBig(v+1, 0); c != nil { // x <= c
		hi = new(big.Rat).SetInt(c)
	}
	return lo, hi
}

// Sample returns a contained point (greedy, using lower bounds).
func (d *DBM) Sample() []*big.Rat {
	if d.IsEmpty() {
		return nil
	}
	d.close()
	pt := make([]*big.Rat, d.n)
	for v := 0; v < d.n; v++ {
		switch {
		case d.cellBig(0, v+1) != nil: // 0 - x <= c: x >= -c
			pt[v] = new(big.Rat).SetInt(new(big.Int).Neg(d.cellBig(0, v+1)))
		case d.cellBig(v+1, 0) != nil: // x <= c
			pt[v] = new(big.Rat).SetInt(d.cellBig(v+1, 0))
		default:
			pt[v] = new(big.Rat)
		}
	}
	return pt
}

// String renders the zone.
func (d *DBM) String(sp *linear.Space) string {
	if d.IsEmpty() {
		return "false"
	}
	sys := d.System()
	if len(sys) == 0 {
		return "true"
	}
	var parts []string
	for _, c := range sys {
		parts = append(parts, c.String(sp))
	}
	return strings.Join(parts, " && ")
}
