// Package zone implements the zone (difference-bound matrix) abstract
// domain: conjunctions of constraints of the forms x - y <= c, x <= c and
// -x <= c. It sits between intervals and polyhedra in the precision/cost
// spectrum and exists for the paper's "any sound integer analysis can be
// used" ablation (§3.5).
//
// Like the polyhedra substrate, the DBM is two-tiered: bounds live in an
// int64 matrix (with math.MaxInt64 as the +infinity sentinel) and the whole
// matrix promotes to the exact big.Int tier when an operation would
// overflow — or produce the sentinel value — so results are bit-identical
// to pure arbitrary-precision arithmetic. Closures computed on the exact
// tier demote back when every bound fits a machine word again.
package zone

import (
	"math"
	"math/big"
	"strings"

	"repro/internal/linear"
	"repro/internal/numkernel"
)

// noBound is the machine-tier +infinity sentinel. A genuine bound equal to
// math.MaxInt64 forces promotion to the exact tier, keeping the sentinel
// unambiguous; conveniently, the sentinel is the maximum, so pointwise
// min/max and comparisons treat it as +infinity with no special casing.
const noBound = math.MaxInt64

// DBM is a difference-bound matrix over n variables plus the designated
// zero variable (index 0): the matrix bounds x_i - x_j <= m[i][j], with x_0
// identically 0. Exactly one tier is active: mw (machine, noBound = +inf)
// when mx == nil, otherwise mx (exact, nil entry = +inf). cfg carries
// per-run knobs (budget token, kernel tier); nil means defaults.
type DBM struct {
	n     int // number of program variables
	mw    [][]int64
	mx    [][]*big.Int
	empty bool
	cfg   *Config
}

// Universe returns the unconstrained zone with default configuration.
func Universe(n int) *DBM {
	return (*Config)(nil).Universe(n)
}

// Bottom returns the empty zone with default configuration.
func Bottom(n int) *DBM {
	return (*Config)(nil).Bottom(n)
}

// cfgOr returns the receiver's Config, falling back to o's when unset.
func (d *DBM) cfgOr(o *DBM) *Config {
	if d.cfg != nil {
		return d.cfg
	}
	return o.cfg
}

// promote moves d onto the exact tier (no-op if already there).
func (d *DBM) promote() {
	if d.mx != nil {
		return
	}
	d.mx = make([][]*big.Int, len(d.mw))
	for i, r := range d.mw {
		br := make([]*big.Int, len(r))
		for j, x := range r {
			if x != noBound {
				br[j] = big.NewInt(x)
			}
		}
		d.mx[i] = br
	}
	d.mw = nil
}

// demote moves d back to the machine tier when every bound fits (a bound
// exactly equal to the sentinel value must stay exact).
func (d *DBM) demote() {
	if d.mx == nil || d.cfg.pure() {
		return
	}
	for _, r := range d.mx {
		for _, x := range r {
			if x != nil && (!x.IsInt64() || x.Int64() == noBound) {
				return
			}
		}
	}
	mw := make([][]int64, len(d.mx))
	for i, r := range d.mx {
		wr := make([]int64, len(r))
		for j, x := range r {
			if x == nil {
				wr[j] = noBound
			} else {
				wr[j] = x.Int64()
			}
		}
		mw[i] = wr
	}
	d.mw = mw
	d.mx = nil
}

// Clone returns a deep copy.
func (d *DBM) Clone() *DBM {
	c := &DBM{n: d.n, empty: d.empty, cfg: d.cfg}
	if d.mw != nil {
		c.mw = make([][]int64, len(d.mw))
		for i, r := range d.mw {
			c.mw[i] = append([]int64(nil), r...)
		}
		return c
	}
	c.mx = make([][]*big.Int, len(d.mx))
	for i, r := range d.mx {
		br := make([]*big.Int, len(r))
		for j, x := range r {
			if x != nil {
				br[j] = new(big.Int).Set(x)
			}
		}
		c.mx[i] = br
	}
	return c
}

// IsEmpty reports whether the zone has no points.
func (d *DBM) IsEmpty() bool {
	if d.empty {
		return true
	}
	d.close()
	return d.empty
}

// close computes the shortest-path closure (canonical form) and detects
// negative cycles (emptiness).
func (d *DBM) close() {
	if d.empty {
		return
	}
	if d.cfg.token().Exhausted() {
		// Budget exhausted: skip the closure. The matrix keeps valid
		// (possibly loose) bounds, so every later query sees a sound
		// over-approximation of the canonical form; a negative cycle may
		// go undetected, which errs toward "maybe non-empty" — also sound.
		return
	}
	if d.mw != nil {
		if d.closeFast() {
			for i := range d.mw {
				if d.mw[i][i] < 0 {
					d.empty = true
					return
				}
			}
			return
		}
		// An intermediate sum overflowed the machine tier. The partial
		// tightenings already written are valid path bounds, so re-running
		// the closure on the exact tier converges to the same canonical
		// shortest-path matrix.
		d.promote()
	}
	n := len(d.mx)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d.mx[i][k] == nil {
				continue
			}
			for j := 0; j < n; j++ {
				if d.mx[k][j] == nil {
					continue
				}
				sum := new(big.Int).Add(d.mx[i][k], d.mx[k][j])
				if d.mx[i][j] == nil || sum.Cmp(d.mx[i][j]) < 0 {
					d.mx[i][j] = sum
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.mx[i][i] != nil && d.mx[i][i].Sign() < 0 {
			d.empty = true
			return
		}
	}
	d.demote()
}

// closeFast is the machine-tier Floyd–Warshall loop; it reports false when
// a sum overflows (or collides with the sentinel) and the caller must
// promote.
func (d *DBM) closeFast() bool {
	n := len(d.mw)
	for k := 0; k < n; k++ {
		krow := d.mw[k]
		for i := 0; i < n; i++ {
			ik := d.mw[i][k]
			if ik == noBound {
				continue
			}
			irow := d.mw[i]
			for j := 0; j < n; j++ {
				kj := krow[j]
				if kj == noBound {
					continue
				}
				sum, ok := numkernel.AddOK(ik, kj)
				if !ok || sum == noBound {
					return false
				}
				// The sentinel is the maximum int64, so this also replaces
				// +infinity entries.
				if sum < irow[j] {
					irow[j] = sum
				}
			}
		}
	}
	return true
}

// setBound tightens x_i - x_j <= c (indices are 1-based for variables,
// 0 for the zero var).
func (d *DBM) setBound(i, j int, c *big.Int) {
	if d.mw != nil {
		if c.IsInt64() {
			if cv := c.Int64(); cv != noBound {
				if cv < d.mw[i][j] {
					d.mw[i][j] = cv
				}
				return
			}
		} else if c.Sign() > 0 {
			// Looser than any machine bound: only tightens if the cell is
			// +infinity, and then it cannot be stored exactly.
			if d.mw[i][j] != noBound {
				return
			}
		}
		d.promote()
	}
	if d.mx[i][j] == nil || c.Cmp(d.mx[i][j]) < 0 {
		d.mx[i][j] = new(big.Int).Set(c)
	}
}

// cellBig returns the exact value of a cell, or nil for +infinity. The
// result must be treated as read-only; machine-tier reads allocate.
func (d *DBM) cellBig(i, j int) *big.Int {
	if d.mw != nil {
		if d.mw[i][j] == noBound {
			return nil
		}
		return big.NewInt(d.mw[i][j])
	}
	return d.mx[i][j]
}

// cellLE reports whether the cell is a finite bound <= c.
func (d *DBM) cellLE(i, j int, c *big.Int) bool {
	if d.mw != nil {
		x := d.mw[i][j]
		if x == noBound {
			return false
		}
		if c.IsInt64() {
			return x <= c.Int64()
		}
		return c.Sign() > 0 // |c| > MaxInt64, so x <= c iff c is positive
	}
	return d.mx[i][j] != nil && d.mx[i][j].Cmp(c) <= 0
}

// MeetConstraint refines with a linear constraint when it has zone shape
// (at most two unit-coefficient variables); other constraints are soundly
// ignored.
func (d *DBM) MeetConstraint(c linear.Constraint) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	apply := func(e linear.Expr) {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			if e.Const.Sign() < 0 {
				out.empty = true
			}
		case 1:
			v := vars[0]
			k := e.Coef(v)
			// k*x + c >= 0
			if k.Cmp(bigOne) == 0 {
				// x >= -c: 0 - x <= c
				out.setBound(0, v+1, e.Const)
			} else if k.Cmp(bigMinusOne) == 0 {
				// x <= c
				out.setBound(v+1, 0, e.Const)
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			switch {
			case ka.Cmp(bigOne) == 0 && kb.Cmp(bigMinusOne) == 0:
				// x_a - x_b + c >= 0: x_b - x_a <= c
				out.setBound(b+1, a+1, e.Const)
			case ka.Cmp(bigMinusOne) == 0 && kb.Cmp(bigOne) == 0:
				out.setBound(a+1, b+1, e.Const)
			}
		}
	}
	apply(c.E)
	if c.Rel == linear.Eq {
		apply(c.E.Scale(-1))
	}
	out.close()
	return out
}

var (
	bigOne      = big.NewInt(1)
	bigMinusOne = big.NewInt(-1)
)

// Join returns the pointwise maximum of closed forms.
func (d *DBM) Join(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	d.close()
	o.close()
	cfg := d.cfgOr(o)
	if d.mw != nil && o.mw != nil {
		out := cfg.Universe(d.n)
		for i := range out.mw {
			dr, or, outr := d.mw[i], o.mw[i], out.mw[i]
			for j := range outr {
				// max treats the sentinel (maximum value) as +infinity.
				if dr[j] >= or[j] {
					outr[j] = dr[j]
				} else {
					outr[j] = or[j]
				}
			}
		}
		return out
	}
	d.promote()
	o.promote()
	out := cfg.Universe(d.n)
	out.promote()
	for i := range out.mx {
		for j := range out.mx[i] {
			if d.mx[i][j] != nil && o.mx[i][j] != nil {
				if d.mx[i][j].Cmp(o.mx[i][j]) >= 0 {
					out.mx[i][j] = new(big.Int).Set(d.mx[i][j])
				} else {
					out.mx[i][j] = new(big.Int).Set(o.mx[i][j])
				}
			}
		}
	}
	out.demote()
	return out
}

// Widen drops bounds not stable between d (previous) and o (next).
func (d *DBM) Widen(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	o.close()
	cfg := d.cfgOr(o)
	if d.mw != nil && o.mw != nil {
		out := cfg.Universe(d.n)
		for i := range out.mw {
			dr, or, outr := d.mw[i], o.mw[i], out.mw[i]
			for j := range outr {
				// o <= d with d finite implies o is finite too (the
				// sentinel is the maximum value).
				if dr[j] != noBound && or[j] <= dr[j] {
					outr[j] = dr[j]
				}
			}
		}
		return out
	}
	d.promote()
	o.promote()
	out := cfg.Universe(d.n)
	out.promote()
	for i := range out.mx {
		for j := range out.mx[i] {
			if d.mx[i][j] != nil && o.mx[i][j] != nil && o.mx[i][j].Cmp(d.mx[i][j]) <= 0 {
				out.mx[i][j] = new(big.Int).Set(d.mx[i][j])
			}
		}
	}
	out.demote()
	return out
}

// Includes reports whether o is contained in d.
func (d *DBM) Includes(o *DBM) bool {
	if o.IsEmpty() {
		return true
	}
	if d.IsEmpty() {
		return false
	}
	d.close()
	o.close()
	if d.mw != nil && o.mw != nil {
		for i := range d.mw {
			dr, or := d.mw[i], o.mw[i]
			for j := range dr {
				// o's bound must be at least as tight; a sentinel in o
				// compares greater than any finite bound of d.
				if dr[j] != noBound && or[j] > dr[j] {
					return false
				}
			}
		}
		return true
	}
	d.promote()
	o.promote()
	for i := range d.mx {
		for j := range d.mx[i] {
			if d.mx[i][j] == nil {
				continue
			}
			if o.mx[i][j] == nil || o.mx[i][j].Cmp(d.mx[i][j]) > 0 {
				return false
			}
		}
	}
	return true
}

// Havoc forgets variable v.
func (d *DBM) Havoc(v int) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	out.close()
	if out.empty {
		return out
	}
	i := v + 1
	if out.mw != nil {
		for j := range out.mw {
			out.mw[i][j] = noBound
			out.mw[j][i] = noBound
		}
		return out
	}
	for j := range out.mx {
		out.mx[i][j] = nil
		out.mx[j][i] = nil
	}
	return out
}

// Assign over-approximates v := e. Exact for v := w + c and v := c; other
// right-hand sides degrade to havoc plus interval bounds when derivable.
func (d *DBM) Assign(v int, e linear.Expr) *DBM {
	if d.IsEmpty() {
		return d.cfg.Bottom(d.n)
	}
	vars := e.Vars()
	// v := v + c: shift bounds.
	if len(vars) == 1 && vars[0] == v && e.Coef(v).Cmp(bigOne) == 0 {
		out := d.Clone()
		out.close()
		i := v + 1
		if out.mw != nil && e.Const.IsInt64() {
			c := e.Const.Int64()
			ok := true
			// Verify no shift overflows before mutating, so a promotion
			// replays the whole row/column on untouched values.
			for j := range out.mw {
				if j == i {
					continue
				}
				if x := out.mw[i][j]; x != noBound {
					if s, o := numkernel.AddOK(x, c); !o || s == noBound {
						ok = false
						break
					}
				}
				if x := out.mw[j][i]; x != noBound {
					if s, o := numkernel.SubOK(x, c); !o || s == noBound {
						ok = false
						break
					}
				}
			}
			if ok {
				for j := range out.mw {
					if j == i {
						continue
					}
					if out.mw[i][j] != noBound {
						out.mw[i][j] += c
					}
					if out.mw[j][i] != noBound {
						out.mw[j][i] -= c
					}
				}
				return out
			}
		}
		out.promote()
		for j := range out.mx {
			if j == i {
				continue
			}
			if out.mx[i][j] != nil {
				out.mx[i][j] = new(big.Int).Add(out.mx[i][j], e.Const)
			}
			if out.mx[j][i] != nil {
				out.mx[j][i] = new(big.Int).Sub(out.mx[j][i], e.Const)
			}
		}
		out.demote()
		return out
	}
	// General: forget v, then constrain when the shape allows.
	out := d.Havoc(v)
	if len(vars) == 0 {
		// v := c
		out.setBound(v+1, 0, e.Const)
		out.setBound(0, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	if len(vars) == 1 && vars[0] != v && e.Coef(vars[0]).Cmp(bigOne) == 0 {
		// v := w + c: v - w <= c and w - v <= -c.
		w := vars[0]
		out.setBound(v+1, w+1, e.Const)
		out.setBound(w+1, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	return out
}

// Entails reports whether every point satisfies c (only zone-shaped
// constraints can be entailed).
func (d *DBM) Entails(c linear.Constraint) bool {
	if d.IsEmpty() {
		return true
	}
	if c.IsTautology() {
		return true
	}
	d.close()
	check := func(e linear.Expr) bool {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			return e.Const.Sign() >= 0
		case 1:
			v := vars[0]
			k := e.Coef(v)
			if k.Cmp(bigOne) == 0 {
				// need x >= -c, i.e. 0 - x <= c entailed
				return d.cellLE(0, v+1, e.Const)
			}
			if k.Cmp(bigMinusOne) == 0 {
				return d.cellLE(v+1, 0, e.Const)
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			if ka.Cmp(bigOne) == 0 && kb.Cmp(bigMinusOne) == 0 {
				return d.cellLE(b+1, a+1, e.Const)
			}
			if ka.Cmp(bigMinusOne) == 0 && kb.Cmp(bigOne) == 0 {
				return d.cellLE(a+1, b+1, e.Const)
			}
		}
		return false
	}
	if c.Rel == linear.Eq {
		return check(c.E) && check(c.E.Scale(-1))
	}
	return check(c.E)
}

// Key returns a canonical byte-string encoding of d's current matrix and
// whether one is available. Encodings are value-based and tier-independent
// (an exact-tier bound that fits a machine word encodes identically to its
// machine-tier form), so equal keys imply identical bound matrices and a
// memoized answer keyed by them is exact.
func (d *DBM) Key() (string, bool) {
	if d.empty {
		return "empty", true
	}
	key := numkernel.AppendKeyInt64(nil, int64(d.n))
	if d.mw != nil {
		for _, r := range d.mw {
			for _, x := range r {
				if x == noBound {
					key = append(key, 0x01)
				} else {
					key = numkernel.AppendKeyInt64(key, x)
				}
			}
		}
		return string(key), true
	}
	for _, r := range d.mx {
		for _, x := range r {
			if x == nil {
				key = append(key, 0x01)
			} else {
				key = numkernel.AppendKeyBig(key, x)
			}
		}
	}
	return string(key), true
}

// System renders the closed zone as linear constraints.
func (d *DBM) System() linear.System {
	var sys linear.System
	if d.IsEmpty() {
		return linear.System{linear.NewGe(linear.ConstExpr(-1))}
	}
	d.close()
	n := d.n + 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := d.cellBig(i, j)
			if i == j || c == nil {
				continue
			}
			// x_i - x_j <= c  ==>  c - x_i + x_j >= 0
			e := linear.NewExpr()
			e.Const.Set(c)
			if i > 0 {
				e.AddTerm(i-1, -1)
			}
			if j > 0 {
				e.AddTerm(j-1, 1)
			}
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// Bounds returns the tightest [lo, hi] interval of variable v; nil
// pointers denote unboundedness.
func (d *DBM) Bounds(v int) (lo, hi *big.Rat) {
	if d.IsEmpty() || v < 0 || v >= d.n {
		return nil, nil
	}
	d.close()
	if c := d.cellBig(0, v+1); c != nil { // 0 - x <= c: x >= -c
		lo = new(big.Rat).SetInt(new(big.Int).Neg(c))
	}
	if c := d.cellBig(v+1, 0); c != nil { // x <= c
		hi = new(big.Rat).SetInt(c)
	}
	return lo, hi
}

// Sample returns a contained point (greedy, using lower bounds).
func (d *DBM) Sample() []*big.Rat {
	if d.IsEmpty() {
		return nil
	}
	d.close()
	pt := make([]*big.Rat, d.n)
	for v := 0; v < d.n; v++ {
		switch {
		case d.cellBig(0, v+1) != nil: // 0 - x <= c: x >= -c
			pt[v] = new(big.Rat).SetInt(new(big.Int).Neg(d.cellBig(0, v+1)))
		case d.cellBig(v+1, 0) != nil: // x <= c
			pt[v] = new(big.Rat).SetInt(d.cellBig(v+1, 0))
		default:
			pt[v] = new(big.Rat)
		}
	}
	return pt
}

// String renders the zone.
func (d *DBM) String(sp *linear.Space) string {
	if d.IsEmpty() {
		return "false"
	}
	sys := d.System()
	if len(sys) == 0 {
		return "true"
	}
	var parts []string
	for _, c := range sys {
		parts = append(parts, c.String(sp))
	}
	return strings.Join(parts, " && ")
}
