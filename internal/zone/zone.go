// Package zone implements the zone (difference-bound matrix) abstract
// domain: conjunctions of constraints of the forms x - y <= c, x <= c and
// -x <= c. It sits between intervals and polyhedra in the precision/cost
// spectrum and exists for the paper's "any sound integer analysis can be
// used" ablation (§3.5).
package zone

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/linear"
)

// DBM is a difference-bound matrix over n variables plus the designated
// zero variable (index 0): m[i][j] bounds x_i - x_j <= m[i][j], with x_0
// identically 0. A nil entry is +infinity.
type DBM struct {
	n     int // number of program variables
	m     [][]*big.Int
	empty bool
}

// Universe returns the unconstrained zone.
func Universe(n int) *DBM {
	d := &DBM{n: n, m: make([][]*big.Int, n+1)}
	for i := range d.m {
		d.m[i] = make([]*big.Int, n+1)
	}
	return d
}

// Bottom returns the empty zone.
func Bottom(n int) *DBM {
	d := Universe(n)
	d.empty = true
	return d
}

// Clone returns a deep copy.
func (d *DBM) Clone() *DBM {
	c := Universe(d.n)
	c.empty = d.empty
	for i := range d.m {
		for j := range d.m[i] {
			if d.m[i][j] != nil {
				c.m[i][j] = new(big.Int).Set(d.m[i][j])
			}
		}
	}
	return c
}

// IsEmpty reports whether the zone has no points.
func (d *DBM) IsEmpty() bool {
	if d.empty {
		return true
	}
	d.close()
	return d.empty
}

// close computes the shortest-path closure (canonical form) and detects
// negative cycles (emptiness).
func (d *DBM) close() {
	if d.empty {
		return
	}
	n := len(d.m)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d.m[i][k] == nil {
				continue
			}
			for j := 0; j < n; j++ {
				if d.m[k][j] == nil {
					continue
				}
				sum := new(big.Int).Add(d.m[i][k], d.m[k][j])
				if d.m[i][j] == nil || sum.Cmp(d.m[i][j]) < 0 {
					d.m[i][j] = sum
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.m[i][i] != nil && d.m[i][i].Sign() < 0 {
			d.empty = true
			return
		}
	}
}

// setBound tightens x_i - x_j <= c (indices are 1-based for variables,
// 0 for the zero var).
func (d *DBM) setBound(i, j int, c *big.Int) {
	if d.m[i][j] == nil || c.Cmp(d.m[i][j]) < 0 {
		d.m[i][j] = new(big.Int).Set(c)
	}
}

// MeetConstraint refines with a linear constraint when it has zone shape
// (at most two unit-coefficient variables); other constraints are soundly
// ignored.
func (d *DBM) MeetConstraint(c linear.Constraint) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	apply := func(e linear.Expr) {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			if e.Const.Sign() < 0 {
				out.empty = true
			}
		case 1:
			v := vars[0]
			k := e.Coef(v)
			// k*x + c >= 0
			if k.Cmp(big.NewInt(1)) == 0 {
				// x >= -c: 0 - x <= c
				out.setBound(0, v+1, e.Const)
			} else if k.Cmp(big.NewInt(-1)) == 0 {
				// x <= c
				out.setBound(v+1, 0, e.Const)
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			one, mone := big.NewInt(1), big.NewInt(-1)
			switch {
			case ka.Cmp(one) == 0 && kb.Cmp(mone) == 0:
				// x_a - x_b + c >= 0: x_b - x_a <= c
				out.setBound(b+1, a+1, e.Const)
			case ka.Cmp(mone) == 0 && kb.Cmp(one) == 0:
				out.setBound(a+1, b+1, e.Const)
			}
		}
	}
	apply(c.E)
	if c.Rel == linear.Eq {
		apply(c.E.Scale(-1))
	}
	out.close()
	return out
}

// Join returns the pointwise maximum of closed forms.
func (d *DBM) Join(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	d.close()
	o.close()
	out := Universe(d.n)
	for i := range out.m {
		for j := range out.m[i] {
			if d.m[i][j] != nil && o.m[i][j] != nil {
				if d.m[i][j].Cmp(o.m[i][j]) >= 0 {
					out.m[i][j] = new(big.Int).Set(d.m[i][j])
				} else {
					out.m[i][j] = new(big.Int).Set(o.m[i][j])
				}
			}
		}
	}
	return out
}

// Widen drops bounds not stable between d (previous) and o (next).
func (d *DBM) Widen(o *DBM) *DBM {
	if d.IsEmpty() {
		return o.Clone()
	}
	if o.IsEmpty() {
		return d.Clone()
	}
	o.close()
	out := Universe(d.n)
	for i := range out.m {
		for j := range out.m[i] {
			if d.m[i][j] != nil && o.m[i][j] != nil && o.m[i][j].Cmp(d.m[i][j]) <= 0 {
				out.m[i][j] = new(big.Int).Set(d.m[i][j])
			}
		}
	}
	return out
}

// Includes reports whether o is contained in d.
func (d *DBM) Includes(o *DBM) bool {
	if o.IsEmpty() {
		return true
	}
	if d.IsEmpty() {
		return false
	}
	d.close()
	o.close()
	for i := range d.m {
		for j := range d.m[i] {
			if d.m[i][j] == nil {
				continue
			}
			if o.m[i][j] == nil || o.m[i][j].Cmp(d.m[i][j]) > 0 {
				return false
			}
		}
	}
	return true
}

// Havoc forgets variable v.
func (d *DBM) Havoc(v int) *DBM {
	out := d.Clone()
	if out.empty {
		return out
	}
	out.close()
	if out.empty {
		return out
	}
	i := v + 1
	for j := range out.m {
		out.m[i][j] = nil
		out.m[j][i] = nil
	}
	return out
}

// Assign over-approximates v := e. Exact for v := w + c and v := c; other
// right-hand sides degrade to havoc plus interval bounds when derivable.
func (d *DBM) Assign(v int, e linear.Expr) *DBM {
	if d.IsEmpty() {
		return Bottom(d.n)
	}
	vars := e.Vars()
	// v := v + c: shift bounds.
	if len(vars) == 1 && vars[0] == v && e.Coef(v).Cmp(big.NewInt(1)) == 0 {
		out := d.Clone()
		out.close()
		i := v + 1
		for j := range out.m {
			if j == i {
				continue
			}
			if out.m[i][j] != nil {
				out.m[i][j] = new(big.Int).Add(out.m[i][j], e.Const)
			}
			if out.m[j][i] != nil {
				out.m[j][i] = new(big.Int).Sub(out.m[j][i], e.Const)
			}
		}
		return out
	}
	// General: forget v, then constrain when the shape allows.
	out := d.Havoc(v)
	if len(vars) == 0 {
		// v := c
		out.setBound(v+1, 0, e.Const)
		out.setBound(0, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	if len(vars) == 1 && vars[0] != v && e.Coef(vars[0]).Cmp(big.NewInt(1)) == 0 {
		// v := w + c: v - w <= c and w - v <= -c.
		w := vars[0]
		out.setBound(v+1, w+1, e.Const)
		out.setBound(w+1, v+1, new(big.Int).Neg(e.Const))
		out.close()
		return out
	}
	return out
}

// Entails reports whether every point satisfies c (only zone-shaped
// constraints can be entailed).
func (d *DBM) Entails(c linear.Constraint) bool {
	if d.IsEmpty() {
		return true
	}
	if c.IsTautology() {
		return true
	}
	d.close()
	check := func(e linear.Expr) bool {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			return e.Const.Sign() >= 0
		case 1:
			v := vars[0]
			k := e.Coef(v)
			if k.Cmp(big.NewInt(1)) == 0 {
				// need x >= -c, i.e. 0 - x <= c entailed
				return d.m[0][v+1] != nil && d.m[0][v+1].Cmp(e.Const) <= 0
			}
			if k.Cmp(big.NewInt(-1)) == 0 {
				return d.m[v+1][0] != nil && d.m[v+1][0].Cmp(e.Const) <= 0
			}
		case 2:
			a, b := vars[0], vars[1]
			ka, kb := e.Coef(a), e.Coef(b)
			one, mone := big.NewInt(1), big.NewInt(-1)
			if ka.Cmp(one) == 0 && kb.Cmp(mone) == 0 {
				return d.m[b+1][a+1] != nil && d.m[b+1][a+1].Cmp(e.Const) <= 0
			}
			if ka.Cmp(mone) == 0 && kb.Cmp(one) == 0 {
				return d.m[a+1][b+1] != nil && d.m[a+1][b+1].Cmp(e.Const) <= 0
			}
		}
		return false
	}
	if c.Rel == linear.Eq {
		return check(c.E) && check(c.E.Scale(-1))
	}
	return check(c.E)
}

// System renders the closed zone as linear constraints.
func (d *DBM) System() linear.System {
	var sys linear.System
	if d.IsEmpty() {
		return linear.System{linear.NewGe(linear.ConstExpr(-1))}
	}
	d.close()
	for i := range d.m {
		for j := range d.m[i] {
			if i == j || d.m[i][j] == nil {
				continue
			}
			// x_i - x_j <= c  ==>  c - x_i + x_j >= 0
			e := linear.NewExpr()
			e.Const.Set(d.m[i][j])
			if i > 0 {
				e.AddTerm(i-1, -1)
			}
			if j > 0 {
				e.AddTerm(j-1, 1)
			}
			sys = append(sys, linear.NewGe(e))
		}
	}
	return sys
}

// Bounds returns the tightest [lo, hi] interval of variable v; nil
// pointers denote unboundedness.
func (d *DBM) Bounds(v int) (lo, hi *big.Rat) {
	if d.IsEmpty() || v < 0 || v >= d.n {
		return nil, nil
	}
	d.close()
	if d.m[0][v+1] != nil { // 0 - x <= c: x >= -c
		lo = new(big.Rat).SetInt(new(big.Int).Neg(d.m[0][v+1]))
	}
	if d.m[v+1][0] != nil { // x <= c
		hi = new(big.Rat).SetInt(d.m[v+1][0])
	}
	return lo, hi
}

// Sample returns a contained point (greedy, using lower bounds).
func (d *DBM) Sample() []*big.Rat {
	if d.IsEmpty() {
		return nil
	}
	d.close()
	pt := make([]*big.Rat, d.n)
	for v := 0; v < d.n; v++ {
		switch {
		case d.m[0][v+1] != nil: // 0 - x <= c: x >= -c
			pt[v] = new(big.Rat).SetInt(new(big.Int).Neg(d.m[0][v+1]))
		case d.m[v+1][0] != nil: // x <= c
			pt[v] = new(big.Rat).SetInt(d.m[v+1][0])
		default:
			pt[v] = new(big.Rat)
		}
	}
	return pt
}

// String renders the zone.
func (d *DBM) String(sp *linear.Space) string {
	if d.IsEmpty() {
		return "false"
	}
	sys := d.System()
	if len(sys) == 0 {
		return "true"
	}
	var parts []string
	for _, c := range sys {
		parts = append(parts, c.String(sp))
	}
	return strings.Join(parts, " && ")
}

var _ = fmt.Sprintf
