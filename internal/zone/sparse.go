package zone

import "repro/internal/numkernel"

// sparseMat is the adjacency-style machine-tier DBM representation:
// each row stores only its finite cells, as parallel (column, bound)
// slices sorted by column. Absence represents the +infinity sentinel.
// The automatic policy picks it when fewer than a quarter of the cells
// are finite, which is the common case for real procedures (most
// variable pairs are unrelated); the sparse incremental repair then
// touches only the finite neighborhood of the updated edge instead of
// the full n² dense sweep.
type sparseMat struct {
	n    int
	rows []srow
}

type srow struct {
	cols []int32
	vals []int64
}

func newSparseMat(n int) *sparseMat {
	return &sparseMat{n: n, rows: make([]srow, n)}
}

func (s *sparseMat) clone() *sparseMat {
	c := &sparseMat{n: s.n, rows: make([]srow, len(s.rows))}
	for i := range s.rows {
		c.rows[i] = srow{
			cols: append([]int32(nil), s.rows[i].cols...),
			vals: append([]int64(nil), s.rows[i].vals...),
		}
	}
	return c
}

// find returns the position of col in r.cols when present, otherwise
// the insertion point with ok=false.
func (r *srow) find(col int32) (pos int, ok bool) {
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.cols[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.cols) && r.cols[lo] == col
}

// cell returns the bound at (i, j), noBound when absent.
func (s *sparseMat) cell(i, j int) int64 {
	r := &s.rows[i]
	if p, ok := r.find(int32(j)); ok {
		return r.vals[p]
	}
	return noBound
}

// tighten min-stores v at (i, j) and reports whether the cell changed.
// v must be a genuine bound (not the sentinel).
func (s *sparseMat) tighten(i, j int, v int64) bool {
	r := &s.rows[i]
	p, ok := r.find(int32(j))
	if ok {
		if v < r.vals[p] {
			r.vals[p] = v
			return true
		}
		return false
	}
	r.cols = append(r.cols, 0)
	copy(r.cols[p+1:], r.cols[p:])
	r.cols[p] = int32(j)
	r.vals = append(r.vals, 0)
	copy(r.vals[p+1:], r.vals[p:])
	r.vals[p] = v
	return true
}

// count returns the number of finite cells.
func (s *sparseMat) count() int {
	t := 0
	for i := range s.rows {
		t += len(s.rows[i].cols)
	}
	return t
}

// each calls f for every finite cell.
func (s *sparseMat) each(f func(i, j int, v int64)) {
	for i := range s.rows {
		r := &s.rows[i]
		for k, c := range r.cols {
			f(i, int(c), r.vals[k])
		}
	}
}

// dropNode removes row i and column i.
func (s *sparseMat) dropNode(i int) {
	s.rows[i] = srow{}
	for j := range s.rows {
		r := &s.rows[j]
		if p, ok := r.find(int32(i)); ok {
			r.cols = append(r.cols[:p], r.cols[p+1:]...)
			r.vals = append(r.vals[:p], r.vals[p+1:]...)
		}
	}
}

// joinMax returns the pointwise maximum of two same-size matrices. A
// cell missing on either side is +infinity, which dominates, so the
// result's support is the intersection — joins only get sparser.
func (s *sparseMat) joinMax(o *sparseMat) *sparseMat {
	out := newSparseMat(s.n)
	for i := range s.rows {
		a, b := &s.rows[i], &o.rows[i]
		r := &out.rows[i]
		x, y := 0, 0
		for x < len(a.cols) && y < len(b.cols) {
			switch {
			case a.cols[x] < b.cols[y]:
				x++
			case a.cols[x] > b.cols[y]:
				y++
			default:
				v := a.vals[x]
				if b.vals[y] > v {
					v = b.vals[y]
				}
				r.cols = append(r.cols, a.cols[x])
				r.vals = append(r.vals, v)
				x++
				y++
			}
		}
	}
	return out
}

// widen keeps the cells of s (previous iterate) that o (next iterate)
// does not enlarge, mirroring the dense widening cell-for-cell.
func (s *sparseMat) widen(o *sparseMat) *sparseMat {
	out := newSparseMat(s.n)
	for i := range s.rows {
		a, b := &s.rows[i], &o.rows[i]
		r := &out.rows[i]
		y := 0
		for x := range a.cols {
			for y < len(b.cols) && b.cols[y] < a.cols[x] {
				y++
			}
			if y < len(b.cols) && b.cols[y] == a.cols[x] && b.vals[y] <= a.vals[x] {
				r.cols = append(r.cols, a.cols[x])
				r.vals = append(r.vals, a.vals[x])
			}
		}
	}
	return out
}

// includes reports containment of o in s, cellwise: every finite bound
// of s must be matched by an at-least-as-tight bound in o.
func (s *sparseMat) includes(o *sparseMat) bool {
	for i := range s.rows {
		a, b := &s.rows[i], &o.rows[i]
		y := 0
		for x := range a.cols {
			for y < len(b.cols) && b.cols[y] < a.cols[x] {
				y++
			}
			if y >= len(b.cols) || b.cols[y] != a.cols[x] || b.vals[y] > a.vals[x] {
				return false
			}
		}
	}
	return true
}

// shiftNode translates node i by c (+c across row i, -c down column i,
// diagonal untouched) after verifying no cell overflows or collides
// with the sentinel; it reports whether the shift was applied.
func (s *sparseMat) shiftNode(i int, c int64) bool {
	ri := &s.rows[i]
	for k, col := range ri.cols {
		if int(col) == i {
			continue
		}
		if v, ok := numkernel.AddOK(ri.vals[k], c); !ok || v == noBound {
			return false
		}
	}
	for j := range s.rows {
		if j == i {
			continue
		}
		r := &s.rows[j]
		if p, ok := r.find(int32(i)); ok {
			if v, ok2 := numkernel.SubOK(r.vals[p], c); !ok2 || v == noBound {
				return false
			}
		}
	}
	for k, col := range ri.cols {
		if int(col) != i {
			ri.vals[k] += c
		}
	}
	for j := range s.rows {
		if j == i {
			continue
		}
		r := &s.rows[j]
		if p, ok := r.find(int32(i)); ok {
			r.vals[p] -= c
		}
	}
	return true
}
