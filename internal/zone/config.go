package zone

import (
	"math/big"

	"repro/internal/budget"
)

// Config carries per-run knobs for the zone domain. There is no mutable
// package-level configuration: concurrent analyses each thread their own
// Config, so they cannot race. A nil *Config is valid and means defaults
// (hybrid kernel, no budget); DBMs propagate the Config of the receiver
// (falling back to the other operand) through all operations.
type Config struct {
	// Token, when non-nil, is polled before each closure: once it is
	// exhausted the closure is skipped, leaving a partially tightened
	// matrix — a sound over-approximation of the canonical form.
	Token *budget.Token
	// PureBig forces the exact big.Int tier everywhere and disables
	// demotion. The differential tests use it to build a reference
	// kernel; it must never be set in production code.
	PureBig bool
}

func (c *Config) pure() bool { return c != nil && c.PureBig }

func (c *Config) token() *budget.Token {
	if c == nil {
		return nil
	}
	return c.Token
}

// Universe returns the unconstrained zone over n variables, governed by c.
func (c *Config) Universe(n int) *DBM {
	d := &DBM{n: n, cfg: c}
	if c.pure() {
		d.mx = make([][]*big.Int, n+1)
		for i := range d.mx {
			d.mx[i] = make([]*big.Int, n+1)
		}
		return d
	}
	d.mw = make([][]int64, n+1)
	for i := range d.mw {
		r := make([]int64, n+1)
		for j := range r {
			r[j] = noBound
		}
		d.mw[i] = r
	}
	return d
}

// Bottom returns the empty zone over n variables, governed by c.
func (c *Config) Bottom(n int) *DBM {
	d := c.Universe(n)
	d.empty = true
	return d
}
