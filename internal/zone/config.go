package zone

import (
	"math/big"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/budget"
)

// SparsePolicy selects the machine-tier DBM representation.
type SparsePolicy int

const (
	// SparseAuto picks dense or sparse by finite-cell density at each
	// closure boundary (the default).
	SparseAuto SparsePolicy = iota
	// SparseOff pins the dense matrix representation.
	SparseOff
	// SparseForce pins the sparse representation regardless of density
	// (used by the differential tests to exercise every sparse path).
	SparseForce
)

// Config carries per-run knobs for the zone domain. There is no mutable
// package-level configuration: concurrent analyses each thread their own
// Config, so they cannot race. A nil *Config is valid and means defaults
// (hybrid kernel, automatic representation, no budget, no arena); DBMs
// propagate the Config of the receiver (falling back to the other
// operand) through all operations.
type Config struct {
	// Token, when non-nil, is polled before each closure: once it is
	// exhausted the closure is skipped, leaving a partially tightened
	// matrix — a sound over-approximation of the canonical form.
	Token *budget.Token
	// PureBig forces the exact big.Int tier everywhere and disables
	// demotion. The differential tests use it to build a reference
	// kernel; it must never be set in production code. The reference
	// kernel also never reuses closures (no closed flag, no incremental
	// repair) and never picks the sparse representation, so it
	// maximizes divergence detection against the optimized paths.
	PureBig bool
	// Sparse selects the machine-tier representation policy; PureBig
	// ignores it (the exact tier has a single, dense representation).
	Sparse SparsePolicy
	// Arena, when non-nil, recycles dense matrix rows and repair
	// scratch buffers across the run. Arenas are not safe for
	// concurrent use; the driver threads one per procedure.
	Arena *arena.Arena

	// selSparse/selDense count the automatic policy's representation
	// decisions at closure boundaries. Decisions are content-only, so
	// the counts are deterministic for a given procedure.
	selSparse atomic.Int64
	selDense  atomic.Int64
}

func (c *Config) pure() bool { return c != nil && c.PureBig }

func (c *Config) token() *budget.Token {
	if c == nil {
		return nil
	}
	return c.Token
}

func (c *Config) ar() *arena.Arena {
	if c == nil {
		return nil
	}
	return c.Arena
}

func (c *Config) sparseMode() SparsePolicy {
	if c == nil || c.PureBig {
		return SparseOff
	}
	return c.Sparse
}

func (c *Config) noteSel(sparse bool) {
	if c == nil {
		return
	}
	if sparse {
		c.selSparse.Add(1)
	} else {
		c.selDense.Add(1)
	}
}

// SparseSelections returns how many closure-boundary representation
// decisions picked the sparse and the dense representation under the
// automatic policy. The counts feed the -stats surface.
func (c *Config) SparseSelections() (sparse, dense int64) {
	if c == nil {
		return 0, 0
	}
	return c.selSparse.Load(), c.selDense.Load()
}

// Universe returns the unconstrained zone over n variables, governed by
// c. The all-infinity matrix is its own shortest-path closure, so it
// starts out closed.
func (c *Config) Universe(n int) *DBM {
	if c.pure() {
		return c.newExact(n)
	}
	mode := c.sparseMode()
	if mode == SparseForce || (mode == SparseAuto && n+1 >= sparseMinDim) {
		d := c.newSparse(n)
		d.closed = true
		return d
	}
	d := c.newDense(n)
	d.closed = true
	return d
}

// Bottom returns the empty zone over n variables, governed by c.
func (c *Config) Bottom(n int) *DBM {
	d := c.Universe(n)
	d.empty = true
	return d
}

// newDense returns a machine-tier dense all-infinity matrix (not marked
// closed: internal callers overwrite cells directly).
func (c *Config) newDense(n int) *DBM {
	d := &DBM{n: n, cfg: c}
	ar := c.ar()
	d.mw = make([][]int64, n+1)
	for i := range d.mw {
		r := ar.Int64s(n + 1)
		for j := range r {
			r[j] = noBound
		}
		d.mw[i] = r
	}
	return d
}

// newSparse returns a machine-tier sparse all-infinity matrix.
func (c *Config) newSparse(n int) *DBM {
	return &DBM{n: n, cfg: c, sp: newSparseMat(n + 1)}
}

// newExact returns an exact-tier all-infinity matrix.
func (c *Config) newExact(n int) *DBM {
	d := &DBM{n: n, cfg: c}
	d.mx = make([][]*big.Int, n+1)
	for i := range d.mx {
		d.mx[i] = make([]*big.Int, n+1)
	}
	return d
}
