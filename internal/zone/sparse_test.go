package zone

import (
	"math/big"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/budget"
)

// diffZoneReps runs one script at dim 6 under every machine-tier
// representation policy — forced sparse, forced dense, and automatic
// switching with the arena enabled — and compares every transcript
// against the pure-big.Int reference. A representation bug, an
// incremental-repair bug, or an arena aliasing bug all surface as a
// transcript divergence.
func diffZoneReps(t *testing.T, data []byte) {
	t.Helper()
	want := runZoneScriptDim(data, &Config{PureBig: true}, 6)
	reps := []struct {
		name string
		cfg  *Config
	}{
		{"force-sparse", &Config{Sparse: SparseForce}},
		{"force-dense", &Config{Sparse: SparseOff}},
		{"auto+arena", &Config{Arena: arena.New()}},
	}
	for _, rep := range reps {
		got := runZoneScriptDim(data, rep.cfg, 6)
		if len(got) != len(want) {
			t.Fatalf("%s: transcript lengths differ: %d vs reference %d", rep.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s diverges at step %d:\ngot:       %s\nreference: %s", rep.name, i, got[i], want[i])
			}
		}
	}
}

// FuzzSparseDBM: randomized op sequences must be bit-identical across
// the sparse, dense, and automatically switching representations and the
// pure-big.Int reference.
func FuzzSparseDBM(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{3, 255, 254, 3, 253, 252, 3, 251, 250, 5, 249, 6, 248})
	f.Add([]byte{1, 9, 0, 1, 2, 1, 9, 3, 4, 2, 9, 5, 0, 5, 9, 1, 2, 6, 9})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6; i++ {
		seed := make([]byte, 12+rng.Intn(48))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffZoneReps(t, data)
	})
}

// TestZoneRepDifferential is the deterministic always-on slice of
// FuzzSparseDBM.
func TestZoneRepDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		data := make([]byte, 12+rng.Intn(50))
		rng.Read(data)
		diffZoneReps(t, data)
	}
}

// TestIncrementalEmptyAfterUpdate: a single tightening that closes a
// negative cycle on an already-closed matrix must be detected by the
// incremental repair, on both machine representations.
func TestIncrementalEmptyAfterUpdate(t *testing.T) {
	for _, cfg := range []*Config{{Sparse: SparseOff}, {Sparse: SparseForce}} {
		d := cfg.Universe(6)
		d = d.MeetConstraint(ge(5, -1, 0)) // x0 <= 5
		d = d.MeetConstraint(ge(0, 1, 0))  // x0 >= 0
		if !d.closed || d.IsEmpty() {
			t.Fatalf("precondition: want closed non-empty, got closed=%v empty=%v", d.closed, d.empty)
		}
		d = d.MeetConstraint(ge(-10, 1, 0)) // x0 >= 10: contradiction
		if !d.IsEmpty() {
			t.Fatalf("Sparse=%v: negative cycle not detected by incremental repair", cfg.Sparse)
		}
	}
}

// TestIncrementalRepairMatchesFullClosure: repairing a handful of
// tightenings incrementally must yield exactly the matrix a full
// Floyd–Warshall closure computes.
func TestIncrementalRepairMatchesFullClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, policy := range []SparsePolicy{SparseOff, SparseForce} {
		for trial := 0; trial < 120; trial++ {
			cfg := &Config{Sparse: policy}
			d := cfg.Universe(5)
			for k := 0; k < 4; k++ {
				i, j := rng.Intn(6), rng.Intn(6)
				if i == j {
					continue
				}
				d.setBound(i, j, big.NewInt(int64(rng.Intn(21)-6)))
			}
			d.close()
			if d.empty {
				continue
			}
			// Tighten up to maxDirty cells on the closed matrix, then
			// compare incremental repair against a from-scratch closure.
			inc := d.Clone()
			full := d.Clone()
			for k := 0; k < 1+rng.Intn(maxDirty); k++ {
				i, j := rng.Intn(6), rng.Intn(6)
				if i == j {
					continue
				}
				c := big.NewInt(int64(rng.Intn(17) - 8))
				inc.setBound(i, j, c)
				full.setBound(i, j, c)
			}
			if inc.dirty == nil && !inc.closed {
				t.Fatal("tightenings on a closed matrix must be tracked")
			}
			inc.close() // incremental path
			full.dirty = nil
			full.closed = false
			full.closeFull() // reference path
			if inc.empty != full.empty {
				t.Fatalf("policy=%v trial %d: empty mismatch inc=%v full=%v", policy, trial, inc.empty, full.empty)
			}
			if inc.empty {
				continue
			}
			ik, _ := inc.Key()
			fk, _ := full.Key()
			if ik != fk {
				t.Fatalf("policy=%v trial %d: incremental repair diverges from full closure:\ninc:  %s\nfull: %s",
					policy, trial, inc.String(nil), full.String(nil))
			}
		}
	}
}

// TestCloseSkippedUnderExhaustedBudget: once the token is exhausted the
// closure is skipped entirely, leaving valid bounds and the pending
// dirty list intact for a later repair.
func TestCloseSkippedUnderExhaustedBudget(t *testing.T) {
	tok := budget.New(time.Time{}, 1)
	tok.Step(5) // trip the step budget
	cfg := &Config{Token: tok, Sparse: SparseOff}
	d := cfg.Universe(6)
	d.closed = true // simulate a matrix closed before exhaustion
	d.setBound(1, 0, big.NewInt(4))
	d.close()
	if d.closed {
		t.Fatal("close must not run under an exhausted budget")
	}
	if len(d.dirty) != 1 {
		t.Fatalf("pending dirty list must survive the skipped close, got %v", d.dirty)
	}
	if got := d.wcell(1, 0); got != 4 {
		t.Fatalf("bound written before the skipped close lost: %d", got)
	}
}

// TestRepairBudgetExhaustionMidway: a deadline passing between edge
// repairs stops repairAll after the current edge, leaving a valid
// unclosed matrix with the unrepaired edges still queued — and a later
// unbudgeted close finishes the job with no loss of precision.
func TestRepairBudgetExhaustionMidway(t *testing.T) {
	cfg := &Config{Sparse: SparseOff}
	d := cfg.Universe(6)
	d = d.MeetConstraint(ge(9, -1, 0)) // x0 <= 9, closed afterwards
	if !d.closed {
		t.Fatal("precondition: matrix should be closed")
	}
	d.setBound(2, 1, big.NewInt(3))
	d.setBound(3, 1, big.NewInt(7))
	if len(d.dirty) != 2 {
		t.Fatalf("want 2 queued edges, got %v", d.dirty)
	}
	tok := budget.New(time.Now().Add(-time.Second), 0)
	if !d.repairAll(tok) {
		t.Fatal("repair of small bounds must not overflow")
	}
	if d.closed {
		t.Fatal("matrix must not claim closure after an interrupted repair")
	}
	if len(d.dirty) != 1 {
		t.Fatalf("want 1 still-queued edge, got %v", d.dirty)
	}
	// The interrupted matrix remains a valid bound set: finishing the
	// repair later (fresh budget) must match a from-scratch closure.
	full := d.Clone()
	full.dirty = nil
	full.closeFull()
	d.close()
	if !d.closed {
		t.Fatal("follow-up close should complete the queued repair")
	}
	dk, _ := d.Key()
	fk, _ := full.Key()
	if dk != fk {
		t.Fatalf("resumed repair diverges from full closure:\nresumed: %s\nfull:    %s", d.String(nil), full.String(nil))
	}
}

// TestAutoRepSwitching drives one matrix across the density threshold in
// both directions and checks the automatic policy actually switches
// representation (and counts its decisions).
func TestAutoRepSwitching(t *testing.T) {
	cfg := &Config{}
	d := cfg.Universe(7) // size 8 >= sparseMinDim: starts sparse
	if d.sp == nil {
		t.Fatal("large universe should start on the sparse representation")
	}
	// Constrain every pair: density goes to ~100%, policy must densify.
	for v := 0; v < 7; v++ {
		d = d.MeetConstraint(ge(int64(v+1), -1, int64(v))) // x_v <= v+1
		d = d.MeetConstraint(ge(0, 1, int64(v)))           // x_v >= 0
	}
	if d.sp != nil {
		t.Fatal("fully constrained matrix should have densified")
	}
	// Havoc everything: density collapses, next closure re-sparsifies.
	for v := 0; v < 7; v++ {
		d = d.Havoc(v)
	}
	d.closed = false
	d.close()
	if d.sp == nil {
		t.Fatal("emptied matrix should have re-sparsified")
	}
	sparse, dense := cfg.SparseSelections()
	if sparse == 0 || dense == 0 {
		t.Fatalf("selection counters not recorded: sparse=%d dense=%d", sparse, dense)
	}
}
