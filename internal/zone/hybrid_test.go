package zone

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

// zoneCoef maps a fuzz byte to a bound constant. Most values are small;
// the top cases are near the int64 edge, forcing whole-matrix promotion in
// the closure and the shift-assign paths.
func zoneCoef(b byte) int64 {
	switch b % 16 {
	case 15:
		return 1 << 62
	case 14:
		return -(1 << 62)
	case 13:
		return (1 << 62) + 12345
	default:
		return int64(b%16) - 6
	}
}

// runZoneScript interprets data as a small DBM program and returns the
// observable transcript. cfg selects the kernel (nil = hybrid, PureBig =
// exact reference).
func runZoneScript(data []byte, cfg *Config) []string {
	return runZoneScriptDim(data, cfg, 3)
}

// runZoneScriptDim is runZoneScript at an arbitrary dimension; the
// representation-differential tests run it at dim 6 so the automatic
// density policy actually reaches the sparse matrix (size 7 >=
// sparseMinDim).
func runZoneScriptDim(data []byte, cfg *Config, dim int) []string {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	constraint := func() linear.Constraint {
		c := zoneCoef(next())
		a := int(next()) % dim
		b := int(next()) % dim
		var g linear.Constraint
		switch next() % 4 {
		case 0:
			g = ge(c, 1, int64(a)) // x_a >= -c
		case 1:
			g = ge(c, -1, int64(a)) // x_a <= c
		case 2:
			g = ge(c, 1, int64(a), -1, int64(b)) // x_a - x_b >= -c
		default:
			g = ge(c, -1, int64(a), 1, int64(b))
		}
		if next()%5 == 0 {
			g.Rel = linear.Eq
		}
		return g
	}
	cur := cfg.Universe(dim)
	var trace []string
	emit := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	for step := 0; step < 16 && pos < len(data); step++ {
		switch next() % 7 {
		case 0:
			cur = cur.MeetConstraint(constraint())
		case 1:
			o := cfg.Universe(dim).MeetConstraint(constraint()).MeetConstraint(constraint())
			cur = cur.Join(o)
		case 2:
			o := cur.Join(cfg.Universe(dim).MeetConstraint(constraint()))
			cur = cur.Widen(o)
		case 3:
			v := int(next()) % dim
			e := linear.ConstExpr(zoneCoef(next()))
			switch next() % 3 {
			case 0:
				e.AddTerm(v, 1) // v := v + c
			case 1:
				e.AddTerm((v+1)%dim, 1) // v := w + c
			}
			cur = cur.Assign(v, e)
		case 4:
			cur = cur.Havoc(int(next()) % dim)
		case 5:
			o := cfg.Universe(dim).MeetConstraint(constraint())
			emit("includes=%v reverse=%v", cur.Includes(o), o.Includes(cur))
		case 6:
			v := int(next()) % dim
			lo, hi := cur.Bounds(v)
			emit("entails=%v bounds(%d)=[%v,%v]", cur.Entails(constraint()), v, lo, hi)
		}
		emit("state=%s empty=%v", cur.System().String(nil), cur.IsEmpty())
	}
	return trace
}

// diffZone runs the script on the hybrid DBM and on the pure-big.Int
// reference and fails on the first transcript mismatch.
func diffZone(t *testing.T, data []byte) {
	t.Helper()
	got := runZoneScript(data, nil)
	want := runZoneScript(data, &Config{PureBig: true})
	if len(got) != len(want) {
		t.Fatalf("transcript lengths differ: hybrid %d vs reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("transcripts diverge at step %d:\nhybrid:    %s\nreference: %s", i, got[i], want[i])
		}
	}
}

// FuzzHybridDBM: randomized DBM op sequences must be bit-identical between
// the hybrid matrix and the pure-big.Int reference.
func FuzzHybridDBM(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{13, 13, 14, 14, 15, 15, 13, 14, 15, 3, 13, 3, 14, 3, 15})
	f.Add([]byte{3, 255, 254, 3, 253, 252, 3, 251, 250, 5, 249, 6, 248})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		seed := make([]byte, 8+rng.Intn(40))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffZone(t, data)
	})
}

// TestZoneHybridDifferential is the deterministic always-on slice of the
// fuzz target.
func TestZoneHybridDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 10+rng.Intn(50))
		rng.Read(data)
		diffZone(t, data)
	}
}

// TestZonePromotionRoundTrip: bounds near the int64 edge promote the whole
// matrix and demote back once they cancel, with no value drift.
func TestZonePromotionRoundTrip(t *testing.T) {
	huge := int64(1) << 62
	d := Universe(2)
	d = d.MeetConstraint(ge(huge, -1, 0)) // x <= huge
	d = d.MeetConstraint(ge(0, 1, 0))     // x >= 0
	// x := x + huge: upper bound becomes 2^63 > MaxInt64, promoting.
	e := linear.ConstExpr(huge)
	e.AddTerm(0, 1)
	d = d.Assign(0, e)
	if d.mx == nil {
		t.Fatal("expected the shifted DBM to live on the exact tier")
	}
	lo, hi := d.Bounds(0)
	if lo == nil || lo.Num().Int64() != huge {
		t.Errorf("lo = %v, want %d", lo, huge)
	}
	want := "9223372036854775808" // 2^63
	if hi == nil || hi.Num().String() != want {
		t.Errorf("hi = %v, want %s", hi, want)
	}
	// Shifting back down must demote again.
	e2 := linear.ConstExpr(-huge)
	e2.AddTerm(0, 1)
	d = d.Assign(0, e2)
	if d.mw == nil {
		t.Errorf("expected demotion back to the machine tier")
	}
	lo, hi = d.Bounds(0)
	if lo == nil || hi == nil || lo.Num().Int64() != 0 || hi.Num().Int64() != huge {
		t.Errorf("bounds after round trip [%v, %v]", lo, hi)
	}
}
