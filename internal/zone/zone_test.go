package zone

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

func ge(c int64, terms ...int64) linear.Constraint {
	e := linear.ConstExpr(c)
	for i := 0; i+1 < len(terms); i += 2 {
		e.AddTerm(int(terms[i+1]), terms[i])
	}
	return linear.NewGe(e)
}

func eq(c int64, terms ...int64) linear.Constraint {
	g := ge(c, terms...)
	return linear.Constraint{E: g.E, Rel: linear.Eq}
}

func TestZoneBasics(t *testing.T) {
	d := Universe(2)
	d = d.MeetConstraint(ge(0, 1, 0))        // x >= 0
	d = d.MeetConstraint(ge(3, -1, 0))       // x <= 3
	d = d.MeetConstraint(ge(0, 1, 1, -1, 0)) // y >= x
	if d.IsEmpty() {
		t.Fatal("consistent zone empty")
	}
	if !d.Entails(ge(0, 1, 1)) { // y >= 0 by transitivity through closure
		t.Errorf("closure missed y >= 0: %s", d.String(nil))
	}
	if d.Entails(ge(5, -1, 1)) { // y <= 5 not implied
		t.Error("phantom entailment")
	}
}

func TestZoneEmpty(t *testing.T) {
	d := Universe(1)
	d = d.MeetConstraint(ge(-5, 1, 0)) // x >= 5
	d = d.MeetConstraint(ge(3, -1, 0)) // x <= 3
	if !d.IsEmpty() {
		t.Error("negative cycle not detected")
	}
}

func TestZoneEquality(t *testing.T) {
	d := Universe(2).MeetConstraint(eq(0, 1, 0, -1, 1)) // x == y
	if !d.Entails(ge(0, 1, 0, -1, 1)) || !d.Entails(ge(0, -1, 0, 1, 1)) {
		t.Errorf("x == y lost: %s", d.String(nil))
	}
}

func TestZoneJoinWiden(t *testing.T) {
	a := Universe(1).MeetConstraint(eq(0, 1, 0))  // x == 0
	b := Universe(1).MeetConstraint(eq(-2, 1, 0)) // x == 2
	j := a.Join(b)
	if !j.Entails(ge(0, 1, 0)) || !j.Entails(ge(2, -1, 0)) {
		t.Errorf("join = %s", j.String(nil))
	}
	w := a.Widen(j)
	if !w.Entails(ge(0, 1, 0)) {
		t.Errorf("widening lost stable lower bound: %s", w.String(nil))
	}
	if w.Entails(ge(2, -1, 0)) {
		t.Error("widening kept unstable upper bound")
	}
	if !w.Includes(a) || !w.Includes(j) {
		t.Error("widening not extensive")
	}
}

func TestZoneAssign(t *testing.T) {
	d := Universe(2).MeetConstraint(eq(-1, 1, 0)) // x == 1
	// y := x + 4
	e := linear.VarExpr(0)
	e.AddConst(4)
	d2 := d.Assign(1, e)
	if !d2.Entails(eq(-4, -1, 0, 1, 1)) { // y - x == 4
		t.Errorf("relation missing: %s", d2.String(nil))
	}
	if !d2.Entails(eq(-5, 1, 1)) { // y == 5
		t.Errorf("value missing: %s", d2.String(nil))
	}
	// x := x + 1 (shift)
	inc := linear.VarExpr(0)
	inc.AddConst(1)
	d3 := d2.Assign(0, inc)
	if !d3.Entails(eq(-2, 1, 0)) { // x == 2
		t.Errorf("shift wrong: %s", d3.String(nil))
	}
	if !d3.Entails(eq(-3, -1, 0, 1, 1)) { // y - x == 3
		t.Errorf("shift broke the relation: %s", d3.String(nil))
	}
}

func TestZoneHavoc(t *testing.T) {
	d := Universe(2).MeetConstraint(eq(-1, 1, 0)).MeetConstraint(eq(0, 1, 0, -1, 1))
	h := d.Havoc(0)
	if h.Entails(eq(-1, 1, 0)) {
		t.Error("x kept after havoc")
	}
	if !h.Entails(eq(-1, 1, 1)) { // y == 1 survives (x==1, y==x before)
		t.Errorf("derived fact about y lost: %s", h.String(nil))
	}
}

// TestZoneSoundVsPoints: zone meet never cuts integer points of the
// original (zone-shaped) constraints.
func TestZoneSoundVsPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := []func() linear.Constraint{
		func() linear.Constraint { return ge(rng.Int63n(7)-3, 1, 0) },
		func() linear.Constraint { return ge(rng.Int63n(7)-3, -1, 0) },
		func() linear.Constraint { return ge(rng.Int63n(7)-3, 1, 1) },
		func() linear.Constraint { return ge(rng.Int63n(7)-3, -1, 1) },
		func() linear.Constraint { return ge(rng.Int63n(7)-3, 1, 0, -1, 1) },
		func() linear.Constraint { return ge(rng.Int63n(7)-3, -1, 0, 1, 1) },
	}
	for trial := 0; trial < 300; trial++ {
		d := Universe(2)
		var sys []linear.Constraint
		for k := 0; k < 1+rng.Intn(4); k++ {
			c := shapes[rng.Intn(len(shapes))]()
			sys = append(sys, c)
			d = d.MeetConstraint(c)
		}
		for x := int64(-4); x <= 4; x++ {
			for y := int64(-4); y <= 4; y++ {
				pt := []*big.Int{big.NewInt(x), big.NewInt(y)}
				all := true
				for _, c := range sys {
					if !c.Holds(pt) {
						all = false
					}
				}
				if !all {
					continue
				}
				if d.IsEmpty() {
					t.Fatalf("trial %d: point (%d,%d) exists but zone empty", trial, x, y)
				}
				for _, c := range d.System() {
					if !c.Holds(pt) {
						t.Fatalf("trial %d: point (%d,%d) violates closed zone %s",
							trial, x, y, c.String(nil))
					}
				}
			}
		}
	}
}

func TestZoneIgnoresNonZoneShapes(t *testing.T) {
	// 2x + 3y >= 1 is not zone-shaped; meeting must not crash or cut points.
	d := Universe(2).MeetConstraint(ge(-1, 2, 0, 3, 1))
	if d.IsEmpty() {
		t.Error("non-zone constraint emptied the zone")
	}
	if d.Entails(ge(-1, 2, 0, 3, 1)) {
		t.Error("zone claims to entail a shape it cannot represent")
	}
}
