package zone

import (
	"math"
	"math/big"

	"repro/internal/numkernel"
)

// This file exposes the DBM as a raw bound matrix, without the
// variable-vs-zero-node indexing convention of the zone domain proper.
// The octagon substrate builds on it: an octagon over n variables is a
// raw DBM over 2n nodes (one per literal ±x) plus one coherence/
// strengthening pass, and by reusing this surface it inherits the hybrid
// int64/big.Int tiers, the sparse representation, the incremental
// closure, and the arena — none of which it has to reimplement.

// NewRaw returns an unconstrained raw matrix with `size` nodes. Raw
// matrices attach no meaning to node 0; callers define their own node
// encoding.
func (c *Config) NewRaw(size int) *DBM {
	return c.Universe(size - 1)
}

// RawBottom returns an empty raw matrix with `size` nodes.
func (c *Config) RawBottom(size int) *DBM {
	return c.Bottom(size - 1)
}

// RawSize returns the number of matrix nodes.
func (d *DBM) RawSize() int { return d.n + 1 }

// RawTighten imposes node_i - node_j <= bound.
func (d *DBM) RawTighten(i, j int, bound *big.Int) {
	if d.empty {
		return
	}
	d.setBound(i, j, bound)
}

// RawCell returns the bound at (i, j), nil for +infinity. The result is
// read-only.
func (d *DBM) RawCell(i, j int) *big.Int {
	if d.empty {
		return nil
	}
	return d.cellBig(i, j)
}

// RawCellLE reports whether the bound at (i, j) is finite and <= c.
func (d *DBM) RawCellLE(i, j int, c *big.Int) bool {
	return !d.empty && d.cellLE(i, j, c)
}

// RawClose computes the shortest-path closure (budget-polled and
// incremental exactly like the zone domain's own closure).
func (d *DBM) RawClose() { d.close() }

// MarkEmpty forces the matrix to bottom. The octagon tier uses it when
// its strengthening pass finds a rational contradiction that the integer
// shortest-path closure alone cannot see.
func (d *DBM) MarkEmpty() { d.empty = true }

// DropNode forgets every bound involving node k (row and column), for
// havoc on doubled-variable encodings. The caller is responsible for
// dropping both literals of a variable.
func (d *DBM) DropNode(k int) {
	if d.empty {
		return
	}
	d.dropNode(k)
}

// ShiftOct translates node p by +c and node q by -c, atomically: either
// both shifts land or the matrix is untouched (the machine tier verifies
// overflow up front and rolls back; the exact tier cannot fail). The
// octagon assignment x := x + c is exactly this with p, q the two
// literals of x. Shifts are exact translations, so closure is preserved.
func (d *DBM) ShiftOct(p, q int, c *big.Int) {
	if d.empty || p == q {
		return
	}
	if d.mx == nil && c.IsInt64() && c.Int64() != math.MinInt64 {
		cv := c.Int64()
		if d.shiftNodeW(p, cv) {
			if d.shiftNodeW(q, -cv) {
				return
			}
			d.shiftNodeW(p, -cv) // roll back: -cv is provably in range
		}
	}
	d.promote()
	d.shiftNodeX(p, c)
	d.shiftNodeX(q, new(big.Int).Neg(c))
	d.demote()
}

// StrengthenOct runs the octagon strengthening pass on an (already
// shortest-path-closed) doubled-variable matrix whose literals are
// paired as (2k, 2k+1): every bound m[i][j] is tightened to
// ceil((m[i][i^1] + m[j^1][j]) / 2) when that is smaller, since
// x_i - x_j = ((x_i - x_{i^1}) + (x_{j^1} - x_j)) / 2 for coherent
// octagon encodings. The ceiling (not floor) keeps the result sound
// over the rationals, so exported certificates survive the independent
// Fourier–Motzkin checker. A rational contradiction
// m[i][i^1] + m[i^1][i] < 0 (checked on the raw sums, before halving
// can round -1 up to 0) marks the matrix empty.
func (d *DBM) StrengthenOct() {
	if d.empty || d.RawSize()%2 != 0 {
		return
	}
	if d.cfg.token().Exhausted() {
		return // sound to skip: bounds just stay looser
	}
	if d.mx == nil {
		if d.strengthenOctW() {
			return
		}
		d.promote()
	}
	d.strengthenOctX()
	d.demote()
}

// strengthenOctW is the machine-tier strengthening pass; false means an
// overflow (or sentinel collision) and the caller must replay exactly.
func (d *DBM) strengthenOctW() bool {
	size := d.RawSize()
	ar := d.cfg.ar()
	u := ar.Int64s(size) // u[i] = m[i][i^1], the unary bound row
	defer ar.PutInt64s(u)
	for i := 0; i < size; i++ {
		u[i] = d.wcell(i, i^1)
	}
	for i := 0; i < size; i += 2 {
		a, b := u[i], u[i^1]
		if a == noBound || b == noBound {
			continue
		}
		s, ok := numkernel.AddOK(a, b)
		if !ok {
			return false
		}
		if s < 0 {
			d.empty = true
			return true
		}
	}
	for i := 0; i < size; i++ {
		a := u[i]
		if a == noBound {
			continue
		}
		for j := 0; j < size; j++ {
			if j == i {
				continue
			}
			b := u[j^1]
			if b == noBound {
				continue
			}
			s, ok := numkernel.AddOK(a, b)
			if !ok || s == noBound {
				return false
			}
			half := s / 2
			if s > 0 && s%2 != 0 {
				half++ // ceiling division (int64 / truncates toward zero)
			}
			if d.sp != nil {
				d.sp.tighten(i, j, half)
			} else if half < d.mw[i][j] {
				d.mw[i][j] = half
			}
		}
	}
	return true
}

// strengthenOctX is the exact-tier strengthening pass.
func (d *DBM) strengthenOctX() {
	size := d.RawSize()
	u := make([]*big.Int, size)
	for i := range u {
		u[i] = d.mx[i][i^1]
	}
	for i := 0; i < size; i += 2 {
		if u[i] == nil || u[i^1] == nil {
			continue
		}
		if new(big.Int).Add(u[i], u[i^1]).Sign() < 0 {
			d.empty = true
			return
		}
	}
	two := big.NewInt(2)
	for i := 0; i < size; i++ {
		if u[i] == nil {
			continue
		}
		for j := 0; j < size; j++ {
			if j == i || u[j^1] == nil {
				continue
			}
			s := new(big.Int).Add(u[i], u[j^1])
			// Ceiling of s/2: big.Int Quo truncates toward zero, which
			// is already the ceiling for negative s; positive odd s
			// needs the +1 nudge.
			if s.Sign() > 0 && s.Bit(0) == 1 {
				s.Add(s, bigOne)
			}
			half := new(big.Int).Quo(s, two)
			if d.mx[i][j] == nil || half.Cmp(d.mx[i][j]) < 0 {
				d.mx[i][j] = half
			}
		}
	}
}
