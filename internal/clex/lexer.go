package clex

import (
	"fmt"
	"strconv"
	"strings"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes C source text.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// New returns a lexer over src. file is used for positions only.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Tokenize scans the whole input and returns all tokens up to and including
// the EOF token, or the first lexical error.
func Tokenize(file, src string) ([]Token, error) {
	lx := New(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace consumes whitespace, comments, and preprocessor lines.
// Simple `#define NAME value` integer macros are not expanded here; the
// parser layer handles #define via Preprocess.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return lx.errf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil
	case isDigit(c):
		return lx.number(pos)
	case c == '\'':
		return lx.charLit(pos)
	case c == '"':
		return lx.stringLit(pos)
	}
	return lx.operator(pos)
}

func (lx *Lexer) number(pos Pos) (Token, error) {
	start := lx.off
	base := 10
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		base = 16
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	// Swallow integer suffixes (u, l, ul, ...).
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L':
			lx.advance()
		default:
			goto done
		}
	}
done:
	digits := text
	if base == 16 {
		digits = text[2:]
	}
	v, err := strconv.ParseInt(digits, base, 64)
	if err != nil {
		return Token{}, lx.errf(pos, "bad integer literal %q", text)
	}
	return Token{Kind: IntLit, Text: text, Val: v, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

func (lx *Lexer) escape(pos Pos) (byte, error) {
	if lx.off >= len(lx.src) {
		return 0, lx.errf(pos, "unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case 'x':
		v := 0
		n := 0
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) && n < 2 {
			d, _ := strconv.ParseInt(string(lx.advance()), 16, 32)
			v = v*16 + int(d)
			n++
		}
		if n == 0 {
			return 0, lx.errf(pos, "bad hex escape")
		}
		return byte(v), nil
	}
	return 0, lx.errf(pos, "unknown escape \\%c", c)
}

func (lx *Lexer) charLit(pos Pos) (Token, error) {
	lx.advance() // '
	if lx.off >= len(lx.src) {
		return Token{}, lx.errf(pos, "unterminated character literal")
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.escape(pos)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, lx.errf(pos, "unterminated character literal")
	}
	return Token{Kind: CharLit, Text: string(v), Val: int64(v), Pos: pos}, nil
}

func (lx *Lexer) stringLit(pos Pos) (Token, error) {
	lx.advance() // "
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := lx.escape(pos)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: StringLit, Text: sb.String(), Pos: pos}, nil
}

func (lx *Lexer) operator(pos Pos) (Token, error) {
	c := lx.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '.':
		return Token{Kind: Dot, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '?':
		return Token{Kind: Question, Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: Inc, Pos: pos}, nil
		}
		return two('=', AddEq, Plus), nil
	case '-':
		switch lx.peek() {
		case '-':
			lx.advance()
			return Token{Kind: Dec, Pos: pos}, nil
		case '>':
			lx.advance()
			return Token{Kind: Arrow, Pos: pos}, nil
		}
		return two('=', SubEq, Minus), nil
	case '*':
		return two('=', MulEq, Star), nil
	case '/':
		return two('=', DivEq, Slash), nil
	case '%':
		return two('=', ModEq, Percent), nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		return two('|', OrOr, Pipe), nil
	case '!':
		return two('=', NotEq, Not), nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt), nil
	}
	return Token{}, lx.errf(pos, "unexpected character %q", c)
}

// Preprocess performs the tiny slice of the C preprocessor that the
// benchmark sources need: `#define NAME integer-or-identifier` object macros
// and blank-line removal of all other directives (#include, #ifdef, ...).
// Macro occurrences are substituted textually at token granularity.
func Preprocess(src string) string {
	macros := map[string]string{}
	var out strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(trimmed)
			if len(fields) >= 3 && fields[0] == "#define" {
				macros[fields[1]] = strings.Join(fields[2:], " ")
			}
			out.WriteString("\n") // preserve line numbers
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	if len(macros) == 0 {
		return out.String()
	}
	return substituteMacros(out.String(), macros)
}

// substituteMacros replaces identifier occurrences of macro names outside
// string and character literals and comments.
func substituteMacros(src string, macros map[string]string) string {
	var out strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '"' || c == '\'':
			quote := c
			out.WriteByte(c)
			i++
			for i < len(src) {
				out.WriteByte(src[i])
				if src[i] == '\\' && i+1 < len(src) {
					i++
					out.WriteByte(src[i])
					i++
					continue
				}
				if src[i] == quote {
					i++
					break
				}
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				out.WriteByte(src[i])
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			out.WriteString("/*")
			i += 2
			for i < len(src) && !(src[i] == '*' && i+1 < len(src) && src[i+1] == '/') {
				out.WriteByte(src[i])
				i++
			}
			if i < len(src) {
				out.WriteString("*/")
				i += 2
			}
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentCont(src[i]) {
				i++
			}
			word := src[start:i]
			if rep, ok := macros[word]; ok {
				out.WriteString(rep)
			} else {
				out.WriteString(word)
			}
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}
