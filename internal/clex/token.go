// Package clex implements lexical analysis for the C subset that CSSV
// analyzes, plus the contract-language keywords (requires, modifies,
// ensures and the attribute functions of paper Table 1).
package clex

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation kinds are named after their spelling.
const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit
	StringLit

	// Keywords.
	KwVoid
	KwChar
	KwInt
	KwLong
	KwShort
	KwUnsigned
	KwSigned
	KwStruct
	KwUnion
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwGoto
	KwSizeof
	KwExtern
	KwStatic
	KwConst
	KwTypedef
	KwAlignas

	// Contract keywords (only meaningful after a prototype or in .h files).
	KwRequires
	KwModifies
	KwEnsures

	// CSSV verification intrinsics (emitted by the inliner, accepted by the
	// parser so inlined programs round-trip through the printer).
	KwAssert
	KwAssume

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Inc      // ++
	Dec      // --
	Amp      // &
	Star     // *
	Plus     // +
	Minus    // -
	Tilde    // ~
	Not      // !
	Slash    // /
	Percent  // %
	Shl      // <<
	Shr      // >>
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	Caret    // ^
	Pipe     // |
	AndAnd   // &&
	OrOr     // ||
	Question // ?
	Colon    // :
	Assign   // =
	AddEq    // +=
	SubEq    // -=
	MulEq    // *=
	DivEq    // /=
	ModEq    // %=
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	CharLit: "character literal", StringLit: "string literal",
	KwVoid: "void", KwChar: "char", KwInt: "int", KwLong: "long",
	KwShort: "short", KwUnsigned: "unsigned", KwSigned: "signed",
	KwStruct: "struct", KwUnion: "union", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwDo: "do", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwGoto: "goto",
	KwSizeof: "sizeof", KwExtern: "extern", KwStatic: "static",
	KwConst: "const", KwTypedef: "typedef", KwAlignas: "_Alignas",
	KwRequires: "requires", KwModifies: "modifies", KwEnsures: "ensures",
	KwAssert: "assert", KwAssume: "assume",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Arrow: "->", Inc: "++", Dec: "--", Amp: "&", Star: "*", Plus: "+",
	Minus: "-", Tilde: "~", Not: "!", Slash: "/", Percent: "%",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", Caret: "^", Pipe: "|", AndAnd: "&&",
	OrOr: "||", Question: "?", Colon: ":", Assign: "=",
	AddEq: "+=", SubEq: "-=", MulEq: "*=", DivEq: "/=", ModEq: "%=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "int": KwInt, "long": KwLong,
	"short": KwShort, "unsigned": KwUnsigned, "signed": KwSigned,
	"struct": KwStruct, "union": KwUnion, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "do": KwDo, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "goto": KwGoto,
	"sizeof": KwSizeof, "extern": KwExtern, "static": KwStatic,
	"const": KwConst, "typedef": KwTypedef, "_Alignas": KwAlignas,
	"requires": KwRequires, "modifies": KwModifies, "ensures": KwEnsures,
	"__assert": KwAssert, "__assume": KwAssume,
}

// Pos is a position in a source file.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for Ident/IntLit; decoded value for CharLit/StringLit
	Val  int64  // numeric value for IntLit and CharLit
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit:
		return t.Text
	case CharLit:
		return fmt.Sprintf("%q", rune(t.Val))
	case StringLit:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}
