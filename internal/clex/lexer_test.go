package clex

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	var ks []Kind
	for _, tok := range toks {
		ks = append(ks, tok.Kind)
	}
	return ks
}

func TestTokenKinds(t *testing.T) {
	got := kinds(t, "int x = 42; char *p;")
	want := []Kind{KwInt, Ident, Assign, IntLit, Semi, KwChar, Star, Ident, Semi, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := "== != <= >= << >> && || ++ -- -> += -= *= /= %= . ? : ~ ^ & |"
	want := []Kind{EqEq, NotEq, Le, Ge, Shl, Shr, AndAnd, OrOr, Inc, Dec,
		Arrow, AddEq, SubEq, MulEq, DivEq, ModEq, Dot, Question, Colon,
		Tilde, Caret, Amp, Pipe, EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", `0x1F 42 'a' '\n' '\0' '\\' "hi\tthere" "\x41"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 31 || toks[1].Val != 42 {
		t.Errorf("int values: %d %d", toks[0].Val, toks[1].Val)
	}
	if toks[2].Val != 'a' || toks[3].Val != '\n' || toks[4].Val != 0 || toks[5].Val != '\\' {
		t.Errorf("char values: %d %d %d %d", toks[2].Val, toks[3].Val, toks[4].Val, toks[5].Val)
	}
	if toks[6].Text != "hi\tthere" {
		t.Errorf("string: %q", toks[6].Text)
	}
	if toks[7].Text != "A" {
		t.Errorf("hex escape: %q", toks[7].Text)
	}
}

func TestIntSuffixes(t *testing.T) {
	toks, err := Tokenize("t.c", "10UL 7u 3L")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 10 || toks[1].Val != 7 || toks[2].Val != 3 {
		t.Errorf("suffixed ints: %v %v %v", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a /* block\ncomment */ b // line\nc")
	want := []Kind{Ident, Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("comments not skipped: %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("f.c", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "f.c:2:3" {
		t.Errorf("pos string %q", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "/* unterminated", "@", `'\q'`} {
		if _, err := Tokenize("t.c", src); err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestPreprocessDefine(t *testing.T) {
	src := "#define SIZE 64\n#define HALF 32\nchar buf[SIZE]; int h = HALF;\n"
	out := Preprocess(src)
	if !strings.Contains(out, "buf[64]") || !strings.Contains(out, "h = 32") {
		t.Errorf("macro expansion failed:\n%s", out)
	}
	// Lines are preserved for positions.
	if strings.Count(out, "\n") < 3 {
		t.Error("line structure lost")
	}
}

func TestPreprocessProtectsStringsAndComments(t *testing.T) {
	src := "#define X 9\nchar *s = \"X\"; /* X */ int y = X;\n"
	out := Preprocess(src)
	if !strings.Contains(out, `"X"`) {
		t.Errorf("macro expanded inside string:\n%s", out)
	}
	if !strings.Contains(out, "y = 9") {
		t.Errorf("macro not expanded in code:\n%s", out)
	}
}

func TestPreprocessDropsOtherDirectives(t *testing.T) {
	out := Preprocess("#include <string.h>\nint x;\n")
	if strings.Contains(out, "include") {
		t.Errorf("directive kept: %s", out)
	}
	if !strings.Contains(out, "int x;") {
		t.Error("code lost")
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Tokenize("t.c", `name 7 'x' "s" +`)
	for i, want := range []string{"name", "7", "'x'", `"s"`, "+"} {
		if got := toks[i].String(); got != want {
			t.Errorf("token %d String = %q, want %q", i, got, want)
		}
	}
}
