// Package arena provides a run-scoped free-list allocator for the fixed
// slice shapes the numeric substrates churn through: int64 coefficient
// vectors and DBM rows, and uint64 saturation bitsets. It exists to
// eliminate the per-operation allocation counts BENCH_numeric.json
// records on the Chernikova and closure hot paths.
//
// An Arena is instance-based per-run state, exactly like the substrate
// Configs that carry it: there is no package-level pool, so concurrent
// analyses cannot share (or race on) recycled memory — `globalmut`
// stays clean by construction. It is NOT safe for concurrent use; the
// driver creates one arena per procedure and frees the whole thing at
// the procedure boundary by dropping the reference.
//
// A nil *Arena is valid and means "no recycling": every method falls
// back to plain make/garbage collection, so default-configured
// substrates behave exactly as before.
//
// Ownership discipline: a slice handed to PutInt64s/PutUint64s must be
// provably dead — no other live structure may reference it. The
// substrate release points are enumerated case by case in DESIGN.md §9;
// the differential fuzzers run with the arena enabled so an aliasing
// mistake shows up as a divergence from the reference kernel.
package arena

// smallCaps bounds the capacities served from the direct-indexed free
// lists; the hot shapes (vector length dim+1, bitset word counts) are
// far below it, so the per-Get/Put cost is an array index, not a map
// lookup. Larger capacities fall back to map-bucketed lists.
const smallCaps = 128

// Arena recycles []int64 and []uint64 backing stores. Free lists are
// bucketed by exact capacity: the substrates allocate in a handful of
// uniform sizes per run, so exact matching recycles nearly everything
// without fit heuristics.
type Arena struct {
	smallI [smallCaps][][]int64
	smallU [smallCaps][][]uint64
	bigI   map[int][][]int64
	bigU   map[int][][]uint64

	recycled int64
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{}
}

// Int64s returns a zeroed []int64 of length n, recycled when a slice of
// that exact capacity is free.
func (a *Arena) Int64s(n int) []int64 {
	s := a.Int64sUninit(n)
	if a != nil {
		clear(s)
	}
	return s
}

// Int64sUninit is Int64s without the zeroing guarantee: recycled slices
// keep their previous contents. For callers that overwrite every entry.
func (a *Arena) Int64sUninit(n int) []int64 {
	if a == nil || n == 0 {
		return make([]int64, n)
	}
	var fl *[][]int64
	if n < smallCaps {
		fl = &a.smallI[n]
	} else if a.bigI != nil {
		if s, ok := a.popBigI(n); ok {
			return s
		}
		return make([]int64, n)
	} else {
		return make([]int64, n)
	}
	k := len(*fl)
	if k == 0 {
		return make([]int64, n)
	}
	s := (*fl)[k-1]
	(*fl)[k-1] = nil
	*fl = (*fl)[:k-1]
	a.recycled += int64(n) * 8
	return s
}

func (a *Arena) popBigI(n int) ([]int64, bool) {
	fl := a.bigI[n]
	k := len(fl)
	if k == 0 {
		return nil, false
	}
	s := fl[k-1]
	fl[k-1] = nil
	a.bigI[n] = fl[:k-1]
	a.recycled += int64(n) * 8
	return s, true
}

// PutInt64s returns s to the free list. The caller asserts nothing else
// references s.
func (a *Arena) PutInt64s(s []int64) {
	if a == nil || cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	if len(s) < smallCaps {
		a.smallI[len(s)] = append(a.smallI[len(s)], s)
		return
	}
	if a.bigI == nil {
		a.bigI = make(map[int][][]int64)
	}
	a.bigI[len(s)] = append(a.bigI[len(s)], s)
}

// Uint64s returns a zeroed []uint64 of length n, recycled when a slice
// of that exact capacity is free.
func (a *Arena) Uint64s(n int) []uint64 {
	s := a.Uint64sUninit(n)
	if a != nil {
		clear(s)
	}
	return s
}

// Uint64sUninit is Uint64s without the zeroing guarantee: recycled
// slices keep their previous contents.
func (a *Arena) Uint64sUninit(n int) []uint64 {
	if a == nil || n == 0 {
		return make([]uint64, n)
	}
	var fl *[][]uint64
	if n < smallCaps {
		fl = &a.smallU[n]
	} else if a.bigU != nil {
		if s, ok := a.popBigU(n); ok {
			return s
		}
		return make([]uint64, n)
	} else {
		return make([]uint64, n)
	}
	k := len(*fl)
	if k == 0 {
		return make([]uint64, n)
	}
	s := (*fl)[k-1]
	(*fl)[k-1] = nil
	*fl = (*fl)[:k-1]
	a.recycled += int64(n) * 8
	return s
}

func (a *Arena) popBigU(n int) ([]uint64, bool) {
	fl := a.bigU[n]
	k := len(fl)
	if k == 0 {
		return nil, false
	}
	s := fl[k-1]
	fl[k-1] = nil
	a.bigU[n] = fl[:k-1]
	a.recycled += int64(n) * 8
	return s, true
}

// PutUint64s returns s to the free list. The caller asserts nothing
// else references s.
func (a *Arena) PutUint64s(s []uint64) {
	if a == nil || cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	if len(s) < smallCaps {
		a.smallU[len(s)] = append(a.smallU[len(s)], s)
		return
	}
	if a.bigU == nil {
		a.bigU = make(map[int][][]uint64)
	}
	a.bigU[len(s)] = append(a.bigU[len(s)], s)
}

// Recycled returns the number of bytes served out of the free lists so
// far. The count is deterministic for a single-goroutine run: recycling
// decisions depend only on the operation sequence, never on timing.
func (a *Arena) Recycled() int64 {
	if a == nil {
		return 0
	}
	return a.recycled
}
