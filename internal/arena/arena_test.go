package arena

import "testing"

func TestNilArena(t *testing.T) {
	var a *Arena
	s := a.Int64s(4)
	if len(s) != 4 {
		t.Fatalf("nil arena Int64s: len %d", len(s))
	}
	a.PutInt64s(s)
	u := a.Uint64s(2)
	if len(u) != 2 {
		t.Fatalf("nil arena Uint64s: len %d", len(u))
	}
	a.PutUint64s(u)
	if a.Recycled() != 0 {
		t.Fatalf("nil arena recycled %d", a.Recycled())
	}
}

func TestRecycleZeroesAndCounts(t *testing.T) {
	a := New()
	s := a.Int64s(3)
	s[0], s[1], s[2] = 7, 8, 9
	a.PutInt64s(s)
	if got := a.Recycled(); got != 0 {
		t.Fatalf("recycled before reuse: %d", got)
	}
	r := a.Int64s(3)
	if &r[0] != &s[0] {
		t.Fatalf("expected recycled backing store")
	}
	for i, x := range r {
		if x != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %d", i, x)
		}
	}
	if got := a.Recycled(); got != 24 {
		t.Fatalf("recycled bytes = %d, want 24", got)
	}
	// A different size misses the free list.
	q := a.Int64s(4)
	if len(q) != 4 || a.Recycled() != 24 {
		t.Fatalf("size-4 get should be a fresh allocation")
	}

	u := a.Uint64s(2)
	u[0] = 1
	a.PutUint64s(u)
	w := a.Uint64s(2)
	if &w[0] != &u[0] || w[0] != 0 {
		t.Fatalf("uint64 recycling broken")
	}
	if got := a.Recycled(); got != 40 {
		t.Fatalf("recycled bytes = %d, want 40", got)
	}
}

func TestPutTruncatedSliceRestoresCap(t *testing.T) {
	a := New()
	s := a.Int64s(8)
	a.PutInt64s(s[:3]) // stored under its capacity, not its length
	r := a.Int64s(8)
	if &r[0] != &s[0] {
		t.Fatalf("truncated put should land in the cap bucket")
	}
}
