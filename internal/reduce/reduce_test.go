package reduce

import (
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/linear"
)

// eq builds the constraint a - b = 0 over variable indices.
func eq(a, b int) linear.Constraint {
	return linear.NewEq(linear.VarExpr(a).Sub(linear.VarExpr(b)))
}

func geZero(v int) linear.Constraint { return linear.NewGe(linear.VarExpr(v)) }

func TestPruneUnreachable(t *testing.T) {
	p := ip.New("prune")
	x, y := p.Space.Var("x"), p.Space.Var("y")
	p.Emit(&ip.Goto{Target: "L"})
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "dead"})
	p.Emit(&ip.Assign{V: y, E: linear.ConstExpr(1)})
	p.Emit(&ip.Label{Name: "L"})
	p.Emit(&ip.Assert{C: ip.Single(geZero(y)), Msg: "live"})

	out, m, err := PruneUnreachable(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Asserts()); got != 1 {
		t.Fatalf("asserts after pruning = %d, want 1 (only the reachable one)", got)
	}
	a := out.Stmts[out.Asserts()[0]].(*ip.Assert)
	if a.Msg != "live" {
		t.Errorf("kept assert %q, want the reachable %q", a.Msg, "live")
	}
	if m[out.Asserts()[0]] != 4 {
		t.Errorf("stmt map: live assert maps to %d, want 4", m[out.Asserts()[0]])
	}
	if out.Size() != 3 { // goto, label, assert
		t.Errorf("pruned size = %d, want 3", out.Size())
	}
}

func TestPrunePreservesAllReachableAsserts(t *testing.T) {
	p := ip.New("branches")
	x := p.Space.Var("x")
	p.Emit(&ip.IfGoto{Target: "A"}) // nondeterministic: both arms reachable
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "fall"})
	p.Emit(&ip.Goto{Target: "End"})
	p.Emit(&ip.Label{Name: "A"})
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "taken"})
	p.Emit(&ip.Label{Name: "End"})

	out, _, err := PruneUnreachable(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Asserts()); got != 2 {
		t.Fatalf("asserts = %d, want both reachable arms", got)
	}
	if out.Size() != p.Size() {
		t.Errorf("fully reachable program shrank: %d -> %d", p.Size(), out.Size())
	}
}

func TestPropagateCollapsesChains(t *testing.T) {
	p := ip.New("chain")
	x, y, z := p.Space.Var("x"), p.Space.Var("y"), p.Space.Var("z")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(3)})
	e := linear.VarExpr(x)
	e.Const.SetInt64(1)
	p.Emit(&ip.Assign{V: y, E: e}) // y := x + 1 -> y := 4
	p.Emit(&ip.Assume{C: ip.Single(eq(z, y))})

	out, err := Propagate(p)
	if err != nil {
		t.Fatal(err)
	}
	ay := out.Stmts[1].(*ip.Assign)
	if !ay.E.IsConst() || ay.E.Const.Int64() != 4 {
		t.Errorf("y := %s, want the folded constant 4", ay.E.String(out.Space))
	}
	as := out.Stmts[2].(*ip.Assume)
	vars := as.C[0][0].E.Vars()
	if len(vars) != 1 || vars[0] != z {
		t.Errorf("assume mentions %v, want only z (y substituted by 4)", vars)
	}
}

func TestPropagateNeverCrossesHavoc(t *testing.T) {
	p := ip.New("havoc")
	x, y := p.Space.Var("x"), p.Space.Var("y")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(3)})
	p.Emit(&ip.Havoc{V: x})
	p.Emit(&ip.Assume{C: ip.Single(eq(y, x))})

	out, err := Propagate(p)
	if err != nil {
		t.Fatal(err)
	}
	as := out.Stmts[2].(*ip.Assume)
	mentionsX := false
	for _, v := range as.C[0][0].E.Vars() {
		if v == x {
			mentionsX = true
		}
	}
	if !mentionsX {
		t.Errorf("assume rewritten to %s: the binding x=3 leaked across the havoc",
			as.C.String(out.Space))
	}
}

func TestPropagateStopsAtLabels(t *testing.T) {
	p := ip.New("label")
	x, y := p.Space.Var("x"), p.Space.Var("y")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(3)})
	p.Emit(&ip.Label{Name: "L"}) // join point: a back edge could reach here
	p.Emit(&ip.Assume{C: ip.Single(eq(y, x))})

	out, err := Propagate(p)
	if err != nil {
		t.Fatal(err)
	}
	as := out.Stmts[2].(*ip.Assume)
	if len(as.C[0][0].E.Vars()) != 2 {
		t.Errorf("assume rewritten to %s: binding crossed a join point",
			as.C.String(out.Space))
	}
}

func TestPropagateLeavesAssertsAlone(t *testing.T) {
	p := ip.New("assert")
	x := p.Space.Var("x")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(3)})
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "m"})

	out, err := Propagate(p)
	if err != nil {
		t.Fatal(err)
	}
	a := out.Stmts[1].(*ip.Assert)
	if len(a.C[0][0].E.Vars()) != 1 {
		t.Errorf("assert condition rewritten to %s; reports must keep the "+
			"original variables", a.C.String(out.Space))
	}
}

func TestEliminateDeadVars(t *testing.T) {
	p := ip.New("dead")
	x, y, z := p.Space.Var("x"), p.Space.Var("y"), p.Space.Var("z")
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(5)}) // only feeds y
	p.Emit(&ip.Assign{V: y, E: linear.VarExpr(x)})   // never read
	p.Emit(&ip.Havoc{V: z})
	p.Emit(&ip.Assert{C: ip.Single(geZero(z)), Msg: "m"})

	out, m, err := EliminateDeadVars(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("size = %d, want 2 (x and y chains are dead)", out.Size())
	}
	if _, ok := out.Stmts[0].(*ip.Havoc); !ok {
		t.Errorf("stmt 0 = %T, want the havoc of the read variable", out.Stmts[0])
	}
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("stmt map = %v, want [2 3]", m)
	}
	_, _, _ = x, y, z
}

// TestSliceTransitiveDeps: the cone must follow dataflow through assumes
// (which couple their variables) and survive nondeterministic branches.
func TestSliceTransitiveDeps(t *testing.T) {
	p := ip.New("slice")
	a, b, c := p.Space.Var("a"), p.Space.Var("b"), p.Space.Var("c")
	d := p.Space.Var("d")
	p.Emit(&ip.Havoc{V: a})
	p.Emit(&ip.Assume{C: ip.Single(eq(b, a))}) // couples b to a
	e := linear.VarExpr(b)
	e.Const.SetInt64(1)
	p.Emit(&ip.Assign{V: c, E: e}) // c := b + 1
	p.Emit(&ip.IfGoto{Target: "L"})
	p.Emit(&ip.Assign{V: d, E: linear.ConstExpr(99)}) // no dataflow to c
	p.Emit(&ip.Label{Name: "L"})
	p.Emit(&ip.Assert{C: ip.Single(geZero(c)), Msg: "target"})

	target := p.Asserts()[0]
	out, sm, err := Slice(p, []int{target})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVars() != 3 {
		t.Fatalf("sliced vars = %d (%v), want {a,b,c}", out.NumVars(), out.Space.Names())
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, ok := out.Space.Lookup(name); !ok {
			t.Errorf("cone lost %s (transitive dep through the assume)", name)
		}
	}
	if _, ok := out.Space.Lookup("d"); ok {
		t.Error("d kept despite having no dataflow into the check")
	}
	if out.Size() != p.Size()-1 {
		t.Errorf("sliced size = %d, want %d (only d's assignment dropped)",
			out.Size(), p.Size()-1)
	}
	if sm.Var[sm.VarOf[a]] != a || sm.StmtOf[target] != out.Asserts()[0] {
		t.Error("slice maps are not mutually inverse")
	}
	_, _, _ = a, b, c
}

// TestSliceControlClosure: branch guards stay in the cone even without
// dataflow into the target, so the slice's paths (and widening cadence)
// match the full program's.
func TestSliceControlClosure(t *testing.T) {
	p := ip.New("guards")
	g, x := p.Space.Var("g"), p.Space.Var("x")
	p.Emit(&ip.Assign{V: g, E: linear.ConstExpr(5)})
	p.Emit(&ip.IfGoto{C: ip.Single(geZero(g)), Target: "L"})
	p.Emit(&ip.Assign{V: x, E: linear.ConstExpr(1)})
	p.Emit(&ip.Label{Name: "L"})
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "target"})

	out, _, err := Slice(p, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Space.Lookup("g"); !ok {
		t.Fatal("guard variable dropped from the cone")
	}
	br := out.Stmts[1].(*ip.IfGoto)
	if br.C == nil {
		t.Error("guard became nondeterministic; control closure must keep it")
	}
	if out.Size() != p.Size() {
		t.Errorf("size = %d, want %d (guard definition must be kept)", out.Size(), p.Size())
	}
}

func TestSliceDropsDecoupledAssumes(t *testing.T) {
	p := ip.New("assumes")
	x, noise := p.Space.Var("x"), p.Space.Var("noise")
	p.Emit(&ip.Assume{C: ip.Single(geZero(noise))})
	p.Emit(&ip.Assume{C: ip.Single(geZero(x))})
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "target"})

	out, _, err := Slice(p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVars() != 1 || out.Size() != 2 {
		t.Errorf("slice = %d vars x %d stmts, want 1x2 (noise dropped):\n%s",
			out.NumVars(), out.Size(), out.String())
	}
	if !strings.Contains(out.String(), "x >= 0") {
		t.Errorf("coupled assume lost:\n%s", out.String())
	}
}

// TestReduceComposedMap: Reduce's statement map must point back into the
// original program.
func TestReduceComposedMap(t *testing.T) {
	p := ip.New("compose")
	x, y := p.Space.Var("x"), p.Space.Var("y")
	p.Emit(&ip.Goto{Target: "L"})
	p.Emit(&ip.Assign{V: y, E: linear.ConstExpr(0)}) // unreachable
	p.Emit(&ip.Label{Name: "L"})
	p.Emit(&ip.Assign{V: y, E: linear.ConstExpr(7)}) // dead (y never read)
	p.Emit(&ip.Assert{C: ip.Single(geZero(x)), Msg: "m"})

	out, m, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	idx := out.Asserts()
	if len(idx) != 1 {
		t.Fatalf("asserts = %d, want 1", len(idx))
	}
	if m[idx[0]] != 4 {
		t.Errorf("composed map sends the assert to %d, want 4", m[idx[0]])
	}
}
