// Package reduce implements sound IP-level static-analysis passes over the
// integer programs of C2IP: unreachable-node pruning of the IP CFG,
// block-local constant/copy propagation on x := linexpr chains, dead
// constraint-variable elimination, and per-assertion backward slicing
// (cone of influence over constraint variables).
//
// The passes feed the tiered check-discharge cascade (internal/analysis):
// every pass is sound for discharging — a property proven on the reduced
// program holds on the original — because pruning only removes statements
// no execution reaches, propagation only substitutes equalities that hold
// at the substitution point, dead-variable elimination only removes
// updates no check observes, and slicing only removes statements with no
// dataflow into the checked conditions (dropping an assume or making a
// branch nondeterministic over-approximates the reachable states).
package reduce

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/linear"
)

// StmtMap maps statement indices of a reduced program back to the program
// it was derived from (new index -> old index).
type StmtMap []int

// Compose chains m (new -> mid) with outer (mid -> old).
func (m StmtMap) Compose(outer StmtMap) StmtMap {
	out := make(StmtMap, len(m))
	for i, mid := range m {
		out[i] = outer[mid]
	}
	return out
}

// Identity returns the identity map over n statements.
func Identity(n int) StmtMap {
	m := make(StmtMap, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// ---------------------------------------------------------------------------
// Unreachable-node pruning

// PruneUnreachable removes every statement the IP CFG cannot reach from the
// entry. All reachable statements — in particular all reachable asserts —
// are preserved verbatim, so the pass is exact: the pruned program has the
// same executions as the original.
func PruneUnreachable(p *ip.Program) (*ip.Program, StmtMap, error) {
	if err := p.Resolve(); err != nil {
		return nil, nil, err
	}
	n := len(p.Stmts)
	succ := p.CFG()
	reach := make([]bool, n+1)
	stack := []int{0}
	if n == 0 {
		stack = nil
	}
	reach[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i >= n {
			continue
		}
		for _, e := range succ[i] {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}

	out := &ip.Program{Name: p.Name, Space: p.Space}
	var m StmtMap
	for i, s := range p.Stmts {
		if !reach[i] {
			continue
		}
		if i < p.PreludeEnd {
			out.PreludeEnd++
		}
		out.Emit(s)
		m = append(m, i)
	}
	if err := out.Resolve(); err != nil {
		return nil, nil, fmt.Errorf("reduce: prune broke labels: %w", err)
	}
	return out, m, nil
}

// ---------------------------------------------------------------------------
// Constant / copy propagation

// Propagate performs block-local constant and copy propagation on
// x := linexpr chains: within each basic block, the right-hand sides of
// assignments and the conditions of assumes and branches are rewritten
// under the equalities established by earlier assignments of the block.
// Bindings are invalidated by any assignment or havoc of a variable they
// mention — propagation never crosses a havoc — and discarded at labels
// (join points). Assert conditions are deliberately left untouched so
// reports (messages and counter-example variable sets) are identical to
// the unreduced program's.
//
// The statement count and indices are unchanged; only expressions are
// rewritten.
func Propagate(p *ip.Program) (*ip.Program, error) {
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	out := &ip.Program{Name: p.Name, Space: p.Space, PreludeEnd: p.PreludeEnd}
	env := map[int]linear.Expr{}
	kill := func(v int) {
		delete(env, v)
		for u, e := range env {
			for _, w := range e.Vars() {
				if w == v {
					delete(env, u)
					break
				}
			}
		}
	}
	subst := func(e linear.Expr) linear.Expr {
		r := e
		for _, v := range e.Vars() {
			if b, ok := env[v]; ok {
				r = r.Subst(v, b)
			}
		}
		return r
	}
	substDNF := func(d ip.DNF) ip.DNF {
		if d.IsTrue() || d.IsFalse() {
			return d
		}
		r := make(ip.DNF, len(d))
		for i, conj := range d {
			r[i] = make([]linear.Constraint, len(conj))
			for j, c := range conj {
				r[i][j] = linear.Constraint{E: subst(c.E), Rel: c.Rel}
			}
		}
		return r
	}

	for _, s := range p.Stmts {
		switch s := s.(type) {
		case *ip.Assign:
			e := subst(s.E)
			kill(s.V)
			out.Emit(&ip.Assign{V: s.V, E: e})
			// Bind only when the new value does not depend on the old one
			// (x := x+1 establishes no reusable equality).
			selfRef := false
			for _, v := range e.Vars() {
				if v == s.V {
					selfRef = true
					break
				}
			}
			if !selfRef {
				env[s.V] = e
			}
		case *ip.Havoc:
			kill(s.V)
			out.Emit(s)
		case *ip.Assume:
			out.Emit(&ip.Assume{C: substDNF(s.C)})
		case *ip.Assert:
			out.Emit(s) // never rewritten: report fidelity
		case *ip.IfGoto:
			ns := &ip.IfGoto{Target: s.Target}
			if s.C != nil {
				ns.C = substDNF(s.C)
			}
			if s.FalseC != nil {
				ns.FalseC = substDNF(s.FalseC)
			}
			out.Emit(ns)
		case *ip.Goto:
			out.Emit(s)
			// The next statement is only reachable through a label; its
			// block starts fresh anyway, but clear defensively.
			env = map[int]linear.Expr{}
		case *ip.Label:
			env = map[int]linear.Expr{}
			out.Emit(s)
		default:
			out.Emit(s)
		}
	}
	if err := out.Resolve(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Dead constraint-variable elimination

// EliminateDeadVars removes assignments and havocs to constraint variables
// that no condition, assert, or surviving right-hand side ever reads,
// iterating to a fixpoint (removing a dead assignment may kill the last
// read of another variable). The observable behavior — every condition
// evaluated, every assert checked — is unchanged.
func EliminateDeadVars(p *ip.Program) (*ip.Program, StmtMap, error) {
	if err := p.Resolve(); err != nil {
		return nil, nil, err
	}
	dead := make([]bool, len(p.Stmts))
	for {
		read := map[int]bool{}
		markExpr := func(e linear.Expr) {
			for _, v := range e.Vars() {
				read[v] = true
			}
		}
		markDNF := func(d ip.DNF) {
			for _, conj := range d {
				for _, c := range conj {
					markExpr(c.E)
				}
			}
		}
		for i, s := range p.Stmts {
			if dead[i] {
				continue
			}
			switch s := s.(type) {
			case *ip.Assign:
				markExpr(s.E)
			case *ip.Assume:
				markDNF(s.C)
			case *ip.Assert:
				markDNF(s.C)
			case *ip.IfGoto:
				markDNF(s.C)
				markDNF(s.FalseC)
			}
		}
		changed := false
		for i, s := range p.Stmts {
			if dead[i] {
				continue
			}
			switch s := s.(type) {
			case *ip.Assign:
				if !read[s.V] {
					dead[i] = true
					changed = true
				}
			case *ip.Havoc:
				if !read[s.V] {
					dead[i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	out := &ip.Program{Name: p.Name, Space: p.Space}
	var m StmtMap
	for i, s := range p.Stmts {
		if dead[i] {
			continue
		}
		if i < p.PreludeEnd {
			out.PreludeEnd++
		}
		out.Emit(s)
		m = append(m, i)
	}
	if err := out.Resolve(); err != nil {
		return nil, nil, err
	}
	return out, m, nil
}

// Reduce applies the exactness-preserving passes in order: unreachable-node
// pruning, constant/copy propagation, dead-variable elimination.
func Reduce(p *ip.Program) (*ip.Program, StmtMap, error) {
	pruned, pm, err := PruneUnreachable(p)
	if err != nil {
		return nil, nil, err
	}
	prop, err := Propagate(pruned)
	if err != nil {
		return nil, nil, err
	}
	out, dm, err := EliminateDeadVars(prop)
	if err != nil {
		return nil, nil, err
	}
	return out, dm.Compose(pm), nil
}
