package reduce

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/linear"
)

// SliceMap relates a sliced program to the program it was cut from.
type SliceMap struct {
	// Stmt maps sliced statement indices to source indices.
	Stmt StmtMap
	// StmtOf maps source statement indices to sliced indices (kept
	// statements only).
	StmtOf map[int]int
	// Var maps sliced variable indices to source indices.
	Var []int
	// VarOf maps source variable indices to sliced indices (kept variables
	// only).
	VarOf map[int]int
}

// Slice computes the backward cone of influence of the target assert
// statements and returns the sub-program restricted to it, with the
// variable space compacted to the cone's variables (names preserved).
//
// The cone is the least fixpoint of:
//   - the variables of every target assert condition are relevant;
//   - the variables of every branch condition are relevant (control
//     closure: guards decide path feasibility and the widening cadence at
//     loop heads, so dropping one would change the fixpoint the remaining
//     variables reach — sound, but no longer bit-identical to a run over
//     the full program);
//   - an assignment to a relevant variable makes its right-hand side's
//     variables relevant;
//   - an assume or assert condition mentioning a relevant variable makes
//     all of its variables relevant (conditions couple the variables they
//     mention, and path feasibility flows through them).
//
// Statement selection: control structure (labels, gotos, branches with
// their guards) is kept in full, so every path of the original maps to a
// path of the slice. Assumes outside the cone are dropped — an
// over-approximation of the reachable states, so a property proven on the
// slice holds on the original. Assignments and havocs of irrelevant
// variables are dropped; they cannot affect the cone because any dataflow
// back into it would have pulled their targets in. Non-target asserts
// inside the cone are kept (the engine refines the state at an assert,
// and the slice preserves that transfer) but should not be re-checked:
// pass the sliced target indices as Options.CheckOnly.
func Slice(p *ip.Program, targets []int) (*ip.Program, *SliceMap, error) {
	if err := p.Resolve(); err != nil {
		return nil, nil, err
	}
	isTarget := map[int]bool{}
	rel := map[int]bool{}
	for _, idx := range targets {
		a, ok := p.Stmts[idx].(*ip.Assert)
		if !ok {
			return nil, nil, fmt.Errorf("reduce: slice target %d is not an assert", idx)
		}
		isTarget[idx] = true
		markDNFVars(a.C, rel)
	}
	// Control closure: branch guards are always part of the cone.
	for _, s := range p.Stmts {
		if g, ok := s.(*ip.IfGoto); ok {
			markDNFVars(g.C, rel)
			markDNFVars(g.FalseC, rel)
		}
	}

	// Cone closure.
	for changed := true; changed; {
		changed = false
		grow := func(n int) {
			if n > 0 {
				changed = true
			}
		}
		for i, s := range p.Stmts {
			switch s := s.(type) {
			case *ip.Assign:
				if rel[s.V] {
					grow(addExprVars(s.E, rel))
				}
			case *ip.Assume:
				if mentionsDNF(s.C, rel) {
					grow(addDNFVars(s.C, rel))
				}
			case *ip.Assert:
				if isTarget[i] || mentionsDNF(s.C, rel) {
					grow(addDNFVars(s.C, rel))
				}
			case *ip.IfGoto:
				if mentionsDNF(s.C, rel) || mentionsDNF(s.FalseC, rel) {
					grow(addDNFVars(s.C, rel))
					grow(addDNFVars(s.FalseC, rel))
				}
			}
		}
	}

	// Compact the variable space: keep cone variables in index order.
	sm := &SliceMap{StmtOf: map[int]int{}, VarOf: map[int]int{}}
	space := linear.NewSpace()
	for v := 0; v < p.NumVars(); v++ {
		if rel[v] {
			sm.VarOf[v] = space.Var(p.Space.Name(v))
			sm.Var = append(sm.Var, v)
		}
	}

	out := &ip.Program{Name: p.Name, Space: space}
	keep := func(i int, s ip.Stmt) {
		if i < p.PreludeEnd {
			out.PreludeEnd++
		}
		sm.StmtOf[i] = len(out.Stmts)
		sm.Stmt = append(sm.Stmt, i)
		out.Emit(s)
	}
	for i, s := range p.Stmts {
		switch s := s.(type) {
		case *ip.Label, *ip.Goto:
			keep(i, s)
		case *ip.IfGoto:
			if s.C != nil && (mentionsDNF(s.C, rel) || mentionsDNF(s.FalseC, rel)) {
				keep(i, &ip.IfGoto{
					C:      remapDNF(s.C, sm.VarOf),
					FalseC: remapDNF(s.FalseC, sm.VarOf),
					Target: s.Target,
				})
			} else {
				// Outside the cone (or already nondeterministic): keep the
				// edge, drop the guard.
				keep(i, &ip.IfGoto{Target: s.Target})
			}
		case *ip.Assign:
			if rel[s.V] {
				keep(i, &ip.Assign{V: sm.VarOf[s.V], E: remapExpr(s.E, sm.VarOf)})
			}
		case *ip.Havoc:
			if rel[s.V] {
				keep(i, &ip.Havoc{V: sm.VarOf[s.V]})
			}
		case *ip.Assume:
			if mentionsDNF(s.C, rel) || s.C.IsFalse() {
				keep(i, &ip.Assume{C: remapDNF(s.C, sm.VarOf)})
			}
		case *ip.Assert:
			if isTarget[i] || mentionsDNF(s.C, rel) {
				keep(i, &ip.Assert{
					C:            remapDNF(s.C, sm.VarOf),
					Msg:          s.Msg,
					Pos:          s.Pos,
					Unverifiable: s.Unverifiable,
				})
			}
		default:
			keep(i, s)
		}
	}
	if err := out.Resolve(); err != nil {
		return nil, nil, fmt.Errorf("reduce: slice broke labels: %w", err)
	}
	return out, sm, nil
}

// ---------------------------------------------------------------------------
// Variable-set and remapping helpers

func markDNFVars(d ip.DNF, set map[int]bool) {
	for _, conj := range d {
		for _, c := range conj {
			for _, v := range c.E.Vars() {
				set[v] = true
			}
		}
	}
}

// addExprVars adds e's variables to set, returning how many were new.
func addExprVars(e linear.Expr, set map[int]bool) int {
	n := 0
	for _, v := range e.Vars() {
		if !set[v] {
			set[v] = true
			n++
		}
	}
	return n
}

func addDNFVars(d ip.DNF, set map[int]bool) int {
	n := 0
	for _, conj := range d {
		for _, c := range conj {
			n += addExprVars(c.E, set)
		}
	}
	return n
}

// mentionsDNF reports whether d mentions any variable of set.
func mentionsDNF(d ip.DNF, set map[int]bool) bool {
	for _, conj := range d {
		for _, c := range conj {
			for _, v := range c.E.Vars() {
				if set[v] {
					return true
				}
			}
		}
	}
	return false
}

// remapExpr rewrites e's variables through varOf; every variable of e must
// be mapped.
func remapExpr(e linear.Expr, varOf map[int]int) linear.Expr {
	out := linear.NewExpr()
	out.Const.Set(e.Clone().Const)
	for _, v := range e.Vars() {
		out.SetCoef(varOf[v], e.Coef(v))
	}
	return out
}

// remapDNF rewrites a condition through varOf (nil stays nil).
func remapDNF(d ip.DNF, varOf map[int]int) ip.DNF {
	if d == nil {
		return nil
	}
	out := make(ip.DNF, len(d))
	for i, conj := range d {
		out[i] = make([]linear.Constraint, len(conj))
		for j, c := range conj {
			out[i][j] = linear.Constraint{E: remapExpr(c.E, varOf), Rel: c.Rel}
		}
	}
	return out
}
