package cache

import (
	"math/big"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/certify"
	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
)

// sampleProgram exercises every statement kind and every DNF shape: true
// (nil), false (empty non-nil), a trivially-true disjunct (nil conjunct),
// and constraints with coefficients beyond int64.
func sampleProgram(t *testing.T) *ip.Program {
	t.Helper()
	p := ip.New("sample")
	x := p.Space.Var("x")
	y := p.Space.Var("y")
	p.PreludeEnd = 2

	huge := new(big.Int).Lsh(big.NewInt(1), 80) // 2^80: not an int64
	e := linear.VarExpr(x)
	e.SetCoef(y, huge)
	e.AddConst(-7)

	ge := linear.NewGe(linear.VarExpr(y))
	eq := linear.NewEq(e)

	p.Emit(&ip.Label{Name: "top"})
	p.Emit(&ip.Assign{V: x, E: e})
	p.Emit(&ip.Havoc{V: y})
	p.Emit(&ip.Assume{C: nil})      // true
	p.Emit(&ip.Assume{C: ip.DNF{}}) // false
	p.Emit(&ip.Assume{C: ip.DNF{nil}})
	p.Emit(&ip.Assert{
		C:   ip.DNF{{ge, eq}, {ge}},
		Msg: "sample check", Pos: clex.Pos{File: "f.c", Line: 3, Col: 9},
	})
	p.Emit(&ip.Assert{C: nil, Msg: "unverifiable", Unverifiable: true})
	p.Emit(&ip.IfGoto{C: ip.DNF{{ge}}, FalseC: ip.DNF{{eq}}, Target: "top"})
	p.Emit(&ip.IfGoto{C: nil, Target: "top"}) // nondeterministic branch
	p.Emit(&ip.Goto{Target: "top"})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	enc := EncodeProgram(p)
	dec, err := DecodeProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.String(), p.String(); got != want {
		t.Errorf("rendered program changed across round trip:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if dec.PreludeEnd != p.PreludeEnd {
		t.Errorf("PreludeEnd = %d, want %d", dec.PreludeEnd, p.PreludeEnd)
	}
	// A second encode must be structurally identical: the DTO is the
	// canonical form, so encode∘decode must be the identity on it.
	if !reflect.DeepEqual(EncodeProgram(dec), enc) {
		t.Error("encode(decode(encode(p))) differs from encode(p)")
	}
	// The DNF shapes must survive exactly: true vs false vs [nil].
	if c := dec.Stmts[3].(*ip.Assume).C; c != nil {
		t.Errorf("true DNF decoded as %#v, want nil", c)
	}
	if c := dec.Stmts[4].(*ip.Assume).C; c == nil || len(c) != 0 {
		t.Errorf("false DNF decoded as %#v, want empty non-nil", c)
	}
	if c := dec.Stmts[5].(*ip.Assume).C; len(c) != 1 || c[0] != nil {
		t.Errorf("[nil] DNF decoded as %#v", c)
	}
}

func TestSystemRoundTrip(t *testing.T) {
	if s, err := DecodeSystem(EncodeSystem(nil)); err != nil || s != nil {
		t.Errorf("nil system: got %#v, %v", s, err)
	}
	if s, err := DecodeSystem(EncodeSystem(linear.System{})); err != nil || s == nil || len(s) != 0 {
		t.Errorf("empty system: got %#v, %v", s, err)
	}
	neg := linear.ConstExpr(-1)
	sys := linear.System{linear.NewGe(neg)} // the canonical unsat marker
	dec, err := DecodeSystem(EncodeSystem(sys))
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].E.Eval(nil).Int64() != -1 || dec[0].Rel != linear.Ge {
		t.Errorf("unsat marker system changed: %#v", dec)
	}
}

func TestCounterExampleRoundTrip(t *testing.T) {
	ce := map[string]*big.Rat{
		"x": big.NewRat(7, 3),
		"y": new(big.Rat).SetInt64(-4),
	}
	dec, err := DecodeCounterExample(EncodeCounterExample(ce))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, ce) {
		t.Errorf("counter-example changed: %v vs %v", dec, ce)
	}
	if m, err := DecodeCounterExample(nil); err != nil || m != nil {
		t.Errorf("nil counter-example: %v, %v", m, err)
	}
}

// sampleCerts builds two certificates sharing one carrier (as a tier
// export does) plus one unreachability certificate on a separate program.
func sampleCerts(t *testing.T) []*certify.Certificate {
	t.Helper()
	p := sampleProgram(t)
	inv := make([]linear.System, p.Size()+1)
	inv[0] = nil
	inv[1] = linear.System{}
	inv[2] = linear.System{linear.NewGe(linear.ConstExpr(-1))}
	for i := 3; i < len(inv); i++ {
		inv[i] = linear.System{linear.NewGe(linear.VarExpr(0))}
	}
	orig := make([]int, p.Size())
	for i := range orig {
		orig[i] = i * 2
	}
	names := p.Space.Names()
	mk := func(idx int) *certify.Certificate {
		return &certify.Certificate{
			Check:     certify.Check{OrigIndex: idx * 2, Msg: "c", Tier: "zone"},
			Prog:      p,
			AssertIdx: idx,
			Inv:       inv,
			OrigStmt:  orig,
			VarNames:  names,
		}
	}
	unreach := &certify.Certificate{
		Check:       certify.Check{OrigIndex: 14, Msg: "u", Tier: "unreachable"},
		Prog:        sampleProgram(t),
		AssertIdx:   6,
		Unreachable: true,
	}
	return []*certify.Certificate{mk(6), mk(7), unreach}
}

func TestCertificateSharingSurvivesDecode(t *testing.T) {
	certs := sampleCerts(t)
	dec, err := DecodeCertificates(EncodeCertificates(certs))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decoded %d certificates, want 3", len(dec))
	}
	// The two tier certificates must share carrier program and invariant
	// slice by pointer, or VerifyAll loses its shared-obligation grouping.
	if dec[0].Prog != dec[1].Prog {
		t.Error("carrier program not shared after decode")
	}
	if &dec[0].Inv[0] != &dec[1].Inv[0] || len(dec[0].Inv) != len(dec[1].Inv) {
		t.Error("invariant map not shared after decode")
	}
	if dec[2].Prog == dec[0].Prog || !dec[2].Unreachable || dec[2].Inv != nil {
		t.Error("unreachability certificate mangled")
	}
	if dec[0].Inv[0] != nil {
		t.Error("nil invariant system decoded non-nil")
	}
	if dec[0].Inv[1] == nil || len(dec[0].Inv[1]) != 0 {
		t.Error("empty invariant system decoded as nil")
	}
}

func sampleEntry(t *testing.T) *Entry {
	p := sampleProgram(t)
	return &Entry{
		Report: ProcReport{
			Name: "sample", LOC: 10, SLOC: 12, IPVars: 2, IPSize: p.Size(),
			Iterations: 42,
			Violations: []Violation{{
				Index: 6, Msg: "sample check", Pos: clex.Pos{File: "f.c", Line: 3, Col: 9},
				CounterExample:         map[string]string{"x": "7/3"},
				CounterExampleIntegral: false,
				StateSystem:            EncodeSystem(linear.System{linear.NewGe(linear.VarExpr(0))}),
			}},
			Warnings: []Warning{{Pos: clex.Pos{Line: 1, Col: 1}, Msg: "note"}},
			IP:       EncodeProgram(p),
		},
	}
}

func testKey(proc string) Key {
	h := func(b byte) string { return strings.Repeat(string([]byte{b}), 64) }
	return Key{Proc: proc, Body: h('a'), Conf: h('b'), Env: h('c')}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("sample")
	certs := sampleCerts(t)
	if err := s.Put(k, sampleEntry(t), certs); err != nil {
		t.Fatal(err)
	}
	e, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("entry not found after Put")
	}
	if e.NumCerts != 3 || e.CertDigest == "" {
		t.Fatalf("entry cert binding: NumCerts=%d CertDigest=%q", e.NumCerts, e.CertDigest)
	}
	if !reflect.DeepEqual(e.Report, sampleEntry(t).Report) {
		t.Error("report changed across store round trip")
	}
	got, err := s.Certificates(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Prog.String() != certs[0].Prog.String() {
		t.Errorf("certificates changed across store round trip")
	}

	// A different key misses cleanly.
	other := testKey("sample")
	other.Env = strings.Repeat("d", 64)
	if e, err := s.Get(other); e != nil || err != nil {
		t.Errorf("Get(miss) = %v, %v; want nil, nil", e, err)
	}
}

func TestStoreCandidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1 := testKey("sample")
	k2 := testKey("sample")
	k2.Env = strings.Repeat("d", 64)
	k3 := testKey("sample")
	k3.Env = strings.Repeat("e", 64)
	for _, k := range []Key{k1, k2, k3} {
		if err := s.Put(k, sampleEntry(t), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Looking for k3's twin brothers: same proc/body/conf, env != k3.Env.
	got, errs := s.Candidates("sample", k3.Body, k3.Conf, k3.Env)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2", len(got))
	}
	if got[0].EnvHash != k1.Env || got[1].EnvHash != k2.Env {
		t.Errorf("candidate order not deterministic: %s, %s", got[0].EnvHash, got[1].EnvHash)
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("sample")
	if err := s.Put(k, sampleEntry(t), sampleCerts(t)); err != nil {
		t.Fatal(err)
	}
	rep := filepath.Join(dir, k.base()+".rep")
	cert := filepath.Join(dir, k.base()+".cert")
	pristineRep, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	pristineCert, err := os.ReadFile(cert)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		os.WriteFile(rep, pristineRep, 0o644)
		os.WriteFile(cert, pristineCert, 0o644)
	}

	corrupt := func(name string, path string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			restore()
			t.Cleanup(restore)
			if err := os.WriteFile(path, mutate(append([]byte(nil), pristine(path, pristineRep, pristineCert)...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if path == rep {
				if _, err := s.Get(k); err == nil {
					t.Fatal("corrupted report accepted")
				}
				return
			}
			e, err := s.Get(k)
			if err != nil || e == nil {
				t.Fatalf("report half should still read: %v", err)
			}
			if _, err := s.Certificates(e); err == nil {
				t.Fatal("corrupted certificate file accepted")
			}
		})
	}

	corrupt("report-bit-flip", rep, func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b })
	corrupt("report-truncated", rep, func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("report-bad-header", rep, func(b []byte) []byte { return append([]byte("not-a-cache-file\n"), b...) })
	corrupt("report-version-skew", rep, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), "cssv-cache 1 ", "cssv-cache 999 ", 1))
	})
	corrupt("cert-bit-flip", cert, func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b })
	corrupt("cert-truncated", cert, func(b []byte) []byte { return b[:len(b)-10] })

	t.Run("cert-missing", func(t *testing.T) {
		restore()
		t.Cleanup(restore)
		if err := os.Remove(cert); err != nil {
			t.Fatal(err)
		}
		e, err := s.Get(k)
		if err != nil || e == nil {
			t.Fatalf("report half should still read: %v", err)
		}
		if _, err := s.Certificates(e); err == nil {
			t.Fatal("missing certificate file accepted")
		}
	})

	// Swapping in another entry's certificate file (valid header, wrong
	// content) must be caught by the digest binding.
	t.Run("cert-swapped", func(t *testing.T) {
		restore()
		t.Cleanup(restore)
		k2 := testKey("sample")
		k2.Env = strings.Repeat("d", 64)
		e2 := sampleEntry(t)
		e2.Report.Violations = nil // a different result
		if err := s.Put(k2, e2, sampleCerts(t)[:1]); err != nil {
			t.Fatal(err)
		}
		swapped, err := os.ReadFile(filepath.Join(dir, k2.base()+".cert"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cert, swapped, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := s.Get(k)
		if err != nil || e == nil {
			t.Fatalf("report half should still read: %v", err)
		}
		if _, err := s.Certificates(e); err == nil {
			t.Fatal("mix-and-matched certificate file accepted")
		}
	})
}

func pristine(path string, rep, cert []byte) []byte {
	if strings.HasSuffix(path, ".rep") {
		return rep
	}
	return cert
}
