// DTO codecs for the on-disk analysis cache. Every analysis type that a
// cache entry carries — integer programs, linear systems, violations,
// cascade statistics, certificates — is mirrored by a plain JSON-friendly
// struct here, with exact integers rendered as decimal strings (no float
// round-trip) and the DNF true/false distinction (nil vs empty slice)
// preserved through encoding/json's null vs [].
//
// The decoder restores the pointer sharing the certificate verifier relies
// on: certificates exported by one tier run share their carrier program and
// invariant map by pointer, and certify.VerifyAll discharges the shared
// obligations once per group. Certificates are therefore stored as a
// carrier table plus per-certificate references into it, so a decoded batch
// groups exactly like a freshly exported one.
package cache

import (
	"fmt"
	"math/big"

	"repro/internal/certify"
	"repro/internal/clex"
	"repro/internal/ip"
	"repro/internal/linear"
)

// Term is one variable coefficient of a linear expression.
type Term struct {
	V int    `json:"v"`
	C string `json:"c"` // decimal big.Int
}

// Expr is a linear expression: sum of terms plus a constant.
type Expr struct {
	K     string `json:"k"` // decimal big.Int constant
	Terms []Term `json:"t,omitempty"`
}

// Constraint is one linear constraint (E = 0 or E >= 0).
type Constraint struct {
	Rel string `json:"rel"` // "eq" or "ge"
	E   Expr   `json:"e"`
}

// System is a conjunction of constraints. JSON null/[] round-trips the
// nil/empty distinction.
type System []Constraint

// DNF mirrors ip.DNF: a disjunction of conjunctions. nil is true, empty
// non-nil is false, and a nil conjunct is a trivially-true disjunct — all
// three shapes survive the JSON round trip (null, [], [null]).
type DNF [][]Constraint

// Stmt is a tagged-union integer-program statement.
type Stmt struct {
	Op           string   `json:"op"` // assign|havoc|assume|assert|ifgoto|goto|label
	V            int      `json:"v,omitempty"`
	E            *Expr    `json:"e,omitempty"`
	C            DNF      `json:"c"`  // no omitempty: false ([]) must not decay to true (null)
	FalseC       DNF      `json:"fc"` // ifgoto only
	Target       string   `json:"target,omitempty"`
	Label        string   `json:"label,omitempty"`
	Msg          string   `json:"msg,omitempty"`
	Pos          clex.Pos `json:"pos"`
	Unverifiable bool     `json:"unv,omitempty"`
}

// Program mirrors ip.Program: the variable space as an ordered name list
// (indices are positional) and the statement list.
type Program struct {
	Name       string   `json:"name"`
	Vars       []string `json:"vars"`
	PreludeEnd int      `json:"prelude_end"`
	Stmts      []Stmt   `json:"stmts"`
}

// Violation mirrors analysis.Violation without importing the engine; the
// driver converts through the approved verdict constructor.
type Violation struct {
	Index                  int               `json:"index"`
	Msg                    string            `json:"msg"`
	Pos                    clex.Pos          `json:"pos"`
	Unverifiable           bool              `json:"unverifiable,omitempty"`
	Unresolved             bool              `json:"unresolved,omitempty"`
	CounterExample         map[string]string `json:"counter_example,omitempty"` // name -> big.Rat string
	CounterExampleIntegral bool              `json:"ce_integral,omitempty"`
	StateSystem            System            `json:"state"`
}

// Warning mirrors c2ip.Warning.
type Warning struct {
	Pos clex.Pos `json:"pos"`
	Msg string   `json:"msg"`
}

// Tier mirrors analysis.TierStat. CPUNs preserves the cold run's tier
// timing (reported, like ProcReport CPU, as historical cost on a hit).
type Tier struct {
	Domain     string `json:"domain"`
	Vars       int    `json:"vars"`
	Stmts      int    `json:"stmts"`
	Asserts    int    `json:"asserts"`
	Discharged int    `json:"discharged"`
	Iterations int    `json:"iterations"`
	CPUNs      int64  `json:"cpu_ns"`
}

// Check mirrors analysis.CheckProvenance.
type Check struct {
	Index    int      `json:"index"`
	Pos      clex.Pos `json:"pos"`
	Msg      string   `json:"msg"`
	Tier     string   `json:"tier"`
	Violated bool     `json:"violated,omitempty"`
	Vars     int      `json:"vars"`
	Stmts    int      `json:"stmts"`
}

// Cascade mirrors analysis.CascadeResult. Exhausted runs are never cached,
// so there is no Exhausted field by construction.
type Cascade struct {
	Violations    []Violation `json:"violations"`
	Iterations    int         `json:"iterations"`
	Tiers         []Tier      `json:"tiers"`
	Checks        []Check     `json:"checks"`
	Residual      *Program    `json:"residual,omitempty"`
	ResidualVars  int         `json:"residual_vars"`
	ResidualStmts int         `json:"residual_stmts"`
}

// ProcReport is the cached portion of a per-procedure result. The AST-level
// artifacts (inlined function, points-to state) are deliberately absent: a
// hit restores everything user-visible — messages, statistics, the integer
// program, cascade provenance, certification — and the driver documents
// that the front-end intermediates are nil on cached procedures.
type ProcReport struct {
	Name       string `json:"name"`
	LOC        int    `json:"loc"`
	SLOC       int    `json:"sloc"`
	IPVars     int    `json:"ip_vars"`
	IPSize     int    `json:"ip_size"`
	Iterations int    `json:"iterations"`
	// Violations are the analysis-produced messages; SideEffects the
	// modifies-clause violations appended after certification. They are
	// stored separately because the side-effect check depends on the
	// procedure's contract: an exact hit replays both, a revalidation hit
	// replays only Violations and re-runs the (cheap, AST-level)
	// side-effect check against the current contract.
	Violations  []Violation `json:"violations"`
	SideEffects []Violation `json:"side_effects"`
	Warnings    []Warning   `json:"warnings"`
	IP          *Program    `json:"ip,omitempty"`
	Cascade     *Cascade    `json:"cascade,omitempty"`
	// MemberResolved / MemberHavocked replay the procedure's contribution
	// to the run-level member-access counters, which a hit would otherwise
	// skip along with the C2IP phase.
	MemberResolved int              `json:"member_resolved"`
	MemberHavocked int              `json:"member_havocked"`
	Certification  *certify.Outcome `json:"certification,omitempty"`
}

// Carrier is one shared certificate payload: the carrier program, its
// per-point invariant systems, and the reporting metadata every
// certificate of the group references.
type Carrier struct {
	Prog     Program  `json:"prog"`
	Inv      []System `json:"inv"` // nil for unreachability carriers
	OrigStmt []int    `json:"orig_stmt,omitempty"`
	VarNames []string `json:"var_names,omitempty"`
}

// Cert is one certificate: check identity plus a reference into the
// carrier table.
type Cert struct {
	OrigIndex   int      `json:"orig_index"`
	Pos         clex.Pos `json:"pos"`
	Msg         string   `json:"msg"`
	Tier        string   `json:"tier"`
	Carrier     int      `json:"carrier"`
	AssertIdx   int      `json:"assert_idx"`
	Unreachable bool     `json:"unreachable,omitempty"`
}

// CertBatch is the payload of a .cert file.
type CertBatch struct {
	Carriers []Carrier `json:"carriers"`
	Certs    []Cert    `json:"certs"`
}

// ---------------------------------------------------------------------------
// Encoding

// EncodeExpr renders a linear expression exactly.
func EncodeExpr(e linear.Expr) Expr {
	out := Expr{K: "0"}
	if e.Const != nil {
		out.K = e.Const.String()
	}
	for _, v := range e.Vars() {
		out.Terms = append(out.Terms, Term{V: v, C: e.Coef(v).String()})
	}
	return out
}

// EncodeSystem renders a constraint system exactly (nil stays nil).
func EncodeSystem(s linear.System) System {
	if s == nil {
		return nil
	}
	out := make(System, len(s))
	for i, c := range s {
		rel := "ge"
		if c.Rel == linear.Eq {
			rel = "eq"
		}
		out[i] = Constraint{Rel: rel, E: EncodeExpr(c.E)}
	}
	return out
}

// EncodeDNF renders a condition, preserving true/false/edge shapes.
func EncodeDNF(d ip.DNF) DNF {
	if d == nil {
		return nil
	}
	out := make(DNF, len(d))
	for i, conj := range d {
		out[i] = []Constraint(EncodeSystem(linear.System(conj)))
	}
	return out
}

// EncodeProgram renders an integer program.
func EncodeProgram(p *ip.Program) *Program {
	out := &Program{
		Name:       p.Name,
		Vars:       p.Space.Names(),
		PreludeEnd: p.PreludeEnd,
	}
	for _, s := range p.Stmts {
		var d Stmt
		switch s := s.(type) {
		case *ip.Assign:
			e := EncodeExpr(s.E)
			d = Stmt{Op: "assign", V: s.V, E: &e}
		case *ip.Havoc:
			d = Stmt{Op: "havoc", V: s.V}
		case *ip.Assume:
			d = Stmt{Op: "assume", C: EncodeDNF(s.C)}
		case *ip.Assert:
			d = Stmt{Op: "assert", C: EncodeDNF(s.C), Msg: s.Msg, Pos: s.Pos, Unverifiable: s.Unverifiable}
		case *ip.IfGoto:
			d = Stmt{Op: "ifgoto", C: EncodeDNF(s.C), FalseC: EncodeDNF(s.FalseC), Target: s.Target}
		case *ip.Goto:
			d = Stmt{Op: "goto", Target: s.Target}
		case *ip.Label:
			d = Stmt{Op: "label", Label: s.Name}
		default:
			// ip.Stmt is a closed union; a new statement kind must extend the
			// codec (and bump the format version) before it can be cached.
			panic(fmt.Sprintf("cache: unknown statement type %T", s))
		}
		out.Stmts = append(out.Stmts, d)
	}
	return out
}

// EncodeCounterExample renders a counter-example valuation exactly.
func EncodeCounterExample(ce map[string]*big.Rat) map[string]string {
	if ce == nil {
		return nil
	}
	out := make(map[string]string, len(ce))
	for name, r := range ce {
		out[name] = r.RatString()
	}
	return out
}

// EncodeCertificates flattens a certificate batch into a carrier table
// plus references, grouping by the (program, invariant-map) pointer
// identity the exporter established.
func EncodeCertificates(certs []*certify.Certificate) *CertBatch {
	type ckey struct {
		prog *ip.Program
		inv  *linear.System
		n    int
	}
	out := &CertBatch{}
	index := map[ckey]int{}
	for _, c := range certs {
		k := ckey{prog: c.Prog, n: len(c.Inv)}
		if len(c.Inv) > 0 {
			k.inv = &c.Inv[0]
		}
		ci, ok := index[k]
		if !ok {
			car := Carrier{
				Prog:     *EncodeProgram(c.Prog),
				OrigStmt: c.OrigStmt,
				VarNames: c.VarNames,
			}
			if c.Inv != nil {
				car.Inv = make([]System, len(c.Inv))
				for i, sys := range c.Inv {
					car.Inv[i] = EncodeSystem(sys)
				}
			}
			ci = len(out.Carriers)
			out.Carriers = append(out.Carriers, car)
			index[k] = ci
		}
		out.Certs = append(out.Certs, Cert{
			OrigIndex:   c.Check.OrigIndex,
			Pos:         c.Check.Pos,
			Msg:         c.Check.Msg,
			Tier:        c.Check.Tier,
			Carrier:     ci,
			AssertIdx:   c.AssertIdx,
			Unreachable: c.Unreachable,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Decoding

// DecodeExpr rebuilds a linear expression; it fails on malformed integers
// rather than guessing.
func DecodeExpr(d Expr) (linear.Expr, error) {
	e := linear.NewExpr()
	if d.K != "" {
		if _, ok := e.Const.SetString(d.K, 10); !ok {
			return e, fmt.Errorf("cache: bad integer constant %q", d.K)
		}
	}
	for _, t := range d.Terms {
		c := new(big.Int)
		if _, ok := c.SetString(t.C, 10); !ok {
			return e, fmt.Errorf("cache: bad coefficient %q", t.C)
		}
		if t.V < 0 {
			return e, fmt.Errorf("cache: negative variable index %d", t.V)
		}
		e.SetCoef(t.V, c)
	}
	return e, nil
}

// DecodeSystem rebuilds a constraint system (nil stays nil).
func DecodeSystem(d System) (linear.System, error) {
	if d == nil {
		return nil, nil
	}
	out := make(linear.System, len(d))
	for i, c := range d {
		e, err := DecodeExpr(c.E)
		if err != nil {
			return nil, err
		}
		switch c.Rel {
		case "eq":
			out[i] = linear.Constraint{E: e, Rel: linear.Eq}
		case "ge":
			out[i] = linear.Constraint{E: e, Rel: linear.Ge}
		default:
			return nil, fmt.Errorf("cache: unknown relation %q", c.Rel)
		}
	}
	return out, nil
}

// DecodeDNF rebuilds a condition.
func DecodeDNF(d DNF) (ip.DNF, error) {
	if d == nil {
		return nil, nil
	}
	out := make(ip.DNF, len(d))
	for i, conj := range d {
		sys, err := DecodeSystem(System(conj))
		if err != nil {
			return nil, err
		}
		out[i] = []linear.Constraint(sys)
	}
	return out, nil
}

// DecodeCounterExample rebuilds a counter-example valuation.
func DecodeCounterExample(m map[string]string) (map[string]*big.Rat, error) {
	if m == nil {
		return nil, nil
	}
	out := make(map[string]*big.Rat, len(m))
	for name, s := range m {
		r := new(big.Rat)
		if _, ok := r.SetString(s); !ok {
			return nil, fmt.Errorf("cache: bad rational %q", s)
		}
		out[name] = r
	}
	return out, nil
}

// DecodeProgram rebuilds an integer program and resolves its labels.
func DecodeProgram(d *Program) (*ip.Program, error) {
	p := ip.New(d.Name)
	p.PreludeEnd = d.PreludeEnd
	for _, name := range d.Vars {
		p.Space.Var(name)
	}
	if p.Space.Dim() != len(d.Vars) {
		return nil, fmt.Errorf("cache: duplicate variable names in program %q", d.Name)
	}
	for i, s := range d.Stmts {
		c, err := DecodeDNF(s.C)
		if err != nil {
			return nil, fmt.Errorf("cache: stmt %d: %w", i, err)
		}
		switch s.Op {
		case "assign":
			if s.E == nil {
				return nil, fmt.Errorf("cache: stmt %d: assign without expression", i)
			}
			e, err := DecodeExpr(*s.E)
			if err != nil {
				return nil, fmt.Errorf("cache: stmt %d: %w", i, err)
			}
			p.Emit(&ip.Assign{V: s.V, E: e})
		case "havoc":
			p.Emit(&ip.Havoc{V: s.V})
		case "assume":
			p.Emit(&ip.Assume{C: c})
		case "assert":
			p.Emit(&ip.Assert{C: c, Msg: s.Msg, Pos: s.Pos, Unverifiable: s.Unverifiable})
		case "ifgoto":
			fc, err := DecodeDNF(s.FalseC)
			if err != nil {
				return nil, fmt.Errorf("cache: stmt %d: %w", i, err)
			}
			p.Emit(&ip.IfGoto{C: c, FalseC: fc, Target: s.Target})
		case "goto":
			p.Emit(&ip.Goto{Target: s.Target})
		case "label":
			p.Emit(&ip.Label{Name: s.Label})
		default:
			return nil, fmt.Errorf("cache: stmt %d: unknown op %q", i, s.Op)
		}
	}
	if err := p.Resolve(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return p, nil
}

// DecodeCertificates rebuilds a certificate batch. Certificates that
// referenced one carrier share the decoded program and invariant slice by
// pointer again, so VerifyAll groups them exactly as it would a fresh
// export.
func DecodeCertificates(b *CertBatch) ([]*certify.Certificate, error) {
	progs := make([]*ip.Program, len(b.Carriers))
	invs := make([][]linear.System, len(b.Carriers))
	for i := range b.Carriers {
		car := &b.Carriers[i]
		p, err := DecodeProgram(&car.Prog)
		if err != nil {
			return nil, fmt.Errorf("cache: carrier %d: %w", i, err)
		}
		progs[i] = p
		if car.Inv != nil {
			inv := make([]linear.System, len(car.Inv))
			for j, sys := range car.Inv {
				dec, err := DecodeSystem(sys)
				if err != nil {
					return nil, fmt.Errorf("cache: carrier %d invariant %d: %w", i, j, err)
				}
				inv[j] = dec
			}
			invs[i] = inv
		}
	}
	out := make([]*certify.Certificate, len(b.Certs))
	for i, c := range b.Certs {
		if c.Carrier < 0 || c.Carrier >= len(b.Carriers) {
			return nil, fmt.Errorf("cache: certificate %d references carrier %d of %d", i, c.Carrier, len(b.Carriers))
		}
		out[i] = &certify.Certificate{
			Check: certify.Check{
				OrigIndex: c.OrigIndex,
				Pos:       c.Pos,
				Msg:       c.Msg,
				Tier:      c.Tier,
			},
			Prog:        progs[c.Carrier],
			AssertIdx:   c.AssertIdx,
			Inv:         invs[c.Carrier],
			OrigStmt:    b.Carriers[c.Carrier].OrigStmt,
			VarNames:    b.Carriers[c.Carrier].VarNames,
			Unreachable: c.Unreachable,
		}
	}
	return out, nil
}
