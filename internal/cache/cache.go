// Package cache is the content-addressed on-disk store of per-procedure
// analysis results: reports, invariant certificates, and statistics, keyed
// by structural hashes of the analysis input plus a fingerprint of the
// run-relevant configuration.
//
// An entry is two files under one base name:
//
//	<proc>-<body16>-<conf16>-<env16>.rep    report payload
//	<proc>-<body16>-<conf16>-<env16>.cert   certificate payload (optional)
//
// where body16/conf16/env16 are the leading 16 hex digits of the key's
// three SHA-256 components (the full hashes are stored inside the payload
// and re-verified on every read, so a truncated-prefix collision can
// produce a near-miss but never a wrong result). Each file starts with a
// one-line header
//
//	cssv-cache <version> <sha256-of-payload>
//
// followed by a deterministic JSON payload; the report additionally pins
// the digest of its certificate file, so the two halves of an entry cannot
// be mixed and matched. Any integrity failure — truncation, bit rot,
// manual tampering, version skew — surfaces as an error from Get,
// Candidates, or Certificates; the store never repairs or guesses.
//
// Trust argument (DESIGN.md §11): a cache entry is advice, never
// authority. An exact hit (all three hashes equal) replays a result the
// analyzer, which is deterministic per input, provably produced for this
// exact input — guarded by the digests above, and optionally re-verified
// end to end (certificate re-check plus assert accounting) under the
// driver's paranoid mode. A revalidation hit (body and configuration
// equal, environment changed) is only accepted after the driver rebuilds
// the front end, confirms the generated integer program is identical
// (encoded form, source positions included), and re-proves every stored
// certificate with the independent Fourier–Motzkin checker — no fixpoint
// runs, and nothing unproven is reused.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/certify"
)

// FormatVersion is the on-disk format generation; it participates in the
// file header, so a format change invalidates (rather than misreads) old
// entries.
const FormatVersion = 1

const magic = "cssv-cache"

// Key identifies one cache entry: the procedure name plus three SHA-256
// hex hashes — the contract-stripped body, the configuration fingerprint,
// and the textual environment (every other declaration, the procedure's
// own contract, the string table). The driver derives them; the store
// only requires that they are full lowercase hex digests.
type Key struct {
	Proc string
	// Body hashes the analyzed procedure's declaration with its contract
	// stripped: same hash, same body.
	Body string
	// Conf fingerprints the result-relevant configuration (target, domain,
	// cascade tiers, translation options, contract mode, ...).
	Conf string
	// Env hashes everything else the result depends on: the other
	// declarations (including the libc contract prelude), the procedure's
	// own contract, and the string-literal table.
	Env string
}

const prefixLen = 16

// base is the entry's file base name.
func (k Key) base() string {
	return fmt.Sprintf("%s-%s-%s-%s", sanitize(k.Proc),
		prefix(k.Body), prefix(k.Conf), prefix(k.Env))
}

func prefix(h string) string {
	if len(h) < prefixLen {
		return h
	}
	return h[:prefixLen]
}

// sanitize keeps file names portable; procedure names are C identifiers,
// so this is defensive only (full names are verified inside the payload).
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

// Entry is the report payload of one cache entry.
type Entry struct {
	Proc     string `json:"proc"`
	BodyHash string `json:"body_hash"`
	ConfHash string `json:"conf_hash"`
	EnvHash  string `json:"env_hash"`
	// Report is the cached per-procedure result. Its IP field doubles as
	// the revalidation anchor: the driver re-encodes a freshly generated
	// integer program (positions included) and compares the two encodings
	// byte for byte before trusting anything else in the entry.
	Report ProcReport `json:"report"`
	// NumCerts and CertDigest describe the companion .cert file; a
	// digest mismatch rejects the pair. Empty digest means no
	// certificate file was written.
	NumCerts   int    `json:"num_certs"`
	CertDigest string `json:"cert_digest,omitempty"`
}

// Store is an on-disk cache rooted at one directory. All methods are safe
// for concurrent use by independent processes in the usual
// write-temp-then-rename sense; readers never observe partial files.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the entry for an exact key, or (nil, nil) when absent. A
// present-but-unusable entry (corrupt header, digest mismatch, payload
// hashes not matching the key) is an error, so the caller can count and
// report it before falling back to analysis.
func (s *Store) Get(k Key) (*Entry, error) {
	path := filepath.Join(s.dir, k.base()+".rep")
	e, err := s.readEntry(path)
	if e == nil || err != nil {
		return nil, err
	}
	if e.Proc != k.Proc || e.BodyHash != k.Body || e.ConfHash != k.Conf || e.EnvHash != k.Env {
		// A 16-hex-digit prefix collision: the entry is some other input's.
		return nil, nil
	}
	return e, nil
}

// Candidates returns, sorted by file name, every decodable entry with the
// same procedure, body hash, and configuration fingerprint but a different
// environment hash — the revalidation candidates. Corrupt candidate files
// are returned as errors alongside the good entries.
func (s *Store) Candidates(proc, body, conf, notEnv string) ([]*Entry, []error) {
	pre := fmt.Sprintf("%s-%s-%s-", sanitize(proc), prefix(body), prefix(conf))
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("cache: %w", err)}
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, pre) && strings.HasSuffix(name, ".rep") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []*Entry
	var errs []error
	for _, name := range names {
		e, err := s.readEntry(filepath.Join(s.dir, name))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if e == nil {
			continue // raced with a writer's rename; treat as absent
		}
		if e.Proc != proc || e.BodyHash != body || e.ConfHash != conf || e.EnvHash == notEnv {
			continue
		}
		out = append(out, e)
	}
	return out, errs
}

// Certificates reads and decodes the certificate batch of an entry,
// verifying the digest binding recorded in the report half.
func (s *Store) Certificates(e *Entry) ([]*certify.Certificate, error) {
	if e.CertDigest == "" {
		if e.NumCerts != 0 {
			return nil, fmt.Errorf("cache: entry %s claims %d certificates but has no digest", e.Proc, e.NumCerts)
		}
		return nil, nil
	}
	k := Key{Proc: e.Proc, Body: e.BodyHash, Conf: e.ConfHash, Env: e.EnvHash}
	path := filepath.Join(s.dir, k.base()+".cert")
	payload, err := readPayload(path)
	if err != nil {
		return nil, err
	}
	if payload == nil {
		return nil, fmt.Errorf("cache: certificate file missing for %s", e.Proc)
	}
	if digest(payload) != e.CertDigest {
		return nil, fmt.Errorf("cache: certificate file for %s does not match the digest its report pinned", e.Proc)
	}
	var batch CertBatch
	if err := json.Unmarshal(payload, &batch); err != nil {
		return nil, fmt.Errorf("cache: %s: %w", path, err)
	}
	certs, err := DecodeCertificates(&batch)
	if err != nil {
		return nil, err
	}
	if len(certs) != e.NumCerts {
		return nil, fmt.Errorf("cache: entry %s pins %d certificates, file has %d", e.Proc, e.NumCerts, len(certs))
	}
	return certs, nil
}

// Put writes an entry and its certificates under the key. The entry's
// hash fields, NumCerts, and CertDigest are filled in from k and certs.
// Writes are temp-file-plus-rename, certificate half first, so a reader
// that sees the report always finds the matching certificates.
func (s *Store) Put(k Key, e *Entry, certs []*certify.Certificate) error {
	e.Proc = k.Proc
	e.BodyHash = k.Body
	e.ConfHash = k.Conf
	e.EnvHash = k.Env
	e.NumCerts = len(certs)
	e.CertDigest = ""
	base := k.base()
	if len(certs) > 0 {
		payload, err := json.Marshal(EncodeCertificates(certs))
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		e.CertDigest = digest(payload)
		if err := s.writeFile(base+".cert", payload); err != nil {
			return err
		}
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return s.writeFile(base+".rep", payload)
}

// readEntry reads and validates one report file; (nil, nil) when absent.
func (s *Store) readEntry(path string) (*Entry, error) {
	payload, err := readPayload(path)
	if payload == nil || err != nil {
		return nil, err
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("cache: %s: %w", path, err)
	}
	if !validHex(e.BodyHash) || !validHex(e.ConfHash) || !validHex(e.EnvHash) {
		return nil, fmt.Errorf("cache: %s: malformed hash fields", path)
	}
	return &e, nil
}

func validHex(h string) bool {
	if len(h) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(h)
	return err == nil
}

// readPayload reads a cache file, checks the header line, and returns the
// digest-verified payload; (nil, nil) when the file does not exist.
func readPayload(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cache: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("cache: %s: truncated header", path)
	}
	header := string(data[:nl])
	payload := data[nl+1:]
	var version int
	var sum string
	if n, err := fmt.Sscanf(header, magic+" %d %s", &version, &sum); n != 2 || err != nil {
		return nil, fmt.Errorf("cache: %s: malformed header %q", path, header)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("cache: %s: format version %d, want %d", path, version, FormatVersion)
	}
	if digest(payload) != sum {
		return nil, fmt.Errorf("cache: %s: payload does not match its digest (corrupt or tampered)", path)
	}
	return payload, nil
}

func (s *Store) writeFile(name string, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	header := fmt.Sprintf("%s %d %s\n", magic, FormatVersion, digest(payload))
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

func digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
