package ctypes

import "testing"

func TestSizes(t *testing.T) {
	cases := []struct {
		t    Type
		want int
	}{
		{Char, 1},
		{Int, 4},
		{PointerTo(Char), 4},
		{PointerTo(PointerTo(Int)), 4},
		{Array{Elem: Char, Len: 100}, 100},
		{Array{Elem: Int, Len: 10}, 40},
		{Array{Elem: Array{Elem: Char, Len: 8}, Len: 4}, 32},
		{Void{}, 0},
		{&Func{Ret: Int}, 0},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("%s size = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := &Struct{Tag: "line"}
	s.SetFields([]Field{
		{Name: "text", Type: Array{Elem: Char, Len: 80}},
		{Name: "len", Type: Int},
		{Name: "next", Type: PointerTo(s)},
	})
	if s.Size() != 88 {
		t.Errorf("size = %d", s.Size())
	}
	if f := s.Field("len"); f == nil || f.Offset != 80 {
		t.Errorf("len field: %+v", f)
	}
	if f := s.Field("next"); f == nil || f.Offset != 84 {
		t.Errorf("next field: %+v", f)
	}
	if s.Field("absent") != nil {
		t.Error("phantom field")
	}
}

func TestUnionLayout(t *testing.T) {
	u := &Struct{Tag: "u", Union: true}
	u.SetFields([]Field{
		{Name: "i", Type: Int},
		{Name: "buf", Type: Array{Elem: Char, Len: 16}},
	})
	if u.Size() != 16 {
		t.Errorf("union size = %d, want 16", u.Size())
	}
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Errorf("union member %s at offset %d", f.Name, f.Offset)
		}
	}
}

func TestEquality(t *testing.T) {
	if !PointerTo(Char).Equal(PointerTo(Char)) {
		t.Error("char* != char*")
	}
	if PointerTo(Char).Equal(PointerTo(Int)) {
		t.Error("char* == int*")
	}
	a := Array{Elem: Char, Len: 4}
	if !a.Equal(Array{Elem: Char, Len: 4}) || a.Equal(Array{Elem: Char, Len: 5}) {
		t.Error("array equality wrong")
	}
	s1 := &Struct{Tag: "s"}
	s2 := &Struct{Tag: "s"}
	if !s1.Equal(s2) {
		t.Error("structs compare by tag")
	}
	f1 := &Func{Ret: Int, Params: []Type{Char}}
	f2 := &Func{Ret: Int, Params: []Type{Char}}
	f3 := &Func{Ret: Int, Params: []Type{Int}}
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("func equality wrong")
	}
}

func TestDecay(t *testing.T) {
	if got := Decay(Array{Elem: Char, Len: 9}); !got.Equal(PointerTo(Char)) {
		t.Errorf("array decays to %s", got)
	}
	f := &Func{Ret: Void{}}
	if got := Decay(f); !got.Equal(PointerTo(f)) {
		t.Errorf("func decays to %s", got)
	}
	if got := Decay(Int); !got.Equal(Int) {
		t.Errorf("int decays to %s", got)
	}
}

func TestPredicates(t *testing.T) {
	if !IsChar(Char) || IsChar(Int) {
		t.Error("IsChar")
	}
	if !IsInteger(Int) || IsInteger(PointerTo(Int)) {
		t.Error("IsInteger")
	}
	if !IsPointer(PointerTo(Int)) || IsPointer(Int) {
		t.Error("IsPointer")
	}
	if !IsArray(Array{Elem: Int, Len: 1}) || IsArray(Int) {
		t.Error("IsArray")
	}
	if !IsScalar(Int) || !IsScalar(PointerTo(Char)) || IsScalar(Array{Elem: Char, Len: 2}) {
		t.Error("IsScalar")
	}
	if Elem(PointerTo(Char)) == nil || Elem(Array{Elem: Int, Len: 3}) == nil || Elem(Int) != nil {
		t.Error("Elem")
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]Type{
		"char":       Char,
		"char*":      PointerTo(Char),
		"char**":     PointerTo(PointerTo(Char)),
		"char[8]":    Array{Elem: Char, Len: 8},
		"struct s":   &Struct{Tag: "s"},
		"int (char)": &Func{Ret: Int, Params: []Type{Char}},
		"void ()":    &Func{Ret: Void{}},
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
