// Object layout: target-parameterized size/alignment/offset computation.
//
// The paper's semantics only needs the packed 32-bit model baked into
// Type.Size and Struct.SetFields. Real C code depends on the platform ABI:
// alignment padding between members, tail padding, 8-byte pointers, and
// bitfield storage-unit packing. The Engine computes all of that per run
// without ever mutating a Struct — struct objects are interned by the parser
// and shared across runs (the libc prelude is parsed once per process), so
// layouts for a given target live in a memo table on the Engine instead.
package ctypes

import (
	"fmt"
	"sync"
)

// Target selects the data model used for layout computation.
type Target int

const (
	// Paper32 is the paper's packed 32-bit model (§2.4): char 1, int 4,
	// pointer 4, no alignment padding, union members at offset 0. It
	// reproduces Type.Size and Struct.SetFields bit for bit.
	Paper32 Target = iota
	// SysV64 is the System V AMD64 data model: char 1/1, int 4/4,
	// pointer 8/8, natural field alignment with struct and tail padding,
	// and bitfields packed into storage units of their declared type.
	SysV64
)

func (t Target) String() string {
	switch t {
	case Paper32:
		return "paper32"
	case SysV64:
		return "sysv64"
	}
	return fmt.Sprintf("Target(%d)", int(t))
}

// ParseTarget parses a -target flag value.
func ParseTarget(s string) (Target, error) {
	switch s {
	case "", "paper32":
		return Paper32, nil
	case "sysv64":
		return SysV64, nil
	}
	return Paper32, fmt.Errorf("unknown target %q (want paper32 or sysv64)", s)
}

// FieldLayout is the computed placement of one struct/union member.
type FieldLayout struct {
	Name      string
	Type      Type
	Offset    int // byte offset of the member's storage unit
	Size      int // byte size of the member's storage (storage unit for bitfields)
	Align     int // alignment the member was placed at
	Bits      int // bitfield width; 0 for ordinary members
	BitOffset int // bit offset within the storage unit (bitfields only)
}

// Layout is the computed object layout of a struct or union under one target.
type Layout struct {
	Size   int // total object size including tail padding
	Align  int // object alignment
	Union  bool
	Fields []FieldLayout
}

// Interval returns the half-open byte interval [lo, hi) occupied by field i.
func (l *Layout) Interval(i int) (lo, hi int) {
	f := &l.Fields[i]
	return f.Offset, f.Offset + f.Size
}

// Overlapping returns the indices of fields whose byte intervals intersect
// that of field i, excluding i itself. For structs this is empty except for
// bitfields sharing a storage unit; for unions it names the members a write
// through member i can clobber.
func (l *Layout) Overlapping(i int) []int {
	lo, hi := l.Interval(i)
	var out []int
	for j := range l.Fields {
		if j == i {
			continue
		}
		jlo, jhi := l.Interval(j)
		if lo < jhi && jlo < hi {
			out = append(out, j)
		}
	}
	return out
}

// FieldIndex returns the index of the field named name, or -1.
func (l *Layout) FieldIndex(name string) int {
	for i := range l.Fields {
		if l.Fields[i].Name == name {
			return i
		}
	}
	return -1
}

// Engine computes layouts for one target. It is safe for concurrent use; a
// nil *Engine behaves as a Paper32 engine, so callers that predate the layout
// subsystem keep working unchanged.
type Engine struct {
	target Target

	mu   sync.Mutex
	memo map[*Struct]*Layout
}

// NewEngine returns a layout engine for the given target.
func NewEngine(target Target) *Engine {
	return &Engine{target: target, memo: make(map[*Struct]*Layout)}
}

// Target reports the engine's target (Paper32 for a nil engine).
func (e *Engine) Target() Target {
	if e == nil {
		return Paper32
	}
	return e.target
}

// FieldSensitive reports whether the engine provides layouts finer than the
// paper's packed model, enabling the field-sensitive store transfer and
// access-path location naming downstream.
func (e *Engine) FieldSensitive() bool { return e.Target() != Paper32 }

// SizeOf returns the storage size of t in bytes under the engine's target.
func (e *Engine) SizeOf(t Type) int {
	if e.Target() == Paper32 {
		return t.Size()
	}
	switch t := t.(type) {
	case Void:
		return 0
	case Prim:
		return t.Bytes
	case Pointer:
		return 8
	case Array:
		return e.SizeOf(t.Elem) * t.Len
	case *Struct:
		return e.LayoutOf(t).Size
	case *Func:
		return 0
	}
	return t.Size()
}

// AlignOf returns the alignment requirement of t under the engine's target.
// The packed Paper32 model has no alignment, so everything aligns at 1.
func (e *Engine) AlignOf(t Type) int {
	if e.Target() == Paper32 {
		return 1
	}
	switch t := t.(type) {
	case Prim:
		if t.Bytes > 8 {
			return 8
		}
		if t.Bytes < 1 {
			return 1
		}
		return t.Bytes
	case Pointer:
		return 8
	case Array:
		return e.AlignOf(t.Elem)
	case *Struct:
		return e.LayoutOf(t).Align
	}
	return 1
}

// LayoutOf returns the layout of s under the engine's target. Layouts are
// memoized per struct object; the struct itself is never mutated.
func (e *Engine) LayoutOf(s *Struct) *Layout {
	if e == nil {
		return paper32Layout(s)
	}
	if len(s.Fields) == 0 {
		// Forward-declared struct whose definition may still arrive: don't
		// memoize the empty layout, or the completed definition would keep
		// reading a stale one.
		if e.target == Paper32 {
			return paper32Layout(s)
		}
		return sysv64Layout(e, s)
	}
	e.mu.Lock()
	if l, ok := e.memo[s]; ok {
		e.mu.Unlock()
		return l
	}
	e.mu.Unlock()

	// Compute outside the lock: nested struct fields recurse into LayoutOf
	// and the mutex is not reentrant. A concurrent duplicate computation is
	// benign; both produce identical layouts.
	var l *Layout
	if e.target == Paper32 {
		l = paper32Layout(s)
	} else {
		l = sysv64Layout(e, s)
	}
	e.mu.Lock()
	if prior, ok := e.memo[s]; ok {
		l = prior
	} else {
		e.memo[s] = l
	}
	e.mu.Unlock()
	return l
}

// FieldOffset returns the placement of the member named name within s, under
// the engine's target.
func (e *Engine) FieldOffset(s *Struct, name string) (FieldLayout, bool) {
	l := e.LayoutOf(s)
	if i := l.FieldIndex(name); i >= 0 {
		return l.Fields[i], true
	}
	return FieldLayout{}, false
}

// paper32Layout mirrors the offsets Struct.SetFields already computed, so
// the Paper32 engine is exactly the legacy packed model.
func paper32Layout(s *Struct) *Layout {
	l := &Layout{Size: s.ByteLen, Align: 1, Union: s.Union}
	for i := range s.Fields {
		f := &s.Fields[i]
		if f.IsPad() {
			continue
		}
		l.Fields = append(l.Fields, FieldLayout{
			Name:   f.Name,
			Type:   f.Type,
			Offset: f.Offset,
			Size:   f.Type.Size(),
			Align:  1,
			Bits:   f.Bits,
		})
	}
	return l
}

// sysv64Layout lays s out under the System V AMD64 rules: each member is
// placed at the next offset aligned to its requirement, bitfields are packed
// into storage units of their declared type and may not cross a unit
// boundary, a zero-width bitfield closes the current unit, and the total
// size is rounded up to the struct alignment (tail padding).
func sysv64Layout(e *Engine, s *Struct) *Layout {
	l := &Layout{Align: 1, Union: s.Union}
	if s.Union {
		for i := range s.Fields {
			f := &s.Fields[i]
			if f.IsPad() {
				continue
			}
			sz := e.SizeOf(f.Type)
			al := fieldAlign(e, f)
			l.Fields = append(l.Fields, FieldLayout{
				Name: f.Name, Type: f.Type, Offset: 0, Size: sz, Align: al, Bits: f.Bits,
			})
			if sz > l.Size {
				l.Size = sz
			}
			if al > l.Align {
				l.Align = al
			}
		}
		l.Size = roundUp(l.Size, l.Align)
		return l
	}

	bitPos := 0 // running position in bits from the start of the struct
	for i := range s.Fields {
		f := &s.Fields[i]
		al := fieldAlign(e, f)
		if f.Bitfield {
			sz := e.SizeOf(f.Type)
			unitBits := sz * 8
			if f.IsPad() {
				// Zero-width: close the current storage unit of the
				// declared type. Contributes no alignment or storage.
				bitPos = roundUp(bitPos, unitBits)
				continue
			}
			if al > l.Align {
				l.Align = al
			}
			// A bitfield may not straddle a storage-unit boundary of its
			// declared type: if the remaining room in the current unit is
			// too small, start the next unit.
			if bitPos%unitBits+f.Bits > unitBits {
				bitPos = roundUp(bitPos, unitBits)
			}
			unitStart := bitPos / unitBits * sz
			l.Fields = append(l.Fields, FieldLayout{
				Name:      f.Name,
				Type:      f.Type,
				Offset:    unitStart,
				Size:      sz,
				Align:     al,
				Bits:      f.Bits,
				BitOffset: bitPos - unitStart*8,
			})
			bitPos += f.Bits
			continue
		}
		off := roundUp((bitPos+7)/8, al)
		sz := e.SizeOf(f.Type)
		l.Fields = append(l.Fields, FieldLayout{
			Name: f.Name, Type: f.Type, Offset: off, Size: sz, Align: al,
		})
		if al > l.Align {
			l.Align = al
		}
		bitPos = (off + sz) * 8
	}
	l.Size = roundUp((bitPos+7)/8, l.Align)
	return l
}

func fieldAlign(e *Engine, f *Field) int {
	al := e.AlignOf(f.Type)
	if f.AlignAs > al {
		al = f.AlignAs
	}
	return al
}

func roundUp(n, align int) int {
	if align <= 1 {
		return n
	}
	return (n + align - 1) / align * align
}
