package ctypes

import (
	"fmt"
	"strings"
	"testing"
)

func mkStruct(tag string, union bool, fields ...Field) *Struct {
	s := &Struct{Tag: tag, Union: union}
	s.SetFields(fields)
	return s
}

func renderLayout(l *Layout) string {
	var b strings.Builder
	kind := "struct"
	if l.Union {
		kind = "union"
	}
	fmt.Fprintf(&b, "%s size=%d align=%d\n", kind, l.Size, l.Align)
	for i := range l.Fields {
		f := &l.Fields[i]
		if f.Bits > 0 {
			fmt.Fprintf(&b, "  %-8s off=%d size=%d align=%d bits=%d bitoff=%d\n",
				f.Name, f.Offset, f.Size, f.Align, f.Bits, f.BitOffset)
		} else {
			fmt.Fprintf(&b, "  %-8s off=%d size=%d align=%d\n", f.Name, f.Offset, f.Size, f.Align)
		}
	}
	return b.String()
}

// Golden layout tables for both targets: padding, tail padding, unions,
// bitfield packing and straddling, _Alignas, and nested structs.
func TestLayoutGolden(t *testing.T) {
	point := mkStruct("point", false,
		Field{Name: "tag", Type: Char},
		Field{Name: "x", Type: Int},
		Field{Name: "y", Type: Int},
	)
	pkt := mkStruct("pkt", false,
		Field{Name: "name", Type: Array{Elem: Char, Len: 8}},
		Field{Name: "count", Type: Int},
	)
	tail := mkStruct("tail", false,
		Field{Name: "n", Type: Int},
		Field{Name: "c", Type: Char},
	)
	ptrs := mkStruct("ptrs", false,
		Field{Name: "c", Type: Char},
		Field{Name: "p", Type: PointerTo(Char)},
		Field{Name: "d", Type: Char},
	)
	u := mkStruct("u", true,
		Field{Name: "tag", Type: Array{Elem: Char, Len: 4}},
		Field{Name: "v", Type: Int},
		Field{Name: "p", Type: PointerTo(Char)},
	)
	bits := mkStruct("bits", false,
		Field{Name: "a", Type: Int, Bits: 3, Bitfield: true},
		Field{Name: "b", Type: Int, Bits: 5, Bitfield: true},
		Field{Name: "c", Type: Int, Bits: 30, Bitfield: true}, // straddles: pushed to unit 2
		Field{Name: "d", Type: Char},
	)
	bitpad := mkStruct("bitpad", false,
		Field{Name: "a", Type: Int, Bits: 3, Bitfield: true},
		Field{Type: Int, Bits: 0, Bitfield: true}, // zero-width: closes the unit
		Field{Name: "b", Type: Int, Bits: 3, Bitfield: true},
	)
	aligned := mkStruct("aligned", false,
		Field{Name: "c", Type: Char},
		Field{Name: "buf", Type: Array{Elem: Char, Len: 3}, AlignAs: 8},
	)
	nested := mkStruct("nested", false,
		Field{Name: "c", Type: Char},
		Field{Name: "in", Type: point},
	)

	cases := []struct {
		s      *Struct
		target Target
		want   string
	}{
		{point, Paper32, "struct size=9 align=1\n  tag      off=0 size=1 align=1\n  x        off=1 size=4 align=1\n  y        off=5 size=4 align=1\n"},
		{point, SysV64, "struct size=12 align=4\n  tag      off=0 size=1 align=1\n  x        off=4 size=4 align=4\n  y        off=8 size=4 align=4\n"},
		{pkt, Paper32, "struct size=12 align=1\n  name     off=0 size=8 align=1\n  count    off=8 size=4 align=1\n"},
		{pkt, SysV64, "struct size=12 align=4\n  name     off=0 size=8 align=1\n  count    off=8 size=4 align=4\n"},
		{tail, Paper32, "struct size=5 align=1\n  n        off=0 size=4 align=1\n  c        off=4 size=1 align=1\n"},
		// Tail padding: 3 bytes after c to round the size up to align 4.
		{tail, SysV64, "struct size=8 align=4\n  n        off=0 size=4 align=4\n  c        off=4 size=1 align=1\n"},
		{ptrs, Paper32, "struct size=6 align=1\n  c        off=0 size=1 align=1\n  p        off=1 size=4 align=1\n  d        off=5 size=1 align=1\n"},
		{ptrs, SysV64, "struct size=24 align=8\n  c        off=0 size=1 align=1\n  p        off=8 size=8 align=8\n  d        off=16 size=1 align=1\n"},
		{u, Paper32, "union size=4 align=1\n  tag      off=0 size=4 align=1\n  v        off=0 size=4 align=1\n  p        off=0 size=4 align=1\n"},
		{u, SysV64, "union size=8 align=8\n  tag      off=0 size=4 align=1\n  v        off=0 size=4 align=4\n  p        off=0 size=8 align=8\n"},
		// Packed model: each named bitfield occupies its declared type's size.
		{bits, Paper32, "struct size=13 align=1\n  a        off=0 size=4 align=1 bits=3 bitoff=0\n  b        off=4 size=4 align=1 bits=5 bitoff=0\n  c        off=8 size=4 align=1 bits=30 bitoff=0\n  d        off=12 size=1 align=1\n"},
		// SysV: a and b share unit 0; c (30 bits) cannot start at bit 8
		// without straddling, so it opens unit 1; d follows at byte 8.
		{bits, SysV64, "struct size=12 align=4\n  a        off=0 size=4 align=4 bits=3 bitoff=0\n  b        off=0 size=4 align=4 bits=5 bitoff=3\n  c        off=4 size=4 align=4 bits=30 bitoff=0\n  d        off=8 size=1 align=1\n"},
		{bitpad, Paper32, "struct size=8 align=1\n  a        off=0 size=4 align=1 bits=3 bitoff=0\n  b        off=4 size=4 align=1 bits=3 bitoff=0\n"},
		{bitpad, SysV64, "struct size=8 align=4\n  a        off=0 size=4 align=4 bits=3 bitoff=0\n  b        off=4 size=4 align=4 bits=3 bitoff=0\n"},
		{aligned, Paper32, "struct size=4 align=1\n  c        off=0 size=1 align=1\n  buf      off=1 size=3 align=1\n"},
		{aligned, SysV64, "struct size=16 align=8\n  c        off=0 size=1 align=1\n  buf      off=8 size=3 align=8\n"},
		{nested, Paper32, "struct size=10 align=1\n  c        off=0 size=1 align=1\n  in       off=1 size=9 align=1\n"},
		{nested, SysV64, "struct size=16 align=4\n  c        off=0 size=1 align=1\n  in       off=4 size=12 align=4\n"},
	}
	for _, tc := range cases {
		e := NewEngine(tc.target)
		got := renderLayout(e.LayoutOf(tc.s))
		if got != tc.want {
			t.Errorf("%s under %s:\ngot:\n%swant:\n%s", tc.s, tc.target, got, tc.want)
		}
	}
}

func TestEngineSizeAlign(t *testing.T) {
	p32 := NewEngine(Paper32)
	s64 := NewEngine(SysV64)
	cases := []struct {
		t                Type
		size32, size64   int
		align32, align64 int
	}{
		{Char, 1, 1, 1, 1},
		{Int, 4, 4, 1, 4},
		{PointerTo(Char), 4, 8, 1, 8},
		{Array{Elem: Int, Len: 3}, 12, 12, 1, 4},
		{Array{Elem: PointerTo(Char), Len: 2}, 8, 16, 1, 8},
		{Void{}, 0, 0, 1, 1},
	}
	for _, tc := range cases {
		if got := p32.SizeOf(tc.t); got != tc.size32 {
			t.Errorf("paper32 SizeOf(%s) = %d, want %d", tc.t, got, tc.size32)
		}
		if got := s64.SizeOf(tc.t); got != tc.size64 {
			t.Errorf("sysv64 SizeOf(%s) = %d, want %d", tc.t, got, tc.size64)
		}
		if got := p32.AlignOf(tc.t); got != tc.align32 {
			t.Errorf("paper32 AlignOf(%s) = %d, want %d", tc.t, got, tc.align32)
		}
		if got := s64.AlignOf(tc.t); got != tc.align64 {
			t.Errorf("sysv64 AlignOf(%s) = %d, want %d", tc.t, got, tc.align64)
		}
	}
}

func TestNilEngineIsPaper32(t *testing.T) {
	var e *Engine
	s := mkStruct("s", false, Field{Name: "c", Type: Char}, Field{Name: "n", Type: Int})
	if e.Target() != Paper32 || e.FieldSensitive() {
		t.Fatalf("nil engine: Target=%v FieldSensitive=%v", e.Target(), e.FieldSensitive())
	}
	if got := e.SizeOf(s); got != s.Size() {
		t.Fatalf("nil engine SizeOf = %d, want %d", got, s.Size())
	}
	l := e.LayoutOf(s)
	if l.Size != s.ByteLen || l.Fields[1].Offset != s.Fields[1].Offset {
		t.Fatalf("nil engine layout %+v disagrees with packed struct", l)
	}
}

func TestUnionOverlap(t *testing.T) {
	u := mkStruct("u", true,
		Field{Name: "tag", Type: Array{Elem: Char, Len: 4}},
		Field{Name: "v", Type: Int},
		Field{Name: "p", Type: PointerTo(Char)},
	)
	l := NewEngine(SysV64).LayoutOf(u)
	// Every member starts at 0, so all pairs overlap.
	for i := range l.Fields {
		if got := len(l.Overlapping(i)); got != 2 {
			t.Errorf("union member %d overlaps %d others, want 2", i, got)
		}
	}
	// Struct members never overlap (bitfields in distinct units).
	s := mkStruct("s", false,
		Field{Name: "a", Type: Int},
		Field{Name: "b", Type: Int},
	)
	ls := NewEngine(SysV64).LayoutOf(s)
	if got := l.FieldIndex("v"); got != 1 {
		t.Errorf("FieldIndex(v) = %d", got)
	}
	if n := len(ls.Overlapping(0)); n != 0 {
		t.Errorf("struct members overlap: %d", n)
	}
	// Bitfields sharing a storage unit do overlap.
	bf := mkStruct("bf", false,
		Field{Name: "a", Type: Int, Bits: 3, Bitfield: true},
		Field{Name: "b", Type: Int, Bits: 5, Bitfield: true},
	)
	lb := NewEngine(SysV64).LayoutOf(bf)
	if n := len(lb.Overlapping(0)); n != 1 {
		t.Errorf("bitfields in one unit should overlap, got %d", n)
	}
}

func TestParseTarget(t *testing.T) {
	if tg, err := ParseTarget(""); err != nil || tg != Paper32 {
		t.Errorf("ParseTarget(\"\") = %v, %v", tg, err)
	}
	if tg, err := ParseTarget("sysv64"); err != nil || tg != SysV64 {
		t.Errorf("ParseTarget(sysv64) = %v, %v", tg, err)
	}
	if _, err := ParseTarget("ilp32"); err == nil {
		t.Errorf("ParseTarget(ilp32) should fail")
	}
}

func TestStructEqualLayout(t *testing.T) {
	a := mkStruct("s", false, Field{Name: "x", Type: Int}, Field{Name: "y", Type: Char})
	b := mkStruct("s", false, Field{Name: "x", Type: Int}, Field{Name: "y", Type: Char})
	c := mkStruct("s", false, Field{Name: "x", Type: Int}, Field{Name: "z", Type: Char})
	d := mkStruct("s", false, Field{Name: "x", Type: Int}, Field{Name: "y", Type: Int})
	if !a.Equal(b) {
		t.Errorf("identical layouts should compare equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Errorf("redeclarations with different field lists must not compare equal")
	}
	// Self-referential structs must terminate.
	list := &Struct{Tag: "list"}
	list.SetFields([]Field{{Name: "v", Type: Int}, {Name: "next", Type: PointerTo(list)}})
	list2 := &Struct{Tag: "list"}
	list2.SetFields([]Field{{Name: "v", Type: Int}, {Name: "next", Type: PointerTo(list2)}})
	if !list.Equal(list2) {
		t.Errorf("structurally identical recursive structs should compare equal")
	}
	un := mkStruct("s", true, Field{Name: "x", Type: Int}, Field{Name: "y", Type: Char})
	if a.Equal(un) {
		t.Errorf("struct and union with the same tag must differ")
	}
}

// decodeFields turns fuzz bytes into a deterministic field list: each byte
// picks a type/bitfield shape. Mirrors the grammar the parser can produce.
func decodeFields(data []byte) []Field {
	var fields []Field
	for i, b := range data {
		if i >= 12 {
			break
		}
		name := fmt.Sprintf("f%d", i)
		switch b % 6 {
		case 0:
			fields = append(fields, Field{Name: name, Type: Char})
		case 1:
			fields = append(fields, Field{Name: name, Type: Int})
		case 2:
			fields = append(fields, Field{Name: name, Type: PointerTo(Char)})
		case 3:
			fields = append(fields, Field{Name: name, Type: Array{Elem: Char, Len: int(b%7) + 1}})
		case 4:
			fields = append(fields, Field{Name: name, Type: Int, Bits: int(b%31) + 1, Bitfield: true})
		case 5:
			fields = append(fields, Field{Type: Int, Bitfield: true}) // zero-width pad
		}
	}
	return fields
}

func FuzzLayout(f *testing.F) {
	f.Add([]byte{0, 1, 2}, false)
	f.Add([]byte{4, 4, 4, 5, 4}, false)
	f.Add([]byte{1, 0, 2, 3}, true)
	f.Add([]byte{3, 4, 0, 1, 2, 5, 4, 3}, false)
	f.Fuzz(func(t *testing.T, data []byte, union bool) {
		fields := decodeFields(data)
		s := &Struct{Tag: "fz", Union: union}
		s.SetFields(fields)
		for _, target := range []Target{Paper32, SysV64} {
			e := NewEngine(target)
			l := e.LayoutOf(s)
			if l.Align < 1 {
				t.Fatalf("%s: align %d < 1", target, l.Align)
			}
			if l.Size%l.Align != 0 {
				t.Fatalf("%s: size %d not a multiple of align %d", target, l.Size, l.Align)
			}
			for i := range l.Fields {
				fl := &l.Fields[i]
				if fl.Offset < 0 || fl.Offset+fl.Size > l.Size {
					t.Fatalf("%s: field %s [%d,%d) escapes size %d", target, fl.Name, fl.Offset, fl.Offset+fl.Size, l.Size)
				}
				if fl.Align >= 1 && fl.Offset%fl.Align != 0 {
					t.Fatalf("%s: field %s offset %d not aligned to %d", target, fl.Name, fl.Offset, fl.Align)
				}
				if fl.Bits > 0 && fl.BitOffset+fl.Bits > fl.Size*8 {
					t.Fatalf("%s: bitfield %s escapes its storage unit", target, fl.Name)
				}
				if union && fl.Offset != 0 {
					t.Fatalf("%s: union member %s at offset %d", target, fl.Name, fl.Offset)
				}
			}
			// Paper32 must mirror the packed struct exactly.
			if target == Paper32 {
				if l.Size != s.ByteLen {
					t.Fatalf("paper32 size %d != packed ByteLen %d", l.Size, s.ByteLen)
				}
				j := 0
				for i := range s.Fields {
					if s.Fields[i].IsPad() {
						continue
					}
					if l.Fields[j].Offset != s.Fields[i].Offset {
						t.Fatalf("paper32 field %s offset %d != packed %d",
							s.Fields[i].Name, l.Fields[j].Offset, s.Fields[i].Offset)
					}
					j++
				}
			}
		}
	})
}
