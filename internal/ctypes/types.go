// Package ctypes models the C type system for the subset CSSV analyzes.
//
// Sizes follow the paper's running assumptions (§2.4, Fig. 5): char is one
// byte, int and pointers are four bytes. Structs are laid out without
// padding; CSSV's semantics only needs field offsets and total sizes, not
// ABI-accurate alignment.
package ctypes

import (
	"fmt"
	"strings"
)

// Byte sizes of the primitive types.
const (
	CharSize    = 1
	IntSize     = 4
	PointerSize = 4
)

// Type is a C type.
type Type interface {
	// Size returns the storage size in bytes (0 for void and functions).
	Size() int
	String() string
	// Equal reports structural equality (structs compare by name).
	Equal(Type) bool
}

// Void is the C void type.
type Void struct{}

func (Void) Size() int         { return 0 }
func (Void) String() string    { return "void" }
func (Void) Equal(t Type) bool { _, ok := t.(Void); return ok }

// Prim is a primitive arithmetic type.
type Prim struct {
	Name  string // "char", "int", "long", "short", "unsigned int", ...
	Bytes int
}

func (p Prim) Size() int      { return p.Bytes }
func (p Prim) String() string { return p.Name }
func (p Prim) Equal(t Type) bool {
	q, ok := t.(Prim)
	return ok && p.Name == q.Name
}

// Predefined primitive types.
var (
	Char = Prim{Name: "char", Bytes: CharSize}
	Int  = Prim{Name: "int", Bytes: IntSize}
)

// IsChar reports whether t is a character type.
func IsChar(t Type) bool {
	p, ok := t.(Prim)
	return ok && p.Bytes == CharSize
}

// IsInteger reports whether t is any integer (arithmetic) type.
func IsInteger(t Type) bool {
	_, ok := t.(Prim)
	return ok
}

// Pointer is a pointer type.
type Pointer struct {
	Elem Type
}

func (p Pointer) Size() int      { return PointerSize }
func (p Pointer) String() string { return p.Elem.String() + "*" }
func (p Pointer) Equal(t Type) bool {
	q, ok := t.(Pointer)
	return ok && p.Elem.Equal(q.Elem)
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(Pointer)
	return ok
}

// PointerTo returns the type "elem*".
func PointerTo(elem Type) Pointer { return Pointer{Elem: elem} }

// Elem returns the pointee/element type of a pointer or array, or nil.
func Elem(t Type) Type {
	switch t := t.(type) {
	case Pointer:
		return t.Elem
	case Array:
		return t.Elem
	}
	return nil
}

// Array is a constant-size array type.
type Array struct {
	Elem Type
	Len  int
}

func (a Array) Size() int      { return a.Elem.Size() * a.Len }
func (a Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (a Array) Equal(t Type) bool {
	b, ok := t.(Array)
	return ok && a.Len == b.Len && a.Elem.Equal(b.Elem)
}

// IsArray reports whether t is an array type.
func IsArray(t Type) bool {
	_, ok := t.(Array)
	return ok
}

// Field is a struct or union member.
type Field struct {
	Name     string
	Type     Type
	Offset   int  // byte offset within the struct (0 for all union members)
	Bits     int  // declared bitfield width (meaningful when Bitfield is set)
	Bitfield bool // member was declared with a `: width` suffix
	AlignAs  int  // _Alignas(N) override, 0 when absent
}

// IsPad reports whether f is an anonymous zero-width bitfield, which
// occupies no storage of its own but forces alignment under ABI-accurate
// targets.
func (f *Field) IsPad() bool { return f.Bitfield && f.Name == "" }

// Struct is a struct or union type. Structs compare by tag name so that
// recursive types (linked lists) terminate.
type Struct struct {
	Tag     string
	Union   bool
	Fields  []Field
	ByteLen int
}

func (s *Struct) Size() int { return s.ByteLen }
func (s *Struct) String() string {
	kind := "struct"
	if s.Union {
		kind = "union"
	}
	if s.Tag != "" {
		return kind + " " + s.Tag
	}
	var b strings.Builder
	b.WriteString(kind + " {")
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
	}
	b.WriteString("}")
	return b.String()
}
func (s *Struct) Equal(t Type) bool {
	q, ok := t.(*Struct)
	if !ok {
		return false
	}
	if s == q {
		return true
	}
	// Distinct objects compare equal only when their layouts agree under the
	// active model: same tag/kind and, field by field, the same name, offset,
	// storage size, and bitfield shape. Field types are compared by their
	// printed form rather than Equal to keep self-referential structs
	// (struct list { struct list *next; }) from recursing: String() stops at
	// the tag.
	if s.Tag != q.Tag || s.Union != q.Union || s.ByteLen != q.ByteLen || len(s.Fields) != len(q.Fields) {
		return false
	}
	for i := range s.Fields {
		f, g := &s.Fields[i], &q.Fields[i]
		if f.Name != g.Name || f.Offset != g.Offset ||
			f.Bitfield != g.Bitfield || f.Bits != g.Bits || f.AlignAs != g.AlignAs {
			return false
		}
		if f.Type.Size() != g.Type.Size() || f.Type.String() != g.Type.String() {
			return false
		}
	}
	return true
}

// Field returns the field named name, or nil.
func (s *Struct) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// SetFields installs the member list and computes offsets and total size
// under the paper's packed model: members are laid out back to back with no
// padding, union members all start at offset 0. Named bitfields occupy their
// declared type's full storage here (the packed model has no sub-byte
// packing); anonymous zero-width bitfields occupy nothing. ABI-accurate
// layouts are computed separately by an Engine and never mutate the struct.
func (s *Struct) SetFields(fields []Field) {
	off := 0
	maxSize := 0
	for i := range fields {
		sz := fields[i].Type.Size()
		if fields[i].IsPad() {
			sz = 0
		}
		if s.Union {
			fields[i].Offset = 0
		} else {
			fields[i].Offset = off
			off += sz
		}
		if sz > maxSize {
			maxSize = sz
		}
	}
	s.Fields = fields
	if s.Union {
		s.ByteLen = maxSize
	} else {
		s.ByteLen = off
	}
}

// Func is a function type.
type Func struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (f *Func) Size() int { return 0 }
func (f *Func) String() string {
	var b strings.Builder
	b.WriteString(f.Ret.String())
	b.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if f.Variadic {
		if len(f.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}
func (f *Func) Equal(t Type) bool {
	g, ok := t.(*Func)
	if !ok || len(f.Params) != len(g.Params) || f.Variadic != g.Variadic {
		return false
	}
	if !f.Ret.Equal(g.Ret) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(g.Params[i]) {
			return false
		}
	}
	return true
}

// IsFunc reports whether t is a function type.
func IsFunc(t Type) bool {
	_, ok := t.(*Func)
	return ok
}

// Decay converts array types to pointers to their element (the implicit
// array-to-pointer conversion of C expressions) and functions to function
// pointers; other types pass through.
func Decay(t Type) Type {
	switch t := t.(type) {
	case Array:
		return PointerTo(t.Elem)
	case *Func:
		return PointerTo(t)
	}
	return t
}

// IsScalar reports whether values of t fit in a single abstract cell
// (integers and pointers).
func IsScalar(t Type) bool { return IsInteger(t) || IsPointer(t) }
