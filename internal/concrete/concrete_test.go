package concrete

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/libc"
)

func prep(t *testing.T, src string) *Interp {
	t.Helper()
	f, err := cparse.ParseFile("t.c", libc.Header+"\n"+src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := corec.Normalize(f)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return New(prog)
}

func TestInterpArithmetic(t *testing.T) {
	in := prep(t, `
int triple(int x) { return x * 3; }
int sum(int n) {
    int s;
    int i;
    s = 0;
    for (i = 1; i <= n; i++) s += i;
    return s;
}
`)
	v, err := in.CallInts("triple", 14)
	if err != nil || v != 42 {
		t.Errorf("triple(14) = %d, %v", v, err)
	}
	v, err = in.CallInts("sum", 10)
	if err != nil || v != 55 {
		t.Errorf("sum(10) = %d, %v", v, err)
	}
}

func TestInterpStrings(t *testing.T) {
	in := prep(t, `
int mylen(char *s) {
    int n;
    n = 0;
    while (*s != '\0') {
        n = n + 1;
        s = s + 1;
    }
    return n;
}
`)
	s := in.MakeString("hello", 0)
	v, err := in.Call("mylen", s)
	if err != nil || v.i != 5 {
		t.Errorf("mylen(hello) = %v, %v", v.i, err)
	}
}

func TestInterpDetectsOverflow(t *testing.T) {
	in := prep(t, `
void smash(char *buf, int n) {
    buf[n] = 'x';
}
`)
	b := in.MakeBuffer(8)
	if _, err := in.Call("smash", b, MakeInt(7)); err != nil {
		t.Errorf("in-bounds write flagged: %v", err)
	}
	if _, err := in.Call("smash", b, MakeInt(8)); err == nil {
		t.Error("out-of-bounds write not flagged")
	} else if err.Kind != ErrOutOfBounds {
		t.Errorf("wrong kind: %v", err)
	}
}

func TestInterpDetectsBadArith(t *testing.T) {
	in := prep(t, `
char *back(char *p) { return p - 1; }
`)
	s := in.MakeString("a", 0)
	if _, err := in.Call("back", s); err == nil || err.Kind != ErrBadArith {
		t.Errorf("p-1 from base not flagged as bad arithmetic: %v", err)
	}
}

func TestInterpDetectsBeyondNull(t *testing.T) {
	in := prep(t, `
char peek(char *s, int i) { return s[i]; }
`)
	s := in.MakeString("ab", 3) // region: a b \0 ? ? ?
	if _, err := in.Call("peek", s, MakeInt(2)); err != nil {
		t.Errorf("read at terminator flagged: %v", err)
	}
	_, err := in.Call("peek", s, MakeInt(3))
	if err == nil {
		t.Error("read beyond terminator not flagged")
	}
}

func TestInterpDetectsUninit(t *testing.T) {
	in := prep(t, `
int useuninit() {
    int x;
    return x + 1;
}
`)
	if _, err := in.Call("useuninit"); err == nil || err.Kind != ErrUninitRead {
		t.Errorf("uninitialized read not flagged: %v", err)
	}
}

// TestInterpSkipLine executes the paper's running example concretely: the
// pointer advances and the text is rewritten in place.
func TestInterpSkipLine(t *testing.T) {
	in := prep(t, `
void SkipLine(int NbLine, char **PtrEndText) {
    int indice;
    char *PtrEndLoc;
    indice = 0;
begin_loop:
    if (indice >= NbLine) goto end_loop;
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\n';
    *PtrEndText = PtrEndLoc + 1;
    indice = indice + 1;
    goto begin_loop;
end_loop:
    PtrEndLoc = *PtrEndText;
    *PtrEndLoc = '\0';
}
`)
	buf := in.MakeString("", 15) // 16-byte buffer, empty string
	pp := in.MakePtrTo(buf)
	if _, err := in.Call("SkipLine", MakeInt(3), pp); err != nil {
		t.Fatalf("SkipLine errored: %v", err)
	}
	// *pp advanced by 3.
	np := in.Deref(pp)
	if np.off != 3 {
		t.Errorf("pointer advanced to %d, want 3", np.off)
	}
	if got := in.StringAt(buf); got != "\n\n\n" {
		t.Errorf("buffer = %q, want three newlines", got)
	}
	// And the paper's off-by-one: a buffer with exactly 1 byte free cannot
	// take 2 newlines.
	small := in.MakeString("", 0) // 1 byte
	pp2 := in.MakePtrTo(small)
	if _, err := in.Call("SkipLine", MakeInt(1), pp2); err == nil {
		t.Error("overflowing SkipLine not flagged")
	}
}

func TestInterpLibcModels(t *testing.T) {
	in := prep(t, `
int uses(char *dst, char *src) {
    strcpy(dst, src);
    strcat(dst, src);
    return strlen(dst);
}
`)
	dst := in.MakeBuffer(16)
	src := in.MakeString("abc", 0)
	v, err := in.Call("uses", dst, src)
	if err != nil || v.i != 6 {
		t.Errorf("strcpy+strcat gave %v, %v", v.i, err)
	}
	if got := in.StringAt(dst); got != "abcabc" {
		t.Errorf("dst = %q", got)
	}
	// Overflowing strcpy is flagged.
	tiny := in.MakeBuffer(3)
	if _, err := in.Call("uses", tiny, src); err == nil || err.Kind != ErrOutOfBounds {
		t.Errorf("overflowing strcpy not flagged: %v", err)
	}
}

func TestInterpFgets(t *testing.T) {
	in := prep(t, `
int readline(char *buf, int n) {
    fgets(buf, n, 0);
    return strlen(buf);
}
`)
	in.Input = []string{"hello world"}
	buf := in.MakeBuffer(32)
	v, err := in.Call("readline", buf, MakeInt(32))
	if err != nil || v.i != 11 {
		t.Errorf("readline = %v, %v", v.i, err)
	}
	// Truncation at n-1.
	in.Input = []string{"0123456789"}
	buf2 := in.MakeBuffer(8)
	v, err = in.Call("readline", buf2, MakeInt(8))
	if err != nil || v.i != 7 {
		t.Errorf("truncated readline = %v, %v", v.i, err)
	}
}

func TestInterpRemoveNewlineBug(t *testing.T) {
	// The fixwrites bug reproduces concretely: an empty line underflows.
	in := prep(t, `
void remove_newline(char *line) {
    int n;
    n = strlen(line);
    line[n - 1] = '\0';
}
`)
	ok := in.MakeString("text\n", 0)
	if _, err := in.Call("remove_newline", ok); err != nil {
		t.Errorf("normal line flagged: %v", err)
	}
	empty := in.MakeString("", 0)
	if _, err := in.Call("remove_newline", empty); err == nil {
		t.Error("empty-line underflow not flagged")
	}
}

func TestInterpSprintf(t *testing.T) {
	in := prep(t, `
char out[32];
void hello(char *who) {
    sprintf(out, "hi %s!", who);
}
char tiny[4];
void boom(char *who) {
    sprintf(tiny, "hi %s!", who);
}
`)
	who := in.MakeString("bob", 0)
	if _, err := in.Call("hello", who); err != nil {
		t.Errorf("sprintf flagged: %v", err)
	}
	if _, err := in.Call("boom", who); err == nil {
		t.Error("overflowing sprintf not flagged")
	}
}

func TestInterpErrorStrings(t *testing.T) {
	e := &RuntimeError{Kind: ErrOutOfBounds, Pos: "f.c:3:1", Msg: "boom"}
	if !strings.Contains(e.Error(), "out-of-bounds") {
		t.Errorf("error string: %s", e)
	}
}

// TestInterpPanicCarriesPosition: an internal panic (here provoked by a
// malformed AST) escapes Call wrapped in a PanicError naming the statement
// that was executing, instead of a bare, position-less panic.
func TestInterpPanicCarriesPosition(t *testing.T) {
	in := prep(t, `
int broken(int x) {
    if (x > 0) goto done;
    x = 0 - x;
done:
    return x;
}
`)
	fd := in.prog.File.Lookup("broken")
	var ifPos string
	for _, s := range fd.Body.Stmts {
		if iff, ok := s.(*cast.If); ok {
			ifPos = iff.Pos().String()
			iff.Then = &cast.Empty{} // malformed: exec asserts *cast.Goto
			break
		}
	}
	if ifPos == "" {
		t.Fatal("no If statement in normalized body")
	}
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("escaped panic = %#v, want *PanicError", r)
		}
		if pe.Pos != ifPos {
			t.Errorf("PanicError.Pos = %q, want %q", pe.Pos, ifPos)
		}
		if !strings.Contains(pe.Error(), "internal interpreter panic") {
			t.Errorf("Error() = %q", pe.Error())
		}
	}()
	in.CallInts("broken", 1)
	t.Fatal("malformed If did not panic")
}
