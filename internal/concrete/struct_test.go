package concrete

import "testing"

// TestInterpStructs: member access through the byte-arithmetic lowering
// round-trips values.
func TestInterpStructs(t *testing.T) {
	in := prep(t, `
struct pair {
    int a;
    int b;
};
int swap_sum(struct pair *p) {
    int t;
    t = p->a;
    p->a = p->b;
    p->b = t;
    return p->a + p->b;
}
`)
	r := in.MakeBuffer(8)
	// Initialize the fields through the interpreter's word overlay.
	in.writeMem(value{kind: vPtr, base: r.base, off: 0}, 4, value{kind: vInt, i: 3}, "init")
	in.writeMem(value{kind: vPtr, base: r.base, off: 4}, 4, value{kind: vInt, i: 9}, "init")
	v, err := in.Call("swap_sum", r)
	if err != nil {
		t.Fatalf("swap_sum: %v", err)
	}
	if v.i != 12 {
		t.Errorf("sum = %d", v.i)
	}
	a := in.readMem(value{kind: vPtr, base: r.base, off: 0}, 4, "check")
	b := in.readMem(value{kind: vPtr, base: r.base, off: 4}, 4, "check")
	if a.i != 9 || b.i != 3 {
		t.Errorf("after swap a=%d b=%d", a.i, b.i)
	}
}

// TestInterpPointerCompare: loop guards comparing pointers.
func TestInterpPointerCompare(t *testing.T) {
	in := prep(t, `
int span(char *lo, char *hi) {
    int n;
    n = 0;
    while (lo < hi) {
        lo = lo + 1;
        n = n + 1;
    }
    return n;
}
`)
	s := in.MakeString("abcdef", 0)
	hi := value{kind: vPtr, base: s.base, off: 4}
	v, err := in.Call("span", s, hi)
	if err != nil || v.i != 4 {
		t.Errorf("span = %v, %v", v.i, err)
	}
}

// TestInterpDivRem: integer division semantics.
func TestInterpDivRem(t *testing.T) {
	in := prep(t, `
int div(int a, int b) { return a / b; }
int rem(int a, int b) { return a % b; }
`)
	if v, err := in.CallInts("div", 7, 2); err != nil || v != 3 {
		t.Errorf("7/2 = %v, %v", v, err)
	}
	if v, err := in.CallInts("rem", -7, 3); err != nil || v != -1 {
		t.Errorf("-7%%3 = %v, %v", v, err)
	}
	if _, err := in.CallInts("div", 1, 0); err == nil {
		t.Error("division by zero not flagged")
	}
}

// TestInterpFunctionPointer: calls through function-pointer variables.
func TestInterpFunctionPointer(t *testing.T) {
	in := prep(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(int sel, int x) {
    int (*op)(int);
    if (sel) {
        op = &twice;
    } else {
        op = &thrice;
    }
    return op(x);
}
`)
	if v, err := in.CallInts("apply", 1, 5); err != nil || v != 10 {
		t.Errorf("apply(1,5) = %v, %v", v, err)
	}
	if v, err := in.CallInts("apply", 0, 5); err != nil || v != 15 {
		t.Errorf("apply(0,5) = %v, %v", v, err)
	}
}

// TestInterpGlobals: globals persist across calls and arrays are zeroed.
func TestInterpGlobals(t *testing.T) {
	in := prep(t, `
int counter;
char gbuf[8];
int tick(void) {
	counter = counter + 1;
	return counter;
}
int firstbyte(void) { return gbuf[0]; }
`)
	if v, _ := in.CallInts("tick"); v != 1 {
		t.Errorf("first tick = %d", v)
	}
	if v, _ := in.CallInts("tick"); v != 2 {
		t.Errorf("second tick = %d", v)
	}
	if v, err := in.CallInts("firstbyte"); err != nil || v != 0 {
		t.Errorf("global array not zeroed: %v, %v", v, err)
	}
}

// TestInterpStepLimit: runaway loops abort with ErrOther, not a hang.
func TestInterpStepLimit(t *testing.T) {
	in := prep(t, `
void spin(void) {
    int i;
    i = 0;
    while (i >= 0) {
        i = i + 0;
    }
}
`)
	in.StepLimit = 1000
	_, err := in.Call("spin")
	if err == nil || err.Kind != ErrOther {
		t.Errorf("step limit: %v", err)
	}
}
