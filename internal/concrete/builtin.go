package concrete

import (
	"fmt"
	"strings"

	"repro/internal/cast"
)

// evalCall executes a call expression, resolving calls through
// function-pointer variables.
func (in *Interp) evalCall(fr *frame, c *cast.Call) value {
	name := c.FuncName()
	// A variable holding a function value shadows a same-named function.
	if fv, ok := fr.vars[name]; ok && fv.kind == vFunc {
		name = fv.fname
	} else if rid, boxed := fr.boxes[name]; boxed {
		if bv := in.regions[rid].overlay[0]; bv.kind == vFunc {
			name = bv.fname
		}
	}
	args := make([]value, len(c.Args))
	for i, a := range c.Args {
		args[i] = in.eval(fr, a)
	}
	return in.call(name, args)
}

// builtin executes a modeled library function natively; ok=false defers to
// user-defined functions.
func (in *Interp) builtin(name string, args []value) (value, bool) {
	switch name {
	case "malloc", "alloca":
		n := in.argInt(args, 0, name)
		if n < 0 {
			errf(ErrContract, name, "allocation of negative size %d", n)
		}
		r := in.alloc(int(n))
		return value{kind: vPtr, base: r.id}, true
	case "free":
		return value{kind: vInt}, true
	case "strlen":
		s := in.argPtr(args, 0, name)
		return value{kind: vInt, i: int64(in.cstrlen(s, name))}, true
	case "strcpy":
		dst := in.argPtr(args, 0, name)
		src := in.argPtr(args, 1, name)
		n := in.cstrlen(src, name)
		in.checkRoom(dst, n+1, name)
		for i := 0; i <= n; i++ {
			b := in.readMem(value{kind: vPtr, base: src.base, off: src.off + i}, 1, name)
			in.writeMem(value{kind: vPtr, base: dst.base, off: dst.off + i}, 1, b, name)
		}
		return dst, true
	case "strcat":
		dst := in.argPtr(args, 0, name)
		src := in.argPtr(args, 1, name)
		dn := in.cstrlen(dst, name)
		sn := in.cstrlen(src, name)
		in.checkRoom(dst, dn+sn+1, name)
		for i := 0; i <= sn; i++ {
			b := in.readMem(value{kind: vPtr, base: src.base, off: src.off + i}, 1, name)
			in.writeMem(value{kind: vPtr, base: dst.base, off: dst.off + dn + i}, 1, b, name)
		}
		return dst, true
	case "strchr":
		s := in.argPtr(args, 0, name)
		want := byte(in.argInt(args, 1, name))
		n := in.cstrlen(s, name)
		for i := 0; i <= n; i++ {
			b := in.readMem(value{kind: vPtr, base: s.base, off: s.off + i}, 1, name)
			if byte(b.i) == want {
				return value{kind: vPtr, base: s.base, off: s.off + i}, true
			}
		}
		return value{kind: vInt, i: 0}, true // NULL
	case "memset":
		s := in.argPtr(args, 0, name)
		b := byte(in.argInt(args, 1, name))
		n := int(in.argInt(args, 2, name))
		in.checkRoom(s, n, name)
		for i := 0; i < n; i++ {
			in.writeMem(value{kind: vPtr, base: s.base, off: s.off + i}, 1,
				value{kind: vInt, i: int64(b)}, name)
		}
		return s, true
	case "fgets", "gets":
		s := in.argPtr(args, 0, name)
		limit := 1 << 30
		if name == "fgets" {
			limit = int(in.argInt(args, 1, name))
			if limit < 1 {
				errf(ErrContract, name, "fgets with n = %d", limit)
			}
		}
		line := ""
		if len(in.Input) > 0 {
			line = in.Input[0]
			in.Input = in.Input[1:]
		}
		if name == "fgets" && len(line) > limit-1 {
			line = line[:limit-1]
		}
		for i := 0; i < len(line); i++ {
			in.writeMem(value{kind: vPtr, base: s.base, off: s.off + i}, 1,
				value{kind: vInt, i: int64(line[i])}, name)
		}
		in.writeMem(value{kind: vPtr, base: s.base, off: s.off + len(line)}, 1,
			value{kind: vInt}, name)
		return s, true
	case "getchar":
		if len(in.Input) > 0 && len(in.Input[0]) > 0 {
			ch := in.Input[0][0]
			in.Input[0] = in.Input[0][1:]
			return value{kind: vInt, i: int64(ch)}, true
		}
		return value{kind: vInt, i: -1}, true
	case "putchar", "fputc", "fgetc", "exit", "abort", "free_":
		return value{kind: vInt}, true
	case "puts", "fputs":
		s := in.argPtr(args, 0, name)
		in.cstrlen(s, name) // must be a valid string
		return value{kind: vInt}, true
	case "printf", "fprintf":
		return value{kind: vInt}, true
	case "sprintf":
		return in.sprintfImpl(args), true
	case "atoi", "isspace", "isdigit", "isalpha", "toupper", "tolower",
		"strcmp", "strncmp":
		// Result-only models; string arguments must still be valid.
		for _, a := range args {
			if a.kind == vPtr {
				in.cstrlen(a, name)
			}
		}
		return value{kind: vInt}, true
	}
	return value{}, false
}

func (in *Interp) argInt(args []value, i int, name string) int64 {
	if i >= len(args) || args[i].kind != vInt {
		errf(ErrContract, name, "argument %d must be an integer", i)
	}
	return args[i].i
}

func (in *Interp) argPtr(args []value, i int, name string) value {
	if i >= len(args) || args[i].kind != vPtr {
		errf(ErrNullDeref, name, "argument %d must be a valid pointer", i)
	}
	return args[i]
}

// cstrlen computes the length of the string at p, flagging unterminated or
// uninitialized buffers.
func (in *Interp) cstrlen(p value, pos string) int {
	r, ok := in.regions[p.base]
	if !ok {
		errf(ErrNullDeref, pos, "string operation on invalid pointer")
	}
	for i := p.off; i < r.size; i++ {
		if !r.init[i] || r.opaque[i] {
			errf(ErrUninitRead, pos, "string operation over uninitialized byte at offset %d", i)
		}
		if r.bytes[i] == 0 {
			return i - p.off
		}
	}
	errf(ErrOutOfBounds, pos, "unterminated string: no null within the region")
	return 0
}

// checkRoom verifies n bytes fit from p.
func (in *Interp) checkRoom(p value, n int, pos string) {
	r, ok := in.regions[p.base]
	if !ok {
		errf(ErrNullDeref, pos, "invalid destination pointer")
	}
	if p.off < 0 || p.off+n > r.size {
		errf(ErrOutOfBounds, pos, "%d byte(s) at offset %d overflow a %d-byte region",
			n, p.off, r.size)
	}
}

// sprintfImpl formats into the destination, supporting %s, %d, %c and %%.
func (in *Interp) sprintfImpl(args []value) value {
	dst := in.argPtr(args, 0, "sprintf")
	format := in.goString(in.argPtr(args, 1, "sprintf"))
	var sb strings.Builder
	argi := 2
	for i := 0; i < len(format); i++ {
		if format[i] != '%' || i+1 >= len(format) {
			sb.WriteByte(format[i])
			continue
		}
		i++
		switch format[i] {
		case '%':
			sb.WriteByte('%')
		case 's':
			sb.WriteString(in.goString(in.argPtr(args, argi, "sprintf")))
			argi++
		case 'd', 'i':
			sb.WriteString(fmt.Sprintf("%d", in.argInt(args, argi, "sprintf")))
			argi++
		case 'c':
			sb.WriteByte(byte(in.argInt(args, argi, "sprintf")))
			argi++
		default:
			sb.WriteByte(format[i])
		}
	}
	out := sb.String()
	in.checkRoom(dst, len(out)+1, "sprintf")
	for i := 0; i < len(out); i++ {
		in.writeMem(value{kind: vPtr, base: dst.base, off: dst.off + i}, 1,
			value{kind: vInt, i: int64(out[i])}, "sprintf")
	}
	in.writeMem(value{kind: vPtr, base: dst.base, off: dst.off + len(out)}, 1,
		value{kind: vInt}, "sprintf")
	return dst
}

// goString extracts the Go string at p.
func (in *Interp) goString(p value) string {
	n := in.cstrlen(p, "string")
	r := in.regions[p.base]
	return string(r.bytes[p.off : p.off+n])
}

// MakeString allocates a region holding s (plus terminator) and returns a
// pointer value to its base — the harness for calling procedures with
// string arguments.
func (in *Interp) MakeString(s string, extra int) value {
	r := in.alloc(len(s) + 1 + extra)
	copy(r.bytes, s)
	for i := 0; i <= len(s); i++ {
		r.init[i] = true
	}
	return value{kind: vPtr, base: r.id}
}

// MakeBuffer allocates an uninitialized region of n bytes.
func (in *Interp) MakeBuffer(n int) value {
	r := in.alloc(n)
	return value{kind: vPtr, base: r.id}
}

// MakeInt wraps an integer argument.
func MakeInt(i int64) value { return value{kind: vInt, i: i} }

// MakePtrTo returns a boxed pointer-to-pointer: a fresh 4-byte cell
// containing p (for char** arguments).
func (in *Interp) MakePtrTo(p value) value {
	r := in.alloc(4)
	r.overlay[0] = p
	for i := 0; i < 4; i++ {
		r.opaque[i] = true
		r.init[i] = true
	}
	return value{kind: vPtr, base: r.id}
}

// Deref reads the word value stored at p (for inspecting out-params).
func (in *Interp) Deref(p value) value {
	return in.readMem(p, 4, "deref")
}

// StringAt returns the Go string a pointer references (test helper).
func (in *Interp) StringAt(p value) string { return in.goString(p) }
