package concrete

import (
	"repro/internal/cast"
	"repro/internal/ctypes"
	"repro/internal/pointer"
)

// truth evaluates a CoreC condition.
func (in *Interp) truth(fr *frame, e cast.Expr) bool {
	switch c := e.(type) {
	case *cast.Binary:
		l := in.eval(fr, c.X)
		r := in.eval(fr, c.Y)
		return compare(c.Op, l, r, posOf(e))
	default:
		v := in.eval(fr, e)
		return !isZero(v)
	}
}

func isZero(v value) bool {
	switch v.kind {
	case vInt:
		return v.i == 0
	case vPtr:
		return false
	}
	errf(ErrUninitRead, "?", "branch on uninitialized value")
	return false
}

func compare(op cast.BinaryOp, l, r value, pos string) bool {
	if l.kind == vUninit || r.kind == vUninit {
		errf(ErrUninitRead, pos, "comparison with uninitialized value")
	}
	// Pointer comparisons compare offsets (same-base assumed, as in the
	// instrumented semantics).
	var a, b int64
	switch {
	case l.kind == vPtr && r.kind == vPtr:
		a, b = int64(l.off), int64(r.off)
	case l.kind == vPtr && r.kind == vInt:
		// p == 0 / p != 0 null checks.
		a, b = 1, 0
		if r.i != 0 {
			a, b = int64(l.off), r.i
		}
	case l.kind == vInt && r.kind == vPtr:
		a, b = 0, 1
		if l.i != 0 {
			a, b = l.i, int64(r.off)
		}
	default:
		a, b = l.i, r.i
	}
	switch op {
	case cast.Lt:
		return a < b
	case cast.Le:
		return a <= b
	case cast.Gt:
		return a > b
	case cast.Ge:
		return a >= b
	case cast.Eq:
		return a == b
	case cast.Ne:
		return a != b
	}
	errf(ErrOther, pos, "bad comparison")
	return false
}

// execExpr runs an assignment or call statement.
func (in *Interp) execExpr(fr *frame, e cast.Expr) {
	switch x := e.(type) {
	case *cast.Assign:
		rhs := in.eval(fr, x.RHS)
		in.store(fr, x.LHS, rhs)
	case *cast.Call:
		in.evalCall(fr, x)
	default:
		errf(ErrOther, posOf(e), "cannot execute expression %T", e)
	}
}

// store writes v to an lvalue (variable or *p).
func (in *Interp) store(fr *frame, lhs cast.Expr, v value) {
	switch l := lhs.(type) {
	case *cast.Ident:
		if rid, boxed := fr.boxes[l.Name]; boxed {
			in.regions[rid].overlay[0] = v
			return
		}
		if _, isLocal := fr.vars[l.Name]; isLocal {
			fr.vars[l.Name] = v
			return
		}
		if _, isGlobal := in.globals[l.Name]; isGlobal {
			in.globals[l.Name] = v
			return
		}
		fr.vars[l.Name] = v
		return
	case *cast.Unary:
		if l.Op == cast.Deref {
			p := in.eval(fr, l.X)
			width := int(in.elemWidth(l.X.Type()))
			in.writeMem(p, width, v, posOf(lhs))
			return
		}
	}
	errf(ErrOther, posOf(lhs), "bad store target %T", lhs)
}

// elemWidth is the byte width of a pointer's pointee under the program's
// layout target; the replayed trace must use the same offsets the
// analysis reasoned about.
func (in *Interp) elemWidth(t ctypes.Type) int64 {
	e := ctypes.Elem(ctypes.Decay(t))
	if e == nil {
		return 1
	}
	if sz := in.prog.Layout.SizeOf(e); sz > 0 {
		return int64(sz)
	}
	return 1
}

// eval evaluates a CoreC expression (atoms and simple RHS forms).
func (in *Interp) eval(fr *frame, e cast.Expr) value {
	switch x := e.(type) {
	case *cast.IntLit:
		return value{kind: vInt, i: x.Value}
	case *cast.Ident:
		return in.evalIdent(fr, x)
	case *cast.Unary:
		switch x.Op {
		case cast.Deref:
			p := in.eval(fr, x.X)
			return in.readMem(p, int(in.elemWidth(x.X.Type())), posOf(e))
		case cast.Addr:
			id := x.X.(*cast.Ident)
			// Address of a scalar variable: box it into a fresh cell
			// region so stores through the pointer are visible.
			return in.addressOf(fr, id)
		case cast.Neg:
			v := in.evalInt(fr, x.X)
			return value{kind: vInt, i: -v}
		case cast.LogNot:
			v := in.eval(fr, x.X)
			if isZero(v) {
				return value{kind: vInt, i: 1}
			}
			return value{kind: vInt, i: 0}
		case cast.BitNot:
			v := in.evalInt(fr, x.X)
			return value{kind: vInt, i: ^v}
		}
	case *cast.Binary:
		return in.evalBinary(fr, x)
	case *cast.Cast:
		v := in.eval(fr, x.X)
		return v // values carry their own tags; casts are representation-only
	case *cast.Call:
		return in.evalCall(fr, x)
	}
	errf(ErrOther, posOf(e), "cannot evaluate %T", e)
	return value{}
}

func (in *Interp) evalInt(fr *frame, e cast.Expr) int64 {
	v := in.eval(fr, e)
	if v.kind == vUninit {
		errf(ErrUninitRead, posOf(e), "use of uninitialized value")
	}
	if v.kind == vPtr {
		errf(ErrOther, posOf(e), "pointer used as integer")
	}
	return v.i
}

func (in *Interp) evalIdent(fr *frame, x *cast.Ident) value {
	if ctypes.IsFunc(typeOfOr(x)) {
		// A function name decays to a function value.
		return value{kind: vFunc, fname: x.Name}
	}
	if ctypes.IsArray(typeOfOr(x)) {
		// Array decay: the value is a pointer to the region base.
		if rid, ok := fr.varRegion[x.Name]; ok {
			return value{kind: vPtr, base: rid}
		}
		if rid, ok := in.globReg[x.Name]; ok {
			return value{kind: vPtr, base: rid}
		}
	}
	if rid, boxed := fr.boxes[x.Name]; boxed {
		v := in.regions[rid].overlay[0]
		if v.kind == vUninit {
			errf(ErrUninitRead, posOf(x), "use of uninitialized variable %s", x.Name)
		}
		return v
	}
	if v, ok := fr.vars[x.Name]; ok {
		if v.kind == vUninit {
			errf(ErrUninitRead, posOf(x), "use of uninitialized variable %s", x.Name)
		}
		return v
	}
	if v, ok := in.globals[x.Name]; ok {
		return v
	}
	if rid, ok := in.globReg[x.Name]; ok {
		return value{kind: vPtr, base: rid}
	}
	errf(ErrOther, posOf(x), "unknown variable %s", x.Name)
	return value{}
}

func typeOfOr(e cast.Expr) ctypes.Type {
	if t := e.Type(); t != nil {
		return t
	}
	return ctypes.Int
}

// addressOf boxes a scalar variable so its address can escape. CoreC
// guarantees address-of is applied to locals only (never formals), and the
// box is shared per variable.
func (in *Interp) addressOf(fr *frame, id *cast.Ident) value {
	if ctypes.IsFunc(typeOfOr(id)) {
		return value{kind: vFunc, fname: id.Name}
	}
	if rid, ok := fr.varRegion[id.Name]; ok {
		return value{kind: vPtr, base: rid}
	}
	if rid, ok := in.globReg[id.Name]; ok {
		return value{kind: vPtr, base: rid}
	}
	if rid, ok := fr.boxes[id.Name]; ok {
		return value{kind: vPtr, base: rid}
	}
	// Box the scalar: a 4-byte region holding the current value; future
	// accesses to the variable go through the box.
	r := in.alloc(4)
	r.overlay[0] = fr.vars[id.Name]
	for i := 0; i < 4; i++ {
		r.opaque[i] = true
		r.init[i] = true
	}
	fr.boxes[id.Name] = r.id
	return value{kind: vPtr, base: r.id}
}

// evalBinary handles atom op atom.
func (in *Interp) evalBinary(fr *frame, x *cast.Binary) value {
	if x.Op.IsComparison() {
		if compare(x.Op, in.eval(fr, x.X), in.eval(fr, x.Y), posOf(x)) {
			return value{kind: vInt, i: 1}
		}
		return value{kind: vInt, i: 0}
	}
	l := in.eval(fr, x.X)
	r := in.eval(fr, x.Y)
	lp := l.kind == vPtr
	rp := r.kind == vPtr

	switch {
	case (x.Op == cast.Add || x.Op == cast.Sub) && lp && !rp:
		return in.ptrArith(l, x.Op, r, in.elemWidth(x.X.Type()), posOf(x))
	case x.Op == cast.Add && rp && !lp:
		return in.ptrArith(r, cast.Add, l, in.elemWidth(x.Y.Type()), posOf(x))
	case x.Op == cast.Sub && lp && rp:
		sz := in.elemWidth(x.X.Type())
		return value{kind: vInt, i: (int64(l.off) - int64(r.off)) / sz}
	}
	a := l.i
	b := r.i
	if l.kind == vUninit || r.kind == vUninit {
		errf(ErrUninitRead, posOf(x), "arithmetic on uninitialized value")
	}
	switch x.Op {
	case cast.Add:
		return value{kind: vInt, i: a + b}
	case cast.Sub:
		return value{kind: vInt, i: a - b}
	case cast.Mul:
		return value{kind: vInt, i: a * b}
	case cast.Div:
		if b == 0 {
			errf(ErrOther, posOf(x), "division by zero")
		}
		return value{kind: vInt, i: a / b}
	case cast.Rem:
		if b == 0 {
			errf(ErrOther, posOf(x), "remainder by zero")
		}
		return value{kind: vInt, i: a % b}
	case cast.Shl:
		return value{kind: vInt, i: a << uint(b&31)}
	case cast.Shr:
		return value{kind: vInt, i: a >> uint(b&31)}
	case cast.BitAnd:
		return value{kind: vInt, i: a & b}
	case cast.BitOr:
		return value{kind: vInt, i: a | b}
	case cast.BitXor:
		return value{kind: vInt, i: a ^ b}
	}
	errf(ErrOther, posOf(x), "bad operator")
	return value{}
}

// ptrArith checks K&R A7.7: the result must lie in [0, size].
func (in *Interp) ptrArith(p value, op cast.BinaryOp, i value, width int64, pos string) value {
	if i.kind == vUninit {
		errf(ErrUninitRead, pos, "pointer arithmetic with uninitialized index")
	}
	delta := i.i * width
	if op == cast.Sub {
		delta = -delta
	}
	r, ok := in.regions[p.base]
	if !ok {
		errf(ErrNullDeref, pos, "arithmetic on invalid pointer")
	}
	no := int64(p.off) + delta
	if no < 0 || no > int64(r.size) {
		errf(ErrBadArith, pos, "pointer moves to offset %d of a %d-byte region", no, r.size)
	}
	return value{kind: vPtr, base: p.base, off: int(no)}
}

// readMem loads width bytes at p.
func (in *Interp) readMem(p value, width int, pos string) value {
	r := in.checkAccess(p, width, pos)
	if width == 1 {
		off := p.off
		// Cleanness (§3): character reads must not pass the first null.
		// Checked before initialization so the error kind matches what the
		// static analysis checks.
		if n, terminated := r.firstNull(); terminated && off > n {
			errf(ErrBeyondNull, pos, "read at offset %d beyond the terminator at %d", off, n)
		}
		if r.opaque[off] {
			errf(ErrOther, pos, "byte read inside a word-sized cell")
		}
		if !r.init[off] {
			errf(ErrUninitRead, pos, "read of uninitialized byte")
		}
		return value{kind: vInt, i: int64(r.bytes[off])}
	}
	v, ok := r.overlay[p.off]
	if !ok {
		errf(ErrUninitRead, pos, "word read of uninitialized or fragmented cell")
	}
	if v.kind == vUninit {
		errf(ErrUninitRead, pos, "read of uninitialized cell")
	}
	return v
}

// writeMem stores width bytes at p.
func (in *Interp) writeMem(p value, width int, v value, pos string) {
	r := in.checkAccess(p, width, pos)
	if width == 1 {
		if v.kind == vUninit {
			errf(ErrUninitRead, pos, "store of uninitialized value")
		}
		if r.opaque[p.off] {
			// Overwriting part of a word cell invalidates it.
			for off, ov := range r.overlay {
				_ = ov
				if p.off >= off && p.off < off+4 {
					delete(r.overlay, off)
					for k := off; k < off+4 && k < r.size; k++ {
						r.opaque[k] = false
						r.init[k] = false
					}
				}
			}
		}
		r.bytes[p.off] = byte(v.i)
		r.init[p.off] = true
		r.opaque[p.off] = false
		return
	}
	r.overlay[p.off] = v
	for k := p.off; k < p.off+width && k < r.size; k++ {
		r.opaque[k] = true
		r.init[k] = true
	}
}

// checkAccess validates the dereference bounds.
func (in *Interp) checkAccess(p value, width int, pos string) *region {
	if p.kind != vPtr {
		errf(ErrNullDeref, pos, "dereference of non-pointer value")
	}
	r, ok := in.regions[p.base]
	if !ok {
		errf(ErrNullDeref, pos, "dereference of invalid pointer")
	}
	if p.off < 0 || p.off+width > r.size {
		errf(ErrOutOfBounds, pos, "access of %d byte(s) at offset %d of a %d-byte region",
			width, p.off, r.size)
	}
	return r
}

// firstNull returns the index of the first initialized zero byte.
func (r *region) firstNull() (int, bool) {
	for i := 0; i < r.size; i++ {
		if r.init[i] && !r.opaque[i] && r.bytes[i] == 0 {
			return i, true
		}
		if !r.init[i] || r.opaque[i] {
			return 0, false // unknown contents before any null
		}
	}
	return 0, false
}

var _ = pointer.AllocFuncs
