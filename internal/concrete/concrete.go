// Package concrete implements the paper's instrumented operational
// semantics (§2.4, Def. 2.1): an interpreter for normalized CoreC programs
// whose states track, for every memory region, its base address, allocation
// size and per-byte contents, and which halts with a diagnostic on every
// string-manipulation error — out-of-bounds accesses, invalid pointer
// arithmetic (beyond K&R's one-past-the-end rule), reads of uninitialized
// cells, and accesses beyond the null terminator.
//
// The interpreter is the executable ground truth for CSSV: the soundness
// property (the abstract analysis reports a message whenever a concrete
// execution errs) is checked differentially by randomized tests.
package concrete

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/ctypes"
)

// ErrKind classifies runtime string errors.
type ErrKind int

// Error kinds of the instrumented semantics.
const (
	ErrOutOfBounds ErrKind = iota // access outside [0, size-width]
	ErrBadArith                   // pointer arithmetic outside [0, size]
	ErrUninitRead                 // read of an uninitialized cell
	ErrBeyondNull                 // character read beyond the first null
	ErrNullDeref                  // dereference of a null/invalid pointer
	ErrContract                   // library-model precondition violated
	ErrOther
)

var errNames = map[ErrKind]string{
	ErrOutOfBounds: "out-of-bounds access",
	ErrBadArith:    "invalid pointer arithmetic",
	ErrUninitRead:  "read of uninitialized memory",
	ErrBeyondNull:  "access beyond the null terminator",
	ErrNullDeref:   "null or dangling pointer dereference",
	ErrContract:    "library precondition violated",
	ErrOther:       "runtime error",
}

// RuntimeError is a detected string-manipulation error.
type RuntimeError struct {
	Kind ErrKind
	Pos  string
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, errNames[e.Kind], e.Msg)
}

// regionID identifies an allocated memory region (a base address).
type regionID int

// value is a tagged runtime value.
type value struct {
	kind  valueKind
	i     int64    // Int
	base  regionID // Ptr
	off   int      // Ptr
	fname string   // Func
}

type valueKind int

const (
	vUninit valueKind = iota
	vInt
	vPtr
	vFunc
)

// region is a contiguous allocation: byte cells plus a scalar overlay for
// word-sized values (ints and pointers stored in memory).
type region struct {
	id    regionID
	size  int
	bytes []byte
	init  []bool
	// overlay holds word values written at an offset; the covered bytes
	// are marked opaque.
	overlay map[int]value
	opaque  []bool
}

func newRegion(id regionID, size int) *region {
	return &region{
		id:      id,
		size:    size,
		bytes:   make([]byte, size),
		init:    make([]bool, size),
		overlay: map[int]value{},
		opaque:  make([]bool, size),
	}
}

// Interp executes a normalized program.
type Interp struct {
	prog    *corec.Program
	regions map[regionID]*region
	nextID  regionID
	globals map[string]value    // scalar globals
	globReg map[string]regionID // array globals
	// Input feeds fgets/getchar; deterministic per run.
	Input []string
	// StepLimit bounds execution (loops in generated programs).
	StepLimit int
	steps     int
	// pos is the source position of the statement being executed, kept
	// current so internal panics can be attributed to a program point.
	pos string
}

// PanicError wraps a non-RuntimeError panic escaping the interpreter with
// the position of the statement that was executing, so a crash inside the
// interpreter is attributable to a program point. The original panic
// value is preserved in Val.
type PanicError struct {
	Pos string
	Val any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal interpreter panic: %v", e.Pos, e.Val)
}

// New prepares an interpreter for the program.
func New(prog *corec.Program) *Interp {
	in := &Interp{
		prog:      prog,
		regions:   map[regionID]*region{},
		globals:   map[string]value{},
		globReg:   map[string]regionID{},
		StepLimit: 100000,
	}
	for _, d := range prog.File.Decls {
		vd, ok := d.(*cast.VarDecl)
		if !ok {
			continue
		}
		if ctypes.IsScalar(vd.DeclType) {
			in.globals[vd.Name] = value{kind: vInt, i: 0} // globals are zeroed
			continue
		}
		r := in.alloc(in.prog.Layout.SizeOf(vd.DeclType))
		// Globals are zero-initialized.
		for i := range r.init {
			r.init[i] = true
		}
		in.globReg[vd.Name] = r.id
		if s, isStr := prog.Strings[vd.Name]; isStr {
			copy(r.bytes, s)
		}
	}
	return in
}

func (in *Interp) alloc(size int) *region {
	in.nextID++
	r := newRegion(in.nextID, size)
	in.regions[in.nextID] = r
	return r
}

// frame is one activation record.
type frame struct {
	vars map[string]value
	// varRegion maps array-typed locals to their regions.
	varRegion map[string]regionID
	// boxes maps scalar locals whose address was taken to their box
	// region; once boxed, the box is the single source of truth.
	boxes map[string]regionID
	fd    *cast.FuncDecl
}

// errf raises a runtime error via panic; Call recovers it.
func errf(kind ErrKind, pos, format string, args ...any) {
	panic(&RuntimeError{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Call executes the named function with the given arguments and returns
// its result (zero value for void), or the first runtime error.
func (in *Interp) Call(name string, args ...value) (ret value, rerr *RuntimeError) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				rerr = re
				return
			}
			if _, ok := r.(*PanicError); ok {
				panic(r) // a nested Call already attached the position
			}
			pos := in.pos
			if pos == "" {
				pos = "?"
			}
			panic(&PanicError{Pos: pos, Val: r})
		}
	}()
	ret = in.call(name, args)
	return ret, nil
}

// CallInts is Call with integer arguments (convenience for tests).
func (in *Interp) CallInts(name string, args ...int64) (int64, *RuntimeError) {
	vs := make([]value, len(args))
	for i, a := range args {
		vs[i] = value{kind: vInt, i: a}
	}
	v, err := in.Call(name, vs...)
	return v.i, err
}

func (in *Interp) call(name string, args []value) value {
	if v, ok := in.builtin(name, args); ok {
		return v
	}
	fd := in.prog.File.Lookup(name)
	if fd == nil || fd.Body == nil {
		errf(ErrOther, "?", "call to undefined function %s", name)
	}
	fr := &frame{vars: map[string]value{}, varRegion: map[string]regionID{},
		boxes: map[string]regionID{}, fd: fd}
	for i, p := range fd.Params {
		if i < len(args) {
			fr.vars[p.Name] = args[i]
		}
	}
	// Allocate locals.
	for _, s := range fd.Body.Stmts {
		ds, ok := s.(*cast.DeclStmt)
		if !ok {
			continue
		}
		if ctypes.IsScalar(ds.Decl.DeclType) {
			fr.vars[ds.Decl.Name] = value{kind: vUninit}
		} else {
			r := in.alloc(in.prog.Layout.SizeOf(ds.Decl.DeclType))
			fr.varRegion[ds.Decl.Name] = r.id
		}
	}
	return in.exec(fr)
}

// exec runs the flat CoreC statement list of fr.fd.
func (in *Interp) exec(fr *frame) value {
	stmts := fr.fd.Body.Stmts
	labels := map[string]int{}
	for i, s := range stmts {
		if l, ok := s.(*cast.Labeled); ok {
			labels[l.Label] = i
		}
	}
	pc := 0
	for pc < len(stmts) {
		in.steps++
		in.pos = posOf(stmts[pc])
		if in.steps > in.StepLimit {
			errf(ErrOther, in.pos, "step limit exceeded")
		}
		switch s := stmts[pc].(type) {
		case *cast.DeclStmt, *cast.Empty, *cast.Labeled, *cast.Verify:
			// Declarations were pre-allocated; Verify statements belong to
			// the inlined program and are not part of the real semantics.
		case *cast.Goto:
			pc = labels[s.Label]
			continue
		case *cast.If:
			if in.truth(fr, s.Cond) {
				g := s.Then.(*cast.Goto)
				pc = labels[g.Label]
				continue
			}
		case *cast.Return:
			if s.X == nil {
				return value{kind: vInt}
			}
			return in.eval(fr, s.X)
		case *cast.ExprStmt:
			in.execExpr(fr, s.X)
		default:
			errf(ErrOther, posOf(s), "cannot execute %T", s)
		}
		pc++
	}
	return value{kind: vInt}
}

func posOf(n cast.Node) string { return n.Pos().String() }
