package core

import (
	"strings"
	"testing"
)

// TestSideEffectCheckFlagsUndeclaredWrite: a procedure that writes through
// a formal without declaring it violates its own contract.
func TestSideEffectCheckFlagsUndeclaredWrite(t *testing.T) {
	src := `
void sneaky(char *dst, char *src)
    requires (is_nullt(src) && alloc(dst) >= 1)
    modifies (strlen(src))
    ensures (is_nullt(src))
{
    *dst = '\0';
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"sneaky"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Procs[0].Violations {
		if strings.Contains(v.Msg, "side effect outside the modifies clause") {
			found = true
		}
	}
	if !found {
		t.Errorf("undeclared write not flagged; messages: %v", rep.Procs[0].Violations)
	}
}

// TestSideEffectCheckAcceptsDeclaredWrite: the same procedure with an
// honest clause is clean.
func TestSideEffectCheckAcceptsDeclaredWrite(t *testing.T) {
	src := `
void honest(char *dst)
    requires (alloc(dst) >= 1)
    modifies (dst)
    ensures (is_nullt(dst))
{
    *dst = '\0';
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"honest"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Procs[0].Violations {
		if strings.Contains(v.Msg, "side effect") {
			t.Errorf("declared write flagged: %s", v.Msg)
		}
	}
}

// TestSideEffectCheckLocalWritesExempt: stores into locals and into the
// procedure's own allocations never need declaring.
func TestSideEffectCheckLocalWritesExempt(t *testing.T) {
	src := `
void *malloc(int n);
int localwriter(char *src)
    requires (is_nullt(src) && strlen(src) < 8)
    ensures (return_value >= 0)
{
    char buf[8];
    char *h;
    strcpy(buf, src);
    h = (char*)malloc(4);
    *h = '\0';
    return 0;
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"localwriter"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Procs[0].Violations {
		if strings.Contains(v.Msg, "side effect") {
			t.Errorf("frame-local write flagged: %s", v.Msg)
		}
	}
}

// TestSideEffectCheckLibraryCalls: undeclared effects through library
// models (strcpy into a global) are flagged.
func TestSideEffectCheckLibraryCalls(t *testing.T) {
	src := `
char gbuf[32];
void fills(char *src)
    requires (is_nullt(src) && strlen(src) < 32)
    ensures (is_nullt(src))
{
    strcpy(gbuf, src);
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"fills"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Procs[0].Violations {
		if strings.Contains(v.Msg, "strcpy writes") {
			found = true
		}
	}
	if !found {
		t.Errorf("library write into a global not flagged: %v", rep.Procs[0].Violations)
	}
}

// TestSideEffectCheckUnspecifiedContractSkipped: no modifies and no ensures
// means the effects are unspecified and unchecked.
func TestSideEffectCheckUnspecifiedContractSkipped(t *testing.T) {
	src := `
void writer(char *dst)
    requires (alloc(dst) >= 1)
{
    *dst = '\0';
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"writer"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Procs[0].Violations {
		if strings.Contains(v.Msg, "side effect") {
			t.Errorf("unspecified contract checked: %s", v.Msg)
		}
	}
}
