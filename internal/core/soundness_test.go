package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/concrete"
	"repro/internal/corec"
	"repro/internal/cparse"
	"repro/internal/libc"
)

// TestSoundnessDifferential checks CSSV's headline guarantee ("it can never
// miss a runtime string error", §1) empirically: random small string
// procedures are executed under the instrumented concrete semantics on many
// inputs; whenever any execution raises a string error, the static analysis
// must have reported at least one message for that procedure.
//
// Uninitialized-value errors are excluded from the obligation (CSSV tracks
// string and bounds properties, not initialization — uninitialized cells
// read as unknown values), as are step-limit aborts (non-termination is not
// a string error).
func TestSoundnessDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test is slow")
	}
	rng := rand.New(rand.NewSource(7))
	trials := 60
	checkedErrs := 0
	for trial := 0; trial < trials; trial++ {
		src := genProgram(rng)

		rep, err := AnalyzeSource("gen.c", src, Options{
			Procs: []string{"f"},
		})
		if err != nil {
			t.Fatalf("trial %d: analysis failed: %v\nsource:\n%s", trial, err, src)
		}
		staticMsgs := rep.Proc("f").Messages()

		// Concrete executions over a spread of inputs.
		concreteErr := runConcrete(t, src)

		if concreteErr != nil && staticMsgs == 0 {
			t.Errorf("trial %d: UNSOUND: concrete error %v but no static message\nsource:\n%s",
				trial, concreteErr, src)
		}
		if concreteErr != nil {
			checkedErrs++
		}
	}
	if checkedErrs == 0 {
		t.Error("generator produced no erroneous programs; the test checks nothing")
	}
	t.Logf("%d/%d generated programs had concrete errors; soundness held on all",
		checkedErrs, trials)
}

// runConcrete executes f on a battery of inputs and returns the first
// string error (excluding kinds outside CSSV's obligations).
func runConcrete(t *testing.T, src string) *concrete.RuntimeError {
	t.Helper()
	file, err := cparse.ParseFile("gen.c", libc.Header+"\n"+src)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	prog, err := corec.Normalize(file)
	if err != nil {
		t.Fatalf("renormalize: %v", err)
	}
	inputs := []struct {
		s     string
		extra int
		n     int64
	}{
		{"", 0, 0}, {"", 4, 1}, {"a", 0, 1}, {"ab", 2, 2},
		{"hello", 0, 5}, {"hello", 3, 2}, {"xyzw", 1, 4},
		{" (a(b)c) ", 2, 3}, {"0123456789", 0, 10},
	}
	for _, in := range inputs {
		itp := concrete.New(prog)
		itp.StepLimit = 20000
		s := itp.MakeString(in.s, in.extra)
		_, rerr := itp.Call("f", s, concrete.MakeInt(in.n))
		if rerr == nil {
			continue
		}
		switch rerr.Kind {
		case concrete.ErrUninitRead, concrete.ErrOther:
			continue
		}
		return rerr
	}
	return nil
}

// genProgram builds a random procedure void f(char *s, int n) from unsafe
// and safe statement templates. The contract states only what the harness
// guarantees (s is a null-terminated string).
func genProgram(rng *rand.Rand) string {
	var body []string
	decls := []string{"int i;", "char c;", "char buf[8];", "char *p;"}
	body = append(body, "i = 0;", "c = 'x';", "p = s;", "buf[0] = '\\0';")

	stmts := []func() string{
		func() string { return fmt.Sprintf("c = s[%d];", rng.Intn(6)) },
		func() string { return "c = s[n];" },
		func() string { return "c = *p;" },
		func() string { return fmt.Sprintf("buf[%d] = 'a';", rng.Intn(10)) },
		func() string { return "buf[n] = 'b';" },
		func() string { return fmt.Sprintf("p = s + %d;", rng.Intn(5)) },
		func() string { return "p = s + n;" },
		func() string {
			return "while (*p != '\\0') { p = p + 1; }"
		},
		func() string {
			return fmt.Sprintf("while (*p != '%c') { p = p + 1; }", 'a'+rune(rng.Intn(3)))
		},
		func() string { return "i = strlen(s);" },
		func() string { return "s[i] = '\\0';" },
		func() string { return "s[i - 1] = '\\0';" },
		func() string { return "strcpy(buf, s);" },
		func() string { return "if (n > 0) { c = s[n - 1]; }" },
		func() string { return "if (n >= 0) { if (n < 4) { buf[n] = 'c'; } }" },
	}
	k := 2 + rng.Intn(4)
	for j := 0; j < k; j++ {
		body = append(body, stmts[rng.Intn(len(stmts))]())
	}

	var sb strings.Builder
	sb.WriteString("void f(char *s, int n)\n")
	sb.WriteString("    requires (is_nullt(s))\n{\n")
	for _, d := range decls {
		sb.WriteString("    " + d + "\n")
	}
	for _, st := range body {
		sb.WriteString("    " + st + "\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
