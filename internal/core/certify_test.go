package core

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/certify"
)

// runCertify analyzes one example file with certification on.
func runCertify(t *testing.T, path string, workers int) *Report {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeSource(path, string(src), Options{
		Cascade: true,
		Certify: true,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCertifyExamplesEndToEnd: over the three example programs, every
// discharged check produces a certificate the independent checker accepts
// (zero failures), every reported message is classified, and the outcome is
// bit-identical between the sequential and the concurrent driver.
func TestCertifyExamplesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end certification is slow")
	}
	paths := []string{
		"../../testdata/running/skipline.c",
		"../../testdata/airbus/airbus.c",
		"../../testdata/fixwrites/fixwrites.c",
	}
	for _, path := range paths {
		seq := runCertify(t, path, 1)
		par := runCertify(t, path, 8)
		for i := range seq.Procs {
			sp, pp := &seq.Procs[i], &par.Procs[i]
			if sp.Name != pp.Name {
				t.Fatalf("%s: procedure order differs: %s vs %s", path, sp.Name, pp.Name)
			}
			c := sp.Certification
			if c == nil {
				t.Fatalf("%s: %s has no certification outcome", path, sp.Name)
			}
			if c.Failed != 0 {
				for _, ck := range c.Checks {
					if ck.Status == certify.StatusFailed {
						t.Errorf("%s: %s: certificate for %q FAILED: %s",
							path, sp.Name, ck.Msg, ck.Detail)
					}
				}
			}
			// Every discharged check is certified; every message classified.
			if got := c.Certified + c.Failed + c.Witnessed + c.Potential; got != len(c.Checks) {
				t.Errorf("%s: %s: counters %d do not cover %d checks",
					path, sp.Name, got, len(c.Checks))
			}
			if c.Witnessed+c.Potential != len(sp.Violations) {
				t.Errorf("%s: %s: %d witnessed + %d potential != %d messages",
					path, sp.Name, c.Witnessed, c.Potential, len(sp.Violations))
			}
			// Workers must not change the outcome (replay and verification
			// are deterministic).
			if !reflect.DeepEqual(c, pp.Certification) {
				t.Errorf("%s: %s: certification differs between workers 1 and 8:\n%+v\nvs\n%+v",
					path, sp.Name, c, pp.Certification)
			}
		}
	}
}

// TestCertifyRunningExampleSplit pins the witnessed/potential split of the
// paper's running example: the off-by-one at the second SkipLine call is a
// real error and must be witnessed by a concrete trace.
func TestCertifyRunningExampleSplit(t *testing.T) {
	rep, err := AnalyzeSource("skipline.c", runningExample, Options{
		Cascade: true,
		Certify: true,
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Proc("main")
	if pr == nil || pr.Certification == nil {
		t.Fatal("main has no certification outcome")
	}
	c := pr.Certification
	if c.Witnessed != 1 || c.Failed != 0 {
		t.Errorf("main: want 1 witnessed, 0 failed; got %+v", c)
	}
	sk := rep.Proc("SkipLine")
	if sk == nil || sk.Certification == nil {
		t.Fatal("SkipLine has no certification outcome")
	}
	if sk.Certification.Certified == 0 || sk.Certification.Failed != 0 {
		t.Errorf("SkipLine: want all checks certified; got %+v", sk.Certification)
	}
}

// TestCertifyPlainRun: certification also works without the cascade (one
// fixpoint in the configured domain).
func TestCertifyPlainRun(t *testing.T) {
	rep, err := AnalyzeSource("skipline.c", runningExample, Options{
		Certify: true,
		Workers: 1,
		Procs:   []string{"SkipLine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Procs[0].Certification
	if c == nil {
		t.Fatal("no certification outcome")
	}
	if c.Failed != 0 || c.Certified != len(c.Checks)-c.Witnessed-c.Potential {
		t.Errorf("plain-run certification: %+v", c)
	}
	if c.Certified == 0 {
		t.Errorf("no checks certified in a fully-verified procedure")
	}
}
