// The driver side of the on-disk analysis cache (internal/cache): key
// derivation, report (de)hydration, and the three cache paths of
// analyzeProc — exact hit, certificate revalidation, store.
//
// Key derivation partitions the analysis input per procedure:
//
//   - Body: the procedure's rendered definition with its contract stripped.
//   - Conf: a fingerprint of every Options field that can change the
//     result (target, domain, cascade tiers, translation options, contract
//     mode, ...). Worker count, budgets, and the cache options themselves
//     are deliberately excluded: they change cost, not results — and
//     budget-degraded runs are never cached in the first place.
//   - Env: everything else — the raw source text and file name (they pin
//     the line/column positions reported messages carry; rendered text
//     alone is position-blind), every other declaration including the libc
//     contract prelude, the procedure's own contract, and the string
//     table.
//
// Invalidation matrix: Body or Conf changed → miss, full analysis. Env
// changed only → revalidation: the front end is re-run (milliseconds), the
// freshly generated integer program must match the stored one byte for
// byte in encoded form (source positions included), every stored
// certificate is re-proved by the independent Fourier–Motzkin checker, and
// the entry must pass assert accounting — every assert of the program
// covered by a certificate or a reported violation, so a tampered entry
// can never make a check silently safe. Only then is the stored verdict
// reused, with no fixpoint run; any failure falls back to full analysis.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/c2ip"
	"repro/internal/cache"
	"repro/internal/cast"
	"repro/internal/certify"
	"repro/internal/corec"
	"repro/internal/ip"
)

// cacheCtx is the per-run cache state shared by all workers. nil means
// caching is disabled.
type cacheCtx struct {
	store  *cache.Store
	verify bool
	// conf is the run's configuration fingerprint, computed once.
	conf string
	// seed pins the raw translation unit (file name + source text) into
	// every Env hash, so reported positions can never go stale.
	seed string
}

func newCacheCtx(filename, src string, opts Options) (*cacheCtx, error) {
	if opts.CacheDir == "" {
		return nil, nil
	}
	store, err := cache.Open(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	io.WriteString(h, filename)
	h.Write([]byte{0})
	io.WriteString(h, src)
	return &cacheCtx{
		store:  store,
		verify: opts.CacheVerify,
		conf:   confFingerprint(opts),
		seed:   hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// confFingerprint hashes every result-relevant configuration field. The
// cache format version participates so a codec change retires old entries
// wholesale.
func confFingerprint(opts Options) string {
	dom := opts.Domain
	if dom == nil {
		dom = analysis.PolyDomain{}
	}
	h := sha256.New()
	fmt.Fprintf(h, "format=%d\n", cache.FormatVersion)
	fmt.Fprintf(h, "target=%d pointer=%d domain=%s\n", opts.Target, opts.PointerMode, dom.Name())
	fmt.Fprintf(h, "ppt=%+v\n", opts.PPT)
	fmt.Fprintf(h, "c2ip=%+v\n", opts.C2IP)
	fmt.Fprintf(h, "widen=%d narrow=%d cascade=%v octagon=%v maxrays=%d\n",
		opts.WideningDelay, opts.NarrowingPasses, opts.Cascade, opts.Octagon, opts.MaxRays)
	fmt.Fprintf(h, "nolibc=%v nosideeffect=%v contracts=%d\n",
		opts.NoLibc, opts.NoSideEffectCheck, opts.Contracts)
	// The schedule mode participates because cached entries replay tier
	// statistics: an entry recorded under one scheduling mode must not be
	// replayed under another. The profile directory does not — the profile
	// can only move cost between tiers, never change results.
	fmt.Fprintf(h, "schedule=%s\n", opts.Schedule)
	return hex.EncodeToString(h.Sum(nil))
}

// keyFor derives the cache key of one procedure against the (possibly
// contract-rewritten) program. ok is false when the procedure has no
// definition; such procedures fail later in the pipeline and are never
// cached.
func (cc *cacheCtx) keyFor(prog *corec.Program, name string) (k cache.Key, ok bool) {
	fd := prog.File.Lookup(name)
	if fd == nil || fd.Body == nil {
		return cache.Key{}, false
	}
	stripped := *fd
	stripped.Contract = nil
	body := sha256.Sum256([]byte(cast.FuncString(&stripped)))

	h := sha256.New()
	io.WriteString(h, cc.seed)
	h.Write([]byte{0})
	// Every declaration with this procedure's body stubbed out: Body and
	// Env partition the rendered input, so an Env-only change leaves the
	// Body eligible for revalidation.
	stub := *fd
	stub.Body = nil
	env := &cast.File{Name: prog.File.Name}
	for _, d := range prog.File.Decls {
		if dfd, isFn := d.(*cast.FuncDecl); isFn && dfd == fd {
			env.Decls = append(env.Decls, &stub)
			continue
		}
		env.Decls = append(env.Decls, d)
	}
	io.WriteString(h, cast.Fprint(env))
	h.Write([]byte{0})
	names := make([]string, 0, len(prog.Strings))
	for n := range prog.Strings {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		io.WriteString(h, n)
		h.Write([]byte{0})
		io.WriteString(h, prog.Strings[n])
		h.Write([]byte{0})
	}
	return cache.Key{
		Proc: name,
		Body: hex.EncodeToString(body[:]),
		Conf: cc.conf,
		Env:  hex.EncodeToString(h.Sum(nil)),
	}, true
}

// cacheLog reports a cache anomaly. Anomalies are never fatal — the driver
// falls back to full analysis — but they are never silent either.
func cacheLog(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cssv: cache: "+format+"\n", args...)
}

// ---------------------------------------------------------------------------
// Report (de)hydration

func encodeViolationList(vs []analysis.Violation) []cache.Violation {
	out := make([]cache.Violation, 0, len(vs))
	for _, v := range vs {
		out = append(out, cache.Violation{
			Index:                  v.Index,
			Msg:                    v.Msg,
			Pos:                    v.Pos,
			Unverifiable:           v.Unverifiable,
			Unresolved:             v.Unresolved,
			CounterExample:         cache.EncodeCounterExample(v.CounterExample),
			CounterExampleIntegral: v.CounterExampleIntegral,
			StateSystem:            cache.EncodeSystem(v.StateSystem),
		})
	}
	return out
}

func decodeViolationList(ds []cache.Violation) ([]analysis.Violation, error) {
	out := make([]analysis.Violation, 0, len(ds))
	for _, d := range ds {
		ce, err := cache.DecodeCounterExample(d.CounterExample)
		if err != nil {
			return nil, err
		}
		state, err := cache.DecodeSystem(d.StateSystem)
		if err != nil {
			return nil, err
		}
		out = append(out, analysis.NewCachedViolation(d.Index, d.Msg, d.Pos,
			d.Unverifiable, d.Unresolved, d.CounterExampleIntegral, ce, state))
	}
	return out, nil
}

func encodeCascade(c *analysis.CascadeResult) *cache.Cascade {
	out := &cache.Cascade{
		Violations:    encodeViolationList(c.Violations),
		Iterations:    c.Iterations,
		ResidualVars:  c.ResidualVars,
		ResidualStmts: c.ResidualStmts,
	}
	for _, t := range c.Tiers {
		out.Tiers = append(out.Tiers, cache.Tier{
			Domain: t.Domain, Vars: t.Vars, Stmts: t.Stmts,
			Asserts: t.Asserts, Discharged: t.Discharged,
			Iterations: t.Iterations, CPUNs: int64(t.CPU),
		})
	}
	for _, ch := range c.Checks {
		out.Checks = append(out.Checks, cache.Check{
			Index: ch.Index, Pos: ch.Pos, Msg: ch.Msg, Tier: ch.Tier,
			Violated: ch.Violated, Vars: ch.Vars, Stmts: ch.Stmts,
		})
	}
	if c.Residual != nil {
		out.Residual = cache.EncodeProgram(c.Residual)
	}
	return out
}

func decodeCascade(d *cache.Cascade) (*analysis.CascadeResult, error) {
	viols, err := decodeViolationList(d.Violations)
	if err != nil {
		return nil, err
	}
	tiers := make([]analysis.TierStat, 0, len(d.Tiers))
	for _, t := range d.Tiers {
		tiers = append(tiers, analysis.TierStat{
			Domain: t.Domain, Vars: t.Vars, Stmts: t.Stmts,
			Asserts: t.Asserts, Discharged: t.Discharged,
			Iterations: t.Iterations, CPU: time.Duration(t.CPUNs),
		})
	}
	checks := make([]analysis.CheckProvenance, 0, len(d.Checks))
	for _, ch := range d.Checks {
		checks = append(checks, analysis.NewCachedCheckProvenance(
			ch.Index, ch.Pos, ch.Msg, ch.Tier, ch.Violated, ch.Vars, ch.Stmts))
	}
	var residual *ip.Program
	if d.Residual != nil {
		residual, err = cache.DecodeProgram(d.Residual)
		if err != nil {
			return nil, err
		}
	}
	return analysis.NewCachedCascade(viols, d.Iterations, tiers, checks,
		residual, d.ResidualVars, d.ResidualStmts), nil
}

// encodeEntry builds the cache entry for a completed, non-degraded
// analysis. nAnalysis is the number of leading pr.Violations produced by
// the analysis proper (the rest are side-effect violations, stored
// separately); certification may differ from pr.Certification on the
// revalidation refresh path (stored outcome preserved under a run that did
// not request certification).
func encodeEntry(pr *ProcReport, nAnalysis, memResolved, memHavocked int,
	certification *certify.Outcome) *cache.Entry {
	d := cache.ProcReport{
		Name: pr.Name, LOC: pr.LOC, SLOC: pr.SLOC,
		IPVars: pr.IPVars, IPSize: pr.IPSize, Iterations: pr.Iterations,
		Violations:     encodeViolationList(pr.Violations[:nAnalysis]),
		SideEffects:    encodeViolationList(pr.Violations[nAnalysis:]),
		MemberResolved: memResolved, MemberHavocked: memHavocked,
		Certification: certification,
	}
	for _, w := range pr.Warnings {
		d.Warnings = append(d.Warnings, cache.Warning{Pos: w.Pos, Msg: w.Msg})
	}
	if pr.IP != nil {
		d.IP = cache.EncodeProgram(pr.IP)
	}
	if pr.Cascade != nil {
		d.Cascade = encodeCascade(pr.Cascade)
	}
	return &cache.Entry{Report: d}
}

// decodeEntry rehydrates a ProcReport. includeSideEffects selects whether
// the stored side-effect violations are appended (exact hit) or left to a
// fresh run of the side-effect check (revalidation, where the contract may
// have changed). The AST-level intermediates (Inlined, PPT) are nil on a
// rehydrated report, by documented design.
func decodeEntry(e *cache.Entry, includeSideEffects bool) (*ProcReport, error) {
	d := &e.Report
	pr := &ProcReport{
		Name: d.Name, LOC: d.LOC, SLOC: d.SLOC,
		IPVars: d.IPVars, IPSize: d.IPSize, Iterations: d.Iterations,
	}
	var err error
	pr.Violations, err = decodeViolationList(d.Violations)
	if err != nil {
		return nil, err
	}
	if includeSideEffects {
		se, err := decodeViolationList(d.SideEffects)
		if err != nil {
			return nil, err
		}
		pr.Violations = append(pr.Violations, se...)
	}
	for _, w := range d.Warnings {
		pr.Warnings = append(pr.Warnings, c2ip.Warning{Pos: w.Pos, Msg: w.Msg})
	}
	if d.IP != nil {
		pr.IP, err = cache.DecodeProgram(d.IP)
		if err != nil {
			return nil, err
		}
	}
	if d.Cascade != nil {
		pr.Cascade, err = decodeCascade(d.Cascade)
		if err != nil {
			return nil, err
		}
	}
	pr.Certification = d.Certification
	return pr, nil
}

// ---------------------------------------------------------------------------
// Verification obligations shared by the paranoid-hit and revalidation paths

// verifyCachedCerts re-proves every stored certificate with the
// independent Fourier–Motzkin checker; any non-certified outcome rejects
// the entry.
func verifyCachedCerts(certs []*certify.Certificate) error {
	for _, r := range certify.VerifyAll(certs) {
		if r.Status != certify.StatusCertified {
			return fmt.Errorf("check %d (%s): %s", r.Index, r.Msg, r.Detail)
		}
	}
	return nil
}

// cacheAccounting enforces never-silently-safe on a cache entry: every
// assert of the integer program must be covered by a certificate or a
// reported violation. An entry that dropped a violation (tampering, a
// partial write that slipped past the digests) fails here and falls back
// to full analysis.
func cacheAccounting(p *ip.Program, certs []*certify.Certificate, d *cache.ProcReport) error {
	covered := map[int]bool{}
	for _, c := range certs {
		covered[c.Check.OrigIndex] = true
	}
	for _, v := range d.Violations {
		covered[v.Index] = true
	}
	for _, idx := range p.Asserts() {
		if !covered[idx] {
			return fmt.Errorf("assert %d has neither a certificate nor a violation", idx)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// The three cache paths

// tryHit attempts the exact-hit path: all three hashes equal. Under
// cc.verify every hit is additionally treated like a revalidation —
// certificates re-proved, accounting re-checked — before being trusted.
// Returns nil on any miss or rejection.
func (cc *cacheCtx) tryHit(k cache.Key, opts Options, rc *runCounters) *ProcReport {
	e, err := cc.store.Get(k)
	if err != nil {
		rc.cacheBad.Add(1)
		cacheLog("%s: unusable entry: %v", k.Proc, err)
		return nil
	}
	if e == nil {
		return nil
	}
	if opts.Certify && e.Report.Certification == nil {
		// Stored by a non-certifying run; the replay half of certification
		// cannot be reconstructed from the entry, so re-analyze (the store
		// at the end of the pipeline overwrites the entry with the outcome
		// included).
		return nil
	}
	pr, err := decodeEntry(e, true)
	if err != nil {
		rc.cacheBad.Add(1)
		cacheLog("%s: undecodable entry: %v", k.Proc, err)
		return nil
	}
	if cc.verify {
		certs, err := cc.store.Certificates(e)
		if err != nil {
			rc.cacheBad.Add(1)
			cacheLog("%s: unusable certificates: %v", k.Proc, err)
			return nil
		}
		if err := verifyCachedCerts(certs); err != nil {
			rc.cacheRej.Add(1)
			cacheLog("%s: certificate failed re-verification: %v", k.Proc, err)
			return nil
		}
		if pr.IP == nil {
			rc.cacheRej.Add(1)
			cacheLog("%s: entry has no integer program to account against", k.Proc)
			return nil
		}
		if err := cacheAccounting(pr.IP, certs, &e.Report); err != nil {
			rc.cacheRej.Add(1)
			cacheLog("%s: assert accounting failed: %v", k.Proc, err)
			return nil
		}
	}
	if !opts.Certify {
		pr.Certification = nil
	}
	rc.cacheHits.Add(1)
	rc.memResolved.Add(int64(e.Report.MemberResolved))
	rc.memHavoc.Add(int64(e.Report.MemberHavocked))
	pr.CacheStatus = "hit"
	return pr
}

// tryRevalidate attempts the certificate-revalidation fast path after the
// front end has run: same procedure body and configuration, different
// environment. On success pr is filled with the stored verdict (fresh
// front-end fields — warnings, sizes, the integer program — are kept), and
// the decoded certificates and stored certification outcome are returned
// so the caller can refresh the entry under the new key. No fixpoint runs.
func (cc *cacheCtx) tryRevalidate(k cache.Key, pr *ProcReport, fresh *ip.Program,
	opts Options, rc *runCounters) (revalidated bool, certs []*certify.Certificate, stored *certify.Outcome) {
	cands, errs := cc.store.Candidates(k.Proc, k.Body, k.Conf, k.Env)
	for _, err := range errs {
		rc.cacheBad.Add(1)
		cacheLog("%s: unusable candidate: %v", k.Proc, err)
	}
	if len(cands) == 0 {
		return false, nil, nil
	}
	freshIP, err := json.Marshal(cache.EncodeProgram(fresh))
	if err != nil {
		return false, nil, nil
	}
	for _, e := range cands {
		if opts.Certify && e.Report.Certification == nil {
			continue
		}
		if e.Report.IP == nil {
			continue
		}
		storedIP, err := json.Marshal(e.Report.IP)
		if err != nil || !bytes.Equal(storedIP, freshIP) {
			continue
		}
		ecerts, err := cc.store.Certificates(e)
		if err != nil {
			rc.cacheBad.Add(1)
			cacheLog("%s: unusable certificates: %v", k.Proc, err)
			continue
		}
		if err := verifyCachedCerts(ecerts); err != nil {
			rc.cacheRej.Add(1)
			cacheLog("%s: certificate failed re-verification: %v", k.Proc, err)
			continue
		}
		if err := cacheAccounting(fresh, ecerts, &e.Report); err != nil {
			rc.cacheRej.Add(1)
			cacheLog("%s: assert accounting failed: %v", k.Proc, err)
			continue
		}
		dec, err := decodeEntry(e, false)
		if err != nil {
			rc.cacheBad.Add(1)
			cacheLog("%s: undecodable entry: %v", k.Proc, err)
			continue
		}
		pr.Violations = dec.Violations
		pr.Iterations = dec.Iterations
		pr.Cascade = dec.Cascade
		if opts.Certify {
			pr.Certification = dec.Certification
		}
		pr.CacheStatus = "revalidated"
		rc.cacheReval.Add(1)
		return true, ecerts, e.Report.Certification
	}
	return false, nil, nil
}

// put stores a completed result (or refreshes a revalidated one under its
// new key). Store failures are logged, never fatal.
func (cc *cacheCtx) put(k cache.Key, pr *ProcReport, nAnalysis, memResolved, memHavocked int,
	certs []*certify.Certificate, certification *certify.Outcome, rc *runCounters) {
	e := encodeEntry(pr, nAnalysis, memResolved, memHavocked, certification)
	if err := cc.store.Put(k, e, certs); err != nil {
		cacheLog("%s: store failed: %v", k.Proc, err)
		return
	}
	rc.cacheStores.Add(1)
}
