package core

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errCancelled is returned by a pipeline that observed the pool's done
// channel and stopped early. The pool treats it as a silent exit: it never
// becomes the run's error (the failure that closed the channel does).
var errCancelled = errors.New("analysis cancelled")

// cancelled reports whether the pool's done channel is closed.
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// runPool runs fn(0), ..., fn(n-1) on up to workers goroutines. Indices are
// claimed in order, so with workers == 1 the pool degenerates to the exact
// sequential loop (run inline, no goroutines). On failure the pool
// propagates one error — when several workers fail concurrently, the one
// with the lowest index wins, which for a single failing index is exactly
// the sequential error — and cancels the rest: idle workers stop claiming
// indices and in-flight calls can poll the done channel at convenient
// boundaries, returning errCancelled to bow out silently.
func runPool(workers, n int, fn func(i int, done <-chan struct{}) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		done := make(chan struct{}) // never closed: nothing to cancel
		for i := 0; i < n; i++ {
			if err := fn(i, done); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		firstIdx  = n
		done      = make(chan struct{})
		closeOnce sync.Once
	)
	cancel := func() { closeOnce.Do(func() { close(done) }) }
	worker := func() {
		defer wg.Done()
		for {
			if cancelled(done) {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err := fn(i, done)
			if err == nil {
				continue
			}
			if errors.Is(err, errCancelled) {
				return
			}
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
			cancel()
			return
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return firstErr
}
