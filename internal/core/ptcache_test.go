package core

import (
	"testing"

	"repro/internal/corec"
	"repro/internal/pointer"
)

const ptcacheSrc = `
char g[8];
void f(char *s) requires (is_nullt(s)) { char *p; p = g; }
void h(void) { char *q; q = g; }
`

func TestCachedPointerAnalyzeSharesResults(t *testing.T) {
	FlushCaches()
	prog, err := Prepare("t.c", ptcacheSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	r1, hit1, _ := cachedPointerAnalyze(prog, pointer.Inclusion, 0)
	if hit1 {
		t.Errorf("first analysis reported a cache hit")
	}
	r2, hit2, _ := cachedPointerAnalyze(prog, pointer.Inclusion, 0)
	if !hit2 {
		t.Errorf("second analysis missed the cache")
	}
	if r1 != r2 {
		t.Errorf("cache returned a different result object for the same input")
	}
	// A different mode is a different key.
	r3, hit3, _ := cachedPointerAnalyze(prog, pointer.Unification, 0)
	if hit3 {
		t.Errorf("different mode reported a cache hit")
	}
	if r3 == r1 {
		t.Errorf("different mode shared the inclusion result")
	}
	// A structurally different program is a different key.
	prog2, err := Prepare("t.c", ptcacheSrc+"\nvoid k(void) { char *r; r = g; }", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := cachedPointerAnalyze(prog2, pointer.Inclusion, 0); hit {
		t.Errorf("different program reported a cache hit")
	}
	FlushCaches()
	if _, hit, _ := cachedPointerAnalyze(prog, pointer.Inclusion, 0); hit {
		t.Errorf("FlushCaches did not empty the memo")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	FlushCaches()
	// Sequential run: Space measured, stats filled in.
	rep, err := AnalyzeSource("t.c", ptcacheSrc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Workers != 1 {
		t.Errorf("Workers = %d, want 1", rep.Stats.Workers)
	}
	if rep.Stats.Wall <= 0 || rep.Stats.SequentialCPU <= 0 {
		t.Errorf("timings not measured: %+v", rep.Stats)
	}
	if got := rep.Stats.PointerCacheHits + rep.Stats.PointerCacheMisses; got != len(rep.Procs) {
		t.Errorf("pointer cache counters %d, want one per procedure (%d)", got, len(rep.Procs))
	}
	for i := range rep.Procs {
		if rep.Procs[i].Space == 0 {
			t.Errorf("%s: Space not measured under Workers=1", rep.Procs[i].Name)
		}
	}
	// Concurrent run: Space reported as 0 (documented fallback).
	rep2, err := AnalyzeSource("t.c", ptcacheSrc, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.Workers != 2 {
		t.Errorf("Workers = %d, want 2", rep2.Stats.Workers)
	}
	for i := range rep2.Procs {
		if rep2.Procs[i].Space != 0 {
			t.Errorf("%s: Space = %d under Workers=2, want 0", rep2.Procs[i].Name, rep2.Procs[i].Space)
		}
	}
	// The libc header is certainly cached by now.
	if !rep2.Stats.LibcHeaderReused {
		t.Errorf("LibcHeaderReused = false on a repeated run")
	}
}

// precisionDropSrc reaches a state whose polyhedron is a 3-cube over the
// parameters: converting it to generators under a ray cap of 1 must drop
// constraints.
const precisionDropSrc = `
void f(int a, int b, int c) {
    int s;
    if (a < 0) goto done;
    if (a > 5) goto done;
    if (b < 0) goto done;
    if (b > 5) goto done;
    if (c < 0) goto done;
    if (c > 5) goto done;
    s = a + b;
    s = s + c;
done:
    s = 0;
}
`

func TestPrecisionDropsSurfaced(t *testing.T) {
	FlushCaches()
	rep, err := AnalyzeSource("t.c", precisionDropSrc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.PrecisionDrops != 0 {
		t.Errorf("uncapped run reported %d precision drops, want 0", rep.Stats.PrecisionDrops)
	}
	FlushCaches()
	rep2, err := AnalyzeSource("t.c", precisionDropSrc, Options{Workers: 1, MaxRays: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.PrecisionDrops == 0 {
		t.Errorf("capped run reported no precision drops; the cap must be surfaced in Stats")
	}
}

// TestPtCacheEviction drives the memo past a tiny bound and checks FIFO
// eviction: the oldest entry leaves first, later entries stay warm, and
// the evicted count is reported to the caller.
func TestPtCacheEviction(t *testing.T) {
	FlushCaches()
	defer FlushCaches()
	progs := make([]*corec.Program, 3)
	for i := range progs {
		src := ptcacheSrc
		for j := 0; j < i; j++ {
			src += "\nchar extra" + string(rune('a'+j)) + "[4];"
		}
		p, err := Prepare("t.c", src, false)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}
	const limit = 2
	if _, _, ev := cachedPointerAnalyze(progs[0], pointer.Inclusion, limit); ev != 0 {
		t.Errorf("first insert evicted %d entries", ev)
	}
	if _, _, ev := cachedPointerAnalyze(progs[1], pointer.Inclusion, limit); ev != 0 {
		t.Errorf("second insert evicted %d entries (limit %d)", ev, limit)
	}
	if _, _, ev := cachedPointerAnalyze(progs[2], pointer.Inclusion, limit); ev != 1 {
		t.Errorf("third insert evicted %d entries, want exactly 1", ev)
	}
	// progs[0] was oldest and must be gone; progs[1] and progs[2] survive.
	if _, hit, _ := cachedPointerAnalyze(progs[2], pointer.Inclusion, limit); !hit {
		t.Errorf("newest entry was evicted")
	}
	if _, hit, _ := cachedPointerAnalyze(progs[1], pointer.Inclusion, limit); !hit {
		t.Errorf("second-newest entry was evicted")
	}
	if _, hit, ev := cachedPointerAnalyze(progs[0], pointer.Inclusion, limit); hit {
		t.Errorf("oldest entry survived past the bound")
	} else if ev != 1 {
		t.Errorf("re-inserting the evicted entry evicted %d entries, want 1", ev)
	}
	// A negative limit means unbounded: nothing is ever evicted.
	FlushCaches()
	for i, p := range progs {
		if _, _, ev := cachedPointerAnalyze(p, pointer.Inclusion, -1); ev != 0 {
			t.Errorf("unbounded insert %d evicted %d entries", i, ev)
		}
	}
	for i, p := range progs {
		if _, hit, _ := cachedPointerAnalyze(p, pointer.Inclusion, -1); !hit {
			t.Errorf("unbounded cache lost entry %d", i)
		}
	}
}
