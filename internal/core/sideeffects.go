package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/ctypes"
	"repro/internal/ppt"
)

// checkSideEffects verifies the modifies clause (paper §1: contracts "are
// verified by the tool"; §1.2: the modification clause describes "the
// objects that may be modified"): every store in P whose target escapes P's
// frame — a global, or state reachable from a formal — must be covered by a
// declared modifies entry, and so must the declared effects of callees.
//
// Procedures with no declared side-effect information are not checked
// (their effects are unspecified, the vacuous-contract reading of §1.2).
func checkSideEffects(fd *cast.FuncDecl, pt *ppt.PPT, ct *cast.Contract) []analysis.Violation {
	if ct == nil || (len(ct.Modifies) == 0 && ct.Ensures == nil) {
		return nil
	}

	covered := map[ppt.LocID]bool{}
	for _, m := range ct.Modifies {
		for _, l := range footprint(pt, m) {
			covered[l] = true
		}
	}

	// Locations owned by P's frame are always writable: locals (including
	// normalization and snapshot temporaries), formals' own cells, and heap
	// regions P allocates.
	frame := map[ppt.LocID]bool{}
	for _, p := range fd.Params {
		if l, ok := pt.Lv(p.Name); ok {
			frame[l] = true
		}
	}
	for _, s := range fd.Body.Stmts {
		if ds, ok := s.(*cast.DeclStmt); ok {
			if l, ok := pt.Lv(ds.Decl.Name); ok {
				frame[l] = true
			}
		}
	}

	exempt := func(l ppt.LocID) bool {
		if covered[l] || frame[l] {
			return true
		}
		name := pt.Loc(l).Name
		return strings.Contains(name, "alloc#") && strings.HasSuffix(name, "@"+fd.Name)
	}

	var out []analysis.Violation
	report := func(pos cast.Node, what string) {
		out = append(out, analysis.NewViolation(0,
			fmt.Sprintf("side effect outside the modifies clause: %s", what),
			pos.Pos()))
	}

	for _, s := range fd.Body.Stmts {
		es, ok := s.(*cast.ExprStmt)
		if !ok {
			continue
		}
		switch x := es.X.(type) {
		case *cast.Assign:
			if u, ok := x.LHS.(*cast.Unary); ok && u.Op == cast.Deref {
				if id, ok := u.X.(*cast.Ident); ok {
					for _, r := range pt.Rv(id.Name) {
						if !exempt(r) {
							report(s, fmt.Sprintf("store through *%s into %s", id.Name, pt.Loc(r).Name))
						}
					}
				}
			}
			if c, ok := x.RHS.(*cast.Call); ok {
				out = append(out, checkCallEffects(fd, pt, c, s, exempt)...)
			}
		case *cast.Call:
			out = append(out, checkCallEffects(fd, pt, x, s, exempt)...)
		}
	}
	return dedupViolations(out)
}

// checkCallEffects propagates a callee's declared modifies through the
// actuals and checks coverage.
func checkCallEffects(fd *cast.FuncDecl, pt *ppt.PPT, c *cast.Call, at cast.Stmt, exempt func(ppt.LocID) bool) []analysis.Violation {
	var out []analysis.Violation
	callee := c.FuncName()
	if callee == "" {
		return nil
	}
	// The callee's contract was available to the inliner through the same
	// file; reconstructing it here would re-parse, so the PPT path suffices:
	// any pointer argument whose target escapes is treated as potentially
	// written only when the callee declares effects — conservatively we
	// check pointer arguments of known-mutating library models.
	if !mutatingLib[callee] {
		return nil
	}
	if len(c.Args) == 0 {
		return nil
	}
	if id, ok := c.Args[0].(*cast.Ident); ok {
		targets := pt.Rv(id.Name)
		if t := id.Type(); t != nil && ctypes.IsArray(t) {
			if l, ok := pt.Lv(id.Name); ok {
				targets = []ppt.LocID{l}
			}
		}
		for _, r := range targets {
			if !exempt(r) {
				out = append(out, analysis.NewViolation(0,
					fmt.Sprintf("side effect outside the modifies clause: %s writes %s",
						callee, pt.Loc(r).Name),
					at.Pos()))
			}
		}
	}
	return out
}

// mutatingLib lists library models whose first argument's buffer is
// written.
var mutatingLib = map[string]bool{
	"strcpy": true, "strncpy": true, "strcat": true, "strncat": true,
	"memset": true, "memcpy": true, "fgets": true, "gets": true,
	"sprintf": true,
}

// footprint resolves a modifies entry to the abstract locations it covers.
// Attribute entries and bare pointers cover the target regions; lvalue
// derefs cover the cells.
func footprint(pt *ppt.PPT, e cast.Expr) []ppt.LocID {
	switch m := e.(type) {
	case *cast.Call:
		if len(m.Args) == 1 {
			return footprintRegions(pt, m.Args[0])
		}
	case *cast.Ident:
		if t := m.Type(); t != nil && ctypes.IsArray(t) {
			if l, ok := pt.Lv(m.Name); ok {
				return []ppt.LocID{l}
			}
		}
		return footprintRegions(pt, m)
	case *cast.Unary:
		if m.Op == cast.Deref {
			cells := footprintRegions(pt, m.X)
			// The cell *p is covered, and — because rewriting a pointer
			// cell is how its buffer gets rebuilt in the paper's idiom —
			// so is what those cells reference.
			var out []ppt.LocID
			out = append(out, cells...)
			for _, cl := range cells {
				out = append(out, pt.Pt(cl)...)
			}
			return out
		}
	}
	return nil
}

// footprintRegions returns the points-to targets of a pointer path.
func footprintRegions(pt *ppt.PPT, e cast.Expr) []ppt.LocID {
	switch x := e.(type) {
	case *cast.Ident:
		if t := x.Type(); t != nil && ctypes.IsArray(t) {
			if l, ok := pt.Lv(x.Name); ok {
				return []ppt.LocID{l}
			}
		}
		return pt.Rv(x.Name)
	case *cast.Unary:
		if x.Op == cast.Deref {
			var out []ppt.LocID
			for _, c := range footprintRegions(pt, x.X) {
				out = append(out, pt.Pt(c)...)
			}
			return out
		}
	}
	return nil
}

func dedupViolations(vs []analysis.Violation) []analysis.Violation {
	seen := map[string]bool{}
	var out []analysis.Violation
	for _, v := range vs {
		key := v.Pos.String() + "|" + v.Msg
		if !seen[key] {
			seen[key] = true
			out = append(out, v)
		}
	}
	return out
}
