package core

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/certify"
	"repro/internal/ip"
)

// certifyProc runs the a-posteriori certification of one procedure: every
// certificate is verified by the independent Fourier–Motzkin checker, every
// violation is replayed through the deterministic directed interpreter of
// the original IP. tierOf names the domain that decided each violated check
// (empty entries are allowed). Checks are ordered by statement index so the
// outcome is identical for every worker count.
func certifyProc(p *ip.Program, certs []*certify.Certificate,
	viols []analysis.Violation, tierOf map[int]string) *certify.Outcome {
	results := certify.VerifyAll(certs)
	for _, v := range viols {
		req := certify.ReplayRequest{
			Index: v.Index, Pos: v.Pos, Msg: v.Msg,
			Tier:         tierOf[v.Index],
			Unverifiable: v.Unverifiable,
		}
		if v.CounterExampleIntegral {
			req.Hints = v.CounterExample
		}
		results = append(results, certify.Replay(p, req, ip.DirectedOptions{}))
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Index != results[j].Index {
			return results[i].Index < results[j].Index
		}
		return results[i].Msg < results[j].Msg
	})
	out := &certify.Outcome{}
	for _, r := range results {
		out.Add(r)
	}
	return out
}
