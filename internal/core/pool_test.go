package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 37
			var ran [n]atomic.Int32
			err := runPool(workers, n, func(i int, done <-chan struct{}) error {
				ran[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

func TestRunPoolSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := runPool(1, 10, func(i int, done <-chan struct{}) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v, want exactly [0 1 2 3]", ran)
	}
}

func TestRunPoolFirstErrorWinsAndCancels(t *testing.T) {
	const n = 100
	boom := errors.New("boom")
	var claimed atomic.Int32
	err := runPool(4, n, func(i int, done <-chan struct{}) error {
		claimed.Add(1)
		if i == 0 {
			return fmt.Errorf("proc %d: %w", i, boom)
		}
		// Simulate in-flight work that polls the done channel.
		for k := 0; k < 50; k++ {
			if cancelled(done) {
				return errCancelled
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if got := claimed.Load(); got >= n {
		t.Errorf("all %d indices were claimed; cancellation did not stop the pool", got)
	}
}

func TestRunPoolLowestErrorIndexWins(t *testing.T) {
	// Both failing indices are claimed before either error is recorded
	// (the sleep serializes claims ahead of failures), so the pool must
	// pick the lower index deterministically.
	err := runPool(2, 2, func(i int, done <-chan struct{}) error {
		time.Sleep(10 * time.Millisecond)
		return fmt.Errorf("fail%d", i)
	})
	if err == nil || err.Error() != "fail0" {
		t.Fatalf("err = %v, want fail0", err)
	}
}

func TestRunPoolCancelledIsSilent(t *testing.T) {
	// errCancelled returned without a prior real failure must not surface
	// as the run error (it cannot happen in the driver, but the pool's
	// contract is that cancellation is never an error of its own).
	err := runPool(2, 4, func(i int, done <-chan struct{}) error {
		if i == 1 {
			return errCancelled
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}
