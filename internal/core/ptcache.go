// Shared-phase caching for the parallel driver. The whole-program
// flow-insensitive pointer analysis (paper §3.3.2) depends only on the
// renormalized program text and the analysis mode, and its result is
// treated as read-only by every consumer (ppt.Build copies what it
// refines), so it can be memoized process-wide: procedures whose contract
// inlining leaves the global points-to input unchanged — and repeated runs
// over the same translation unit — share one pointer.Analyze result.
package core

import (
	"crypto/sha256"
	"io"
	"sort"
	"sync"

	"repro/internal/cast"
	"repro/internal/corec"
	"repro/internal/ctypes"
	"repro/internal/pointer"
)

// ptKey identifies a pointer-analysis input: the mode, the layout target
// (node sizes depend on it), plus a structural hash of the renormalized
// program (rendered declarations including contracts and bodies, plus the
// string-literal table). Rendering is deterministic, so structurally equal
// programs collide on purpose.
type ptKey struct {
	mode   pointer.Mode
	target ctypes.Target
	hash   [sha256.Size]byte
}

// defaultPtCacheMax is the memo bound used when the caller does not
// configure one (Options.PtCacheSize == 0). Entries are evicted in
// insertion order (FIFO) once the bound is reached — not dropped
// wholesale, so a long-running embedder cycling through many translation
// units keeps its recent working set warm.
const defaultPtCacheMax = 128

type ptEntry struct {
	once sync.Once
	res  *pointer.Result
}

var ptCache = struct {
	sync.Mutex
	m map[ptKey]*ptEntry
	// order lists live keys oldest first; it drives FIFO eviction.
	order []ptKey
}{m: map[ptKey]*ptEntry{}}

func pointerKey(prog *corec.Program, mode pointer.Mode) ptKey {
	h := sha256.New()
	io.WriteString(h, cast.Fprint(prog.File))
	names := make([]string, 0, len(prog.Strings))
	for name := range prog.Strings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		io.WriteString(h, name)
		h.Write([]byte{0})
		io.WriteString(h, prog.Strings[name])
		h.Write([]byte{0})
	}
	k := ptKey{mode: mode, target: prog.Layout.Target()}
	h.Sum(k.hash[:0])
	return k
}

// cachedPointerAnalyze memoizes pointer.Analyze on (program shape, mode).
// Concurrent calls with the same key block on one computation instead of
// duplicating it. limit bounds the memo (0 = defaultPtCacheMax, negative =
// unbounded); on overflow the oldest entries are evicted first. The second
// result reports whether this was a cache hit, the third how many entries
// were evicted to make room.
func cachedPointerAnalyze(prog *corec.Program, mode pointer.Mode, limit int) (*pointer.Result, bool, int) {
	max := limit
	if max == 0 {
		max = defaultPtCacheMax
	}
	k := pointerKey(prog, mode)
	evicted := 0
	ptCache.Lock()
	e, hit := ptCache.m[k]
	if !hit {
		if max > 0 {
			for len(ptCache.m) >= max && len(ptCache.order) > 0 {
				old := ptCache.order[0]
				ptCache.order = ptCache.order[1:]
				if _, ok := ptCache.m[old]; ok {
					delete(ptCache.m, old)
					evicted++
				}
			}
		}
		e = &ptEntry{}
		ptCache.m[k] = e
		ptCache.order = append(ptCache.order, k)
	}
	ptCache.Unlock()
	e.once.Do(func() { e.res = pointer.Analyze(prog, mode) })
	return e.res, hit, evicted
}

// FlushCaches empties the process-wide memoization caches (currently the
// pointer-analysis memo; the parsed libc header is a handful of prototypes
// and is kept). Long-running embedders can call it to bound memory, and
// benchmarks use it to measure cold-cache cost.
func FlushCaches() {
	ptCache.Lock()
	ptCache.m = map[ptKey]*ptEntry{}
	ptCache.order = nil
	ptCache.Unlock()
}
