// Package core is CSSV itself: the per-procedure pipeline of the paper's
// Fig. 1 (contract inlining, CoreC normalization, whole-program pointer
// analysis, procedural points-to construction, C2IP, and the integer
// analysis), plus the modifies-clause verification and the Table 5
// statistics collection. The root package cssv wraps it with a stable
// public API.
package core
