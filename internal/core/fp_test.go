package core

import (
	"strings"
	"testing"
)

// TestFunctionPointerPreconditionChecked: the end-to-end behavior of
// §3.4.2.3 — the too-demanding candidate callee is flagged, and removing it
// clears the report.
func TestFunctionPointerPreconditionChecked(t *testing.T) {
	src := `
void safe(char *p)
    requires (alloc(p) >= 1)
    modifies (p)
    ensures (is_nullt(p))
{
    *p = '\0';
}
void picky(char *p)
    requires (alloc(p) >= 64)
    modifies (p)
    ensures (is_nullt(p))
{
    *p = '\0';
}
void f(char *buf, int sel)
    requires (is_within_bounds(buf) && alloc(buf) >= 8 && offset(buf) == 0)
{
    void (*op)(char *);
    if (sel) {
        op = &safe;
    } else {
        op = &picky;
    }
    op(buf);
}
void g(char *buf)
    requires (is_within_bounds(buf) && alloc(buf) >= 8)
{
    void (*op)(char *);
    op = &safe;
    op(buf);
}
`
	rep, err := AnalyzeSource("t.c", src, Options{Procs: []string{"f", "g"}})
	if err != nil {
		t.Fatal(err)
	}
	fMsgs := rep.Proc("f").Violations
	foundPicky := false
	for _, v := range fMsgs {
		if strings.Contains(v.Msg, "picky") {
			foundPicky = true
		}
		if strings.Contains(v.Msg, "precondition of safe") {
			t.Errorf("safe's satisfiable precondition flagged: %s", v.Msg)
		}
	}
	if !foundPicky {
		t.Errorf("picky's unsatisfiable precondition missed; messages: %v", fMsgs)
	}
	if n := len(rep.Proc("g").Violations); n != 0 {
		t.Errorf("single-callee pointer call flagged %d times", n)
	}
}
